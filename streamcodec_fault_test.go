package itemsketch_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	itemsketch "repro"
	"repro/internal/faultio"
)

// faultSketchWire builds one small sketch and returns its envelope
// bytes — the fixture the fault-injection decode tests chew on.
func faultSketchWire(t *testing.T, compress bool) []byte {
	t.Helper()
	db := itemsketch.NewDatabase(12)
	for i := 0; i < 150; i++ {
		db.AddRowAttrs(i%12, (i*5+2)%12)
	}
	p := itemsketch.Params{K: 2, Eps: 0.1, Delta: 0.1,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, err := itemsketch.Subsample{Seed: 3, SampleOverride: 120}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	opts := []itemsketch.MarshalOption{itemsketch.WithChunkBytes(64)}
	if compress {
		opts = append(opts, itemsketch.WithCompression())
	}
	var wire bytes.Buffer
	if _, err := itemsketch.MarshalTo(&wire, sk, opts...); err != nil {
		t.Fatal(err)
	}
	return wire.Bytes()
}

// TestStreamFaultShortReadsDecodeIdentically: a reader that delivers
// arbitrarily short (but error-free) reads — the behavior io.Reader
// permits and network sockets exhibit — must decode to the same sketch
// as a well-behaved reader, for plain and compressed envelopes.
func TestStreamFaultShortReadsDecodeIdentically(t *testing.T) {
	for _, compress := range []bool{false, true} {
		wire := faultSketchWire(t, compress)
		want, err := itemsketch.UnmarshalFrom(bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []uint64{1, 7, 1234} {
			r := faultio.NewReader(bytes.NewReader(wire),
				faultio.WithSeed(seed), faultio.WithShortOps())
			got, err := itemsketch.UnmarshalFrom(r)
			if err != nil {
				t.Fatalf("compress=%v seed=%d: short-read decode failed: %v", compress, seed, err)
			}
			if got.SizeBits() != want.SizeBits() || got.Name() != want.Name() {
				t.Fatalf("compress=%v seed=%d: short-read decode diverged", compress, seed)
			}
		}
	}
}

// TestStreamFaultTransportErrorBareAtEveryOffset: a mid-stream I/O
// error (disk, socket) must surface as itself from UnmarshalFrom — not
// disguised as ErrCorruptSketch — no matter where in the envelope it
// strikes, so retry layers can tell media failures from poison data.
func TestStreamFaultTransportErrorBareAtEveryOffset(t *testing.T) {
	wire := faultSketchWire(t, false)
	for off := int64(0); off < int64(len(wire)); off++ {
		r := faultio.NewReader(bytes.NewReader(wire), faultio.WithFailAt(off, nil))
		_, err := itemsketch.UnmarshalFrom(r)
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("offset %d/%d: %v, want the injected error to pass through bare", off, len(wire), err)
		}
		if errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Fatalf("offset %d/%d: transport error misclassified as corruption: %v", off, len(wire), err)
		}
	}
}

// TestStreamFaultTruncationAtEveryOffset: a stream cleanly cut at any
// offset (EOF, no error — a died connection or torn file) must fail
// wrapping both ErrTruncatedStream and ErrCorruptSketch.
func TestStreamFaultTruncationAtEveryOffset(t *testing.T) {
	wire := faultSketchWire(t, false)
	for off := int64(0); off < int64(len(wire)); off++ {
		r := faultio.NewReader(bytes.NewReader(wire), faultio.WithTruncateAt(off))
		_, err := itemsketch.UnmarshalFrom(r)
		if err == nil {
			t.Fatalf("offset %d/%d: truncated stream decoded", off, len(wire))
		}
		if !errors.Is(err, itemsketch.ErrTruncatedStream) {
			t.Fatalf("offset %d/%d: %v does not wrap ErrTruncatedStream", off, len(wire), err)
		}
		if !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Fatalf("offset %d/%d: %v does not wrap ErrCorruptSketch", off, len(wire), err)
		}
	}
}

// TestStreamFaultCorruptionNamesChunk: a byte flipped in a chunk's
// payload must fail with an error that wraps ErrCorruptSketch and
// names the chunk, so operators can localize damage in large files.
func TestStreamFaultCorruptionNamesChunk(t *testing.T) {
	wire := faultSketchWire(t, false)
	// Flip one byte inside a chunk's payload (the envelope header is 18
	// bytes, then each 64-byte chunk rides behind a 4-byte length
	// prefix and ahead of its CRC-32).
	flips := []struct {
		off  int64
		want string
	}{
		{25, "chunk 0"},
		{95, "chunk 1"}, // 64-byte chunks: second chunk's payload
	}
	for _, f := range flips {
		r := faultio.NewReader(bytes.NewReader(wire), faultio.WithCorruptByte(f.off, 0x40))
		_, err := itemsketch.UnmarshalFrom(r)
		if !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Fatalf("flip at %d: %v, want ErrCorruptSketch", f.off, err)
		}
		if !strings.Contains(err.Error(), f.want) {
			t.Fatalf("flip at %d: error %q does not name %s", f.off, err, f.want)
		}
	}
}

// TestStreamFaultInspectFromFlaky: InspectFrom reads only the fixed
// header, so flaky short reads must not bother it, a header transport
// error passes bare, and a header truncation classifies cleanly.
func TestStreamFaultInspectFromFlaky(t *testing.T) {
	wire := faultSketchWire(t, true)
	want, err := itemsketch.InspectFrom(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	r := faultio.NewReader(bytes.NewReader(wire), faultio.WithSeed(5), faultio.WithShortOps())
	got, err := itemsketch.InspectFrom(r)
	if err != nil {
		t.Fatalf("short-read inspect: %v", err)
	}
	if got != want {
		t.Fatalf("short-read inspect %+v, want %+v", got, want)
	}
	for off := int64(0); off < 18; off++ {
		r := faultio.NewReader(bytes.NewReader(wire), faultio.WithFailAt(off, nil))
		if _, err := itemsketch.InspectFrom(r); !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("header fail at %d: %v, want bare injected error", off, err)
		}
		r = faultio.NewReader(bytes.NewReader(wire), faultio.WithTruncateAt(off))
		if _, err := itemsketch.InspectFrom(r); !errors.Is(err, itemsketch.ErrTruncatedStream) {
			t.Fatalf("header cut at %d: %v, want ErrTruncatedStream", off, err)
		}
	}
}

// TestStreamFaultFlakyTransientReaderEventuallyFails: transient errors
// are not retried inside the codec (retry belongs to the caller), so a
// flaky reader surfaces its first injected error bare.
func TestStreamFaultFlakyTransientReaderEventuallyFails(t *testing.T) {
	wire := faultSketchWire(t, false)
	seen := false
	for seed := uint64(0); seed < 20; seed++ {
		r := faultio.NewReader(bytes.NewReader(wire),
			faultio.WithSeed(seed), faultio.WithFlakyErrors(0.2, nil))
		_, err := itemsketch.UnmarshalFrom(r)
		if err == nil {
			continue // this seed happened to stay clean
		}
		seen = true
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("seed %d: %v, want the injected transient error bare", seed, err)
		}
		if errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Fatalf("seed %d: transient error misclassified as corruption", seed)
		}
	}
	if !seen {
		t.Fatal("no seed produced a transient failure; the fixture is too small for the test to bite")
	}
}
