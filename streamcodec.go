package itemsketch

import (
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/core"
)

// This file is the streaming side of the wire codec: MarshalTo,
// UnmarshalFrom and InspectFrom move envelope version 2 over
// io.Writer/io.Reader with bounded memory. The one-shot Marshal,
// Unmarshal and Inspect in envelope.go are thin wrappers over these,
// so there is exactly one codec.

// DefaultChunkBytes is the chunk capacity MarshalTo uses unless
// overridden with WithChunkBytes: large enough that frame overhead
// (8 bytes per chunk) is negligible, small enough that decoding
// buffers well under a hundred kilobytes.
const DefaultChunkBytes = 64 * 1024

const (
	// minChunkLog..maxChunkLog bound the accepted chunk capacity
	// (16 B .. 64 MiB). The lower bound keeps frame overhead sane, the
	// upper bound caps how much memory a hostile header can make the
	// decoder stage for a single chunk.
	minChunkLog = 4
	maxChunkLog = 26

	// chunkFrameLen is the per-chunk frame: u32 data length + u32 CRC.
	chunkFrameLen = 8

	// flagCompressed marks a flate-compressed version-2 payload stream.
	flagCompressed = 0x01

	// chunkAllocStep caps how far the chunk buffer grows ahead of bytes
	// actually delivered, so a frame declaring a large length cannot
	// force a large allocation before the stream proves it has the data.
	chunkAllocStep = 64 * 1024
)

// corruptf returns a corruption error wrapping ErrCorruptSketch.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorruptSketch, fmt.Sprintf(format, args...))
}

// truncatedf returns a truncation error wrapping both ErrCorruptSketch
// (so corruption-only dispatch still catches it) and the narrower
// ErrTruncatedStream.
func truncatedf(format string, args ...any) error {
	return fmt.Errorf("%w: %w: %s", ErrCorruptSketch, ErrTruncatedStream, fmt.Sprintf(format, args...))
}

// headerCheck returns the low 16 bits of the CRC-32 (IEEE) of the
// first 16 header bytes — the version-2 header integrity field.
func headerCheck(hdr []byte) uint16 {
	return uint16(crc32.ChecksumIEEE(hdr[:16]))
}

// MarshalOption customizes MarshalTo. The zero configuration —
// DefaultChunkBytes chunks, no compression — is what Marshal uses.
type MarshalOption func(*marshalOptions) error

type marshalOptions struct {
	chunkBytes int
	compress   bool
}

// WithChunkBytes sets the chunk capacity of the version-2 payload
// framing. n must be a power of two in [16, 64·1024·1024]. Smaller
// chunks detect corruption earlier and bound decoder memory tighter at
// the price of 8 bytes of frame overhead per chunk.
func WithChunkBytes(n int) MarshalOption {
	return func(o *marshalOptions) error {
		if n < 1<<minChunkLog || n > 1<<maxChunkLog || n&(n-1) != 0 {
			return fmt.Errorf("%w: chunk size %d must be a power of two in [%d, %d]", ErrInvalidParams, n, 1<<minChunkLog, 1<<maxChunkLog)
		}
		o.chunkBytes = n
		return nil
	}
}

// WithCompression flate-compresses the payload stream before chunking.
// Highly regular payloads — RELEASE-ANSWERS tables, RELEASE-DB over
// skewed data — shrink severalfold; the declared payload bit length
// (the paper's |S|) always refers to the uncompressed stream.
func WithCompression() MarshalOption {
	return func(o *marshalOptions) error {
		o.compress = true
		return nil
	}
}

// chunkWriter frames its input into CRC-carrying chunks and tracks the
// bytes actually delivered to the underlying writer. Close flushes the
// final (possibly short) chunk and appends the zero-length terminator.
// The frame scratch lives in the struct: a stack array would escape
// through the io.Writer interface call and cost one allocation per
// chunk.
type chunkWriter struct {
	w       io.Writer
	buf     []byte // accumulating chunk; cap is the chunk capacity
	written int64  // bytes delivered to w (frames + data)
	err     error
	frame   [chunkFrameLen]byte
	// hdr is the envelope-header staging area marshalToSized borrows,
	// for the same escape-avoidance reason as frame.
	hdr [envelopeHeaderLen]byte
}

// chunkWriterPool / chunkReaderPool recycle the framing layer — the
// structs and their chunk buffers — across codec calls, so a round
// trip on a warm pool allocates no chunk-sized scratch. Buffers are
// reused only when their capacity fits the requested chunk size (the
// reader's buffer must never exceed it: the one-chunk working-set
// bound is part of the format's contract), which in practice means the
// DefaultChunkBytes streams every production caller writes.
var (
	chunkWriterPool = sync.Pool{New: func() any { return new(chunkWriter) }}
	chunkReaderPool = sync.Pool{New: func() any { return new(chunkReader) }}
)

func newChunkWriter(w io.Writer, chunkBytes int) *chunkWriter {
	cw := chunkWriterPool.Get().(*chunkWriter)
	buf := cw.buf
	if cap(buf) != chunkBytes {
		buf = make([]byte, 0, chunkBytes)
	}
	*cw = chunkWriter{w: w, buf: buf[:0]}
	return cw
}

// release returns the writer to the pool; it must not be used after.
func (cw *chunkWriter) release() {
	cw.w = nil
	cw.err = nil
	chunkWriterPool.Put(cw)
}

func (cw *chunkWriter) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 && cw.err == nil {
		space := cap(cw.buf) - len(cw.buf)
		if space == 0 {
			cw.flush()
			continue
		}
		take := len(p)
		if take > space {
			take = space
		}
		cw.buf = append(cw.buf, p[:take]...)
		p = p[take:]
	}
	if cw.err != nil {
		return total - len(p), cw.err
	}
	return total, nil
}

// flush emits the buffered bytes as one framed chunk.
func (cw *chunkWriter) flush() {
	if cw.err != nil || len(cw.buf) == 0 {
		return
	}
	binary.LittleEndian.PutUint32(cw.frame[0:4], uint32(len(cw.buf)))
	binary.LittleEndian.PutUint32(cw.frame[4:8], crc32.ChecksumIEEE(cw.buf))
	n, err := cw.w.Write(cw.frame[:])
	cw.written += int64(n)
	if err != nil {
		cw.err = err
		return
	}
	n, err = cw.w.Write(cw.buf)
	cw.written += int64(n)
	if err != nil {
		cw.err = err
		return
	}
	cw.buf = cw.buf[:0]
}

// Close flushes the final chunk and writes the terminator frame. It
// does not close the underlying writer.
func (cw *chunkWriter) Close() error {
	cw.flush()
	if cw.err == nil {
		cw.frame = [chunkFrameLen]byte{} // zero length, zero CRC
		n, err := cw.w.Write(cw.frame[:])
		cw.written += int64(n)
		if err != nil {
			cw.err = err
		}
	}
	return cw.err
}

// MarshalTo streams a sketch to w as a version-2 envelope and returns
// the number of bytes written. The sketch is encoded incrementally —
// the payload is never materialized in memory — and framed in
// WithChunkBytes-sized chunks, each with its own CRC-32, optionally
// flate-compressed (WithCompression). The output is deterministic for
// a fixed option set, so re-marshaling a decoded sketch with the same
// options is byte-identical.
//
// Errors from w are returned as-is; an s that is not one of this
// package's sketch types fails with ErrInvalidParams.
func MarshalTo(w io.Writer, s Sketch, opts ...MarshalOption) (int64, error) {
	o := marshalOptions{chunkBytes: DefaultChunkBytes}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return 0, err
		}
	}
	kind, ok := sketchKindOf(s)
	if !ok {
		return 0, fmt.Errorf("%w: cannot marshal unregistered sketch type %T", ErrInvalidParams, s)
	}
	return marshalToSized(w, s, kind, s.SizeBits(), o)
}

// marshalToSized is MarshalTo after validation, with the SizeBits
// counting pass already done (Marshal reuses the count to pre-size its
// buffer, so the pass runs once per encode).
func marshalToSized(w io.Writer, s Sketch, kind SketchKind, bits int64, o marshalOptions) (int64, error) {
	chunker := newChunkWriter(w, o.chunkBytes)
	defer chunker.release()
	hdr := chunker.hdr[:]
	for i := range hdr {
		hdr[i] = 0
	}
	copy(hdr[0:4], envelopeMagic[:])
	hdr[4] = EnvelopeVersion
	hdr[5] = byte(kind)
	binary.LittleEndian.PutUint64(hdr[6:14], uint64(bits))
	if o.compress {
		hdr[14] |= flagCompressed
	}
	hdr[15] = byte(math.Ilogb(float64(o.chunkBytes)))
	binary.LittleEndian.PutUint16(hdr[16:18], headerCheck(hdr))

	hn, err := w.Write(hdr)
	if err != nil {
		return int64(hn), err
	}
	total := func() int64 { return int64(hn) + chunker.written }
	var sink io.Writer = chunker
	var fw *flate.Writer
	if o.compress {
		// DefaultCompression is deterministic for a fixed input, which
		// the re-marshal byte-identity contract relies on.
		fw, _ = flate.NewWriter(chunker, flate.DefaultCompression)
		sink = fw
	}
	bw := bitvec.NewIOWriter(sink)
	defer bw.Release()
	s.MarshalBits(bw)
	if int64(bw.BitLen()) != bits {
		return total(), fmt.Errorf("%w: sketch %T declared %d bits but encoded %d", ErrInvalidParams, s, bits, bw.BitLen())
	}
	if err := bw.Close(); err != nil {
		return total(), err
	}
	if fw != nil {
		if err := fw.Close(); err != nil {
			return total(), err
		}
	}
	err = chunker.Close()
	return total(), err
}

// chunkReader un-frames a version-2 payload stream: it verifies each
// chunk's length and CRC as it arrives and serves the de-framed bytes,
// holding at most one chunk at a time. A clean io.EOF is only returned
// after the zero-length terminator frame.
type chunkReader struct {
	r          io.Reader
	chunkBytes int
	buf        []byte // current chunk's data
	pos        int    // read cursor into buf
	idx        int    // chunks consumed so far
	sawShort   bool   // a non-full chunk arrived; it must be the last
	done       bool   // terminator seen
	err        error  // sticky
	// transportErr records a genuine I/O failure of the underlying
	// reader (anything but end-of-stream), so the entry points can
	// report it bare instead of letting the decode layers above
	// mislabel it as a corrupt or truncated sketch.
	transportErr error
	// frame is the chunk-frame scratch; a stack array would escape
	// through the io.ReadFull interface call, one allocation per chunk.
	frame [chunkFrameLen]byte
}

func newChunkReader(r io.Reader, chunkBytes int) *chunkReader {
	cr := chunkReaderPool.Get().(*chunkReader)
	buf := cr.buf
	if cap(buf) > chunkBytes {
		// Never hand a stream a buffer larger than its chunk capacity:
		// maxBuffered (the decoder's working-set bound) must stay
		// within the envelope's declared chunk size.
		buf = nil
	}
	*cr = chunkReader{r: r, chunkBytes: chunkBytes, buf: buf[:0]}
	return cr
}

// release returns the reader to the pool; it must not be used after.
func (cr *chunkReader) release() {
	cr.r = nil
	cr.err = nil
	cr.transportErr = nil
	chunkReaderPool.Put(cr)
}

func (cr *chunkReader) Read(p []byte) (int, error) {
	if cr.err != nil {
		return 0, cr.err
	}
	for cr.pos == len(cr.buf) {
		if err := cr.next(); err != nil {
			cr.err = err
			return 0, err
		}
	}
	n := copy(p, cr.buf[cr.pos:])
	cr.pos += n
	return n, nil
}

// ReadByte implements io.ByteReader. Because chunkReader provides it,
// flate.NewReader uses the chunk stream directly instead of wrapping
// it in a read-ahead bufio.Reader — so the flate layer never consumes
// framed bytes past its own end-of-stream marker, and trailing garbage
// stays detectable after decompression finishes.
func (cr *chunkReader) ReadByte() (byte, error) {
	if cr.err != nil {
		return 0, cr.err
	}
	for cr.pos == len(cr.buf) {
		if err := cr.next(); err != nil {
			cr.err = err
			return 0, err
		}
	}
	b := cr.buf[cr.pos]
	cr.pos++
	return b, nil
}

// next loads the following chunk into cr.buf.
func (cr *chunkReader) next() error {
	if cr.done {
		return io.EOF
	}
	if _, err := io.ReadFull(cr.r, cr.frame[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return truncatedf("stream ended inside the frame of chunk %d (missing terminator?)", cr.idx)
		}
		cr.transportErr = err
		return err
	}
	length := int(binary.LittleEndian.Uint32(cr.frame[0:4]))
	sum := binary.LittleEndian.Uint32(cr.frame[4:8])
	if length == 0 {
		if sum != 0 {
			return corruptf("terminator frame carries nonzero checksum %08x", sum)
		}
		cr.done = true
		return io.EOF
	}
	if length > cr.chunkBytes {
		return corruptf("chunk %d declares %d bytes, chunk capacity is %d", cr.idx, length, cr.chunkBytes)
	}
	if cr.sawShort {
		return corruptf("short chunk %d was not the final data chunk", cr.idx-1)
	}
	if err := cr.fill(length); err != nil {
		return err
	}
	if got := crc32.ChecksumIEEE(cr.buf); got != sum {
		return corruptf("chunk %d checksum %08x, frame says %08x", cr.idx, got, sum)
	}
	if length < cr.chunkBytes {
		cr.sawShort = true
	}
	cr.pos = 0
	cr.idx++
	return nil
}

// fill reads the chunk's `length` data bytes into cr.buf, growing the
// buffer at most chunkAllocStep ahead of the bytes actually delivered
// so a hostile length cannot force a large allocation up front. The
// buffer is reused across chunks, so steady-state decoding allocates
// one chunk's worth of memory total.
func (cr *chunkReader) fill(length int) error {
	if cap(cr.buf) >= length {
		cr.buf = cr.buf[:length]
		if _, err := io.ReadFull(cr.r, cr.buf); err != nil {
			return cr.dataErr(err, length)
		}
		return nil
	}
	cr.buf = cr.buf[:0]
	for got := 0; got < length; {
		step := length - got
		if step > chunkAllocStep {
			step = chunkAllocStep
		}
		if cap(cr.buf) < got+step {
			// Geometric growth keeps the copying linear; the cap stays
			// within 2× of the bytes actually delivered (and never past
			// the chunk length), so a lying frame still cannot reserve
			// much beyond what the stream has proven it carries.
			newcap := 2 * cap(cr.buf)
			if newcap < got+step {
				newcap = got + step
			}
			if newcap > length {
				newcap = length
			}
			nb := make([]byte, got, newcap)
			copy(nb, cr.buf)
			cr.buf = nb
		}
		cr.buf = cr.buf[:got+step]
		if _, err := io.ReadFull(cr.r, cr.buf[got:]); err != nil {
			return cr.dataErr(err, length)
		}
		got += step
	}
	return nil
}

// dataErr maps a failure while reading a chunk's data bytes: an end of
// stream is a truncated chunk; any other error is a genuine I/O
// failure, recorded as such so it passes through untouched (callers
// can retry the transport instead of discarding the stream as
// corrupt).
func (cr *chunkReader) dataErr(err error, length int) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return truncatedf("chunk %d truncated before its %d data bytes arrived", cr.idx, length)
	}
	cr.transportErr = err
	return err
}

// maxBuffered reports the chunk reader's peak data buffer, for the
// working-set tests: it never exceeds the envelope's chunk capacity.
func (cr *chunkReader) maxBuffered() int { return cap(cr.buf) }

// readStreamHeader reads and validates the 18-byte header shared by
// both envelope versions.
func readStreamHeader(r io.Reader) (Envelope, error) {
	var env Envelope
	var hdr [envelopeHeaderLen]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return env, truncatedf("%d bytes is shorter than the %d-byte envelope header", n, envelopeHeaderLen)
		}
		return env, err
	}
	if [4]byte(hdr[0:4]) != envelopeMagic {
		return env, corruptf("bad magic %q", hdr[0:4])
	}
	env.Version = int(hdr[4])
	if env.Version > EnvelopeVersion {
		return env, fmt.Errorf("%w: envelope version %d, this library reads up to %d", ErrUnsupportedVersion, env.Version, EnvelopeVersion)
	}
	if env.Version == 0 {
		return env, corruptf("envelope version 0")
	}
	env.Kind = SketchKind(hdr[5])
	if !env.Kind.Registered() {
		return env, corruptf("unknown sketch kind %d", hdr[5])
	}
	bits := binary.LittleEndian.Uint64(hdr[6:14])
	// The bound keeps every downstream computation on the declared
	// length (byte counts, ceil-divisions) clear of int64 overflow.
	if bits > math.MaxInt64-7 {
		return env, corruptf("payload bit length %d overflows", bits)
	}
	env.PayloadBits = int(bits)
	if env.Version == 1 {
		env.Checksum = binary.LittleEndian.Uint32(hdr[14:18])
		return env, nil
	}
	if hdr[14]&^flagCompressed != 0 {
		return env, corruptf("unknown envelope flags %02x", hdr[14])
	}
	env.Compressed = hdr[14]&flagCompressed != 0
	if log := int(hdr[15]); log < minChunkLog || log > maxChunkLog {
		return env, corruptf("chunk capacity 2^%d out of range", log)
	} else {
		env.ChunkBytes = 1 << log
	}
	if want := headerCheck(hdr[:]); binary.LittleEndian.Uint16(hdr[16:18]) != want {
		return env, corruptf("header check %04x, header says %04x", want, binary.LittleEndian.Uint16(hdr[16:18]))
	}
	return env, nil
}

// payloadBytes is the byte length of an nbits-bit payload stream.
func payloadBytes(nbits int) int64 { return (int64(nbits) + 7) / 8 }

// classifyStreamErr upgrades decode errors whose root cause is an
// unexpected end of stream to also wrap ErrTruncatedStream.
func classifyStreamErr(err error) error {
	if err == nil || errors.Is(err, ErrTruncatedStream) || !errors.Is(err, io.ErrUnexpectedEOF) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrTruncatedStream, err)
}

// UnmarshalFrom decodes a sketch stream written by MarshalTo (envelope
// version 2) or by a version-1 Marshal. Version-2 decoding is
// streaming: it never buffers more than one chunk of payload, so
// sketches larger than memory-comfortable one-shot buffers decode with
// a bounded working set, and a corrupted byte fails at its chunk.
//
// Failures wrap ErrCorruptSketch; streams that end before delivering
// the declared payload additionally wrap ErrTruncatedStream; envelopes
// from a newer format version fail with ErrUnsupportedVersion.
// UnmarshalFrom reads exactly the envelope's bytes from r, leaving any
// following data unread.
func UnmarshalFrom(r io.Reader) (Sketch, error) {
	env, err := readStreamHeader(r)
	if err != nil {
		return nil, err
	}
	if env.Version == 1 {
		return unmarshalV1Body(r, env)
	}
	cr := newChunkReader(r, env.ChunkBytes)
	defer cr.release()
	var src io.Reader = cr
	if env.Compressed {
		src = flate.NewReader(cr)
	}
	br := bitvec.NewIOReader(src, env.PayloadBits)
	defer br.Release()
	sk, err := core.UnmarshalSketch(br)
	if err != nil {
		if cr.transportErr != nil {
			return nil, cr.transportErr
		}
		return nil, classifyStreamErr(err)
	}
	// The declared bit length must be exactly what the decoder
	// consumed: trailing undeclared bits would survive decoding but
	// vanish on re-marshal, breaking the byte-identity contract. When
	// bits are left over, drain the payload stream to tell a header
	// that over-declares what the stream carries (truncation) from a
	// stream carrying bits the decoder did not consume (corruption).
	if br.Remaining() != 0 {
		want := payloadBytes(env.PayloadBits)
		drained, _ := io.Copy(io.Discard, src)
		if int64(br.BytesRead())+drained < want {
			return nil, truncatedf("payload carries %d bytes, header declares %d bits (%d bytes)", int64(br.BytesRead())+drained, env.PayloadBits, want)
		}
		return nil, corruptf("%d unconsumed payload bits after decoding", br.Remaining())
	}
	if got, _ := sketchKindOf(sk); got != env.Kind {
		return nil, corruptf("envelope kind %v but payload decodes as %v", env.Kind, got)
	}
	// The payload stream must end exactly at the declared length...
	if err := expectEOF(src, cr, "payload bytes past the declared bit length"); err != nil {
		return nil, err
	}
	// ...and the chunk framing must close with its terminator (the
	// flate layer can reach its own end-of-stream marker with framed
	// garbage still unread underneath).
	if env.Compressed {
		if err := expectEOF(cr, cr, "framed bytes past the compressed payload"); err != nil {
			return nil, err
		}
	}
	return sk, nil
}

// expectEOF verifies src is exhausted: the next read must cleanly
// report io.EOF. Failures keep the package contract — the truncation
// and corruption sentinels are wrapped in, while genuine transport
// errors (recorded on cr) pass through bare. The one-byte probe
// borrows cr's frame scratch: a local array would escape through the
// Read interface call.
func expectEOF(src io.Reader, cr *chunkReader, what string) error {
	one := cr.frame[:1]
	for {
		n, err := src.Read(one)
		switch {
		case n != 0:
			return corruptf("%s", what)
		case err == io.EOF:
			return nil
		case err != nil:
			if cr != nil && cr.transportErr != nil {
				return cr.transportErr
			}
			err = classifyStreamErr(err)
			if !errors.Is(err, ErrCorruptSketch) {
				// A flate-layer decode failure surfacing here (e.g. a
				// corrupt trailer past the last byte the sketch needed)
				// is still a corrupt stream.
				err = fmt.Errorf("%w: %w", ErrCorruptSketch, err)
			}
			return err
		}
	}
}

// unmarshalV1Body decodes the version-1 single-piece payload following
// an already-parsed header. Version 1 predates chunking, so this path
// buffers the whole payload (growing with the bytes actually delivered,
// never trusting the header's length alone).
func unmarshalV1Body(r io.Reader, env Envelope) (Sketch, error) {
	payload, err := readAllGrow(r, payloadBytes(env.PayloadBits))
	if err != nil {
		return nil, err
	}
	if sum := crc32.ChecksumIEEE(payload); sum != env.Checksum {
		return nil, corruptf("payload checksum %08x, envelope says %08x", sum, env.Checksum)
	}
	br := bitvec.NewReader(payload, env.PayloadBits)
	sk, err := core.UnmarshalSketch(br)
	if err != nil {
		return nil, err
	}
	if br.Remaining() != 0 {
		return nil, corruptf("%d unconsumed payload bits after decoding", br.Remaining())
	}
	if got, _ := sketchKindOf(sk); got != env.Kind {
		return nil, corruptf("envelope kind %v but payload decodes as %v", env.Kind, got)
	}
	return sk, nil
}

// readAllGrow reads exactly n bytes from r, growing the buffer at most
// chunkAllocStep ahead of delivery (the same hostile-length guard as
// chunkReader.fill).
func readAllGrow(r io.Reader, n int64) ([]byte, error) {
	var buf []byte
	for int64(len(buf)) < n {
		step := n - int64(len(buf))
		if step > chunkAllocStep {
			step = chunkAllocStep
		}
		got := len(buf)
		nb := append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, nb[got:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, truncatedf("stream ended after %d of %d payload bytes", got, n)
			}
			return nil, err
		}
		buf = nb
	}
	return buf, nil
}

// InspectFrom reads an envelope from r and validates it — header,
// chunk framing and every checksum — without decoding the sketch. For
// version 2 it walks (and for compressed payloads inflates) the whole
// stream with a bounded working set, verifying that the payload's byte
// count matches the declared bit length; it consumes exactly the
// envelope's bytes from r.
func InspectFrom(r io.Reader) (Envelope, error) {
	env, err := readStreamHeader(r)
	if err != nil {
		return env, err
	}
	want := payloadBytes(env.PayloadBits)
	if env.Version == 1 {
		h := crc32.NewIEEE()
		n, err := io.Copy(h, io.LimitReader(r, want))
		if err != nil {
			// io.Copy never surfaces io.EOF, so this is a genuine I/O
			// failure, not a short stream.
			return env, err
		}
		if n != want {
			return env, truncatedf("stream ended after %d of %d payload bytes", n, want)
		}
		if sum := h.Sum32(); sum != env.Checksum {
			return env, corruptf("payload checksum %08x, envelope says %08x", sum, env.Checksum)
		}
		return env, nil
	}
	cr := newChunkReader(r, env.ChunkBytes)
	defer cr.release()
	var src io.Reader = cr
	if env.Compressed {
		src = flate.NewReader(cr)
	}
	n, err := io.Copy(io.Discard, src)
	if err != nil {
		if cr.transportErr != nil {
			return env, cr.transportErr
		}
		if !errors.Is(err, ErrCorruptSketch) {
			// A flate-layer failure: classify truncation, mark the rest
			// corrupt.
			if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
				err = truncatedf("compressed payload ended early: %v", err)
			} else {
				err = fmt.Errorf("%w: %w", ErrCorruptSketch, err)
			}
		}
		return env, err
	}
	switch {
	case n < want:
		return env, truncatedf("payload carries %d bytes, header declares %d bits (%d bytes)", n, env.PayloadBits, want)
	case n > want:
		return env, corruptf("payload carries %d bytes, header declares %d bits (%d bytes)", n, env.PayloadBits, want)
	}
	if env.Compressed {
		if err := expectEOF(cr, cr, "framed bytes past the compressed payload"); err != nil {
			return env, err
		}
	}
	env.Chunks = cr.idx
	return env, nil
}
