// Command doclint checks that every exported symbol of the public
// itemsketch package (the repository root) carries a doc comment, so
// the API surface godoc renders never silently grows undocumented
// entries. It is part of the CI docs-lint step alongside go vet.
//
// Usage:
//
//	go run ./cmd/doclint            # lint the repository root package
//	go run ./cmd/doclint ./pkg ...  # lint specific package directories
//
// Exported methods on exported types are checked too; test files and
// example files are skipped. Exit status is 1 when any symbol is
// missing documentation, with one "file:line: symbol" diagnostic per
// finding.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = []string{"."}
	}
	bad := 0
	for _, dir := range dirs {
		missing, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		for _, m := range missing {
			fmt.Println(m)
		}
		bad += len(missing)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported symbols without doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses the non-test Go files of one package directory and
// returns a "file:line: symbol" line per undocumented exported symbol.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				checkDecl(decl, report)
			}
		}
	}
	sort.Strings(missing)
	return missing, nil
}

func checkDecl(decl ast.Decl, report func(token.Pos, string)) {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || isExportedRecv(d) == recvUnexported {
			return
		}
		if d.Doc == nil {
			report(d.Pos(), "func "+funcName(d))
		}
	case *ast.GenDecl:
		checkGenDecl(d, report)
	}
}

type recvKind int

const (
	recvNone recvKind = iota
	recvExported
	recvUnexported
)

// isExportedRecv classifies a function declaration's receiver: methods
// on unexported types are not part of the public API surface.
func isExportedRecv(d *ast.FuncDecl) recvKind {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return recvNone
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok && !id.IsExported() {
		return recvUnexported
	}
	return recvExported
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return "(method) " + d.Name.Name
}

// checkGenDecl handles const/var/type declarations. A doc comment on
// the grouped declaration covers all of its specs (matching godoc's
// rendering); otherwise each exported spec needs its own comment.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	groupDocumented := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !groupDocumented && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			if groupDocumented || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), "const/var "+name.Name)
				}
			}
		}
	}
}
