// Command attack runs the lower-bound reconstruction attacks standalone
// and narrates each step: encode a random payload into the hard
// database, build a real sketch of it, then read the payload back out
// of the sketch alone.
//
// Usage:
//
//	attack -which thm13 [-d 32 -k 2 -m 16 -seed 1]
//	attack -which thm15 [-k 2 -w 6 -seed 1]
//	attack -which thm16 [-d0 24 -n 12 -seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/rng"
)

func main() {
	which := flag.String("which", "thm13", "thm13|thm15|thm16")
	d := flag.Int("d", 32, "thm13: attributes (even)")
	k := flag.Int("k", 2, "itemset size")
	m := flag.Int("m", 16, "thm13: distinct rows (~1/eps)")
	w := flag.Int("w", 6, "thm15: width exponent (d = (k-1)*2^w)")
	d0 := flag.Int("d0", 24, "thm16: query-matrix height")
	n := flag.Int("n", 12, "thm16: database rows")
	seed := flag.Uint64("seed", 1, "randomness seed")
	flag.Parse()

	var err error
	switch *which {
	case "thm13":
		err = runThm13(*d, *k, *m, *seed)
	case "thm15":
		err = runThm15(*k, *w, *seed)
	case "thm16":
		err = runThm16(*d0, *n, *seed)
	default:
		err = fmt.Errorf("unknown attack %q", *which)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "attack:", err)
		os.Exit(1)
	}
}

func randomPayload(r *rng.RNG, bits int) *bitvec.Vector {
	v := bitvec.New(bits)
	for i := 0; i < bits; i++ {
		if r.Bool() {
			v.Set(i)
		}
	}
	return v
}

func report(payload, got *bitvec.Vector, sketchBits int64) {
	dist := got.HammingDistance(payload)
	fmt.Printf("recovered %d/%d payload bits correctly (Hamming distance %d)\n",
		payload.Len()-dist, payload.Len(), dist)
	fmt.Printf("sketch size: %d bits; payload: %d bits; ratio %.2f\n",
		sketchBits, payload.Len(), float64(sketchBits)/float64(payload.Len()))
	if dist == 0 {
		fmt.Println("=> the sketch provably carries the full payload: |S| >= payload bits")
	} else {
		fmt.Println("=> recovery incomplete (undersized or invalid sketch?)")
	}
}

func runThm13(d, k, m int, seed uint64) error {
	inst, err := lowerbound.NewThm13(d, k, m)
	if err != nil {
		return err
	}
	r := rng.New(seed)
	payload := randomPayload(r, inst.PayloadBits())
	fmt.Printf("Theorem 13 attack: d=%d k=%d m=%d, payload %d bits, query eps=%g\n",
		d, k, m, inst.PayloadBits(), inst.QueryEps())
	db, err := inst.Encode(payload, 2)
	if err != nil {
		return err
	}
	p := core.Params{K: k, Eps: inst.QueryEps(), Delta: 0.02, Mode: core.ForAll, Task: core.Indicator}
	sk, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, p)
	if err != nil {
		return err
	}
	fmt.Printf("built SUBSAMPLE For-All indicator sketch: %d samples, %d bits\n",
		core.SampleSize(db.NumCols(), p), sk.SizeBits())
	got := inst.Decode(sk)
	report(payload, got, sk.SizeBits())
	return nil
}

func runThm15(k, w int, seed uint64) error {
	inst, err := lowerbound.NewThm15(k, w, 0)
	if err != nil {
		return err
	}
	r := rng.New(seed)
	payload := randomPayload(r, inst.PayloadBits())
	fmt.Printf("Theorem 15 attack: k=%d w=%d (2d=%d cols, v=%d rows), payload %d bits, eps=1/50\n",
		k, w, inst.NumCols(), inst.V(), inst.PayloadBits())
	db, err := inst.Encode(payload)
	if err != nil {
		return err
	}
	p := core.Params{K: inst.K(), Eps: inst.QueryEps(), Delta: 0.02, Mode: core.ForAll, Task: core.Indicator}
	sk, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, p)
	if err != nil {
		return err
	}
	fmt.Printf("built SUBSAMPLE For-All indicator sketch: %d bits\n", sk.SizeBits())
	got, err := inst.Decode(sk)
	if err != nil {
		return err
	}
	report(payload, got, sk.SizeBits())
	return nil
}

func runThm16(d0, n int, seed uint64) error {
	de, err := lowerbound.NewDe(d0, n, 2, seed)
	if err != nil {
		return err
	}
	r := rng.New(seed + 1)
	payload := randomPayload(r, de.PayloadBits())
	fmt.Printf("Theorem 16 attack: d0=%d n=%d, payload %d bits, %d queries/column\n",
		d0, n, de.PayloadBits(), de.QueryRows())
	rep := de.Condition(30, r.Uint64())
	fmt.Printf("Lemma 26 check: sigma_min=%.2f (predicted ~%.2f), section ratio >= %.2f\n",
		rep.MinSingular, rep.PredictedSigma, rep.SectionRatioMin)
	db, err := de.Encode(payload)
	if err != nil {
		return err
	}
	eps := 0.2 / float64(n)
	p := core.Params{K: 2, Eps: eps, Delta: 0.05, Mode: core.ForAll, Task: core.Estimator}
	sk, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, p)
	if err != nil {
		return err
	}
	fmt.Printf("built SUBSAMPLE For-All estimator sketch at eps=%.4f: %d bits\n", eps, sk.SizeBits())
	got, err := de.Decode(sk.(core.EstimatorSketch))
	if err != nil {
		return err
	}
	report(payload, got, sk.SizeBits())
	return nil
}
