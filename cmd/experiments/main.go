// Command experiments regenerates the paper's evaluation: one table per
// theorem/lemma/construction (IDs E1–E11, indexed in DESIGN.md §4).
//
// Usage:
//
//	experiments            # run everything
//	experiments -id E6     # run one experiment
//	experiments -seed 7    # change the workload seed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run a single experiment (E1..E11); empty runs all")
	seed := flag.Uint64("seed", 42, "workload and sketching seed")
	flag.Parse()

	fmt.Println("Space Lower Bounds for Itemset Frequency Sketches (PODS 2016) — experiment harness")
	fmt.Printf("seed = %d\n\n", *seed)
	if *id == "" {
		experiments.RunAll(os.Stdout, *seed)
		return
	}
	if err := experiments.Run(os.Stdout, *id, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
