// Command bench runs the operational benchmarks of the public API and
// writes the results as JSON, so successive PRs accumulate a perf
// trajectory (BENCH_1.json, BENCH_2.json, ...) that can be compared
// mechanically.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_1.json        # full run
//	go run ./cmd/bench -quick -out bench.json   # CI smoke run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	itemsketch "repro"
	"repro/internal/rng"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	NumCPU     int      `json:"num_cpu"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Notes      string   `json:"notes,omitempty"`
	Results    []result `json:"results"`
}

func benchDB(n, d int) *itemsketch.Database {
	r := rng.New(1)
	db := itemsketch.NewDatabase(d)
	for i := 0; i < n; i++ {
		var attrs []int
		for a := 0; a < d; a++ {
			if r.Bernoulli(0.1) {
				attrs = append(attrs, a)
			}
		}
		db.AddRowAttrs(attrs...)
	}
	return db
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output JSON path")
	quick := flag.Bool("quick", false, "smaller databases for CI smoke runs")
	flag.Parse()

	nRows := 100000
	nBuild := 50000
	nMine := 10000
	if *quick {
		nRows, nBuild, nMine = 20000, 10000, 2000
	}

	var results []result
	record := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		results = append(results, result{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		})
		fmt.Printf("%-32s %12.1f ns/op %8d allocs/op %10d B/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp(), r.AllocedBytesPerOp())
	}

	p := itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}

	// Exact frequency query, vertical fused path.
	{
		db := benchDB(nRows, 64)
		db.BuildColumnIndex()
		T := itemsketch.MustItemset(3, 41, 50)
		record("exact_frequency_query", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = db.Frequency(T)
			}
		})
	}

	// Horizontal scan, serial vs sharded.
	{
		db := benchDB(nRows, 64)
		T := itemsketch.MustItemset(3, 41, 50)
		record("scan_serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = db.ScanCount(T, 1)
			}
		})
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		record("scan_parallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = db.ScanCount(T, workers)
			}
		})
	}

	// Batched exact queries on the vertical index.
	{
		db := benchDB(nRows, 64)
		db.BuildColumnIndex()
		r := rng.New(99)
		ts := make([]itemsketch.Itemset, 256)
		for i := range ts {
			a := r.Intn(64)
			c := (a + 1 + r.Intn(63)) % 64
			ts[i] = itemsketch.MustItemset(a, c)
		}
		dst := make([]int, len(ts))
		record("count_many_256", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db.CountManyInto(dst, ts)
			}
		})
	}

	// Sketch build and query.
	{
		db := benchDB(nBuild, 64)
		record("sketch_build_subsample", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (itemsketch.Subsample{Seed: uint64(i)}).Sketch(db, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		sk, err := (itemsketch.Subsample{Seed: 1}).Sketch(db, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		es := sk.(itemsketch.EstimatorSketch)
		T := itemsketch.MustItemset(3, 41)
		record("sketch_query_estimate", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = es.Estimate(T)
			}
		})
	}

	// Streaming ingest.
	{
		res, err := itemsketch.NewReservoir(64, 10000, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		record("reservoir_add_attrs", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res.AddAttrs(i%64, (i+7)%64, (i+13)%64)
			}
		})
	}

	// Miners on an exact market-basket database.
	{
		r := rng.New(1)
		gen := benchMarketBasket(r, nMine, 48)
		gen.BuildColumnIndex()
		record("mine_eclat", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = itemsketch.Eclat(gen, 0.05, 3)
			}
		})
		src := itemsketch.OnDatabase(gen)
		record("mine_apriori", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = itemsketch.Apriori(src, 0.05, 3)
			}
		})
	}

	rep := report{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Notes:      "scan_parallel shards across goroutines; it only beats scan_serial with >1 CPU",
		Results:    results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// benchMarketBasket mirrors the bench_test.go mining workload via the
// public API (Zipfian baskets, mean size 5).
func benchMarketBasket(r *rng.RNG, n, d int) *itemsketch.Database {
	z := rng.NewZipf(r, d, 1.2)
	db := itemsketch.NewDatabase(d)
	for i := 0; i < n; i++ {
		var attrs []int
		seen := make(map[int]bool)
		size := 1 + r.Intn(9)
		for j := 0; j < size; j++ {
			a := z.Next()
			if !seen[a] {
				seen[a] = true
				attrs = append(attrs, a)
			}
		}
		db.AddRowAttrs(attrs...)
	}
	return db
}
