// Command bench runs the operational benchmarks of the public API and
// writes the results as JSON, so successive PRs accumulate a perf
// trajectory (BENCH_1.json, BENCH_2.json, ...) that can be compared
// mechanically.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_7.json                          # full run
//	go run ./cmd/bench -quick -out bench.json                     # CI smoke run
//	go run ./cmd/bench -quick -out b.json -compare BENCH_6.json   # + regression gate
//
// With -compare, the gated benchmark families (sketch builds,
// streaming ingest and the miners — the operations a PR must not slow
// down) that appear in both runs are checked against the baseline
// ns/op; any regression beyond -maxregress (default 20%) fails the run
// with exit status 1. Gated rows are measured best-of-3 (minimum
// ns/op over repetitions) so contention jitter on a shared runner
// cannot flap the gate. Query benchmarks are reported but not gated,
// since their thresholds live with the fuzz/property tests instead.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	itemsketch "repro"
	"repro/internal/bitvec"
	"repro/internal/ingest"
	"repro/internal/rng"
	"repro/internal/service"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

type report struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// CPUFeatures is the bitvec kernel layer's detected dispatch state
	// (e.g. "avx2=true"). A perf delta between two BENCH files with
	// different cpu_features is a dispatch-path change, not a
	// code-change signal.
	CPUFeatures string   `json:"cpu_features"`
	Notes       string   `json:"notes,omitempty"`
	Results     []result `json:"results"`
}

func benchDB(n, d int) *itemsketch.Database {
	r := rng.New(1)
	db := itemsketch.NewDatabase(d)
	for i := 0; i < n; i++ {
		var attrs []int
		for a := 0; a < d; a++ {
			if r.Bernoulli(0.1) {
				attrs = append(attrs, a)
			}
		}
		db.AddRowAttrs(attrs...)
	}
	return db
}

// gatedPrefixes name the benchmark families gated by -compare: the
// sketch-construction and streaming-ingest paths, plus the miners
// (mine_eclat, mine_eclat_dense, mine_eclat_diffset, mine_apriori,
// mine_apriori_trie) since the allocation-free engine made them a
// guarded hot path too.
//
// importance_ingest is recorded but NOT gated: its amortized design
// (one Sketch call grows a multi-megabyte arena inside the timed
// region, per-op = per sampled row) measures ±25% run to run on the
// shared reference container with byte-identical code — beyond the
// 20% threshold, so gating it only produces false alarms. Its
// allocs/op (0) is the stable signal and is pinned by the recorded
// BENCH files.
var gatedPrefixes = []string{
	// The word-slice kernels underneath every query and miner: the
	// dispatched AND/ANDN popcount and store+count entry points at the
	// two operand sizes the query tiers actually run (one 10k-row
	// column = 157 words, one 100k-row column = 1563 words). These pin
	// the SIMD dispatch itself — a regression here means the kernel
	// layer stopped selecting (or stopped winning on) the vector path.
	"kernel_",
	"sketch_build",
	"subsample_build",
	"median_amplifier_build",
	"reservoir_add",
	"countsketch_",
	"heavyhitters_",
	"mine_",
	"wal_",
	"ingest_concurrent_",
	"windowed_",
	// The memoized service read paths: repeated hot queries must stay
	// cache-hits (one cross-shard merge per snapshot generation), so a
	// regression here means the merge caches stopped absorbing repeats.
	"service_estimate_coalesced",
	"service_mine_hot",
	"service_hh_mg_hot",
}

func isGated(name string) bool {
	for _, p := range gatedPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// compareBaseline checks the gated benchmarks present in both runs and
// returns the names that regressed beyond maxRegress.
func compareBaseline(baseline report, results []result, maxRegress float64) []string {
	base := make(map[string]float64, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r.NsPerOp
	}
	var failures []string
	for _, r := range results {
		b, ok := base[r.Name]
		if !ok || !isGated(r.Name) || b <= 0 {
			continue
		}
		ratio := r.NsPerOp / b
		status := "ok"
		if ratio > 1+maxRegress {
			status = "REGRESSED"
			failures = append(failures, r.Name)
		}
		fmt.Printf("compare %-32s %8.1f -> %8.1f ns/op  (%+.1f%%)  %s\n",
			r.Name, b, r.NsPerOp, (ratio-1)*100, status)
	}
	return failures
}

func main() {
	out := flag.String("out", "BENCH_7.json", "output JSON path")
	quick := flag.Bool("quick", false, "smaller databases for CI smoke runs")
	compare := flag.String("compare", "", "baseline BENCH_*.json to gate benchmarks against")
	maxRegress := flag.Float64("maxregress", 0.20, "allowed fractional ns/op regression vs -compare baseline")
	flag.Parse()

	nRows := 100000
	nBuild := 50000
	nMine := 10000
	if *quick {
		nRows, nBuild, nMine = 20000, 10000, 2000
	}

	var results []result
	record := func(name string, f func(b *testing.B)) {
		// Gated rows are measured best-of-3: the shared reference
		// container shows >20% run-to-run jitter from CPU contention
		// on byte-identical code, so a single draw flaps the -compare
		// gate on a random row each run. The minimum over repetitions
		// is the standard contention-robust estimator — noise only
		// ever adds time — and keeps the 20% gate meaningful. Ungated
		// rows stay single-shot.
		reps := 1
		if isGated(name) {
			reps = 3
		}
		var best testing.BenchmarkResult
		var bestNs float64
		for rep := 0; rep < reps; rep++ {
			// Settle the heap between benchmarks: GC pacing inherited
			// from a previous benchmark's garbage otherwise bleeds into
			// allocation-heavy measurements (importance_ingest grows a
			// multi-megabyte arena inside its timed pass and is ~40%
			// noisier without this).
			runtime.GC()
			r := testing.Benchmark(f)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			if rep == 0 || ns < bestNs {
				best, bestNs = r, ns
			}
		}
		results = append(results, result{
			Name:        name,
			NsPerOp:     bestNs,
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
			Iterations:  best.N,
		})
		fmt.Printf("%-32s %12.1f ns/op %8d allocs/op %10d B/op\n",
			name, bestNs, best.AllocsPerOp(), best.AllocedBytesPerOp())
	}

	ctx := context.Background()
	p := itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}

	// Word-slice kernels through the public dispatched entry points, at
	// the column sizes of the 10k-row (157-word) and 100k-row
	// (1563-word) reference databases. cpu_features in the report header
	// records which path (assembly vs pure Go) these numbers measure.
	{
		var sinkKernel int
		for _, nw := range []int{157, 1563} {
			a := make([]uint64, nw)
			bw := make([]uint64, nw)
			dst := make([]uint64, nw)
			r := rng.New(uint64(nw))
			for i := range a {
				a[i] = r.Uint64()
				bw[i] = r.Uint64()
			}
			record(fmt.Sprintf("kernel_andcount_w%d", nw), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sinkKernel = bitvec.AndCountWords(a, bw)
				}
			})
			record(fmt.Sprintf("kernel_andnotcount_w%d", nw), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sinkKernel = bitvec.AndNotCountWords(a, bw)
				}
			})
			record(fmt.Sprintf("kernel_andinto_w%d", nw), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sinkKernel = bitvec.AndInto(dst, a, bw)
				}
			})
		}
		_ = sinkKernel
	}

	// Exact frequency query, vertical fused path.
	{
		db := benchDB(nRows, 64)
		db.BuildColumnIndex()
		T := itemsketch.MustItemset(3, 41, 50)
		record("exact_frequency_query", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = db.Frequency(T)
			}
		})
	}

	// Horizontal scan, serial vs sharded.
	{
		db := benchDB(nRows, 64)
		T := itemsketch.MustItemset(3, 41, 50)
		record("scan_serial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = db.ScanCount(T, 1)
			}
		})
		workers := runtime.GOMAXPROCS(0)
		if workers < 2 {
			workers = 2
		}
		record("scan_parallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = db.ScanCount(T, workers)
			}
		})
	}

	// Batched exact queries on the vertical index.
	{
		db := benchDB(nRows, 64)
		db.BuildColumnIndex()
		r := rng.New(99)
		ts := make([]itemsketch.Itemset, 256)
		for i := range ts {
			a := r.Intn(64)
			c := (a + 1 + r.Intn(63)) % 64
			ts[i] = itemsketch.MustItemset(a, c)
		}
		dst := make([]int, len(ts))
		record("count_many_256", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				db.CountManyInto(dst, ts)
			}
		})
	}

	// Sketch build and query.
	{
		db := benchDB(nBuild, 64)
		record("sketch_build_subsample", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := (itemsketch.Subsample{Seed: uint64(i)}).Sketch(db, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Large-sample build, serial vs parallel, through the public
		// Build path with a per-build worker budget. The sample spans
		// several deterministic construction chunks so the sharded
		// build engages; with one CPU both variants should match.
		// Workload-size-dependent benchmarks carry the size in their
		// name so -compare can never silently match a -quick run
		// against a full-run baseline of the same label.
		buildSample := 1 << 15
		if *quick {
			buildSample = 1 << 13
		}
		recordBuild := func(name string, workers int) {
			record(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, _, err := itemsketch.Build(ctx, db,
						itemsketch.WithParams(p),
						itemsketch.WithAlgorithm(itemsketch.Subsample{SampleOverride: buildSample}),
						itemsketch.WithSeed(uint64(i)),
						itemsketch.WithWorkers(workers))
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		recordBuild(fmt.Sprintf("subsample_build_serial_s%d", buildSample), 1)
		recordBuild(fmt.Sprintf("subsample_build_parallel_s%d", buildSample), 0)

		// Theorem 17 amplifier: independent sub-sketches fanned out
		// across the worker pool, deterministically seeded per copy.
		copies := 32
		if *quick {
			copies = 8
		}
		m := itemsketch.MedianAmplifier{
			Base:           itemsketch.Subsample{Seed: 1, SampleOverride: 2048},
			CopiesOverride: copies,
		}
		recordAmp := func(name string, workers int) {
			record(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, _, err := itemsketch.Build(ctx, db,
						itemsketch.WithParams(p),
						itemsketch.WithAlgorithm(m),
						itemsketch.WithSeed(1),
						itemsketch.WithWorkers(workers))
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		recordAmp(fmt.Sprintf("median_amplifier_build_serial_c%d", copies), 1)
		recordAmp(fmt.Sprintf("median_amplifier_build_c%d", copies), 0)

		// Amortized per-row ingest of the arena-backed importance
		// sampler: one Sketch call draws b.N rows, so per-op numbers
		// are per sampled row and fixed setup costs amortize to
		// 0 allocs/op.
		record("importance_ingest", func(b *testing.B) {
			b.ReportAllocs()
			is := itemsketch.ImportanceSample{Seed: 1, SampleOverride: b.N}
			if _, err := is.Sketch(db, p); err != nil {
				b.Fatal(err)
			}
		})
		sk, err := (itemsketch.Subsample{Seed: 1}).Sketch(db, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		es := sk.(itemsketch.EstimatorSketch)
		T := itemsketch.MustItemset(3, 41)
		record("sketch_query_estimate", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = es.Estimate(T)
			}
		})
		// Wire round trip through the self-describing envelope
		// (streamed chunked encode + decode over pooled buffers).
		record("sketch_envelope_roundtrip", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := itemsketch.Unmarshal(itemsketch.Marshal(sk)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Hierarchical count sketch: per-item update cost across all dyadic
	// levels, the median-of-rows point estimate, and the recursive
	// heavy-hitter descent over a Zipfian stream.
	{
		cs, err := itemsketch.NewCountSketch(itemsketch.CountSketchConfig{
			Universe: 1 << 16, Rows: 5, Cols: 1024, Base: 16, Seed: 1})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := rng.New(5)
		z := rng.NewZipf(r, 1<<16, 1.2)
		items := make([]int, 1<<14)
		for i := range items {
			items[i] = z.Next()
		}
		record("countsketch_ingest", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cs.Add(items[i&(1<<14-1)])
			}
		})
		record("countsketch_estimate", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = cs.EstimateCount(items[i&(1<<14-1)])
			}
		})
		record("heavyhitters_find", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = cs.HeavyHitters(0.01)
			}
		})
	}

	// Streaming ingest.
	{
		res, err := itemsketch.NewReservoir(64, 10000, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		record("reservoir_add_attrs", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res.AddAttrs(i%64, (i+7)%64, (i+13)%64)
			}
		})
	}

	// Streaming ingest subsystem: WAL append/replay, the concurrent
	// pool at 1 and 4 writers, and the sliding-window sampler. All
	// rows are fixed-size workloads (independent of -quick) so the
	// names gate across run modes. The 4w/1w rows-per-second ratio is
	// recorded ungated (pool_speedup_4w): on the single-CPU reference
	// container the workers serialize and the ratio hovers near 1; it
	// becomes meaningful (target ≥ 2x) only at GOMAXPROCS ≥ 4.
	{
		mkRows := func(n int) [][]int {
			r := rng.New(21)
			rows := make([][]int, n)
			for i := range rows {
				var attrs []int
				for a := 0; a < 64; a++ {
					if r.Bernoulli(0.1) {
						attrs = append(attrs, a)
					}
				}
				rows[i] = attrs
			}
			return rows
		}
		rows := mkRows(8192)
		walBench, err := os.MkdirTemp("", "bench-wal-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(walBench)
		w, err := ingest.OpenWAL(ingest.WALConfig{Dir: walBench, NumAttrs: 64})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		record("wal_append", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := w.Append(rows[i&8191]...); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Replay a fixed 8192-row log per op (segments already on disk
		// from a dedicated directory, so wal_append's b.N-dependent log
		// size never leaks into this row).
		replayDir, err := os.MkdirTemp("", "bench-walreplay-*")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(replayDir)
		rw, err := ingest.OpenWAL(ingest.WALConfig{Dir: replayDir, NumAttrs: 64})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, row := range rows {
			if err := rw.Append(row...); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if err := rw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		record("wal_replay", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				n, err := ingest.ReplayDir(replayDir, 64, nil, func([]int) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				if n != 8192 {
					b.Fatalf("replayed %d rows, want 8192", n)
				}
			}
		})

		poolNs := make(map[int]float64, 2)
		for _, workers := range []int{1, 4} {
			pl, err := ingest.NewPool(ingest.PoolConfig{
				NumAttrs: 64, Workers: workers, SampleCapacity: 4096,
				HeavyK: 64, Seed: 1,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			name := fmt.Sprintf("ingest_concurrent_%dw", workers)
			record(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := pl.Add(rows[i&8191]...); err != nil {
						b.Fatal(err)
					}
				}
				if err := pl.Flush(); err != nil {
					b.Fatal(err)
				}
			})
			poolNs[workers] = results[len(results)-1].NsPerOp
			if err := pl.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if poolNs[4] > 0 {
			speedup := poolNs[1] / poolNs[4]
			results = append(results, result{
				Name:       "pool_speedup_4w",
				NsPerOp:    speedup,
				Iterations: 1,
			})
			fmt.Printf("%-32s %12.2fx rows/s vs 1 writer (GOMAXPROCS=%d; target ≥ 2x needs ≥ 4 CPUs)\n",
				"pool_speedup_4w", speedup, runtime.GOMAXPROCS(0))
		}

		win, err := itemsketch.NewWindowedReservoir(64, 65536, 8, 4096, 1, p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		record("windowed_ingest", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				win.AddAttrs(rows[i&8191]...)
			}
		})
	}

	// Miners. The sparse market-basket workload runs on a warm reusable
	// Miner (steady-state allocation-free Eclat, trie Apriori with one
	// batched query per level); the dense uniform workload pits the
	// forced-tidset baseline against forced diffsets, where the dEclat
	// early exit pays off.
	{
		r := rng.New(1)
		gen := benchMarketBasket(r, nMine, 48)
		gen.BuildColumnIndex()
		miner := itemsketch.NewMiner()
		record("mine_eclat", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = miner.Eclat(gen, 0.05, 3)
			}
		})
		q := itemsketch.QueryDatabase(gen)
		record("mine_apriori", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := itemsketch.AprioriContext(ctx, q, 0.05, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("mine_apriori_trie", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := miner.AprioriContext(ctx, q, 0.05, 3); err != nil {
					b.Fatal(err)
				}
			}
		})

		// The dense workload is size-independent of -quick so the
		// tidset-vs-diffset comparison always runs on the same regime:
		// 0.7-density columns (every root switches to its complement),
		// a threshold between the pair and triple support levels, so
		// almost every triple candidate fails — via a capped diffset
		// kernel that bails within a block or two, where the tidset
		// baseline pays every full pass.
		dense := benchDenseDB(10000, 48, 0.7)
		dense.BuildColumnIndex()
		record("mine_eclat_dense", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = miner.EclatWith(dense, 0.45, 3, itemsketch.EclatTidsets)
			}
		})
		record("mine_eclat_diffset", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = miner.EclatWith(dense, 0.45, 3, itemsketch.EclatDiffsets)
			}
		})
	}

	// Sharded service tier: ingest throughput and query latency through
	// the fan-out/merge path (the Service API directly; HTTP codec cost
	// is not part of these numbers). The p99 row is a latency quantile,
	// not a throughput mean: NsPerOp holds the 99th-percentile
	// single-query latency over Iterations sequential calls. Reported,
	// not gated — tail latency on the shared reference container is too
	// noisy for a 20% gate.
	{
		svc, err := service.New(service.Config{
			Shards: 8, NumAttrs: 64, SampleCapacity: 4096, Seed: 1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := rng.New(11)
		batch := make([][]int, 256)
		for i := range batch {
			var attrs []int
			for a := 0; a < 64; a++ {
				if r.Bernoulli(0.1) {
					attrs = append(attrs, a)
				}
			}
			batch[i] = attrs
		}
		record("service_ingest_batch256", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Ingest(ctx, batch); err != nil {
					b.Fatal(err)
				}
			}
		})
		ts := make([]itemsketch.Itemset, 64)
		for i := range ts {
			a := r.Intn(64)
			c := (a + 1 + r.Intn(63)) % 64
			ts[i] = itemsketch.MustItemset(a, c)
		}
		record("service_estimate_batch64", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := svc.Estimate(ctx, ts); err != nil {
					b.Fatal(err)
				}
			}
		})
		// p99 single-query latency across the 8-shard fan-out.
		nLat := 2000
		if *quick {
			nLat = 500
		}
		one := ts[:1]
		lats := make([]time.Duration, nLat)
		for i := range lats {
			start := time.Now()
			if _, _, err := svc.Estimate(ctx, one); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			lats[i] = time.Since(start)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p99 := lats[nLat*99/100]
		results = append(results, result{
			Name:       "service_estimate_p99",
			NsPerOp:    float64(p99.Nanoseconds()),
			Iterations: nLat,
		})
		fmt.Printf("%-32s %12.1f ns/op (p99 latency, %d samples)\n",
			"service_estimate_p99", float64(p99.Nanoseconds()), nLat)

		// Hot memoized read paths: with ingest quiesced, repeated heavy
		// hitter and mining queries must ride the merged-snapshot caches
		// (one cross-shard merge per snapshot generation, then pure
		// cache hits). One warming call pays the merge outside the timed
		// region. The MG heavy-hitter row is nearly free once cached —
		// it reports the memoized answer; the mine row still runs the
		// Apriori pass per request over the cached union sample.
		if _, _, _, err := svc.HeavyHitters(ctx, 0.2); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if _, _, err := svc.Mine(ctx, 0.3, 2); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		record("service_hh_mg_hot", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := svc.HeavyHitters(ctx, 0.2); err != nil {
					b.Fatal(err)
				}
			}
		})
		record("service_mine_hot", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := svc.Mine(ctx, 0.3, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
		svc.Close()
	}

	// Coalesced query tier: 8 concurrent single-itemset estimates per
	// op through a coalesce-enabled service — the collector batches
	// them into (ideally) one fan-out, so ns/op is the cost of
	// answering 8 concurrent requests, goroutine handoff included.
	{
		svc, err := service.New(service.Config{
			Shards: 8, NumAttrs: 64, SampleCapacity: 4096, Seed: 1,
			Coalesce: &service.CoalesceConfig{Linger: 100 * time.Microsecond, MaxBatch: 8},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r := rng.New(13)
		rows := make([][]int, 4096)
		for i := range rows {
			var attrs []int
			for a := 0; a < 64; a++ {
				if r.Bernoulli(0.1) {
					attrs = append(attrs, a)
				}
			}
			rows[i] = attrs
		}
		if _, err := svc.Ingest(ctx, rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		qs := make([][]itemsketch.Itemset, 8)
		for i := range qs {
			a := r.Intn(64)
			c := (a + 1 + r.Intn(63)) % 64
			qs[i] = []itemsketch.Itemset{itemsketch.MustItemset(a, c)}
		}
		record("service_estimate_coalesced", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make([]error, len(qs))
				for j := range qs {
					wg.Add(1)
					go func(j int) {
						defer wg.Done()
						_, _, errs[j] = svc.Estimate(ctx, qs[j])
					}(j)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		svc.Close()
	}

	rep := report{
		Date:        time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		CPUFeatures: bitvec.KernelFeatures(),
		Notes:       "kernel_* rows measure the dispatched bitvec word kernels (AND/ANDN popcount and store+count) at 157- and 1563-word operands — the 10k- and 100k-row column sizes; cpu_features records whether they ran the AVX2 assembly (avx2=true) or the portable Go loops, so cross-machine comparisons are honest. parallel/sharded variants (scan_parallel, subsample_build_parallel, median_amplifier_build) only beat their serial twins with >1 CPU; on a single-CPU runner read them as no-regression checks. mine_eclat_dense is the forced-tidset baseline on the dense database; mine_eclat_diffset is the same mine with forced diffsets. countsketch_ingest/estimate are per-item costs over a 2^16-universe hierarchical count sketch (5x1024, base 16); heavyhitters_find is one full recursive descent at phi=0.01 on a Zipf(1.2) stream. service_* rows measure the sharded sketch service (8 shards, d=64) through its Go API; service_estimate_p99 is a latency quantile (99th percentile single-query latency), not a throughput mean; the ingest/estimate/p99 service rows are reported, not gated. service_hh_mg_hot and service_mine_hot are the memoized read paths with ingest quiesced (cache-hit cost after one warming merge; mine still runs its Apriori pass per request over the cached union sample) and ARE gated; service_estimate_coalesced is the cost of 8 concurrent single-itemset estimates batched by the request coalescer (100us linger, max batch 8), also gated. wal_append/wal_replay are the write-ahead row log (default 256-row records; replay covers a fixed 8192-row log per op); ingest_concurrent_1w/4w are per-row costs through the concurrent pool; pool_speedup_4w is their rows/s ratio, recorded ungated because it only becomes meaningful (target >= 2x) at GOMAXPROCS >= 4 — on the 1-CPU reference container the writers serialize; windowed_ingest is the sliding-window sampler (65536-row window, 8 buckets).",
		Results:     results,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var baseline report
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parsing baseline %s: %v\n", *compare, err)
			os.Exit(1)
		}
		if failures := compareBaseline(baseline, results, *maxRegress); len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "bench: benchmarks regressed >%.0f%% vs %s: %s\n",
				*maxRegress*100, *compare, strings.Join(failures, ", "))
			os.Exit(1)
		}
	}
}

// benchMarketBasket mirrors the bench_test.go mining workload via the
// public API (Zipfian baskets, mean size 5).
func benchMarketBasket(r *rng.RNG, n, d int) *itemsketch.Database {
	z := rng.NewZipf(r, d, 1.2)
	db := itemsketch.NewDatabase(d)
	for i := 0; i < n; i++ {
		var attrs []int
		seen := make(map[int]bool)
		size := 1 + r.Intn(9)
		for j := 0; j < size; j++ {
			a := z.Next()
			if !seen[a] {
				seen[a] = true
				attrs = append(attrs, a)
			}
		}
		db.AddRowAttrs(attrs...)
	}
	return db
}

// benchDenseDB is a uniform-density database: every attribute is
// present in each row with probability density — the dense regime
// where columns exceed half the rows and dEclat switches to diffsets.
func benchDenseDB(n, d int, density float64) *itemsketch.Database {
	r := rng.New(7)
	db := itemsketch.NewDatabase(d)
	attrs := make([]int, 0, d)
	for i := 0; i < n; i++ {
		attrs = attrs[:0]
		for a := 0; a < d; a++ {
			if r.Bernoulli(density) {
				attrs = append(attrs, a)
			}
		}
		db.AddRowAttrs(attrs...)
	}
	return db
}
