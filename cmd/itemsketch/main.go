// Command itemsketch builds, inspects, queries, and mines itemset
// frequency sketches from transaction files.
//
// Usage:
//
//	itemsketch sketch -in baskets.txt -d 64 -out sketch.bin [-k 2 -eps 0.05 -delta 0.05 -mode forall -task estimator -algo auto]
//	itemsketch query  -sketch sketch.bin -items 3,17
//	itemsketch mine   -sketch sketch.bin -minsup 0.1 -maxk 3 [-rules 0.6]
//	itemsketch info   -sketch sketch.bin
//
// The transaction format is one basket per line: space-separated
// attribute indices in [0, d). Sketch files are the versioned
// self-describing envelope streamed by itemsketch.MarshalTo (version 2,
// chunked, optionally compressed with -compress); version-1 envelopes
// and files from the pre-envelope format are still read transparently.
package main

import (
	"context"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	itemsketch "repro"
	"repro/internal/atomicfile"
	"repro/internal/bitvec"
	"repro/internal/core"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "sketch":
		err = cmdSketch(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "mine":
		err = cmdMine(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "itemsketch:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: itemsketch <sketch|query|mine|info> [flags]
  sketch -in FILE -d COLS -out FILE [-k K -eps E -delta D -mode forall|foreach -task estimator|indicator -algo auto|subsample|release-db|release-answers|importance-sample -seed N -compress]
  query  -sketch FILE -items a,b,c
  mine   -sketch FILE -minsup F -maxk K [-rules CONF]
  info   -sketch FILE`)
}

func parseParams(k int, eps, delta float64, mode, task string) (itemsketch.Params, error) {
	p := itemsketch.Params{K: k, Eps: eps, Delta: delta}
	switch strings.ToLower(mode) {
	case "forall":
		p.Mode = itemsketch.ForAll
	case "foreach":
		p.Mode = itemsketch.ForEach
	default:
		return p, fmt.Errorf("unknown mode %q", mode)
	}
	switch strings.ToLower(task) {
	case "estimator":
		p.Task = itemsketch.Estimator
	case "indicator":
		p.Task = itemsketch.Indicator
	default:
		return p, fmt.Errorf("unknown task %q", task)
	}
	return p, p.Validate()
}

func cmdSketch(args []string) error {
	fs := flag.NewFlagSet("sketch", flag.ExitOnError)
	in := fs.String("in", "", "transactions file (required)")
	d := fs.Int("d", 0, "number of attribute columns (required)")
	out := fs.String("out", "", "output sketch file (required)")
	k := fs.Int("k", 2, "itemset size")
	eps := fs.Float64("eps", 0.05, "precision")
	delta := fs.Float64("delta", 0.05, "failure probability")
	mode := fs.String("mode", "forall", "forall|foreach")
	task := fs.String("task", "estimator", "estimator|indicator")
	algo := fs.String("algo", "auto", "auto|subsample|release-db|release-answers")
	seed := fs.Uint64("seed", 1, "sketching randomness seed")
	compress := fs.Bool("compress", false, "flate-compress the sketch payload")
	fs.Parse(args)
	if *in == "" || *out == "" || *d <= 0 {
		return errors.New("sketch: -in, -d and -out are required")
	}
	p, err := parseParams(*k, *eps, *delta, *mode, *task)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := itemsketch.ReadTransactions(f, *d)
	if err != nil {
		return err
	}
	opts := []itemsketch.BuildOption{itemsketch.WithParams(p), itemsketch.WithSeed(*seed)}
	switch *algo {
	case "auto":
		// No WithAlgorithm: the Theorem 12 planner picks.
	case "subsample":
		opts = append(opts, itemsketch.WithAlgorithm(itemsketch.Subsample{}))
	case "release-db":
		opts = append(opts, itemsketch.WithAlgorithm(itemsketch.ReleaseDB{}))
	case "release-answers":
		opts = append(opts, itemsketch.WithAlgorithm(itemsketch.ReleaseAnswers{}))
	case "importance-sample":
		opts = append(opts, itemsketch.WithAlgorithm(itemsketch.ImportanceSample{}))
	default:
		return fmt.Errorf("unknown algo %q", *algo)
	}
	sk, plan, err := itemsketch.Build(context.Background(), db, opts...)
	if err != nil {
		return err
	}
	if *algo == "auto" {
		fmt.Printf("planner: release-db=%.0f release-answers=%.0f subsample=%.0f bits -> %s\n",
			plan.Costs["release-db"], plan.Costs["release-answers"], plan.Costs["subsample"],
			plan.Winner.Name())
	}
	var mopts []itemsketch.MarshalOption
	if *compress {
		mopts = append(mopts, itemsketch.WithCompression())
	}
	// The sketch streams to disk chunk by chunk; nothing buffers the
	// whole payload, so RELEASE-DB sketches at census scale spill
	// straight through. atomicfile stages the stream in a temp file
	// that is fsynced and renamed over the destination, so a crash or
	// I/O error mid-write never leaves a torn sketch under *out.
	var written int64
	err = atomicfile.Write(*out, func(w io.Writer) error {
		var werr error
		written, werr = itemsketch.MarshalTo(w, sk, mopts...)
		return werr
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s sketch, %d bits (%.1f KB payload, %.1f KB on disk) for %d rows x %d cols\n",
		*out, sk.Name(), sk.SizeBits(), float64(sk.SizeBits())/8192, float64(written)/1024, db.NumRows(), db.NumCols())
	return nil
}

// Sketch files are the MarshalTo envelope verbatim (version 1 or 2),
// decoded through the streaming path so only one chunk is buffered.
// Files written before the envelope existed (8-byte little-endian bit
// count, then the packed bits) are still readable through the legacy
// raw fallback below — the public MarshalRaw/UnmarshalRaw wrappers are
// gone, but the CLI keeps decoding old files by driving the core
// decoder over the bare bit stream, which needs the whole file in
// memory.
func readSketchFile(path string) (itemsketch.Sketch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sk, serr := itemsketch.UnmarshalFrom(f)
	f.Close()
	if serr == nil || !errors.Is(serr, itemsketch.ErrCorruptSketch) {
		return sk, serr
	}
	// Not a (valid) envelope: try the pre-envelope format directly —
	// the envelope decode already failed, so only the legacy
	// interpretation is left, and its failure reports the envelope
	// error (the likelier diagnosis).
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) >= 8 {
		if bits := binary.LittleEndian.Uint64(raw[:8]); bits <= uint64(len(raw)-8)*8 {
			if legacy, lerr := core.UnmarshalSketch(bitvec.NewReader(raw[8:], int(bits))); lerr == nil {
				return legacy, nil
			}
		}
	}
	return nil, serr
}

func parseItems(s string) (itemsketch.Itemset, error) {
	if s == "" {
		return itemsketch.Itemset{}, errors.New("empty itemset")
	}
	parts := strings.Split(s, ",")
	attrs := make([]int, 0, len(parts))
	for _, p := range parts {
		a, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return itemsketch.Itemset{}, fmt.Errorf("bad attribute %q: %v", p, err)
		}
		attrs = append(attrs, a)
	}
	return itemsketch.NewItemset(attrs...)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	path := fs.String("sketch", "", "sketch file (required)")
	items := fs.String("items", "", "comma-separated attributes (required)")
	fs.Parse(args)
	if *path == "" || *items == "" {
		return errors.New("query: -sketch and -items are required")
	}
	sk, err := readSketchFile(*path)
	if err != nil {
		return err
	}
	T, err := parseItems(*items)
	if err != nil {
		return err
	}
	p := sk.Params()
	fmt.Printf("sketch: %s %v\n", sk.Name(), p)
	ctx := context.Background()
	q := itemsketch.QuerySketch(sk)
	switch est, err := q.Estimate(ctx, T); {
	case err == nil:
		fmt.Printf("estimate f(%v) = %.5f\n", T, est)
	case errors.Is(err, itemsketch.ErrTaskMismatch):
		// Indicator-only sketch: the Contains answer below is all it has.
	default:
		return err
	}
	frequent, err := q.Contains(ctx, T)
	if err != nil {
		return err
	}
	fmt.Printf("frequent(%v) at eps=%g: %v\n", T, p.Eps, frequent)
	return nil
}

func cmdMine(args []string) error {
	fs := flag.NewFlagSet("mine", flag.ExitOnError)
	path := fs.String("sketch", "", "sketch file (required)")
	minsup := fs.Float64("minsup", 0.1, "minimum support")
	maxk := fs.Int("maxk", 3, "maximum itemset size")
	rules := fs.Float64("rules", 0, "if > 0, also derive rules at this confidence")
	fs.Parse(args)
	if *path == "" {
		return errors.New("mine: -sketch is required")
	}
	sk, err := readSketchFile(*path)
	if err != nil {
		return err
	}
	rs, err := itemsketch.AprioriContext(context.Background(), itemsketch.QuerySketch(sk), *minsup, *maxk)
	if err != nil {
		if errors.Is(err, itemsketch.ErrTaskMismatch) {
			return fmt.Errorf("mine: %s sketch does not support estimates (indicator-only)", sk.Name())
		}
		return err
	}
	fmt.Printf("%d frequent itemsets at minsup=%g (maxk=%d):\n", len(rs), *minsup, *maxk)
	for _, r := range rs {
		fmt.Printf("  %-20v %.4f\n", r.Items, r.Freq)
	}
	if *rules > 0 {
		rl := itemsketch.AssociationRules(rs, *rules)
		fmt.Printf("%d rules at confidence >= %g:\n", len(rl), *rules)
		for _, r := range rl {
			fmt.Printf("  %v => %v  conf=%.3f lift=%.2f sup=%.3f\n",
				r.Antecedent, r.Consequent, r.Confidence, r.Lift, r.Support)
		}
	}
	return nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("sketch", "", "sketch file (required)")
	fs.Parse(args)
	if *path == "" {
		return errors.New("info: -sketch is required")
	}
	// One file handle for both passes: the envelope walk (header,
	// framing, checksums — cheap, no decode) and the decode that
	// yields the sketch's own view of its parameters. The decode
	// streams from a rewind of the same descriptor, so the file is
	// opened once and never buffered whole.
	f, err := os.Open(*path)
	if err != nil {
		return err
	}
	defer f.Close()
	env, ierr := itemsketch.InspectFrom(f)
	switch {
	case ierr == nil && env.Version >= 2:
		comp := "uncompressed"
		if env.Compressed {
			comp = "flate-compressed"
		}
		fmt.Printf("envelope:   v%d %s, %d payload bits, %d chunks x %d bytes, %s\n",
			env.Version, env.Kind, env.PayloadBits, env.Chunks, env.ChunkBytes, comp)
	case ierr == nil:
		fmt.Printf("envelope:   v%d %s, %d payload bits, crc %08x\n",
			env.Version, env.Kind, env.PayloadBits, env.Checksum)
	case errors.Is(ierr, itemsketch.ErrUnsupportedVersion):
		return ierr
	default:
		fmt.Printf("envelope:   none (pre-envelope file)\n")
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	sk, err := itemsketch.UnmarshalFrom(f)
	if err != nil && errors.Is(err, itemsketch.ErrCorruptSketch) && ierr != nil {
		// Not an envelope at all: fall back to the pre-envelope format.
		sk, err = readSketchFile(*path)
	}
	if err != nil {
		return err
	}
	p := sk.Params()
	fmt.Printf("algorithm:  %s\n", sk.Name())
	fmt.Printf("params:     %v\n", p)
	fmt.Printf("attributes: %d\n", sk.NumAttrs())
	fmt.Printf("size:       %d bits (%.1f KB)\n", sk.SizeBits(), float64(sk.SizeBits())/8192)
	_, isEst := sk.(itemsketch.EstimatorSketch)
	fmt.Printf("estimates:  %v\n", isEst)
	return nil
}
