package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	itemsketch "repro"
	"repro/internal/atomicfile"
	"repro/internal/bitvec"
	"repro/internal/faultio"
)

func TestParseItems(t *testing.T) {
	got, err := parseItems("3, 1,7")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(itemsketch.MustItemset(1, 3, 7)) {
		t.Fatalf("parseItems = %v", got)
	}
	if _, err := parseItems(""); err == nil {
		t.Error("empty should fail")
	}
	if _, err := parseItems("1,x"); err == nil {
		t.Error("non-numeric should fail")
	}
	if _, err := parseItems("1,1"); err == nil {
		t.Error("duplicate should fail")
	}
}

func TestParseParams(t *testing.T) {
	p, err := parseParams(2, 0.1, 0.05, "forall", "indicator")
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != itemsketch.ForAll || p.Task != itemsketch.Indicator {
		t.Fatalf("parseParams = %+v", p)
	}
	if _, err := parseParams(2, 0.1, 0.05, "sometimes", "indicator"); err == nil {
		t.Error("bad mode should fail")
	}
	if _, err := parseParams(2, 0.1, 0.05, "forall", "oracle"); err == nil {
		t.Error("bad task should fail")
	}
	if _, err := parseParams(0, 0.1, 0.05, "forall", "indicator"); err == nil {
		t.Error("invalid k should fail")
	}
}

func TestSketchFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 200; i++ {
		db.AddRowAttrs(i%8, (i+3)%8)
	}
	p := itemsketch.Params{K: 2, Eps: 0.1, Delta: 0.1,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, err := itemsketch.Subsample{Seed: 1}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "s.bin")
	if err := os.WriteFile(path, itemsketch.Marshal(sk), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readSketchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	T := itemsketch.MustItemset(1, 4)
	if got.(itemsketch.EstimatorSketch).Estimate(T) != sk.(itemsketch.EstimatorSketch).Estimate(T) {
		t.Fatal("estimate changed across file round trip")
	}

	// Files from the pre-envelope format (8-byte bit count + raw
	// payload) still read through the legacy fallback.
	var w bitvec.Writer
	sk.MarshalBits(&w)
	raw, bits := w.Bytes(), w.BitLen()
	hdr := make([]byte, 8)
	for i := 0; i < 8; i++ {
		hdr[i] = byte(uint64(bits) >> (8 * i))
	}
	legacy := filepath.Join(dir, "legacy.bin")
	if err := os.WriteFile(legacy, append(hdr, raw...), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := readSketchFile(legacy)
	if err != nil {
		t.Fatalf("legacy read: %v", err)
	}
	if old.(itemsketch.EstimatorSketch).Estimate(T) != sk.(itemsketch.EstimatorSketch).Estimate(T) {
		t.Fatal("estimate changed across legacy round trip")
	}
}

func TestReadSketchFileErrors(t *testing.T) {
	dir := t.TempDir()
	short := filepath.Join(dir, "short.bin")
	if err := os.WriteFile(short, []byte{1, 2}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSketchFile(short); err == nil {
		t.Error("short file should fail")
	}
	if _, err := readSketchFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestCommandsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// Write a transaction file.
	tx := filepath.Join(dir, "baskets.txt")
	content := ""
	for i := 0; i < 300; i++ {
		if i%2 == 0 {
			content += "0 1 5\n"
		} else {
			content += "2\n"
		}
	}
	if err := os.WriteFile(tx, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "s.bin")
	if err := cmdSketch([]string{"-in", tx, "-d", "8", "-out", out, "-k", "2", "-eps", "0.05", "-algo", "subsample"}); err != nil {
		t.Fatalf("cmdSketch: %v", err)
	}
	if err := cmdQuery([]string{"-sketch", out, "-items", "0,1"}); err != nil {
		t.Fatalf("cmdQuery: %v", err)
	}
	if err := cmdMine([]string{"-sketch", out, "-minsup", "0.3", "-maxk", "2", "-rules", "0.5"}); err != nil {
		t.Fatalf("cmdMine: %v", err)
	}
	if err := cmdInfo([]string{"-sketch", out}); err != nil {
		t.Fatalf("cmdInfo: %v", err)
	}
	// Missing required flags error out.
	if err := cmdSketch([]string{"-d", "8"}); err == nil {
		t.Error("missing -in/-out should fail")
	}
	if err := cmdQuery([]string{"-sketch", out}); err == nil {
		t.Error("missing -items should fail")
	}
	if err := cmdMine([]string{}); err == nil {
		t.Error("missing -sketch should fail")
	}
	if err := cmdInfo([]string{}); err == nil {
		t.Error("missing -sketch should fail")
	}
	// Unknown algo.
	if err := cmdSketch([]string{"-in", tx, "-d", "8", "-out", out, "-algo", "magic"}); err == nil {
		t.Error("unknown algo should fail")
	}
}

// TestSketchSaveFaultKilledMidStream pins the crash-safety of the save
// path: sketches go to disk through atomicfile (temp + fsync + rename),
// so a write torn mid-stream — here injected with faultio at several
// offsets, including inside the envelope header — must leave a
// previously saved sketch byte-identical and still decodable.
func TestSketchSaveFaultKilledMidStream(t *testing.T) {
	dir := t.TempDir()
	tx := filepath.Join(dir, "tx.txt")
	if err := os.WriteFile(tx, []byte("0 1\n2 3\n0 3\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "sk.bin")
	if err := cmdSketch([]string{"-in", tx, "-d", "8", "-out", out, "-algo", "subsample"}); err != nil {
		t.Fatal(err)
	}
	old, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := readSketchFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int64{0, 5, 17, 40, int64(len(old)) - 1} {
		werr := atomicfile.Write(out, func(w io.Writer) error {
			fw := faultio.NewWriter(w, faultio.WithFailAt(off, nil))
			_, merr := itemsketch.MarshalTo(fw, sk)
			return merr
		})
		if !errors.Is(werr, faultio.ErrInjected) {
			t.Fatalf("tear at %d: want injected failure, got %v", off, werr)
		}
		now, rerr := os.ReadFile(out)
		if rerr != nil {
			t.Fatalf("tear at %d: saved sketch unreadable: %v", off, rerr)
		}
		if !bytes.Equal(now, old) {
			t.Fatalf("tear at %d clobbered the saved sketch", off)
		}
		if _, derr := readSketchFile(out); derr != nil {
			t.Fatalf("tear at %d: saved sketch no longer decodes: %v", off, derr)
		}
	}
}
