package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// baseOpts is the small, fast workload shape the tests start from.
func baseOpts() runOpts {
	return runOpts{
		Shards: 4, D: 16, Capacity: 256,
		Rows: 3000, Batch: 128,
		Workers: 2, Queries: 50,
		Seed: 7,
	}
}

// TestRunCleanWorkload: the default-shaped workload (no kills, no
// faults) must complete with no partials, pass the hot-path
// merge-cache assertion, and exit clean.
func TestRunCleanWorkload(t *testing.T) {
	if err := run(baseOpts()); err != nil {
		t.Fatal(err)
	}
}

// TestRunWindowedWorkload: with -window set, the mixed workload routes
// a quarter of the queries through EstimateWindow, the hot-path phase
// also covers the windowed heavy hitters, and the run exits clean.
func TestRunWindowedWorkload(t *testing.T) {
	o := baseOpts()
	o.Window = 1024
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// TestRunKillsProducePartials: killing shards mid-run must surface as
// degraded queries, not hard errors, and the run still exits clean.
func TestRunKillsProducePartials(t *testing.T) {
	dir := t.TempDir()
	o := baseOpts()
	o.Queries = 60
	o.Kill = 2
	o.Fault = 0.05
	o.Seed = 42
	o.Ckpt = dir
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// The final checkpoint must cover the surviving shards.
	m, err := filepath.Glob(filepath.Join(dir, "shard-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) < 2 {
		t.Fatalf("expected checkpoints for the surviving shards, found %v", m)
	}
}

// TestRunKillAllShards: with every shard dead the tail queries answer
// ErrNoShards — the expected degradation signal, not a hard error — so
// the run still exits clean. Operators read the partial/health report.
func TestRunKillAllShards(t *testing.T) {
	o := baseOpts()
	o.Shards = 2
	o.Rows = 1000
	o.Workers = 1
	o.Queries = 40
	o.Kill = 2
	o.Seed = 3
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// TestRunCoalescedWorkload: -concurrency routes the query phase through
// the request coalescer; the run must exit clean, including the
// hot-path merge-cache assertion under the coalesced tier.
func TestRunCoalescedWorkload(t *testing.T) {
	o := baseOpts()
	o.Concurrency = 8
	o.Queries = 40
	o.Linger = 200 * time.Microsecond
	o.MaxBatch = 16
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// TestRunRehomeRecoversKilledShards: with -rehome the killed shards are
// bootstrapped from a live peer after the query phase and run requires
// the service to answer full fan-outs again.
func TestRunRehomeRecoversKilledShards(t *testing.T) {
	o := baseOpts()
	o.Queries = 60
	o.Kill = 2
	o.Seed = 11
	o.Rehome = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsBadConfig: an invalid universe size must surface the
// service constructor's validation error.
func TestRunRejectsBadConfig(t *testing.T) {
	o := baseOpts()
	o.D = 0
	o.Rows = 100
	o.Queries = 10
	err := run(o)
	if err == nil {
		t.Fatal("d=0 should fail service construction")
	}
	if !strings.Contains(err.Error(), "NumAttrs") {
		t.Fatalf("unexpected error: %v", err)
	}
}
