package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCleanWorkload: the default-shaped workload (no kills, no
// faults) must complete with no partials and exit clean.
func TestRunCleanWorkload(t *testing.T) {
	if err := run(4, 16, 256, 3000, 128, 2, 50, 0, 0, 7, "", 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunWindowedWorkload: with -window set, the mixed workload routes
// a quarter of the queries through EstimateWindow and still exits
// clean.
func TestRunWindowedWorkload(t *testing.T) {
	if err := run(4, 16, 256, 3000, 128, 2, 50, 0, 0, 7, "", 1024); err != nil {
		t.Fatal(err)
	}
}

// TestRunKillsProducePartials: killing shards mid-run must surface as
// degraded queries, not hard errors, and the run still exits clean.
func TestRunKillsProducePartials(t *testing.T) {
	dir := t.TempDir()
	if err := run(4, 16, 256, 3000, 128, 2, 60, 2, 0.05, 42, dir, 0); err != nil {
		t.Fatal(err)
	}
	// The final checkpoint must cover the surviving shards.
	m, err := filepath.Glob(filepath.Join(dir, "shard-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) < 2 {
		t.Fatalf("expected checkpoints for the surviving shards, found %v", m)
	}
}

// TestRunKillAllShards: with every shard dead the tail queries answer
// ErrNoShards — the expected degradation signal, not a hard error — so
// the run still exits clean. Operators read the partial/health report.
func TestRunKillAllShards(t *testing.T) {
	if err := run(2, 16, 256, 1000, 128, 1, 40, 2, 0, 3, "", 0); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsBadConfig: an invalid universe size must surface the
// service constructor's validation error.
func TestRunRejectsBadConfig(t *testing.T) {
	err := run(2, 0, 256, 100, 64, 1, 10, 0, 0, 1, "", 0)
	if err == nil {
		t.Fatal("d=0 should fail service construction")
	}
	if !strings.Contains(err.Error(), "NumAttrs") {
		t.Fatalf("unexpected error: %v", err)
	}
}
