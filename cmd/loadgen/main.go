// Command loadgen drives the sharded sketch service with a mixed
// ingest/query workload while (optionally) injecting ingest faults and
// killing shards mid-run — a repeatable harness for measuring how the
// degradation machinery behaves under pressure, outside of the unit
// tests.
//
// It runs the Service in-process (no HTTP), reports sustained ingest
// and query throughput, query latency percentiles (p50/p90/p99), and
// how many queries came back partial, and exits non-zero if any query
// failed outright without the expected degradation signal.
//
// Usage:
//
//	go run ./cmd/loadgen                                   # defaults
//	go run ./cmd/loadgen -shards 8 -kill 2 -fault 0.05     # chaos-ish
//	go run ./cmd/loadgen -rows 200000 -workers 8 -ckpt dir # with persistence
//	go run ./cmd/loadgen -window 32768                     # + sliding-window queries
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	itemsketch "repro"
	"repro/internal/faultio"
	"repro/internal/rng"
	"repro/internal/service"
)

func main() {
	shards := flag.Int("shards", 8, "number of service shards")
	d := flag.Int("d", 64, "attribute universe size")
	capacity := flag.Int("cap", 4096, "per-shard reservoir capacity")
	rows := flag.Int("rows", 100000, "total rows to ingest")
	batch := flag.Int("batch", 256, "rows per ingest call")
	workers := flag.Int("workers", 4, "concurrent query workers")
	queries := flag.Int("queries", 2000, "estimate queries per worker")
	kill := flag.Int("kill", 0, "shards to kill mid-run")
	fault := flag.Float64("fault", 0, "ingest fault probability per attempt")
	seed := flag.Uint64("seed", faultio.EnvSeed(1), "workload seed (FAULT_SEED overrides the default)")
	ckpt := flag.String("ckpt", "", "checkpoint directory (empty = no persistence)")
	window := flag.Int("window", 0, "sliding-window rows (0 = no window; >0 also routes every 4th query through EstimateWindow)")
	flag.Parse()

	if err := run(*shards, *d, *capacity, *rows, *batch, *workers, *queries, *kill, *fault, *seed, *ckpt, *window); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(shards, d, capacity, rows, batch, workers, queries, kill int, fault float64, seed uint64, ckpt string, window int) error {
	if ckpt != "" {
		if err := os.MkdirAll(ckpt, 0o755); err != nil {
			return err
		}
	}
	cfg := service.Config{
		Shards:         shards,
		NumAttrs:       d,
		SampleCapacity: capacity,
		Seed:           seed,
		CheckpointDir:  ckpt,
	}
	if window > 0 {
		cfg.Window = &service.WindowConfig{Rows: window}
	}
	if fault > 0 {
		fr := rng.New(seed ^ 0x10adbeef)
		var mu sync.Mutex
		cfg.IngestFault = func(shard, attempt int) error {
			mu.Lock()
			hit := fr.Float64() < fault
			mu.Unlock()
			if hit {
				return fmt.Errorf("%w: loadgen ingest fault on shard %d attempt %d", faultio.ErrInjected, shard, attempt)
			}
			return nil
		}
	}
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	ctx := context.Background()

	fmt.Printf("loadgen: %d shards, d=%d, cap=%d, %d rows in batches of %d, %d×%d queries, kill=%d, fault=%.3f, seed=%d\n",
		shards, d, capacity, rows, batch, workers, queries, kill, fault, seed)

	// Ingest phase: sequential batches, measuring sustained row rate.
	r := rng.New(seed)
	mk := func() [][]int {
		rs := make([][]int, batch)
		for i := range rs {
			var attrs []int
			for a := 0; a < d; a++ {
				if r.Float64() < float64(a+1)/float64(d+1)/4 {
					attrs = append(attrs, a)
				}
			}
			rs[i] = attrs
		}
		return rs
	}
	start := time.Now()
	ingested := 0
	for ingested < rows {
		n, err := svc.Ingest(ctx, mk())
		if err != nil {
			return fmt.Errorf("ingest after %d rows: %w", ingested, err)
		}
		ingested += n
	}
	ingestDur := time.Since(start)
	fmt.Printf("ingest:   %d rows in %v (%.0f rows/s)\n",
		ingested, ingestDur.Round(time.Millisecond), float64(ingested)/ingestDur.Seconds())

	// Query phase: workers hammer Estimate while a killer takes shards
	// down partway through, so the tail of the run exercises the
	// degraded fan-out path.
	var (
		wg       sync.WaitGroup
		partials atomic.Int64
		hardErrs atomic.Int64
		windowQs atomic.Int64
		latMu    sync.Mutex
		lats     []time.Duration
	)
	killAt := queries / 2
	var killOnce sync.Once
	qStart := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qr := rng.New(seed + uint64(w)*7919)
			local := make([]time.Duration, 0, queries)
			for q := 0; q < queries; q++ {
				if w == 0 && q == killAt && kill > 0 {
					killOnce.Do(func() {
						for i := 0; i < kill && i < shards; i++ {
							svc.KillShard(i)
						}
						fmt.Printf("killed:   shards 0..%d at query %d\n", kill-1, q)
					})
				}
				a := qr.Intn(d)
				b := (a + 1 + qr.Intn(d-1)) % d
				ts := []itemsketch.Itemset{itemsketch.MustItemset(a, b)}
				t0 := time.Now()
				var p service.Partial
				var err error
				if window > 0 && q%4 == 3 {
					_, p, err = svc.EstimateWindow(ctx, ts)
					windowQs.Add(1)
				} else {
					_, p, err = svc.Estimate(ctx, ts)
				}
				local = append(local, time.Since(t0))
				switch {
				case err != nil && !errors.Is(err, service.ErrNoShards):
					hardErrs.Add(1)
				case err == nil && p.Degraded():
					partials.Add(1)
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	qDur := time.Since(qStart)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p int) time.Duration { return lats[len(lats)*p/100] }
	total := len(lats)
	fmt.Printf("queries:  %d in %v (%.0f q/s)\n", total, qDur.Round(time.Millisecond), float64(total)/qDur.Seconds())
	fmt.Printf("latency:  p50=%v p90=%v p99=%v\n", pct(50), pct(90), pct(99))
	fmt.Printf("partial:  %d/%d answered degraded, %d hard errors\n", partials.Load(), total, hardErrs.Load())
	if window > 0 {
		fmt.Printf("window:   %d queries answered over the trailing %d rows\n", windowQs.Load(), window)
	}
	for _, h := range svc.HealthReport() {
		fmt.Printf("shard %2d: %s seen=%d checkpoints=%d\n", h.ID, h.State, h.Seen, h.Checkpoints)
	}
	if ckpt != "" {
		if err := svc.Checkpoint(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Printf("ckpt:     final checkpoint written to %s\n", ckpt)
	}
	if hardErrs.Load() > 0 {
		return fmt.Errorf("%d queries failed without a degradation signal", hardErrs.Load())
	}
	if kill > 0 && partials.Load() == 0 && kill < shards {
		return fmt.Errorf("killed %d shards but no query reported a partial result", kill)
	}
	return nil
}
