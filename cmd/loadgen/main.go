// Command loadgen drives the sharded sketch service with a mixed
// ingest/query workload while (optionally) injecting ingest faults and
// killing shards mid-run — a repeatable harness for measuring how the
// degradation machinery behaves under pressure, outside of the unit
// tests.
//
// It runs the Service in-process (no HTTP), reports sustained ingest
// and query throughput, query latency percentiles (p50/p90/p99), and
// how many queries came back partial, and exits non-zero if any query
// failed outright without the expected degradation signal.
//
// After the query phase it hammers the hot read paths (heavy hitters
// and mining) with ingest quiesced and asserts the merged-snapshot
// caches absorb every repeat — zero per-request cross-shard merges —
// exiting non-zero if any repeated query rebuilt a merge.
//
// Usage:
//
//	go run ./cmd/loadgen                                   # defaults
//	go run ./cmd/loadgen -shards 8 -kill 2 -fault 0.05     # chaos-ish
//	go run ./cmd/loadgen -rows 200000 -workers 8 -ckpt dir # with persistence
//	go run ./cmd/loadgen -window 32768                     # + sliding-window queries
//	go run ./cmd/loadgen -concurrency 16 -linger 200us     # coalesced query tier
//	go run ./cmd/loadgen -kill 2 -rehome                   # kill, then re-home from peers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	itemsketch "repro"
	"repro/internal/faultio"
	"repro/internal/rng"
	"repro/internal/service"
)

// runOpts is the full workload shape, one field per flag.
type runOpts struct {
	Shards   int
	D        int
	Capacity int
	Rows     int
	Batch    int
	Workers  int
	Queries  int
	Kill     int
	Fault    float64
	Seed     uint64
	Ckpt     string
	Window   int

	// Concurrency > 0 enables the request coalescer and runs that many
	// query workers through it (overriding Workers for the query
	// phase); Linger and MaxBatch tune the collector.
	Concurrency int
	Linger      time.Duration
	MaxBatch    int

	// Rehome re-homes every killed shard from a live peer after the
	// query phase and requires the service to answer full fan-outs
	// again — the degraded-then-recovered drill.
	Rehome bool
}

func main() {
	var o runOpts
	flag.IntVar(&o.Shards, "shards", 8, "number of service shards")
	flag.IntVar(&o.D, "d", 64, "attribute universe size")
	flag.IntVar(&o.Capacity, "cap", 4096, "per-shard reservoir capacity")
	flag.IntVar(&o.Rows, "rows", 100000, "total rows to ingest")
	flag.IntVar(&o.Batch, "batch", 256, "rows per ingest call")
	flag.IntVar(&o.Workers, "workers", 4, "concurrent query workers")
	flag.IntVar(&o.Queries, "queries", 2000, "estimate queries per worker")
	flag.IntVar(&o.Kill, "kill", 0, "shards to kill mid-run")
	flag.Float64Var(&o.Fault, "fault", 0, "ingest fault probability per attempt")
	flag.Uint64Var(&o.Seed, "seed", faultio.EnvSeed(1), "workload seed (FAULT_SEED overrides the default)")
	flag.StringVar(&o.Ckpt, "ckpt", "", "checkpoint directory (empty = no persistence)")
	flag.IntVar(&o.Window, "window", 0, "sliding-window rows (0 = no window; >0 also routes every 4th query through EstimateWindow)")
	flag.IntVar(&o.Concurrency, "concurrency", 0, "coalesced query workers (0 = coalescing off, use -workers)")
	flag.DurationVar(&o.Linger, "linger", 200*time.Microsecond, "coalescer linger window (with -concurrency)")
	flag.IntVar(&o.MaxBatch, "maxbatch", 32, "coalescer max requests per batch (with -concurrency)")
	flag.BoolVar(&o.Rehome, "rehome", false, "re-home killed shards from live peers after the query phase")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(o runOpts) error {
	if o.Ckpt != "" {
		if err := os.MkdirAll(o.Ckpt, 0o755); err != nil {
			return err
		}
	}
	cfg := service.Config{
		Shards:         o.Shards,
		NumAttrs:       o.D,
		SampleCapacity: o.Capacity,
		Seed:           o.Seed,
		CheckpointDir:  o.Ckpt,
	}
	if o.Window > 0 {
		cfg.Window = &service.WindowConfig{Rows: o.Window}
	}
	if o.Concurrency > 0 {
		cfg.Coalesce = &service.CoalesceConfig{Linger: o.Linger, MaxBatch: o.MaxBatch}
	}
	if o.Fault > 0 {
		fr := rng.New(o.Seed ^ 0x10adbeef)
		var mu sync.Mutex
		cfg.IngestFault = func(shard, attempt int) error {
			mu.Lock()
			hit := fr.Float64() < o.Fault
			mu.Unlock()
			if hit {
				return fmt.Errorf("%w: loadgen ingest fault on shard %d attempt %d", faultio.ErrInjected, shard, attempt)
			}
			return nil
		}
	}
	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	ctx := context.Background()

	qWorkers := o.Workers
	if o.Concurrency > 0 {
		qWorkers = o.Concurrency
	}
	fmt.Printf("loadgen: %d shards, d=%d, cap=%d, %d rows in batches of %d, %d×%d queries, kill=%d, fault=%.3f, seed=%d\n",
		o.Shards, o.D, o.Capacity, o.Rows, o.Batch, qWorkers, o.Queries, o.Kill, o.Fault, o.Seed)

	// Ingest phase: sequential batches, measuring sustained row rate.
	r := rng.New(o.Seed)
	mk := func() [][]int {
		rs := make([][]int, o.Batch)
		for i := range rs {
			var attrs []int
			for a := 0; a < o.D; a++ {
				if r.Float64() < float64(a+1)/float64(o.D+1)/4 {
					attrs = append(attrs, a)
				}
			}
			rs[i] = attrs
		}
		return rs
	}
	start := time.Now()
	ingested := 0
	for ingested < o.Rows {
		n, err := svc.Ingest(ctx, mk())
		if err != nil {
			return fmt.Errorf("ingest after %d rows: %w", ingested, err)
		}
		ingested += n
	}
	ingestDur := time.Since(start)
	fmt.Printf("ingest:   %d rows in %v (%.0f rows/s)\n",
		ingested, ingestDur.Round(time.Millisecond), float64(ingested)/ingestDur.Seconds())

	// Query phase: workers hammer Estimate while a killer takes shards
	// down partway through, so the tail of the run exercises the
	// degraded fan-out path.
	var (
		wg       sync.WaitGroup
		partials atomic.Int64
		hardErrs atomic.Int64
		windowQs atomic.Int64
		latMu    sync.Mutex
		lats     []time.Duration
	)
	killAt := o.Queries / 2
	var killOnce sync.Once
	qStart := time.Now()
	for w := 0; w < qWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qr := rng.New(o.Seed + uint64(w)*7919)
			local := make([]time.Duration, 0, o.Queries)
			for q := 0; q < o.Queries; q++ {
				if w == 0 && q == killAt && o.Kill > 0 {
					killOnce.Do(func() {
						for i := 0; i < o.Kill && i < o.Shards; i++ {
							svc.KillShard(i)
						}
						fmt.Printf("killed:   shards 0..%d at query %d\n", o.Kill-1, q)
					})
				}
				a := qr.Intn(o.D)
				b := (a + 1 + qr.Intn(o.D-1)) % o.D
				ts := []itemsketch.Itemset{itemsketch.MustItemset(a, b)}
				t0 := time.Now()
				var p service.Partial
				var err error
				if o.Window > 0 && q%4 == 3 {
					_, p, err = svc.EstimateWindow(ctx, ts)
					windowQs.Add(1)
				} else {
					_, p, err = svc.Estimate(ctx, ts)
				}
				local = append(local, time.Since(t0))
				switch {
				case err != nil && !errors.Is(err, service.ErrNoShards):
					hardErrs.Add(1)
				case err == nil && p.Degraded():
					partials.Add(1)
				}
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(w)
	}
	wg.Wait()
	qDur := time.Since(qStart)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p int) time.Duration { return lats[len(lats)*p/100] }
	total := len(lats)
	fmt.Printf("queries:  %d in %v (%.0f q/s)\n", total, qDur.Round(time.Millisecond), float64(total)/qDur.Seconds())
	fmt.Printf("latency:  p50=%v p90=%v p99=%v\n", pct(50), pct(90), pct(99))
	fmt.Printf("partial:  %d/%d answered degraded, %d hard errors\n", partials.Load(), total, hardErrs.Load())
	if o.Window > 0 {
		fmt.Printf("window:   %d queries answered over the trailing %d rows\n", windowQs.Load(), o.Window)
	}
	if o.Concurrency > 0 {
		cs := svc.CoalesceStats()
		fmt.Printf("coalesce: %d requests in %d flushes, %d rode a shared batch\n",
			cs.Requests, cs.Flushes, cs.Coalesced)
	}

	if o.Rehome && o.Kill > 0 && o.Kill < o.Shards {
		if err := rehomeDead(svc); err != nil {
			return err
		}
	}

	if err := hotPathPhase(ctx, svc, qWorkers); err != nil {
		return err
	}

	for _, h := range svc.HealthReport() {
		fmt.Printf("shard %2d: %s seen=%d checkpoints=%d routed_to=%d\n", h.ID, h.State, h.Seen, h.Checkpoints, h.RoutedTo)
	}
	if o.Ckpt != "" {
		if err := svc.Checkpoint(); err != nil {
			return fmt.Errorf("final checkpoint: %w", err)
		}
		fmt.Printf("ckpt:     final checkpoint written to %s\n", o.Ckpt)
	}
	if hardErrs.Load() > 0 {
		return fmt.Errorf("%d queries failed without a degradation signal", hardErrs.Load())
	}
	if o.Kill > 0 && partials.Load() == 0 && o.Kill < o.Shards {
		return fmt.Errorf("killed %d shards but no query reported a partial result", o.Kill)
	}
	return nil
}

// rehomeDead bootstraps every dead shard from the first live peer and
// requires the next estimate to answer a full fan-out again.
func rehomeDead(svc *service.Service) error {
	peer := -1
	for i := 0; i < svc.NumShards(); i++ {
		if svc.Shard(i).State() != service.Dead {
			peer = i
			break
		}
	}
	if peer < 0 {
		return fmt.Errorf("rehome: no live peer left")
	}
	for i := 0; i < svc.NumShards(); i++ {
		if svc.Shard(i).State() != service.Dead {
			continue
		}
		if err := svc.RehomeFromPeer(i, peer); err != nil {
			return fmt.Errorf("rehome shard %d from %d: %w", i, peer, err)
		}
		fmt.Printf("rehomed:  shard %d bootstrapped from peer %d\n", i, peer)
	}
	_, p, err := svc.Estimate(context.Background(), []itemsketch.Itemset{itemsketch.MustItemset(0)})
	if err != nil {
		return fmt.Errorf("post-rehome estimate: %w", err)
	}
	if p.Degraded() {
		return fmt.Errorf("post-rehome estimate still partial: %d/%d missing %v", p.Answered, p.Total, p.Missing)
	}
	return nil
}

// hotPathRepeats is how many times each hot read path is re-queried
// per worker while asserting the merge caches absorb every repeat.
const hotPathRepeats = 8

// hotPathPhase hammers the heavy-hitter, mining and (if enabled)
// windowed read paths with ingest quiesced and asserts the
// merged-snapshot caches do all the work: after one warming round,
// repeated queries must perform zero cross-shard merges.
func hotPathPhase(ctx context.Context, svc *service.Service, workers int) error {
	if workers < 1 {
		workers = 1
	}
	kinds := []struct {
		name string
		call func() error
	}{
		{"heavyhitters", func() error {
			_, _, _, err := svc.HeavyHitters(ctx, 0.2)
			return err
		}},
		{"mine", func() error {
			_, _, err := svc.Mine(ctx, 0.3, 2)
			return err
		}},
	}
	if svc.WindowEnabled() {
		kinds = append(kinds, struct {
			name string
			call func() error
		}{"window_hh", func() error {
			_, _, _, err := svc.HeavyHittersWindow(ctx, 0.2)
			return err
		}})
	}
	hot := func(err error) error {
		// All-dead rings degrade to ErrNoShards; that is the signal, not
		// a cache failure.
		if err != nil && !errors.Is(err, service.ErrNoShards) {
			return err
		}
		return nil
	}
	// Warming round: the first query after the last ingest legitimately
	// merges once per kind.
	for _, k := range kinds {
		if err := hot(k.call()); err != nil {
			return fmt.Errorf("hot-path warmup %s: %w", k.name, err)
		}
	}
	before := svc.MergeBuilds()
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < hotPathRepeats; i++ {
				for _, k := range kinds {
					if err := hot(k.call()); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("hot-path %s: %w", k.name, err)
						}
						errMu.Unlock()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	after := svc.MergeBuilds()
	repeats := workers * hotPathRepeats
	fmt.Printf("hotpath:  %d repeated queries per kind, merge builds Δ cs=%d mg=%d win=%d mine=%d\n",
		repeats,
		after.CountSketch-before.CountSketch, after.MisraGries-before.MisraGries,
		after.Decayed-before.Decayed, after.Mine-before.Mine)
	if d := after.CountSketch - before.CountSketch; d != 0 {
		return fmt.Errorf("hot path rebuilt the count-sketch merge %d times with ingest quiesced", d)
	}
	if d := after.MisraGries - before.MisraGries; d != 0 {
		return fmt.Errorf("hot path rebuilt the Misra–Gries merge %d times with ingest quiesced", d)
	}
	if d := after.Decayed - before.Decayed; d != 0 {
		return fmt.Errorf("hot path rebuilt the windowed merge %d times with ingest quiesced", d)
	}
	if d := after.Mine - before.Mine; d != 0 {
		return fmt.Errorf("hot path rebuilt the mining union %d times with ingest quiesced", d)
	}
	return nil
}
