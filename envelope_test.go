package itemsketch_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	itemsketch "repro"
	"repro/internal/bitvec"
	"repro/internal/core"
)

// rawBits encodes a sketch as the bare pre-envelope bit stream — the
// byte layout the removed MarshalRaw produced — so the compatibility
// tests keep genuine legacy fixtures without the library keeping a
// legacy writer.
func rawBits(sk itemsketch.Sketch) ([]byte, int) {
	var w bitvec.Writer
	sk.MarshalBits(&w)
	return w.Bytes(), w.BitLen()
}

// marshalV1 builds a version-1 envelope from the raw encoding — the
// exact byte layout the library wrote before envelope version 2.
func marshalV1(sk itemsketch.Sketch) []byte {
	payload, bits := rawBits(sk)
	buf := make([]byte, 18+len(payload))
	copy(buf[0:4], "ISKB")
	buf[4] = 1
	if len(payload) > 0 {
		buf[5] = payload[0] & 0x0f
	}
	binary.LittleEndian.PutUint64(buf[6:14], uint64(bits))
	binary.LittleEndian.PutUint32(buf[14:18], crc32.ChecksumIEEE(payload))
	copy(buf[18:], payload)
	return buf
}

// buildAllKinds returns one built sketch per wire kind, keyed by the
// expected SketchKind.
func buildAllKinds(t testing.TB) map[itemsketch.SketchKind]itemsketch.Sketch {
	t.Helper()
	db := itemsketch.NewDatabase(12)
	for i := 0; i < 400; i++ {
		db.AddRowAttrs(i%12, (i+1)%12, (i*7)%12)
	}
	est := itemsketch.Params{K: 2, Eps: 0.1, Delta: 0.1,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	ind := est
	ind.Task = itemsketch.Indicator
	build := func(s itemsketch.Sketcher, p itemsketch.Params) itemsketch.Sketch {
		sk, err := s.Sketch(db, p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		return sk
	}
	cs, err := itemsketch.NewCountSketch(itemsketch.CountSketchConfig{
		Universe: 12, Rows: 4, Cols: 32, Base: 4, Seed: 5})
	if err != nil {
		t.Fatalf("count-sketch: %v", err)
	}
	for i := 0; i < 400; i++ {
		cs.Add(i % 12)
		cs.Add((i + 1) % 12)
		cs.Add((i * 7) % 12)
	}
	// 400 rows through a 120-row window in 4 sub-windows: the chain
	// rotates 13 times and evicts, so the fixture covers a mid-stream
	// window, not just the fill phase.
	win, err := itemsketch.NewWindowedReservoir(12, 120, 4, 16, 5, est)
	if err != nil {
		t.Fatalf("windowed-reservoir: %v", err)
	}
	dmg, err := itemsketch.NewDecayedMisraGries(12, 8, 0.9, itemsketch.Params{})
	if err != nil {
		t.Fatalf("decayed-misra-gries: %v", err)
	}
	for i := 0; i < 400; i++ {
		if rotated := win.AddAttrs(i%12, (i+1)%12, (i*7)%12); rotated {
			dmg.Tick()
		}
		dmg.AddAttrs(i%12, (i+1)%12, (i*7)%12)
	}
	return map[itemsketch.SketchKind]itemsketch.Sketch{
		itemsketch.KindReleaseDB:               build(itemsketch.ReleaseDB{}, est),
		itemsketch.KindReleaseAnswersIndicator: build(itemsketch.ReleaseAnswers{}, ind),
		itemsketch.KindReleaseAnswersEstimator: build(itemsketch.ReleaseAnswers{}, est),
		itemsketch.KindSubsample:               build(itemsketch.Subsample{Seed: 5, SampleOverride: 200}, est),
		itemsketch.KindMedianAmplify:           build(itemsketch.MedianAmplifier{Base: itemsketch.Subsample{Seed: 5, SampleOverride: 64}, CopiesOverride: 5}, est),
		itemsketch.KindImportanceSample:        build(itemsketch.ImportanceSample{Seed: 5, SampleOverride: 200}, est),
		itemsketch.KindCountSketch:             cs,
		itemsketch.KindWindowedReservoir:       win,
		itemsketch.KindDecayedMisraGries:       dmg,
	}
}

// queryItemsetFor returns a |T| = k itemset inside the 12-attribute
// fixture universe, matching the sketch's own k.
func queryItemsetFor(sk itemsketch.Sketch) itemsketch.Itemset {
	attrs := []int{3, 7, 1, 5, 9, 2}
	return itemsketch.MustItemset(attrs[:sk.Params().K]...)
}

// TestEnvelopeRoundTripAllKinds round-trips every sketch kind through
// the envelope byte-identically, with the header kind and payload bits
// matching the sketch.
func TestEnvelopeRoundTripAllKinds(t *testing.T) {
	for kind, sk := range buildAllKinds(t) {
		wire := itemsketch.Marshal(sk)
		env, err := itemsketch.Inspect(wire)
		if err != nil {
			t.Fatalf("%v: Inspect: %v", kind, err)
		}
		if env.Version != itemsketch.EnvelopeVersion {
			t.Errorf("%v: version %d", kind, env.Version)
		}
		if env.Kind != kind {
			t.Errorf("%v: envelope kind %v", kind, env.Kind)
		}
		if int64(env.PayloadBits) != sk.SizeBits() {
			t.Errorf("%v: payload bits %d != SizeBits %d", kind, env.PayloadBits, sk.SizeBits())
		}
		back, err := itemsketch.Unmarshal(wire)
		if err != nil {
			t.Fatalf("%v: Unmarshal: %v", kind, err)
		}
		wire2 := itemsketch.Marshal(back)
		if !bytes.Equal(wire, wire2) {
			t.Errorf("%v: re-marshal is not byte-identical (%d vs %d bytes)", kind, len(wire), len(wire2))
		}
		if back.Name() != sk.Name() || back.NumAttrs() != sk.NumAttrs() {
			t.Errorf("%v: identity changed: %s/%d vs %s/%d",
				kind, back.Name(), back.NumAttrs(), sk.Name(), sk.NumAttrs())
		}
	}
}

// TestEnvelopeRejectsCorruption flips every byte of a valid envelope
// (header and payload) and truncates it at every length, asserting a
// typed error each time: any single-byte corruption must surface as
// ErrCorruptSketch or (for the version byte) ErrUnsupportedVersion.
func TestEnvelopeRejectsCorruption(t *testing.T) {
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 100; i++ {
		db.AddRowAttrs(i%8, (i+2)%8)
	}
	sk, _, err := itemsketch.Build(context.Background(), db,
		itemsketch.WithAlgorithm(itemsketch.Subsample{}), itemsketch.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	wire := itemsketch.Marshal(sk)

	for i := range wire {
		mut := bytes.Clone(wire)
		mut[i] ^= 0xFF
		_, err := itemsketch.Unmarshal(mut)
		if err == nil {
			t.Fatalf("byte %d flipped: decode succeeded", i)
		}
		if !errors.Is(err, itemsketch.ErrCorruptSketch) && !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
			t.Fatalf("byte %d flipped: untyped error %v", i, err)
		}
	}
	for n := 0; n < len(wire); n++ {
		_, err := itemsketch.Unmarshal(wire[:n])
		if !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorruptSketch", n, err)
		}
	}
}

// TestEnvelopeFutureVersion asserts a payload stamped with a newer
// format version fails with ErrUnsupportedVersion, not a decode
// attempt.
func TestEnvelopeFutureVersion(t *testing.T) {
	db := itemsketch.NewDatabase(4)
	db.AddRowAttrs(0, 1)
	sk, _, err := itemsketch.Build(context.Background(), db,
		itemsketch.WithAlgorithm(itemsketch.ReleaseDB{}))
	if err != nil {
		t.Fatal(err)
	}
	wire := itemsketch.Marshal(sk)
	wire[4] = itemsketch.EnvelopeVersion + 1
	if _, err := itemsketch.Unmarshal(wire); !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
		t.Fatalf("future version: err = %v, want ErrUnsupportedVersion", err)
	}
	if _, err := itemsketch.Inspect(wire); !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
		t.Fatalf("future version Inspect: err = %v, want ErrUnsupportedVersion", err)
	}
}

// TestLegacyRawAndV1Compat pins the two legacy read paths that outlive
// the removed MarshalRaw/UnmarshalRaw wrappers: the bare bit stream
// still decodes through the core decoder given its exact bit length
// (the CLI's pre-envelope file fallback), and a version-1 envelope
// still decodes and re-marshals to the same version-2 bytes.
func TestLegacyRawAndV1Compat(t *testing.T) {
	for kind, sk := range buildAllKinds(t) {
		data, bits := rawBits(sk)
		if int64(bits) != sk.SizeBits() {
			t.Errorf("%v: raw bits %d != SizeBits %d", kind, bits, sk.SizeBits())
		}
		back, err := core.UnmarshalSketch(bitvec.NewReader(data, bits))
		if err != nil {
			t.Fatalf("%v: raw decode: %v", kind, err)
		}
		if back.Name() != sk.Name() {
			t.Errorf("%v: name changed over raw round trip", kind)
		}
		// A version-1 envelope over the raw payload still decodes, and
		// re-marshals to the same (version-2) bytes as the original.
		v1back, err := itemsketch.Unmarshal(marshalV1(sk))
		if err != nil {
			t.Fatalf("%v: Unmarshal of v1 envelope: %v", kind, err)
		}
		if !bytes.Equal(itemsketch.Marshal(v1back), itemsketch.Marshal(sk)) {
			t.Errorf("%v: v1 envelope decode re-marshals differently", kind)
		}
	}
}

// FuzzUnmarshalEnvelope fuzzes the envelope decoder: arbitrary bytes
// must either fail with a typed error or decode to a sketch that
// re-marshals byte-identically. Run in CI as a short smoke alongside
// the query-path fuzz.
func FuzzUnmarshalEnvelope(f *testing.F) {
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 50; i++ {
		db.AddRowAttrs(i%8, (i+3)%8)
	}
	p := itemsketch.Params{K: 2, Eps: 0.2, Delta: 0.2,
		Mode: itemsketch.ForEach, Task: itemsketch.Estimator}
	for _, s := range []itemsketch.Sketcher{
		itemsketch.ReleaseDB{},
		itemsketch.Subsample{Seed: 1, SampleOverride: 40},
		itemsketch.ImportanceSample{Seed: 1, SampleOverride: 40},
	} {
		sk, err := s.Sketch(db, p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(itemsketch.Marshal(sk))
		f.Add(marshalV1(sk))
		var comp bytes.Buffer
		if _, err := itemsketch.MarshalTo(&comp, sk, itemsketch.WithCompression()); err != nil {
			f.Fatal(err)
		}
		f.Add(comp.Bytes())
	}
	f.Add([]byte("ISKB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, err := itemsketch.Unmarshal(data)
		if err != nil {
			if !errors.Is(err, itemsketch.ErrCorruptSketch) && !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		env, err := itemsketch.Inspect(data)
		if err != nil {
			t.Fatalf("decoded but Inspect fails: %v", err)
		}
		switch {
		case env.Version == 1:
			// Accepted v1 envelopes are canonical: rebuilding one from
			// the decoded sketch reproduces the input bytes.
			if !bytes.Equal(marshalV1(sk), data) {
				t.Fatalf("accepted v1 envelope does not re-marshal identically")
			}
		case env.Compressed:
			// Flate encodings are not canonical (many valid streams per
			// payload), so require semantic identity: the sketch behind
			// the stream is pinned by its uncompressed marshal.
			back, err := itemsketch.Unmarshal(itemsketch.Marshal(sk))
			if err != nil {
				t.Fatalf("re-marshal of accepted compressed envelope: %v", err)
			}
			if !bytes.Equal(itemsketch.Marshal(back), itemsketch.Marshal(sk)) {
				t.Fatalf("compressed envelope does not round-trip semantically")
			}
		default:
			var wire bytes.Buffer
			if _, err := itemsketch.MarshalTo(&wire, sk, itemsketch.WithChunkBytes(env.ChunkBytes)); err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(wire.Bytes(), data) {
				t.Fatalf("accepted v2 envelope does not re-marshal identically")
			}
		}
	})
}
