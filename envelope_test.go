package itemsketch_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	itemsketch "repro"
)

// buildAllKinds returns one built sketch per wire kind, keyed by the
// expected SketchKind.
func buildAllKinds(t testing.TB) map[itemsketch.SketchKind]itemsketch.Sketch {
	t.Helper()
	db := itemsketch.NewDatabase(12)
	for i := 0; i < 400; i++ {
		db.AddRowAttrs(i%12, (i+1)%12, (i*7)%12)
	}
	est := itemsketch.Params{K: 2, Eps: 0.1, Delta: 0.1,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	ind := est
	ind.Task = itemsketch.Indicator
	build := func(s itemsketch.Sketcher, p itemsketch.Params) itemsketch.Sketch {
		sk, err := s.Sketch(db, p)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		return sk
	}
	return map[itemsketch.SketchKind]itemsketch.Sketch{
		itemsketch.KindReleaseDB:               build(itemsketch.ReleaseDB{}, est),
		itemsketch.KindReleaseAnswersIndicator: build(itemsketch.ReleaseAnswers{}, ind),
		itemsketch.KindReleaseAnswersEstimator: build(itemsketch.ReleaseAnswers{}, est),
		itemsketch.KindSubsample:               build(itemsketch.Subsample{Seed: 5, SampleOverride: 200}, est),
		itemsketch.KindMedianAmplify:           build(itemsketch.MedianAmplifier{Base: itemsketch.Subsample{Seed: 5, SampleOverride: 64}, CopiesOverride: 5}, est),
		itemsketch.KindImportanceSample:        build(itemsketch.ImportanceSample{Seed: 5, SampleOverride: 200}, est),
	}
}

// TestEnvelopeRoundTripAllKinds round-trips every sketch kind through
// the envelope byte-identically, with the header kind and payload bits
// matching the sketch.
func TestEnvelopeRoundTripAllKinds(t *testing.T) {
	for kind, sk := range buildAllKinds(t) {
		wire := itemsketch.Marshal(sk)
		env, err := itemsketch.Inspect(wire)
		if err != nil {
			t.Fatalf("%v: Inspect: %v", kind, err)
		}
		if env.Version != itemsketch.EnvelopeVersion {
			t.Errorf("%v: version %d", kind, env.Version)
		}
		if env.Kind != kind {
			t.Errorf("%v: envelope kind %v", kind, env.Kind)
		}
		if int64(env.PayloadBits) != sk.SizeBits() {
			t.Errorf("%v: payload bits %d != SizeBits %d", kind, env.PayloadBits, sk.SizeBits())
		}
		back, err := itemsketch.Unmarshal(wire)
		if err != nil {
			t.Fatalf("%v: Unmarshal: %v", kind, err)
		}
		wire2 := itemsketch.Marshal(back)
		if !bytes.Equal(wire, wire2) {
			t.Errorf("%v: re-marshal is not byte-identical (%d vs %d bytes)", kind, len(wire), len(wire2))
		}
		if back.Name() != sk.Name() || back.NumAttrs() != sk.NumAttrs() {
			t.Errorf("%v: identity changed: %s/%d vs %s/%d",
				kind, back.Name(), back.NumAttrs(), sk.Name(), sk.NumAttrs())
		}
	}
}

// TestEnvelopeRejectsCorruption flips every byte of a valid envelope
// (header and payload) and truncates it at every length, asserting a
// typed error each time: any single-byte corruption must surface as
// ErrCorruptSketch or (for the version byte) ErrUnsupportedVersion.
func TestEnvelopeRejectsCorruption(t *testing.T) {
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 100; i++ {
		db.AddRowAttrs(i%8, (i+2)%8)
	}
	sk, _, err := itemsketch.Build(context.Background(), db,
		itemsketch.WithAlgorithm(itemsketch.Subsample{}), itemsketch.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	wire := itemsketch.Marshal(sk)

	for i := range wire {
		mut := bytes.Clone(wire)
		mut[i] ^= 0xFF
		_, err := itemsketch.Unmarshal(mut)
		if err == nil {
			t.Fatalf("byte %d flipped: decode succeeded", i)
		}
		if !errors.Is(err, itemsketch.ErrCorruptSketch) && !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
			t.Fatalf("byte %d flipped: untyped error %v", i, err)
		}
	}
	for n := 0; n < len(wire); n++ {
		_, err := itemsketch.Unmarshal(wire[:n])
		if !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorruptSketch", n, err)
		}
	}
}

// TestEnvelopeFutureVersion asserts a payload stamped with a newer
// format version fails with ErrUnsupportedVersion, not a decode
// attempt.
func TestEnvelopeFutureVersion(t *testing.T) {
	db := itemsketch.NewDatabase(4)
	db.AddRowAttrs(0, 1)
	sk, _, err := itemsketch.Build(context.Background(), db,
		itemsketch.WithAlgorithm(itemsketch.ReleaseDB{}))
	if err != nil {
		t.Fatal(err)
	}
	wire := itemsketch.Marshal(sk)
	wire[4] = itemsketch.EnvelopeVersion + 1
	if _, err := itemsketch.Unmarshal(wire); !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
		t.Fatalf("future version: err = %v, want ErrUnsupportedVersion", err)
	}
	if _, err := itemsketch.Inspect(wire); !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
		t.Fatalf("future version Inspect: err = %v, want ErrUnsupportedVersion", err)
	}
}

// TestUnmarshalRawCompat pins the deprecated raw path: MarshalRaw
// bytes decode through UnmarshalRaw given the exact bit length, and
// the raw payload equals the envelope payload.
func TestUnmarshalRawCompat(t *testing.T) {
	for kind, sk := range buildAllKinds(t) {
		data, bits := itemsketch.MarshalRaw(sk)
		if int64(bits) != sk.SizeBits() {
			t.Errorf("%v: raw bits %d != SizeBits %d", kind, bits, sk.SizeBits())
		}
		back, err := itemsketch.UnmarshalRaw(data, bits)
		if err != nil {
			t.Fatalf("%v: UnmarshalRaw: %v", kind, err)
		}
		if back.Name() != sk.Name() {
			t.Errorf("%v: name changed over raw round trip", kind)
		}
		wire := itemsketch.Marshal(sk)
		if !bytes.Equal(wire[18:], data) {
			t.Errorf("%v: envelope payload differs from raw encoding", kind)
		}
		if _, err := itemsketch.UnmarshalRaw(data, len(data)*8+1); !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Errorf("%v: oversized bit count: err = %v", kind, err)
		}
	}
}

// FuzzUnmarshalEnvelope fuzzes the envelope decoder: arbitrary bytes
// must either fail with a typed error or decode to a sketch that
// re-marshals byte-identically. Run in CI as a short smoke alongside
// the query-path fuzz.
func FuzzUnmarshalEnvelope(f *testing.F) {
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 50; i++ {
		db.AddRowAttrs(i%8, (i+3)%8)
	}
	p := itemsketch.Params{K: 2, Eps: 0.2, Delta: 0.2,
		Mode: itemsketch.ForEach, Task: itemsketch.Estimator}
	for _, s := range []itemsketch.Sketcher{
		itemsketch.ReleaseDB{},
		itemsketch.Subsample{Seed: 1, SampleOverride: 40},
		itemsketch.ImportanceSample{Seed: 1, SampleOverride: 40},
	} {
		sk, err := s.Sketch(db, p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(itemsketch.Marshal(sk))
	}
	f.Add([]byte("ISKB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, err := itemsketch.Unmarshal(data)
		if err != nil {
			if !errors.Is(err, itemsketch.ErrCorruptSketch) && !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		wire := itemsketch.Marshal(sk)
		if !bytes.Equal(wire, data) {
			t.Fatalf("accepted payload does not re-marshal identically")
		}
	})
}
