package itemsketch_test

import (
	"context"
	"math"
	"strings"
	"testing"

	itemsketch "repro"
	"repro/internal/rng"
)

func buildDB(t testing.TB) *itemsketch.Database {
	t.Helper()
	db := itemsketch.NewDatabase(16)
	r := rng.New(7)
	for i := 0; i < 5000; i++ {
		var attrs []int
		for a := 0; a < 16; a++ {
			if r.Bernoulli(0.2) {
				attrs = append(attrs, a)
			}
		}
		if r.Bernoulli(0.5) {
			attrs = append(attrs, 2, 3)
		}
		db.AddRowAttrs(dedupe(attrs)...)
	}
	return db
}

func dedupe(a []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, v := range a {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func TestPublicAPIEndToEnd(t *testing.T) {
	db := buildDB(t)
	p := itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, plan, err := itemsketch.Build(context.Background(), db,
		itemsketch.WithParams(p), itemsketch.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Winner == nil || len(plan.Costs) != 3 {
		t.Fatal("plan incomplete")
	}
	T := itemsketch.MustItemset(2, 3)
	est := sk.(itemsketch.EstimatorSketch).Estimate(T)
	if math.Abs(est-db.Frequency(T)) > p.Eps {
		t.Fatalf("estimate %g vs true %g beyond eps", est, db.Frequency(T))
	}

	// Serialization round trip through the public envelope helpers.
	wire := itemsketch.Marshal(sk)
	env, err := itemsketch.Inspect(wire)
	if err != nil {
		t.Fatal(err)
	}
	if int64(env.PayloadBits) != sk.SizeBits() {
		t.Fatalf("envelope payload bits %d != SizeBits %d", env.PayloadBits, sk.SizeBits())
	}
	got, err := itemsketch.Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.(itemsketch.EstimatorSketch).Estimate(T) != est {
		t.Fatal("estimate changed after round trip")
	}
}

func TestPublicMiningOnSketch(t *testing.T) {
	db := buildDB(t)
	p := itemsketch.Params{K: 3, Eps: 0.02, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, err := itemsketch.Subsample{Seed: 5}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	exact, err := itemsketch.AprioriContext(ctx, itemsketch.QueryDatabase(db), 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := itemsketch.AprioriContext(ctx, itemsketch.QuerySketch(sk), 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) == 0 || len(approx) == 0 {
		t.Fatal("mining found nothing")
	}
	// The planted pair {2,3} must appear in both.
	found := 0
	for _, rs := range [][]itemsketch.MiningResult{exact, approx} {
		for _, r := range rs {
			if r.Items.Equal(itemsketch.MustItemset(2, 3)) {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("planted pair found %d/2 times", found)
	}
	// Eclat agrees with Apriori on the exact database.
	ec := itemsketch.Eclat(db, 0.3, 2)
	if len(ec) != len(exact) {
		t.Fatalf("eclat %d vs apriori %d", len(ec), len(exact))
	}
	// Condensed representations and rules run.
	if m := itemsketch.Maximal(exact); len(m) == 0 {
		t.Error("no maximal itemsets")
	}
	if c := itemsketch.Closed(exact); len(c) == 0 {
		t.Error("no closed itemsets")
	}
	_ = itemsketch.AssociationRules(exact, 0.5)
}

func TestPublicStreaming(t *testing.T) {
	res, err := itemsketch.NewReservoir(8, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		res.AddAttrs(i%8, (i+1)%8)
	}
	if res.Len() != 500 || res.Seen() != 3000 {
		t.Fatalf("reservoir state %d/%d", res.Len(), res.Seen())
	}
	mg, err := itemsketch.NewMisraGries(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		mg.Add(i % 3)
	}
	if len(mg.HeavyHitters(0.2)) == 0 {
		t.Error("heavy hitters missing")
	}
}

func TestPublicTransactionsAndSampleSize(t *testing.T) {
	db, err := itemsketch.ReadTransactions(strings.NewReader("0 1\n2\n"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRows() != 2 {
		t.Fatalf("rows %d", db.NumRows())
	}
	p := itemsketch.Params{K: 2, Eps: 0.1, Delta: 0.1,
		Mode: itemsketch.ForEach, Task: itemsketch.Indicator}
	if itemsketch.SampleSize(16, p) <= 0 {
		t.Error("sample size must be positive")
	}
	if _, err := itemsketch.NewItemset(1, 1); err == nil {
		t.Error("duplicate attrs should fail")
	}
}

func TestPublicMergeAndSpaceSaving(t *testing.T) {
	// Two shards, merged reservoir covers both.
	a, err := itemsketch.NewReservoir(8, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := itemsketch.NewReservoir(8, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		a.AddAttrs(0, 1)
		b.AddAttrs(2, 3)
	}
	m, err := itemsketch.MergeReservoirs(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seen() != 2000 || m.Len() != 100 {
		t.Fatalf("merged reservoir state %d/%d", m.Len(), m.Seen())
	}
	fa := m.Estimate(itemsketch.MustItemset(0, 1))
	fb := m.Estimate(itemsketch.MustItemset(2, 3))
	if fa == 0 || fb == 0 {
		t.Fatal("merged sample must contain rows from both shards")
	}

	// Misra-Gries merge.
	mg1, _ := itemsketch.NewMisraGries(10)
	mg2, _ := itemsketch.NewMisraGries(10)
	for i := 0; i < 500; i++ {
		mg1.Add(1)
		mg2.Add(2)
	}
	mgm, err := itemsketch.MergeMisraGries(mg1, mg2)
	if err != nil {
		t.Fatal(err)
	}
	if mgm.N() != 1000 {
		t.Fatalf("merged N = %d", mgm.N())
	}

	// SpaceSaving basics via the facade.
	ss, err := itemsketch.NewSpaceSaving(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		ss.Add(i % 3)
	}
	if len(ss.HeavyHitters(0.2)) == 0 {
		t.Error("space-saving heavy hitters missing")
	}
}

func TestPublicToivonenAndFPGrowth(t *testing.T) {
	db := buildDB(t)
	// A reservoir sample drives Toivonen.
	res, err := itemsketch.NewReservoir(16, 1500, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < db.NumRows(); i++ {
		res.Add(db.Row(i))
	}
	rep, err := itemsketch.Toivonen(db, res.Database(), 0.3, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Log("single Toivonen pass incomplete (allowed; would retry)")
	}
	exact := itemsketch.FPGrowth(db, 0.3, 2)
	if rep.Complete() && len(rep.Frequent) != len(exact) {
		t.Fatalf("complete Toivonen pass found %d itemsets, exact %d", len(rep.Frequent), len(exact))
	}
	// FP-Growth agrees with Eclat through the facade.
	ec := itemsketch.Eclat(db, 0.3, 2)
	if len(exact) != len(ec) {
		t.Fatalf("fp-growth %d vs eclat %d", len(exact), len(ec))
	}
}
