package itemsketch

import (
	"bytes"
	"fmt"

	"repro/internal/core"
)

// Wire format: Marshal wraps the sketch's bit stream in a small
// self-describing envelope so Unmarshal needs no side-channel bit
// length and corrupt or future-versioned payloads fail with typed
// errors instead of misdecoding.
//
// Both versions share the 18-byte header family (all multi-byte fields
// little-endian):
//
//	offset  size  field
//	     0     4  magic "ISKB"
//	     4     1  format version (1 or 2)
//	     5     1  sketch kind (SketchKind; mirrors the payload tag)
//	     6     8  payload length in bits — the paper's |S| measure
//	    14     4  version-dependent trailer (see below)
//	    18     …  payload
//
// Version 1 (legacy, still readable): the trailer is the CRC-32 (IEEE)
// of the payload bytes and the payload is the raw sketch bit stream,
// LSB-first packed, in one piece. Decoding must buffer the whole
// payload before the checksum can be verified.
//
// Version 2 (written by this library): the trailer is
//
//	offset  size  field
//	    14     1  flags (bit 0: payload stream is flate-compressed)
//	    15     1  chunk capacity as log₂ bytes (chunk size = 1<<this)
//	    16     2  header check: low 16 bits of CRC-32 (IEEE) of bytes 0–15
//
// and the payload is framed in chunks, each carrying its own length
// and checksum:
//
//	offset  size  field
//	     0     4  chunk data length L in bytes (0 terminates the payload)
//	     4     4  CRC-32 (IEEE) of the L data bytes (0 for the terminator)
//	     8     L  chunk data
//
// Every chunk except the last must be full (L = chunk capacity), so the
// encoding is canonical; a zero-length terminator chunk closes the
// payload. The chunk data, concatenated (and inflated when the
// compressed flag is set), is the same LSB-first sketch bit stream
// version 1 carries. Chunked framing is what makes UnmarshalFrom
// streaming: the decoder holds at most one chunk at a time, and a
// corrupted byte is reported at the offending chunk instead of after
// reading the whole stream.
//
// The kind byte duplicates the payload's leading type tag so tools can
// identify a sketch without decoding it; decoding cross-checks the two
// and rejects disagreement as corruption.

// EnvelopeVersion is the wire format version this library writes.
// Decoding accepts exactly versions 1..EnvelopeVersion; newer versions
// fail with ErrUnsupportedVersion.
const EnvelopeVersion = 2

// envelopeHeaderLen is the fixed byte length of the envelope header.
const envelopeHeaderLen = 18

var envelopeMagic = [4]byte{'I', 'S', 'K', 'B'}

// SketchKind identifies the algorithm family of a serialized sketch.
// The values mirror the payload type tags and are stable across
// versions. The set of valid kinds is the core sketch-kind registry —
// a family registers its kind byte, name, decoder and (optional) merge
// once, and the envelope codec, Inspect, the Querier adapter and the
// service all dispatch through that registration; no switch statements
// enumerate kinds anywhere.
type SketchKind uint8

// The sketch kinds of the wire format (shared by versions 1 and 2).
const (
	KindReleaseDB SketchKind = iota
	KindReleaseAnswersIndicator
	KindReleaseAnswersEstimator
	KindSubsample
	KindMedianAmplify
	KindImportanceSample
	KindCountSketch
	KindWindowedReservoir
	KindDecayedMisraGries
)

// String returns the registered name of the kind.
func (k SketchKind) String() string {
	if spec, ok := core.KindSpecOf(uint8(k)); ok {
		return spec.Name
	}
	return fmt.Sprintf("SketchKind(%d)", uint8(k))
}

// Registered reports whether the kind byte names a registered sketch
// family in this build.
func (k SketchKind) Registered() bool {
	_, ok := core.KindSpecOf(uint8(k))
	return ok
}

// RegisteredKinds returns every registered sketch kind in ascending
// order — the full set Unmarshal can decode. Tests iterate it so a
// family cannot be registered without envelope coverage.
func RegisteredKinds() []SketchKind {
	specs := core.Kinds()
	kinds := make([]SketchKind, len(specs))
	for i, spec := range specs {
		kinds[i] = SketchKind(spec.Kind)
	}
	return kinds
}

// Envelope describes a serialized sketch without decoding its payload.
type Envelope struct {
	// Version is the wire format version byte.
	Version int
	// Kind identifies the sketching algorithm.
	Kind SketchKind
	// PayloadBits is the exact payload length in bits — the paper's
	// space measure |S| (Definition 5), excluding envelope overhead
	// and before any compression.
	PayloadBits int
	// Checksum is the CRC-32 (IEEE) of the payload bytes. Version 1
	// only; version 2 checksums each chunk separately and leaves this
	// zero.
	Checksum uint32
	// Compressed reports whether the version-2 payload stream is
	// flate-compressed. Always false for version 1.
	Compressed bool
	// ChunkBytes is the version-2 chunk capacity in bytes. Zero for
	// version 1.
	ChunkBytes int
	// Chunks is the number of data chunks the version-2 payload spans.
	// It is filled by Inspect/InspectFrom (which walk the chunk frames)
	// and zero for version 1.
	Chunks int
}

// Marshal serializes a sketch into the self-describing version-2
// envelope. The encoding is deterministic: the same sketch always
// produces the same bytes, and Unmarshal followed by Marshal is
// byte-identical. The paper's space measure |S| is s.SizeBits() (the
// payload bit length, also recoverable from the envelope via Inspect).
//
// Marshal is a thin wrapper over the MarshalTo streaming path; it
// panics if s is not one of this package's sketch types (such a sketch
// could never round-trip through Unmarshal, which only produces the
// built-in kinds). The output buffer is pre-sized from the sketch's
// declared bit length (header + payload + chunk frames), so the encode
// performs a single buffer allocation.
func Marshal(s Sketch) []byte {
	kind, ok := sketchKindOf(s)
	if !ok {
		panic(fmt.Sprintf("itemsketch: Marshal(%T): cannot marshal unregistered sketch type", s))
	}
	bits := s.SizeBits()
	payload := (bits + 7) / 8
	chunks := (payload + DefaultChunkBytes - 1) / DefaultChunkBytes
	var buf bytes.Buffer
	buf.Grow(envelopeHeaderLen + int(payload) + chunkFrameLen*(int(chunks)+1))
	if _, err := marshalToSized(&buf, s, kind, bits, marshalOptions{chunkBytes: DefaultChunkBytes}); err != nil {
		// A bytes.Buffer never fails, so the only cause is a Sketch
		// whose SizeBits disagrees with its MarshalBits — an
		// implementation bug, not a runtime input.
		panic(fmt.Sprintf("itemsketch: Marshal(%T): %v", s, err))
	}
	return buf.Bytes()
}

// Unmarshal decodes a sketch serialized by Marshal (either envelope
// version). It needs no side-channel bit length: the envelope carries
// it. Corrupt data — wrong magic, truncation, checksum mismatch,
// kind/payload disagreement, trailing bytes, or an undecodable payload
// — fails with an error wrapping ErrCorruptSketch (truncation
// additionally wraps ErrTruncatedStream); an envelope from a newer
// format version fails with ErrUnsupportedVersion.
func Unmarshal(data []byte) (Sketch, error) {
	br := bytes.NewReader(data)
	sk, err := UnmarshalFrom(br)
	if err != nil {
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the envelope", ErrCorruptSketch, br.Len())
	}
	return sk, nil
}

// Inspect parses and validates an envelope (header, framing and
// payload checksums) without decoding the sketch, so callers can
// identify version, kind and size cheaply.
func Inspect(data []byte) (Envelope, error) {
	br := bytes.NewReader(data)
	env, err := InspectFrom(br)
	if err != nil {
		return env, err
	}
	if br.Len() != 0 {
		return env, fmt.Errorf("%w: %d trailing bytes after the envelope", ErrCorruptSketch, br.Len())
	}
	return env, nil
}

// sketchKindOf maps a decoded sketch back to its wire kind via the
// registry's matchers (the envelope's kind byte equals the payload
// tag). The second result is false for unregistered sketch types.
func sketchKindOf(s Sketch) (SketchKind, bool) {
	kind, ok := core.KindOf(s)
	return SketchKind(kind), ok
}
