package itemsketch

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/bitvec"
	"repro/internal/core"
)

// Wire format: Marshal wraps the sketch's bit stream in a small
// self-describing envelope so Unmarshal needs no side-channel bit
// length and corrupt or future-versioned payloads fail with typed
// errors instead of misdecoding.
//
// Layout (all multi-byte fields little-endian):
//
//	offset  size  field
//	     0     4  magic "ISKB"
//	     4     1  format version (EnvelopeVersion)
//	     5     1  sketch kind (SketchKind; mirrors the payload tag)
//	     6     8  payload length in bits — the paper's |S| measure
//	    14     4  CRC-32 (IEEE) of the payload bytes
//	    18     …  payload: the sketch bit stream, LSB-first packed
//
// The kind byte duplicates the payload's leading type tag so tools can
// identify a sketch without decoding it; Unmarshal cross-checks the
// two and rejects disagreement as corruption. The CRC covers every
// payload byte (including the zero padding bits of the last byte), so
// any single-bit flip past the header fails the checksum, and header
// flips are caught by the magic/version/kind/length checks.

// EnvelopeVersion is the wire format version this library writes.
// Decoding accepts exactly versions 1..EnvelopeVersion; newer versions
// fail with ErrUnsupportedVersion.
const EnvelopeVersion = 1

// envelopeHeaderLen is the fixed byte length of the envelope header.
const envelopeHeaderLen = 18

var envelopeMagic = [4]byte{'I', 'S', 'K', 'B'}

// SketchKind identifies the algorithm family of a serialized sketch.
// The values mirror the payload type tags and are stable across
// versions.
type SketchKind uint8

// The sketch kinds of the version-1 wire format.
const (
	KindReleaseDB SketchKind = iota
	KindReleaseAnswersIndicator
	KindReleaseAnswersEstimator
	KindSubsample
	KindMedianAmplify
	KindImportanceSample

	numSketchKinds // sentinel: first invalid kind
)

// String returns the algorithm name of the kind.
func (k SketchKind) String() string {
	switch k {
	case KindReleaseDB:
		return "release-db"
	case KindReleaseAnswersIndicator:
		return "release-answers-indicator"
	case KindReleaseAnswersEstimator:
		return "release-answers-estimator"
	case KindSubsample:
		return "subsample"
	case KindMedianAmplify:
		return "median-amplify"
	case KindImportanceSample:
		return "importance-sample"
	default:
		return fmt.Sprintf("SketchKind(%d)", uint8(k))
	}
}

// Envelope describes a serialized sketch without decoding its payload.
type Envelope struct {
	// Version is the wire format version byte.
	Version int
	// Kind identifies the sketching algorithm.
	Kind SketchKind
	// PayloadBits is the exact payload length in bits — the paper's
	// space measure |S| (Definition 5), excluding envelope overhead.
	PayloadBits int
	// Checksum is the CRC-32 (IEEE) of the payload bytes.
	Checksum uint32
}

// Marshal serializes a sketch into the self-describing envelope. The
// encoding is deterministic: the same sketch always produces the same
// bytes, and Unmarshal followed by Marshal is byte-identical. The
// paper's space measure |S| is s.SizeBits() (the payload bit length,
// also recoverable from the envelope via Inspect).
func Marshal(s Sketch) []byte {
	var w bitvec.Writer
	s.MarshalBits(&w)
	payload := w.Bytes()
	buf := make([]byte, envelopeHeaderLen+len(payload))
	copy(buf[0:4], envelopeMagic[:])
	buf[4] = EnvelopeVersion
	if len(payload) > 0 {
		// The payload's first 4 bits (LSB-first) are the sketch type
		// tag; surface it as the envelope kind byte.
		buf[5] = payload[0] & 0x0f
	}
	binary.LittleEndian.PutUint64(buf[6:14], uint64(w.BitLen()))
	binary.LittleEndian.PutUint32(buf[14:18], crc32.ChecksumIEEE(payload))
	copy(buf[envelopeHeaderLen:], payload)
	return buf
}

// Unmarshal decodes a sketch serialized by Marshal. It needs no
// side-channel bit length: the envelope carries it. Corrupt data —
// wrong magic, truncation, checksum mismatch, kind/payload
// disagreement, or an undecodable payload — fails with an error
// wrapping ErrCorruptSketch; an envelope from a newer format version
// fails with ErrUnsupportedVersion.
func Unmarshal(data []byte) (Sketch, error) {
	env, payload, err := parseEnvelope(data)
	if err != nil {
		return nil, err
	}
	r := bitvec.NewReader(payload, env.PayloadBits)
	sk, err := core.UnmarshalSketch(r)
	if err != nil {
		// Already wraps core.ErrCorruptSketch (== ErrCorruptSketch).
		return nil, err
	}
	// The declared bit length must be exactly what the decoder
	// consumed: trailing undeclared bits would survive decoding but
	// vanish on re-marshal, breaking the byte-identity contract.
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d unconsumed payload bits after decoding", ErrCorruptSketch, r.Remaining())
	}
	if got := sketchKindOf(sk); got != env.Kind {
		return nil, fmt.Errorf("%w: envelope kind %v but payload decodes as %v", ErrCorruptSketch, env.Kind, got)
	}
	return sk, nil
}

// Inspect parses and validates an envelope header (including the
// payload checksum) without decoding the sketch, so callers can
// identify version, kind and size cheaply.
func Inspect(data []byte) (Envelope, error) {
	env, _, err := parseEnvelope(data)
	return env, err
}

func parseEnvelope(data []byte) (Envelope, []byte, error) {
	var env Envelope
	if len(data) < envelopeHeaderLen {
		return env, nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte envelope header", ErrCorruptSketch, len(data), envelopeHeaderLen)
	}
	if [4]byte(data[0:4]) != envelopeMagic {
		return env, nil, fmt.Errorf("%w: bad magic %q", ErrCorruptSketch, data[0:4])
	}
	env.Version = int(data[4])
	if env.Version > EnvelopeVersion {
		return env, nil, fmt.Errorf("%w: envelope version %d, this library reads up to %d", ErrUnsupportedVersion, env.Version, EnvelopeVersion)
	}
	if env.Version == 0 {
		return env, nil, fmt.Errorf("%w: envelope version 0", ErrCorruptSketch)
	}
	env.Kind = SketchKind(data[5])
	if env.Kind >= numSketchKinds {
		return env, nil, fmt.Errorf("%w: unknown sketch kind %d", ErrCorruptSketch, data[5])
	}
	bits := binary.LittleEndian.Uint64(data[6:14])
	payload := data[envelopeHeaderLen:]
	if bits > uint64(len(payload))*8 || (bits+7)/8 != uint64(len(payload)) {
		return env, nil, fmt.Errorf("%w: envelope declares %d payload bits but carries %d bytes", ErrCorruptSketch, bits, len(payload))
	}
	env.PayloadBits = int(bits)
	env.Checksum = binary.LittleEndian.Uint32(data[14:18])
	if sum := crc32.ChecksumIEEE(payload); sum != env.Checksum {
		return env, nil, fmt.Errorf("%w: payload checksum %08x, envelope says %08x", ErrCorruptSketch, sum, env.Checksum)
	}
	return env, payload, nil
}

// sketchKindOf maps a decoded sketch back to its wire kind. It mirrors
// the envelope's kind byte derivation (the payload tag), distinguishing
// the two RELEASE-ANSWERS variants by their estimate capability.
func sketchKindOf(s Sketch) SketchKind {
	_, isEst := s.(EstimatorSketch)
	switch s.Name() {
	case "release-db":
		return KindReleaseDB
	case "release-answers":
		if isEst {
			return KindReleaseAnswersEstimator
		}
		return KindReleaseAnswersIndicator
	case "subsample":
		return KindSubsample
	case "median-amplify":
		return KindMedianAmplify
	case "importance-sample":
		return KindImportanceSample
	default:
		return numSketchKinds
	}
}

// MarshalRaw serializes a sketch as a bare bit stream without the
// envelope; bits is its exact size |S| in bits (Definition 5).
//
// Deprecated: use Marshal, whose envelope carries the bit length,
// kind, version and a checksum. MarshalRaw remains for byte-level
// compatibility with payloads written before the envelope existed.
func MarshalRaw(s Sketch) (data []byte, bits int) {
	var w bitvec.Writer
	s.MarshalBits(&w)
	return w.Bytes(), w.BitLen()
}

// UnmarshalRaw decodes a bare bit stream produced by MarshalRaw (the
// pre-envelope two-argument Unmarshal path), given its exact bit
// length. Decoding failures wrap ErrCorruptSketch.
//
// Deprecated: use Unmarshal, which needs no side-channel bit length.
func UnmarshalRaw(data []byte, bits int) (Sketch, error) {
	if bits < 0 || bits > len(data)*8 {
		return nil, fmt.Errorf("%w: %d bits does not fit %d bytes", ErrCorruptSketch, bits, len(data))
	}
	return core.UnmarshalSketch(bitvec.NewReader(data, bits))
}
