// Package itemsketch is the public API of the reproduction of "Space
// Lower Bounds for Itemset Frequency Sketches" (Liberty, Mitzenmacher,
// Thaler, Ullman; PODS 2016).
//
// It exposes the sketching framework — binary databases, the four
// sketching problems of Definitions 1–4, the three naive algorithms
// (RELEASE-DB, RELEASE-ANSWERS, SUBSAMPLE), the Theorem 12 planner, and
// the Theorem 17 median amplification — together with frequent-itemset
// mining over sketches and streaming construction. The lower-bound
// machinery (the reason uniform sampling is the right default) lives in
// internal/lowerbound and is exercised by cmd/attack and the
// experiments harness.
//
// Databases are backed by a contiguous row-major bit-matrix arena with
// zero-allocation query paths: exact Count/Frequency queries pick
// automatically between a fused vertical bitmap intersection (after
// BuildColumnIndex), a serial horizontal scan, and a goroutine-sharded
// scan on large databases. Database.CountMany batches queries across
// CPUs; see the internal/dataset package docs for layout details.
//
// Sketch construction is parallel and deterministic: Subsample,
// ImportanceSample and MedianAmplifier shard their work across CPUs
// (capped per build with WithWorkers) while the same seed always
// produces bit-identical Marshal output, independent of the worker
// count; see the internal/core package docs for the seeding scheme.
//
// Quick start:
//
//	db := itemsketch.NewDatabase(64)
//	db.AddRowAttrs(3, 17, 42)
//	// ... add rows ...
//	sk, plan, err := itemsketch.BuildEstimator(ctx, db,
//	    itemsketch.WithK(2), itemsketch.WithEps(0.05), itemsketch.WithDelta(0.05),
//	    itemsketch.WithMode(itemsketch.ForAll), itemsketch.WithSeed(1))
//	f := sk.Estimate(itemsketch.MustItemset(3, 17))
//	wire := itemsketch.Marshal(sk)   // self-describing envelope
//	back, err := itemsketch.Unmarshal(wire)
//
// Construction goes through Build/BuildEstimator (functional options
// over validated defaults), queries through the Querier interface
// (context-aware, with CPU-sharded batched EstimateMany), and the wire
// format is a versioned self-describing envelope (see Marshal). All
// failures wrap the sentinel taxonomy in errors.go and are matched
// with errors.Is. The pre-envelope positional entry points (Auto,
// MarshalRaw, UnmarshalRaw, SetSketchWorkers, OnSketch, OnDatabase)
// completed their deprecation window and were removed; see the
// README's MIGRATION section for the mapping onto Build, the Querier
// adapters and the envelope codec.
package itemsketch

import (
	"context"
	"io"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/stream"
)

// Core data types, re-exported from the implementation packages.
type (
	// Database is a binary database: n rows over d attribute columns.
	Database = dataset.Database
	// Itemset is a set of attribute indices.
	Itemset = dataset.Itemset
	// Plant describes an itemset planted into generated data.
	Plant = dataset.Plant
	// BasketConfig parameterizes the market-basket generator.
	BasketConfig = dataset.BasketConfig

	// Params carries (k, ε, δ) and the problem variant.
	Params = core.Params
	// Mode selects the For-All or For-Each guarantee.
	Mode = core.Mode
	// Task selects indicator or estimator queries.
	Task = core.Task
	// Sketch answers itemset frequency questions.
	Sketch = core.Sketch
	// EstimatorSketch additionally returns frequency estimates.
	EstimatorSketch = core.EstimatorSketch
	// Sketcher builds sketches from databases.
	Sketcher = core.Sketcher
	// Plan records the Theorem 12 algorithm comparison.
	Plan = core.Plan

	// ReleaseDB stores the database verbatim (Definition 6).
	ReleaseDB = core.ReleaseDB
	// ReleaseAnswers precomputes every k-itemset answer (Definition 7).
	ReleaseAnswers = core.ReleaseAnswers
	// Subsample stores uniform row samples (Definition 8) — the
	// algorithm the paper proves essentially optimal.
	Subsample = core.Subsample
	// ImportanceSample is the §5 extension: length-weighted sampling
	// with a Horvitz–Thompson estimator, for structured databases.
	ImportanceSample = core.ImportanceSample
	// MedianAmplifier converts For-Each estimators into For-All
	// estimators (Theorem 17).
	MedianAmplifier = core.MedianAmplifier

	// MiningResult is one mined itemset with its frequency.
	MiningResult = mining.Result
	// Rule is an association rule with support/confidence/lift.
	Rule = mining.Rule
	// FrequencySource abstracts exact databases and sketches for the
	// miners.
	FrequencySource = mining.FrequencySource

	// Reservoir is the one-pass streaming SUBSAMPLE builder.
	Reservoir = stream.Reservoir
	// MisraGries is the deterministic single-item heavy hitters
	// summary, included for the paper's contrast with itemsets.
	MisraGries = stream.MisraGries
	// SpaceSaving is the counter-eviction heavy hitters summary.
	SpaceSaving = stream.SpaceSaving
	// WindowedReservoir samples the trailing window of a stream with
	// chained per-sub-window reservoirs. It is a full envelope citizen
	// (kind "windowed-reservoir") via the sketch-kind registry.
	WindowedReservoir = stream.WindowedReservoir
	// DecayedMisraGries is the exponentially time-decayed heavy-hitters
	// summary: counters and the occurrence total shrink by a factor λ on
	// every epoch tick. Kind "decayed-misra-gries" in the registry.
	DecayedMisraGries = stream.DecayedMisraGries

	// CountSketch is the hierarchical signed count sketch: mergeable
	// (ε, δ) point estimates over single attributes plus recursive
	// heavy-hitter descent. It is a full envelope citizen (kind
	// "count-sketch") via the sketch-kind registry.
	CountSketch = countsketch.Sketch
	// CountSketchConfig parameterizes a CountSketch (geometry + seed).
	CountSketchConfig = countsketch.Config
	// CountSketchHit is one heavy hitter reported by a CountSketch.
	CountSketchHit = countsketch.Hit
)

// Guarantee modes and tasks (Definitions 1–4).
const (
	ForEach = core.ForEach
	ForAll  = core.ForAll

	Indicator = core.Indicator
	Estimator = core.Estimator
)

// NewDatabase returns an empty database with d attribute columns.
func NewDatabase(d int) *Database { return dataset.NewDatabase(d) }

// NewItemset builds an itemset from attribute indices.
func NewItemset(attrs ...int) (Itemset, error) { return dataset.NewItemset(attrs...) }

// MustItemset is NewItemset that panics on invalid input.
func MustItemset(attrs ...int) Itemset { return dataset.MustItemset(attrs...) }

// ReadTransactions parses the standard one-basket-per-line format.
func ReadTransactions(r io.Reader, d int) (*Database, error) {
	return dataset.ReadTransactions(r, d)
}

// Frequencies answers a batch of exact frequency queries against db,
// sharding the batch across CPUs when a column index is present. It is
// the batched form of Database.Frequency; use Database.CountMany for
// raw counts.
func Frequencies(db *Database, ts []Itemset) []float64 {
	out := make([]float64, len(ts))
	if db.NumRows() == 0 {
		return out
	}
	counts := db.CountMany(ts)
	n := float64(db.NumRows())
	for i, c := range counts {
		out[i] = float64(c) / n
	}
	return out
}

// SampleSize returns the Lemma 9 SUBSAMPLE row count for the given
// parameters on a d-column database.
func SampleSize(d int, p Params) int { return core.SampleSize(d, p) }

// Copies returns the Theorem 17 number of independent base sketches the
// median amplification runs, ⌈10·log₂(C(d,k)/δ)⌉.
func Copies(d int, p Params) int { return core.Copies(d, p) }

// Apriori mines itemsets with frequency ≥ minSupport and size ≤ maxK
// from any frequency source (exact database or sketch).
func Apriori(src FrequencySource, minSupport float64, maxK int) []MiningResult {
	return mining.Apriori(src, minSupport, maxK)
}

// Eclat mines the same collection as Apriori from an exact database,
// using vertical intersection with the adaptive tidset/diffset
// (dEclat) representation.
func Eclat(db *Database, minSupport float64, maxK int) []MiningResult {
	return mining.Eclat(db, minSupport, maxK)
}

// FPGrowth mines the same collection as Apriori from an exact
// database, using an FP-tree with no candidate generation.
func FPGrowth(db *Database, minSupport float64, maxK int) []MiningResult {
	return mining.FPGrowth(db, minSupport, maxK)
}

// FPGrowthContext is FPGrowth with cancellation: the recursive mine
// checks ctx at every conditional-tree branch and aborts with
// ctx.Err(), so long mines over deep trees stop promptly when the
// caller's deadline passes.
func FPGrowthContext(ctx context.Context, db *Database, minSupport float64, maxK int) ([]MiningResult, error) {
	return mining.FPGrowthContext(ctx, db, minSupport, maxK)
}

// Miner is the reusable mining engine behind Apriori, Eclat, FPGrowth
// and Toivonen: all scratch (vertical tidset/diffset windows, the
// Apriori candidate trie, batched query buffers, result storage) lives
// in per-engine arenas that the next call reuses, so steady-state
// mining on a warm Miner performs no per-candidate allocation — Eclat
// reaches zero allocations per mine. Results returned by a Miner's
// methods view those arenas and stay valid only until the next call on
// the same engine; the package-level mining functions run each call on
// a fresh engine and keep the copy-free ownership semantics. A Miner
// must not be used concurrently.
type Miner = mining.Miner

// NewMiner returns a fresh reusable mining engine.
func NewMiner() *Miner { return mining.NewMiner() }

// EclatMode selects the Eclat vertical representation: adaptive
// tidset/diffset switching (the dEclat default), or one representation
// forced everywhere. All modes mine the identical collection.
type EclatMode = mining.EclatMode

// The Eclat representation modes.
const (
	// EclatAuto switches per branch between tidsets and diffsets.
	EclatAuto = mining.EclatAuto
	// EclatTidsets forces classic tidset Eclat (the benchmark
	// baseline).
	EclatTidsets = mining.EclatTidsets
	// EclatDiffsets forces diffsets everywhere.
	EclatDiffsets = mining.EclatDiffsets
)

// ToivonenReport is the outcome of a Toivonen sample-then-verify pass.
type ToivonenReport = mining.ToivonenReport

// Toivonen mines db exactly at minSupport using a row sample mined at
// loweredSupport plus negative-border verification — usually a single
// full scan (Mannila–Toivonen line of work, §1.2 of the paper).
func Toivonen(db, sample *Database, minSupport, loweredSupport float64, maxK int) (ToivonenReport, error) {
	return mining.Toivonen(db, sample, minSupport, loweredSupport, maxK)
}

// Maximal filters a mined collection to its maximal itemsets.
func Maximal(rs []MiningResult) []MiningResult { return mining.FilterMaximal(rs) }

// Closed filters a mined collection to its closed itemsets.
func Closed(rs []MiningResult) []MiningResult { return mining.FilterClosed(rs) }

// AssociationRules derives rules with confidence ≥ minConfidence.
func AssociationRules(rs []MiningResult, minConfidence float64) []Rule {
	return mining.Rules(rs, minConfidence)
}

// NewReservoir creates a streaming uniform row sampler.
func NewReservoir(d, capacity int, seed uint64) (*Reservoir, error) {
	return stream.NewReservoir(d, capacity, seed)
}

// NewMisraGries creates a deterministic heavy-hitters summary.
func NewMisraGries(k int) (*MisraGries, error) { return stream.NewMisraGries(k) }

// NewSpaceSaving creates a counter-eviction heavy-hitters summary.
func NewSpaceSaving(k int) (*SpaceSaving, error) { return stream.NewSpaceSaving(k) }

// NewCountSketch creates an empty hierarchical count sketch. Two
// sketches built with the same configuration merge cell-wise into the
// sketch of the concatenated streams.
func NewCountSketch(cfg CountSketchConfig) (*CountSketch, error) {
	return countsketch.New(cfg)
}

// MergeReservoirs combines reservoirs over disjoint stream shards into
// a uniform sample of the union — distributed SUBSAMPLE construction.
func MergeReservoirs(a, b *Reservoir, seed uint64) (*Reservoir, error) {
	return stream.Merge(a, b, seed)
}

// MergeMisraGries combines two Misra–Gries summaries of disjoint
// shards, preserving the N/k error guarantee.
func MergeMisraGries(a, b *MisraGries) (*MisraGries, error) {
	return stream.MergeMG(a, b)
}

// NewWindowedReservoir creates a sliding-window sampler over
// d-attribute rows: a trailing window of windowRows rows split into
// buckets equal sub-windows, each holding a reservoir of up to
// capacity rows. p records the (k, ε, δ) contract on the sketch.
func NewWindowedReservoir(d, windowRows, buckets, capacity int, seed uint64, p Params) (*WindowedReservoir, error) {
	return stream.NewWindowedReservoir(d, windowRows, buckets, capacity, seed, p)
}

// NewDecayedMisraGries creates an exponentially-decayed heavy-hitters
// summary over the attribute universe [0, d): at most k−1 counters,
// scaled by lambda ∈ (0, 1] on every Tick. A zero-valued p derives the
// summary's default contract.
func NewDecayedMisraGries(d, k int, lambda float64, p Params) (*DecayedMisraGries, error) {
	return stream.NewDecayedMisraGries(d, k, lambda, p)
}

// MergeWindowedReservoirs combines two windowed reservoirs over
// disjoint shards of the same stream whose windows rotate in lockstep,
// aligning buckets by epoch index.
func MergeWindowedReservoirs(a, b *WindowedReservoir, seed uint64) (*WindowedReservoir, error) {
	return stream.MergeWindowed(a, b, seed)
}

// MergeDecayedMisraGries combines two decayed summaries that tick on
// the same epoch schedule, aligning epochs before merging counters.
func MergeDecayedMisraGries(a, b *DecayedMisraGries) (*DecayedMisraGries, error) {
	return stream.MergeDecayed(a, b)
}
