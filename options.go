package itemsketch

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// BuildOption configures a Build or BuildEstimator call. Options are
// applied in order over validated defaults (k=2, ε=0.05, δ=0.05,
// ForAll, Estimator, seed 1, process-default workers, Theorem 12
// planner); validation happens once, after all options are applied,
// and failures wrap ErrInvalidParams.
type BuildOption func(*buildConfig)

type buildConfig struct {
	p       Params
	seed    uint64
	seedSet bool
	workers int
	algo    Sketcher
}

func defaultBuildConfig() buildConfig {
	return buildConfig{
		p:    Params{K: 2, Eps: 0.05, Delta: 0.05, Mode: ForAll, Task: Estimator},
		seed: 1,
	}
}

// WithK sets the itemset size k of Definitions 1–4.
func WithK(k int) BuildOption { return func(c *buildConfig) { c.p.K = k } }

// WithEps sets the precision ε ∈ (0, 1).
func WithEps(eps float64) BuildOption { return func(c *buildConfig) { c.p.Eps = eps } }

// WithDelta sets the failure probability δ ∈ (0, 1).
func WithDelta(delta float64) BuildOption { return func(c *buildConfig) { c.p.Delta = delta } }

// WithMode selects the ForAll or ForEach guarantee.
func WithMode(m Mode) BuildOption { return func(c *buildConfig) { c.p.Mode = m } }

// WithTask selects Indicator or Estimator queries.
func WithTask(t Task) BuildOption { return func(c *buildConfig) { c.p.Task = t } }

// WithParams sets all of (k, ε, δ, mode, task) at once — the migration
// path for code holding a Params value from the positional API.
func WithParams(p Params) BuildOption { return func(c *buildConfig) { c.p = p } }

// WithSeed seeds the sketching randomness. The same seed over the same
// database yields bit-identical Marshal output for any worker count.
// When combined with WithAlgorithm, the seed is applied onto the given
// sketcher (its own Seed field is overwritten); without WithSeed, a
// forced sketcher keeps whatever Seed it carries, and the default
// seed 1 governs only the planner path.
func WithSeed(seed uint64) BuildOption {
	return func(c *buildConfig) { c.seed = seed; c.seedSet = true }
}

// WithWorkers caps the number of goroutines this one build may use;
// n ≤ 0 means the process default (GOMAXPROCS). The cap is scoped to
// the build and changes wall-clock behaviour only, never the
// constructed bits.
func WithWorkers(n int) BuildOption { return func(c *buildConfig) { c.workers = n } }

// WithAlgorithm forces a specific sketching algorithm instead of the
// Theorem 12 planner: any Sketcher, including the naive algorithms
// (ReleaseDB, ReleaseAnswers, Subsample), ImportanceSample, and
// MedianAmplifier. The returned Plan records just the forced choice.
func WithAlgorithm(s Sketcher) BuildOption { return func(c *buildConfig) { c.algo = s } }

// Build compresses db into the sketch described by the options,
// returning the built sketch and the Theorem 12 plan that chose (or
// recorded) the algorithm. With no WithAlgorithm option the planner
// compares RELEASE-DB, RELEASE-ANSWERS and SUBSAMPLE and builds the
// smallest.
//
// Construction honors ctx between internal chunks — a cancelled
// context aborts the build and returns ctx.Err() — and shards its work
// across the WithWorkers budget. Option failures wrap ErrInvalidParams
// (or ErrTaskMismatch for variant mismatches) and are errors.Is-able.
func Build(ctx context.Context, db *Database, opts ...BuildOption) (Sketch, Plan, error) {
	c := defaultBuildConfig()
	for _, o := range opts {
		o(&c)
	}
	return buildSketch(ctx, db, c)
}

// BuildEstimator is Build for estimator sketches: it requires the
// (default) Estimator task and returns the concrete EstimatorSketch,
// so callers query Estimate without a type assertion. Passing
// WithTask(Indicator) fails with ErrTaskMismatch.
func BuildEstimator(ctx context.Context, db *Database, opts ...BuildOption) (EstimatorSketch, Plan, error) {
	c := defaultBuildConfig()
	for _, o := range opts {
		o(&c)
	}
	if c.p.Task != Estimator {
		return nil, Plan{}, fmt.Errorf("%w: BuildEstimator requires the Estimator task; got %v", ErrTaskMismatch, c.p.Task)
	}
	sk, plan, err := buildSketch(ctx, db, c)
	if err != nil {
		return nil, plan, err
	}
	es, ok := sk.(EstimatorSketch)
	if !ok {
		return nil, plan, fmt.Errorf("%w: %s sketch does not answer estimates", ErrTaskMismatch, sk.Name())
	}
	return es, plan, nil
}

func buildSketch(ctx context.Context, db *Database, c buildConfig) (Sketch, Plan, error) {
	if db == nil {
		return nil, Plan{}, fmt.Errorf("%w: nil database", ErrInvalidParams)
	}
	if err := c.p.Validate(); err != nil {
		return nil, Plan{}, err
	}
	var plan Plan
	if c.algo != nil {
		algo := c.algo
		if c.seedSet {
			algo = core.SeedSketcher(algo, c.seed)
		}
		cost := algo.SpaceBits(db.NumRows(), db.NumCols(), c.p)
		plan = Plan{
			N: db.NumRows(), D: db.NumCols(), Params: c.p,
			Costs:   map[string]float64{algo.Name(): cost},
			Winner:  algo,
			Minimum: cost,
		}
	} else {
		plan = core.PlanSketch(db.NumRows(), db.NumCols(), c.p, c.seed)
	}
	sk, err := core.BuildSketch(ctx, db, c.p, plan.Winner, c.workers)
	if err != nil {
		return nil, plan, err
	}
	return sk, plan, nil
}
