package itemsketch

import (
	"errors"

	"repro/internal/core"
)

// Sentinel errors of the public API. Every error returned by this
// package wraps exactly one of them, so callers dispatch with
// errors.Is instead of string matching:
//
//	sk, err := itemsketch.Unmarshal(data)
//	switch {
//	case errors.Is(err, itemsketch.ErrCorruptSketch):       // re-fetch
//	case errors.Is(err, itemsketch.ErrUnsupportedVersion):  // upgrade
//	}
var (
	// ErrInvalidParams marks out-of-range sketching parameters or
	// otherwise unusable inputs (bad Build options, mismatched batch
	// slice lengths, invalid importance weights, ...).
	ErrInvalidParams = core.ErrInvalidParams
	// ErrTaskMismatch marks an operation the sketch's Task cannot
	// answer: Estimate on an indicator-only sketch, BuildEstimator
	// with an Indicator task, or amplifying to the wrong variant.
	ErrTaskMismatch = core.ErrTaskMismatch
	// ErrWrongItemsetSize marks a query whose |T| differs from the k
	// the sketch was built for (RELEASE-ANSWERS stores k-itemset
	// answers only).
	ErrWrongItemsetSize = core.ErrWrongItemsetSize
	// ErrCorruptSketch marks an envelope or payload that cannot be
	// decoded: bad magic, truncation, checksum mismatch, or an
	// undecodable bit stream.
	ErrCorruptSketch = core.ErrCorruptSketch
	// ErrUnsupportedVersion marks an envelope written by a newer
	// format version than this library understands.
	ErrUnsupportedVersion = errors.New("itemsketch: unsupported sketch envelope version")
	// ErrTruncatedStream marks a sketch stream that ended before
	// delivering its declared payload: an interrupted transfer, a
	// partially written file, or an envelope whose declared bit length
	// exceeds what the stream actually carries. Truncation errors wrap
	// both ErrTruncatedStream and ErrCorruptSketch, so callers that
	// only dispatch on ErrCorruptSketch keep catching them, while
	// callers that want to retry the transfer can match the narrower
	// sentinel.
	ErrTruncatedStream = errors.New("itemsketch: truncated sketch stream")
)
