package itemsketch_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	itemsketch "repro"
)

// TestRegistryCompleteness is the table that makes adding a sketch kind
// without tests fail loudly: it iterates the registry — not a
// hand-maintained list — and proves, for every registered kind, the
// full envelope citizenship contract. A kind registered without a
// fixture in buildAllKinds fails here by name.
func TestRegistryCompleteness(t *testing.T) {
	kinds := itemsketch.RegisteredKinds()
	if len(kinds) < 7 {
		t.Fatalf("registry lists %d kinds, expected at least the 6 core families + count-sketch", len(kinds))
	}
	fixtures := buildAllKinds(t)
	for kind := range fixtures {
		if !kind.Registered() {
			t.Fatalf("fixture kind %d is not registered", uint8(kind))
		}
	}
	ctx := context.Background()
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sk, ok := fixtures[kind]
			if !ok {
				t.Fatalf("registered kind %d (%v) has no test fixture — add one to buildAllKinds", uint8(kind), kind)
			}

			// Marshal → Unmarshal → re-Marshal is byte-identical.
			wire := itemsketch.Marshal(sk)
			back, err := itemsketch.Unmarshal(wire)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !bytes.Equal(wire, itemsketch.Marshal(back)) {
				t.Fatal("re-marshal is not byte-identical")
			}

			// Inspect names the kind without decoding it.
			env, err := itemsketch.Inspect(wire)
			if err != nil {
				t.Fatalf("Inspect: %v", err)
			}
			if env.Kind != kind {
				t.Fatalf("Inspect kind = %v, want %v", env.Kind, kind)
			}
			if name := kind.String(); name == "" || len(name) >= 11 && name[:11] == "SketchKind(" {
				t.Fatalf("kind %d has no registered name (String() = %q)", uint8(kind), name)
			}

			// The Querier adapter answers for the decoded sketch.
			q := itemsketch.QuerySketch(back)
			if q.NumAttrs() != sk.NumAttrs() {
				t.Fatalf("querier NumAttrs = %d, sketch %d", q.NumAttrs(), sk.NumAttrs())
			}
			T := queryItemsetFor(back)
			if _, err := q.Contains(ctx, T); err != nil {
				t.Fatalf("querier Contains: %v", err)
			}
			est, isEst := back.(itemsketch.EstimatorSketch)
			if isEst {
				got, err := q.Estimate(ctx, T)
				if err != nil {
					t.Fatalf("querier Estimate: %v", err)
				}
				if want := est.Estimate(T); got != want {
					t.Fatalf("querier Estimate = %g, sketch = %g", got, want)
				}
				many := make([]float64, 3)
				ts := []itemsketch.Itemset{T, T, T}
				if err := q.EstimateMany(ctx, ts, many); err != nil {
					t.Fatalf("querier EstimateMany: %v", err)
				}
				if many[0] != got || many[2] != got {
					t.Fatalf("EstimateMany = %v, single = %g", many, got)
				}
			} else if _, err := q.Estimate(ctx, T); !errors.Is(err, itemsketch.ErrTaskMismatch) {
				t.Fatalf("indicator-only kind: Estimate err = %v, want ErrTaskMismatch", err)
			}

			// Corruption and truncation surface as typed errors: flip a
			// byte at a stride across the envelope, truncate at a stride.
			for off := 0; off < len(wire); off += 11 {
				bad := append([]byte(nil), wire...)
				bad[off] ^= 0x40
				if _, err := itemsketch.Unmarshal(bad); err == nil {
					t.Fatalf("flipped byte %d decoded cleanly", off)
				} else if !errors.Is(err, itemsketch.ErrCorruptSketch) && !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
					t.Fatalf("flipped byte %d: untyped error %v", off, err)
				}
			}
			for n := 0; n < len(wire); n += 13 {
				if _, err := itemsketch.Unmarshal(wire[:n]); !errors.Is(err, itemsketch.ErrCorruptSketch) {
					t.Fatalf("truncation to %d: err = %v, want ErrCorruptSketch", n, err)
				}
			}
		})
	}
}

// TestUnregisteredKindRejected pins the registry miss path: a kind byte
// outside the registered set fails header validation as corruption (the
// v1 header has no checksum, so the kind byte check itself must catch
// it).
func TestUnregisteredKindRejected(t *testing.T) {
	sk := buildAllKinds(t)[itemsketch.KindSubsample]
	v1 := marshalV1(sk)
	v1[5] = 15 // inside the 4-bit tag space, not registered
	if _, err := itemsketch.Unmarshal(v1); !errors.Is(err, itemsketch.ErrCorruptSketch) {
		t.Fatalf("unregistered kind 15: err = %v, want ErrCorruptSketch", err)
	}
	v1[5] = 200 // outside the tag space entirely
	if _, err := itemsketch.Unmarshal(v1); !errors.Is(err, itemsketch.ErrCorruptSketch) {
		t.Fatalf("unregistered kind 200: err = %v, want ErrCorruptSketch", err)
	}
}

// TestRegisteredKindsAscending pins the registry enumeration order the
// docs promise.
func TestRegisteredKindsAscending(t *testing.T) {
	kinds := itemsketch.RegisteredKinds()
	for i := 1; i < len(kinds); i++ {
		if kinds[i] <= kinds[i-1] {
			t.Fatalf("RegisteredKinds not ascending: %v", kinds)
		}
	}
	if !itemsketch.KindCountSketch.Registered() {
		t.Fatal("count-sketch kind is not registered")
	}
	if got := itemsketch.KindCountSketch.String(); got != "count-sketch" {
		t.Fatalf("KindCountSketch.String() = %q", got)
	}
}
