package itemsketch

import (
	"context"

	"repro/internal/mining"
	"repro/internal/query"
)

// Querier is the unified, context-aware read interface over itemset
// frequency data: exact databases, every sketch, and legacy frequency
// sources all answer queries through it, and the miners run unchanged
// against any implementation.
//
// Contains is the indicator-style query (a sketch's Definition 1/3
// decision; frequency positivity for exact databases and plain
// sources). Estimate returns a frequency in [0, 1] and fails with
// ErrTaskMismatch on indicator-only sketches. EstimateMany answers a
// batch in one call — len(out) must equal len(ts) — sharding the work
// across CPUs where the backend is concurrency-safe (QueryDatabase,
// QuerySketch) and checking ctx between chunks, so a cancelled batch
// returns ctx.Err() within one chunk of work.
type Querier = query.Querier

// QueryDatabase adapts an exact database into a Querier: estimates are
// exact frequencies, Contains reports Count > 0, and EstimateMany runs
// on the CPU-sharded CountMany path. Safe for concurrent use.
func QueryDatabase(db *Database) Querier { return query.FromDatabase(db) }

// QuerySketch adapts any sketch into a Querier: Contains is the
// sketch's indicator at its built ε, Estimate requires an estimator
// sketch (ErrTaskMismatch otherwise), and wrong-size queries against
// RELEASE-ANSWERS surface as ErrWrongItemsetSize instead of panics.
// Safe for concurrent use; EstimateMany shards across CPUs.
func QuerySketch(s Sketch) Querier { return query.FromSketch(s) }

// QuerySource adapts a legacy FrequencySource into a Querier. No
// thread-safety is assumed of src, so batches run serially (still
// cancellable between chunks).
func QuerySource(src FrequencySource) Querier { return query.FromSource(src) }

// AprioriContext mines itemsets with frequency ≥ minSupport and size
// ≤ maxK from any Querier, answering each candidate level with one
// batched EstimateMany call; a cancelled ctx aborts with ctx.Err().
// This is the context-aware form of Apriori.
func AprioriContext(ctx context.Context, q Querier, minSupport float64, maxK int) ([]MiningResult, error) {
	return mining.AprioriContext(ctx, q, minSupport, maxK)
}

// ToivonenContext is Toivonen with a context: the sample mine and the
// single full-database verification pass both run through batched,
// cancellable queries.
func ToivonenContext(ctx context.Context, db, sample *Database, minSupport, loweredSupport float64, maxK int) (ToivonenReport, error) {
	return mining.ToivonenContext(ctx, db, sample, minSupport, loweredSupport, maxK)
}
