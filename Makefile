GO ?= go

.PHONY: all build test vet doclint bench fuzz

all: vet doclint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# doclint fails if any exported symbol of the public itemsketch package
# is missing a doc comment.
doclint:
	$(GO) run ./cmd/doclint

# bench runs the operational benchmark suite, records the results, and
# gates the construction benchmarks against the previous PR's numbers;
# bump the output/baseline names (BENCH_4.json vs BENCH_3.json, ...) in
# later PRs to keep the perf trajectory.
bench:
	$(GO) run ./cmd/bench -out BENCH_3.json -compare BENCH_2.json

# fuzz exercises the two decoder/query surfaces: the exact-query paths
# and the wire-envelope decoder.
fuzz:
	$(GO) test ./internal/dataset/ -run '^$$' -fuzz FuzzCountPaths -fuzztime 30s
	$(GO) test . -run '^$$' -fuzz FuzzUnmarshalEnvelope -fuzztime 30s
