GO ?= go

.PHONY: all build test vet bench fuzz

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# bench runs the operational benchmark suite and records the results;
# bump the output name (BENCH_2.json, ...) in later PRs to keep a
# perf trajectory.
bench:
	$(GO) run ./cmd/bench -out BENCH_1.json

fuzz:
	$(GO) test ./internal/dataset/ -run '^$$' -fuzz FuzzCountPaths -fuzztime 30s
