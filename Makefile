GO ?= go

# Minimum total test coverage (go tool cover -func, statements). CI
# fails below this; re-baseline deliberately when adding code, never to
# paper over deleted tests. Raised to 77.0 at PR 8 (77.3% measured);
# held at 77.0 at PR 9 (77.1% measured — the loadgen/bench harness
# additions outgrew their tests slightly; a 0.1-margin raise would
# only flap CI) and at PR 10 (77.0% measured exactly: the assembly
# kernels are invisible to Go coverage while their dispatch wrappers
# and the cmd/bench kernel rows count as statements).
COVER_FLOOR ?= 77.0

.PHONY: all build test race cover vet doclint bench chaos fuzz

all: vet doclint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the sharded query
# fan-out, parallel builders and chunked codecs all cross goroutines.
race:
	$(GO) test -race ./...

# cover enforces the coverage floor recorded above.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | sed 's/[^0-9.]*//g'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	{ echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

vet:
	$(GO) vet ./...

# doclint fails if any exported symbol of the public itemsketch package
# is missing a doc comment.
doclint:
	$(GO) run ./cmd/doclint

# bench runs the operational benchmark suite, records the results, and
# gates the construction + mining + count-sketch + ingest benchmarks —
# plus the memoized service read paths (PR 9) and, from PR 10, the
# dispatched bitvec word kernels (kernel_*) — against the previous
# PR's numbers; bump the output/baseline names in later PRs to keep
# the perf trajectory. If the shared reference container's clock has
# drifted since the baseline was recorded (untouched families moving
# >20%), re-measure the previous PR's tree (git worktree add) on the
# same day rather than comparing wall-clock numbers across weeks —
# BENCH_7/8/9_remeasured.json are all such same-day re-baselines
# (BENCH_9_remeasured: untouched families like wal_append and
# scan_serial moved +33–52% on the byte-identical PR 9 tree).
bench:
	$(GO) run ./cmd/bench -out BENCH_10.json -compare BENCH_9_remeasured.json

# chaos runs the fault-injection suites — checkpoint recovery sweeps,
# codec fault classification, and the mixed-load kill-shards service
# test — under the race detector, across several fault seeds. Any seed
# may be reproduced standalone with FAULT_SEED=<n>.
chaos:
	for seed in 1 42 31337; do \
		FAULT_SEED=$$seed $(GO) test -race -run 'Fault|Chaos|Recovery' ./... || exit 1; \
	done

# fuzz exercises the decoder/query surfaces — the exact-query paths,
# the one-shot wire-envelope decoder, and the streaming decoder (v1 +
# v2, chunked, compressed) — plus the bitvec word kernels, whose fuzz
# target differentially checks the dispatched (possibly assembly)
# kernels against bits.OnesCount references on arbitrary operands.
fuzz:
	$(GO) test ./internal/bitvec/ -run '^$$' -fuzz FuzzWordKernels -fuzztime 30s
	$(GO) test ./internal/dataset/ -run '^$$' -fuzz FuzzCountPaths -fuzztime 30s
	$(GO) test . -run '^$$' -fuzz FuzzUnmarshalEnvelope -fuzztime 30s
	$(GO) test . -run '^$$' -fuzz FuzzUnmarshalFromEnvelope -fuzztime 30s
