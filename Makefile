GO ?= go

# Minimum total test coverage (go tool cover -func, statements). CI
# fails below this; re-baseline deliberately when adding code, never to
# paper over deleted tests. Raised to 76.0 at PR 5 (76.1% measured at
# PR 4).
COVER_FLOOR ?= 76.0

.PHONY: all build test race cover vet doclint bench fuzz

all: vet doclint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the sharded query
# fan-out, parallel builders and chunked codecs all cross goroutines.
race:
	$(GO) test -race ./...

# cover enforces the coverage floor recorded above.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | sed 's/[^0-9.]*//g'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t=$$total -v f=$(COVER_FLOOR) 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
	{ echo "coverage $$total% fell below the $(COVER_FLOOR)% floor"; exit 1; }

vet:
	$(GO) vet ./...

# doclint fails if any exported symbol of the public itemsketch package
# is missing a doc comment.
doclint:
	$(GO) run ./cmd/doclint

# bench runs the operational benchmark suite, records the results, and
# gates the construction + mining benchmarks against the previous PR's
# numbers; bump the output/baseline names (BENCH_6.json vs BENCH_5.json,
# ...) in later PRs to keep the perf trajectory.
bench:
	$(GO) run ./cmd/bench -out BENCH_5.json -compare BENCH_4.json

# fuzz exercises the three decoder/query surfaces: the exact-query
# paths, the one-shot wire-envelope decoder, and the streaming decoder
# (v1 + v2, chunked, compressed).
fuzz:
	$(GO) test ./internal/dataset/ -run '^$$' -fuzz FuzzCountPaths -fuzztime 30s
	$(GO) test . -run '^$$' -fuzz FuzzUnmarshalEnvelope -fuzztime 30s
	$(GO) test . -run '^$$' -fuzz FuzzUnmarshalFromEnvelope -fuzztime 30s
