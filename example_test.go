package itemsketch_test

import (
	"fmt"

	itemsketch "repro"
)

// ExampleAuto demonstrates the Theorem 12 planner choosing the
// smallest sketch for the requested guarantee.
func ExampleAuto() {
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			db.AddRowAttrs(1, 3)
		} else {
			db.AddRowAttrs(2)
		}
	}
	p := itemsketch.Params{K: 2, Eps: 0.1, Delta: 0.1,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, plan, err := itemsketch.Auto(db, p, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("winner:", plan.Winner.Name())
	// Estimates are quantized to ⌈log₂(1/ε)⌉+1 bits (Definition 7), so
	// print at the ε granularity.
	fmt.Printf("f({1,3}) = %.1f\n", sk.(itemsketch.EstimatorSketch).Estimate(itemsketch.MustItemset(1, 3)))
	// Output:
	// winner: release-answers
	// f({1,3}) = 0.5
}

// ExampleSubsample builds the paper's optimal sketch directly and
// round-trips it through its bit encoding.
func ExampleSubsample() {
	db := itemsketch.NewDatabase(4)
	for i := 0; i < 300; i++ {
		db.AddRowAttrs(0, 2)
	}
	p := itemsketch.Params{K: 2, Eps: 0.25, Delta: 0.1,
		Mode: itemsketch.ForEach, Task: itemsketch.Indicator}
	sk, err := itemsketch.Subsample{Seed: 7}.Sketch(db, p)
	if err != nil {
		panic(err)
	}
	data, bits := itemsketch.Marshal(sk)
	back, err := itemsketch.Unmarshal(data, bits)
	if err != nil {
		panic(err)
	}
	fmt.Println("frequent {0,2}:", back.Frequent(itemsketch.MustItemset(0, 2)))
	fmt.Println("frequent {1,3}:", back.Frequent(itemsketch.MustItemset(1, 3)))
	// Output:
	// frequent {0,2}: true
	// frequent {1,3}: false
}

// ExampleApriori mines frequent itemsets straight from a sketch — the
// paper's §1.1.2 workflow.
func ExampleApriori() {
	db := itemsketch.NewDatabase(6)
	for i := 0; i < 900; i++ {
		switch i % 3 {
		case 0:
			db.AddRowAttrs(0, 1)
		case 1:
			db.AddRowAttrs(0, 1, 4)
		default:
			db.AddRowAttrs(5)
		}
	}
	p := itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, err := itemsketch.Subsample{Seed: 3}.Sketch(db, p)
	if err != nil {
		panic(err)
	}
	for _, r := range itemsketch.Apriori(itemsketch.OnSketch(sk.(itemsketch.EstimatorSketch), 6), 0.5, 2) {
		fmt.Printf("%v ~%.1f\n", r.Items, r.Freq)
	}
	// Output:
	// {0} ~0.7
	// {1} ~0.7
	// {0,1} ~0.7
}

// ExampleNewReservoir shows one-pass streaming construction of the
// SUBSAMPLE sketch.
func ExampleNewReservoir() {
	res, err := itemsketch.NewReservoir(4, 50, 1)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 10000; i++ {
		res.AddAttrs(0, 3)
	}
	fmt.Println("seen:", res.Seen(), "stored:", res.Len())
	fmt.Printf("f({0,3}) = %.1f\n", res.Estimate(itemsketch.MustItemset(0, 3)))
	// Output:
	// seen: 10000 stored: 50
	// f({0,3}) = 1.0
}
