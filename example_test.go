package itemsketch_test

import (
	"context"
	"errors"
	"fmt"

	itemsketch "repro"
)

// ExampleBuild demonstrates the Theorem 12 planner choosing the
// smallest sketch for the requested guarantee.
func ExampleBuild() {
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			db.AddRowAttrs(1, 3)
		} else {
			db.AddRowAttrs(2)
		}
	}
	p := itemsketch.Params{K: 2, Eps: 0.1, Delta: 0.1,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	sk, plan, err := itemsketch.Build(context.Background(), db,
		itemsketch.WithParams(p), itemsketch.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("winner:", plan.Winner.Name())
	// Estimates are quantized to ⌈log₂(1/ε)⌉+1 bits (Definition 7), so
	// print at the ε granularity.
	fmt.Printf("f({1,3}) = %.1f\n", sk.(itemsketch.EstimatorSketch).Estimate(itemsketch.MustItemset(1, 3)))
	// Output:
	// winner: release-answers
	// f({1,3}) = 0.5
}

// ExampleSubsample builds the paper's optimal sketch directly and
// round-trips it through its bit encoding.
func ExampleSubsample() {
	db := itemsketch.NewDatabase(4)
	for i := 0; i < 300; i++ {
		db.AddRowAttrs(0, 2)
	}
	p := itemsketch.Params{K: 2, Eps: 0.25, Delta: 0.1,
		Mode: itemsketch.ForEach, Task: itemsketch.Indicator}
	sk, err := itemsketch.Subsample{Seed: 7}.Sketch(db, p)
	if err != nil {
		panic(err)
	}
	back, err := itemsketch.Unmarshal(itemsketch.Marshal(sk))
	if err != nil {
		panic(err)
	}
	fmt.Println("frequent {0,2}:", back.Frequent(itemsketch.MustItemset(0, 2)))
	fmt.Println("frequent {1,3}:", back.Frequent(itemsketch.MustItemset(1, 3)))
	// Output:
	// frequent {0,2}: true
	// frequent {1,3}: false
}

// ExampleNewMiner mines a database repeatedly on one reusable engine:
// the arenas warm up on the first call and every later mine runs
// allocation-free. Results view the engine's arenas, so they are read
// before the next call.
func ExampleNewMiner() {
	db := itemsketch.NewDatabase(6)
	for i := 0; i < 900; i++ {
		switch i % 3 {
		case 0:
			db.AddRowAttrs(0, 1)
		case 1:
			db.AddRowAttrs(0, 1, 4)
		default:
			db.AddRowAttrs(5)
		}
	}
	m := itemsketch.NewMiner()
	for _, minSup := range []float64{0.5, 0.3} {
		fmt.Println("minSup", minSup)
		for _, r := range m.Eclat(db, minSup, 2) {
			fmt.Printf("  %v %.2f\n", r.Items, r.Freq)
		}
	}
	// Output:
	// minSup 0.5
	//   {0} 0.67
	//   {1} 0.67
	//   {0,1} 0.67
	// minSup 0.3
	//   {0} 0.67
	//   {1} 0.67
	//   {4} 0.33
	//   {5} 0.33
	//   {0,1} 0.67
	//   {0,4} 0.33
	//   {1,4} 0.33
}

// ExampleFrequencies answers a batch of exact frequency queries in one
// call; with a column index built, the batch is sharded across CPUs
// and each query runs on the fused vertical kernel.
func ExampleFrequencies() {
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0, 1:
			db.AddRowAttrs(1, 3)
		case 2:
			db.AddRowAttrs(1)
		default:
			db.AddRowAttrs(6)
		}
	}
	db.BuildColumnIndex()
	fs := itemsketch.Frequencies(db, []itemsketch.Itemset{
		itemsketch.MustItemset(1),
		itemsketch.MustItemset(1, 3),
		itemsketch.MustItemset(6),
	})
	fmt.Printf("f({1}) = %.2f\n", fs[0])
	fmt.Printf("f({1,3}) = %.2f\n", fs[1])
	fmt.Printf("f({6}) = %.2f\n", fs[2])
	// Output:
	// f({1}) = 0.75
	// f({1,3}) = 0.50
	// f({6}) = 0.25
}

// ExampleImportanceSample sketches a structured database where the
// interesting itemset lives in a small subpopulation of long rows —
// the §5 regime where length-weighted sampling with a Horvitz–Thompson
// estimator beats uniform sampling at equal space.
func ExampleImportanceSample() {
	db := itemsketch.NewDatabase(16)
	for i := 0; i < 2000; i++ {
		if i%20 == 0 {
			// Heavy row: contains {0,1,2} plus a long tail of items.
			db.AddRowAttrs(0, 1, 2, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)
		} else {
			db.AddRowAttrs(3 + i%13)
		}
	}
	p := itemsketch.Params{K: 3, Eps: 0.05, Delta: 0.1,
		Mode: itemsketch.ForEach, Task: itemsketch.Estimator}
	sk, err := itemsketch.ImportanceSample{Seed: 2, SampleOverride: 400}.Sketch(db, p)
	if err != nil {
		panic(err)
	}
	est := sk.(itemsketch.EstimatorSketch).Estimate(itemsketch.MustItemset(0, 1, 2))
	fmt.Printf("true f = %.2f, HT estimate = %.2f\n", db.Frequency(itemsketch.MustItemset(0, 1, 2)), est)
	// Output:
	// true f = 0.05, HT estimate = 0.05
}

// ExampleMergeReservoirs merges per-shard reservoirs into a uniform
// sample of the union — distributed construction of the SUBSAMPLE
// sketch, one reservoir per stream shard.
func ExampleMergeReservoirs() {
	shardA, err := itemsketch.NewReservoir(4, 200, 1)
	if err != nil {
		panic(err)
	}
	shardB, err := itemsketch.NewReservoir(4, 200, 2)
	if err != nil {
		panic(err)
	}
	// Shard A's rows all contain {0}; shard B's all contain {1}.
	for i := 0; i < 6000; i++ {
		shardA.AddAttrs(0)
		shardB.AddAttrs(1)
	}
	merged, err := itemsketch.MergeReservoirs(shardA, shardB, 3)
	if err != nil {
		panic(err)
	}
	fmt.Println("seen:", merged.Seen(), "stored:", merged.Len())
	fmt.Printf("f({0}) = %.1f\n", merged.Estimate(itemsketch.MustItemset(0)))
	// Output:
	// seen: 12000 stored: 200
	// f({0}) = 0.5
}

// ExampleNewReservoir shows one-pass streaming construction of the
// SUBSAMPLE sketch.
func ExampleNewReservoir() {
	res, err := itemsketch.NewReservoir(4, 50, 1)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 10000; i++ {
		res.AddAttrs(0, 3)
	}
	fmt.Println("seen:", res.Seen(), "stored:", res.Len())
	fmt.Printf("f({0,3}) = %.1f\n", res.Estimate(itemsketch.MustItemset(0, 3)))
	// Output:
	// seen: 10000 stored: 50
	// f({0,3}) = 1.0
}

// ExampleBuildEstimator shows the functional-options construction
// path: validated defaults, a planner-chosen algorithm, and a concrete
// EstimatorSketch return — no type assertion needed.
func ExampleBuildEstimator() {
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 1000; i++ {
		if i%2 == 0 {
			db.AddRowAttrs(1, 3)
		} else {
			db.AddRowAttrs(2)
		}
	}
	sk, plan, err := itemsketch.BuildEstimator(context.Background(), db,
		itemsketch.WithK(2), itemsketch.WithEps(0.1), itemsketch.WithDelta(0.1),
		itemsketch.WithMode(itemsketch.ForAll), itemsketch.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("winner:", plan.Winner.Name())
	fmt.Printf("f({1,3}) = %.1f\n", sk.Estimate(itemsketch.MustItemset(1, 3)))
	// Output:
	// winner: release-answers
	// f({1,3}) = 0.5
}

// ExampleUnmarshal round-trips a sketch through the versioned
// self-describing envelope: no side-channel bit length is needed, and
// the header identifies the payload without decoding it.
func ExampleUnmarshal() {
	db := itemsketch.NewDatabase(4)
	for i := 0; i < 300; i++ {
		db.AddRowAttrs(0, 2)
	}
	sk, _, err := itemsketch.Build(context.Background(), db,
		itemsketch.WithEps(0.25), itemsketch.WithDelta(0.1),
		itemsketch.WithMode(itemsketch.ForEach),
		itemsketch.WithAlgorithm(itemsketch.Subsample{}), itemsketch.WithSeed(7))
	if err != nil {
		panic(err)
	}
	wire := itemsketch.Marshal(sk)
	env, err := itemsketch.Inspect(wire)
	if err != nil {
		panic(err)
	}
	fmt.Printf("envelope v%d: %s\n", env.Version, env.Kind)
	back, err := itemsketch.Unmarshal(wire)
	if err != nil {
		panic(err)
	}
	fmt.Println("frequent {0,2}:", back.Frequent(itemsketch.MustItemset(0, 2)))
	// A flipped payload bit fails the checksum with a typed error.
	wire[len(wire)-1] ^= 0x04
	_, err = itemsketch.Unmarshal(wire)
	fmt.Println("corrupt payload rejected:", errors.Is(err, itemsketch.ErrCorruptSketch))
	// Output:
	// envelope v2: subsample
	// frequent {0,2}: true
	// corrupt payload rejected: true
}

// ExampleQuerySketch mines frequent itemsets straight from a sketch
// through the unified Querier interface — the paper's §1.1.2 workflow
// with batched, cancellable queries.
func ExampleQuerySketch() {
	db := itemsketch.NewDatabase(6)
	for i := 0; i < 900; i++ {
		switch i % 3 {
		case 0:
			db.AddRowAttrs(0, 1)
		case 1:
			db.AddRowAttrs(0, 1, 4)
		default:
			db.AddRowAttrs(5)
		}
	}
	ctx := context.Background()
	sk, _, err := itemsketch.BuildEstimator(ctx, db,
		itemsketch.WithK(2), itemsketch.WithEps(0.05), itemsketch.WithDelta(0.05),
		itemsketch.WithAlgorithm(itemsketch.Subsample{}), itemsketch.WithSeed(3))
	if err != nil {
		panic(err)
	}
	rs, err := itemsketch.AprioriContext(ctx, itemsketch.QuerySketch(sk), 0.5, 2)
	if err != nil {
		panic(err)
	}
	for _, r := range rs {
		fmt.Printf("%v ~%.1f\n", r.Items, r.Freq)
	}
	// Output:
	// {0} ~0.7
	// {1} ~0.7
	// {0,1} ~0.7
}

// ExampleQueryDatabase answers a batch of exact queries through the
// Querier interface; the batch is sharded across CPUs and can be
// cancelled between chunks via the context.
func ExampleQueryDatabase() {
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0, 1:
			db.AddRowAttrs(1, 3)
		case 2:
			db.AddRowAttrs(1)
		default:
			db.AddRowAttrs(6)
		}
	}
	db.BuildColumnIndex()
	q := itemsketch.QueryDatabase(db)
	ts := []itemsketch.Itemset{
		itemsketch.MustItemset(1),
		itemsketch.MustItemset(1, 3),
		itemsketch.MustItemset(6),
	}
	fs := make([]float64, len(ts))
	if err := q.EstimateMany(context.Background(), ts, fs); err != nil {
		panic(err)
	}
	for i, T := range ts {
		fmt.Printf("f(%v) = %.2f\n", T, fs[i])
	}
	// Output:
	// f({1}) = 0.75
	// f({1,3}) = 0.50
	// f({6}) = 0.25
}
