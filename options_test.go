package itemsketch_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	itemsketch "repro"
	"repro/internal/bitvec"
	"repro/internal/core"
)

func optionsDB(t testing.TB) *itemsketch.Database {
	t.Helper()
	db := itemsketch.NewDatabase(16)
	for i := 0; i < 2000; i++ {
		db.AddRowAttrs(i%16, (i+1)%16, (i*3)%16)
	}
	return db
}

// TestBuildOptionValidation table-tests the functional options: every
// out-of-range option fails Build with an errors.Is-able sentinel.
func TestBuildOptionValidation(t *testing.T) {
	db := optionsDB(t)
	ctx := context.Background()
	cases := []struct {
		name string
		opts []itemsketch.BuildOption
		want error
	}{
		{"k zero", []itemsketch.BuildOption{itemsketch.WithK(0)}, itemsketch.ErrInvalidParams},
		{"k negative", []itemsketch.BuildOption{itemsketch.WithK(-3)}, itemsketch.ErrInvalidParams},
		{"k exceeds d", []itemsketch.BuildOption{itemsketch.WithK(17)}, itemsketch.ErrInvalidParams},
		{"eps zero", []itemsketch.BuildOption{itemsketch.WithEps(0)}, itemsketch.ErrInvalidParams},
		{"eps one", []itemsketch.BuildOption{itemsketch.WithEps(1)}, itemsketch.ErrInvalidParams},
		{"delta negative", []itemsketch.BuildOption{itemsketch.WithDelta(-0.1)}, itemsketch.ErrInvalidParams},
		{"delta one", []itemsketch.BuildOption{itemsketch.WithDelta(1)}, itemsketch.ErrInvalidParams},
		{"bad mode", []itemsketch.BuildOption{itemsketch.WithMode(itemsketch.Mode(9))}, itemsketch.ErrInvalidParams},
		{"bad task", []itemsketch.BuildOption{itemsketch.WithTask(itemsketch.Task(9))}, itemsketch.ErrInvalidParams},
		{"bad params struct", []itemsketch.BuildOption{itemsketch.WithParams(itemsketch.Params{})}, itemsketch.ErrInvalidParams},
		{"amplifier on foreach", []itemsketch.BuildOption{
			itemsketch.WithMode(itemsketch.ForEach),
			itemsketch.WithAlgorithm(itemsketch.MedianAmplifier{Base: itemsketch.Subsample{}}),
		}, itemsketch.ErrTaskMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := itemsketch.Build(ctx, db, tc.opts...); !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
		})
	}
	if _, _, err := itemsketch.Build(ctx, nil); !errors.Is(err, itemsketch.ErrInvalidParams) {
		t.Fatalf("nil database: err = %v", err)
	}
}

// TestBuildDefaultsAndPlan pins the documented defaults: Build with no
// options plans a valid ForAll-Estimator k=2 sketch over the three
// naive algorithms.
func TestBuildDefaultsAndPlan(t *testing.T) {
	db := optionsDB(t)
	sk, plan, err := itemsketch.Build(context.Background(), db)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Costs) != 3 || plan.Winner == nil {
		t.Fatalf("default plan incomplete: %+v", plan)
	}
	p := sk.Params()
	if p.K != 2 || p.Eps != 0.05 || p.Delta != 0.05 || p.Mode != itemsketch.ForAll || p.Task != itemsketch.Estimator {
		t.Fatalf("default params %v", p)
	}
	if _, ok := sk.(itemsketch.EstimatorSketch); !ok {
		t.Fatal("default build is not an estimator")
	}
}

// TestBuildMatchesAuto asserts the construction path is bit-compatible
// with the positional planner entry point it replaced (now internal):
// same params and seed produce byte-identical envelopes.
func TestBuildMatchesAuto(t *testing.T) {
	db := optionsDB(t)
	p := itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	old, _, err := core.AutoSketch(db, p, 9)
	if err != nil {
		t.Fatal(err)
	}
	sk, _, err := itemsketch.Build(context.Background(), db,
		itemsketch.WithParams(p), itemsketch.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(itemsketch.Marshal(old), itemsketch.Marshal(sk)) {
		t.Fatal("Build and Auto disagree for the same seed")
	}
}

// TestBuildWorkersDeterminism asserts WithWorkers changes wall-clock
// behaviour only: 1-worker and default-worker builds are
// byte-identical, for the planner winner and for every forced sampler.
func TestBuildWorkersDeterminism(t *testing.T) {
	db := optionsDB(t)
	ctx := context.Background()
	algos := []itemsketch.BuildOption{
		nil, // planner
		itemsketch.WithAlgorithm(itemsketch.Subsample{SampleOverride: 5000}),
		itemsketch.WithAlgorithm(itemsketch.ImportanceSample{SampleOverride: 5000}),
		itemsketch.WithAlgorithm(itemsketch.MedianAmplifier{Base: itemsketch.Subsample{SampleOverride: 512}, CopiesOverride: 6}),
	}
	for i, algo := range algos {
		base := []itemsketch.BuildOption{itemsketch.WithSeed(11)}
		if algo != nil {
			base = append(base, algo)
		}
		serial, _, err := itemsketch.Build(ctx, db, append(base, itemsketch.WithWorkers(1))...)
		if err != nil {
			t.Fatal(err)
		}
		wide, _, err := itemsketch.Build(ctx, db, append(base, itemsketch.WithWorkers(8))...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(itemsketch.Marshal(serial), itemsketch.Marshal(wide)) {
			t.Fatalf("algo %d: worker count changed the constructed bits", i)
		}
	}
	// n ≤ 0 means the process default worker budget, not an error.
	def, _, err := itemsketch.Build(ctx, db, itemsketch.WithSeed(11), itemsketch.WithWorkers(-1))
	if err != nil {
		t.Fatal(err)
	}
	one, _, err := itemsketch.Build(ctx, db, itemsketch.WithSeed(11), itemsketch.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(itemsketch.Marshal(def), itemsketch.Marshal(one)) {
		t.Fatal("WithWorkers(-1) changed the constructed bits")
	}
}

// TestBuildEstimatorTaskMismatch pins the BuildEstimator contract: an
// explicit Indicator task is refused with ErrTaskMismatch rather than
// silently overridden.
func TestBuildEstimatorTaskMismatch(t *testing.T) {
	db := optionsDB(t)
	if _, _, err := itemsketch.BuildEstimator(context.Background(), db,
		itemsketch.WithTask(itemsketch.Indicator)); !errors.Is(err, itemsketch.ErrTaskMismatch) {
		t.Fatalf("err = %v, want ErrTaskMismatch", err)
	}
	sk, _, err := itemsketch.BuildEstimator(context.Background(), db, itemsketch.WithEps(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if sk.Estimate(itemsketch.MustItemset(0, 1)) < 0 {
		t.Fatal("estimate out of range")
	}
}

// TestBuildCancelled asserts Build observes an already-cancelled
// context and a context cancelled mid-build, returning ctx.Err().
func TestBuildCancelled(t *testing.T) {
	db := optionsDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := itemsketch.Build(ctx, db); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v", err)
	}
	// A custom Weight function cancels partway through weight
	// computation; the build must abort with ctx.Err() instead of
	// returning a sketch.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls := 0
	_, _, err := itemsketch.Build(ctx2, db,
		itemsketch.WithAlgorithm(itemsketch.ImportanceSample{
			SampleOverride: 10000,
			Weight: func(row *bitvec.Vector) float64 {
				calls++
				if calls == 100 {
					cancel2()
				}
				return 1
			},
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-build cancel: err = %v", err)
	}
	cancel2()
}
