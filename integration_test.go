package itemsketch_test

import (
	"context"
	"math"
	"testing"

	itemsketch "repro"
	"repro/internal/combin"
	"repro/internal/rng"
)

// TestIntegrationFullPipeline drives the complete product story through
// the public API: generate data, build every sketcher, check the
// Definition 1–4 guarantees, serialize, and mine — one assertion chain
// from raw rows to association rules.
func TestIntegrationFullPipeline(t *testing.T) {
	const d = 20
	r := rng.New(2016)
	db := itemsketch.NewDatabase(d)
	for i := 0; i < 8000; i++ {
		var attrs []int
		for a := 0; a < d; a++ {
			if r.Bernoulli(0.1) {
				attrs = append(attrs, a)
			}
		}
		seen := map[int]bool{}
		for _, a := range attrs {
			seen[a] = true
		}
		if r.Bernoulli(0.45) {
			seen[4], seen[9] = true, true
		}
		flat := make([]int, 0, len(seen))
		for a := range seen {
			flat = append(flat, a)
		}
		db.AddRowAttrs(flat...)
	}
	p := itemsketch.Params{K: 2, Eps: 0.03, Delta: 0.05,
		Mode: itemsketch.ForAll, Task: itemsketch.Estimator}

	sketchers := map[string]itemsketch.Sketcher{
		"release-db":      itemsketch.ReleaseDB{},
		"release-answers": itemsketch.ReleaseAnswers{},
		"subsample":       itemsketch.Subsample{Seed: 5},
		"importance":      itemsketch.ImportanceSample{Seed: 6},
		"median":          itemsketch.MedianAmplifier{Base: itemsketch.Subsample{Seed: 7}},
	}
	for name, sk := range sketchers {
		s, err := sk.Sketch(db, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		es, ok := s.(itemsketch.EstimatorSketch)
		if !ok {
			t.Fatalf("%s: not an estimator", name)
		}
		// The ForAll guarantee, verified exhaustively over C(d,2)
		// itemsets for this (deterministic) build.
		maxErr := 0.0
		combin.ForEachSubset(d, 2, func(set []int) bool {
			T := itemsketch.MustItemset(set...)
			if e := math.Abs(es.Estimate(T) - db.Frequency(T)); e > maxErr {
				maxErr = e
			}
			return true
		})
		if maxErr > p.Eps {
			t.Errorf("%s: ForAll max error %g > eps %g", name, maxErr, p.Eps)
		}
		// Serialization round trip through the envelope preserves
		// answers.
		back, err := itemsketch.Unmarshal(itemsketch.Marshal(s))
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		T := itemsketch.MustItemset(4, 9)
		a := es.Estimate(T)
		b := back.(itemsketch.EstimatorSketch).Estimate(T)
		if math.Abs(a-b) > 1e-3 {
			t.Errorf("%s: estimate drifted over the wire: %g vs %g", name, a, b)
		}
		// Mining on the sketch finds the planted pair. RELEASE-ANSWERS
		// is excluded: it stores answers for exactly-k itemsets only
		// (Definition 7), and Apriori needs level-1 queries.
		if name != "release-answers" {
			rs, err := itemsketch.AprioriContext(context.Background(), itemsketch.QuerySketch(es), 0.3, 2)
			if err != nil {
				t.Fatalf("%s: mining on sketch: %v", name, err)
			}
			found := false
			for _, m := range rs {
				if m.Items.Equal(T) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: planted pair not mined from sketch", name)
			}
		}
	}
}

// TestIntegrationPlannerConsistency checks that the Theorem 12 cost
// model agrees with reality: the planner's predicted bits for the
// winner equal the built sketch's measured SizeBits.
func TestIntegrationPlannerConsistency(t *testing.T) {
	r := rng.New(3)
	db := itemsketch.NewDatabase(12)
	for i := 0; i < 500; i++ {
		db.AddRowAttrs(r.Intn(12), r.Intn(12))
	}
	for _, p := range []itemsketch.Params{
		{K: 2, Eps: 0.1, Delta: 0.1, Mode: itemsketch.ForAll, Task: itemsketch.Estimator},
		{K: 2, Eps: 0.1, Delta: 0.1, Mode: itemsketch.ForAll, Task: itemsketch.Indicator},
		{K: 2, Eps: 0.005, Delta: 0.1, Mode: itemsketch.ForAll, Task: itemsketch.Indicator},
	} {
		sk, plan, err := itemsketch.Build(context.Background(), db,
			itemsketch.WithParams(p), itemsketch.WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		predicted := plan.Costs[plan.Winner.Name()]
		if got := float64(sk.SizeBits()); got != predicted {
			t.Errorf("%v: predicted %g bits, measured %g", p, predicted, got)
		}
	}
}
