package itemsketch_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"testing"
	"testing/iotest"

	itemsketch "repro"
)

// marshalOpts builds the option list for a (chunkBytes, compress) pair.
func marshalOpts(chunkBytes int, compress bool) []itemsketch.MarshalOption {
	opts := []itemsketch.MarshalOption{itemsketch.WithChunkBytes(chunkBytes)}
	if compress {
		opts = append(opts, itemsketch.WithCompression())
	}
	return opts
}

// chunkSizesFor picks chunk capacities that straddle the payload
// boundary: many tiny chunks, a handful of chunks, and a single chunk
// holding the whole payload.
func chunkSizesFor(payloadLen int) []int {
	one := 16
	for one < payloadLen {
		one <<= 1
	}
	several := one >> 3
	if several < 16 {
		several = 16
	}
	return []int{16, several, one}
}

// TestStreamRoundTripAllKinds is the streaming property test: for every
// sketch kind, chunk capacities below/around/above the payload size,
// compressed and uncompressed, MarshalTo → UnmarshalFrom round-trips
// bit-identically and re-marshaling with the same options is
// byte-identical.
func TestStreamRoundTripAllKinds(t *testing.T) {
	for kind, sk := range buildAllKinds(t) {
		rawWant, bitsWant := rawBits(sk)
		for _, chunkBytes := range chunkSizesFor(len(rawWant)) {
			for _, compress := range []bool{false, true} {
				name := fmt.Sprintf("%v/chunk=%d/compress=%v", kind, chunkBytes, compress)
				opts := marshalOpts(chunkBytes, compress)
				var wire bytes.Buffer
				n, err := itemsketch.MarshalTo(&wire, sk, opts...)
				if err != nil {
					t.Fatalf("%s: MarshalTo: %v", name, err)
				}
				if n != int64(wire.Len()) {
					t.Errorf("%s: MarshalTo reported %d bytes, wrote %d", name, n, wire.Len())
				}
				env, err := itemsketch.Inspect(wire.Bytes())
				if err != nil {
					t.Fatalf("%s: Inspect: %v", name, err)
				}
				if env.Version != 2 || env.Kind != kind || env.ChunkBytes != chunkBytes || env.Compressed != compress {
					t.Errorf("%s: envelope %+v", name, env)
				}
				if int64(env.PayloadBits) != sk.SizeBits() {
					t.Errorf("%s: payload bits %d != SizeBits %d", name, env.PayloadBits, sk.SizeBits())
				}
				if !compress {
					wantChunks := (len(rawWant) + chunkBytes - 1) / chunkBytes
					if env.Chunks != wantChunks {
						t.Errorf("%s: %d chunks, want %d", name, env.Chunks, wantChunks)
					}
				}
				back, err := itemsketch.UnmarshalFrom(bytes.NewReader(wire.Bytes()))
				if err != nil {
					t.Fatalf("%s: UnmarshalFrom: %v", name, err)
				}
				rawGot, bitsGot := rawBits(back)
				if bitsGot != bitsWant || !bytes.Equal(rawGot, rawWant) {
					t.Errorf("%s: decoded sketch is not bit-identical (%d vs %d bits)", name, bitsGot, bitsWant)
				}
				var wire2 bytes.Buffer
				if _, err := itemsketch.MarshalTo(&wire2, back, opts...); err != nil {
					t.Fatalf("%s: re-MarshalTo: %v", name, err)
				}
				if !bytes.Equal(wire.Bytes(), wire2.Bytes()) {
					t.Errorf("%s: re-marshal is not byte-identical (%d vs %d bytes)", name, wire.Len(), wire2.Len())
				}
				// The one-shot wrapper reads the same stream.
				if _, err := itemsketch.Unmarshal(wire.Bytes()); err != nil {
					t.Errorf("%s: one-shot Unmarshal: %v", name, err)
				}
			}
		}
	}
}

// TestStreamExactChunkBoundary pins the payload-exactly-fills-chunks
// cases: a RELEASE-ANSWERS indicator with k=1 over d columns has a
// payload of exactly 182+d bits, so d = 8·2^m − 182 makes it exactly
// 2^m bytes — one full chunk at WithChunkBytes(2^m), two at 2^(m−1).
func TestStreamExactChunkBoundary(t *testing.T) {
	const payloadBytes = 256
	d := 8*payloadBytes - 182
	db := itemsketch.NewDatabase(d)
	for i := 0; i < 64; i++ {
		db.AddRowAttrs(i % d)
	}
	p := itemsketch.Params{K: 1, Eps: 0.1, Delta: 0.1,
		Mode: itemsketch.ForEach, Task: itemsketch.Indicator}
	sk, err := itemsketch.ReleaseAnswers{}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if raw, _ := rawBits(sk); len(raw) != payloadBytes {
		t.Fatalf("payload is %d bytes, test wants exactly %d", len(raw), payloadBytes)
	}
	for _, tc := range []struct{ chunkBytes, wantChunks int }{
		{payloadBytes, 1},     // payload == one full chunk
		{payloadBytes / 2, 2}, // two exactly-full chunks
		{payloadBytes * 2, 1}, // payload < one chunk
	} {
		var wire bytes.Buffer
		if _, err := itemsketch.MarshalTo(&wire, sk, itemsketch.WithChunkBytes(tc.chunkBytes)); err != nil {
			t.Fatal(err)
		}
		env, err := itemsketch.Inspect(wire.Bytes())
		if err != nil {
			t.Fatalf("chunk=%d: Inspect: %v", tc.chunkBytes, err)
		}
		if env.Chunks != tc.wantChunks {
			t.Errorf("chunk=%d: %d chunks, want %d", tc.chunkBytes, env.Chunks, tc.wantChunks)
		}
		back, err := itemsketch.UnmarshalFrom(bytes.NewReader(wire.Bytes()))
		if err != nil {
			t.Fatalf("chunk=%d: UnmarshalFrom: %v", tc.chunkBytes, err)
		}
		if !bytes.Equal(itemsketch.Marshal(back), itemsketch.Marshal(sk)) {
			t.Errorf("chunk=%d: round-trip changed the sketch", tc.chunkBytes)
		}
	}
}

// streamFixture builds a deterministic multi-chunk wire image for the
// adversarial tests.
func streamFixture(t testing.TB, compress bool) []byte {
	t.Helper()
	db := itemsketch.NewDatabase(48)
	for i := 0; i < 400; i++ {
		db.AddRowAttrs(i%48, (i+7)%48, (i*5)%48)
	}
	p := itemsketch.Params{K: 2, Eps: 0.1, Delta: 0.1,
		Mode: itemsketch.ForEach, Task: itemsketch.Estimator}
	sk, err := itemsketch.Subsample{Seed: 9, SampleOverride: 300}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := itemsketch.MarshalTo(&wire, sk, marshalOpts(256, compress)...); err != nil {
		t.Fatal(err)
	}
	return wire.Bytes()
}

// TestStreamEveryTruncation feeds the decoder every possible prefix of
// a valid stream (io.LimitReader is the reader-side truncator; iotest
// only has the writer-side TruncateWriter): it must never panic and
// must always fail with a typed error — a truncation that lands inside
// the payload must be identified as ErrTruncatedStream.
func TestStreamEveryTruncation(t *testing.T) {
	for _, compress := range []bool{false, true} {
		wire := streamFixture(t, compress)
		for n := 0; n < len(wire); n++ {
			r := io.LimitReader(bytes.NewReader(wire), int64(n))
			_, err := itemsketch.UnmarshalFrom(r)
			if err == nil {
				t.Fatalf("compress=%v: truncation to %d of %d bytes decoded successfully", compress, n, len(wire))
			}
			if !errors.Is(err, itemsketch.ErrCorruptSketch) {
				t.Fatalf("compress=%v: truncation to %d bytes: untyped error %v", compress, n, err)
			}
			if n >= 18 && !errors.Is(err, itemsketch.ErrTruncatedStream) {
				t.Errorf("compress=%v: truncation to %d bytes not flagged ErrTruncatedStream: %v", compress, n, err)
			}
		}
	}
}

// TestStreamOneByteReader decodes through a reader that delivers one
// byte per Read call — the pathological io.Reader — and must produce
// the identical sketch.
func TestStreamOneByteReader(t *testing.T) {
	for _, compress := range []bool{false, true} {
		wire := streamFixture(t, compress)
		want, err := itemsketch.UnmarshalFrom(bytes.NewReader(wire))
		if err != nil {
			t.Fatal(err)
		}
		got, err := itemsketch.UnmarshalFrom(iotest.OneByteReader(bytes.NewReader(wire)))
		if err != nil {
			t.Fatalf("compress=%v: one-byte reader: %v", compress, err)
		}
		if !bytes.Equal(itemsketch.Marshal(got), itemsketch.Marshal(want)) {
			t.Errorf("compress=%v: one-byte decode differs", compress)
		}
		// InspectFrom must cope with the same reader.
		if _, err := itemsketch.InspectFrom(iotest.OneByteReader(bytes.NewReader(wire))); err != nil {
			t.Errorf("compress=%v: one-byte InspectFrom: %v", compress, err)
		}
	}
}

// chunkRegions walks a v2 wire image and returns the [start, end) byte
// range of each chunk's data section.
func chunkRegions(t testing.TB, wire []byte) [][2]int {
	t.Helper()
	var regions [][2]int
	o := 18
	for {
		if o+8 > len(wire) {
			t.Fatalf("walked off the wire at %d", o)
		}
		l := int(binary.LittleEndian.Uint32(wire[o : o+4]))
		if l == 0 {
			return regions
		}
		regions = append(regions, [2]int{o + 8, o + 8 + l})
		o += 8 + l
	}
}

// TestStreamFlippedByteNamesChunk flips one byte in each chunk's data
// and asserts the decoder fails with ErrCorruptSketch identifying that
// chunk — corruption is localized, not discovered at the end of the
// stream.
func TestStreamFlippedByteNamesChunk(t *testing.T) {
	wire := streamFixture(t, false)
	regions := chunkRegions(t, wire)
	if len(regions) < 3 {
		t.Fatalf("fixture spans %d chunks, want several", len(regions))
	}
	for i, reg := range regions {
		mut := bytes.Clone(wire)
		mut[(reg[0]+reg[1])/2] ^= 0x40
		_, err := itemsketch.UnmarshalFrom(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("chunk %d: flipped byte decoded successfully", i)
		}
		if !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Fatalf("chunk %d: untyped error %v", i, err)
		}
		if want := fmt.Sprintf("chunk %d", i); !strings.Contains(err.Error(), want) {
			t.Errorf("chunk %d: error does not name the chunk: %v", i, err)
		}
	}
}

// rewriteDeclaredBits patches the header's payload bit length and fixes
// the header check so only the length lies.
func rewriteDeclaredBits(wire []byte, bits uint64) []byte {
	mut := bytes.Clone(wire)
	binary.LittleEndian.PutUint64(mut[6:14], bits)
	binary.LittleEndian.PutUint16(mut[16:18], uint16(crc32.ChecksumIEEE(mut[:16])))
	return mut
}

// TestStreamDeclaredLengthMismatch serves a stream whose header
// declares more payload bits than its chunks deliver: the decoder must
// identify it as ErrTruncatedStream, and the opposite direction (fewer
// declared bits than delivered) as corruption.
func TestStreamDeclaredLengthMismatch(t *testing.T) {
	wire := streamFixture(t, false)
	env, err := itemsketch.Inspect(wire)
	if err != nil {
		t.Fatal(err)
	}
	over := rewriteDeclaredBits(wire, uint64(env.PayloadBits)+64)
	if _, err := itemsketch.UnmarshalFrom(bytes.NewReader(over)); !errors.Is(err, itemsketch.ErrTruncatedStream) {
		t.Errorf("declared > actual: err = %v, want ErrTruncatedStream", err)
	}
	if _, err := itemsketch.InspectFrom(bytes.NewReader(over)); !errors.Is(err, itemsketch.ErrTruncatedStream) {
		t.Errorf("declared > actual InspectFrom: err = %v, want ErrTruncatedStream", err)
	}
	under := rewriteDeclaredBits(wire, uint64(env.PayloadBits)-64)
	if _, err := itemsketch.UnmarshalFrom(bytes.NewReader(under)); !errors.Is(err, itemsketch.ErrCorruptSketch) {
		t.Errorf("declared < actual: err = %v, want ErrCorruptSketch", err)
	}
}

// TestStreamHostileDeclaredBits pins the overflow regression: headers
// declaring payload bit lengths near MaxInt64 (where naive ceil
// division like bits+7 wraps negative) must fail typed, never panic.
func TestStreamHostileDeclaredBits(t *testing.T) {
	wire := streamFixture(t, false)
	for _, bits := range []uint64{
		math.MaxInt64,     // +7 wraps int64 negative
		math.MaxInt64 - 6, // boundary of the wrap
		math.MaxInt64 - 7, // largest value the byte-count math survives
		1 << 62,
		math.MaxUint64,
	} {
		mut := rewriteDeclaredBits(wire, bits)
		if _, err := itemsketch.UnmarshalFrom(bytes.NewReader(mut)); !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Errorf("bits=%d: err = %v, want a typed failure", bits, err)
		}
		if _, err := itemsketch.InspectFrom(bytes.NewReader(mut)); !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Errorf("bits=%d: InspectFrom err = %v, want a typed failure", bits, err)
		}
	}
}

// TestStreamHostileChunkLength serves a frame declaring a huge chunk
// with almost no data behind it: the decoder must fail without
// allocating anywhere near the declared size (the grow-as-delivered
// guard).
func TestStreamHostileChunkLength(t *testing.T) {
	wire := streamFixture(t, false)
	// Rewrite the first chunk frame to declare the maximum the header's
	// chunk capacity allows, keeping only a few real bytes behind it.
	mut := bytes.Clone(wire[:18+8+16])
	binary.LittleEndian.PutUint32(mut[18:22], 1<<uint(mut[15]))
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := itemsketch.UnmarshalFrom(bytes.NewReader(mut)); err == nil {
			t.Fatal("hostile chunk length decoded successfully")
		}
	})
	if allocs > 64 {
		t.Errorf("hostile chunk length cost %.0f allocations", allocs)
	}
}

// failingReader serves its prefix, then fails with a non-EOF error —
// a stand-in for a transport fault (network reset, disk EIO).
type failingReader struct {
	data []byte
	pos  int
	err  error
}

func (f *failingReader) Read(p []byte) (int, error) {
	if f.pos >= len(f.data) {
		return 0, f.err
	}
	n := copy(p, f.data[f.pos:])
	f.pos += n
	return n, nil
}

// TestStreamTransportErrorPassthrough pins the I/O-failure contract: a
// genuine transport error from the underlying reader surfaces as
// itself — matchable with errors.Is, NOT mislabeled ErrCorruptSketch
// or ErrTruncatedStream — so callers retry the transport instead of
// discarding a valid stream as corrupt.
func TestStreamTransportErrorPassthrough(t *testing.T) {
	errBoom := errors.New("transport: connection reset")
	for _, compress := range []bool{false, true} {
		wire := streamFixture(t, compress)
		for _, cut := range []int{10, 20, 30, 100, len(wire) - 5} {
			_, err := itemsketch.UnmarshalFrom(&failingReader{data: wire[:cut], err: errBoom})
			if !errors.Is(err, errBoom) {
				t.Fatalf("compress=%v cut=%d: transport error not passed through: %v", compress, cut, err)
			}
			if errors.Is(err, itemsketch.ErrCorruptSketch) {
				t.Fatalf("compress=%v cut=%d: transport error mislabeled corrupt: %v", compress, cut, err)
			}
		}
		if _, err := itemsketch.InspectFrom(&failingReader{data: wire[:100], err: errBoom}); !errors.Is(err, errBoom) {
			t.Fatalf("compress=%v: InspectFrom transport error: %v", compress, err)
		}
	}
}

// TestInspectFromStopsAtEnvelope verifies the streaming reads consume
// exactly the envelope, leaving following data in place — the property
// that lets envelopes be concatenated or embedded.
func TestInspectFromStopsAtEnvelope(t *testing.T) {
	for _, compress := range []bool{false, true} {
		wire := streamFixture(t, compress)
		r := bytes.NewReader(append(bytes.Clone(wire), "TRAILER"...))
		if _, err := itemsketch.UnmarshalFrom(r); err != nil {
			t.Fatalf("compress=%v: %v", compress, err)
		}
		rest, _ := io.ReadAll(r)
		if string(rest) != "TRAILER" {
			t.Errorf("compress=%v: %d bytes left after UnmarshalFrom, want the 7-byte trailer", compress, len(rest))
		}
		// The one-shot wrappers, by contrast, reject trailing bytes.
		if _, err := itemsketch.Unmarshal(append(bytes.Clone(wire), 0)); !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Errorf("compress=%v: trailing byte: err = %v", compress, err)
		}
	}
}

// TestStreamV1Readable pins backward compatibility: version-1 envelopes
// (single-piece payload + whole-payload CRC) decode through the same
// streaming entry points, from any reader shape.
func TestStreamV1Readable(t *testing.T) {
	for kind, sk := range buildAllKinds(t) {
		v1 := marshalV1(sk)
		back, err := itemsketch.UnmarshalFrom(iotest.OneByteReader(bytes.NewReader(v1)))
		if err != nil {
			t.Fatalf("%v: v1 stream: %v", kind, err)
		}
		if !bytes.Equal(itemsketch.Marshal(back), itemsketch.Marshal(sk)) {
			t.Errorf("%v: v1 decode differs", kind)
		}
		env, err := itemsketch.InspectFrom(bytes.NewReader(v1))
		if err != nil {
			t.Fatalf("%v: v1 InspectFrom: %v", kind, err)
		}
		if env.Version != 1 || env.Kind != kind || env.Compressed || env.ChunkBytes != 0 {
			t.Errorf("%v: v1 envelope %+v", kind, env)
		}
		for n := 0; n < len(v1); n += 7 {
			if _, err := itemsketch.UnmarshalFrom(io.LimitReader(bytes.NewReader(v1), int64(n))); !errors.Is(err, itemsketch.ErrCorruptSketch) {
				t.Fatalf("%v: v1 truncation to %d: err = %v", kind, n, err)
			}
		}
	}
}

// FuzzUnmarshalFromEnvelope fuzzes the streaming decoder with v1 and
// v2 (plain and compressed) corpora: it must never panic, always fail
// typed, agree with itself across reader shapes, and decode to a
// sketch whose canonical re-marshal is stable.
func FuzzUnmarshalFromEnvelope(f *testing.F) {
	db := itemsketch.NewDatabase(8)
	for i := 0; i < 50; i++ {
		db.AddRowAttrs(i%8, (i+3)%8)
	}
	p := itemsketch.Params{K: 2, Eps: 0.2, Delta: 0.2,
		Mode: itemsketch.ForEach, Task: itemsketch.Estimator}
	for _, s := range []itemsketch.Sketcher{
		itemsketch.ReleaseDB{},
		itemsketch.Subsample{Seed: 1, SampleOverride: 40},
		itemsketch.ImportanceSample{Seed: 1, SampleOverride: 40},
	} {
		sk, err := s.Sketch(db, p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(itemsketch.Marshal(sk))
		f.Add(marshalV1(sk))
		var tiny, comp bytes.Buffer
		if _, err := itemsketch.MarshalTo(&tiny, sk, itemsketch.WithChunkBytes(16)); err != nil {
			f.Fatal(err)
		}
		f.Add(tiny.Bytes())
		if _, err := itemsketch.MarshalTo(&comp, sk, itemsketch.WithCompression()); err != nil {
			f.Fatal(err)
		}
		f.Add(comp.Bytes())
	}
	// The count-sketch kind, in every framing the other families get,
	// plus pre-corrupted and pre-truncated variants so the typed-error
	// paths (ErrCorruptSketch / ErrTruncatedStream) start seeded.
	cs, err := itemsketch.NewCountSketch(itemsketch.CountSketchConfig{
		Universe: 40, Rows: 3, Cols: 16, Base: 4, Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		cs.Add((i * i) % 40)
	}
	csWire := itemsketch.Marshal(cs)
	f.Add(csWire)
	f.Add(marshalV1(cs))
	var csTiny, csComp bytes.Buffer
	if _, err := itemsketch.MarshalTo(&csTiny, cs, itemsketch.WithChunkBytes(16)); err != nil {
		f.Fatal(err)
	}
	f.Add(csTiny.Bytes())
	if _, err := itemsketch.MarshalTo(&csComp, cs, itemsketch.WithCompression()); err != nil {
		f.Fatal(err)
	}
	f.Add(csComp.Bytes())
	corrupted := append([]byte(nil), csWire...)
	corrupted[len(corrupted)/2] ^= 0xff
	f.Add(corrupted)
	f.Add(csWire[:len(csWire)-3])
	// The sliding-window kinds, in the same four framings, plus a
	// corrupted and a truncated windowed envelope.
	win, err := itemsketch.NewWindowedReservoir(8, 32, 4, 8, 5, p)
	if err != nil {
		f.Fatal(err)
	}
	dmg, err := itemsketch.NewDecayedMisraGries(8, 6, 0.75, itemsketch.Params{})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		win.AddAttrs(i%8, (i+5)%8)
		dmg.Add(i % 8)
		if i%16 == 0 {
			dmg.Tick()
		}
	}
	for _, sk := range []itemsketch.Sketch{win, dmg} {
		wire := itemsketch.Marshal(sk)
		f.Add(wire)
		f.Add(marshalV1(sk))
		var tiny, comp bytes.Buffer
		if _, err := itemsketch.MarshalTo(&tiny, sk, itemsketch.WithChunkBytes(16)); err != nil {
			f.Fatal(err)
		}
		f.Add(tiny.Bytes())
		if _, err := itemsketch.MarshalTo(&comp, sk, itemsketch.WithCompression()); err != nil {
			f.Fatal(err)
		}
		f.Add(comp.Bytes())
	}
	winWire := itemsketch.Marshal(win)
	winCorrupt := append([]byte(nil), winWire...)
	winCorrupt[len(winCorrupt)/2] ^= 0x10
	f.Add(winCorrupt)
	f.Add(winWire[:len(winWire)-5])
	f.Add([]byte("ISKB"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sk, err := itemsketch.UnmarshalFrom(bytes.NewReader(data))
		skB, errB := itemsketch.UnmarshalFrom(iotest.OneByteReader(bytes.NewReader(data)))
		if (err == nil) != (errB == nil) {
			t.Fatalf("reader-shape disagreement: %v vs %v", err, errB)
		}
		if err != nil {
			if !errors.Is(err, itemsketch.ErrCorruptSketch) && !errors.Is(err, itemsketch.ErrUnsupportedVersion) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		canon := itemsketch.Marshal(sk)
		if !bytes.Equal(canon, itemsketch.Marshal(skB)) {
			t.Fatalf("reader shapes decoded different sketches")
		}
		back, err := itemsketch.Unmarshal(canon)
		if err != nil {
			t.Fatalf("canonical re-marshal does not decode: %v", err)
		}
		if !bytes.Equal(itemsketch.Marshal(back), canon) {
			t.Fatalf("canonical re-marshal is unstable")
		}
	})
}
