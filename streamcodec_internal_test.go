package itemsketch

import (
	"bytes"
	"io"
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/dataset"
)

// bigSketchWire builds a subsample sketch with a ~1 MiB payload and
// returns it plus its v2 wire image framed in chunkBytes-sized chunks.
func bigSketchWire(t testing.TB, chunkBytes int) (Sketch, []byte) {
	t.Helper()
	const d, rows = 512, 16384 // 512 bits × 16384 rows = 1 MiB payload
	db := dataset.NewDatabase(d)
	for i := 0; i < 64; i++ {
		db.AddRowAttrs(i%d, (i*31)%d, (i*101)%d)
	}
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForEach, Task: Estimator}
	sk, err := Subsample{Seed: 11, SampleOverride: rows}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	var wire bytes.Buffer
	if _, err := MarshalTo(&wire, sk, WithChunkBytes(chunkBytes)); err != nil {
		t.Fatal(err)
	}
	return sk, wire.Bytes()
}

// TestChunkReaderWorkingSet is the direct working-set assertion: the
// chunk reader's data buffer never grows past the chunk capacity, no
// matter how much payload flows through it.
func TestChunkReaderWorkingSet(t *testing.T) {
	const chunkBytes = 4096
	_, wire := bigSketchWire(t, chunkBytes)
	cr := newChunkReader(bytes.NewReader(wire[envelopeHeaderLen:]), chunkBytes)
	n, err := io.Copy(io.Discard, cr)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1<<20 {
		t.Fatalf("fixture payload only %d bytes, want ≥ 1 MiB", n)
	}
	if got := cr.maxBuffered(); got > chunkBytes {
		t.Errorf("chunk reader buffered %d bytes, chunk capacity is %d", got, chunkBytes)
	}
}

// TestUnmarshalFromWorkingSet asserts the end-to-end property the
// chunked format exists for: decoding a ~1 MiB-payload stream through
// UnmarshalFrom allocates the sketch itself (arena + column index,
// ~2× payload) plus at most a few chunks of transient buffering —
// never a whole-payload staging buffer. The one-shot pre-v2 path
// necessarily added the full payload on top.
func TestUnmarshalFromWorkingSet(t *testing.T) {
	const chunkBytes = 4096
	sk, wire := bigSketchWire(t, chunkBytes)
	payload := sk.SizeBits() / 8

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	back, err := UnmarshalFrom(bytes.NewReader(wire))
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	runtime.KeepAlive(back)

	delta := int64(after.TotalAlloc - before.TotalAlloc)
	// Sketch footprint: the sample arena (≈ payload) and its column
	// index (≈ payload again). Allow half a payload of slack for the
	// decoder's fixed windows, pre-sizing rounding and test noise; a
	// full-payload staging buffer would blow well past this.
	budget := payload*2 + payload/2
	if delta > budget {
		t.Errorf("UnmarshalFrom allocated %d bytes decoding a %d-byte payload (budget %d): payload is being buffered whole", delta, payload, budget)
	}
	if back.SizeBits() != sk.SizeBits() {
		t.Errorf("size changed across round trip: %d vs %d", back.SizeBits(), sk.SizeBits())
	}
}
