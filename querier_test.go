package itemsketch_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	itemsketch "repro"
)

func querierDB(t testing.TB) *itemsketch.Database {
	t.Helper()
	db := itemsketch.NewDatabase(16)
	for i := 0; i < 3000; i++ {
		switch i % 3 {
		case 0:
			db.AddRowAttrs(2, 3, 5)
		case 1:
			db.AddRowAttrs(2, 7)
		default:
			db.AddRowAttrs(11)
		}
	}
	db.BuildColumnIndex()
	return db
}

// TestQueryDatabaseMatchesSingles asserts EstimateMany over a batch
// larger than one chunk matches Database.Frequency bit-for-bit, and
// Contains reports containment.
func TestQueryDatabaseMatchesSingles(t *testing.T) {
	db := querierDB(t)
	q := itemsketch.QueryDatabase(db)
	ctx := context.Background()
	var ts []itemsketch.Itemset
	for i := 0; i < 600; i++ { // > 2 chunks of 256
		ts = append(ts, itemsketch.MustItemset(i%16, (i+1+i%14)%16))
	}
	out := make([]float64, len(ts))
	if err := q.EstimateMany(ctx, ts, out); err != nil {
		t.Fatal(err)
	}
	for i, T := range ts {
		if want := db.Frequency(T); out[i] != want {
			t.Fatalf("batch[%d] = %g, Frequency = %g", i, out[i], want)
		}
	}
	if got, err := q.Contains(ctx, itemsketch.MustItemset(2, 3)); err != nil || !got {
		t.Fatalf("Contains({2,3}) = %v, %v", got, err)
	}
	if got, err := q.Contains(ctx, itemsketch.MustItemset(3, 7)); err != nil || got {
		t.Fatalf("Contains({3,7}) = %v, %v", got, err)
	}
	// Mismatched slice lengths are a typed error.
	if err := q.EstimateMany(ctx, ts, out[:1]); !errors.Is(err, itemsketch.ErrInvalidParams) {
		t.Fatalf("length mismatch: err = %v", err)
	}
}

// TestQuerySketchTaskAndSize pins the typed query errors: Estimate on
// an indicator-only sketch is ErrTaskMismatch, and a wrong-size query
// against RELEASE-ANSWERS is ErrWrongItemsetSize instead of a panic.
func TestQuerySketchTaskAndSize(t *testing.T) {
	db := querierDB(t)
	ctx := context.Background()
	ind, _, err := itemsketch.Build(ctx, db,
		itemsketch.WithTask(itemsketch.Indicator), itemsketch.WithEps(0.2),
		itemsketch.WithAlgorithm(itemsketch.ReleaseAnswers{}))
	if err != nil {
		t.Fatal(err)
	}
	q := itemsketch.QuerySketch(ind)
	if _, err := q.Estimate(ctx, itemsketch.MustItemset(2, 3)); !errors.Is(err, itemsketch.ErrTaskMismatch) {
		t.Fatalf("indicator Estimate: err = %v", err)
	}
	out := make([]float64, 1)
	if err := q.EstimateMany(ctx, []itemsketch.Itemset{itemsketch.MustItemset(2, 3)}, out); !errors.Is(err, itemsketch.ErrTaskMismatch) {
		t.Fatalf("indicator EstimateMany: err = %v", err)
	}
	if _, err := q.Contains(ctx, itemsketch.MustItemset(1, 2, 3)); !errors.Is(err, itemsketch.ErrWrongItemsetSize) {
		t.Fatalf("wrong-size Contains: err = %v", err)
	}
	est, _, err := itemsketch.BuildEstimator(ctx, db,
		itemsketch.WithEps(0.2), itemsketch.WithAlgorithm(itemsketch.ReleaseAnswers{}))
	if err != nil {
		t.Fatal(err)
	}
	qe := itemsketch.QuerySketch(est)
	if _, err := qe.Estimate(ctx, itemsketch.MustItemset(5)); !errors.Is(err, itemsketch.ErrWrongItemsetSize) {
		t.Fatalf("wrong-size Estimate: err = %v", err)
	}
}

// TestQuerySketchMatchesEstimate asserts the sketch querier returns
// exactly EstimatorSketch.Estimate for every sketch kind and that
// NumAttrs flows through.
func TestQuerySketchMatchesEstimate(t *testing.T) {
	ctx := context.Background()
	for kind, sk := range buildAllKinds(t) {
		q := itemsketch.QuerySketch(sk)
		if q.NumAttrs() != sk.NumAttrs() {
			t.Fatalf("%v: NumAttrs %d vs %d", kind, q.NumAttrs(), sk.NumAttrs())
		}
		es, ok := sk.(itemsketch.EstimatorSketch)
		if !ok {
			continue
		}
		T := queryItemsetFor(sk)
		got, err := q.Estimate(ctx, T)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if want := es.Estimate(T); got != want {
			t.Fatalf("%v: querier %g, sketch %g", kind, got, want)
		}
	}
}

// cancellingSource is a FrequencySource that cancels a context after a
// fixed number of queries — it simulates a batch that is cancelled
// while in flight.
type cancellingSource struct {
	db     *itemsketch.Database
	cancel context.CancelFunc
	after  int
	mu     sync.Mutex
	calls  int
}

func (s *cancellingSource) NumAttrs() int { return s.db.NumCols() }

func (s *cancellingSource) Frequency(t itemsketch.Itemset) float64 {
	s.mu.Lock()
	s.calls++
	if s.calls == s.after {
		s.cancel()
	}
	s.mu.Unlock()
	return s.db.Frequency(t)
}

// TestEstimateManyCancelledMidBatch is the acceptance-criteria test:
// a context cancelled partway through an EstimateMany batch surfaces
// as ctx.Err(), and the batch stops within one chunk instead of
// querying all itemsets.
func TestEstimateManyCancelledMidBatch(t *testing.T) {
	db := querierDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancellingSource{db: db, cancel: cancel, after: 300} // inside chunk 2 of 4
	q := itemsketch.QuerySource(src)
	ts := make([]itemsketch.Itemset, 1000)
	for i := range ts {
		ts[i] = itemsketch.MustItemset(i % 16)
	}
	out := make([]float64, len(ts))
	err := q.EstimateMany(ctx, ts, out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if src.calls >= len(ts) {
		t.Fatalf("batch ran to completion (%d calls) despite cancellation", src.calls)
	}

	// A pre-cancelled context never issues a query at all.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	src2 := &cancellingSource{db: db, cancel: func() {}, after: -1}
	if err := itemsketch.QuerySource(src2).EstimateMany(pre, ts, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v", err)
	}
	if src2.calls != 0 {
		t.Fatalf("pre-cancelled batch issued %d queries", src2.calls)
	}

	// The parallel sketch path also observes cancellation between
	// chunks (cancel up front so the check is deterministic).
	sk, _, err := itemsketch.BuildEstimator(context.Background(), db,
		itemsketch.WithAlgorithm(itemsketch.Subsample{}), itemsketch.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	skCtx, skCancel := context.WithCancel(context.Background())
	skCancel()
	if err := itemsketch.QuerySketch(sk).EstimateMany(skCtx, ts, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("sketch pre-cancelled: err = %v", err)
	}
}

// legacyDBSource adapts a database as a caller-implemented
// FrequencySource — what external code migrating from the removed
// OnDatabase adapter looks like.
type legacyDBSource struct{ db *itemsketch.Database }

func (s legacyDBSource) Frequency(t itemsketch.Itemset) float64 { return s.db.Frequency(t) }
func (s legacyDBSource) NumAttrs() int                          { return s.db.NumCols() }

// TestAprioriContextMatchesLegacy asserts the Querier-threaded miner
// produces the same collection as the legacy FrequencySource path and
// as Eclat, and that cancellation aborts the mine.
func TestAprioriContextMatchesLegacy(t *testing.T) {
	db := querierDB(t)
	legacy := itemsketch.Apriori(legacyDBSource{db}, 0.2, 3)
	viaQ, err := itemsketch.AprioriContext(context.Background(), itemsketch.QueryDatabase(db), 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != len(viaQ) {
		t.Fatalf("legacy %d results, querier %d", len(legacy), len(viaQ))
	}
	for i := range legacy {
		if !legacy[i].Items.Equal(viaQ[i].Items) || legacy[i].Freq != viaQ[i].Freq {
			t.Fatalf("result %d differs: %v/%g vs %v/%g",
				i, legacy[i].Items, legacy[i].Freq, viaQ[i].Items, viaQ[i].Freq)
		}
	}
	ec := itemsketch.Eclat(db, 0.2, 3)
	if len(ec) != len(viaQ) {
		t.Fatalf("eclat %d results, querier apriori %d", len(ec), len(viaQ))
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := itemsketch.AprioriContext(cancelled, itemsketch.QueryDatabase(db), 0.2, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled mine: err = %v", err)
	}
}

// TestToivonenContextMatchesLegacy asserts the batched verification
// path reports the same frequent collection as before.
func TestToivonenContextMatchesLegacy(t *testing.T) {
	db := querierDB(t)
	sample := itemsketch.NewDatabase(16)
	for i := 0; i < db.NumRows(); i += 3 {
		sample.AddRow(db.Row(i))
	}
	repA, err := itemsketch.Toivonen(db, sample, 0.3, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := itemsketch.ToivonenContext(context.Background(), db, sample.Clone(), 0.3, 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(repA.Frequent) != len(repB.Frequent) || repA.Complete() != repB.Complete() {
		t.Fatalf("reports differ: %d/%v vs %d/%v",
			len(repA.Frequent), repA.Complete(), len(repB.Frequent), repB.Complete())
	}
	if _, err := itemsketch.ToivonenContext(context.Background(), db, itemsketch.NewDatabase(4), 0.3, 0.25, 3); !errors.Is(err, itemsketch.ErrInvalidParams) {
		t.Fatalf("column mismatch: err = %v", err)
	}
}
