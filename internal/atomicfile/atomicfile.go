// Package atomicfile writes files crash-safely: content goes to a
// temporary file in the destination directory, is fsynced, and is
// atomically renamed over the destination. A crash — or an injected
// I/O fault — at ANY byte of the write leaves the destination exactly
// as it was: either the complete old content or the complete new
// content is visible, never a torn mix. This is the persistence
// primitive under the service's shard checkpoints and the CLI's sketch
// saves.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Write atomically replaces path with the bytes produced by write.
// write receives the temporary file as an io.Writer; if it (or any of
// the sync/close/rename steps) fails, the temporary file is removed
// and the previous content of path is untouched. On success the new
// content is fsynced before the rename and the directory entry is
// synced after it, so a machine crash immediately after Write returns
// still finds the new file.
func Write(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: staging %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			// Best effort: the temp file is garbage after any failure.
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	// The data must be durable before the rename publishes it: rename
	// first and a crash could expose a named file whose bytes never hit
	// the disk.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: syncing %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: closing %s: %w", tmpName, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicfile: publishing %s: %w", path, err)
	}
	// Sync the directory so the rename itself survives a crash. Some
	// filesystems reject fsync on directories; the rename is already
	// atomic there, so a failure here is not worth failing the write.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
