package atomicfile

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultio"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteCreatesAndReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	for _, content := range [][]byte{[]byte("generation-1"), []byte("generation-2, longer")} {
		if err := Write(path, func(w io.Writer) error {
			_, err := w.Write(content)
			return err
		}); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, content) {
			t.Fatalf("content %q, want %q", got, content)
		}
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("leftover temp files: %v", names)
	}
}

// TestWriteFaultKillEveryOffset is the crash-safety property: a write
// torn at ANY byte offset (injected via faultio) leaves the old file
// byte-identical and no temp debris behind.
func TestWriteFaultKillEveryOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	old := []byte("the good old checkpoint that must survive")
	next := bytes.Repeat([]byte("NEW"), 40)
	if err := Write(path, func(w io.Writer) error { _, err := w.Write(old); return err }); err != nil {
		t.Fatal(err)
	}
	for off := int64(0); off <= int64(len(next)); off++ {
		err := Write(path, func(w io.Writer) error {
			fw := faultio.NewWriter(w, faultio.WithFailAt(off, nil))
			_, werr := fw.Write(next)
			return werr
		})
		if off == int64(len(next)) {
			// The tear lands past the payload: the write completes.
			if err != nil {
				t.Fatalf("offset %d: full write failed: %v", off, err)
			}
			break
		}
		if !errors.Is(err, faultio.ErrInjected) {
			t.Fatalf("offset %d: want injected failure, got %v", off, err)
		}
		got, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("offset %d: old file unreadable: %v", off, rerr)
		}
		if !bytes.Equal(got, old) {
			t.Fatalf("offset %d: old content clobbered", off)
		}
		if names := listDir(t, dir); len(names) != 1 {
			t.Fatalf("offset %d: temp debris left: %v", off, names)
		}
	}
	if got, _ := os.ReadFile(path); !bytes.Equal(got, next) {
		t.Fatal("final successful write not visible")
	}
}

func TestWriteCallbackErrorPassesThrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	sentinel := errors.New("encoder exploded")
	if err := Write(path, func(io.Writer) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("want callback error, got %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed first write must not create the destination")
	}
}
