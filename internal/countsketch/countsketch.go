// Package countsketch implements a hierarchical signed count sketch —
// the classic Charikar–Chen–Farach-Colton estimator stacked over dyadic
// levels of the attribute universe so heavy hitters can be found by
// recursive descent instead of enumeration.
//
// The sketch keeps d dyadic levels; level h summarizes the stream of
// prefixes item >> (h·log₂B) for a power-of-two branching factor B.
// Each level is an r×c table of signed counters: a 2-universal bucket
// hash spreads a prefix over c columns per row, a 4-universal sign hash
// flips the contribution, and the median of the r per-row estimates
// cancels the noise of colliding items. All hash coefficients are drawn
// from internal/rng, so a seed fully determines the sketch and two
// sketches with equal geometry and seed merge cell-wise into the sketch
// of the concatenated streams — bit-identically.
//
// The (ε, δ) contract is the count-sketch guarantee: a point estimate
// errs by more than ε·‖f‖₂ with probability at most δ, with ε = √(3/c)
// and δ = 2⁻ʳ (each row errs by more than √(3/c)·‖f‖₂ with probability
// < 1/3 by Chebyshev; the median fails only if half the rows do).
// HeavyHitters walks the level hierarchy top-down (findHH), expanding a
// prefix only when its estimated mass clears the threshold, so finding
// the heavy items costs O(B·hh·log_B(u)) estimates instead of O(u).
//
// References: Charikar, Chen, Farach-Colton, "Finding frequent items in
// data streams" (ICALP 2002); "A new Frequency Estimation Sketch for
// Data Streams" (arXiv:1912.07600); "Recursive Sketching for Frequency
// Moments" (arXiv:1011.2571); Cormode–Hadjieleftheriou, "Finding
// frequent items in data streams" (VLDB 2008) for the dyadic descent.
package countsketch

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/core"
	"repro/internal/rng"
)

// KindTag is the sketch family's wire kind byte / payload type tag,
// registered with the core sketch-kind registry at package init.
const KindTag uint8 = 6

// KindName is the family's registered wire name.
const KindName = "count-sketch"

func init() {
	core.RegisterKind(core.KindSpec{
		Kind:    KindTag,
		Name:    KindName,
		Decode:  unmarshalSketch,
		Matches: func(s core.Sketch) bool { return s.Name() == KindName },
		Merge:   mergeKind,
	})
}

// Geometry bounds. Rows are capped so median scratch lives on the
// stack; the cell cap bounds what a decoded (possibly hostile) header
// can make us allocate to 32 MiB of counters.
const (
	maxRows     = 32
	maxCols     = 1 << 20
	maxBase     = 256
	maxUniverse = 1<<31 - 1
	maxCells    = 1 << 22
)

// prime61 is the Mersenne prime 2⁶¹−1 the hash arithmetic works modulo.
const prime61 = 1<<61 - 1

// Config parameterizes a hierarchical count sketch.
type Config struct {
	// Universe is the attribute universe size: items are 0..Universe-1.
	Universe int
	// Rows is the number of independent counter rows per level
	// (default 5). The failure probability is δ = 2^-Rows.
	Rows int
	// Cols is the number of counter columns per row (default 256). The
	// additive error is ε·‖f‖₂ with ε = √(3/Cols).
	Cols int
	// Base is the power-of-two branching factor of the dyadic hierarchy
	// (default 8). Larger bases mean fewer levels (less update work)
	// but more candidate expansions per findHH step.
	Base int
	// Seed determines every hash function. Sketches must share a seed
	// (and geometry) to be mergeable.
	Seed uint64
	// Params optionally overrides the derived (ε, δ) contract recorded
	// on the sketch. When zero, Params is derived from the geometry;
	// when set, K must be 1 (the sketch answers singleton itemsets).
	Params core.Params
}

// hashFns holds one row's hash coefficients: (a, b) for the 2-universal
// bucket hash and (c0..c3) for the 4-universal sign polynomial, all in
// [0, 2⁶¹−1).
type hashFns struct {
	a, b           uint64
	c0, c1, c2, c3 uint64
}

// bucketSign evaluates both hashes at x < 2⁶¹−1: the column index in
// [0, cols) and the ±1 sign.
func (h *hashFns) bucketSign(x, cols uint64) (uint64, int64) {
	bkt := addmod61(mulmod61(h.a, x), h.b) % cols
	g := addmod61(mulmod61(addmod61(mulmod61(addmod61(mulmod61(h.c3, x), h.c2), x), h.c1), x), h.c0)
	return bkt, int64(g&1)<<1 - 1
}

// mulmod61 multiplies modulo 2⁶¹−1 using the Mersenne fold: the 128-bit
// product hi·2⁶⁴+lo reduces to hi·8+lo since 2⁶⁴ ≡ 2³, and hi < 2⁵⁸
// keeps hi<<3 from overflowing.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	s := (lo & prime61) + (lo >> 61) + hi<<3
	s = (s & prime61) + (s >> 61)
	if s >= prime61 {
		s -= prime61
	}
	return s
}

func addmod61(a, b uint64) uint64 {
	s := a + b
	s = (s & prime61) + (s >> 61)
	if s >= prime61 {
		s -= prime61
	}
	return s
}

// Sketch is a hierarchical count sketch. The zero value is unusable;
// construct with New. Concurrent readers are safe; updates require
// external synchronization (clone-and-publish, as the service does).
type Sketch struct {
	universe int
	rows     int
	cols     int
	base     int
	shift    uint // log₂(base)
	levels   int
	seed     uint64
	params   core.Params
	total    int64
	// table holds all counters, level-major then row-major:
	// cell(h, i, b) = table[(h*rows+i)*cols + b].
	table []int64
	// hash holds levels×rows hash rows, immutable after construction
	// and shared by clones.
	hash []hashFns
}

// New builds an empty hierarchical count sketch. Geometry defaults:
// Rows 5, Cols 256, Base 8. Invalid configurations fail with
// ErrInvalidParams.
func New(cfg Config) (*Sketch, error) {
	if cfg.Rows == 0 {
		cfg.Rows = 5
	}
	if cfg.Cols == 0 {
		cfg.Cols = 256
	}
	if cfg.Base == 0 {
		cfg.Base = 8
	}
	s, err := newSketch(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", core.ErrInvalidParams, err)
	}
	return s, nil
}

// newSketch validates geometry and derives the level hierarchy and hash
// functions. It applies no defaults — the decode path reuses it, and a
// serialized zero field is corruption, not a request for a default.
// Errors are returned bare so that path can wrap them as corruption
// instead of invalid construction input.
func newSketch(cfg Config) (*Sketch, error) {
	if cfg.Universe < 1 || cfg.Universe > maxUniverse {
		return nil, fmt.Errorf("universe %d, need 1..%d", cfg.Universe, maxUniverse)
	}
	if cfg.Rows < 1 || cfg.Rows > maxRows {
		return nil, fmt.Errorf("rows %d, need 1..%d", cfg.Rows, maxRows)
	}
	if cfg.Cols < 4 || cfg.Cols > maxCols {
		return nil, fmt.Errorf("cols %d, need 4..%d", cfg.Cols, maxCols)
	}
	if cfg.Base < 2 || cfg.Base > maxBase || cfg.Base&(cfg.Base-1) != 0 {
		return nil, fmt.Errorf("base %d, need a power of two in 2..%d", cfg.Base, maxBase)
	}
	shift := uint(bits.TrailingZeros(uint(cfg.Base)))
	levels := 1
	for v := uint64(cfg.Universe - 1); v >= uint64(cfg.Base); v >>= shift {
		levels++
	}
	cells := levels * cfg.Rows * cfg.Cols
	if cells > maxCells {
		return nil, fmt.Errorf("%d levels × %d rows × %d cols = %d cells exceeds the %d-cell cap", levels, cfg.Rows, cfg.Cols, cells, maxCells)
	}
	p := cfg.Params
	if p == (core.Params{}) {
		p = core.Params{
			K:     1,
			Eps:   math.Sqrt(3 / float64(cfg.Cols)),
			Delta: math.Pow(2, -float64(cfg.Rows)),
			Mode:  core.ForEach,
			Task:  core.Estimator,
		}
	} else {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if p.K != 1 {
			return nil, fmt.Errorf("k = %d, the count sketch answers singleton itemsets only", p.K)
		}
	}
	s := &Sketch{
		universe: cfg.Universe,
		rows:     cfg.Rows,
		cols:     cfg.Cols,
		base:     cfg.Base,
		shift:    shift,
		levels:   levels,
		seed:     cfg.Seed,
		params:   p,
		table:    make([]int64, cells),
		hash:     make([]hashFns, levels*cfg.Rows),
	}
	r := rng.New(cfg.Seed)
	for i := range s.hash {
		s.hash[i] = hashFns{
			a: draw61(r), b: draw61(r),
			c0: draw61(r), c1: draw61(r), c2: draw61(r), c3: draw61(r),
		}
	}
	return s, nil
}

// draw61 draws a uniform coefficient in [0, 2⁶¹−1) by rejection (only
// the single value 2⁶¹−1 is rejected, so the loop all but never spins).
func draw61(r *rng.RNG) uint64 {
	for {
		if v := r.Uint64() >> 3; v < prime61 {
			return v
		}
	}
}

// Config returns the construction-equivalent configuration, with the
// resolved defaults filled in.
func (s *Sketch) Config() Config {
	return Config{
		Universe: s.universe, Rows: s.rows, Cols: s.cols,
		Base: s.base, Seed: s.seed, Params: s.params,
	}
}

// Levels returns the number of dyadic levels in the hierarchy.
func (s *Sketch) Levels() int { return s.levels }

// Total returns the summed weight of all updates (the stream length for
// unit increments).
func (s *Sketch) Total() int64 { return s.total }

// Add records one occurrence of item.
func (s *Sketch) Add(item int) { s.Update(item, 1) }

// Update adds a signed weight to item across every level of the
// hierarchy. It panics if item is outside [0, Universe), mirroring the
// stream summaries.
func (s *Sketch) Update(item int, delta int64) {
	if item < 0 || item >= s.universe {
		panic(fmt.Sprintf("countsketch: item %d out of range [0, %d)", item, s.universe))
	}
	s.total += delta
	cols := uint64(s.cols)
	for h := 0; h < s.levels; h++ {
		x := uint64(item) >> (uint(h) * s.shift)
		base := h * s.rows * s.cols
		for i := 0; i < s.rows; i++ {
			bkt, sg := s.hash[h*s.rows+i].bucketSign(x, cols)
			s.table[base+i*s.cols+int(bkt)] += sg * delta
		}
	}
}

// estimateAt returns the median-of-rows estimate for prefix x at a
// level. The scratch lives on the stack (rows ≤ maxRows), so concurrent
// estimates never share state.
func (s *Sketch) estimateAt(x uint64, level int) int64 {
	var buf [maxRows]int64
	cols := uint64(s.cols)
	base := level * s.rows * s.cols
	for i := 0; i < s.rows; i++ {
		bkt, sg := s.hash[level*s.rows+i].bucketSign(x, cols)
		buf[i] = sg * s.table[base+i*s.cols+int(bkt)]
	}
	return medianInt64(buf[:s.rows])
}

// medianInt64 sorts in place (insertion sort: the slice is at most
// maxRows long and on the caller's stack) and returns the median,
// midpointing the two central values for even lengths.
func medianInt64(v []int64) int64 {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
	mid := len(v) / 2
	if len(v)%2 == 1 {
		return v[mid]
	}
	a, b := v[mid-1], v[mid]
	return a + (b-a)/2
}

// EstimateCount returns the estimated occurrence count of item. It
// panics if item is outside [0, Universe).
func (s *Sketch) EstimateCount(item int) int64 {
	if item < 0 || item >= s.universe {
		panic(fmt.Sprintf("countsketch: item %d out of range [0, %d)", item, s.universe))
	}
	return s.estimateAt(uint64(item), 0)
}

// EstimateFreq returns the estimated relative frequency of item
// (EstimateCount / Total), or 0 for an empty sketch.
func (s *Sketch) EstimateFreq(item int) float64 {
	if s.total <= 0 {
		return 0
	}
	return float64(s.EstimateCount(item)) / float64(s.total)
}

// L2Estimate estimates ‖f‖₂ of the item frequency-count vector: the
// median over level-0 rows of the row ℓ₂ norms (each row's Σ cell² is
// an unbiased estimate of Σ f_i² because cross terms carry independent
// random signs — the AMS / recursive-sketching estimator).
func (s *Sketch) L2Estimate() float64 {
	var buf [maxRows]float64
	for i := 0; i < s.rows; i++ {
		var sum float64
		for _, c := range s.table[i*s.cols : (i+1)*s.cols] {
			f := float64(c)
			sum += f * f
		}
		buf[i] = math.Sqrt(sum)
	}
	v := buf[:s.rows]
	sort.Float64s(v)
	mid := s.rows / 2
	if s.rows%2 == 1 {
		return v[mid]
	}
	return (v[mid-1] + v[mid]) / 2
}

// Hit is one heavy hitter: an item and its estimated occurrence count.
type Hit struct {
	Item  int
	Count int64
}

// HeavyHitters returns the items whose estimated frequency reaches
// phi ∈ (0, 1], ordered by descending estimated count (ties by item).
// Recall is the hierarchy's guarantee: a prefix containing an item of
// true frequency ≥ phi has at least that mass at every level, so the
// descent only misses it if an estimate errs below threshold (the per
// -level (ε, δ) event). False positives are items whose estimate —
// true frequency plus noise — clears the bar.
func (s *Sketch) HeavyHitters(phi float64) []Hit {
	if !(phi > 0 && phi <= 1) {
		panic(fmt.Sprintf("countsketch: phi = %g out of range (0, 1]", phi))
	}
	if s.total <= 0 {
		return nil
	}
	thr := phi * float64(s.total)
	var out []Hit
	s.findHH(thr, 0, s.levels-1, &out)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	return out
}

// findHH expands the children of a level-(level+1) prefix: each child
// whose estimated mass clears the threshold is either reported (level
// 0) or descended into. The construction guarantees the root fan-out
// (level levels-1) is at most base prefixes.
func (s *Sketch) findHH(thr float64, prefix uint64, level int, out *[]Hit) {
	live := (uint64(s.universe-1) >> (uint(level) * s.shift)) + 1
	for c := uint64(0); c < uint64(s.base); c++ {
		x := prefix<<s.shift | c
		if x >= live {
			break
		}
		est := s.estimateAt(x, level)
		if float64(est) < thr {
			continue
		}
		if level == 0 {
			*out = append(*out, Hit{Item: int(x), Count: est})
		} else {
			s.findHH(thr, x, level-1, out)
		}
	}
}

// Clone returns an independent copy sharing only the immutable hash
// functions — the freeze half of the service's clone-and-publish
// snapshot discipline.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.table = append([]int64(nil), s.table...)
	return &c
}

// Merge folds other into s cell-wise, so s summarizes the concatenation
// of both streams — bit-identically to having ingested it as one
// stream. The sketches must have identical geometry and seed; anything
// else fails with ErrInvalidParams and leaves s unchanged.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || s.universe != other.universe || s.rows != other.rows ||
		s.cols != other.cols || s.base != other.base || s.seed != other.seed {
		return fmt.Errorf("%w: count sketches differ in geometry or seed", core.ErrInvalidParams)
	}
	for i, v := range other.table {
		s.table[i] += v
	}
	s.total += other.total
	return nil
}

// mergeKind is the registry merge hook: a non-mutating merge of two
// count sketches.
func mergeKind(a, b core.Sketch) (core.Sketch, error) {
	ca, aok := a.(*Sketch)
	cb, bok := b.(*Sketch)
	if !aok || !bok {
		return nil, fmt.Errorf("%w: count-sketch merge of %T and %T", core.ErrInvalidParams, a, b)
	}
	m := ca.Clone()
	if err := m.Merge(cb); err != nil {
		return nil, err
	}
	return m, nil
}
