package countsketch

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func mustNew(t *testing.T, cfg Config) *Sketch {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return s
}

func marshalBits(t *testing.T, s core.Sketch) []byte {
	t.Helper()
	var w bitvec.Writer
	s.MarshalBits(&w)
	if got := s.SizeBits(); int64(w.BitLen()) != got {
		t.Fatalf("SizeBits %d disagrees with MarshalBits length %d", got, w.BitLen())
	}
	return append([]byte(nil), w.Bytes()...)
}

func roundTrip(t *testing.T, s *Sketch) *Sketch {
	t.Helper()
	var w bitvec.Writer
	s.MarshalBits(&w)
	back, err := core.UnmarshalSketch(bitvec.NewReader(w.Bytes(), w.BitLen()))
	if err != nil {
		t.Fatalf("UnmarshalSketch: %v", err)
	}
	cs, ok := back.(*Sketch)
	if !ok {
		t.Fatalf("decoded %T, want *Sketch", back)
	}
	return cs
}

func TestNewValidation(t *testing.T) {
	base := Config{Universe: 1000, Rows: 5, Cols: 64, Base: 8, Seed: 1}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero universe", func(c *Config) { c.Universe = 0 }},
		{"negative universe", func(c *Config) { c.Universe = -4 }},
		{"universe too large", func(c *Config) { c.Universe = maxUniverse + 1 }},
		{"too many rows", func(c *Config) { c.Rows = maxRows + 1 }},
		{"cols too small", func(c *Config) { c.Cols = 3 }},
		{"cols too large", func(c *Config) { c.Cols = maxCols + 1 }},
		{"base not a power of two", func(c *Config) { c.Base = 6 }},
		{"base too large", func(c *Config) { c.Base = 512 }},
		{"cell cap", func(c *Config) { c.Universe = maxUniverse; c.Base = 2; c.Rows = maxRows; c.Cols = maxCols }},
		{"params k != 1", func(c *Config) {
			c.Params = core.Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: core.ForEach, Task: core.Estimator}
		}},
		{"invalid params", func(c *Config) {
			c.Params = core.Params{K: 1, Eps: 2, Delta: 0.1, Mode: core.ForEach, Task: core.Estimator}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, core.ErrInvalidParams) {
				t.Fatalf("New(%+v) error = %v, want ErrInvalidParams", cfg, err)
			}
		})
	}
}

func TestDefaultsAndLevels(t *testing.T) {
	s := mustNew(t, Config{Universe: 4096, Seed: 1})
	if s.rows != 5 || s.cols != 256 || s.base != 8 {
		t.Fatalf("defaults = %d rows × %d cols, base %d; want 5×256 base 8", s.rows, s.cols, s.base)
	}
	p := s.Params()
	if p.K != 1 || p.Task != core.Estimator || p.Mode != core.ForEach {
		t.Fatalf("derived params = %v", p)
	}
	// The hierarchy must stop as soon as the top level fits in one
	// root expansion (≤ base prefixes).
	for _, tc := range []struct {
		universe, base, levels int
	}{
		{1, 8, 1}, {8, 8, 1}, {9, 8, 2}, {64, 8, 2}, {65, 8, 3},
		{4096, 8, 4}, {4096, 2, 12}, {4096, 256, 2}, {3, 2, 2},
	} {
		s := mustNew(t, Config{Universe: tc.universe, Base: tc.base, Rows: 2, Cols: 16, Seed: 1})
		if s.Levels() != tc.levels {
			t.Errorf("universe %d base %d: levels = %d, want %d", tc.universe, tc.base, s.Levels(), tc.levels)
		}
		top := (uint64(tc.universe-1) >> (uint(s.Levels()-1) * s.shift)) + 1
		if top > uint64(tc.base) {
			t.Errorf("universe %d base %d: top level has %d prefixes > base", tc.universe, tc.base, top)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Universe: 512, Rows: 4, Cols: 128, Base: 4, Seed: 42}
	a, b := mustNew(t, cfg), mustNew(t, cfg)
	r := rng.New(7)
	for i := 0; i < 5000; i++ {
		it := r.Intn(512)
		a.Add(it)
		b.Add(it)
	}
	if !bytes.Equal(marshalBits(t, a), marshalBits(t, b)) {
		t.Fatal("same seed and stream, different encodings")
	}
	cfg.Seed = 43
	c := mustNew(t, cfg)
	r = rng.New(7)
	for i := 0; i < 5000; i++ {
		c.Add(r.Intn(512))
	}
	if bytes.Equal(marshalBits(t, a), marshalBits(t, c)) {
		t.Fatal("different seeds produced identical tables")
	}
}

func TestUpdateAndQueryPanics(t *testing.T) {
	s := mustNew(t, Config{Universe: 100, Seed: 1})
	for name, f := range map[string]func(){
		"Add out of range":      func() { s.Add(100) },
		"Update negative item":  func() { s.Update(-1, 1) },
		"EstimateCount range":   func() { s.EstimateCount(-1) },
		"HeavyHitters phi zero": func() { s.HeavyHitters(0) },
		"HeavyHitters phi > 1":  func() { s.HeavyHitters(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	s := mustNew(t, Config{Universe: 64, Rows: 3, Cols: 32, Base: 4, Seed: 9})
	for i := 0; i < 100; i++ {
		s.Add(i % 64)
	}
	c := s.Clone()
	before := marshalBits(t, c)
	for i := 0; i < 100; i++ {
		s.Add(5)
	}
	if !bytes.Equal(before, marshalBits(t, c)) {
		t.Fatal("mutating the original changed the clone")
	}
	if s.Total() == c.Total() {
		t.Fatal("original did not advance independently")
	}
}

func TestMergeMismatch(t *testing.T) {
	cfg := Config{Universe: 128, Rows: 3, Cols: 32, Base: 4, Seed: 5}
	a := mustNew(t, cfg)
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Seed = 6 },
		func(c *Config) { c.Cols = 64 },
		func(c *Config) { c.Rows = 4 },
		func(c *Config) { c.Base = 8 },
		func(c *Config) { c.Universe = 256 },
	} {
		other := cfg
		mutate(&other)
		b := mustNew(t, other)
		if err := a.Clone().Merge(b); !errors.Is(err, core.ErrInvalidParams) {
			t.Errorf("Merge(%+v) error = %v, want ErrInvalidParams", other, err)
		}
	}
	if err := a.Clone().Merge(nil); !errors.Is(err, core.ErrInvalidParams) {
		t.Error("Merge(nil) did not fail with ErrInvalidParams")
	}
}

func TestRoundTrip(t *testing.T) {
	s := mustNew(t, Config{Universe: 300, Rows: 4, Cols: 64, Base: 4, Seed: 77})
	z := rng.NewZipf(rng.New(3), 300, 1.2)
	for i := 0; i < 20000; i++ {
		s.Add(z.Next())
	}
	s.Update(7, -25)
	back := roundTrip(t, s)
	if !bytes.Equal(marshalBits(t, s), marshalBits(t, back)) {
		t.Fatal("re-marshal is not byte-identical")
	}
	if back.Total() != s.Total() {
		t.Fatalf("total %d, want %d", back.Total(), s.Total())
	}
	for i := 0; i < 300; i++ {
		if s.EstimateCount(i) != back.EstimateCount(i) {
			t.Fatalf("estimate for %d drifted through the codec", i)
		}
	}
	// A decoded sketch is a full merge citizen of the original family.
	m := s.Clone()
	if err := m.Merge(back); err != nil {
		t.Fatalf("merge with decoded copy: %v", err)
	}
	if m.Total() != 2*s.Total() {
		t.Fatalf("merged total %d, want %d", m.Total(), 2*s.Total())
	}
	// An empty sketch round-trips too (every level at width 0).
	empty := mustNew(t, Config{Universe: 300, Rows: 4, Cols: 64, Base: 4, Seed: 77})
	if got := roundTrip(t, empty); got.Total() != 0 {
		t.Fatalf("empty sketch decoded with total %d", got.Total())
	}
}

func TestDecodeRejectsBadGeometry(t *testing.T) {
	// Hand-encode a payload whose geometry fields are hostile: the
	// decoder must fail with ErrCorruptSketch before allocating a table.
	encode := func(universe, rows, cols, base uint64) []byte {
		var w bitvec.Writer
		w.WriteUint(uint64(KindTag), core.KindTagBits)
		core.MarshalParams(&w, core.Params{K: 1, Eps: 0.1, Delta: 0.1, Mode: core.ForEach, Task: core.Estimator})
		w.WriteUint(universe, universeBits)
		w.WriteUint(rows, rowsBits)
		w.WriteUint(cols, colsBits)
		w.WriteUint(base, baseBits)
		w.WriteUint(1, 64) // seed
		w.WriteUint(0, 64) // total
		w.WriteUint(0, widthBits)
		return w.Bytes()
	}
	cases := map[string][4]uint64{
		"zero rows":       {100, 0, 64, 8},
		"zero cols":       {100, 4, 0, 8},
		"zero base":       {100, 4, 64, 0},
		"non-pow2 base":   {100, 4, 64, 3},
		"huge cols":       {100, 4, 1 << 21, 8},
		"cell-cap blowup": {maxUniverse, maxRows, maxCols, 2},
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			data := encode(g[0], g[1], g[2], g[3])
			_, err := core.UnmarshalSketch(bitvec.NewReader(data, len(data)*8))
			if !errors.Is(err, core.ErrCorruptSketch) {
				t.Fatalf("error = %v, want ErrCorruptSketch", err)
			}
		})
	}
}

func TestDecodeRejectsOverdeclaredCells(t *testing.T) {
	// A width that declares more cell bits than the stream carries must
	// fail fast (before reading cells), not allocate-and-truncate.
	var w bitvec.Writer
	w.WriteUint(uint64(KindTag), core.KindTagBits)
	core.MarshalParams(&w, core.Params{K: 1, Eps: 0.1, Delta: 0.1, Mode: core.ForEach, Task: core.Estimator})
	w.WriteUint(64, universeBits)
	w.WriteUint(4, rowsBits)
	w.WriteUint(16, colsBits)
	w.WriteUint(8, baseBits)
	w.WriteUint(1, 64)
	w.WriteUint(0, 64)
	w.WriteUint(33, widthBits) // 4×16×33 bits nowhere to be found
	_, err := core.UnmarshalSketch(bitvec.NewReader(w.Bytes(), w.BitLen()))
	if !errors.Is(err, core.ErrCorruptSketch) {
		t.Fatalf("error = %v, want ErrCorruptSketch", err)
	}
}

func TestSketchInterfaceFace(t *testing.T) {
	s := mustNew(t, Config{Universe: 200, Rows: 5, Cols: 512, Base: 8, Seed: 11})
	for i := 0; i < 5000; i++ {
		s.Add(i % 10) // ten items at frequency 0.1 each
	}
	if s.Name() != KindName || s.NumAttrs() != 200 {
		t.Fatalf("Name/NumAttrs = %q/%d", s.Name(), s.NumAttrs())
	}
	one := dataset.MustItemset(3)
	f, err := s.EstimateErr(one)
	if err != nil || f < 0.05 || f > 0.15 {
		t.Fatalf("EstimateErr(3) = %g, %v; want ≈0.1", f, err)
	}
	if got := s.Estimate(one); got != f {
		t.Fatalf("Estimate = %g, EstimateErr = %g", got, f)
	}
	freq, err := s.FrequentErr(one)
	if err != nil || !freq {
		t.Fatalf("FrequentErr(3) = %v, %v; item at 0.1 with eps=%g should be frequent", freq, err, s.Params().Eps)
	}
	if ok, err := s.FrequentErr(dataset.MustItemset(150)); err != nil || ok {
		t.Fatalf("FrequentErr(absent) = %v, %v", ok, err)
	}
	if _, err := s.EstimateErr(dataset.MustItemset(1, 2)); !errors.Is(err, core.ErrWrongItemsetSize) {
		t.Fatalf("|T|=2 error = %v, want ErrWrongItemsetSize", err)
	}
	if _, err := s.FrequentErr(dataset.MustItemset(1, 2)); !errors.Is(err, core.ErrWrongItemsetSize) {
		t.Fatalf("Frequent |T|=2 error = %v, want ErrWrongItemsetSize", err)
	}
	if _, err := s.EstimateErr(dataset.MustItemset(200)); !errors.Is(err, core.ErrInvalidParams) {
		t.Fatalf("out-of-universe error = %v, want ErrInvalidParams", err)
	}
	out := make([]float64, 2)
	if err := s.EstimateBatch([]dataset.Itemset{one, dataset.MustItemset(150)}, out); err != nil {
		t.Fatalf("EstimateBatch: %v", err)
	}
	if out[0] != f {
		t.Fatalf("EstimateBatch[0] = %g, want %g", out[0], f)
	}
	if got := s.Frequent(one); !got {
		t.Fatal("Frequent(3) = false for an item at frequency 0.1")
	}

	// Config round-trips through New to an identically-hashed sketch.
	cfg := s.Config()
	if cfg.Universe != 200 || cfg.Rows != 5 || cfg.Cols != 512 || cfg.Base != 8 || cfg.Seed != 11 {
		t.Fatalf("Config() = %+v", cfg)
	}
	twin := mustNew(t, cfg)
	if err := twin.Merge(s); err != nil {
		t.Fatalf("a Config()-rebuilt sketch must be mergeable: %v", err)
	}
}

func TestRegistryMergeHook(t *testing.T) {
	cfg := Config{Universe: 64, Rows: 3, Cols: 32, Base: 4, Seed: 21}
	a, b := mustNew(t, cfg), mustNew(t, cfg)
	for i := 0; i < 500; i++ {
		a.Add(i % 64)
		b.Add((i * 7) % 64)
	}
	merged, err := core.MergeSketches(a, b)
	if err != nil {
		t.Fatalf("MergeSketches: %v", err)
	}
	mc := merged.(*Sketch)
	if mc.Total() != a.Total()+b.Total() {
		t.Fatalf("merged total %d", mc.Total())
	}
	// The registry merge must not mutate its inputs.
	if a.Total() != 500 || b.Total() != 500 {
		t.Fatal("MergeSketches mutated an input")
	}
	want := a.Clone()
	if err := want.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshalBits(t, mc), marshalBits(t, want)) {
		t.Fatal("registry merge differs from direct merge")
	}
}
