package countsketch

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/dataset"
)

// This file is the core.Sketch face of the count sketch: the family
// answers singleton itemsets (k = 1), so it plugs into the envelope
// codec, the Querier adapter and the service exactly like the paper's
// sketches — via the kind registry, with typed errors for |T| ≠ 1.

// Name identifies the producing algorithm.
func (s *Sketch) Name() string { return KindName }

// Params returns the (ε, δ) contract: a point estimate errs by more
// than ε·‖f‖₂ with probability at most δ.
func (s *Sketch) Params() core.Params { return s.params }

// NumAttrs returns the attribute universe size the sketch covers.
func (s *Sketch) NumAttrs() int { return s.universe }

// SizeBits returns the exact serialized size in bits — the paper's
// |S| — analytically: the fixed header fields plus, per level, the
// width field and rows·cols cells at that level's maximum zigzag
// width. One pass over the table, no counting encode.
// TestCountSketchSizeBitsAnalytic pins byte-identity with the encoder.
func (s *Sketch) SizeBits() int64 {
	n := int64(core.KindTagBits+core.ParamsBits+universeBits+rowsBits+colsBits+baseBits) + 64 + 64
	perLevel := s.rows * s.cols
	for h := 0; h < s.levels; h++ {
		width := 0
		for _, c := range s.table[h*perLevel : (h+1)*perLevel] {
			if l := bits.Len64(zigzag(c)); l > width {
				width = l
			}
		}
		n += widthBits + int64(perLevel)*int64(width)
	}
	return n
}

// Estimate returns the estimated relative frequency of the singleton
// itemset t. It panics if |T| ≠ 1; use EstimateErr for a non-panicking
// variant.
func (s *Sketch) Estimate(t dataset.Itemset) float64 {
	f, err := s.EstimateErr(t)
	if err != nil {
		panic(err)
	}
	return f
}

// EstimateErr is Estimate with an error return for |T| ≠ 1 or an
// attribute outside the universe.
func (s *Sketch) EstimateErr(t dataset.Itemset) (float64, error) {
	a, err := s.singleton(t)
	if err != nil {
		return 0, err
	}
	return s.EstimateFreq(a), nil
}

// Frequent returns the indicator bit for t. It panics if |T| ≠ 1; use
// FrequentErr for a non-panicking variant.
func (s *Sketch) Frequent(t dataset.Itemset) bool {
	b, err := s.FrequentErr(t)
	if err != nil {
		panic(err)
	}
	return b
}

// FrequentErr is Frequent with an error return for |T| ≠ 1. The
// decision threshold 3ε/4 mirrors the estimate-backed indicators of
// the core package (any threshold in [ε/2+ε′, ε−ε′] validates
// Definitions 1/3 when estimates have error ε′ ≤ ε/4).
func (s *Sketch) FrequentErr(t dataset.Itemset) (bool, error) {
	f, err := s.EstimateErr(t)
	if err != nil {
		return false, err
	}
	return f >= 0.75*s.params.Eps, nil
}

// EstimateBatch fills out[i] with the frequency estimate for ts[i] —
// the batched fast path the Querier adapter dispatches to, skipping
// one interface indirection and the per-call k check amortizes.
func (s *Sketch) EstimateBatch(ts []dataset.Itemset, out []float64) error {
	for i, t := range ts {
		a, err := s.singleton(t)
		if err != nil {
			return err
		}
		out[i] = s.EstimateFreq(a)
	}
	return nil
}

// singleton extracts the one attribute of t, with the typed errors the
// query layer matches on.
func (s *Sketch) singleton(t dataset.Itemset) (int, error) {
	if t.Len() != 1 {
		return 0, fmt.Errorf("%w: |T| = %d, sketch k = 1", core.ErrWrongItemsetSize, t.Len())
	}
	a := t.Attrs()[0]
	if a < 0 || a >= s.universe {
		return 0, fmt.Errorf("%w: attribute %d outside universe [0, %d)", core.ErrInvalidParams, a, s.universe)
	}
	return a, nil
}

// Compile-time interface checks.
var (
	_ core.Sketch          = (*Sketch)(nil)
	_ core.EstimatorSketch = (*Sketch)(nil)
)
