package countsketch

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/rng"
)

// TestCountSketchSizeBitsAnalytic pins the analytic SizeBits against
// the real encoder byte for byte: empty tables (all-zero levels cost
// exactly their width fields), lightly and heavily loaded tables, and
// negative cells (zigzag widths), across geometries.
func TestCountSketchSizeBitsAnalytic(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		adds int
	}{
		{"empty", Config{Universe: 64, Rows: 3, Cols: 32}, 0},
		{"light", Config{Universe: 64, Rows: 3, Cols: 32}, 50},
		{"heavy", Config{Universe: 256, Rows: 5, Cols: 64, Base: 4}, 20000},
		{"tiny", Config{Universe: 2, Rows: 1, Cols: 4}, 7},
	}
	for _, c := range cases {
		c.cfg.Seed = 42
		s, err := New(c.cfg)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		r := rng.New(9)
		for i := 0; i < c.adds; i++ {
			// Skewed adds load some counters far more than others, so the
			// per-level widths differ.
			s.Add(int(r.Uint64() % uint64((i%c.cfg.Universe)+1)))
		}
		var w bitvec.Writer
		s.MarshalBits(&w)
		if got, want := s.SizeBits(), int64(w.BitLen()); got != want {
			t.Errorf("%s: analytic SizeBits = %d, encoder wrote %d bits", c.name, got, want)
		}
		if got, want := s.SizeBits(), core.MarshaledSizeBits(s); got != want {
			t.Errorf("%s: analytic SizeBits = %d, counting writer says %d", c.name, got, want)
		}
	}
}
