package countsketch

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stream"
)

// This file is the statistical contract of the family, seeded so every
// run sees the same streams. Tolerances are generous against the
// theoretical (ε, δ) bounds — they fail when an implementation is
// broken (a biased hash, a wrong median, a mis-indexed level), not when
// a run is merely unlucky, because there is no luck: the seeds are
// fixed.

// exactStream materializes a stream and its exact per-item counts.
type exactStream struct {
	items  []int
	counts []int64
}

func uniformStream(seed uint64, universe, n int) exactStream {
	r := rng.New(seed)
	s := exactStream{items: make([]int, n), counts: make([]int64, universe)}
	for i := range s.items {
		it := r.Intn(universe)
		s.items[i] = it
		s.counts[it]++
	}
	return s
}

func zipfStream(seed uint64, universe, n int, skew float64) exactStream {
	z := rng.NewZipf(rng.New(seed), universe, skew)
	s := exactStream{items: make([]int, n), counts: make([]int64, universe)}
	for i := range s.items {
		it := z.Next()
		s.items[i] = it
		s.counts[it]++
	}
	return s
}

func (s exactStream) l2() float64 {
	var sum float64
	for _, c := range s.counts {
		sum += float64(c) * float64(c)
	}
	return math.Sqrt(sum)
}

// TestEstimateErrorContract checks the count-sketch guarantee — a
// point estimate errs by more than ε·‖f‖₂ with probability ≤ δ — on
// uniform and Zipf streams across three table geometries, counting
// violating items against a doubled-δ allowance.
func TestEstimateErrorContract(t *testing.T) {
	const universe, n = 4096, 120000
	geometries := []Config{
		{Rows: 3, Cols: 256},
		{Rows: 5, Cols: 512},
		{Rows: 7, Cols: 1024},
	}
	streams := map[string]exactStream{
		"uniform": uniformStream(101, universe, n),
		"zipf1.2": zipfStream(202, universe, n, 1.2),
	}
	for _, geo := range geometries {
		for name, st := range streams {
			geo := geo
			t.Run(func() string {
				return name + "/" + itoa(geo.Rows) + "x" + itoa(geo.Cols)
			}(), func(t *testing.T) {
				cfg := geo
				cfg.Universe = universe
				cfg.Seed = 0xC0FFEE ^ uint64(geo.Rows*1000+geo.Cols)
				s := mustNew(t, cfg)
				for _, it := range st.items {
					s.Add(it)
				}
				if s.Total() != int64(n) {
					t.Fatalf("total = %d, want %d", s.Total(), n)
				}
				eps, delta := s.Params().Eps, s.Params().Delta
				bound := eps * st.l2()
				violations := 0
				var worst float64
				for i := 0; i < universe; i++ {
					err := math.Abs(float64(s.EstimateCount(i) - st.counts[i]))
					if err > bound {
						violations++
					}
					if err > worst {
						worst = err
					}
				}
				// Per-item failure probability is ≤ δ over the hash draw;
				// with a fixed seed the violating-item count concentrates
				// hard around δ·universe, so 2δ·universe + 10 only trips on
				// a real contract break.
				allowed := int(2*delta*float64(universe)) + 10
				t.Logf("rows=%d cols=%d: eps=%.4f bound=%.0f worst=%.0f violations=%d/%d (allowed %d)",
					cfg.Rows, cfg.Cols, eps, bound, worst, violations, universe, allowed)
				if violations > allowed {
					t.Fatalf("%d items exceed ε‖f‖₂=%.0f, allowance %d", violations, bound, allowed)
				}
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestL2EstimateContract pins the AMS-style ℓ₂ estimator within a
// generous relative band on both stream shapes.
func TestL2EstimateContract(t *testing.T) {
	const universe, n = 2048, 80000
	for name, st := range map[string]exactStream{
		"uniform": uniformStream(303, universe, n),
		"zipf1.4": zipfStream(404, universe, n, 1.4),
	} {
		s := mustNew(t, Config{Universe: universe, Rows: 5, Cols: 512, Base: 8, Seed: 31337})
		for _, it := range st.items {
			s.Add(it)
		}
		got, want := s.L2Estimate(), st.l2()
		if rel := math.Abs(got-want) / want; rel > 0.25 {
			t.Errorf("%s: L2Estimate = %.0f, exact %.0f (rel err %.2f > 0.25)", name, got, want, rel)
		} else {
			t.Logf("%s: L2Estimate = %.0f, exact %.0f (rel err %.3f)", name, got, want, rel)
		}
	}
}

// TestMergeLaws proves Merge is commutative, associative and
// bit-identical to single-stream ingest: sharding a stream across
// sketches and merging is indistinguishable — at the encoding level —
// from having ingested it whole.
func TestMergeLaws(t *testing.T) {
	cfg := Config{Universe: 2048, Rows: 5, Cols: 256, Base: 8, Seed: 99}
	st := zipfStream(505, 2048, 60000, 1.1)
	single := mustNew(t, cfg)
	parts := []*Sketch{mustNew(t, cfg), mustNew(t, cfg), mustNew(t, cfg)}
	for i, it := range st.items {
		single.Add(it)
		parts[i%3].Add(it)
	}
	wantBytes := marshalBits(t, single)

	merge := func(xs ...*Sketch) *Sketch {
		m := xs[0].Clone()
		for _, x := range xs[1:] {
			if err := m.Merge(x); err != nil {
				t.Fatalf("merge: %v", err)
			}
		}
		return m
	}
	a, b, c := parts[0], parts[1], parts[2]
	if !bytes.Equal(marshalBits(t, merge(a, b, c)), wantBytes) {
		t.Fatal("sharded ingest + merge is not bit-identical to single-stream ingest")
	}
	if !bytes.Equal(marshalBits(t, merge(a, b)), marshalBits(t, merge(b, a))) {
		t.Fatal("merge is not commutative")
	}
	left := merge(merge(a, b), c)
	right := merge(a, merge(b, c))
	if !bytes.Equal(marshalBits(t, left), marshalBits(t, right)) {
		t.Fatal("merge is not associative")
	}
}

// plantedStream builds a stream with known heavy hitters: `heavy`
// planted items at identical high counts over a light uniform
// background, so the heavy/light margin is many noise standard
// deviations wide and recall/precision assertions are exact.
func plantedStream(seed uint64, universe, heavy int, heavyCount, background int) exactStream {
	r := rng.New(seed)
	var s exactStream
	s.counts = make([]int64, universe)
	for h := 0; h < heavy; h++ {
		for i := 0; i < heavyCount; i++ {
			s.items = append(s.items, h)
		}
		s.counts[h] += int64(heavyCount)
	}
	for i := 0; i < background; i++ {
		it := heavy + r.Intn(universe-heavy)
		s.items = append(s.items, it)
		s.counts[it]++
	}
	// Deterministic shuffle so heavy occurrences interleave with the
	// background like a real stream.
	for i := len(s.items) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s.items[i], s.items[j] = s.items[j], s.items[i]
	}
	return s
}

// TestHeavyHittersRecallAndPrecision: on a planted stream the recursive
// descent must find every true heavy hitter (100% recall) with zero
// false positives, and the reported counts must be near-exact.
func TestHeavyHittersRecallAndPrecision(t *testing.T) {
	const (
		universe   = 8192
		heavy      = 10
		heavyCount = 5000
		background = 100000
		phi        = 0.02
	)
	st := plantedStream(606, universe, heavy, heavyCount, background)
	s := mustNew(t, Config{Universe: universe, Rows: 7, Cols: 1024, Base: 8, Seed: 7})
	for _, it := range st.items {
		s.Add(it)
	}
	thr := phi * float64(s.Total())
	if float64(heavyCount) < 1.5*thr {
		t.Fatalf("bad test construction: planted count %d too close to threshold %.0f", heavyCount, thr)
	}
	hits := s.HeavyHitters(phi)
	found := map[int]int64{}
	for _, h := range hits {
		found[h.Item] = h.Count
	}
	for item := 0; item < heavy; item++ {
		got, ok := found[item]
		if !ok {
			t.Fatalf("recall failure: planted item %d (count %d ≥ thr %.0f) not reported", item, st.counts[item], thr)
		}
		if relErr := math.Abs(float64(got-st.counts[item])) / float64(st.counts[item]); relErr > 0.1 {
			t.Errorf("item %d: reported count %d, true %d", item, got, st.counts[item])
		}
	}
	for item := range found {
		if st.counts[item] < int64(thr/2) {
			t.Errorf("false positive %d: true count %d far below thr %.0f", item, st.counts[item], thr)
		}
	}
	if len(hits) != heavy {
		t.Errorf("reported %d hits, want exactly the %d planted (got %v)", len(hits), heavy, hits)
	}
	// Descending order by estimated count.
	for i := 1; i < len(hits); i++ {
		if hits[i].Count > hits[i-1].Count {
			t.Fatal("hits not sorted by descending count")
		}
	}
}

// TestHeavyHittersHeadToHead runs the count sketch against SpaceSaving
// and Misra–Gries on the same skewed Zipf stream: its recall must be
// 100% and at least match both competitors, with sane precision.
func TestHeavyHittersHeadToHead(t *testing.T) {
	const (
		universe = 8192
		n        = 150000
		phi      = 0.02
	)
	st := zipfStream(707, universe, n, 1.25)
	cs := mustNew(t, Config{Universe: universe, Rows: 7, Cols: 2048, Base: 8, Seed: 13})
	ss, err := stream.NewSpaceSaving(int(4 / phi))
	if err != nil {
		t.Fatal(err)
	}
	mg, err := stream.NewMisraGries(int(4 / phi))
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range st.items {
		cs.Add(it)
		ss.Add(it)
		mg.Add(it)
	}
	thr := int64(math.Ceil(phi * float64(n)))
	truth := map[int]bool{}
	for item, c := range st.counts {
		if c >= thr {
			truth[item] = true
		}
	}
	if len(truth) < 3 {
		t.Fatalf("bad test construction: only %d true heavy hitters", len(truth))
	}
	// Keep the margin honest: Zipf counts thin out gradually, so drop
	// would-be-flaky borderline items from the recall set — an item
	// within the sketch's noise band of the threshold can land on
	// either side without the sketch being wrong. The planted-stream
	// test covers exact recall; this one compares summaries.
	margin := int64(float64(thr) / 4)
	mustFind := map[int]bool{}
	for item, c := range st.counts {
		if c >= thr+margin {
			mustFind[item] = true
		}
	}

	recall := func(items []int) (hit, total int) {
		got := map[int]bool{}
		for _, it := range items {
			got[it] = true
		}
		for it := range mustFind {
			total++
			if got[it] {
				hit++
			}
		}
		return hit, total
	}
	csItems := make([]int, 0, 64)
	for _, h := range cs.HeavyHitters(phi) {
		csItems = append(csItems, h.Item)
	}
	ssItems := ss.HeavyHitters(phi)
	mgItems := mg.HeavyHitters(phi)

	csHit, want := recall(csItems)
	ssHit, _ := recall(ssItems)
	mgHit, _ := recall(mgItems)
	t.Logf("true heavies ≥ thr: %d (clear of margin: %d); cs=%d/%d ss=%d/%d mg=%d/%d; set sizes cs=%d ss=%d mg=%d",
		len(truth), want, csHit, want, ssHit, want, mgHit, want, len(csItems), len(ssItems), len(mgItems))
	if csHit != want {
		t.Fatalf("count-sketch recall %d/%d, want 100%%", csHit, want)
	}
	if csHit < ssHit || csHit < mgHit {
		t.Fatalf("count-sketch recall %d below SpaceSaving %d or Misra-Gries %d", csHit, ssHit, mgHit)
	}
	// Bounded false positives: nothing reported far below threshold.
	for _, it := range csItems {
		if st.counts[it] < thr-4*margin {
			t.Errorf("false positive %d: true count %d vs thr %d", it, st.counts[it], thr)
		}
	}
}
