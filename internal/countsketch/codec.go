package countsketch

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/core"
)

// Wire payload of the count-sketch kind (tag 6), after the leading
// KindTagBits type tag:
//
//	params    core.MarshalParams header
//	universe  32 bits
//	rows       8 bits
//	cols      24 bits
//	base      16 bits
//	seed      64 bits
//	total     64 bits (two's complement)
//	levels ×: width 7 bits, then (width > 0) rows·cols cells,
//	          zigzag-encoded at width bits each
//
// The level count is derived from (universe, base), never trusted from
// the stream, and the hash functions are re-derived from the seed — so
// the encoding carries exactly the mutable state and a decoded sketch
// is bit-identical to the original, including for Merge. Per-level
// width coding makes a lightly-filled hierarchy (most cells small, top
// levels dense) pay only the bits its counters need; an all-zero level
// costs 7 bits.

const (
	universeBits = 32
	rowsBits     = 8
	colsBits     = 24
	baseBits     = 16
	widthBits    = 7
)

// MarshalBits appends the self-describing encoding: the registry type
// tag, then the payload above.
func (s *Sketch) MarshalBits(w bitvec.BitWriter) {
	w.WriteUint(uint64(KindTag), core.KindTagBits)
	core.MarshalParams(w, s.params)
	w.WriteUint(uint64(s.universe), universeBits)
	w.WriteUint(uint64(s.rows), rowsBits)
	w.WriteUint(uint64(s.cols), colsBits)
	w.WriteUint(uint64(s.base), baseBits)
	w.WriteUint(s.seed, 64)
	w.WriteUint(uint64(s.total), 64)
	perLevel := s.rows * s.cols
	for h := 0; h < s.levels; h++ {
		level := s.table[h*perLevel : (h+1)*perLevel]
		width := 0
		for _, c := range level {
			if n := bits.Len64(zigzag(c)); n > width {
				width = n
			}
		}
		w.WriteUint(uint64(width), widthBits)
		if width == 0 {
			continue
		}
		for _, c := range level {
			w.WriteUint(zigzag(c), width)
		}
	}
}

// unmarshalSketch is the registered decoder: it reads the payload body
// that follows the type tag. The caller (core.UnmarshalSketch) wraps
// failures in ErrCorruptSketch; stream truncation stays matchable
// through the chain.
func unmarshalSketch(r bitvec.BitReader) (core.Sketch, error) {
	p, err := core.UnmarshalParams(r)
	if err != nil {
		return nil, err
	}
	universe, err := r.ReadUint(universeBits)
	if err != nil {
		return nil, err
	}
	rows, err := r.ReadUint(rowsBits)
	if err != nil {
		return nil, err
	}
	cols, err := r.ReadUint(colsBits)
	if err != nil {
		return nil, err
	}
	base, err := r.ReadUint(baseBits)
	if err != nil {
		return nil, err
	}
	seed, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	total, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	// newSketch re-validates the geometry (and caps the table
	// allocation), so a hostile header fails here instead of sizing an
	// absurd table.
	s, err := newSketch(Config{
		Universe: int(universe),
		Rows:     int(rows),
		Cols:     int(cols),
		Base:     int(base),
		Seed:     seed,
		Params:   p,
	})
	if err != nil {
		return nil, err
	}
	s.total = int64(total)
	perLevel := s.rows * s.cols
	for h := 0; h < s.levels; h++ {
		width, err := r.ReadUint(widthBits)
		if err != nil {
			return nil, err
		}
		if width == 0 {
			continue
		}
		if width > 64 {
			return nil, fmt.Errorf("level %d cell width %d exceeds 64 bits", h, width)
		}
		// The level's cells must still be in the stream before they are
		// read, so a header declaring more bits than the payload carries
		// fails fast as corruption.
		if need := perLevel * int(width); r.Remaining() < need {
			return nil, fmt.Errorf("level %d declares %d cell bits, %d remain", h, need, r.Remaining())
		}
		level := s.table[h*perLevel : (h+1)*perLevel]
		for i := range level {
			u, err := r.ReadUint(int(width))
			if err != nil {
				return nil, err
			}
			level[i] = unzigzag(u)
		}
	}
	return s, nil
}

// zigzag maps signed counters to unsigned so small magnitudes of either
// sign encode in few bits.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
