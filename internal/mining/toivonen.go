package mining

import (
	"fmt"

	"repro/internal/dataset"
)

// Toivonen's sampling algorithm (the line of work the paper cites via
// Mannila–Toivonen [MT96]): mine a row sample at a *lowered* threshold,
// add the negative border, then verify every candidate against the full
// database in a single scan. If no negative-border itemset turns out
// frequent, the output is exactly the frequent collection of the full
// database — exact mining with one full scan, with the sample playing
// precisely the role of a SUBSAMPLE sketch.

// aprioriWithBorder is level-wise Apriori that also reports the
// negative border: candidates whose every (k−1)-subset is frequent but
// which fail the support threshold themselves.
func aprioriWithBorder(src FrequencySource, minSupport float64, maxK int) (freq []Result, border []Result) {
	d := src.NumAttrs()
	if maxK <= 0 || maxK > d {
		maxK = d
	}
	var level [][]int
	for a := 0; a < d; a++ {
		T := dataset.MustItemset(a)
		f := src.Frequency(T)
		if f >= minSupport {
			level = append(level, []int{a})
			freq = append(freq, Result{Items: T, Freq: f})
		} else {
			border = append(border, Result{Items: T, Freq: f})
		}
	}
	for k := 2; k <= maxK && len(level) > 0; k++ {
		prev := make(map[string]bool, len(level))
		for _, s := range level {
			prev[key(s)] = true
		}
		var next [][]int
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				if !samePrefix(a, b) {
					continue
				}
				cand := make([]int, k)
				copy(cand, a)
				if a[k-2] < b[k-2] {
					cand[k-1] = b[k-2]
				} else {
					cand[k-1], cand[k-2] = a[k-2], b[k-2]
				}
				if !allSubsetsFrequent(cand, prev) {
					continue
				}
				T := dataset.MustItemset(cand...)
				f := src.Frequency(T)
				if f >= minSupport {
					next = append(next, cand)
					freq = append(freq, Result{Items: T, Freq: f})
				} else {
					border = append(border, Result{Items: T, Freq: f})
				}
			}
		}
		level = next
	}
	sortResults(freq)
	sortResults(border)
	return freq, border
}

// ToivonenReport is the outcome of one Toivonen pass.
type ToivonenReport struct {
	// Frequent holds the verified frequent itemsets with their exact
	// full-database frequencies.
	Frequent []Result
	// BorderMisses holds negative-border itemsets that turned out
	// frequent in the full database. When empty, Frequent is provably
	// the complete answer (within MaxK); otherwise a retry with a
	// larger sample or lower sample threshold is needed.
	BorderMisses []Result
	// CandidatesChecked counts full-database verifications performed.
	CandidatesChecked int
}

// Complete reports whether the single pass certified completeness.
func (r ToivonenReport) Complete() bool { return len(r.BorderMisses) == 0 }

// Toivonen mines db exactly at minSupport (itemset sizes ≤ maxK) using
// the given row sample and a lowered sample threshold
// (loweredSupport < minSupport, the slack absorbing sampling noise).
func Toivonen(db, sample *dataset.Database, minSupport, loweredSupport float64, maxK int) (ToivonenReport, error) {
	var rep ToivonenReport
	if sample.NumCols() != db.NumCols() {
		return rep, fmt.Errorf("mining: sample has %d columns, database %d", sample.NumCols(), db.NumCols())
	}
	if loweredSupport > minSupport {
		return rep, fmt.Errorf("mining: lowered support %g must be ≤ minSupport %g", loweredSupport, minSupport)
	}
	sample.BuildColumnIndex()
	freqS, borderS := aprioriWithBorder(DBSource{DB: sample}, loweredSupport, maxK)

	db.BuildColumnIndex()
	verify := func(rs []Result, intoFreq bool) {
		for _, r := range rs {
			f := db.Frequency(r.Items)
			rep.CandidatesChecked++
			if f < minSupport {
				continue
			}
			res := Result{Items: r.Items, Freq: f}
			if intoFreq {
				rep.Frequent = append(rep.Frequent, res)
			} else {
				rep.BorderMisses = append(rep.BorderMisses, res)
				rep.Frequent = append(rep.Frequent, res)
			}
		}
	}
	verify(freqS, true)
	verify(borderS, false)
	sortResults(rep.Frequent)
	sortResults(rep.BorderMisses)
	return rep, nil
}
