package mining

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
)

// Toivonen's sampling algorithm (the line of work the paper cites via
// Mannila–Toivonen [MT96]): mine a row sample at a *lowered* threshold,
// add the negative border, then verify every candidate against the full
// database in a single scan. If no negative-border itemset turns out
// frequent, the output is exactly the frequent collection of the full
// database — exact mining with one full scan, with the sample playing
// precisely the role of a SUBSAMPLE sketch.

// aprioriWithBorder is level-wise Apriori that also reports the
// negative border: candidates whose every (k−1)-subset is frequent but
// which fail the support threshold themselves. It is the engine's
// aprioriLevels with border collection, on a fresh Miner.
func aprioriWithBorder(ctx context.Context, q query.Querier, minSupport float64, maxK int) (freq, border []Result, err error) {
	m := new(Miner)
	if err := m.aprioriLevels(ctx, q, minSupport, maxK, true); err != nil {
		return nil, nil, err
	}
	return m.finish(), m.finishBorder(), nil
}

// ToivonenReport is the outcome of one Toivonen pass.
type ToivonenReport struct {
	// Frequent holds the verified frequent itemsets with their exact
	// full-database frequencies.
	Frequent []Result
	// BorderMisses holds negative-border itemsets that turned out
	// frequent in the full database. When empty, Frequent is provably
	// the complete answer (within MaxK); otherwise a retry with a
	// larger sample or lower sample threshold is needed.
	BorderMisses []Result
	// CandidatesChecked counts full-database verifications performed.
	CandidatesChecked int
}

// Complete reports whether the single pass certified completeness.
func (r ToivonenReport) Complete() bool { return len(r.BorderMisses) == 0 }

// Toivonen mines db exactly at minSupport (itemset sizes ≤ maxK) using
// the given row sample and a lowered sample threshold
// (loweredSupport < minSupport, the slack absorbing sampling noise).
// It is ToivonenContext under a background context.
func Toivonen(db, sample *dataset.Database, minSupport, loweredSupport float64, maxK int) (ToivonenReport, error) {
	return ToivonenContext(context.Background(), db, sample, minSupport, loweredSupport, maxK)
}

// ToivonenContext is Toivonen with a context: both the sample mine and
// the full-database verification run through batched, cancellable
// Querier calls, so the verification scan is sharded across CPUs and a
// cancelled ctx aborts with ctx.Err(). Argument errors wrap
// core.ErrInvalidParams. It runs on a fresh engine, so the report owns
// its memory.
func ToivonenContext(ctx context.Context, db, sample *dataset.Database, minSupport, loweredSupport float64, maxK int) (ToivonenReport, error) {
	return new(Miner).ToivonenContext(ctx, db, sample, minSupport, loweredSupport, maxK)
}

// ToivonenContext is the engine form of the package-level
// ToivonenContext: the sample mine runs on the engine's trie-Apriori
// (negative border collected as it falls out of candidate generation),
// and the verification pass reuses the engine's batched-query buffers.
// The report's results are valid until the next call on this Miner.
func (m *Miner) ToivonenContext(ctx context.Context, db, sample *dataset.Database, minSupport, loweredSupport float64, maxK int) (ToivonenReport, error) {
	var rep ToivonenReport
	if sample.NumCols() != db.NumCols() {
		return rep, fmt.Errorf("%w: sample has %d columns, database %d", core.ErrInvalidParams, sample.NumCols(), db.NumCols())
	}
	if loweredSupport > minSupport {
		return rep, fmt.Errorf("%w: lowered support %g must be ≤ minSupport %g", core.ErrInvalidParams, loweredSupport, minSupport)
	}
	sample.BuildColumnIndex()
	if err := m.aprioriLevels(ctx, query.FromDatabase(sample), loweredSupport, maxK, true); err != nil {
		return rep, err
	}
	freqS := m.finish()
	borderS := m.finishBorder()

	// Phase boundary: the sample mine is done, the verification scan is
	// next. Building the full database's column index is the single
	// largest block of un-interruptible work in the pass, so a caller
	// cancelled during the sample mine must not pay for it.
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	// Verify every candidate — the sample's frequent sets plus its
	// negative border — against the full database in one batched pass
	// through the engine's pooled query buffers.
	db.BuildColumnIndex()
	m.ts = m.ts[:0]
	for _, r := range freqS {
		m.ts = append(m.ts, r.Items)
	}
	for _, r := range borderS {
		m.ts = append(m.ts, r.Items)
	}
	if cap(m.fs) < len(m.ts) {
		m.fs = make([]float64, len(m.ts))
	}
	m.fs = m.fs[:len(m.ts)]
	if err := query.FromDatabase(db).EstimateMany(ctx, m.ts, m.fs); err != nil {
		return rep, err
	}
	rep.CandidatesChecked = len(m.ts)
	for i, T := range m.ts {
		f := m.fs[i]
		if f < minSupport {
			continue
		}
		res := Result{Items: T, Freq: f}
		rep.Frequent = append(rep.Frequent, res)
		if i >= len(freqS) { // negative-border itemset that is frequent after all
			rep.BorderMisses = append(rep.BorderMisses, res)
		}
	}
	sortResults(rep.Frequent)
	sortResults(rep.BorderMisses)
	return rep, nil
}
