package mining

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/rng"
)

// The miners must all enumerate exactly the frequent collection. The
// property tests here pin tidset-Eclat ≡ diffset-Eclat ≡ adaptive
// Eclat ≡ trie-Apriori ≡ naive subset enumeration on random sparse and
// dense databases, across widths that do and do not divide 64 and the
// minSupport edge cases (0, 1, just above the maximum support).

// naiveMine enumerates every itemset of size ≤ maxK and keeps those
// with frequency ≥ minSupport — the specification the fast miners are
// checked against.
func naiveMine(db *dataset.Database, minSupport float64, maxK int) []Result {
	d := db.NumCols()
	if maxK <= 0 || maxK > d {
		maxK = d
	}
	if db.NumRows() == 0 {
		return nil
	}
	var out []Result
	var attrs []int
	var recurse func(next int)
	recurse = func(next int) {
		if len(attrs) > 0 {
			f := db.Frequency(dataset.MustItemset(attrs...))
			if f < minSupport {
				// Anti-monotone: no superset can pass either, but keep
				// the enumeration simple and just skip emitting.
			} else {
				out = append(out, Result{Items: dataset.MustItemset(attrs...), Freq: f})
			}
		}
		if len(attrs) == maxK {
			return
		}
		for a := next; a < d; a++ {
			attrs = append(attrs, a)
			recurse(a + 1)
			attrs = attrs[:len(attrs)-1]
		}
	}
	recurse(0)
	sortResults(out)
	return out
}

func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if !got[i].Items.Equal(want[i].Items) {
			t.Fatalf("%s: result %d is %v, want %v", label, i, got[i].Items, want[i].Items)
		}
		if math.Abs(got[i].Freq-want[i].Freq) > 1e-12 {
			t.Fatalf("%s: %v freq %g, want %g", label, got[i].Items, got[i].Freq, want[i].Freq)
		}
	}
}

// maxSingletonSupport returns the largest single-attribute frequency.
func maxSingletonSupport(db *dataset.Database) float64 {
	best := 0
	for a := 0; a < db.NumCols(); a++ {
		if c := db.ColumnCount(a); c > best {
			best = c
		}
	}
	return float64(best) / float64(db.NumRows())
}

func TestMinerEquivalenceProperty(t *testing.T) {
	r := rng.New(20260727)
	ctx := context.Background()
	m := NewMiner() // shared across all cases: reuse must not leak state
	cases := []struct {
		name    string
		n, d    int
		density float64
		maxK    int
	}{
		{"sparse_d37", 180, 37, 0.10, 3},   // 37 ∤ 64
		{"sparse_d64", 200, 64, 0.08, 3},   // exact word width
		{"dense_d20", 150, 20, 0.55, 3},    // dense: diffset roots
		{"dense_d70", 120, 70, 0.60, 2},    // dense and 70 ∤ 64
		{"verydense_d10", 90, 10, 0.85, 4}, // nearly full columns
	}
	for _, tc := range cases {
		db := dataset.GenUniform(r, tc.n, tc.d, tc.density)
		supports := []float64{0.05, 0.2, 0.5}
		// Edge thresholds: 0 admits everything (cap the width via a
		// small maxK), 1 admits only always-present itemsets, and just
		// above the max support admits nothing.
		supports = append(supports, 0, 1, maxSingletonSupport(db)+1e-9)
		for _, minSup := range supports {
			maxK := tc.maxK
			if minSup == 0 && tc.d > 20 {
				maxK = 2 // keep the full enumeration tractable
			}
			want := naiveMine(db, minSup, maxK)
			sameResults(t, tc.name+"/eclat-tidset", m.EclatWith(db, minSup, maxK, EclatTidsets), want)
			sameResults(t, tc.name+"/eclat-diffset", m.EclatWith(db, minSup, maxK, EclatDiffsets), want)
			sameResults(t, tc.name+"/eclat-auto", m.EclatWith(db, minSup, maxK, EclatAuto), want)
			ap, err := m.AprioriContext(ctx, query.FromDatabase(db), minSup, maxK)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, tc.name+"/apriori-trie", ap, want)
			if minSup > 0 {
				// FP-Growth clamps minCount to ≥ 1 by design, so it is
				// compared away from the minSupport = 0 edge.
				sameResults(t, tc.name+"/fpgrowth", m.FPGrowth(db, minSup, maxK), want)
			}
		}
	}
}

// TestMinerEquivalenceMarketBasket runs the same cross-check on the
// correlated generator (bundles make deep frequent sets, which the
// uniform generator rarely produces).
func TestMinerEquivalenceMarketBasket(t *testing.T) {
	r := rng.New(7)
	ctx := context.Background()
	db := dataset.GenMarketBasket(r, 600, 33, dataset.BasketConfig{
		MeanSize:     6,
		ZipfExponent: 1.1,
		Bundles:      [][]int{{2, 3, 4}, {10, 11}, {5, 6, 7, 8}},
		BundleProb:   0.4,
	})
	m := NewMiner()
	for _, minSup := range []float64{0.02, 0.1, 0.3} {
		want := naiveMine(db, minSup, 4)
		sameResults(t, "mb/eclat-tidset", m.EclatWith(db, minSup, 4, EclatTidsets), want)
		sameResults(t, "mb/eclat-diffset", m.EclatWith(db, minSup, 4, EclatDiffsets), want)
		sameResults(t, "mb/eclat-auto", m.EclatWith(db, minSup, 4, EclatAuto), want)
		ap, err := m.AprioriContext(ctx, query.FromDatabase(db), minSup, 4)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "mb/apriori-trie", ap, want)
		sameResults(t, "mb/fpgrowth", m.FPGrowth(db, minSup, 4), want)
	}
}

// TestWarmEclatAllocationFree pins the tentpole guarantee: a warm
// Miner's Eclat performs zero allocations, in every representation
// mode.
func TestWarmEclatAllocationFree(t *testing.T) {
	r := rng.New(3)
	db := dataset.GenMarketBasket(r, 2000, 40, dataset.BasketConfig{MeanSize: 5, ZipfExponent: 1.2})
	db.BuildColumnIndex()
	m := NewMiner()
	for _, mode := range []EclatMode{EclatTidsets, EclatDiffsets, EclatAuto} {
		m.EclatWith(db, 0.05, 3, mode) // warm the arenas
		avg := testing.AllocsPerRun(10, func() {
			m.EclatWith(db, 0.05, 3, mode)
		})
		if avg != 0 {
			t.Errorf("mode %d: warm Eclat allocates %.1f/op, want 0", mode, avg)
		}
	}
}

// TestMinerResultsValidUntilNextCall pins the aliasing contract: a
// Miner's results are views that the next call on the same engine
// overwrites, so callers copy what they keep; and results from a fresh
// engine (the package-level functions) are unaffected by later mines.
func TestMinerResultsValidUntilNextCall(t *testing.T) {
	db := toyDB()
	owned := Eclat(db, 0.4, 0) // fresh engine per call: caller owns
	snapshot := make([]string, len(owned))
	for i, r := range owned {
		snapshot[i] = r.Items.Key()
	}
	m := NewMiner()
	m.Eclat(db, 0.4, 0)
	m.Eclat(db, 0.2, 0) // overwrites the previous call's arenas
	for i, r := range owned {
		if r.Items.Key() != snapshot[i] {
			t.Fatalf("package-level results mutated by an unrelated Miner: %v", r.Items)
		}
	}
}

func TestEclatModesOnEmptyAndTiny(t *testing.T) {
	m := NewMiner()
	empty := dataset.NewDatabase(5)
	for _, mode := range []EclatMode{EclatTidsets, EclatDiffsets, EclatAuto} {
		if rs := m.EclatWith(empty, 0.5, 0, mode); rs != nil {
			t.Errorf("mode %d: empty db mined %d itemsets", mode, len(rs))
		}
	}
	one := dataset.NewDatabase(3)
	one.AddRowAttrs(0, 2)
	for _, mode := range []EclatMode{EclatTidsets, EclatDiffsets, EclatAuto} {
		rs := m.EclatWith(one, 1, 0, mode)
		if len(rs) != 3 { // {0}, {2}, {0,2}
			t.Errorf("mode %d: single-row db mined %v", mode, rs)
		}
	}
}
