package mining

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// classic toy database used across tests:
// rows: {0,1,2}, {0,1}, {0,2}, {1,2}, {2,3}
func toyDB() *dataset.Database {
	db := dataset.NewDatabase(4)
	db.AddRowAttrs(0, 1, 2)
	db.AddRowAttrs(0, 1)
	db.AddRowAttrs(0, 2)
	db.AddRowAttrs(1, 2)
	db.AddRowAttrs(2, 3)
	return db
}

func freqOf(rs []Result, attrs ...int) (float64, bool) {
	k := dataset.MustItemset(attrs...).Key()
	for _, r := range rs {
		if r.Items.Key() == k {
			return r.Freq, true
		}
	}
	return 0, false
}

func TestAprioriToy(t *testing.T) {
	rs := Apriori(DBSource{DB: toyDB()}, 0.4, 0)
	// f(0)=0.6 f(1)=0.6 f(2)=0.8 f(3)=0.2
	// f(01)=0.4 f(02)=0.4 f(12)=0.4 f(012)=0.2
	wants := []struct {
		attrs []int
		freq  float64
		in    bool
	}{
		{[]int{0}, 0.6, true},
		{[]int{1}, 0.6, true},
		{[]int{2}, 0.8, true},
		{[]int{3}, 0, false},
		{[]int{0, 1}, 0.4, true},
		{[]int{0, 2}, 0.4, true},
		{[]int{1, 2}, 0.4, true},
		{[]int{0, 1, 2}, 0, false},
	}
	for _, w := range wants {
		f, ok := freqOf(rs, w.attrs...)
		if ok != w.in {
			t.Errorf("itemset %v: present=%v, want %v", w.attrs, ok, w.in)
			continue
		}
		if ok && math.Abs(f-w.freq) > 1e-12 {
			t.Errorf("itemset %v: freq %g, want %g", w.attrs, f, w.freq)
		}
	}
	if len(rs) != 6 {
		t.Errorf("result count %d, want 6", len(rs))
	}
}

func TestAprioriMaxK(t *testing.T) {
	rs := Apriori(DBSource{DB: toyDB()}, 0.2, 1)
	for _, r := range rs {
		if r.Items.Len() > 1 {
			t.Fatalf("maxK=1 produced %v", r.Items)
		}
	}
}

func TestEclatMatchesApriori(t *testing.T) {
	r := rng.New(77)
	db := dataset.GenMarketBasket(r, 500, 24, dataset.BasketConfig{
		MeanSize:     5,
		ZipfExponent: 1.1,
		Bundles:      [][]int{{2, 3}, {4, 5, 6}},
		BundleProb:   0.3,
	})
	for _, minSup := range []float64{0.05, 0.1, 0.25} {
		ap := Apriori(DBSource{DB: db}, minSup, 4)
		ec := Eclat(db, minSup, 4)
		if len(ap) != len(ec) {
			t.Fatalf("minSup=%g: apriori %d itemsets, eclat %d", minSup, len(ap), len(ec))
		}
		for i := range ap {
			if !ap[i].Items.Equal(ec[i].Items) || math.Abs(ap[i].Freq-ec[i].Freq) > 1e-12 {
				t.Fatalf("minSup=%g: mismatch at %d: %v/%g vs %v/%g",
					minSup, i, ap[i].Items, ap[i].Freq, ec[i].Items, ec[i].Freq)
			}
		}
	}
}

func TestEclatEmptyDB(t *testing.T) {
	db := dataset.NewDatabase(4)
	if rs := Eclat(db, 0.5, 0); rs != nil {
		t.Errorf("empty db should mine nothing, got %d", len(rs))
	}
}

func TestAprioriAntiMonotonePruning(t *testing.T) {
	// Every reported itemset's subsets must also be reported.
	r := rng.New(5)
	db := dataset.GenUniform(r, 300, 10, 0.5)
	rs := Apriori(DBSource{DB: db}, 0.2, 0)
	have := make(map[string]bool)
	for _, x := range rs {
		have[x.Items.Key()] = true
	}
	for _, x := range rs {
		attrs := x.Items.Attrs()
		if len(attrs) < 2 {
			continue
		}
		for drop := range attrs {
			sub := make([]int, 0, len(attrs)-1)
			for i, a := range attrs {
				if i != drop {
					sub = append(sub, a)
				}
			}
			if !have[dataset.MustItemset(sub...).Key()] {
				t.Fatalf("downward closure violated: %v present but %v missing", attrs, sub)
			}
		}
	}
}

func TestMiningOnSketch(t *testing.T) {
	// §1.1.2 end to end: mine from a SUBSAMPLE estimator sketch; the
	// planted bundles must be recovered with high precision/recall.
	r := rng.New(99)
	db := dataset.GenMarketBasket(r, 20000, 32, dataset.BasketConfig{
		MeanSize:     4,
		ZipfExponent: 1.3,
		Bundles:      [][]int{{10, 11}, {20, 21, 22}},
		BundleProb:   0.35,
	})
	exact := Apriori(DBSource{DB: db}, 0.1, 3)

	p := core.Params{K: 3, Eps: 0.02, Delta: 0.05, Mode: core.ForAll, Task: core.Estimator}
	sk, err := core.Subsample{Seed: 12}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	approx := Apriori(EstimatorSource{Est: sk.(core.EstimatorSketch), Attrs: 32}, 0.1, 3)

	cmp := Compare(approx, exact)
	if cmp.Recall < 0.85 || cmp.Precision < 0.85 {
		t.Fatalf("sketch mining degraded: precision=%.2f recall=%.2f", cmp.Precision, cmp.Recall)
	}
	if cmp.MaxFreqErr > p.Eps {
		t.Fatalf("sketch mining freq error %g > eps %g", cmp.MaxFreqErr, p.Eps)
	}
	// The planted 3-bundle must be found.
	if _, ok := freqOf(approx, 20, 21, 22); !ok {
		t.Error("planted bundle {20,21,22} not mined from sketch")
	}
}

func TestFilterMaximal(t *testing.T) {
	rs := Apriori(DBSource{DB: toyDB()}, 0.4, 0)
	max := FilterMaximal(rs)
	// Frequent: {0},{1},{2},{01},{02},{12} — maximal are the three pairs.
	if len(max) != 3 {
		t.Fatalf("maximal count %d, want 3: %v", len(max), max)
	}
	for _, m := range max {
		if m.Items.Len() != 2 {
			t.Errorf("unexpected maximal %v", m.Items)
		}
	}
}

func TestFilterClosed(t *testing.T) {
	// DB where {0} and {0,1} always co-occur: {0} is not closed.
	db := dataset.NewDatabase(3)
	db.AddRowAttrs(0, 1)
	db.AddRowAttrs(0, 1)
	db.AddRowAttrs(2)
	rs := Apriori(DBSource{DB: db}, 0.3, 0)
	closed := FilterClosed(rs)
	for _, c := range closed {
		if c.Items.Equal(dataset.MustItemset(0)) {
			t.Error("{0} should not be closed: {0,1} has the same support")
		}
	}
	if _, ok := freqOf(closed, 0, 1); !ok {
		t.Error("{0,1} must be closed")
	}
	// Closedness is lossless: every frequent itemset's frequency equals
	// that of some closed superset.
	for _, r := range rs {
		found := false
		for _, c := range closed {
			if containsAll(c.Items, r.Items) && c.Freq == r.Freq {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("lossless property fails for %v", r.Items)
		}
	}
}

func TestRules(t *testing.T) {
	rs := Apriori(DBSource{DB: toyDB()}, 0.4, 0)
	rules := Rules(rs, 0.6)
	// confidence({0}⇒{1}) = 0.4/0.6 = 2/3 ≥ 0.6 — must be present.
	found := false
	for _, r := range rules {
		if r.Antecedent.Equal(dataset.MustItemset(0)) && r.Consequent.Equal(dataset.MustItemset(1)) {
			found = true
			if math.Abs(r.Confidence-2.0/3) > 1e-12 {
				t.Errorf("confidence = %g, want 2/3", r.Confidence)
			}
			if math.Abs(r.Lift-(2.0/3)/0.6) > 1e-12 {
				t.Errorf("lift = %g, want %g", r.Lift, (2.0/3)/0.6)
			}
			if r.Support != 0.4 {
				t.Errorf("support = %g, want 0.4", r.Support)
			}
		}
		if r.Confidence < 0.6 {
			t.Errorf("rule below confidence threshold: %+v", r)
		}
	}
	if !found {
		t.Error("rule {0} => {1} missing")
	}
}

func TestCompare(t *testing.T) {
	a := []Result{
		{Items: dataset.MustItemset(1), Freq: 0.5},
		{Items: dataset.MustItemset(2), Freq: 0.4},
	}
	b := []Result{
		{Items: dataset.MustItemset(1), Freq: 0.55},
		{Items: dataset.MustItemset(3), Freq: 0.9},
	}
	c := Compare(a, b)
	if c.TruePos != 1 || c.FalsePos != 1 || c.FalseNeg != 1 {
		t.Fatalf("confusion: %+v", c)
	}
	if c.Precision != 0.5 || c.Recall != 0.5 {
		t.Fatalf("precision/recall: %+v", c)
	}
	if math.Abs(c.MaxFreqErr-0.05) > 1e-12 {
		t.Fatalf("MaxFreqErr = %g", c.MaxFreqErr)
	}
}

func BenchmarkAprioriExact(b *testing.B) {
	r := rng.New(1)
	db := dataset.GenMarketBasket(r, 5000, 48, dataset.BasketConfig{MeanSize: 5, ZipfExponent: 1.2})
	db.BuildColumnIndex()
	src := DBSource{DB: db}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Apriori(src, 0.05, 3)
	}
}

func BenchmarkEclat(b *testing.B) {
	r := rng.New(1)
	db := dataset.GenMarketBasket(r, 5000, 48, dataset.BasketConfig{MeanSize: 5, ZipfExponent: 1.2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Eclat(db, 0.05, 3)
	}
}
