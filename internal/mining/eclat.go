package mining

import (
	"slices"

	"repro/internal/bitvec"
	"repro/internal/dataset"
)

// Adaptive diffset Eclat (Zaki's dEclat). The classic Eclat recursion
// carries each candidate's tidset — the row bitmap of the rows
// containing the prefix — and intersects it with a sibling's to extend
// the prefix. On dense databases tidsets stay dense and every failing
// candidate still pays a full AND+popcount pass. dEclat stores the
// *diffset* instead: d(PX) = t(P) ∖ t(PX), the rows the extension
// loses, with sup(PX) = sup(P) − |d(PX)|. Two things fall out:
//
//   - Diffsets compose without ever rebuilding a tidset: for siblings
//     X, Y of a prefix class, d(PXY) = d(PY) ∖ d(PX).
//   - Diffset construction admits early exit. The diffset count only
//     grows as the kernel scans, and the candidate is infrequent as
//     soon as it exceeds sup(PX) − minCount — on dense data most
//     failing candidates are rejected after a fraction of the scan,
//     where the tidset kernel always pays the full pass.
//
// Representation is chosen per branch. At the root, an attribute whose
// column popcount (dataset.Database.ColumnCount) exceeds half the rows
// stores its complement (bitvec.NotInto); below the root a child is
// computed as a diffset when its predicted support exceeds half its
// parent's (sibling support over class support as the density proxy),
// except where the parent representations force the choice:
//
//	parent X \ sibling Y    tidset Y            diffset Y
//	tidset X                either (adaptive)   either (adaptive)
//	diffset X               tidset only         diffset only
//
// All four transitions are single fused bitvec kernels (AndInto,
// AndNotInto) over per-mine arena windows, so a warm Miner runs the
// whole search with zero allocations.

// EclatMode selects the Eclat vertical representation.
type EclatMode int

const (
	// EclatAuto switches per branch between tidsets and diffsets —
	// the dEclat heuristic, and the default.
	EclatAuto EclatMode = iota
	// EclatTidsets forces classic tidset Eclat everywhere (the
	// baseline the benchmarks compare against).
	EclatTidsets
	// EclatDiffsets forces diffsets everywhere, including sparse
	// roots.
	EclatDiffsets
)

// eclatNode is one member of a prefix equivalence class: the itemset
// prefix+item, its support, and its tidset or diffset (relative to the
// class prefix) carved from the mine's word arena.
type eclatNode struct {
	item int
	sup  int
	set  []uint64
	diff bool
}

// Eclat mines frequent itemsets on the exact database by depth-first
// vertical intersection with the adaptive tidset/diffset
// representation. See EclatWith.
func (m *Miner) Eclat(db *dataset.Database, minSupport float64, maxK int) []Result {
	return m.EclatWith(db, minSupport, maxK, EclatAuto)
}

// EclatWith is Eclat with an explicit representation mode. It produces
// the same collection as Apriori on a database-backed Querier in any
// mode; the mode changes only how supports are computed. Results are
// valid until the next call on this Miner.
func (m *Miner) EclatWith(db *dataset.Database, minSupport float64, maxK int, mode EclatMode) []Result {
	d := db.NumCols()
	n := db.NumRows()
	if maxK <= 0 || maxK > d {
		maxK = d
	}
	if n == 0 {
		return nil
	}
	if !db.HasColumnIndex() {
		db.BuildColumnIndex()
	}
	minCount := minCountFor(minSupport, n)
	nw := len(db.AttrColumn(0).Words())

	m.beginMine()
	m.prefix = m.prefix[:0]

	// Root class: one member per frequent attribute. Tidsets are
	// zero-copy views of the column index; diffsets (chosen for
	// columns denser than half the rows, or forced by mode) are
	// complements built in the arena.
	root := m.nodesAt(0)
	for a := 0; a < d; a++ {
		sup := db.ColumnCount(a)
		if sup < minCount {
			continue
		}
		diff := mode == EclatDiffsets || (mode == EclatAuto && 2*sup > n)
		var set []uint64
		if diff {
			set = m.words.alloc(nw)
			bitvec.NotInto(set, db.AttrColumn(a).Words(), n)
		} else {
			set = db.AttrColumn(a).Words()
		}
		root = append(root, eclatNode{item: a, sup: sup, set: set, diff: diff})
	}
	m.nodes[0] = root
	sortClass(root)
	m.eclatClass(root, 1, n, minCount, maxK, n, mode)
	return m.finish()
}

// sortClass orders class members by ascending support (ties by item):
// extending the rarest members first keeps early sets small and fails
// candidates as high in the tree as possible, and it is what makes the
// support-ratio representation heuristic meaningful.
func sortClass(nodes []eclatNode) {
	slices.SortFunc(nodes, func(a, b eclatNode) int {
		if a.sup != b.sup {
			return a.sup - b.sup
		}
		return a.item - b.item
	})
}

// eclatClass emits every member of an equivalence class and recurses
// into the classes they head. classSup is the support of the class
// prefix (n at the root); depth is the class scratch index.
func (m *Miner) eclatClass(members []eclatNode, depth, classSup, minCount, maxK, n int, mode EclatMode) {
	for i := range members {
		x := &members[i]
		m.prefix = append(m.prefix, x.item)
		m.emitSortedCopy(m.prefix, float64(x.sup)/float64(n))
		if len(m.prefix) < maxK && i+1 < len(members) {
			mark := m.words.mark()
			children := m.nodesAt(depth)
			for j := i + 1; j < len(members); j++ {
				at := m.words.mark()
				child, ok := m.extend(x, &members[j], classSup, minCount, mode)
				if ok {
					children = append(children, child)
				} else {
					m.words.release(at)
				}
			}
			m.nodes[depth] = children
			if len(children) > 0 {
				sortClass(children)
				m.eclatClass(children, depth+1, x.sup, minCount, maxK, n, mode)
			}
			m.words.release(mark)
		}
		m.prefix = m.prefix[:len(m.prefix)-1]
	}
}

// extend computes the class member for prefix∪{x.item, y.item} from the
// sets of x and y (both relative to the class prefix), choosing the
// representation per the table above. It returns ok=false for an
// infrequent candidate; the caller then rolls the arena back so the
// failed candidate's window is reused immediately.
func (m *Miner) extend(x, y *eclatNode, classSup, minCount int, mode EclatMode) (eclatNode, bool) {
	nw := len(x.set)
	budget := x.sup - minCount // largest diffset a frequent child may have
	dst := m.words.alloc(nw)
	var cnt int
	var full bool
	var diff bool
	switch {
	case x.diff && y.diff:
		// Forced diffset: d(PXY) = d(PY) ∖ d(PX).
		diff = true
		cnt, full = bitvec.AndNotIntoCapped(dst, y.set, x.set, budget)
	case x.diff && !y.diff:
		// Forced tidset: t(PXY) = t(PY) ∖ d(PX).
		cnt = bitvec.AndNotInto(dst, y.set, x.set)
		full = true
	case !x.diff && y.diff:
		if wantDiff(y.sup, classSup, mode) {
			diff = true
			cnt, full = bitvec.AndIntoCapped(dst, x.set, y.set, budget)
		} else {
			cnt = bitvec.AndNotInto(dst, x.set, y.set)
			full = true
		}
	default: // both tidsets
		if wantDiff(y.sup, classSup, mode) {
			diff = true
			cnt, full = bitvec.AndNotIntoCapped(dst, x.set, y.set, budget)
		} else {
			cnt = bitvec.AndInto(dst, x.set, y.set)
			full = true
		}
	}
	var sup int
	if diff {
		if !full || cnt > budget {
			return eclatNode{}, false
		}
		sup = x.sup - cnt
	} else {
		if cnt < minCount {
			return eclatNode{}, false
		}
		sup = cnt
	}
	return eclatNode{item: y.item, sup: sup, set: dst, diff: diff}, true
}

// wantDiff is the per-branch representation heuristic where the parent
// representations leave a choice: predict the child dense — and take
// the diffset with its early exit — when the sibling covers more than
// half the class (Zaki's sup(child) > ½·sup(parent) rule, with
// y.sup/classSup standing in for the unknown child/parent ratio).
func wantDiff(ySup, classSup int, mode EclatMode) bool {
	if mode != EclatAuto {
		return mode == EclatDiffsets
	}
	return 2*ySup > classSup
}
