package mining

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
)

func TestFPGrowthToy(t *testing.T) {
	rs := FPGrowth(toyDB(), 0.4, 0)
	ap := Apriori(DBSource{DB: toyDB()}, 0.4, 0)
	if len(rs) != len(ap) {
		t.Fatalf("fp-growth %d itemsets, apriori %d", len(rs), len(ap))
	}
	for i := range rs {
		if !rs[i].Items.Equal(ap[i].Items) || math.Abs(rs[i].Freq-ap[i].Freq) > 1e-12 {
			t.Fatalf("mismatch at %d: %v/%g vs %v/%g",
				i, rs[i].Items, rs[i].Freq, ap[i].Items, ap[i].Freq)
		}
	}
}

func TestFPGrowthMatchesEclatRandom(t *testing.T) {
	r := rng.New(88)
	for trial := 0; trial < 5; trial++ {
		db := dataset.GenMarketBasket(r, 400, 20, dataset.BasketConfig{
			MeanSize:     4 + trial,
			ZipfExponent: 1.0 + 0.1*float64(trial),
			Bundles:      [][]int{{1, 2}, {5, 6, 7}},
			BundleProb:   0.25,
		})
		for _, minSup := range []float64{0.03, 0.1, 0.3} {
			fp := FPGrowth(db, minSup, 4)
			ec := Eclat(db, minSup, 4)
			if len(fp) != len(ec) {
				t.Fatalf("trial %d minSup %g: fp %d vs eclat %d itemsets",
					trial, minSup, len(fp), len(ec))
			}
			for i := range fp {
				if !fp[i].Items.Equal(ec[i].Items) || math.Abs(fp[i].Freq-ec[i].Freq) > 1e-12 {
					t.Fatalf("trial %d minSup %g: mismatch %v/%g vs %v/%g",
						trial, minSup, fp[i].Items, fp[i].Freq, ec[i].Items, ec[i].Freq)
				}
			}
		}
	}
}

func TestFPGrowthDeepPatterns(t *testing.T) {
	// Dense database with a long common pattern — the case FP-trees
	// compress best and recursion runs deep.
	db := dataset.NewDatabase(8)
	for i := 0; i < 10; i++ {
		db.AddRowAttrs(0, 1, 2, 3, 4)
	}
	for i := 0; i < 5; i++ {
		db.AddRowAttrs(0, 1, 5)
	}
	db.AddRowAttrs(6)
	fp := FPGrowth(db, 0.5, 0)
	// {0,1,2,3,4} appears in 10/16 rows = 0.625 ≥ 0.5 — all 31 of its
	// non-empty subsets must be found, plus nothing else is frequent
	// except those... {0,1} has 15/16, etc.
	if f, ok := freqOf(fp, 0, 1, 2, 3, 4); !ok || math.Abs(f-0.625) > 1e-12 {
		t.Fatalf("deep pattern: got %v %v", f, ok)
	}
	if len(fp) != 31 {
		t.Fatalf("expected exactly 31 frequent itemsets, got %d", len(fp))
	}
	ec := Eclat(db, 0.5, 0)
	if len(ec) != len(fp) {
		t.Fatalf("eclat disagrees: %d vs %d", len(ec), len(fp))
	}
}

func TestFPGrowthMaxK(t *testing.T) {
	db := toyDB()
	for _, r := range FPGrowth(db, 0.2, 2) {
		if r.Items.Len() > 2 {
			t.Fatalf("maxK=2 emitted %v", r.Items)
		}
	}
}

func TestFPGrowthEmptyAndNoFrequent(t *testing.T) {
	db := dataset.NewDatabase(4)
	if rs := FPGrowth(db, 0.5, 0); rs != nil {
		t.Error("empty db should mine nothing")
	}
	db.AddRowAttrs(0)
	db.AddRowAttrs(1)
	db.AddRowAttrs(2)
	if rs := FPGrowth(db, 0.9, 0); len(rs) != 0 {
		t.Errorf("nothing is 90%% frequent, got %v", rs)
	}
}

func BenchmarkFPGrowth(b *testing.B) {
	r := rng.New(1)
	db := dataset.GenMarketBasket(r, 5000, 48, dataset.BasketConfig{MeanSize: 5, ZipfExponent: 1.2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FPGrowth(db, 0.05, 3)
	}
}
