package mining

import (
	"context"
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/rng"
)

// bigDB builds a database wide and dense enough that a mine over it is
// real work: the cancellation tests assert an already-cancelled ctx
// returns before any of it happens.
func bigDB(d, n int) *dataset.Database {
	db := dataset.NewDatabase(d)
	r := rng.New(99)
	attrs := make([]int, 0, d/2)
	for i := 0; i < n; i++ {
		attrs = attrs[:0]
		for a := 0; a < d; a++ {
			if r.Float64() < 0.45 {
				attrs = append(attrs, a)
			}
		}
		db.AddRowAttrs(attrs...)
	}
	db.BuildColumnIndex()
	return db
}

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestFPGrowthContextCancelled(t *testing.T) {
	db := bigDB(40, 3000)
	rs, err := FPGrowthContext(cancelledCtx(), db, 0.01, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled FP-Growth: %v, want context.Canceled", err)
	}
	if rs != nil {
		t.Fatalf("cancelled FP-Growth returned %d results", len(rs))
	}
}

func TestFPGrowthContextCancelledMidRecursion(t *testing.T) {
	db := bigDB(40, 3000)
	// A context that cancels itself after a fixed number of Err polls:
	// the mine must stop at the next branch and propagate the error up
	// through the recursion.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	polls := 0
	wrapped := &countingCtx{Context: ctx, trip: 50, cancel: cancel, polls: &polls}
	_, err := FPGrowthContext(wrapped, db, 0.01, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-mine cancel: %v, want context.Canceled", err)
	}
	if polls < 50 {
		t.Fatalf("mine finished after %d branch checks without tripping", polls)
	}
}

// countingCtx cancels its parent after trip Err() calls — a
// deterministic stand-in for a deadline firing mid-recursion.
type countingCtx struct {
	context.Context
	trip   int
	cancel context.CancelFunc
	polls  *int
}

func (c *countingCtx) Err() error {
	*c.polls++
	if *c.polls == c.trip {
		c.cancel()
	}
	return c.Context.Err()
}

func TestFPGrowthContextMatchesFPGrowth(t *testing.T) {
	db := bigDB(16, 500)
	want := FPGrowth(db, 0.15, 3)
	got, err := FPGrowthContext(context.Background(), db, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ctx form mined %d itemsets, plain form %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Items.Equal(want[i].Items) || got[i].Freq != want[i].Freq {
			t.Fatalf("result %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestAprioriContextCancelledBeforeAnyLevel(t *testing.T) {
	db := bigDB(40, 2000)
	_, err := AprioriContext(cancelledCtx(), query.FromDatabase(db), 0.01, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Apriori: %v, want context.Canceled", err)
	}
}

func TestToivonenContextCancelled(t *testing.T) {
	db := bigDB(30, 2000)
	sample := bigDB(30, 200)
	_, err := ToivonenContext(cancelledCtx(), db, sample, 0.2, 0.15, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Toivonen: %v, want context.Canceled", err)
	}
}
