package mining

import (
	"sort"

	"repro/internal/dataset"
)

// FP-Growth [Han et al.]: mine frequent itemsets with no candidate
// generation, by building a compressed prefix tree (FP-tree) of the
// transactions and recursively mining conditional trees. It produces
// exactly the Apriori/Eclat collection on an exact database and is the
// fastest of the three on dense data; the miners cross-check each
// other in the tests.

type fpNode struct {
	item     int
	count    int
	parent   *fpNode
	children map[int]*fpNode
	next     *fpNode // header chain
}

type fpTree struct {
	root    *fpNode
	headers map[int]*fpNode
	counts  map[int]int
}

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{item: -1, children: make(map[int]*fpNode)},
		headers: make(map[int]*fpNode),
		counts:  make(map[int]int),
	}
}

// insert adds a transaction (items pre-sorted in the tree's global
// order) with multiplicity count.
func (t *fpTree) insert(items []int, count int) {
	node := t.root
	for _, it := range items {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: make(map[int]*fpNode)}
			node.children[it] = child
			// Prepend to the header chain.
			child.next = t.headers[it]
			t.headers[it] = child
		}
		child.count += count
		t.counts[it] += count
		node = child
	}
}

// FPGrowth mines all itemsets with frequency ≥ minSupport and size ≤
// maxK (maxK ≤ 0 means unbounded) from the exact database.
func FPGrowth(db *dataset.Database, minSupport float64, maxK int) []Result {
	d := db.NumCols()
	n := db.NumRows()
	if maxK <= 0 || maxK > d {
		maxK = d
	}
	if n == 0 {
		return nil
	}
	minCount := int(minSupport * float64(n))
	if float64(minCount) < minSupport*float64(n) {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}

	// Pass 1: item frequencies; order items by descending count.
	itemCount := make([]int, d)
	var ones []int
	for i := 0; i < n; i++ {
		ones = db.AppendRowOnes(ones[:0], i)
		for _, a := range ones {
			itemCount[a]++
		}
	}
	order := make([]int, 0, d) // frequent items, most frequent first
	for a := 0; a < d; a++ {
		if itemCount[a] >= minCount {
			order = append(order, a)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if itemCount[order[i]] != itemCount[order[j]] {
			return itemCount[order[i]] > itemCount[order[j]]
		}
		return order[i] < order[j]
	})
	rank := make(map[int]int, len(order))
	for r, a := range order {
		rank[a] = r
	}

	// Pass 2: build the global tree.
	tree := newFPTree()
	var buf []int
	for i := 0; i < n; i++ {
		buf = buf[:0]
		ones = db.AppendRowOnes(ones[:0], i)
		for _, a := range ones {
			if _, ok := rank[a]; ok {
				buf = append(buf, a)
			}
		}
		sort.Slice(buf, func(x, y int) bool { return rank[buf[x]] < rank[buf[y]] })
		if len(buf) > 0 {
			tree.insert(buf, 1)
		}
	}

	var out []Result
	mineFPTree(tree, nil, minCount, maxK, n, &out)
	sortResults(out)
	return out
}

// mineFPTree emits every frequent extension of `suffix` found in tree.
func mineFPTree(tree *fpTree, suffix []int, minCount, maxK, n int, out *[]Result) {
	// Items in the tree, mined least-frequent first (bottom-up).
	items := make([]int, 0, len(tree.counts))
	for it, c := range tree.counts {
		if c >= minCount {
			items = append(items, it)
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if tree.counts[items[i]] != tree.counts[items[j]] {
			return tree.counts[items[i]] < tree.counts[items[j]]
		}
		return items[i] < items[j]
	})
	for _, it := range items {
		newSuffix := append(append([]int{}, suffix...), it)
		*out = append(*out, Result{
			Items: dataset.MustItemset(newSuffix...),
			Freq:  float64(tree.counts[it]) / float64(n),
		})
		if len(newSuffix) >= maxK {
			continue
		}
		// Conditional pattern base: prefix paths of every `it` node.
		cond := newFPTree()
		for node := tree.headers[it]; node != nil; node = node.next {
			var path []int
			for p := node.parent; p != nil && p.item != -1; p = p.parent {
				path = append(path, p.item)
			}
			// path is leaf→root; reverse to root→leaf insertion order.
			for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
				path[l], path[r] = path[r], path[l]
			}
			if len(path) > 0 {
				cond.insert(path, node.count)
			}
		}
		// Prune conditional items below minCount, then recurse.
		pruned := newFPTree()
		rebuildPruned(cond, pruned, minCount)
		if len(pruned.counts) > 0 {
			mineFPTree(pruned, newSuffix, minCount, maxK, n, out)
		}
	}
}

// rebuildPruned copies cond into dst, dropping items whose conditional
// count is below minCount. Each root-to-node path is re-inserted with
// the node's residual count (its count minus its children's counts),
// which reproduces the original path multiset exactly.
func rebuildPruned(cond, dst *fpTree, minCount int) {
	var walk func(node *fpNode, path []int)
	walk = func(node *fpNode, path []int) {
		childSum := 0
		for _, c := range node.children {
			childSum += c.count
		}
		if node.item != -1 {
			if cond.counts[node.item] >= minCount {
				path = append(append([]int{}, path...), node.item)
			}
			if residual := node.count - childSum; residual > 0 && len(path) > 0 {
				dst.insert(path, residual)
			}
		}
		for _, c := range node.children {
			walk(c, path)
		}
	}
	walk(cond.root, nil)
}
