package mining

import (
	"context"
	"slices"

	"repro/internal/dataset"
)

// FP-Growth [Han et al.]: mine frequent itemsets with no candidate
// generation, by building a compressed prefix tree (FP-tree) of the
// transactions and recursively mining conditional trees. It produces
// exactly the Apriori/Eclat collection on an exact database; the
// miners cross-check each other in the tests.
//
// The trees follow the engine's arena discipline: nodes are index-
// linked structs in one contiguous slice per tree (no pointers, no
// child maps), each recursion depth owns one reusable conditional
// tree, and the conditional pattern base is filtered through a shared
// per-item count scratch — so a warm Miner rebuilds every conditional
// tree without allocating.

// fpNode is one arena node of an FP-tree: a prefix-tree node with its
// multiplicity count, parent/child/sibling links by index, and the
// header-chain link threading all nodes of the same item.
type fpNode struct {
	item    int32
	count   int
	parent  int32
	child   int32
	sibling int32
	hnext   int32
}

// fpTreeScratch is one FP-tree (the global tree at depth 0, a
// conditional tree per recursion depth below). headers and counts are
// indexed by item id and kept in canonical state (-1 / 0) for every
// item NOT in touched, so reset pays for the items the previous tree
// actually used — not O(d) per conditional tree. order is the depth's
// mining-order scratch.
type fpTreeScratch struct {
	nodes   []fpNode
	headers []int32
	counts  []int
	touched []int32 // items with a non-canonical header/count slot
	order   []int32
}

func (t *fpTreeScratch) reset(d int) {
	t.nodes = append(t.nodes[:0], fpNode{item: -1, parent: -1, child: -1, sibling: -1, hnext: -1})
	if cap(t.headers) < d {
		t.headers = make([]int32, d)
		t.counts = make([]int, d)
		for i := range t.headers {
			t.headers[i] = -1
		}
		t.touched = t.touched[:0]
		return
	}
	// Slices keep their high-water length (indexing only ever uses
	// item ids < d ≤ len); restore the slots the previous tree used.
	for _, it := range t.touched {
		t.headers[it] = -1
		t.counts[it] = 0
	}
	t.touched = t.touched[:0]
}

// insert adds a transaction (items pre-sorted in the tree's global
// order) with multiplicity count.
func (t *fpTreeScratch) insert(items []int, count int) {
	cur := int32(0)
	for _, it := range items {
		c := t.nodes[cur].child
		for c != -1 && t.nodes[c].item != int32(it) {
			c = t.nodes[c].sibling
		}
		if c == -1 {
			c = int32(len(t.nodes))
			t.nodes = append(t.nodes, fpNode{
				item: int32(it), parent: cur,
				child: -1, sibling: t.nodes[cur].child,
				hnext: t.headers[it],
			})
			t.nodes[cur].child = c
			t.headers[it] = c
		}
		t.nodes[c].count += count
		if t.counts[it] == 0 {
			t.touched = append(t.touched, int32(it))
		}
		t.counts[it] += count
		cur = c
	}
}

// fpTreeAt returns the (existing or fresh) tree scratch for a depth.
func (m *Miner) fpTreeAt(depth int) *fpTreeScratch {
	for depth >= len(m.fpTrees) {
		m.fpTrees = append(m.fpTrees, fpTreeScratch{})
	}
	return &m.fpTrees[depth]
}

// FPGrowth mines all itemsets with frequency ≥ minSupport and size ≤
// maxK (maxK ≤ 0 means unbounded) from the exact database. It runs on
// a fresh engine, so the results own their memory.
func FPGrowth(db *dataset.Database, minSupport float64, maxK int) []Result {
	return new(Miner).FPGrowth(db, minSupport, maxK)
}

// FPGrowthContext is FPGrowth under a context: the recursion checks
// ctx at every conditional-tree branch, so a cancelled mine stops
// after at most one branch of work and returns ctx.Err(). It runs on
// a fresh engine, so the results own their memory.
func FPGrowthContext(ctx context.Context, db *dataset.Database, minSupport float64, maxK int) ([]Result, error) {
	return new(Miner).FPGrowthContext(ctx, db, minSupport, maxK)
}

// FPGrowth is the engine form of the package-level FPGrowth. Results
// are valid until the next call on this Miner.
func (m *Miner) FPGrowth(db *dataset.Database, minSupport float64, maxK int) []Result {
	rs, err := m.FPGrowthContext(context.Background(), db, minSupport, maxK)
	if err != nil {
		// Unreachable: a background context never cancels and the mine
		// has no other failure mode.
		panic(err)
	}
	return rs
}

// FPGrowthContext is the engine form of the package-level
// FPGrowthContext. Results are valid until the next call on this
// Miner.
func (m *Miner) FPGrowthContext(ctx context.Context, db *dataset.Database, minSupport float64, maxK int) ([]Result, error) {
	d := db.NumCols()
	n := db.NumRows()
	if maxK <= 0 || maxK > d {
		maxK = d
	}
	if n == 0 {
		return nil, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	minCount := minCountFor(minSupport, n)
	if minCount < 1 {
		minCount = 1
	}
	m.beginMine()

	// Pass 1: item frequencies from the column index; order frequent
	// items by descending count (the FP-tree insertion order).
	if cap(m.itemRank) < d {
		m.itemRank = make([]int32, d)
	}
	m.itemRank = m.itemRank[:d]
	m.itemOrder = m.itemOrder[:0]
	for a := 0; a < d; a++ {
		m.itemRank[a] = -1
		if db.ColumnCount(a) >= minCount {
			m.itemOrder = append(m.itemOrder, a)
		}
	}
	slices.SortFunc(m.itemOrder, func(x, y int) int {
		if cx, cy := db.ColumnCount(x), db.ColumnCount(y); cx != cy {
			return cy - cx
		}
		return x - y
	})
	for r, a := range m.itemOrder {
		m.itemRank[a] = int32(r)
	}

	// Pass 2: build the global tree. The per-depth tree table is grown
	// up front so the *fpTreeScratch pointers held across the recursion
	// never dangle on an append.
	m.fpTreeAt(maxK)
	root := m.fpTreeAt(0)
	root.reset(d)
	for i := 0; i < n; i++ {
		m.rowOnes = db.AppendRowOnes(m.rowOnes[:0], i)
		m.rowBuf = m.rowBuf[:0]
		for _, a := range m.rowOnes {
			if m.itemRank[a] >= 0 {
				m.rowBuf = append(m.rowBuf, a)
			}
		}
		slices.SortFunc(m.rowBuf, func(x, y int) int { return int(m.itemRank[x] - m.itemRank[y]) })
		if len(m.rowBuf) > 0 {
			root.insert(m.rowBuf, 1)
		}
	}

	if cap(m.condCount) < d {
		m.condCount = make([]int32, d)
	}
	m.condCount = m.condCount[:d]
	m.suffix = m.suffix[:0]
	if err := m.mineFPTree(ctx, 0, minCount, maxK, n, d); err != nil {
		return nil, err
	}
	return m.finish(), nil
}

// mineFPTree emits every frequent extension of the current suffix
// found in the depth's tree and recurses into conditional trees. The
// context is checked once per branch (each conditional-tree entry), so
// cancellation cuts deep recursions off without taxing the per-node
// hot path.
func (m *Miner) mineFPTree(ctx context.Context, depth, minCount, maxK, n, d int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	t := m.fpTreeAt(depth)
	// Items in the tree (the touched list, so a small conditional tree
	// never scans all d slots), mined least-frequent first (bottom-up).
	t.order = t.order[:0]
	for _, it := range t.touched {
		if t.counts[it] >= minCount {
			t.order = append(t.order, it)
		}
	}
	order := t.order
	slices.SortFunc(order, func(x, y int32) int {
		if t.counts[x] != t.counts[y] {
			return t.counts[x] - t.counts[y]
		}
		return int(x - y)
	})
	for _, it := range order {
		m.suffix = append(m.suffix, int(it))
		m.emitSortedCopy(m.suffix, float64(t.counts[it])/float64(n))
		if len(m.suffix) < maxK {
			m.buildConditional(depth, int(it), minCount, d)
			cond := m.fpTreeAt(depth + 1)
			if len(cond.nodes) > 1 {
				if err := m.mineFPTree(ctx, depth+1, minCount, maxK, n, d); err != nil {
					return err
				}
			}
		}
		m.suffix = m.suffix[:len(m.suffix)-1]
	}
	return nil
}

// emitSortedCopy emits attrs as a result after sorting a scratch copy
// (the FP-Growth suffix and the Eclat prefix grow in mining order, not
// attribute order).
func (m *Miner) emitSortedCopy(attrs []int, freq float64) {
	m.sortBuf = append(m.sortBuf[:0], attrs...)
	slices.Sort(m.sortBuf)
	m.emit(m.sortBuf, freq)
}

// buildConditional fills the depth+1 tree with item's conditional
// pattern base from the depth tree, pruned to items whose conditional
// count reaches minCount. Two passes over the header chain: the first
// accumulates conditional counts into the shared scratch, the second
// re-inserts each prefix path filtered by them — equivalent to
// building and then pruning the conditional tree, without the
// intermediate copy.
func (m *Miner) buildConditional(depth, item, minCount, d int) {
	t := m.fpTreeAt(depth)
	m.condItems = m.condItems[:0]
	for node := t.headers[item]; node != -1; node = t.nodes[node].hnext {
		cnt := t.nodes[node].count
		for p := t.nodes[node].parent; p > 0; p = t.nodes[p].parent {
			it := t.nodes[p].item
			if m.condCount[it] == 0 {
				m.condItems = append(m.condItems, it)
			}
			m.condCount[it] += int32(cnt)
		}
	}
	cond := m.fpTreeAt(depth + 1)
	cond.reset(d)
	for node := t.headers[item]; node != -1; node = t.nodes[node].hnext {
		m.rowBuf = m.rowBuf[:0]
		for p := t.nodes[node].parent; p > 0; p = t.nodes[p].parent {
			if it := t.nodes[p].item; int(m.condCount[it]) >= minCount {
				m.rowBuf = append(m.rowBuf, int(it))
			}
		}
		// rowBuf is leaf→root; reverse to root→leaf insertion order.
		for l, r := 0, len(m.rowBuf)-1; l < r; l, r = l+1, r-1 {
			m.rowBuf[l], m.rowBuf[r] = m.rowBuf[r], m.rowBuf[l]
		}
		if len(m.rowBuf) > 0 {
			cond.insert(m.rowBuf, t.nodes[node].count)
		}
	}
	for _, it := range m.condItems {
		m.condCount[it] = 0
	}
}
