// Package mining implements frequent-itemset mining on top of either
// an exact database or an itemset frequency sketch.
//
// Section 1.1.2 of the paper motivates sketches precisely this way: an
// analyst keeps a small sketch instead of the database and runs the
// expensive mining algorithms against the sketch. The FrequencySource
// interface makes the two interchangeable, and the examples compare
// mining output on a SUBSAMPLE sketch against exact mining.
//
// Two classical miners are provided: Apriori (level-wise candidate
// generation over any frequency backend) and Eclat (depth-first
// vertical bitmap intersection; exact-database only, used as the fast
// baseline). Post-processing covers maximal/closed filtering (the
// condensed representations discussed in §1.1.1) and association
// rules.
//
// The miners run on the query.Querier interface: AprioriContext issues
// one batched EstimateMany call per level, so candidate evaluation is
// sharded across CPUs by the backend and a cancelled context stops the
// mine within one chunk of queries. The FrequencySource forms are kept
// as thin wrappers over the Querier path.
package mining

import (
	"context"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/query"
)

// FrequencySource answers itemset frequency queries over a universe of
// NumAttrs attributes.
type FrequencySource interface {
	Frequency(t dataset.Itemset) float64
	NumAttrs() int
}

// DBSource adapts a dataset.Database into a FrequencySource.
type DBSource struct{ DB *dataset.Database }

// Frequency implements FrequencySource.
func (s DBSource) Frequency(t dataset.Itemset) float64 { return s.DB.Frequency(t) }

// NumAttrs implements FrequencySource.
func (s DBSource) NumAttrs() int { return s.DB.NumCols() }

// EstimatorSource adapts any frequency estimator (e.g. a
// core.EstimatorSketch) into a FrequencySource.
type EstimatorSource struct {
	Est interface {
		Estimate(t dataset.Itemset) float64
	}
	Attrs int
}

// Frequency implements FrequencySource.
func (s EstimatorSource) Frequency(t dataset.Itemset) float64 { return s.Est.Estimate(t) }

// NumAttrs implements FrequencySource.
func (s EstimatorSource) NumAttrs() int { return s.Attrs }

// Result is one mined itemset with its (possibly estimated) frequency.
type Result struct {
	Items dataset.Itemset
	Freq  float64
}

// sortResults orders by size then lexicographic attrs, for determinism.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].Items, rs[j].Items
		if a.Len() != b.Len() {
			return a.Len() < b.Len()
		}
		aa, ba := a.Attrs(), b.Attrs()
		for x := range aa {
			if aa[x] != ba[x] {
				return aa[x] < ba[x]
			}
		}
		return false
	})
}

// Apriori mines all itemsets with frequency ≥ minSupport and size ≤
// maxK (maxK ≤ 0 means unbounded), level-wise with candidate pruning.
// It is the legacy form of AprioriContext, wrapping src as a serial
// Querier under a background context.
func Apriori(src FrequencySource, minSupport float64, maxK int) []Result {
	rs, err := AprioriContext(context.Background(), query.FromSource(src), minSupport, maxK)
	if err != nil {
		// Unreachable: a background context never cancels and a
		// FromSource querier returns no query errors.
		return nil
	}
	return rs
}

// AprioriContext mines all itemsets with frequency ≥ minSupport and
// size ≤ maxK (maxK ≤ 0 means unbounded), level-wise with candidate
// pruning. Each level's surviving candidates are answered by a single
// batched EstimateMany call, so the backend shards the work across
// CPUs and a cancelled ctx aborts the mine with ctx.Err(). Against a
// sketch-backed Querier this is the paper's §1.1.2 "mine the sketch,
// not the data" path.
func AprioriContext(ctx context.Context, q query.Querier, minSupport float64, maxK int) ([]Result, error) {
	out, err := aprioriLevels(ctx, q, minSupport, maxK, nil)
	if err != nil {
		return nil, err
	}
	sortResults(out)
	return out, nil
}

// aprioriLevels is the shared level-wise engine behind AprioriContext
// and the Toivonen negative-border mine: candidate generation with
// subset pruning, one batched EstimateMany per level. Frequent results
// are returned (unsorted); if onInfrequent is non-nil it receives
// every generated candidate that failed the threshold — exactly the
// negative border.
func aprioriLevels(ctx context.Context, q query.Querier, minSupport float64, maxK int, onInfrequent func(Result)) ([]Result, error) {
	d := q.NumAttrs()
	if maxK <= 0 || maxK > d {
		maxK = d
	}
	var out []Result

	// Level 1: one batched call over all d singletons.
	ts := make([]dataset.Itemset, d)
	for a := 0; a < d; a++ {
		ts[a] = dataset.MustItemset(a)
	}
	fs := make([]float64, d)
	if err := q.EstimateMany(ctx, ts, fs); err != nil {
		return nil, err
	}
	var level [][]int
	for a := 0; a < d; a++ {
		if fs[a] >= minSupport {
			level = append(level, []int{a})
			out = append(out, Result{Items: ts[a], Freq: fs[a]})
		} else if onInfrequent != nil {
			onInfrequent(Result{Items: ts[a], Freq: fs[a]})
		}
	}

	for k := 2; k <= maxK && len(level) > 0; k++ {
		prev := make(map[string]bool, len(level))
		for _, s := range level {
			prev[key(s)] = true
		}
		// Join step: two (k−1)-sets sharing their first k−2 items.
		// Candidates surviving the subset pruning are collected and
		// answered in one batch.
		var cands [][]int
		ts = ts[:0]
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				if !samePrefix(a, b) {
					continue
				}
				cand := make([]int, k)
				copy(cand, a)
				if a[k-2] < b[k-2] {
					cand[k-1] = b[k-2]
				} else {
					cand[k-1], cand[k-2] = a[k-2], b[k-2]
				}
				if !allSubsetsFrequent(cand, prev) {
					continue
				}
				cands = append(cands, cand)
				ts = append(ts, dataset.MustItemset(cand...))
			}
		}
		if cap(fs) < len(ts) {
			fs = make([]float64, len(ts))
		}
		fs = fs[:len(ts)]
		if err := q.EstimateMany(ctx, ts, fs); err != nil {
			return nil, err
		}
		var next [][]int
		for i, cand := range cands {
			if fs[i] >= minSupport {
				next = append(next, cand)
				out = append(out, Result{Items: ts[i], Freq: fs[i]})
			} else if onInfrequent != nil {
				onInfrequent(Result{Items: ts[i], Freq: fs[i]})
			}
		}
		level = next
	}
	return out, nil
}

func key(s []int) string {
	return dataset.MustItemset(s...).Key()
}

func samePrefix(a, b []int) bool {
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent prunes a candidate whose (k−1)-subsets are not all
// frequent (anti-monotonicity).
func allSubsetsFrequent(cand []int, prev map[string]bool) bool {
	sub := make([]int, 0, len(cand)-1)
	for drop := range cand {
		sub = sub[:0]
		for i, v := range cand {
			if i != drop {
				sub = append(sub, v)
			}
		}
		if !prev[key(sub)] {
			return false
		}
	}
	return true
}

// Eclat mines frequent itemsets on the exact database by depth-first
// vertical bitmap intersection. It produces the same collection as
// Apriori on a DBSource but avoids repeated scans.
//
// The recursion owns one scratch tidlist buffer per depth, reused
// across all siblings at that depth, so a whole mining run performs no
// per-candidate allocation: each candidate costs exactly one fused
// AND+popcount pass (bitvec.AndInto) into its depth's buffer. At the
// root the attribute columns are read directly from the database's
// column index without cloning.
//
// Root candidates are visited in ascending support order: extending
// the rarest items first keeps the early tidlists sparse and fails the
// minCount test as high in the tree as possible, shrinking the search
// tree versus attribute order. The mined collection is unchanged (the
// enumeration still visits every frequent set exactly once and output
// is sorted), which the Apriori-equivalence tests pin down.
func Eclat(db *dataset.Database, minSupport float64, maxK int) []Result {
	d := db.NumCols()
	n := db.NumRows()
	if maxK <= 0 || maxK > d {
		maxK = d
	}
	if n == 0 {
		return nil
	}
	if !db.HasColumnIndex() {
		db.BuildColumnIndex()
	}
	minCount := int(minSupport * float64(n))
	if float64(minCount) < minSupport*float64(n) {
		minCount++
	}
	nw := len(db.AttrColumn(0).Words())
	var out []Result
	var scratch [][]uint64 // scratch[depth] is that depth's tidlist buffer
	prefix := make([]int, 0, maxK)
	// tids == nil means "all rows" (the empty prefix); depth counts
	// intersections taken so far.
	var recurse func(tids []uint64, depth int, candidates []int)
	recurse = func(tids []uint64, depth int, candidates []int) {
		for ci, a := range candidates {
			col := db.AttrColumn(a).Words()
			var next []uint64
			var cnt int
			if tids == nil {
				// Root level: the column itself is the tidlist; it is
				// only read below, never written.
				next = col
				cnt = bitvec.CountWords(col)
			} else {
				// First intersection happens at depth 1, so the
				// buffer for depth d lives at scratch[d-1].
				for depth-1 >= len(scratch) {
					scratch = append(scratch, make([]uint64, nw))
				}
				next = scratch[depth-1]
				cnt = bitvec.AndInto(next, tids, col)
			}
			if cnt < minCount {
				continue
			}
			prefix = append(prefix, a)
			out = append(out, Result{
				Items: dataset.MustItemset(prefix...),
				Freq:  float64(cnt) / float64(n),
			})
			if len(prefix) < maxK {
				recurse(next, depth+1, candidates[ci+1:])
			}
			prefix = prefix[:len(prefix)-1]
		}
	}
	order := make([]int, d)
	counts := make([]int, d)
	for a := 0; a < d; a++ {
		order[a] = a
		counts[a] = bitvec.CountWords(db.AttrColumn(a).Words())
	}
	sort.Slice(order, func(i, j int) bool {
		if counts[order[i]] != counts[order[j]] {
			return counts[order[i]] < counts[order[j]]
		}
		return order[i] < order[j]
	})
	recurse(nil, 0, order)
	sortResults(out)
	return out
}
