// Package mining implements frequent-itemset mining on top of either
// an exact database or an itemset frequency sketch.
//
// Section 1.1.2 of the paper motivates sketches precisely this way: an
// analyst keeps a small sketch instead of the database and runs the
// expensive mining algorithms against the sketch. The FrequencySource
// interface makes the two interchangeable, and the examples compare
// mining output on a SUBSAMPLE sketch against exact mining.
//
// Four classical miners are provided: Apriori (level-wise candidate
// generation over any frequency backend), Eclat (depth-first vertical
// intersection with adaptive tidset/diffset representation —
// exact-database only, the fast baseline), FP-Growth (pattern growth
// with no candidate generation) and Toivonen (sample, mine, verify).
// Post-processing covers maximal/closed filtering (the condensed
// representations discussed in §1.1.1) and association rules.
//
// All miners run on the reusable Miner engine: scratch lives in
// per-engine arenas (tidset windows, trie node pools, batched query
// buffers), so steady-state mining on a warm Miner allocates nothing
// per candidate. The package-level functions wrap a fresh engine per
// call and keep the original ownership semantics.
//
// Apriori's candidate bookkeeping is a prefix trie over sorted item
// ids in a contiguous node arena: generation joins sibling leaves,
// pruning walks the trie (no per-candidate keys or maps), and each
// level's surviving candidates are answered by a single batched
// query.Querier EstimateMany call, so candidate evaluation is sharded
// across CPUs by the backend and a cancelled context stops the mine
// within one chunk of queries.
package mining

import (
	"context"

	"repro/internal/dataset"
	"repro/internal/query"
)

// FrequencySource answers itemset frequency queries over a universe of
// NumAttrs attributes.
type FrequencySource interface {
	Frequency(t dataset.Itemset) float64
	NumAttrs() int
}

// DBSource adapts a dataset.Database into a FrequencySource.
type DBSource struct{ DB *dataset.Database }

// Frequency implements FrequencySource.
func (s DBSource) Frequency(t dataset.Itemset) float64 { return s.DB.Frequency(t) }

// NumAttrs implements FrequencySource.
func (s DBSource) NumAttrs() int { return s.DB.NumCols() }

// EstimatorSource adapts any frequency estimator (e.g. a
// core.EstimatorSketch) into a FrequencySource.
type EstimatorSource struct {
	Est interface {
		Estimate(t dataset.Itemset) float64
	}
	Attrs int
}

// Frequency implements FrequencySource.
func (s EstimatorSource) Frequency(t dataset.Itemset) float64 { return s.Est.Estimate(t) }

// NumAttrs implements FrequencySource.
func (s EstimatorSource) NumAttrs() int { return s.Attrs }

// Result is one mined itemset with its (possibly estimated) frequency.
type Result struct {
	Items dataset.Itemset
	Freq  float64
}

// Apriori mines all itemsets with frequency ≥ minSupport and size ≤
// maxK (maxK ≤ 0 means unbounded), level-wise with candidate pruning.
// It is the legacy form of AprioriContext, wrapping src as a serial
// Querier under a background context.
func Apriori(src FrequencySource, minSupport float64, maxK int) []Result {
	rs, err := AprioriContext(context.Background(), query.FromSource(src), minSupport, maxK)
	if err != nil {
		// Unreachable: a background context never cancels and a
		// FromSource querier returns no query errors.
		return nil
	}
	return rs
}

// AprioriContext mines all itemsets with frequency ≥ minSupport and
// size ≤ maxK (maxK ≤ 0 means unbounded), level-wise with candidate
// pruning. Each level's surviving candidates are answered by a single
// batched EstimateMany call, so the backend shards the work across
// CPUs and a cancelled ctx aborts the mine with ctx.Err(). Against a
// sketch-backed Querier this is the paper's §1.1.2 "mine the sketch,
// not the data" path. It runs on a fresh engine; use Miner for the
// buffer-reusing form.
func AprioriContext(ctx context.Context, q query.Querier, minSupport float64, maxK int) ([]Result, error) {
	return new(Miner).AprioriContext(ctx, q, minSupport, maxK)
}

// AprioriContext is the engine form of the package-level
// AprioriContext. Results are valid until the next call on this Miner.
func (m *Miner) AprioriContext(ctx context.Context, q query.Querier, minSupport float64, maxK int) ([]Result, error) {
	if err := m.aprioriLevels(ctx, q, minSupport, maxK, false); err != nil {
		return nil, err
	}
	return m.finish(), nil
}

// trieNode is one node of the Apriori candidate trie. Every frequent
// itemset mined so far is a root path over its sorted attributes;
// children of a node are a sibling list in ascending item order. Nodes
// live in the Miner's contiguous arena and are addressed by index, so
// the trie allocates nothing per candidate.
type trieNode struct {
	item    int32
	child   int32 // first child, -1 if none
	sibling int32 // next sibling, -1 if none
}

const trieNil = int32(-1)

// trieInsert appends a node for item and returns its id. Linking is
// done by the caller (items arrive in ascending order per parent, so
// the caller threads the sibling chain as it inserts).
func (m *Miner) trieInsert(item int) int32 {
	id := int32(len(m.trie))
	m.trie = append(m.trie, trieNode{item: int32(item), child: trieNil, sibling: trieNil})
	return id
}

// trieContains reports whether attrs (sorted) is a path in the trie,
// i.e. was accepted as a frequent itemset.
func (m *Miner) trieContains(attrs []int) bool {
	cur := int32(0)
	for _, a := range attrs {
		c := m.trie[cur].child
		for c != trieNil && m.trie[c].item < int32(a) {
			c = m.trie[c].sibling
		}
		if c == trieNil || m.trie[c].item != int32(a) {
			return false
		}
		cur = c
	}
	return true
}

// aprioriLevels is the shared level-wise engine behind AprioriContext
// and the Toivonen negative-border mine: trie-based candidate
// generation with subset pruning, one batched EstimateMany per level.
// Frequent itemsets are recorded via emit; with wantBorder set, every
// generated candidate that fails the threshold — exactly the negative
// border — is recorded via emitBorder.
func (m *Miner) aprioriLevels(ctx context.Context, q query.Querier, minSupport float64, maxK int, wantBorder bool) error {
	d := q.NumAttrs()
	if maxK <= 0 || maxK > d {
		maxK = d
	}
	m.beginMine()
	m.trie = append(m.trie[:0], trieNode{item: -1, child: trieNil, sibling: trieNil})
	m.levelNodes = m.levelNodes[:0]
	m.paths = m.paths[:0]

	// Level 1 candidates: all d singletons under the root.
	m.candPaths = m.candPaths[:0]
	m.candParent = m.candParent[:0]
	for a := 0; a < d; a++ {
		m.candPaths = append(m.candPaths, a)
		m.candParent = append(m.candParent, 0)
	}

	for k := 1; k <= maxK; k++ {
		// Check once per level: EstimateMany observes ctx mid-batch, but
		// candidate generation between batches can be sizable on wide
		// levels and must not outlive a cancelled mine.
		if err := ctx.Err(); err != nil {
			return err
		}
		nCand := len(m.candParent)
		if nCand == 0 {
			return nil
		}
		// One batched call answers the whole level. The itemsets are
		// zero-copy views into the candidate path arena, built only
		// after generation finished growing it.
		m.ts = m.ts[:0]
		for i := 0; i < nCand; i++ {
			lo, hi := i*k, (i+1)*k
			m.ts = append(m.ts, dataset.ItemsetView(m.candPaths[lo:hi:hi]))
		}
		if cap(m.fs) < nCand {
			m.fs = make([]float64, nCand)
		}
		m.fs = m.fs[:nCand]
		if err := q.EstimateMany(ctx, m.ts, m.fs); err != nil {
			return err
		}

		// Accept survivors: record the result, add the trie node, and
		// keep the leaf for the next level's join. Candidates arrive
		// grouped by parent with items ascending, so the sibling chain
		// threads in one pass.
		m.nextNodes = m.nextNodes[:0]
		m.nextPaths = m.nextPaths[:0]
		lastParent, lastNode := trieNil, trieNil
		for i := 0; i < nCand; i++ {
			attrs := m.candPaths[i*k : (i+1)*k]
			if m.fs[i] >= minSupport {
				m.emit(attrs, m.fs[i])
				id := m.trieInsert(attrs[k-1])
				if p := m.candParent[i]; p == lastParent {
					m.trie[lastNode].sibling = id
				} else {
					m.trie[p].child = id
					lastParent = p
				}
				lastNode = id
				m.nextNodes = append(m.nextNodes, id)
				m.nextPaths = append(m.nextPaths, attrs...)
			} else if wantBorder {
				m.emitBorder(attrs, m.fs[i])
			}
		}
		m.levelNodes, m.nextNodes = m.nextNodes, m.levelNodes
		m.paths, m.nextPaths = m.nextPaths, m.paths
		if k == maxK || len(m.levelNodes) == 0 {
			return nil
		}

		// Join step: two frequent k-sets sharing their first k−1 items
		// are siblings in the trie; each ordered sibling pair yields
		// one (k+1)-candidate, kept only if its other k-subsets are
		// trie paths (anti-monotonicity; the two subsets obtained by
		// dropping either joined item are the joined leaves
		// themselves).
		m.candPaths = m.candPaths[:0]
		m.candParent = m.candParent[:0]
		for s := 0; s < len(m.levelNodes); {
			// The sibling run [s, e): consecutive leaves chained by
			// their trie sibling pointers share a parent.
			e := s
			for e+1 < len(m.levelNodes) && m.trie[m.levelNodes[e]].sibling == m.levelNodes[e+1] {
				e++
			}
			e++
			for gi := s; gi < e; gi++ {
				base := m.paths[gi*k : (gi+1)*k]
				for gj := gi + 1; gj < e; gj++ {
					item := int(m.trie[m.levelNodes[gj]].item)
					if !m.prunedSubsetsPresent(base, item) {
						continue
					}
					m.candPaths = append(m.candPaths, base...)
					m.candPaths = append(m.candPaths, item)
					m.candParent = append(m.candParent, m.levelNodes[gi])
				}
			}
			s = e
		}
	}
	return nil
}

// prunedSubsetsPresent checks the k-subsets of base∪{item} obtained by
// dropping one of base's first k−1 attributes (the remaining two
// subsets are the joined leaves, present by construction). The scratch
// subset lives in the Miner's prefix buffer.
func (m *Miner) prunedSubsetsPresent(base []int, item int) bool {
	k := len(base)
	for drop := 0; drop < k-1; drop++ {
		m.prefix = m.prefix[:0]
		m.prefix = append(m.prefix, base[:drop]...)
		m.prefix = append(m.prefix, base[drop+1:]...)
		m.prefix = append(m.prefix, item)
		if !m.trieContains(m.prefix) {
			return false
		}
	}
	return true
}

// Eclat mines frequent itemsets on the exact database by depth-first
// vertical intersection with the adaptive tidset/diffset
// representation (see EclatMode and the engine documentation in
// eclat.go). It produces the same collection as Apriori on a DBSource
// but avoids repeated scans; it runs on a fresh engine, so the results
// own their memory.
func Eclat(db *dataset.Database, minSupport float64, maxK int) []Result {
	return new(Miner).Eclat(db, minSupport, maxK)
}
