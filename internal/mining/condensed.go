package mining

import "repro/internal/dataset"

// Condensed representations (§1.1.1): the maximal and closed subsets of
// a mined collection. Both filters operate within the given collection,
// so when mining was truncated at maxK they are relative to that bound.

// FilterMaximal keeps itemsets with no frequent superset in rs — the
// most aggressive condensed representation (frequencies of subsets are
// not recoverable).
func FilterMaximal(rs []Result) []Result {
	var out []Result
	for _, r := range rs {
		if !hasSupersetWith(r, rs, func(Result) bool { return true }) {
			out = append(out, r)
		}
	}
	sortResults(out)
	return out
}

// FilterClosed keeps itemsets with no superset in rs of equal
// frequency — the lossless condensed representation (every frequent
// itemset's frequency equals that of its smallest closed superset).
func FilterClosed(rs []Result) []Result {
	var out []Result
	for _, r := range rs {
		same := func(sup Result) bool { return sup.Freq == r.Freq }
		if !hasSupersetWith(r, rs, same) {
			out = append(out, r)
		}
	}
	sortResults(out)
	return out
}

// hasSupersetWith reports whether rs contains a strict superset of
// r.Items satisfying pred.
func hasSupersetWith(r Result, rs []Result, pred func(Result) bool) bool {
	for _, s := range rs {
		if s.Items.Len() <= r.Items.Len() {
			continue
		}
		if containsAll(s.Items, r.Items) && pred(s) {
			return true
		}
	}
	return false
}

func containsAll(super, sub dataset.Itemset) bool {
	for _, a := range sub.Attrs() {
		if !super.Contains(a) {
			return false
		}
	}
	return true
}

// Rule is an association rule A ⇒ C with its quality measures.
type Rule struct {
	Antecedent dataset.Itemset
	Consequent dataset.Itemset
	Support    float64 // f(A ∪ C)
	Confidence float64 // f(A ∪ C) / f(A)
	Lift       float64 // confidence / f(C)
}

// Rules derives association rules from a mined collection: for every
// itemset of size ≥ 2 and every non-empty proper subset A, emit
// A ⇒ (items \ A) when confidence ≥ minConfidence. Frequencies are
// looked up in the collection itself (the Mannila–Toivonen "use the
// ε-adequate representation" workflow), so itemsets whose subsets were
// not mined are skipped.
func Rules(rs []Result, minConfidence float64) []Rule {
	freq := make(map[string]float64, len(rs))
	for _, r := range rs {
		freq[r.Items.Key()] = r.Freq
	}
	var out []Rule
	for _, r := range rs {
		k := r.Items.Len()
		if k < 2 {
			continue
		}
		attrs := r.Items.Attrs()
		// Enumerate non-empty proper subsets by bitmask.
		for mask := 1; mask < 1<<uint(k)-1; mask++ {
			var ant, con []int
			for i, a := range attrs {
				if mask>>uint(i)&1 == 1 {
					ant = append(ant, a)
				} else {
					con = append(con, a)
				}
			}
			antSet := dataset.MustItemset(ant...)
			fAnt, ok := freq[antSet.Key()]
			if !ok || fAnt == 0 {
				continue
			}
			conf := r.Freq / fAnt
			if conf < minConfidence {
				continue
			}
			conSet := dataset.MustItemset(con...)
			lift := 0.0
			if fCon, ok := freq[conSet.Key()]; ok && fCon > 0 {
				lift = conf / fCon
			}
			out = append(out, Rule{
				Antecedent: antSet,
				Consequent: conSet,
				Support:    r.Freq,
				Confidence: conf,
				Lift:       lift,
			})
		}
	}
	return out
}

// CompareCollections measures how a mined collection `got` (e.g. from a
// sketch) matches a reference collection `want` (exact mining):
// precision, recall, and the maximum absolute frequency deviation on
// the intersection.
type Comparison struct {
	Precision  float64
	Recall     float64
	MaxFreqErr float64
	TruePos    int
	FalsePos   int
	FalseNeg   int
}

// Compare computes the Comparison of got against want.
func Compare(got, want []Result) Comparison {
	wantF := make(map[string]float64, len(want))
	for _, r := range want {
		wantF[r.Items.Key()] = r.Freq
	}
	var c Comparison
	for _, g := range got {
		if f, ok := wantF[g.Items.Key()]; ok {
			c.TruePos++
			if e := abs(f - g.Freq); e > c.MaxFreqErr {
				c.MaxFreqErr = e
			}
		} else {
			c.FalsePos++
		}
	}
	c.FalseNeg = len(want) - c.TruePos
	if len(got) > 0 {
		c.Precision = float64(c.TruePos) / float64(len(got))
	}
	if len(want) > 0 {
		c.Recall = float64(c.TruePos) / float64(len(want))
	}
	return c
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
