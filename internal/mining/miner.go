package mining

import (
	"slices"

	"repro/internal/dataset"
)

// Miner is a reusable frequent-itemset mining engine. All four miners
// (Eclat, trie-Apriori, FP-Growth, Toivonen) run their scratch —
// tidset/diffset windows, trie node arenas, candidate paths, batched
// query buffers, result itemset storage — out of per-Miner arenas that
// the next call reuses, so steady-state mining on a warm Miner performs
// no per-candidate allocation (Eclat reaches 0 allocs/op).
//
// The price of reuse is aliasing: the Results returned by a Miner's
// methods view arenas owned by the Miner and stay valid only until the
// next call on the same Miner. Callers that need results to outlive the
// next mine must copy them (or use the package-level Apriori, Eclat,
// FPGrowth and Toivonen functions, which run each call on a fresh
// engine). A Miner must not be used concurrently; use one Miner per
// goroutine.
//
// The zero value is ready to use.
type Miner struct {
	words wordArena // tidset/diffset buffers (Eclat), path scratch

	// Result storage: itemset attributes are appended to items and
	// results are recorded as (offset, length) until the mine finishes,
	// so arena growth never invalidates an already-emitted itemset.
	items   []int
	recs    []resultRec
	results []Result

	// Border storage for the Toivonen negative border, kept separate
	// from recs so the two collections materialize independently.
	borderRecs    []resultRec
	borderResults []Result

	// Eclat scratch.
	nodes   [][]eclatNode // per-depth equivalence-class members
	prefix  []int
	sortBuf []int // emitSortedCopy scratch

	// Apriori trie scratch.
	trie       []trieNode
	levelNodes []int32 // frequent k-set leaves of the current level
	paths      []int   // attrs of levelNodes, flat, stride k
	candPaths  []int   // attrs of generated candidates, flat, stride k+1
	candParent []int32 // trie node the candidate extends
	nextNodes  []int32
	nextPaths  []int
	ts         []dataset.Itemset
	fs         []float64

	// FP-Growth scratch.
	fpTrees   []fpTreeScratch // per-depth conditional trees
	condCount []int32         // per-item conditional counts, cleared via condItems
	condItems []int32         // items touched in condCount this round
	rowOnes   []int
	rowBuf    []int
	itemRank  []int32
	itemOrder []int
	suffix    []int
}

// NewMiner returns a fresh mining engine. Equivalent to new(Miner);
// provided for discoverability.
func NewMiner() *Miner { return new(Miner) }

// resultRec is a Result before materialization: attrs live at
// items[off:off+n] in the Miner's arena.
type resultRec struct {
	off, n int
	freq   float64
}

// beginMine resets the per-call arenas (capacity is kept).
func (m *Miner) beginMine() {
	m.words.reset()
	m.items = m.items[:0]
	m.recs = m.recs[:0]
	m.borderRecs = m.borderRecs[:0]
}

// emit records prefix/freq as a pending result.
func (m *Miner) emit(attrs []int, freq float64) {
	off := len(m.items)
	m.items = append(m.items, attrs...)
	m.recs = append(m.recs, resultRec{off: off, n: len(attrs), freq: freq})
}

// emitBorder records an infrequent candidate for the negative border.
func (m *Miner) emitBorder(attrs []int, freq float64) {
	off := len(m.items)
	m.items = append(m.items, attrs...)
	m.borderRecs = append(m.borderRecs, resultRec{off: off, n: len(attrs), freq: freq})
}

// finish materializes the pending records into sorted Results. The
// itemsets are zero-copy views into the Miner's arena (stable now: the
// mine is over, so items no longer grows before the next call).
func (m *Miner) finish() []Result {
	m.results = materialize(m.results[:0], m.recs, m.items)
	sortResults(m.results)
	if len(m.results) == 0 {
		return nil
	}
	return m.results
}

// finishBorder materializes the border records (Toivonen).
func (m *Miner) finishBorder() []Result {
	m.borderResults = materialize(m.borderResults[:0], m.borderRecs, m.items)
	sortResults(m.borderResults)
	return m.borderResults
}

func materialize(dst []Result, recs []resultRec, items []int) []Result {
	for _, r := range recs {
		dst = append(dst, Result{
			Items: dataset.ItemsetView(items[r.off : r.off+r.n : r.off+r.n]),
			Freq:  r.freq,
		})
	}
	return dst
}

// nodesAt returns the (emptied) eclat class scratch for a depth.
func (m *Miner) nodesAt(depth int) []eclatNode {
	for depth >= len(m.nodes) {
		m.nodes = append(m.nodes, nil)
	}
	return m.nodes[depth][:0]
}

// minCountFor converts a fractional support threshold into the row
// count ⌈minSupport·n⌉ every miner gates on.
func minCountFor(minSupport float64, n int) int {
	mc := int(minSupport * float64(n))
	if float64(mc) < minSupport*float64(n) {
		mc++
	}
	return mc
}

// sortResults orders by size then lexicographic attrs, for
// determinism. slices.SortFunc, unlike sort.Slice, boxes nothing, so
// sorting is allocation-free.
func sortResults(rs []Result) {
	slices.SortFunc(rs, compareResults)
}

func compareResults(x, y Result) int {
	a, b := x.Items, y.Items
	if a.Len() != b.Len() {
		return a.Len() - b.Len()
	}
	aa, ba := a.Attrs(), b.Attrs()
	for i := range aa {
		if aa[i] != ba[i] {
			return aa[i] - ba[i]
		}
	}
	return 0
}

// wordArena hands out []uint64 scratch in stack (mark/release) order.
// Storage is a chain of fixed blocks, never a reallocated slice, so a
// slice handed out earlier stays valid while later allocations grow the
// arena — the property the Eclat recursion needs, where every depth's
// class members must outlive the allocations of the depths below it.
// Blocks persist across reset, so a warm arena allocates nothing.
type wordArena struct {
	blocks [][]uint64
	cur    int // active block index
	off    int // next free word in the active block
}

// arenaMark is a position in the arena; release rewinds to it.
type arenaMark struct{ cur, off int }

// arenaBlockWords is the minimum block size: large enough that a mine
// over a 100k-row database (1563-word tidsets) fits dozens of class
// members per block, small enough that a toy mine stays cheap.
const arenaBlockWords = 1 << 14

func (a *wordArena) reset() { a.cur, a.off = 0, 0 }

func (a *wordArena) mark() arenaMark { return arenaMark{a.cur, a.off} }

func (a *wordArena) release(m arenaMark) { a.cur, a.off = m.cur, m.off }

// alloc returns a zero-initialized-by-writer slice of nw words. The
// contents are unspecified; every caller fully overwrites it.
func (a *wordArena) alloc(nw int) []uint64 {
	for {
		if a.cur < len(a.blocks) {
			b := a.blocks[a.cur]
			if a.off+nw <= len(b) {
				s := b[a.off : a.off+nw : a.off+nw]
				a.off += nw
				return s
			}
			a.cur++
			a.off = 0
			continue
		}
		size := arenaBlockWords
		if size < nw {
			size = nw
		}
		a.blocks = append(a.blocks, make([]uint64, size))
	}
}
