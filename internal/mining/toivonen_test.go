package mining

import (
	"context"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/stream"
)

func sampleOf(db *dataset.Database, size int, seed uint64) *dataset.Database {
	res, err := stream.NewReservoir(db.NumCols(), size, seed)
	if err != nil {
		panic(err)
	}
	for i := 0; i < db.NumRows(); i++ {
		res.Add(db.Row(i))
	}
	return res.Database()
}

func TestToivonenExactWhenComplete(t *testing.T) {
	r := rng.New(70)
	db := dataset.GenMarketBasket(r, 20000, 24, dataset.BasketConfig{
		MeanSize:     4,
		ZipfExponent: 1.3,
		Bundles:      [][]int{{5, 6}, {10, 11, 12}},
		BundleProb:   0.3,
	})
	sample := sampleOf(db, 4000, 1)
	const minSup, lowered, maxK = 0.1, 0.07, 3
	rep, err := Toivonen(db, sample, minSup, lowered, maxK)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Complete() {
		t.Fatalf("expected a complete pass; border misses: %v", rep.BorderMisses)
	}
	exact := Eclat(db, minSup, maxK)
	if len(rep.Frequent) != len(exact) {
		t.Fatalf("toivonen %d itemsets, exact %d", len(rep.Frequent), len(exact))
	}
	for i := range exact {
		if !rep.Frequent[i].Items.Equal(exact[i].Items) {
			t.Fatalf("itemset mismatch at %d: %v vs %v", i, rep.Frequent[i].Items, exact[i].Items)
		}
		if math.Abs(rep.Frequent[i].Freq-exact[i].Freq) > 1e-12 {
			t.Fatalf("frequency mismatch at %d", i)
		}
	}
	if rep.CandidatesChecked == 0 {
		t.Fatal("no candidates checked?")
	}
}

func TestToivonenFrequenciesAreExact(t *testing.T) {
	// Whatever the sample says, reported frequencies come from the
	// full database.
	r := rng.New(71)
	db := dataset.GenUniform(r, 5000, 10, 0.4)
	sample := sampleOf(db, 300, 2)
	rep, err := Toivonen(db, sample, 0.15, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range rep.Frequent {
		if got := db.Frequency(res.Items); got != res.Freq {
			t.Fatalf("reported %g, database says %g for %v", res.Freq, got, res.Items)
		}
		if res.Freq < 0.15 {
			t.Fatalf("infrequent itemset reported: %v %g", res.Items, res.Freq)
		}
	}
}

func TestToivonenSoundnessAlways(t *testing.T) {
	// Even with an absurdly small sample the output must be a sound
	// subset of the true frequent collection (verification guarantees
	// no false positives; misses are flagged, not silent).
	r := rng.New(72)
	db := dataset.GenMarketBasket(r, 10000, 16, dataset.BasketConfig{
		MeanSize: 4, ZipfExponent: 1.2, Bundles: [][]int{{1, 2}}, BundleProb: 0.4,
	})
	sample := sampleOf(db, 20, 3)
	rep, err := Toivonen(db, sample, 0.1, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	exact := make(map[string]bool)
	for _, e := range Eclat(db, 0.1, 3) {
		exact[e.Items.Key()] = true
	}
	for _, res := range rep.Frequent {
		if !exact[res.Items.Key()] {
			t.Fatalf("false positive survived verification: %v", res.Items)
		}
	}
}

func TestToivonenValidation(t *testing.T) {
	db := dataset.NewDatabase(4)
	db.AddRowAttrs(0)
	bad := dataset.NewDatabase(5)
	if _, err := Toivonen(db, bad, 0.1, 0.05, 2); err == nil {
		t.Error("column mismatch should fail")
	}
	ok := dataset.NewDatabase(4)
	ok.AddRowAttrs(0)
	if _, err := Toivonen(db, ok, 0.1, 0.2, 2); err == nil {
		t.Error("lowered > minSupport should fail")
	}
}

func TestNegativeBorderDefinition(t *testing.T) {
	// On the toy DB at minsup 0.4: frequent = {0},{1},{2},{01},{02},{12};
	// the border must contain {3} (infrequent singleton) and {0,1,2}
	// (all 2-subsets frequent, itself 0.2 < 0.4).
	freq, border, err := aprioriWithBorder(context.Background(), query.FromDatabase(toyDB()), 0.4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(freq) != 6 {
		t.Fatalf("frequent count %d, want 6", len(freq))
	}
	wantBorder := map[string]bool{"{3}": true, "{0,1,2}": true}
	if len(border) != len(wantBorder) {
		t.Fatalf("border = %v, want {3} and {0,1,2}", border)
	}
	for _, b := range border {
		if !wantBorder[b.Items.Key()] {
			t.Fatalf("unexpected border member %v", b.Items)
		}
	}
}
