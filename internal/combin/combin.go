// Package combin provides the combinatorial primitives used throughout
// the reproduction: overflow-safe binomial coefficients, log-binomials
// for space formulas such as O(ε⁻¹ d log(C(d,k)/δ)), and a colex
// ranking/unranking bijection between {0,…,C(d,k)−1} and k-subsets of
// [d].
//
// The colex bijection is load-bearing in two places: RELEASE-ANSWERS
// (Definition 7) lays its precomputed answers out in colex rank order,
// and the Theorem 13 hard family assigns "the i-th (k−1)-subset of the
// first d/2 attributes" to row i.
package combin

import (
	"fmt"
	"math"
)

// MaxBinomial is the cap above which Binomial saturates. It is chosen
// so that products and small multiples of binomials still fit in int64.
const MaxBinomial = int64(1) << 62

// Binomial returns C(n, k), saturating at MaxBinomial on overflow.
// It returns 0 for k < 0 or k > n.
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		// c = c * (n-i) / (i+1), exactly: c*(n-i) is divisible by (i+1)
		// only after accumulating; use the standard trick of dividing by
		// gcd-free order: multiply then divide is exact because
		// C(n,i+1) = C(n,i)*(n-i)/(i+1) is an integer.
		hi, lo := mul64(c, int64(n-i))
		if hi != 0 || lo > MaxBinomial {
			return MaxBinomial
		}
		c = lo / int64(i+1)
	}
	return c
}

// mul64 multiplies two non-negative int64s returning (high, low) of the
// 128-bit product; high != 0 signals overflow past 63 bits.
func mul64(a, b int64) (hi, lo int64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	ll := al * bl
	lh := al * bh
	hl := ah * bl
	hh := ah * bh
	mid := lh + hl + (ll >> 32)
	lo = (mid << 32) | (ll & mask)
	hi = hh + (mid >> 32)
	if lo < 0 {
		hi++ // sign bit spilled
	}
	return hi, lo
}

// LogBinomial returns ln C(n, k) computed stably via log-gamma, or -Inf
// when C(n,k) = 0.
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// Rank returns the colexicographic rank of the k-subset `set` of [n].
// set must be strictly increasing. The colex rank of {s_1<…<s_k} is
// Σ C(s_i, i).
func Rank(set []int) int64 {
	var r int64
	for i, s := range set {
		if i > 0 && set[i-1] >= s {
			panic(fmt.Sprintf("combin: Rank input not strictly increasing: %v", set))
		}
		r += Binomial(s, i+1)
	}
	return r
}

// Unrank writes into out the k-subset of [n] with colexicographic rank
// r, where k = len(out). It panics if r is out of range [0, C(n,k)).
func Unrank(r int64, n int, out []int) {
	k := len(out)
	if r < 0 || r >= Binomial(n, k) {
		panic(fmt.Sprintf("combin: Unrank rank %d out of range for C(%d,%d)", r, n, k))
	}
	m := n
	for i := k; i >= 1; i-- {
		// Find largest s in [i-1, m-1] with C(s, i) <= r.
		s := i - 1
		for s+1 < m && Binomial(s+1, i) <= r {
			s++
		}
		out[i-1] = s
		r -= Binomial(s, i)
		m = s
	}
}

// Subset returns the k-subset of [n] with colex rank r as a new slice.
func Subset(r int64, n, k int) []int {
	out := make([]int, k)
	Unrank(r, n, out)
	return out
}

// ForEachSubset calls fn once for each k-subset of [n] in colex order,
// passing a reused buffer that fn must not retain. If fn returns false,
// iteration stops early.
func ForEachSubset(n, k int, fn func(set []int) bool) {
	if k < 0 || k > n {
		return
	}
	if k == 0 {
		fn(nil)
		return
	}
	set := make([]int, k)
	for i := range set {
		set[i] = i
	}
	for {
		if !fn(set) {
			return
		}
		// Advance in colex order: find lowest position that can move.
		i := 0
		for i < k-1 && set[i]+1 == set[i+1] {
			i++
		}
		if i == k-1 && set[i]+1 == n {
			return
		}
		set[i]++
		for j := 0; j < i; j++ {
			set[j] = j
		}
	}
}

// NumSubsets returns C(n,k) as an int, panicking if it does not fit.
func NumSubsets(n, k int) int {
	b := Binomial(n, k)
	if b >= MaxBinomial || b > int64(math.MaxInt32)*64 {
		panic(fmt.Sprintf("combin: C(%d,%d) too large to enumerate", n, k))
	}
	return int(b)
}
