package combin

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {60, 30, 118264581564861424}, {4, 5, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for k := 1; k < n; k++ {
			want := Binomial(n-1, k-1) + Binomial(n-1, k)
			if got := Binomial(n, k); got != want {
				t.Fatalf("Pascal fails at C(%d,%d): %d != %d", n, k, got, want)
			}
		}
	}
}

func TestBinomialSaturates(t *testing.T) {
	if got := Binomial(300, 150); got != MaxBinomial {
		t.Errorf("Binomial(300,150) = %d, want saturation %d", got, MaxBinomial)
	}
}

func TestLogBinomial(t *testing.T) {
	for n := 0; n <= 50; n += 5 {
		for k := 0; k <= n; k += 3 {
			want := math.Log(float64(Binomial(n, k)))
			got := LogBinomial(n, k)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("LogBinomial(%d,%d) = %g, want %g", n, k, got, want)
			}
		}
	}
	if !math.IsInf(LogBinomial(3, 5), -1) {
		t.Error("LogBinomial(3,5) should be -Inf")
	}
}

func TestRankUnrankExhaustive(t *testing.T) {
	for _, nk := range [][2]int{{6, 3}, {8, 2}, {10, 4}, {5, 5}, {7, 1}} {
		n, k := nk[0], nk[1]
		total := NumSubsets(n, k)
		seen := make(map[int64]bool)
		var r int64
		ForEachSubset(n, k, func(set []int) bool {
			rank := Rank(set)
			if rank != r {
				t.Fatalf("C(%d,%d): colex enumeration rank %d, Rank says %d for %v", n, k, r, rank, set)
			}
			if seen[rank] {
				t.Fatalf("duplicate rank %d", rank)
			}
			seen[rank] = true
			got := Subset(rank, n, k)
			for i := range got {
				if got[i] != set[i] {
					t.Fatalf("Unrank(%d) = %v, want %v", rank, got, set)
				}
			}
			r++
			return true
		})
		if int(r) != total {
			t.Fatalf("enumerated %d subsets of C(%d,%d), want %d", r, n, k, total)
		}
	}
}

func TestForEachSubsetEarlyStop(t *testing.T) {
	count := 0
	ForEachSubset(10, 3, func(set []int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop: count = %d, want 5", count)
	}
}

func TestForEachSubsetEdge(t *testing.T) {
	calls := 0
	ForEachSubset(5, 0, func(set []int) bool { calls++; return true })
	if calls != 1 {
		t.Errorf("k=0 should yield exactly the empty set, got %d calls", calls)
	}
	calls = 0
	ForEachSubset(3, 4, func(set []int) bool { calls++; return true })
	if calls != 0 {
		t.Errorf("k>n should yield nothing, got %d calls", calls)
	}
}

// Property: Rank and Unrank are inverse bijections on random subsets.
func TestQuickRankUnrank(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		k := 1 + r.Intn(n)
		// random k-subset
		perm := r.Perm(n)[:k]
		// sort ascending (insertion, small k)
		for i := 1; i < k; i++ {
			for j := i; j > 0 && perm[j-1] > perm[j]; j-- {
				perm[j-1], perm[j] = perm[j], perm[j-1]
			}
		}
		rank := Rank(perm)
		if rank < 0 || rank >= Binomial(n, k) {
			return false
		}
		got := Subset(rank, n, k)
		for i := range got {
			if got[i] != perm[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestUnrankPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unrank out-of-range should panic")
		}
	}()
	Unrank(Binomial(6, 3), 6, make([]int, 3))
}

func TestRankPanicsUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Rank on unsorted input should panic")
		}
	}()
	Rank([]int{3, 1})
}

func BenchmarkUnrank(b *testing.B) {
	out := make([]int, 4)
	total := Binomial(64, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Unrank(int64(i)%total, 64, out)
	}
}
