// Package privacy implements the differentially private itemset
// frequency release that footnote 3 of the paper connects to sketching.
//
// The paper's lower-bound machinery is imported wholesale from the
// differential-privacy literature (KRSU, De, BUV), and footnote 3
// sketches the formal bridge: an accurate sketch yields an accurate
// DP mechanism via the exponential mechanism, so DP accuracy lower
// bounds imply sketch size lower bounds. This package provides the
// classical baseline DP mechanism — the Laplace release of all C(d,k)
// itemset frequencies [DMNS06, BCD+07] — so the bridge can be measured
// from the other side: at ε-DP, the release is a valid For-All
// estimator sketch once n is large enough, and its error decays as
// Θ(C(d,k)/(n·ε_DP)), the 1/n shape that footnote 3's argument turns
// into Ω(t − εn)-style sketch bounds.
package privacy

import (
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// Release is an ε-differentially-private answer table for all
// k-itemset frequency queries on a fixed database.
type Release struct {
	d, k  int
	n     int
	epsDP float64
	scale float64 // Laplace scale b of the per-query noise
	vals  []float64
}

// Laplace draws one Lap(0, b) variate from r by inverse CDF.
func Laplace(r *rng.RNG, b float64) float64 {
	u := r.Float64() - 0.5
	sign := 1.0
	if u < 0 {
		sign = -1
		u = -u
	}
	// u ∈ [0, 0.5): inverse CDF of the folded exponential.
	return -b * sign * math.Log(1-2*u)
}

// NewLaplaceRelease builds the ε-DP release: every k-itemset frequency
// plus independent Laplace noise of scale Δ₁/ε_DP, where the L1
// sensitivity of the full query vector is Δ₁ = C(d,k)/n (one row change
// moves each of the C(d,k) frequencies by at most 1/n).
func NewLaplaceRelease(db *dataset.Database, k int, epsDP float64, seed uint64) (*Release, error) {
	if k < 1 || k > db.NumCols() {
		return nil, fmt.Errorf("privacy: k = %d out of range for d = %d", k, db.NumCols())
	}
	if epsDP <= 0 {
		return nil, fmt.Errorf("privacy: eps_DP = %g must be positive", epsDP)
	}
	n := db.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("privacy: empty database")
	}
	d := db.NumCols()
	q := combin.Binomial(d, k)
	if q > 1<<22 {
		return nil, fmt.Errorf("privacy: C(%d,%d) = %d queries is too many to release", d, k, q)
	}
	scale := float64(q) / (float64(n) * epsDP)
	r := rng.New(seed)
	vals := make([]float64, q)
	db.BuildColumnIndex()
	i := 0
	combin.ForEachSubset(d, k, func(set []int) bool {
		f := db.Frequency(dataset.MustItemset(set...))
		vals[i] = f + Laplace(r, scale)
		i++
		return true
	})
	return &Release{d: d, k: k, n: n, epsDP: epsDP, scale: scale, vals: vals}, nil
}

// Estimate returns the noisy frequency for a k-itemset. It panics if
// |T| ≠ k.
func (rl *Release) Estimate(t dataset.Itemset) float64 {
	if t.Len() != rl.k {
		panic(fmt.Sprintf("privacy: |T| = %d, release k = %d", t.Len(), rl.k))
	}
	return rl.vals[combin.Rank(t.Attrs())]
}

// Scale returns the per-query Laplace scale b.
func (rl *Release) Scale() float64 { return rl.scale }

// NumQueries returns C(d,k).
func (rl *Release) NumQueries() int { return len(rl.vals) }

// PredictedMaxError returns the high-probability bound on the maximum
// error over all queries: b·ln(C(d,k)/δ) (union bound over Laplace
// tails).
func (rl *Release) PredictedMaxError(delta float64) float64 {
	return rl.scale * math.Log(float64(len(rl.vals))/delta)
}

// MaxError measures the actual maximum error against the database the
// release was built from.
func (rl *Release) MaxError(db *dataset.Database) float64 {
	maxErr := 0.0
	i := 0
	db.BuildColumnIndex()
	combin.ForEachSubset(rl.d, rl.k, func(set []int) bool {
		f := db.Frequency(dataset.MustItemset(set...))
		if e := math.Abs(rl.vals[i] - f); e > maxErr {
			maxErr = e
		}
		i++
		return true
	})
	return maxErr
}
