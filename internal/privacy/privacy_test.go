package privacy

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rng"
)

func TestLaplaceDistribution(t *testing.T) {
	r := rng.New(1)
	const b = 2.5
	const n = 200000
	sum, sumAbs := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := Laplace(r, b)
		sum += x
		sumAbs += math.Abs(x)
	}
	mean := sum / n
	meanAbs := sumAbs / n // E|X| = b for Laplace
	if math.Abs(mean) > 0.05 {
		t.Errorf("Laplace mean %g, want ~0", mean)
	}
	if math.Abs(meanAbs-b) > 0.05 {
		t.Errorf("Laplace E|X| = %g, want %g", meanAbs, b)
	}
}

func TestReleaseValidation(t *testing.T) {
	db := dataset.NewDatabase(4)
	db.AddRowAttrs(0)
	if _, err := NewLaplaceRelease(db, 0, 1, 1); err == nil {
		t.Error("k = 0 should fail")
	}
	if _, err := NewLaplaceRelease(db, 5, 1, 1); err == nil {
		t.Error("k > d should fail")
	}
	if _, err := NewLaplaceRelease(db, 1, 0, 1); err == nil {
		t.Error("eps_DP = 0 should fail")
	}
	empty := dataset.NewDatabase(4)
	if _, err := NewLaplaceRelease(empty, 1, 1, 1); err == nil {
		t.Error("empty database should fail")
	}
}

func TestReleaseAccuracyScalesWithN(t *testing.T) {
	// Footnote 3's shape: at fixed eps_DP the error decays as 1/n, so
	// for large n the DP release is a valid For-All estimator sketch.
	r := rng.New(2)
	const d, k, epsDP = 10, 2, 1.0
	var errSmall, errLarge float64
	{
		db := dataset.GenUniform(r, 500, d, 0.3)
		rel, err := NewLaplaceRelease(db, k, epsDP, 7)
		if err != nil {
			t.Fatal(err)
		}
		errSmall = rel.MaxError(db)
	}
	{
		db := dataset.GenUniform(r, 50000, d, 0.3)
		rel, err := NewLaplaceRelease(db, k, epsDP, 8)
		if err != nil {
			t.Fatal(err)
		}
		errLarge = rel.MaxError(db)
	}
	if errLarge >= errSmall/10 {
		t.Fatalf("100x rows should shrink error ~100x: small-n %g vs large-n %g", errSmall, errLarge)
	}
}

func TestReleaseWithinPredictedBound(t *testing.T) {
	r := rng.New(3)
	db := dataset.GenUniform(r, 20000, 12, 0.3)
	rel, err := NewLaplaceRelease(db, 2, 1.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got, bound := rel.MaxError(db), rel.PredictedMaxError(0.01); got > bound {
		t.Fatalf("max error %g exceeds the delta=0.01 bound %g", got, bound)
	}
	if rel.NumQueries() != 66 {
		t.Fatalf("queries = %d, want C(12,2)=66", rel.NumQueries())
	}
	if rel.Scale() != 66.0/(20000*1.0) {
		t.Fatalf("scale = %g", rel.Scale())
	}
}

func TestReleaseEstimatePanicsOnWrongSize(t *testing.T) {
	r := rng.New(4)
	db := dataset.GenUniform(r, 100, 6, 0.5)
	rel, err := NewLaplaceRelease(db, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong itemset size should panic")
		}
	}()
	rel.Estimate(dataset.MustItemset(1))
}

func TestReleaseNoiseIsSeeded(t *testing.T) {
	r := rng.New(5)
	db := dataset.GenUniform(r, 1000, 8, 0.4)
	a, _ := NewLaplaceRelease(db, 2, 1, 42)
	b, _ := NewLaplaceRelease(db, 2, 1, 42)
	c, _ := NewLaplaceRelease(db, 2, 1, 43)
	T := dataset.MustItemset(2, 5)
	if a.Estimate(T) != b.Estimate(T) {
		t.Error("same seed must reproduce the release")
	}
	if a.Estimate(T) == c.Estimate(T) {
		t.Error("different seeds should differ")
	}
}
