package query

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
)

// testDB builds a deterministic database over d attributes.
func testDB(t testing.TB, d, rows int) *dataset.Database {
	t.Helper()
	db := dataset.NewDatabase(d)
	for i := 0; i < rows; i++ {
		db.AddRowAttrs(i%d, (i*7+1)%d, (i*13+2)%d)
	}
	return db
}

// dbSource adapts a database to the minimal Source shape (Database
// itself exposes NumCols, not NumAttrs).
type dbSource struct{ db *dataset.Database }

func (s dbSource) Frequency(t dataset.Itemset) float64 { return s.db.Frequency(t) }
func (s dbSource) NumAttrs() int                       { return s.db.NumCols() }

// allPairs enumerates every 2-itemset over d attributes — enough to
// span several batchChunk-sized chunks for d ≥ 33.
func allPairs(d int) []dataset.Itemset {
	var ts []dataset.Itemset
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			ts = append(ts, dataset.MustItemset(i, j))
		}
	}
	return ts
}

// TestFromDatabaseMatchesFrequency pins the exact adapter: EstimateMany
// over a multi-chunk batch returns bit-identical values to the serial
// Frequency path, and Contains mirrors Count > 0.
func TestFromDatabaseMatchesFrequency(t *testing.T) {
	db := testDB(t, 56, 4000)
	q := FromDatabase(db)
	ts := allPairs(56)
	if len(ts) <= 4*batchChunk {
		t.Fatalf("want a batch spanning several chunks, got %d queries", len(ts))
	}
	out := make([]float64, len(ts))
	ctx := context.Background()
	if err := q.EstimateMany(ctx, ts, out); err != nil {
		t.Fatal(err)
	}
	for i, T := range ts {
		if want := db.Frequency(T); out[i] != want {
			t.Fatalf("query %d: EstimateMany %g, Frequency %g", i, out[i], want)
		}
		single, err := q.Estimate(ctx, T)
		if err != nil || single != out[i] {
			t.Fatalf("query %d: Estimate %g (%v) vs batch %g", i, single, err, out[i])
		}
		has, err := q.Contains(ctx, T)
		if err != nil || has != (db.Count(T) > 0) {
			t.Fatalf("query %d: Contains %v (%v), Count %d", i, has, err, db.Count(T))
		}
	}
	if q.NumAttrs() != 56 {
		t.Errorf("NumAttrs = %d", q.NumAttrs())
	}
}

// TestFromSketchShardedMatchesSerial is the chunk-sharding equivalence
// check: the CPU-sharded EstimateMany of a sketch querier returns
// exactly the values of one-at-a-time Estimate calls, in order.
func TestFromSketchShardedMatchesSerial(t *testing.T) {
	db := testDB(t, 56, 2000)
	p := core.Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: core.ForEach, Task: core.Estimator}
	sk, err := core.Subsample{Seed: 3, SampleOverride: 500}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	es := sk.(core.EstimatorSketch)
	q := FromSketch(sk)
	ts := allPairs(56)
	out := make([]float64, len(ts))
	ctx := context.Background()
	if err := q.EstimateMany(ctx, ts, out); err != nil {
		t.Fatal(err)
	}
	for i, T := range ts {
		if want := es.Estimate(T); out[i] != want {
			t.Fatalf("query %d: sharded %g, serial %g", i, out[i], want)
		}
	}
}

// TestEstimateManyBatchValidation pins the parallel-slice check: a
// length mismatch fails with core.ErrInvalidParams on every adapter.
func TestEstimateManyBatchValidation(t *testing.T) {
	db := testDB(t, 8, 50)
	p := core.Params{K: 2, Eps: 0.2, Delta: 0.2, Mode: core.ForEach, Task: core.Estimator}
	sk, err := core.Subsample{Seed: 1, SampleOverride: 20}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	ts := allPairs(8)
	for name, q := range map[string]Querier{
		"database": FromDatabase(db),
		"sketch":   FromSketch(sk),
		"source":   FromSource(dbSource{db}),
	} {
		err := q.EstimateMany(context.Background(), ts, make([]float64, len(ts)-1))
		if !errors.Is(err, core.ErrInvalidParams) {
			t.Errorf("%s: err = %v, want ErrInvalidParams", name, err)
		}
	}
}

// TestFromSketchTaskAndSizeErrors pins the typed error surface:
// indicator-only sketches refuse Estimate/EstimateMany with
// ErrTaskMismatch, and RELEASE-ANSWERS rejects wrong-size itemsets
// with ErrWrongItemsetSize instead of panicking.
func TestFromSketchTaskAndSizeErrors(t *testing.T) {
	db := testDB(t, 10, 200)
	p := core.Params{K: 2, Eps: 0.2, Delta: 0.2, Mode: core.ForEach, Task: core.Indicator}
	sk, err := core.ReleaseAnswers{}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	q := FromSketch(sk)
	ctx := context.Background()
	pair := dataset.MustItemset(1, 2)
	if _, err := q.Estimate(ctx, pair); !errors.Is(err, core.ErrTaskMismatch) {
		t.Errorf("Estimate on indicator sketch: %v", err)
	}
	if err := q.EstimateMany(ctx, []dataset.Itemset{pair}, make([]float64, 1)); !errors.Is(err, core.ErrTaskMismatch) {
		t.Errorf("EstimateMany on indicator sketch: %v", err)
	}
	if _, err := q.Contains(ctx, dataset.MustItemset(1, 2, 3)); !errors.Is(err, core.ErrWrongItemsetSize) {
		t.Errorf("wrong-size Contains: %v", err)
	}
	if _, err := q.Contains(ctx, pair); err != nil {
		t.Errorf("right-size Contains: %v", err)
	}
}

// TestCancelledContext pins the entry checks: an already-cancelled
// context surfaces as ctx.Err() from every method of every adapter.
func TestCancelledContext(t *testing.T) {
	db := testDB(t, 12, 100)
	p := core.Params{K: 2, Eps: 0.2, Delta: 0.2, Mode: core.ForEach, Task: core.Estimator}
	sk, err := core.Subsample{Seed: 2, SampleOverride: 30}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ts := allPairs(12)
	out := make([]float64, len(ts))
	for name, q := range map[string]Querier{
		"database": FromDatabase(db),
		"sketch":   FromSketch(sk),
		"source":   FromSource(dbSource{db}),
	} {
		if _, err := q.Contains(ctx, ts[0]); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Contains err = %v", name, err)
		}
		if _, err := q.Estimate(ctx, ts[0]); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: Estimate err = %v", name, err)
		}
		if err := q.EstimateMany(ctx, ts, out); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: EstimateMany err = %v", name, err)
		}
	}
}

// cancellingSource cancels its context after a fixed number of
// Frequency calls and records every query index it served, in order.
type cancellingSource struct {
	d       int
	cancel  context.CancelFunc
	after   int
	calls   int
	served  []float64
	nocancl bool
}

func (s *cancellingSource) NumAttrs() int { return s.d }

func (s *cancellingSource) Frequency(t dataset.Itemset) float64 {
	s.calls++
	if !s.nocancl && s.calls == s.after {
		s.cancel()
	}
	v := float64(s.calls)
	s.served = append(s.served, v)
	return v
}

// TestFromSourceMidBatchCancellation cancels the context from inside
// the batch: EstimateMany must stop within one chunk of the
// cancellation point and report ctx.Err(), not run the batch to
// completion.
func TestFromSourceMidBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	src := &cancellingSource{d: 64, cancel: cancel, after: 300}
	q := FromSource(src)
	ts := allPairs(64) // 2016 queries ≫ the cancellation point
	out := make([]float64, len(ts))
	err := q.EstimateMany(ctx, ts, out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if src.calls >= len(ts) {
		t.Errorf("batch ran to completion (%d calls) despite cancellation", src.calls)
	}
	// The context is checked between chunks, so at most the chunk in
	// flight finishes after the cancel.
	if max := ((src.after/batchChunk)+2)*batchChunk - 1; src.calls > max {
		t.Errorf("%d calls after cancelling at %d; want ≤ %d (one chunk of slack)", src.calls, src.after, max)
	}
}

// TestFromSourceSerialFallback pins the thread-safety contract: a
// Source of unknown thread-safety is queried strictly serially and in
// index order — the cancellingSource mutates itself without locks, so
// any parallel issue would also trip the race detector.
func TestFromSourceSerialFallback(t *testing.T) {
	src := &cancellingSource{d: 64, nocancl: true}
	q := FromSource(src)
	ts := allPairs(64)
	out := make([]float64, len(ts))
	if err := q.EstimateMany(context.Background(), ts, out); err != nil {
		t.Fatal(err)
	}
	if src.calls != len(ts) {
		t.Fatalf("%d calls for %d queries", src.calls, len(ts))
	}
	for i, v := range out {
		// Frequency returns its call sequence number, so in-order
		// serial issue means out is exactly 1, 2, 3, ...
		if v != float64(i+1) {
			t.Fatalf("query %d served out of order: got sequence %g", i, v)
		}
	}
}

// TestEstimateManyConcatenationInvariant pins the batching identity
// the service tier's request coalescer depends on: estimating a
// concatenation of several batches in one EstimateMany call yields
// bit-identical answers, in order, to estimating each batch on its
// own. Each itemset's estimate must depend only on that itemset and
// the underlying data — never on its companions in the batch.
func TestEstimateManyConcatenationInvariant(t *testing.T) {
	db := testDB(t, 56, 3000)
	p := core.Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: core.ForEach, Task: core.Estimator}
	sk, err := core.Subsample{Seed: 9, SampleOverride: 600}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	queriers := map[string]Querier{
		"database": FromDatabase(db),
		"sketch":   FromSketch(sk),
		"source":   FromSource(dbSource{db}),
	}
	all := allPairs(56)
	// Uneven splits, including a singleton and an empty batch, so the
	// concatenation crosses chunk boundaries at odd offsets.
	splits := []int{0, 1, 7, 300, 301, len(all)}
	ctx := context.Background()
	for name, q := range queriers {
		whole := make([]float64, len(all))
		if err := q.EstimateMany(ctx, all, whole); err != nil {
			t.Fatalf("%s: concatenated batch: %v", name, err)
		}
		for i := 0; i+1 < len(splits); i++ {
			lo, hi := splits[i], splits[i+1]
			part := make([]float64, hi-lo)
			if err := q.EstimateMany(ctx, all[lo:hi], part); err != nil {
				t.Fatalf("%s: sub-batch [%d:%d]: %v", name, lo, hi, err)
			}
			for j, v := range part {
				if v != whole[lo+j] {
					t.Fatalf("%s: query %d: sub-batch %g != concatenated %g", name, lo+j, v, whole[lo+j])
				}
			}
		}
	}
}
