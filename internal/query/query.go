// Package query defines the unified, context-aware read interface over
// itemset frequency data: the Querier. It is the contract shared by
// exact databases (repro/internal/dataset), every sketch produced by
// repro/internal/core, and ad-hoc frequency sources, so the miners and
// the experiment harness run unchanged against any of them.
//
// The interface is deliberately batched: EstimateMany answers a slice
// of queries in one call, sharding the batch across CPUs where the
// backend is safe for concurrent use and checking the context between
// chunks so a cancelled batch stops within one chunk of work. All
// errors wrap the core sentinel taxonomy (core.ErrInvalidParams,
// core.ErrTaskMismatch, core.ErrWrongItemsetSize) and are matched with
// errors.Is.
package query

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataset"
)

// Querier answers itemset frequency questions over a universe of
// NumAttrs attributes.
//
// Contains is the indicator-style query: sketches report their
// Definition 1/3 decision at the ε they were built for; exact databases
// and plain frequency sources report whether the (estimated) frequency
// is positive. Estimate returns a frequency in [0, 1]; indicator-only
// sketches fail it with core.ErrTaskMismatch. EstimateMany fills
// out[i] with the estimate for ts[i]; len(out) must equal len(ts).
//
// Implementations returned by FromDatabase and FromSketch are safe for
// concurrent use and shard EstimateMany batches across CPUs;
// FromSource makes no thread-safety assumption about the wrapped
// source and issues its queries serially. Every method observes ctx:
// single queries check it on entry, EstimateMany between chunks, and a
// cancelled context surfaces as ctx.Err().
type Querier interface {
	// Contains reports the indicator decision for t.
	Contains(ctx context.Context, t dataset.Itemset) (bool, error)
	// Estimate returns a frequency estimate for t.
	Estimate(ctx context.Context, t dataset.Itemset) (float64, error)
	// EstimateMany answers one Estimate per itemset into out.
	EstimateMany(ctx context.Context, ts []dataset.Itemset, out []float64) error
	// NumAttrs returns the attribute universe size d.
	NumAttrs() int
}

// Source is the minimal legacy frequency interface (the shape of
// mining.FrequencySource), bridged into a Querier by FromSource.
type Source interface {
	Frequency(t dataset.Itemset) float64
	NumAttrs() int
}

// batchChunk is the EstimateMany sharding granularity: large enough to
// amortize dispatch, small enough that cancellation lands within a few
// hundred queries.
const batchChunk = 256

// checkBatch validates the parallel slices of an EstimateMany call.
func checkBatch(ts []dataset.Itemset, out []float64) error {
	if len(ts) != len(out) {
		return fmt.Errorf("%w: EstimateMany got %d itemsets but %d output slots", core.ErrInvalidParams, len(ts), len(out))
	}
	return nil
}

// forEachChunk runs body(lo, hi) over [0, n) in batchChunk-sized
// chunks, checking ctx before each chunk. With parallel set, chunks are
// fanned out across up to GOMAXPROCS goroutines; body must then be
// safe to call concurrently for disjoint ranges. The first body error
// (lowest chunk index among those that ran) is returned; a cancelled
// context wins over chunk errors so callers always see ctx.Err() after
// cancellation.
func forEachChunk(ctx context.Context, n int, parallel bool, body func(lo, hi int) error) error {
	chunks := (n + batchChunk - 1) / batchChunk
	workers := 1
	if parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > chunks {
			workers = chunks
		}
	}
	run := func(c int) error {
		lo := c * batchChunk
		hi := lo + batchChunk
		if hi > n {
			hi = n
		}
		return body(lo, hi)
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(c); err != nil {
				return err
			}
		}
		return ctx.Err()
	}
	errs := make([]error, chunks)
	var failed atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks || failed.Load() || ctx.Err() != nil {
					return
				}
				if err := run(c); err != nil {
					errs[c] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// FromDatabase wraps an exact database as a Querier. Estimates are
// exact frequencies (or 0 on an empty database), Contains reports
// Count > 0, and EstimateMany chunks the batch through the database's
// CPU-sharded CountMany path. The returned Querier is safe for
// concurrent use.
func FromDatabase(db *dataset.Database) Querier { return dbQuerier{db} }

type dbQuerier struct{ db *dataset.Database }

func (q dbQuerier) NumAttrs() int { return q.db.NumCols() }

func (q dbQuerier) Contains(ctx context.Context, t dataset.Itemset) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return q.db.NumRows() > 0 && q.db.Count(t) > 0, nil
}

func (q dbQuerier) Estimate(ctx context.Context, t dataset.Itemset) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if q.db.NumRows() == 0 {
		return 0, nil
	}
	return q.db.Frequency(t), nil
}

func (q dbQuerier) EstimateMany(ctx context.Context, ts []dataset.Itemset, out []float64) error {
	if err := checkBatch(ts, out); err != nil {
		return err
	}
	n := q.db.NumRows()
	if n == 0 {
		for i := range out {
			out[i] = 0
		}
		return ctx.Err()
	}
	cp := countsPool.Get().(*[]int)
	counts := *cp
	// Serial outer loop: CountManyInto already shards each chunk across
	// CPUs, so parallelizing here would only oversubscribe. The plain
	// division keeps results bit-identical to Database.Frequency.
	err := forEachChunk(ctx, len(ts), false, func(lo, hi int) error {
		c := counts[:hi-lo]
		q.db.CountManyInto(c, ts[lo:hi])
		for i, v := range c {
			out[lo+i] = float64(v) / float64(n)
		}
		return nil
	})
	countsPool.Put(cp)
	return err
}

// countsPool recycles the per-chunk count buffers of the database
// EstimateMany path, so a mining run issuing one batched call per
// Apriori level allocates no fresh scratch per level.
var countsPool = sync.Pool{New: func() any {
	s := make([]int, batchChunk)
	return &s
}}

// estimateErrer / frequentErrer are the non-panicking query variants
// RELEASE-ANSWERS exposes for |T| ≠ k; the adapters prefer them so a
// wrong-size query surfaces as core.ErrWrongItemsetSize instead of a
// panic.
type estimateErrer interface {
	EstimateErr(t dataset.Itemset) (float64, error)
}

type frequentErrer interface {
	FrequentErr(t dataset.Itemset) (bool, error)
}

// batchEstimator is the optional native-batch face of a sketch: a
// family that can answer a whole slice of estimates in one call (the
// count sketch) gets dispatched per chunk without the per-query
// interface hop. Implementations must be safe for concurrent calls and
// use the same typed errors as estimateErrer.
type batchEstimator interface {
	EstimateBatch(ts []dataset.Itemset, out []float64) error
}

// FromSketch wraps any core sketch as a Querier. Contains is the
// sketch's Definition 1/3 indicator; Estimate requires an estimator
// sketch and fails with core.ErrTaskMismatch on indicator-only
// sketches; wrong-size queries against RELEASE-ANSWERS return
// core.ErrWrongItemsetSize. Sketch queries are read-only, so the
// returned Querier is safe for concurrent use and EstimateMany shards
// its batch across CPUs.
func FromSketch(s core.Sketch) Querier {
	es, _ := s.(core.EstimatorSketch)
	be, _ := s.(batchEstimator)
	return sketchQuerier{s: s, es: es, be: be}
}

type sketchQuerier struct {
	s  core.Sketch
	es core.EstimatorSketch
	be batchEstimator
}

func (q sketchQuerier) NumAttrs() int { return q.s.NumAttrs() }

func (q sketchQuerier) Contains(ctx context.Context, t dataset.Itemset) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if fe, ok := q.s.(frequentErrer); ok {
		return fe.FrequentErr(t)
	}
	return q.s.Frequent(t), nil
}

func (q sketchQuerier) estimate(t dataset.Itemset) (float64, error) {
	if q.es == nil {
		return 0, fmt.Errorf("%w: %s sketch is indicator-only and cannot estimate", core.ErrTaskMismatch, q.s.Name())
	}
	if ee, ok := q.s.(estimateErrer); ok {
		return ee.EstimateErr(t)
	}
	return q.es.Estimate(t), nil
}

func (q sketchQuerier) Estimate(ctx context.Context, t dataset.Itemset) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return q.estimate(t)
}

func (q sketchQuerier) EstimateMany(ctx context.Context, ts []dataset.Itemset, out []float64) error {
	if err := checkBatch(ts, out); err != nil {
		return err
	}
	return forEachChunk(ctx, len(ts), true, func(lo, hi int) error {
		if q.be != nil && q.es != nil {
			return q.be.EstimateBatch(ts[lo:hi], out[lo:hi])
		}
		for i := lo; i < hi; i++ {
			f, err := q.estimate(ts[i])
			if err != nil {
				return err
			}
			out[i] = f
		}
		return nil
	})
}

// FromSource wraps a legacy frequency source as a Querier. Contains
// reports Frequency > 0. Because an arbitrary Source's thread-safety
// is unknown, EstimateMany issues its chunks serially (still checking
// ctx between chunks).
func FromSource(src Source) Querier { return sourceQuerier{src} }

type sourceQuerier struct{ src Source }

func (q sourceQuerier) NumAttrs() int { return q.src.NumAttrs() }

func (q sourceQuerier) Contains(ctx context.Context, t dataset.Itemset) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return q.src.Frequency(t) > 0, nil
}

func (q sourceQuerier) Estimate(ctx context.Context, t dataset.Itemset) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return q.src.Frequency(t), nil
}

func (q sourceQuerier) EstimateMany(ctx context.Context, ts []dataset.Itemset, out []float64) error {
	if err := checkBatch(ts, out); err != nil {
		return err
	}
	return forEachChunk(ctx, len(ts), false, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			out[i] = q.src.Frequency(ts[i])
		}
		return nil
	})
}
