package ecc

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

func TestGFFieldAxioms(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 500; trial++ {
		a := byte(r.Intn(256))
		b := byte(r.Intn(256))
		c := byte(r.Intn(256))
		if gfMul(a, b) != gfMul(b, a) {
			t.Fatal("multiplication not commutative")
		}
		if gfMul(a, gfMul(b, c)) != gfMul(gfMul(a, b), c) {
			t.Fatal("multiplication not associative")
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatal("distributivity fails")
		}
		if gfMul(a, 1) != a {
			t.Fatal("1 is not identity")
		}
		if a != 0 {
			if gfMul(a, gfInv(a)) != 1 {
				t.Fatalf("inverse fails for %d", a)
			}
			if gfDiv(gfMul(a, b), a) != b {
				t.Fatal("division inconsistent with multiplication")
			}
		}
	}
}

func TestGFPow(t *testing.T) {
	if gfPow(0, 0) != 1 || gfPow(0, 5) != 0 {
		t.Error("gfPow zero cases wrong")
	}
	var x byte = 7
	want := byte(1)
	for n := 0; n < 10; n++ {
		if gfPow(x, n) != want {
			t.Fatalf("gfPow(7,%d) = %d, want %d", n, gfPow(x, n), want)
		}
		want = gfMul(want, x)
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("division by zero should panic")
		}
	}()
	gfDiv(5, 0)
}

func TestPolyEval(t *testing.T) {
	// p(x) = 3 + 2x over GF(256): p(1) = 1 (3^2), p(0) = 3.
	p := []byte{3, 2}
	if polyEval(p, 0) != 3 {
		t.Errorf("p(0) = %d", polyEval(p, 0))
	}
	if polyEval(p, 1) != 1 {
		t.Errorf("p(1) = %d", polyEval(p, 1))
	}
}

func TestRSRoundTripNoErrors(t *testing.T) {
	rs, err := NewRS(15, 9)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	cw, err := rs.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != 15 {
		t.Fatalf("codeword length %d", len(cw))
	}
	// Systematic: data appears verbatim.
	for i, d := range data {
		if cw[i] != d {
			t.Fatalf("not systematic at %d", i)
		}
	}
	got, err := rs.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("decode mismatch at %d", i)
		}
	}
}

func TestRSCorrectsUpToT(t *testing.T) {
	r := rng.New(7)
	rs, err := NewRS(255, 223) // T = 16
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		data := make([]byte, 223)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		cw, err := rs.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		nerr := r.Intn(rs.T() + 1)
		positions := r.Sample(255, nerr)
		for _, p := range positions {
			cw[p] ^= byte(1 + r.Intn(255))
		}
		got, err := rs.Decode(cw)
		if err != nil {
			t.Fatalf("trial %d (%d errors): %v", trial, nerr, err)
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("trial %d: decode wrong at %d", trial, i)
			}
		}
	}
}

func TestRSRejectsBeyondT(t *testing.T) {
	r := rng.New(9)
	rs, err := NewRS(31, 15) // T = 8
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 15)
	for i := range data {
		data[i] = byte(r.Intn(256))
	}
	cw, _ := rs.Encode(data)
	// Far beyond radius: corrupt 20 of 31 symbols. Either an error or a
	// miscorrection is information-theoretically possible, but with
	// verification we should essentially always detect it.
	detected := 0
	for trial := 0; trial < 20; trial++ {
		bad := append([]byte(nil), cw...)
		for _, p := range r.Sample(31, 20) {
			bad[p] ^= byte(1 + r.Intn(255))
		}
		if _, err := rs.Decode(bad); err != nil {
			detected++
		}
	}
	if detected < 15 {
		t.Errorf("only %d/20 overloaded words detected", detected)
	}
}

func TestRSInvalidParams(t *testing.T) {
	for _, nk := range [][2]int{{256, 100}, {10, 10}, {10, 0}, {5, 7}} {
		if _, err := NewRS(nk[0], nk[1]); err == nil {
			t.Errorf("NewRS(%d,%d) should fail", nk[0], nk[1])
		}
	}
	rs, _ := NewRS(15, 9)
	if _, err := rs.Encode(make([]byte, 5)); err == nil {
		t.Error("wrong data length should fail")
	}
	if _, err := rs.Decode(make([]byte, 7)); err == nil {
		t.Error("wrong codeword length should fail")
	}
}

func TestHammingAllSingleErrors(t *testing.T) {
	for d := byte(0); d < 16; d++ {
		cw := HammingEncode(d)
		got, ok := HammingDecode(cw)
		if !ok || got != d {
			t.Fatalf("clean decode of %d failed", d)
		}
		for bit := 0; bit < 8; bit++ {
			corrupted := cw ^ (1 << uint(bit))
			got, ok := HammingDecode(corrupted)
			if !ok || got != d {
				t.Fatalf("single error (nibble %d, bit %d) not corrected", d, bit)
			}
		}
	}
}

func TestHammingDetectsDoubleErrors(t *testing.T) {
	for d := byte(0); d < 16; d++ {
		cw := HammingEncode(d)
		for b1 := 0; b1 < 8; b1++ {
			for b2 := b1 + 1; b2 < 8; b2++ {
				corrupted := cw ^ 1<<uint(b1) ^ 1<<uint(b2)
				if _, ok := HammingDecode(corrupted); ok {
					t.Fatalf("double error (nibble %d, bits %d,%d) not detected", d, b1, b2)
				}
			}
		}
	}
}

func TestHammingMinDistance(t *testing.T) {
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			if d := popcount8(hammingEncTable[a] ^ hammingEncTable[b]); d < 4 {
				t.Fatalf("codewords %d and %d at distance %d < 4", a, b, d)
			}
		}
	}
}

func randomPayload(r *rng.RNG, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if r.Bool() {
			v.Set(i)
		}
	}
	return v
}

func TestConcatenatedRoundTripClean(t *testing.T) {
	r := rng.New(21)
	for _, bits := range []int{1, 64, 500, 3000} {
		c, err := NewCode(bits, 0)
		if err != nil {
			t.Fatal(err)
		}
		payload := randomPayload(r, bits)
		cw, err := c.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		if cw.Len() != c.CodewordBits() {
			t.Fatalf("codeword bits %d, want %d", cw.Len(), c.CodewordBits())
		}
		got, err := c.Decode(cw)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(payload) {
			t.Fatalf("clean round trip failed at %d bits", bits)
		}
	}
}

func TestConcatenatedCorrects4PercentAdversarial(t *testing.T) {
	// Adversarial-ish worst case: flip exactly 2 bits per chosen inner
	// block, hitting as many RS symbols as the guarantee allows.
	r := rng.New(33)
	c, err := NewCode(600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.GuaranteedErrorFraction() < 0.04 {
		t.Fatalf("guaranteed fraction %g < 4%%", c.GuaranteedErrorFraction())
	}
	payload := randomPayload(r, 600)
	cw, _ := c.Encode(payload)
	// Corrupt T symbols per block with 2-bit hits (adversary's optimum).
	tCap := (c.rs.N - c.rs.K) / 2
	for b := 0; b < c.Blocks(); b++ {
		base := b * c.BlockCodewordBits()
		for _, sym := range r.Sample(c.rs.N, tCap) {
			bitBase := base + 16*sym
			// two flips inside the low nibble's Hamming block
			cw.Flip(bitBase + 1)
			cw.Flip(bitBase + 5)
		}
	}
	got, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(payload) {
		t.Fatal("4% adversarial pattern not corrected")
	}
}

func TestConcatenatedRandomErrorFractions(t *testing.T) {
	r := rng.New(44)
	c, err := NewCode(400, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := randomPayload(r, 400)
	cw, _ := c.Encode(payload)
	// Random (non-adversarial) 4% bit errors are far within capability.
	bad := cw.Clone()
	nflip := cw.Len() * 4 / 100
	for _, p := range r.Sample(cw.Len(), nflip) {
		bad.Flip(p)
	}
	got, err := c.Decode(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(payload) {
		t.Fatal("random 4% errors not corrected")
	}
}

func TestConcatenatedFailsGracefullyWhenOverloaded(t *testing.T) {
	r := rng.New(55)
	c, err := NewCode(400, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := randomPayload(r, 400)
	cw, _ := c.Encode(payload)
	bad := cw.Clone()
	// 30% random errors: must return an error, never panic.
	for _, p := range r.Sample(cw.Len(), cw.Len()*30/100) {
		bad.Flip(p)
	}
	if _, err := c.Decode(bad); err == nil {
		t.Log("30% errors happened to decode (possible but unlikely); not failing")
	} else if !errors.Is(err, ErrTooManyErrors) {
		t.Fatalf("unexpected error type: %v", err)
	}
}

func TestConcatenatedAlignment(t *testing.T) {
	// Block codeword bits must be a multiple of the alignment.
	for _, align := range []int{6, 10, 12, 20, 24} {
		c, err := NewCode(1000, align)
		if err != nil {
			t.Fatalf("align %d: %v", align, err)
		}
		if c.BlockCodewordBits()%align != 0 {
			t.Errorf("align %d: block bits %d not aligned", align, c.BlockCodewordBits())
		}
	}
	if _, err := NewCode(100, 10000); err == nil {
		t.Error("unsatisfiable alignment should fail")
	}
}

func TestConcatenatedRateConstant(t *testing.T) {
	c, err := NewCode(10000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rate() < 0.10 {
		t.Errorf("rate %g too low; not a constant-rate configuration", c.Rate())
	}
}

func TestCodeRejectsBadInputs(t *testing.T) {
	if _, err := NewCode(0, 0); err == nil {
		t.Error("zero payload should fail")
	}
	c, _ := NewCode(100, 0)
	if _, err := c.Encode(bitvec.New(99)); err == nil {
		t.Error("wrong payload length should fail")
	}
	if _, err := c.Decode(bitvec.New(1)); err == nil {
		t.Error("wrong codeword length should fail")
	}
}

// Property: encode∘decode is identity for random payload lengths.
func TestQuickConcatRoundTrip(t *testing.T) {
	f := func(seed uint32, lenSeed uint16) bool {
		r := rng.New(uint64(seed))
		bits := 1 + int(lenSeed)%2000
		c, err := NewCode(bits, 0)
		if err != nil {
			return false
		}
		payload := randomPayload(r, bits)
		cw, err := c.Encode(payload)
		if err != nil {
			return false
		}
		got, err := c.Decode(cw)
		return err == nil && got.Equal(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRSEncode(b *testing.B) {
	rs, _ := NewRS(255, 85)
	data := make([]byte, 85)
	for i := range data {
		data[i] = byte(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rs.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSDecodeWithErrors(b *testing.B) {
	r := rng.New(2)
	rs, _ := NewRS(255, 85)
	data := make([]byte, 85)
	for i := range data {
		data[i] = byte(i)
	}
	cw, _ := rs.Encode(data)
	bad := append([]byte(nil), cw...)
	for _, p := range r.Sample(255, 40) {
		bad[p] ^= byte(1 + r.Intn(255))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rs.Decode(bad); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNewCodeFitting(t *testing.T) {
	// Budget d*v = 384 bits aligned to v=6: block bits must divide the
	// budget and align to 6.
	c, err := NewCodeFitting(384, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c.BlockCodewordBits()%6 != 0 {
		t.Errorf("block bits %d not aligned to 6", c.BlockCodewordBits())
	}
	if c.CodewordBits() > 384 {
		t.Errorf("codeword %d exceeds budget", c.CodewordBits())
	}
	if c.PayloadBits() <= 0 {
		t.Error("payload must be positive")
	}
	// Round trip at the fitted size.
	r := rng.New(9)
	payload := randomPayload(r, c.PayloadBits())
	cw, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(cw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(payload) {
		t.Fatal("fitted code round trip failed")
	}
	// Too-small budgets fail.
	if _, err := NewCodeFitting(16, 6); err == nil {
		t.Error("tiny budget should fail")
	}
	if _, err := NewCodeFitting(384, 0); err == nil {
		t.Error("non-positive alignment should fail")
	}
}

func TestNewCodeFittingLargeBudget(t *testing.T) {
	// Budgets beyond one max-size block chunk into multiple blocks.
	c, err := NewCodeFitting(100000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Blocks() < 2 {
		t.Errorf("expected multiple blocks, got %d", c.Blocks())
	}
	if c.GuaranteedErrorFraction() < 0.04 {
		t.Errorf("guarantee %g below 4%%", c.GuaranteedErrorFraction())
	}
}
