package ecc

// The [8,4] extended Hamming code: 4 data bits → 8 coded bits, minimum
// distance 4 (corrects any single bit error, detects any double). It is
// the inner code of the concatenation; a GF(2^8) Reed–Solomon symbol is
// carried by two Hamming blocks, one per nibble.

// hammingEncTable maps each nibble to its 8-bit codeword.
var hammingEncTable [16]byte

// hammingDecTable maps each received byte to (nibble | flags); flag
// hammingBad marks an uncorrectable (detected double) error.
var hammingDecTable [256]byte

const hammingBad = 0x80

func init() {
	// Generator: data bits d0..d3, parity p0..p2 (Hamming(7,4)) plus an
	// overall parity bit p3.
	for d := 0; d < 16; d++ {
		d0 := d & 1
		d1 := d >> 1 & 1
		d2 := d >> 2 & 1
		d3 := d >> 3 & 1
		p0 := d0 ^ d1 ^ d3
		p1 := d0 ^ d2 ^ d3
		p2 := d1 ^ d2 ^ d3
		cw := d | p0<<4 | p1<<5 | p2<<6
		// Extended parity over the first 7 bits.
		pop := 0
		for i := 0; i < 7; i++ {
			pop ^= cw >> uint(i) & 1
		}
		cw |= pop << 7
		hammingEncTable[d] = byte(cw)
	}
	// Build the decode table by nearest-codeword search: distance 0 or 1
	// decodes; distance ≥ 2 is flagged.
	for r := 0; r < 256; r++ {
		best, bestDist := -1, 9
		for d := 0; d < 16; d++ {
			dist := popcount8(byte(r) ^ hammingEncTable[d])
			if dist < bestDist {
				best, bestDist = d, dist
			}
		}
		if bestDist <= 1 {
			hammingDecTable[r] = byte(best)
		} else {
			hammingDecTable[r] = hammingBad
		}
	}
}

func popcount8(b byte) int {
	c := 0
	for b != 0 {
		b &= b - 1
		c++
	}
	return c
}

// HammingEncode encodes the low nibble of d into an 8-bit codeword.
func HammingEncode(d byte) byte { return hammingEncTable[d&0x0F] }

// HammingDecode decodes a received byte. ok is false when a
// double-bit error was detected; the returned nibble is then the
// nearest-codeword guess and may be wrong.
func HammingDecode(r byte) (nibble byte, ok bool) {
	v := hammingDecTable[r]
	if v&hammingBad != 0 {
		// Fall back to any nearest codeword for a best-effort value.
		best, bestDist := 0, 9
		for d := 0; d < 16; d++ {
			dist := popcount8(r ^ hammingEncTable[d])
			if dist < bestDist {
				best, bestDist = d, dist
			}
		}
		return byte(best), false
	}
	return v, true
}
