package ecc

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed–Solomon code over GF(2^8) with codeword
// length N ≤ 255 symbols and K data symbols. It corrects up to
// (N−K)/2 symbol errors via Berlekamp–Massey, Chien search, and
// Forney's formula.
type RS struct {
	N, K int
	gen  []byte // generator polynomial, degree N−K
}

// ErrTooManyErrors is returned when the received word is beyond the
// code's unique-decoding radius (or decoding is otherwise inconsistent).
var ErrTooManyErrors = errors.New("ecc: too many errors to decode")

// NewRS constructs an RS(N, K) code.
func NewRS(n, k int) (*RS, error) {
	if k <= 0 || n <= k || n > 255 {
		return nil, fmt.Errorf("ecc: invalid RS parameters N=%d K=%d (need 0 < K < N <= 255)", n, k)
	}
	// g(x) = Π_{i=0}^{N−K−1} (x − α^i).
	gen := []byte{1}
	for i := 0; i < n-k; i++ {
		gen = polyMul(gen, []byte{gfExp[i], 1}) // (α^i + x)
	}
	return &RS{N: n, K: k, gen: gen}, nil
}

// T returns the error-correction capability ⌊(N−K)/2⌋ in symbols.
func (rs *RS) T() int { return (rs.N - rs.K) / 2 }

// Encode maps K data bytes to an N-byte systematic codeword
// (data first, then N−K parity bytes).
func (rs *RS) Encode(data []byte) ([]byte, error) {
	if len(data) != rs.K {
		return nil, fmt.Errorf("ecc: Encode needs %d data bytes, got %d", rs.K, len(data))
	}
	nk := rs.N - rs.K
	// Compute data(x)·x^(N−K) mod g(x) by synthetic division.
	rem := make([]byte, nk)
	for i := rs.K - 1; i >= 0; i-- {
		feedback := data[i] ^ rem[nk-1]
		copy(rem[1:], rem[:nk-1])
		rem[0] = 0
		if feedback != 0 {
			for j := 0; j < nk; j++ {
				if rs.gen[j] != 0 {
					rem[j] ^= gfMul(feedback, rs.gen[j])
				}
			}
		}
	}
	cw := make([]byte, rs.N)
	// Codeword polynomial c(x) = parity + x^(N−K)·data; store data at
	// the high-degree end so the layout is [parity | data] by degree,
	// but we present it as data-first for callers.
	copy(cw[:rs.K], data)
	copy(cw[rs.K:], rem)
	return cw, nil
}

// codewordPoly reassembles the degree-ordered polynomial from the
// data-first presentation: coefficient i is cw[K+i] for parity
// (degrees 0..N−K−1) and cw[i−(N−K)] shifted for data.
func (rs *RS) codewordPoly(cw []byte) []byte {
	nk := rs.N - rs.K
	p := make([]byte, rs.N)
	copy(p[:nk], cw[rs.K:])
	copy(p[nk:], cw[:rs.K])
	return p
}

// Decode corrects up to T symbol errors in place on a copy of recv and
// returns the K data bytes. It returns ErrTooManyErrors when the word
// cannot be uniquely decoded.
func (rs *RS) Decode(recv []byte) ([]byte, error) {
	if len(recv) != rs.N {
		return nil, fmt.Errorf("ecc: Decode needs %d bytes, got %d", rs.N, len(recv))
	}
	nk := rs.N - rs.K
	p := rs.codewordPoly(recv)

	// Syndromes S_i = p(α^i), i = 0..N−K−1.
	synd := make([]byte, nk)
	allZero := true
	for i := 0; i < nk; i++ {
		synd[i] = polyEval(p, gfExp[i])
		if synd[i] != 0 {
			allZero = false
		}
	}
	if allZero {
		out := make([]byte, rs.K)
		copy(out, recv[:rs.K])
		return out, nil
	}

	// Berlekamp–Massey: find the error locator polynomial sigma.
	sigma := []byte{1}
	prev := []byte{1}
	var l, m int = 0, 1
	var b byte = 1
	for i := 0; i < nk; i++ {
		var delta byte = synd[i]
		for j := 1; j <= l; j++ {
			if j < len(sigma) && i-j >= 0 {
				delta ^= gfMul(sigma[j], synd[i-j])
			}
		}
		if delta == 0 {
			m++
			continue
		}
		if 2*l <= i {
			tmp := append([]byte(nil), sigma...)
			// sigma = sigma − (delta/b)·x^m·prev
			coef := gfDiv(delta, b)
			shifted := make([]byte, m+len(prev))
			for j, pv := range prev {
				shifted[m+j] = gfMul(coef, pv)
			}
			sigma = polyAdd(sigma, shifted)
			l = i + 1 - l
			prev = tmp
			b = delta
			m = 1
		} else {
			coef := gfDiv(delta, b)
			shifted := make([]byte, m+len(prev))
			for j, pv := range prev {
				shifted[m+j] = gfMul(coef, pv)
			}
			sigma = polyAdd(sigma, shifted)
			m++
		}
	}
	numErr := l
	if numErr > rs.T() {
		return nil, ErrTooManyErrors
	}

	// Chien search: roots of sigma are α^{−loc}.
	var locs []int
	for pos := 0; pos < rs.N; pos++ {
		// x = α^{−pos}
		x := gfExp[(255-pos)%255]
		if polyEval(sigma, x) == 0 {
			locs = append(locs, pos)
		}
	}
	if len(locs) != numErr {
		return nil, ErrTooManyErrors
	}

	// Forney: error magnitudes. Omega(x) = [S(x)·sigma(x)] mod x^(N−K).
	sPoly := append([]byte(nil), synd...)
	omega := polyMul(sPoly, sigma)
	if len(omega) > nk {
		omega = omega[:nk]
	}
	sigmaDeriv := formalDerivative(sigma)
	for _, pos := range locs {
		xInv := gfExp[(255-pos)%255] // X_j^{−1} = α^{−pos}
		num := polyEval(omega, xInv)
		den := polyEval(sigmaDeriv, xInv)
		if den == 0 {
			return nil, ErrTooManyErrors
		}
		// Forney with the b = 0 syndrome convention:
		// e_j = X_j · Ω(X_j^{−1}) / Λ'(X_j^{−1}).
		mag := gfMul(gfExp[pos%255], gfDiv(num, den))
		p[pos] ^= mag
	}

	// Verify the correction: all syndromes must vanish.
	for i := 0; i < nk; i++ {
		if polyEval(p, gfExp[i]) != 0 {
			return nil, ErrTooManyErrors
		}
	}
	out := make([]byte, rs.K)
	copy(out, p[nk:])
	return out, nil
}

func polyAdd(a, b []byte) []byte {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make([]byte, n)
	copy(out, a)
	for i, bv := range b {
		out[i] ^= bv
	}
	// trim leading zeros
	for len(out) > 1 && out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	return out
}

// formalDerivative over GF(2): odd-degree terms survive with their
// coefficients, even-degree terms vanish.
func formalDerivative(p []byte) []byte {
	if len(p) <= 1 {
		return []byte{0}
	}
	out := make([]byte, len(p)-1)
	for i := 1; i < len(p); i++ {
		if i%2 == 1 {
			out[i-1] = p[i]
		}
	}
	return out
}
