// Package ecc implements the error-correcting code machinery that the
// paper's Theorem 15 and Theorem 16 proofs invoke: "a code with
// constant rate that is uniquely decodable from 4% errors (e.g. using a
// Justesen code [Jus72])".
//
// We substitute a concatenated code — Reed–Solomon over GF(2^8) outside,
// an [8,4] extended Hamming code inside — for the Justesen code. The
// proofs use exactly two properties: constant rate and unique decoding
// from a 4% adversarial bit-error fraction; the concatenated code
// provides both at the block lengths used in the experiments (see
// Code.GuaranteedErrorFraction), and is implementable from scratch on
// the standard library. The substitution is recorded in DESIGN.md §3.
package ecc

// GF(2^8) arithmetic with the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the field used by the
// Reed–Solomon outer code.

var (
	gfExp [512]byte // α^i, doubled to avoid mod in Mul
	gfLog [256]int  // log_α(x); gfLog[0] unused
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11D
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[gfLog[a]+gfLog[b]]
}

// gfDiv divides in GF(2^8); it panics on division by zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[gfLog[a]-gfLog[b]+255]
}

// gfInv returns the multiplicative inverse; it panics on zero.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfPow returns α^(log(a)·n) = a^n.
func gfPow(a byte, n int) byte {
	if a == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	l := (gfLog[a] * n) % 255
	if l < 0 {
		l += 255
	}
	return gfExp[l]
}

// polyEval evaluates the polynomial p (coefficients low-degree first) at x.
func polyEval(p []byte, x byte) byte {
	// Horner from the highest coefficient.
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gfMul(y, x) ^ p[i]
	}
	return y
}

// polyMul multiplies two polynomials over GF(2^8).
func polyMul(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] ^= gfMul(av, bv)
		}
	}
	return out
}
