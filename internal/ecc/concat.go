package ecc

import (
	"fmt"

	"repro/internal/bitvec"
)

// Code is the concatenated binary code standing in for the paper's
// Justesen code: RS(N, K) over GF(2^8) outside, [8,4] extended Hamming
// inside (one Hamming block per nibble, 16 coded bits per RS symbol).
//
// Rate: K/(2N) (typically 1/6 with the default K ≈ N/3).
//
// Worst-case unique decoding: an adversary must spend at least 2 bit
// flips to corrupt one RS symbol (the inner code corrects single-bit
// errors), and the outer code corrects ⌊(N−K)/2⌋ symbol errors, so any
// pattern of at most (N−K)/2 · 2 bit errors per block — a fraction
// (N−K)/(16N) ≥ 4.16% of the block at K = N/3 — decodes uniquely.
// That is the "4% adversarial errors" requirement of Theorems 15/16.
//
// Long payloads span multiple RS blocks. Per-block error fractions are
// what is guaranteed; the lower-bound constructions align blocks with
// database columns so that the per-column v/25 error bound of Lemma 19
// translates into a per-block 4% bound (see lowerbound/thm15.go).
type Code struct {
	rs          *RS
	payloadBits int
	blocks      int
	// blockAlign, if > 0, made each block's codeword bit-length a
	// multiple of it.
	blockAlign int
}

// NewCode builds a code for the given payload length in bits.
//
// alignBits, when positive, forces each RS block's codeword bit length
// (16·N) to a multiple of alignBits so callers can align blocks with
// database columns; it must be satisfiable with N ≤ 255.
func NewCode(payloadBits, alignBits int) (*Code, error) {
	if payloadBits <= 0 {
		return nil, fmt.Errorf("ecc: payloadBits = %d", payloadBits)
	}
	// Pick the largest N ≤ 255 with K = ⌈N/3⌉ ≥ 1 and the alignment
	// satisfied; then the number of blocks follows from the payload.
	n := 255
	if alignBits > 0 {
		step := alignBits / gcd(16, alignBits) // N must be a multiple of this
		if step > 255 {
			return nil, fmt.Errorf("ecc: alignment %d bits needs N > 255", alignBits)
		}
		n = (255 / step) * step
	}
	k := n / 3
	if k == 0 {
		k = 1
	}
	rs, err := NewRS(n, k)
	if err != nil {
		return nil, err
	}
	perBlock := k * 8 // payload bits per block
	blocks := (payloadBits + perBlock - 1) / perBlock
	return &Code{rs: rs, payloadBits: payloadBits, blocks: blocks, blockAlign: alignBits}, nil
}

// NewCodeFitting builds the largest code whose codeword fits in
// budgetBits, with each RS block's codeword bit length a multiple of
// alignBits (> 0). The Theorem 15 construction uses it to fill the d·v
// free cells of the hard database with whole, column-aligned blocks.
func NewCodeFitting(budgetBits, alignBits int) (*Code, error) {
	if alignBits <= 0 {
		return nil, fmt.Errorf("ecc: NewCodeFitting needs alignBits > 0, got %d", alignBits)
	}
	step := alignBits / gcd(16, alignBits) // N must be a multiple of this
	maxN := budgetBits / 16
	if maxN > 255 {
		maxN = 255
	}
	n := (maxN / step) * step
	if n < 3 {
		return nil, fmt.Errorf("ecc: budget %d bits too small for an aligned RS block (align %d)", budgetBits, alignBits)
	}
	k := n / 3
	if k == 0 {
		k = 1
	}
	rs, err := NewRS(n, k)
	if err != nil {
		return nil, err
	}
	blocks := budgetBits / (16 * n)
	if blocks < 1 {
		return nil, fmt.Errorf("ecc: budget %d bits holds no block of %d bits", budgetBits, 16*n)
	}
	return &Code{rs: rs, payloadBits: blocks * k * 8, blocks: blocks, blockAlign: alignBits}, nil
}

// PayloadBits returns the payload length the code was built for.
func (c *Code) PayloadBits() int { return c.payloadBits }

// BlockCodewordBits returns the coded bits per RS block (16·N).
func (c *Code) BlockCodewordBits() int { return 16 * c.rs.N }

// CodewordBits returns the total coded length in bits.
func (c *Code) CodewordBits() int { return c.blocks * c.BlockCodewordBits() }

// Blocks returns the number of RS blocks.
func (c *Code) Blocks() int { return c.blocks }

// Rate returns payload bits / codeword bits.
func (c *Code) Rate() float64 { return float64(c.payloadBits) / float64(c.CodewordBits()) }

// GuaranteedErrorFraction returns the adversarial bit-error fraction
// per block below which decoding is guaranteed: (N−K)/(16·N) with
// errors-only outer decoding (2 bit flips per killed symbol, T = (N−K)/2
// correctable symbols).
func (c *Code) GuaranteedErrorFraction() float64 {
	return float64(c.rs.N-c.rs.K) / float64(16*c.rs.N)
}

// Encode maps a payload of PayloadBits bits to the codeword.
func (c *Code) Encode(payload *bitvec.Vector) (*bitvec.Vector, error) {
	if payload.Len() != c.payloadBits {
		return nil, fmt.Errorf("ecc: payload length %d, want %d", payload.Len(), c.payloadBits)
	}
	out := bitvec.New(c.CodewordBits())
	perBlock := c.rs.K * 8
	for b := 0; b < c.blocks; b++ {
		data := make([]byte, c.rs.K)
		for i := 0; i < perBlock; i++ {
			pos := b*perBlock + i
			if pos < payload.Len() && payload.Get(pos) {
				data[i/8] |= 1 << uint(i%8)
			}
		}
		cw, err := c.rs.Encode(data)
		if err != nil {
			return nil, err
		}
		base := b * c.BlockCodewordBits()
		for s, sym := range cw {
			lo := HammingEncode(sym & 0x0F)
			hi := HammingEncode(sym >> 4)
			writeByteBits(out, base+16*s, lo)
			writeByteBits(out, base+16*s+8, hi)
		}
	}
	return out, nil
}

// Decode recovers the payload from a (possibly corrupted) codeword.
// It fails with ErrTooManyErrors when some block is beyond the
// unique-decoding radius.
func (c *Code) Decode(word *bitvec.Vector) (*bitvec.Vector, error) {
	if word.Len() != c.CodewordBits() {
		return nil, fmt.Errorf("ecc: codeword length %d, want %d", word.Len(), c.CodewordBits())
	}
	payload := bitvec.New(c.payloadBits)
	perBlock := c.rs.K * 8
	for b := 0; b < c.blocks; b++ {
		base := b * c.BlockCodewordBits()
		recv := make([]byte, c.rs.N)
		for s := 0; s < c.rs.N; s++ {
			loN, _ := HammingDecode(readByteBits(word, base+16*s))
			hiN, _ := HammingDecode(readByteBits(word, base+16*s+8))
			recv[s] = loN | hiN<<4
		}
		data, err := c.rs.Decode(recv)
		if err != nil {
			return nil, fmt.Errorf("ecc: block %d: %w", b, err)
		}
		for i := 0; i < perBlock; i++ {
			pos := b*perBlock + i
			if pos >= c.payloadBits {
				break
			}
			if data[i/8]>>uint(i%8)&1 == 1 {
				payload.Set(pos)
			}
		}
	}
	return payload, nil
}

func writeByteBits(v *bitvec.Vector, pos int, b byte) {
	for i := 0; i < 8; i++ {
		v.SetBool(pos+i, b>>uint(i)&1 == 1)
	}
}

func readByteBits(v *bitvec.Vector, pos int) byte {
	var b byte
	for i := 0; i < 8; i++ {
		if v.Get(pos + i) {
			b |= 1 << uint(i)
		}
	}
	return b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
