package lowerbound

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func TestThm15Validation(t *testing.T) {
	if _, err := NewThm15(1, 4, 0); err == nil {
		t.Error("k < 2 should fail")
	}
	if _, err := NewThm15(2, 0, 0); err == nil {
		t.Error("w < 1 should fail")
	}
	if _, err := NewThm15(2, 1, 0); err == nil {
		t.Error("d·v too small for any code block should fail")
	}
}

func TestThm15Shape(t *testing.T) {
	// k=2, w=6: k'=1, d=64, v=6, budget 384 bits.
	inst, err := NewThm15(2, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.V() != 6 || inst.NumCols() != 128 || inst.K() != 2 {
		t.Fatalf("shape: v=%d cols=%d k=%d", inst.V(), inst.NumCols(), inst.K())
	}
	if inst.PayloadBits() <= 0 {
		t.Fatal("payload must be positive")
	}
	if inst.QueryEps() != DefaultThm15Eps {
		t.Fatalf("eps = %g", inst.QueryEps())
	}
}

func TestThm15FrequencyIdentity(t *testing.T) {
	// The heart of the construction: f_{T_s ∪ {d+j}}(D) = ⟨s, t⟩/v.
	inst, err := NewThm15(2, 5, 0) // d=32, v=5
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(20)
	payload := randomBits(r, inst.PayloadBits())
	db, err := inst.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	v := inst.V()
	d := inst.NumCols() / 2
	for j := 0; j < 8; j++ { // spot-check 8 columns
		// column bits t
		var tv uint64
		for i := 0; i < v; i++ {
			if db.Row(i).Get(d + j) {
				tv |= 1 << uint(i)
			}
		}
		for s := uint64(0); s < 1<<uint(v); s++ {
			want := float64(popcount(tv&s)) / float64(v)
			got := db.Frequency(inst.Query(s, j))
			if got != want {
				t.Fatalf("col %d pattern %b: f = %g, want %g", j, s, got, want)
			}
		}
	}
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func TestThm15RoundTripOracles(t *testing.T) {
	inst, err := NewThm15(2, 6, 0) // d=64, v=6, payload from 384-bit budget
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(21)
	payload := randomBits(r, inst.PayloadBits())
	db, err := inst.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	for name, oracle := range map[string]IndicatorOracle{
		"exact":       ExactIndicator{DB: db, Eps: inst.QueryEps()},
		"adversarial": AdversarialIndicator{DB: db, Eps: inst.QueryEps(), Seed: 3},
	} {
		got, err := inst.Decode(oracle)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(payload) {
			t.Errorf("%s oracle: payload not recovered", name)
		}
	}
}

func TestThm15RoundTripK3(t *testing.T) {
	// k=3 uses 2-attribute shattered itemsets (k'=2).
	inst, err := NewThm15(3, 4, 0) // k'=2, d=32, v=8
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(22)
	payload := randomBits(r, inst.PayloadBits())
	db, err := inst.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Decode(ExactIndicator{DB: db, Eps: inst.QueryEps()})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(payload) {
		t.Fatal("k=3 payload not recovered")
	}
}

func TestThm15DecodeFromSubsampleSketch(t *testing.T) {
	inst, err := NewThm15(2, 5, 0) // d=32, 2d=64 cols, v=5
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(23)
	payload := randomBits(r, inst.PayloadBits())
	db, err := inst.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{K: inst.K(), Eps: inst.QueryEps(), Delta: 0.02, Mode: core.ForAll, Task: core.Indicator}
	sk, err := core.Subsample{Seed: 17}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Decode(sk)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(payload) {
		t.Fatalf("subsample sketch: payload not recovered (Hamming %d)", got.HammingDistance(payload))
	}
	if sk.SizeBits() < int64(inst.PayloadBits()) {
		t.Fatalf("impossible: %d-bit sketch decoded %d arbitrary bits", sk.SizeBits(), inst.PayloadBits())
	}
}

func TestThm15EncodeErrors(t *testing.T) {
	inst, _ := NewThm15(2, 5, 0)
	if _, err := inst.Encode(bitvec.New(inst.PayloadBits() + 1)); err == nil {
		t.Error("wrong payload size should fail")
	}
}

func TestThm15AmplifiedValidation(t *testing.T) {
	if _, err := NewThm15Amplified(2, 5, 2); err == nil {
		t.Error("even k should fail")
	}
	if _, err := NewThm15Amplified(1, 5, 2); err == nil {
		t.Error("k = 1 should fail")
	}
	if _, err := NewThm15Amplified(3, 5, 0); err == nil {
		t.Error("m = 0 should fail")
	}
	if _, err := NewThm15Amplified(3, 5, 100); err == nil {
		t.Error("m > C(d, 1) should fail")
	}
}

func TestThm15AmplifiedRoundTrip(t *testing.T) {
	// k=3 → core k=2 with d=32, v=5; m=3 blocks; ε = 1/150.
	amp, err := NewThm15Amplified(3, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if amp.PayloadBits() != 3*amp.Core().PayloadBits() {
		t.Fatal("amplified payload should be m × core payload")
	}
	if amp.NumCols() != 96 || amp.NumRows() != 15 {
		t.Fatalf("shape %dx%d, want 15x96", amp.NumRows(), amp.NumCols())
	}
	wantEps := DefaultThm15Eps / 3
	if amp.QueryEps() != wantEps {
		t.Fatalf("eps = %g, want %g", amp.QueryEps(), wantEps)
	}
	r := rng.New(24)
	payload := randomBits(r, amp.PayloadBits())
	db, err := amp.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	for name, oracle := range map[string]IndicatorOracle{
		"exact":       ExactIndicator{DB: db, Eps: amp.QueryEps()},
		"adversarial": AdversarialIndicator{DB: db, Eps: amp.QueryEps(), Seed: 5},
	} {
		got, err := amp.Decode(oracle)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.Equal(payload) {
			t.Errorf("%s oracle: amplified payload not recovered", name)
		}
	}
}

func TestThm15AmplifiedFrequencyScaling(t *testing.T) {
	// f_{T* ∪ T'_i}(D) must equal f_{T*}(D_i)/m.
	amp, err := NewThm15Amplified(3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(25)
	payload := randomBits(r, amp.PayloadBits())
	db, err := amp.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	core := amp.Core()
	// Reconstruct block 0's database independently for comparison.
	sub := bitvec.New(core.PayloadBits())
	for b := 0; b < core.PayloadBits(); b++ {
		if payload.Get(b) {
			sub.Set(b)
		}
	}
	blockDB, err := core.Encode(sub)
	if err != nil {
		t.Fatal(err)
	}
	d := core.NumCols() / 2
	_ = d
	v := core.V()
	for s := uint64(0); s < 8; s++ {
		for j := 0; j < 4; j++ {
			tStar := core.Query(s, j)
			attrs := append([]int{}, tStar.Attrs()...)
			// tag of block 0 = colex subset 0 = {0} shifted by 2d
			attrs = append(attrs, 2*(core.NumCols()/2)+0)
			big := db.Frequency(dataset.MustItemset(attrs...))
			small := blockDB.Frequency(tStar)
			if big*2 != small {
				t.Fatalf("scaling: m·f_big = %g, f_block = %g (s=%b j=%d v=%d)", big*2, small, s, j, v)
			}
		}
	}
}
