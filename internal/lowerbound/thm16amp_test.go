package lowerbound

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

func TestLemma21ExactEstimates(t *testing.T) {
	// With exact inner products the LP recovers z up to LP tolerance.
	r := rng.New(40)
	for trial := 0; trial < 5; trial++ {
		v := 3 + trial%3
		z := make([]float64, v)
		for j := range z {
			z[j] = r.Float64()
		}
		fhat := make([]float64, 1<<uint(v))
		for s := range fhat {
			sum := 0.0
			for j := 0; j < v; j++ {
				if s>>uint(j)&1 == 1 {
					sum += z[j]
				}
			}
			fhat[s] = sum / float64(v)
		}
		zhat, dev, err := Lemma21Solve(fhat, v)
		if err != nil {
			t.Fatal(err)
		}
		if dev > 1e-7 {
			t.Fatalf("max deviation %g for exact input", dev)
		}
		for j := range z {
			if math.Abs(zhat[j]-z[j]) > 1e-6 {
				t.Fatalf("zhat[%d] = %g, want %g", j, zhat[j], z[j])
			}
		}
	}
}

func TestLemma21NoisyWithinBound(t *testing.T) {
	// ±ε estimates: the returned ẑ must satisfy the Lemma 21 guarantee
	// (1/v)·‖ẑ − z‖₁ ≤ 4ε.
	r := rng.New(41)
	const v = 5
	const eps = 0.02
	for trial := 0; trial < 5; trial++ {
		z := make([]float64, v)
		for j := range z {
			if r.Bool() {
				z[j] = 1
			}
		}
		fhat := make([]float64, 1<<uint(v))
		for s := range fhat {
			sum := 0.0
			for j := 0; j < v; j++ {
				if s>>uint(j)&1 == 1 {
					sum += z[j]
				}
			}
			fhat[s] = sum/float64(v) + (r.Float64()*2-1)*eps
		}
		zhat, dev, err := Lemma21Solve(fhat, v)
		if err != nil {
			t.Fatal(err)
		}
		if dev > eps+1e-9 {
			t.Fatalf("LP max deviation %g exceeds eps %g (truth is feasible at eps)", dev, eps)
		}
		l1 := 0.0
		for j := range z {
			l1 += math.Abs(zhat[j] - z[j])
		}
		if l1/float64(v) > 4*eps {
			t.Fatalf("(1/v)||zhat-z||_1 = %g exceeds 4 eps = %g", l1/float64(v), 4*eps)
		}
	}
}

func TestLemma21Validation(t *testing.T) {
	if _, _, err := Lemma21Solve(make([]float64, 4), 3); err == nil {
		t.Error("wrong estimate count should fail")
	}
	if _, _, err := Lemma21Solve(make([]float64, 2), 0); err == nil {
		t.Error("v = 0 should fail")
	}
}

func TestThm16AmplifiedValidation(t *testing.T) {
	if _, err := NewThm16Amplified(1, 0, 8, 8, 2, 1); err == nil {
		t.Error("w = 0 should fail")
	}
	if _, err := NewThm16Amplified(13, 1, 8, 8, 2, 1); err == nil {
		t.Error("v too large should fail")
	}
	if _, err := NewThm16Amplified(1, 3, 8, 8, 1, 1); err == nil {
		t.Error("inner c = 1 should fail")
	}
}

func TestThm16AmplifiedFrequencyIdentity(t *testing.T) {
	// f_{T'(T,s)}(D) must equal <s, z_T>/v.
	amp, err := NewThm16Amplified(1, 2, 8, 8, 2, 50) // d=4, v=2; inner 8x8
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(51)
	payload := randomBits(r, amp.PayloadBits())
	db, err := amp.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	v := amp.V()
	// Rebuild the inner block databases to compute z_T directly.
	per := amp.Inner().PayloadBits()
	for s := uint64(0); s < 1<<uint(v); s++ {
		for r0 := 0; r0 < amp.Inner().QueryRows(); r0 += 3 {
			for col := 0; col < 2; col++ {
				T := amp.Inner().Query(r0, col)
				want := 0.0
				for i := 0; i < v; i++ {
					if s>>uint(i)&1 == 0 {
						continue
					}
					sub := subPayload(payload, i, per)
					inner, err := amp.Inner().Encode(sub)
					if err != nil {
						t.Fatal(err)
					}
					want += inner.Frequency(T)
				}
				want /= float64(v)
				got := db.Frequency(amp.Query(s, r0, col))
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("s=%b r=%d col=%d: f = %g, want %g", s, r0, col, got, want)
				}
			}
		}
	}
}

func subPayload(payload *bitvec.Vector, i, per int) *bitvec.Vector {
	sub := bitvec.New(per)
	for b := 0; b < per; b++ {
		if payload.Get(i*per + b) {
			sub.Set(b)
		}
	}
	return sub
}

func TestThm16AmplifiedRoundTripExact(t *testing.T) {
	amp, err := NewThm16Amplified(1, 2, 12, 8, 2, 52) // d=4, v=2
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(53)
	payload := randomBits(r, amp.PayloadBits())
	db, err := amp.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := amp.Decode(ExactEstimator{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(payload) {
		t.Fatalf("payload not recovered (Hamming %d of %d)",
			got.HammingDistance(payload), payload.Len())
	}
}

func TestThm16AmplifiedRoundTripNoisy(t *testing.T) {
	amp, err := NewThm16Amplified(1, 2, 12, 8, 2, 54)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(55)
	payload := randomBits(r, amp.PayloadBits())
	db, err := amp.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	// ε small enough that 4ε·v stays below the rounding margin of the
	// inner L1 decode: n·(4ε) < 1/2 with n = 8.
	eps := 0.05 / float64(amp.Inner().N()*4)
	got, err := amp.Decode(NoisyEstimator{DB: db, MaxErr: eps, Seed: 56})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(payload) {
		t.Fatalf("noisy payload not recovered (Hamming %d of %d)",
			got.HammingDistance(payload), payload.Len())
	}
}

func TestThm16AmplifiedEncodeErrors(t *testing.T) {
	amp, _ := NewThm16Amplified(1, 2, 8, 8, 2, 57)
	if _, err := amp.Encode(bitvec.New(amp.PayloadBits() + 1)); err == nil {
		t.Error("wrong payload size should fail")
	}
}
