package lowerbound

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/combin"
	"repro/internal/dataset"
	"repro/internal/ecc"
)

// DefaultThm15Eps is the paper's ε = 1/50 for the Theorem 15 core.
const DefaultThm15Eps = 1.0 / 50

// Thm15 is the executable form of the Theorem 15 core construction
// (the ε = 1/50 case, which proves Ω(k·d·log(d/k)) for For-All
// indicator sketches).
//
// Construction: with k′ = k−1, d = k′·2^w and v = k′·w, take the
// Fact 18 shattered strings x₁,…,x_v over the first d attributes and an
// error-corrected payload encoding (y₁,…,y_v) laid out column-major
// over the last d attributes; row i of the database is (x_i, y_i).
// For a pattern s and payload column j, the k-itemset T_s ∪ {d+j} has
// frequency exactly ⟨s, t⟩/v where t is column j — so a valid indicator
// sketch answers every such query with the Lemma 19 threshold bit, a
// consistent vector t′ is within 2⌈εv⌉ of t, and the outer code (our
// Justesen-code substitution, per-block aligned to whole columns)
// repairs the residual errors.
type Thm15 struct {
	sh   *Shattered
	code *ecc.Code
	k    int
	eps  float64
}

// NewThm15 builds the instance for itemset size k ≥ 2 and width
// parameter w ≥ 1 (d = (k−1)·2^w). eps ≤ 0 selects the paper's 1/50.
func NewThm15(k, w int, eps float64) (*Thm15, error) {
	if k < 2 {
		return nil, fmt.Errorf("lowerbound: thm15 needs k ≥ 2, got %d", k)
	}
	if w < 1 {
		return nil, fmt.Errorf("lowerbound: thm15 needs w ≥ 1, got %d", w)
	}
	if eps <= 0 {
		eps = DefaultThm15Eps
	}
	kp := k - 1
	d := kp << uint(w)
	sh, err := NewShattered(d, kp)
	if err != nil {
		return nil, err
	}
	v := sh.V()
	if v > 63 {
		return nil, fmt.Errorf("lowerbound: thm15 v = %d exceeds 63 (pattern words)", v)
	}
	code, err := ecc.NewCodeFitting(d*v, v)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: thm15 cannot fit a code into %d×%d cells: %w", d, v, err)
	}
	return &Thm15{sh: sh, code: code, k: k, eps: eps}, nil
}

// PayloadBits returns z, the number of arbitrary bits encoded.
func (t *Thm15) PayloadBits() int { return t.code.PayloadBits() }

// V returns the number of database rows (the shattered-set size).
func (t *Thm15) V() int { return t.sh.V() }

// NumCols returns the database width, 2d.
func (t *Thm15) NumCols() int { return 2 * t.sh.D() }

// K returns the itemset size of decoding queries.
func (t *Thm15) K() int { return t.k }

// QueryEps returns the ε at which the indicator oracle is queried.
func (t *Thm15) QueryEps() float64 { return t.eps }

// codewordColumns returns how many payload columns carry codeword bits.
func (t *Thm15) codewordColumns() int {
	v := t.sh.V()
	return (t.code.CodewordBits() + v - 1) / v
}

// Encode builds the 2d-column, v-row hard database carrying payload.
func (t *Thm15) Encode(payload *bitvec.Vector) (*dataset.Database, error) {
	if payload.Len() != t.PayloadBits() {
		return nil, fmt.Errorf("lowerbound: thm15 payload %d bits, want %d", payload.Len(), t.PayloadBits())
	}
	cw, err := t.code.Encode(payload)
	if err != nil {
		return nil, err
	}
	d, v := t.sh.D(), t.sh.V()
	db := dataset.NewDatabase(2 * d)
	for i := 0; i < v; i++ {
		row := bitvec.New(2 * d)
		x := t.sh.Row(i)
		for _, a := range x.Ones() {
			row.Set(a)
		}
		for j := 0; j < d; j++ {
			pos := j*v + i // column-major codeword layout
			if pos < cw.Len() && cw.Get(pos) {
				row.Set(d + j)
			}
		}
		db.AddRow(row)
	}
	return db, nil
}

// Query returns the k-itemset probing pattern s against payload column j.
func (t *Thm15) Query(s uint64, j int) dataset.Itemset {
	return t.sh.TsUint(s).Union(dataset.MustItemset(t.sh.D() + j))
}

// Decode recovers the payload from any valid indicator oracle at
// QueryEps. Per column it gathers all 2^v threshold bits, finds a
// Lemma 19-consistent vector, and finally ECC-decodes the assembled
// codeword.
func (t *Thm15) Decode(oracle IndicatorOracle) (*bitvec.Vector, error) {
	v := t.sh.V()
	cw := bitvec.New(t.code.CodewordBits())
	bs := make([]bool, 1<<uint(v))
	for j := 0; j < t.codewordColumns(); j++ {
		for s := range bs {
			bs[s] = oracle.Frequent(t.Query(uint64(s), j))
		}
		tPrime, err := Lemma19Decode(bs, v, t.eps)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: thm15 column %d: %w", j, err)
		}
		for i := 0; i < v; i++ {
			pos := j*v + i
			if pos >= cw.Len() {
				break
			}
			cw.SetBool(pos, tPrime>>uint(i)&1 == 1)
		}
	}
	return t.code.Decode(cw)
}

// Thm15Amplified is the ε = o(1) amplification of Theorem 15: m
// independent core databases are tagged with distinct ((k−1)/2)-subsets
// on a third attribute segment and concatenated. A single For-All
// indicator sketch of the big database at ε = 1/(50m) answers, for
// every block i, all core queries on block i at threshold 1/50 — so it
// encodes m payloads at once, multiplying the lower bound by 1/ε.
// k must be odd and ≥ 3 (the paper's hypothesis).
type Thm15Amplified struct {
	core *Thm15
	m    int
	k    int
}

// NewThm15Amplified builds the amplified instance: overall query size
// k (odd, ≥ 3), core width parameter w, and m ≥ 1 blocks.
func NewThm15Amplified(k, w, m int) (*Thm15Amplified, error) {
	if k < 3 || k%2 == 0 {
		return nil, fmt.Errorf("lowerbound: amplified thm15 needs odd k ≥ 3, got %d", k)
	}
	if m < 1 {
		return nil, fmt.Errorf("lowerbound: amplified thm15 needs m ≥ 1, got %d", m)
	}
	kCore := (k + 1) / 2
	core, err := NewThm15(kCore, w, DefaultThm15Eps)
	if err != nil {
		return nil, err
	}
	d := core.sh.D()
	tagSize := (k - 1) / 2
	if int64(m) > combin.Binomial(d, tagSize) {
		return nil, fmt.Errorf("lowerbound: amplified thm15 needs m ≤ C(%d,%d) = %d, got %d",
			d, tagSize, combin.Binomial(d, tagSize), m)
	}
	return &Thm15Amplified{core: core, m: m, k: k}, nil
}

// Blocks returns m, the number of concatenated core databases.
func (a *Thm15Amplified) Blocks() int { return a.m }

// Core returns the underlying ε = 1/50 instance.
func (a *Thm15Amplified) Core() *Thm15 { return a.core }

// PayloadBits returns m × core payload.
func (a *Thm15Amplified) PayloadBits() int { return a.m * a.core.PayloadBits() }

// NumCols returns the database width, 3d.
func (a *Thm15Amplified) NumCols() int { return 3 * a.core.sh.D() }

// NumRows returns m·v.
func (a *Thm15Amplified) NumRows() int { return a.m * a.core.V() }

// K returns the overall query itemset size.
func (a *Thm15Amplified) K() int { return a.k }

// QueryEps returns ε = 1/(50·m): the sub-constant precision the big
// sketch must be built for.
func (a *Thm15Amplified) QueryEps() float64 { return DefaultThm15Eps / float64(a.m) }

// tag returns block i's ((k−1)/2)-subset of [d] (colex-unranked).
func (a *Thm15Amplified) tag(i int) []int {
	return combin.Subset(int64(i), a.core.sh.D(), (a.k-1)/2)
}

// Encode builds the 3d-column, m·v-row amplified database.
func (a *Thm15Amplified) Encode(payload *bitvec.Vector) (*dataset.Database, error) {
	if payload.Len() != a.PayloadBits() {
		return nil, fmt.Errorf("lowerbound: amplified payload %d bits, want %d", payload.Len(), a.PayloadBits())
	}
	d := a.core.sh.D()
	per := a.core.PayloadBits()
	db := dataset.NewDatabase(3 * d)
	for i := 0; i < a.m; i++ {
		sub := bitvec.New(per)
		for b := 0; b < per; b++ {
			if payload.Get(i*per + b) {
				sub.Set(b)
			}
		}
		coreDB, err := a.core.Encode(sub)
		if err != nil {
			return nil, err
		}
		tag := a.tag(i)
		for r := 0; r < coreDB.NumRows(); r++ {
			row := bitvec.New(3 * d)
			for _, c := range coreDB.Row(r).Ones() {
				row.Set(c)
			}
			for _, tc := range tag {
				row.Set(2*d + tc)
			}
			db.AddRow(row)
		}
	}
	return db, nil
}

// blockOracle exposes core queries on block i through the big oracle.
type blockOracle struct {
	outer IndicatorOracle
	tagIt dataset.Itemset // T′_i ⊆ [2d, 3d)
}

// Frequent maps a core (k+1)/2-itemset T* ⊆ [2d] to T* ∪ T′_i and
// forwards it. f_{T*∪T′_i}(D) = f_{T*}(D_i)/m, so the big oracle at
// ε = 1/(50m) answers exactly the core threshold question at 1/50.
func (b blockOracle) Frequent(t dataset.Itemset) bool {
	return b.outer.Frequent(t.Union(b.tagIt))
}

// Decode recovers all m payload blocks from any valid indicator
// oracle for the amplified database at QueryEps.
func (a *Thm15Amplified) Decode(oracle IndicatorOracle) (*bitvec.Vector, error) {
	d := a.core.sh.D()
	per := a.core.PayloadBits()
	out := bitvec.New(a.PayloadBits())
	for i := 0; i < a.m; i++ {
		attrs := make([]int, 0, (a.k-1)/2)
		for _, tc := range a.tag(i) {
			attrs = append(attrs, 2*d+tc)
		}
		blk := blockOracle{outer: oracle, tagIt: dataset.MustItemset(attrs...)}
		sub, err := a.core.Decode(blk)
		if err != nil {
			return nil, fmt.Errorf("lowerbound: amplified block %d: %w", i, err)
		}
		for b := 0; b < per; b++ {
			if sub.Get(b) {
				out.Set(i*per + b)
			}
		}
	}
	return out, nil
}
