package lowerbound

import (
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/rng"
)

func randomBits(r *rng.RNG, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if r.Bool() {
			v.Set(i)
		}
	}
	return v
}

func TestThm13Validation(t *testing.T) {
	cases := []struct{ d, k, m int }{
		{7, 2, 2}, // odd d
		{8, 1, 2}, // k < 2
		{8, 2, 5}, // m > C(4,1) = 4
		{8, 2, 0}, // m < 1
		{8, 5, 2}, // m > C(4,4) = 1
	}
	for _, c := range cases {
		if _, err := NewThm13(c.d, c.k, c.m); err == nil {
			t.Errorf("NewThm13(%d,%d,%d) should fail", c.d, c.k, c.m)
		}
	}
	if _, err := NewThm13(8, 2, 4); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestThm13EncodeProperties(t *testing.T) {
	inst, err := NewThm13(12, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if inst.PayloadBits() != 6*6 {
		t.Fatalf("PayloadBits = %d, want 36", inst.PayloadBits())
	}
	r := rng.New(1)
	payload := randomBits(r, inst.PayloadBits())
	db, err := inst.Encode(payload, 1)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumRows() != 6 || db.NumCols() != 12 {
		t.Fatalf("db shape %dx%d, want 6x12", db.NumRows(), db.NumCols())
	}
	// Query frequencies: exactly 1/m for set bits, 0 for clear.
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			f := db.Frequency(inst.Query(i, j))
			want := 0.0
			if payload.Get(i*6 + j) {
				want = 1.0 / 6
			}
			if f != want {
				t.Fatalf("f(T_{%d,%d}) = %g, want %g", i, j, f, want)
			}
		}
	}
}

func TestThm13DuplicationInvariance(t *testing.T) {
	inst, _ := NewThm13(8, 2, 4)
	r := rng.New(2)
	payload := randomBits(r, inst.PayloadBits())
	db1, _ := inst.Encode(payload, 1)
	db5, _ := inst.Encode(payload, 5)
	if db5.NumRows() != 5*db1.NumRows() {
		t.Fatal("duplication should multiply rows")
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			q := inst.Query(i, j)
			if db1.Frequency(q) != db5.Frequency(q) {
				t.Fatal("duplication must not change frequencies")
			}
		}
	}
}

func TestThm13EncodeErrors(t *testing.T) {
	inst, _ := NewThm13(8, 2, 4)
	if _, err := inst.Encode(bitvec.New(5), 1); err == nil {
		t.Error("wrong payload size should fail")
	}
	if _, err := inst.Encode(bitvec.New(inst.PayloadBits()), 0); err == nil {
		t.Error("dup = 0 should fail")
	}
}

func TestThm13DecodeExactAndAdversarial(t *testing.T) {
	inst, err := NewThm13(16, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	payload := randomBits(r, inst.PayloadBits())
	db, err := inst.Encode(payload, 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, oracle := range map[string]IndicatorOracle{
		"exact":       ExactIndicator{DB: db, Eps: inst.QueryEps()},
		"adversarial": AdversarialIndicator{DB: db, Eps: inst.QueryEps(), Seed: 99},
	} {
		got := inst.Decode(oracle)
		if !got.Equal(payload) {
			t.Errorf("%s oracle: payload not recovered (Hamming %d)", name, got.HammingDistance(payload))
		}
	}
}

// The theorem's content: a valid SUBSAMPLE For-All indicator sketch
// must carry the whole payload — and therefore must be at least
// payload-sized.
func TestThm13DecodeFromSubsampleSketch(t *testing.T) {
	inst, err := NewThm13(16, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	payload := randomBits(r, inst.PayloadBits())
	db, err := inst.Encode(payload, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{K: inst.K(), Eps: inst.QueryEps(), Delta: 0.02, Mode: core.ForAll, Task: core.Indicator}
	sk, err := core.Subsample{Seed: 7}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	got := inst.Decode(sk)
	if !got.Equal(payload) {
		t.Fatalf("subsample sketch: payload not recovered (Hamming %d of %d)",
			got.HammingDistance(payload), payload.Len())
	}
	if sk.SizeBits() < int64(inst.PayloadBits()) {
		t.Fatalf("impossible: sketch of %d bits decoded %d arbitrary bits",
			sk.SizeBits(), inst.PayloadBits())
	}
}

func TestThm13DecodeFromReleaseDB(t *testing.T) {
	inst, _ := NewThm13(8, 2, 4)
	r := rng.New(5)
	payload := randomBits(r, inst.PayloadBits())
	db, _ := inst.Encode(payload, 1)
	p := core.Params{K: 2, Eps: inst.QueryEps(), Delta: 0.1, Mode: core.ForAll, Task: core.Indicator}
	sk, err := core.ReleaseDB{}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Decode(sk); !got.Equal(payload) {
		t.Fatal("release-db sketch: payload not recovered")
	}
}

// Failure injection: a deliberately undersized sample is not a valid
// sketch and decoding should (usually) corrupt the payload — but it
// must never panic.
func TestThm13UndersizedSketchDegrades(t *testing.T) {
	inst, _ := NewThm13(16, 2, 8)
	r := rng.New(6)
	payload := randomBits(r, inst.PayloadBits())
	db, _ := inst.Encode(payload, 1)
	p := core.Params{K: 2, Eps: inst.QueryEps(), Delta: 0.1, Mode: core.ForAll, Task: core.Indicator}
	sk, err := core.Subsample{Seed: 1, SampleOverride: 2}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	got := inst.Decode(sk)
	if got.Equal(payload) {
		t.Log("2-row sample happened to decode correctly (unlikely but legal)")
	}
}

// Property: Encode/Decode is the identity for random payloads and
// random valid instances.
func TestQuickThm13RoundTrip(t *testing.T) {
	f := func(seed uint32) bool {
		r := rng.New(uint64(seed))
		d := 2 * (2 + r.Intn(8)) // 4..18 even
		k := 2
		maxM := d / 2 // C(d/2, 1)
		m := 1 + r.Intn(maxM)
		inst, err := NewThm13(d, k, m)
		if err != nil {
			return false
		}
		payload := randomBits(r, inst.PayloadBits())
		db, err := inst.Encode(payload, 1+r.Intn(3))
		if err != nil {
			return false
		}
		got := inst.Decode(ExactIndicator{DB: db, Eps: inst.QueryEps()})
		return got.Equal(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
