package lowerbound

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/rng"
)

// Lemma 19 consistency decoding.
//
// Setting: an unknown t ∈ {0,1}^v; for every pattern s ∈ {0,1}^v an
// indicator bit b_s is available satisfying
//
//	⟨s,t⟩/v > ε   ⇒ b_s = 1,
//	⟨s,t⟩/v < ε/2 ⇒ b_s = 0,
//
// and arbitrary otherwise. A vector t′ is *consistent* with the bits
// when no forced answer contradicts it: b_s = 1 ⇒ ⟨s,t′⟩/v ≥ ε/2 and
// b_s = 0 ⇒ ⟨s,t′⟩/v ≤ ε. Lemma 19 (generalized from ε = 1/50 to any
// ε): every consistent t′ satisfies Hamming(t, t′) ≤ 2⌈εv⌉; at the
// paper's ε = 1/50 this is the "at most v/25 errors" guarantee.
//
// The proof is non-constructive ("take any consistent vector"); here
// decoding is exhaustive over the 2^v candidates for v ≤ MaxExhaustiveV
// (patterns and candidates are packed into machine words, so one
// candidate check is 2^v popcounts), with a randomized greedy local
// search as the large-v fallback.

// MaxExhaustiveV bounds the exhaustive Lemma 19 search (2^v candidates
// × 2^v constraints each).
const MaxExhaustiveV = 14

// Lemma19Bound returns the guaranteed maximum Hamming distance of any
// consistent vector from the truth: 2·⌈εv⌉.
func Lemma19Bound(v int, eps float64) int {
	return 2 * int(math.Ceil(eps*float64(v)))
}

// Lemma19Consistent reports whether candidate t′ (packed bits) is
// consistent with the answer bits bs (bs[s] for pattern s) at level ε.
func Lemma19Consistent(tPrime uint64, bs []bool, v int, eps float64) bool {
	fv := float64(v)
	for s := 0; s < len(bs); s++ {
		ip := float64(bits.OnesCount64(tPrime & uint64(s)))
		if bs[s] {
			if ip/fv < eps/2 {
				return false
			}
		} else if ip/fv > eps {
			return false
		}
	}
	return true
}

// Lemma19Decode finds a consistent t′ for the given answer bits. bs
// must have length 2^v. For v ≤ MaxExhaustiveV the search is
// exhaustive (and therefore always finds the guaranteed-to-exist
// consistent vector); otherwise a seeded greedy local search is used
// and may fail, returning an error.
func Lemma19Decode(bs []bool, v int, eps float64) (uint64, error) {
	if v < 1 || v > 63 {
		return 0, fmt.Errorf("lowerbound: lemma19 v = %d out of range", v)
	}
	if len(bs) != 1<<uint(v) {
		return 0, fmt.Errorf("lowerbound: lemma19 needs 2^%d answers, got %d", v, len(bs))
	}
	if v <= MaxExhaustiveV {
		for t := uint64(0); t < 1<<uint(v); t++ {
			if Lemma19Consistent(t, bs, v, eps) {
				return t, nil
			}
		}
		return 0, fmt.Errorf("lowerbound: lemma19 found no consistent vector (invalid answer bits?)")
	}
	return lemma19Greedy(bs, v, eps)
}

// lemma19Greedy hill-climbs on the number of violated constraints from
// several random restarts.
func lemma19Greedy(bs []bool, v int, eps float64) (uint64, error) {
	r := rng.New(0xFEED ^ uint64(v))
	violations := func(t uint64) int {
		fv := float64(v)
		bad := 0
		for s := 0; s < len(bs); s++ {
			ip := float64(bits.OnesCount64(t & uint64(s)))
			if bs[s] {
				if ip/fv < eps/2 {
					bad++
				}
			} else if ip/fv > eps {
				bad++
			}
		}
		return bad
	}
	// Start 0 is informed: read the singleton patterns, which pin the
	// bits exactly whenever 1/v clears the thresholds (the forced
	// regime); later starts are random.
	var informed uint64
	for i := 0; i < v; i++ {
		if bs[1<<uint(i)] {
			informed |= 1 << uint(i)
		}
	}
	const restarts = 8
	for attempt := 0; attempt < restarts; attempt++ {
		t := informed
		if attempt > 0 {
			t = r.Uint64() & (1<<uint(v) - 1)
		}
		cur := violations(t)
		for cur > 0 {
			improved := false
			for b := 0; b < v; b++ {
				cand := t ^ 1<<uint(b)
				if cv := violations(cand); cv < cur {
					t, cur = cand, cv
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		if cur == 0 {
			return t, nil
		}
	}
	return 0, fmt.Errorf("lowerbound: lemma19 greedy search failed at v=%d", v)
}
