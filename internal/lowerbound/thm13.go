package lowerbound

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/combin"
	"repro/internal/dataset"
)

// Thm13 is the executable form of the Theorem 13 encoding argument
// (and, via the INDEX reduction in internal/comm, of Theorem 14).
//
// The hard family: a database over d attributes with m distinct rows.
// Row i carries a unique (k−1)-subset of the first d/2 attributes (its
// "address", the colex-rank-i subset) and d/2 free payload bits in the
// last d/2 attributes. For the k-itemset
//
//	T_{i,j} = address_i ∪ {d/2 + j},
//
// f_{T_{i,j}} is 1/m when payload bit (i, j) is 1 and 0 otherwise, so
// any valid indicator sketch at ε < 1/m answers T_{i,j} with exactly
// that bit: the sketch stores m·d/2 arbitrary bits and must be at
// least that large. With m = Θ(1/ε) this is the Ω(d/ε) bound.
type Thm13 struct {
	d int // total attributes (even)
	k int // itemset size (≥ 2)
	m int // number of distinct rows = payload rows
}

// NewThm13 validates and creates an instance. Requirements (mirroring
// the theorem's hypotheses): d even, k ≥ 2, and m ≤ C(d/2, k−1) so
// that every row gets a distinct address.
func NewThm13(d, k, m int) (*Thm13, error) {
	if d < 2 || d%2 != 0 {
		return nil, fmt.Errorf("lowerbound: thm13 needs even d ≥ 2, got %d", d)
	}
	if k < 2 {
		return nil, fmt.Errorf("lowerbound: thm13 needs k ≥ 2, got %d", k)
	}
	if m < 1 || int64(m) > combin.Binomial(d/2, k-1) {
		return nil, fmt.Errorf("lowerbound: thm13 needs 1 ≤ m ≤ C(%d,%d) = %d, got %d",
			d/2, k-1, combin.Binomial(d/2, k-1), m)
	}
	return &Thm13{d: d, k: k, m: m}, nil
}

// PayloadBits returns the number of arbitrary bits the database
// encodes: m·(d/2).
func (t *Thm13) PayloadBits() int { return t.m * t.d / 2 }

// D returns the number of attributes of the hard databases.
func (t *Thm13) D() int { return t.d }

// K returns the itemset size of the decoding queries.
func (t *Thm13) K() int { return t.k }

// QueryEps returns the ε at which decoding queries must be asked:
// any ε with ε < 1/m ≤ … works because present itemsets have
// frequency exactly 1/m > ε and absent ones 0 < ε/2. We use
// ε = 1/(m+1) so both indicator answers are forced (no slack-zone
// ambiguity at f = ε).
func (t *Thm13) QueryEps() float64 { return 1 / float64(t.m+1) }

// address returns row i's (k−1)-subset of the first d/2 attributes.
func (t *Thm13) address(i int) []int {
	return combin.Subset(int64(i), t.d/2, t.k-1)
}

// Query returns the k-itemset T_{i,j} that probes payload bit (i, j).
func (t *Thm13) Query(i, j int) dataset.Itemset {
	if i < 0 || i >= t.m || j < 0 || j >= t.d/2 {
		panic(fmt.Sprintf("lowerbound: thm13 query (%d,%d) out of range %dx%d", i, j, t.m, t.d/2))
	}
	attrs := append(t.address(i), t.d/2+j)
	return dataset.MustItemset(attrs...)
}

// Encode builds the hard database for the given payload, duplicating
// each of the m distinct rows dup ≥ 1 times (the theorem's n ≥ 1/ε
// scaling; frequencies are invariant under duplication).
func (t *Thm13) Encode(payload *bitvec.Vector, dup int) (*dataset.Database, error) {
	if payload.Len() != t.PayloadBits() {
		return nil, fmt.Errorf("lowerbound: payload %d bits, want %d", payload.Len(), t.PayloadBits())
	}
	if dup < 1 {
		return nil, fmt.Errorf("lowerbound: dup = %d, need ≥ 1", dup)
	}
	db := dataset.NewDatabase(t.d)
	half := t.d / 2
	for i := 0; i < t.m; i++ {
		row := bitvec.New(t.d)
		for _, a := range t.address(i) {
			row.Set(a)
		}
		for j := 0; j < half; j++ {
			if payload.Get(i*half + j) {
				row.Set(half + j)
			}
		}
		for c := 0; c < dup; c++ {
			db.AddRow(row) // AddRow copies into the arena
		}
	}
	return db, nil
}

// Decode reads the payload back from any valid indicator oracle for
// the encoded database at QueryEps.
func (t *Thm13) Decode(oracle IndicatorOracle) *bitvec.Vector {
	half := t.d / 2
	out := bitvec.New(t.PayloadBits())
	for i := 0; i < t.m; i++ {
		for j := 0; j < half; j++ {
			if oracle.Frequent(t.Query(i, j)) {
				out.Set(i*half + j)
			}
		}
	}
	return out
}
