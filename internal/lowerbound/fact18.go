package lowerbound

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/dataset"
)

// Shattered is the Fact 18 construction (Appendix A): v = k′·log₂(d/k′)
// strings x₁,…,x_v ∈ {0,1}^d such that for every pattern s ∈ {0,1}^v
// there is a k′-itemset T_s with f_{T_s}(x_i) = s_i for all i. In VC
// terms, the x_i form a set shattered by k′-way monotone conjunctions.
//
// Layout (Appendix A): view [d] as k′ blocks of D = d/k′ attributes.
// The v rows form k′ groups of w = log₂(D) rows. Row (b, r) has all
// ones outside block b (the J blocks) and, inside block b, the r-th row
// of the matrix Y^(D) whose column ℓ is the binary representation of ℓ
// (bit r of column ℓ in row r). For s ∈ {0,1}^v, split s into k′ words
// of w bits; word b names an attribute ℓ_b inside block b, and
// T_s = {b·D + ℓ_b : b ∈ [k′]}.
type Shattered struct {
	d, kPrime, w int // d = k′·2^w
}

// NewShattered builds the construction. d must equal k′·2^w for some
// w ≥ 1.
func NewShattered(d, kPrime int) (*Shattered, error) {
	if kPrime < 1 {
		return nil, fmt.Errorf("lowerbound: shattered set needs k′ ≥ 1, got %d", kPrime)
	}
	if d <= 0 || d%kPrime != 0 {
		return nil, fmt.Errorf("lowerbound: shattered set needs k′ | d, got d=%d k′=%d", d, kPrime)
	}
	blockSize := d / kPrime
	if blockSize < 2 || blockSize&(blockSize-1) != 0 {
		return nil, fmt.Errorf("lowerbound: shattered set needs d/k′ a power of two ≥ 2, got %d", blockSize)
	}
	return &Shattered{d: d, kPrime: kPrime, w: bits.TrailingZeros(uint(blockSize))}, nil
}

// V returns the number of shattered strings, v = k′·log₂(d/k′).
func (s *Shattered) V() int { return s.kPrime * s.w }

// D returns the attribute count d.
func (s *Shattered) D() int { return s.d }

// KPrime returns the itemset size k′ of the T_s queries.
func (s *Shattered) KPrime() int { return s.kPrime }

// Row returns x_i (0-indexed), the i-th shattered string.
func (s *Shattered) Row(i int) *bitvec.Vector {
	if i < 0 || i >= s.V() {
		panic(fmt.Sprintf("lowerbound: shattered row %d out of range [0,%d)", i, s.V()))
	}
	blockSize := s.d / s.kPrime
	b, r := i/s.w, i%s.w
	row := bitvec.New(s.d)
	for blk := 0; blk < s.kPrime; blk++ {
		base := blk * blockSize
		if blk != b {
			for c := 0; c < blockSize; c++ {
				row.Set(base + c) // J block: all ones
			}
			continue
		}
		for c := 0; c < blockSize; c++ {
			if c>>uint(r)&1 == 1 { // Y block: bit r of column index
				row.Set(base + c)
			}
		}
	}
	return row
}

// Rows returns all v shattered strings.
func (s *Shattered) Rows() []*bitvec.Vector {
	out := make([]*bitvec.Vector, s.V())
	for i := range out {
		out[i] = s.Row(i)
	}
	return out
}

// Ts returns the k′-itemset T_s for pattern s, which must have length v.
func (s *Shattered) Ts(pattern *bitvec.Vector) dataset.Itemset {
	if pattern.Len() != s.V() {
		panic(fmt.Sprintf("lowerbound: pattern length %d, want %d", pattern.Len(), s.V()))
	}
	blockSize := s.d / s.kPrime
	attrs := make([]int, s.kPrime)
	for b := 0; b < s.kPrime; b++ {
		ell := 0
		for r := 0; r < s.w; r++ {
			if pattern.Get(b*s.w + r) {
				ell |= 1 << uint(r)
			}
		}
		attrs[b] = b*blockSize + ell
	}
	return dataset.MustItemset(attrs...)
}

// TsUint is Ts for patterns packed into a uint64 (bit i = s_i),
// the fast path of the Lemma 19 decoder. v must be ≤ 64.
func (s *Shattered) TsUint(pattern uint64) dataset.Itemset {
	blockSize := s.d / s.kPrime
	attrs := make([]int, s.kPrime)
	for b := 0; b < s.kPrime; b++ {
		ell := int(pattern >> uint(b*s.w) & (1<<uint(s.w) - 1))
		attrs[b] = b*blockSize + ell
	}
	return dataset.MustItemset(attrs...)
}
