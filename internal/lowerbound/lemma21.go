package lowerbound

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/lp"
)

// Lemma 21: given, for every pattern s ∈ {0,1}^v, an estimate f̂_s of
// ⟨s, z⟩/v with |f̂_s − ⟨s,z⟩/v| ≤ ε for an unknown z ∈ [0,1]^v, any
// vector ẑ ∈ [0,1]^v satisfying |⟨s,ẑ⟩/v − f̂_s| ≤ ε for all s has
// (1/v)·‖ẑ − z‖₁ ≤ 4ε.
//
// Lemma21Solve finds the best such ẑ by linear programming: it
// minimizes t subject to −t ≤ ⟨s,ẑ⟩/v − f̂_s ≤ t and 0 ≤ ẑ ≤ 1. The
// returned t is the achieved max deviation; the true z is feasible at
// t ≤ ε, so the minimum is never larger.
func Lemma21Solve(fhat []float64, v int) (zhat []float64, maxDev float64, err error) {
	if v < 1 || v > 20 {
		return nil, 0, fmt.Errorf("lowerbound: lemma21 v = %d out of range", v)
	}
	if len(fhat) != 1<<uint(v) {
		return nil, 0, fmt.Errorf("lowerbound: lemma21 needs 2^%d estimates, got %d", v, len(fhat))
	}
	npat := len(fhat)
	// Standard-form LP variables: [z (v), u (v box slack), t,
	// p (npat upper slacks), q (npat lower slacks)].
	// Rows: v box rows z_j + u_j = 1;
	//       npat rows  ⟨s,z⟩/v − t + p_s = f̂_s   (upper side)
	//       npat rows  ⟨s,z⟩/v + t − q_s = f̂_s   (lower side)
	rows := v + 2*npat
	cols := 2*v + 1 + 2*npat
	A := linalg.NewMatrix(rows, cols)
	B := make([]float64, rows)
	C := make([]float64, cols)
	tIdx := 2 * v
	C[tIdx] = 1 // minimize t
	for j := 0; j < v; j++ {
		A.Set(j, j, 1)
		A.Set(j, v+j, 1)
		B[j] = 1
	}
	for s := 0; s < npat; s++ {
		up := v + s
		lo := v + npat + s
		for j := 0; j < v; j++ {
			if s>>uint(j)&1 == 1 {
				A.Set(up, j, 1/float64(v))
				A.Set(lo, j, 1/float64(v))
			}
		}
		A.Set(up, tIdx, -1)
		A.Set(up, 2*v+1+s, 1)
		B[up] = fhat[s]
		A.Set(lo, tIdx, 1)
		A.Set(lo, 2*v+1+npat+s, -1)
		B[lo] = fhat[s]
	}
	sol, obj, err := lp.Solve(lp.Problem{A: A, B: B, C: C})
	if err != nil {
		return nil, 0, fmt.Errorf("lowerbound: lemma21 LP: %w", err)
	}
	return sol[:v], obj, nil
}
