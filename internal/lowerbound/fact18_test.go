package lowerbound

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dataset"
)

func TestShatteredValidation(t *testing.T) {
	bad := []struct{ d, kp int }{
		{8, 0}, // k' < 1
		{9, 2}, // k' does not divide d
		{6, 2}, // d/k' = 3 not a power of two
		{2, 2}, // d/k' = 1 < 2
	}
	for _, c := range bad {
		if _, err := NewShattered(c.d, c.kp); err == nil {
			t.Errorf("NewShattered(%d,%d) should fail", c.d, c.kp)
		}
	}
	good := []struct{ d, kp, v int }{
		{8, 1, 3},   // v = 1·log2(8)
		{16, 2, 6},  // v = 2·log2(8)
		{16, 4, 8},  // v = 4·log2(4)
		{64, 2, 10}, // v = 2·log2(32)
	}
	for _, c := range good {
		sh, err := NewShattered(c.d, c.kp)
		if err != nil {
			t.Errorf("NewShattered(%d,%d): %v", c.d, c.kp, err)
			continue
		}
		if sh.V() != c.v {
			t.Errorf("V(%d,%d) = %d, want %d", c.d, c.kp, sh.V(), c.v)
		}
	}
}

// The Fact 18 property, exhaustively: for every pattern s there is a
// k'-itemset T_s with f_{T_s}(x_i) = s_i for all i.
func TestShatteringPropertyExhaustive(t *testing.T) {
	for _, c := range []struct{ d, kp int }{{8, 1}, {16, 2}, {16, 4}, {32, 2}} {
		sh, err := NewShattered(c.d, c.kp)
		if err != nil {
			t.Fatal(err)
		}
		v := sh.V()
		rows := sh.Rows()
		// Each x_i as a one-row database.
		dbs := make([]*dataset.Database, v)
		for i, x := range rows {
			dbs[i] = dataset.NewDatabase(c.d)
			dbs[i].AddRow(x.Clone())
		}
		for s := uint64(0); s < 1<<uint(v); s++ {
			T := sh.TsUint(s)
			if T.Len() != c.kp {
				t.Fatalf("(%d,%d): |T_s| = %d, want %d", c.d, c.kp, T.Len(), c.kp)
			}
			for i := 0; i < v; i++ {
				want := s>>uint(i)&1 == 1
				got := dbs[i].Frequency(T) == 1
				if got != want {
					t.Fatalf("(%d,%d): f_{T_%b}(x_%d) = %v, want %v", c.d, c.kp, s, i, got, want)
				}
			}
		}
	}
}

func TestTsMatchesTsUint(t *testing.T) {
	sh, err := NewShattered(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := sh.V()
	for s := uint64(0); s < 1<<uint(v); s++ {
		pat := bitvec.New(v)
		for i := 0; i < v; i++ {
			if s>>uint(i)&1 == 1 {
				pat.Set(i)
			}
		}
		if !sh.Ts(pat).Equal(sh.TsUint(s)) {
			t.Fatalf("Ts and TsUint disagree at s=%b", s)
		}
	}
}

func TestShatteredRowPanics(t *testing.T) {
	sh, _ := NewShattered(8, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Row should panic")
		}
	}()
	sh.Row(sh.V())
}

func TestShatteredDistinctRows(t *testing.T) {
	// The shattered strings must be pairwise distinct (a shattered set
	// of duplicates is impossible).
	sh, _ := NewShattered(32, 4)
	rows := sh.Rows()
	for i := range rows {
		for j := i + 1; j < len(rows); j++ {
			if rows[i].Equal(rows[j]) {
				t.Fatalf("rows %d and %d identical", i, j)
			}
		}
	}
}
