package lowerbound

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/rng"
)

func TestDeValidation(t *testing.T) {
	if _, err := NewDe(8, 8, 1, 1); err == nil {
		t.Error("k < 2 should fail")
	}
	if _, err := NewDe(1, 8, 2, 1); err == nil {
		t.Error("d0 < 2 should fail")
	}
	if _, err := NewDe(8, 1, 2, 1); err == nil {
		t.Error("n < 2 should fail")
	}
	if _, err := NewDe(1024, 8, 4, 1); err == nil {
		t.Error("d0^(k-1) overflow should fail")
	}
}

func TestDeQueryFrequencyIdentity(t *testing.T) {
	// f_T(D1(y)) must equal (A·y)_r / n for every Hadamard row r.
	de, err := NewDe(6, 8, 3, 42) // two factor matrices, 36 query rows
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(30)
	y := randomBits(r, de.N())
	db, err := de.EncodeColumn(y)
	if err != nil {
		t.Fatal(err)
	}
	yf := make([]float64, de.N())
	for j := 0; j < de.N(); j++ {
		if y.Get(j) {
			yf[j] = 1
		}
	}
	ay := de.A().MulVec(yf)
	for row := 0; row < de.QueryRows(); row++ {
		want := ay[row] / float64(de.N())
		got := db.Frequency(de.Query(row, 0))
		if got != want {
			t.Fatalf("row %d: f = %g, want %g", row, got, want)
		}
	}
}

func TestDeL1ExactOracle(t *testing.T) {
	de, err := NewDe(16, 8, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(31)
	y := randomBits(r, de.N())
	db, err := de.EncodeColumn(y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := de.DecodeColumnL1(ExactEstimator{DB: db}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(y) {
		t.Fatalf("exact oracle: column not recovered (Hamming %d)", got.HammingDistance(y))
	}
}

func TestDeL1NoisyOracle(t *testing.T) {
	// Uniformly bounded noise with n·ε < 1/2 leaves rounding exact for
	// a well-conditioned A.
	de, err := NewDe(16, 8, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(32)
	y := randomBits(r, de.N())
	db, err := de.EncodeColumn(y)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.4 / float64(de.N())
	got, err := de.DecodeColumnL1(NoisyEstimator{DB: db, MaxErr: eps, Seed: 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(y) {
		t.Fatalf("noisy oracle: column not recovered (Hamming %d)", got.HammingDistance(y))
	}
}

func TestDeL1SurvivesOutliersL2Breaks(t *testing.T) {
	// The §4.1.1 contrast: a small fraction of wildly wrong answers.
	de, err := NewDe(24, 8, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(33)
	y := randomBits(r, de.N())
	db, err := de.EncodeColumn(y)
	if err != nil {
		t.Fatal(err)
	}
	oracle := OutlierEstimator{
		DB:         db,
		MaxErr:     0.2 / float64(de.N()),
		OutlierErr: 1.0, // garbage answers
		Fraction:   0.08,
		Seed:       6,
	}
	l1, err := de.DecodeColumnL1(oracle, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := de.DecodeColumnL2(oracle, 0)
	if err != nil {
		t.Fatal(err)
	}
	d1 := l1.HammingDistance(y)
	d2 := l2.HammingDistance(y)
	if d1 != 0 {
		t.Errorf("L1 should recover exactly despite outliers; Hamming %d", d1)
	}
	if d2 <= d1 {
		t.Errorf("expected L2 to break under outliers: L1=%d L2=%d", d1, d2)
	}
}

func TestDeLemma25RoundTrip(t *testing.T) {
	de, err := NewDe(24, 16, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if de.PayloadBits() <= 0 {
		t.Fatal("payload must be positive")
	}
	r := rng.New(34)
	payload := randomBits(r, de.PayloadBits())
	db, err := de.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if db.NumCols() != de.NumCols() || db.NumRows() != de.N() {
		t.Fatalf("shape %dx%d", db.NumRows(), db.NumCols())
	}
	got, err := de.Decode(ExactEstimator{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(payload) {
		t.Fatal("Lemma 25 payload not recovered from exact oracle")
	}
	// Noisy oracle within the estimator guarantee.
	eps := 0.3 / float64(de.N())
	got2, err := de.Decode(NoisyEstimator{DB: db, MaxErr: eps, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !got2.Equal(payload) {
		t.Fatal("Lemma 25 payload not recovered from noisy oracle")
	}
}

func TestDeDecodeFromSubsampleSketch(t *testing.T) {
	// The Theorem 16 content: a valid For-All estimator SUBSAMPLE
	// sketch at precision ε carries the whole payload.
	de, err := NewDe(24, 12, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(35)
	payload := randomBits(r, de.PayloadBits())
	db, err := de.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	eps := 0.2 / float64(de.N()) // n·ε ≤ 0.2 per answer
	p := core.Params{K: de.K(), Eps: eps, Delta: 0.05, Mode: core.ForAll, Task: core.Estimator}
	sk, err := core.Subsample{Seed: 19}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := de.Decode(sk.(core.EstimatorSketch))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(payload) {
		t.Fatalf("subsample estimator sketch: payload not recovered (Hamming %d of %d)",
			got.HammingDistance(payload), payload.Len())
	}
	if sk.SizeBits() < int64(de.PayloadBits()) {
		t.Fatalf("impossible: %d-bit sketch decoded %d arbitrary bits", sk.SizeBits(), de.PayloadBits())
	}
}

func TestDeCondition(t *testing.T) {
	de, err := NewDe(16, 8, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	rep := de.Condition(50, 13)
	if rep.MinSingular <= 0 {
		t.Errorf("σ_min = %g, want > 0", rep.MinSingular)
	}
	if rep.PredictedSigma != 4 {
		t.Errorf("predicted σ = %g, want 4", rep.PredictedSigma)
	}
	if rep.SectionRatioMin <= 0 || rep.SectionRatioMin > 1 {
		t.Errorf("section ratio %g out of (0,1]", rep.SectionRatioMin)
	}
}

func TestDeEncodeErrors(t *testing.T) {
	de, _ := NewDe(16, 8, 2, 14)
	if _, err := de.EncodeColumn(bitvec.New(de.N() + 1)); err == nil {
		t.Error("wrong column length should fail")
	}
	if _, err := de.Encode(bitvec.New(de.PayloadBits() + 1)); err == nil {
		t.Error("wrong payload length should fail")
	}
}
