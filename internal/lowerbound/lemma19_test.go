package lowerbound

import (
	"math/bits"
	"testing"

	"repro/internal/rng"
)

// forcedBits fills the answer vector according to the hard rule only
// (every answer forced); valid when no ⟨s,t⟩/v lands in (ε/2, ε).
func forcedBits(truth uint64, v int, eps float64) []bool {
	bs := make([]bool, 1<<uint(v))
	fv := float64(v)
	for s := range bs {
		ip := float64(bits.OnesCount64(truth & uint64(s)))
		bs[s] = ip/fv > eps
	}
	return bs
}

// adversarialBits honors forced answers and flips a coin in the slack
// zone.
func adversarialBits(truth uint64, v int, eps float64, r *rng.RNG) []bool {
	bs := make([]bool, 1<<uint(v))
	fv := float64(v)
	for s := range bs {
		ip := float64(bits.OnesCount64(truth&uint64(s))) / fv
		switch {
		case ip > eps:
			bs[s] = true
		case ip < eps/2:
			bs[s] = false
		default:
			bs[s] = r.Bool()
		}
	}
	return bs
}

func TestLemma19ForcedRegimeExact(t *testing.T) {
	// v < 1/ε: every answer is forced and decoding is exact.
	r := rng.New(10)
	for trial := 0; trial < 10; trial++ {
		v := 6 + r.Intn(6) // 6..11 < 50
		truth := r.Uint64() & (1<<uint(v) - 1)
		bs := forcedBits(truth, v, DefaultThm15Eps)
		got, err := Lemma19Decode(bs, v, DefaultThm15Eps)
		if err != nil {
			t.Fatal(err)
		}
		if got != truth {
			t.Fatalf("v=%d: decoded %b, want %b", v, got, truth)
		}
	}
}

func TestLemma19SlackRegimeDistanceBound(t *testing.T) {
	// ε = 0.2, v = 12: slack zone ⟨s,t⟩ ∈ {2} (1.2 < ip < 2.4), so the
	// adversary has real freedom; any consistent answer must still be
	// within 2⌈εv⌉ = 6 of the truth.
	const v, eps = 12, 0.2
	r := rng.New(11)
	bound := Lemma19Bound(v, eps)
	for trial := 0; trial < 10; trial++ {
		truth := r.Uint64() & (1<<uint(v) - 1)
		bs := adversarialBits(truth, v, eps, r)
		got, err := Lemma19Decode(bs, v, eps)
		if err != nil {
			t.Fatal(err)
		}
		if d := bits.OnesCount64(got ^ truth); d > bound {
			t.Fatalf("distance %d exceeds Lemma 19 bound %d", d, bound)
		}
	}
}

func TestLemma19TruthAlwaysConsistent(t *testing.T) {
	r := rng.New(12)
	for trial := 0; trial < 20; trial++ {
		v := 4 + r.Intn(8)
		eps := 0.05 + r.Float64()*0.3
		truth := r.Uint64() & (1<<uint(v) - 1)
		bs := adversarialBits(truth, v, eps, r)
		if !Lemma19Consistent(truth, bs, v, eps) {
			t.Fatalf("the true vector must always be consistent (v=%d eps=%g)", v, eps)
		}
	}
}

func TestLemma19Bound(t *testing.T) {
	if got := Lemma19Bound(50, 1.0/50); got != 2 {
		t.Errorf("Lemma19Bound(50, 1/50) = %d, want 2 (v/25)", got)
	}
	if got := Lemma19Bound(100, 1.0/50); got != 4 {
		t.Errorf("Lemma19Bound(100, 1/50) = %d, want 4", got)
	}
}

func TestLemma19InputValidation(t *testing.T) {
	if _, err := Lemma19Decode(make([]bool, 8), 4, 0.1); err == nil {
		t.Error("wrong bs length should fail")
	}
	if _, err := Lemma19Decode(make([]bool, 2), 0, 0.1); err == nil {
		t.Error("v = 0 should fail")
	}
}

func TestLemma19NoConsistentVector(t *testing.T) {
	// Garbage answers that force contradictions: all-ones pattern says
	// frequent but every singleton says infrequent — with eps such that
	// both are forced constraints, nothing is consistent.
	const v = 6
	bs := make([]bool, 1<<v)
	bs[(1<<v)-1] = true // demands ≥ ε/2·v ≥ 2 ones with eps=0.5
	// all others false; in particular any t' with ≥... conflicting
	// constraints: t' needs ⟨1...1, t'⟩/v ≥ 0.25 (≥2 ones) yet every
	// weight-2 pattern s with b_s=false forbids ⟨s,t'⟩/v > 0.5 — not
	// contradictory enough; strengthen: all weight-3 patterns false
	// forbids 2 ones among any 3 coords... use exhaustive checker to
	// assert the decoder reports failure OR returns a consistent t'.
	got, err := Lemma19Decode(bs, v, 0.5)
	if err == nil && !Lemma19Consistent(got, bs, v, 0.5) {
		t.Fatal("decoder returned an inconsistent vector without error")
	}
}

func TestLemma19GreedyPath(t *testing.T) {
	// v above MaxExhaustiveV takes the greedy path; in the forced
	// regime the informed start pins the truth immediately.
	const v = MaxExhaustiveV + 2
	r := rng.New(13)
	for trial := 0; trial < 3; trial++ {
		truth := r.Uint64() & (1<<uint(v) - 1)
		bs := forcedBits(truth, v, DefaultThm15Eps)
		got, err := Lemma19Decode(bs, v, DefaultThm15Eps)
		if err != nil {
			t.Fatal(err)
		}
		if got != truth {
			t.Fatalf("greedy forced-regime decode: got %b, want %b", got, truth)
		}
	}
}
