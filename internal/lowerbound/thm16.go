package lowerbound

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/ecc"
	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/rng"
)

// De is the executable form of the Theorem 16 machinery (Lemmas 20,
// 24, 25, built on KRSU [KRSU10] and De [De12]).
//
// Fix k ≥ 2 and draw k−1 random 0/1 matrices A_1,…,A_{k−1} ∈
// {0,1}^{d0×n}. Their Hadamard (row-tensor) product A ∈
// {0,1}^{d0^{k−1}×n} is, with high probability, far from singular and
// its range is a Euclidean section (Rudelson's Lemma 26) — which makes
// the linear map y ↦ A·y invertible from *approximate* data.
//
// The database D0 has n rows, row j being the concatenation of column
// j of every A_t. Appending a secret column y yields D1(y), and for
// every index tuple (i_1,…,i_{k−1}) the k-itemset
//
//	T = {t·d0 + i_t : t} ∪ {payload column}
//
// has frequency (A·y)_r / n. A valid For-All estimator sketch
// therefore hands the decoder the vector A·y with entrywise error
// ≤ n·ε, and L1 minimization (De's LP decoding, robust to a γ fraction
// of answers with much larger error) recovers y. Lemma 25 extends this
// to d0 payload columns holding an error-corrected encoding of an
// arbitrary payload, giving the Ω̃(d/ε²) bound; the Theorem 16 outer
// amplification multiplies it by k·log(d/k) exactly as in Theorem 15.
type De struct {
	d0, n, k int
	mats     []*linalg.Matrix
	a        *linalg.Matrix
	code     *ecc.Code
}

// NewDe draws the random matrices from seed and prepares the instance.
// k ≥ 2; d0^(k−1) is the number of queries per payload column, so keep
// d0 and k small together.
func NewDe(d0, n, k int, seed uint64) (*De, error) {
	if k < 2 {
		return nil, fmt.Errorf("lowerbound: de needs k ≥ 2, got %d", k)
	}
	if d0 < 2 || n < 2 {
		return nil, fmt.Errorf("lowerbound: de needs d0, n ≥ 2, got %d, %d", d0, n)
	}
	rows := 1
	for t := 0; t < k-1; t++ {
		rows *= d0
		if rows > 1<<20 {
			return nil, fmt.Errorf("lowerbound: de query count d0^(k-1) too large")
		}
	}
	r := rng.New(seed)
	mats := make([]*linalg.Matrix, k-1)
	for t := range mats {
		m := linalg.NewMatrix(d0, n)
		for i := range m.Data {
			if r.Bool() {
				m.Data[i] = 1
			}
		}
		mats[t] = m
	}
	a := linalg.HadamardProduct(mats...)
	code, err := ecc.NewCodeFitting(d0*n, n)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: de cannot fit code into %d×%d cells: %w", d0, n, err)
	}
	return &De{d0: d0, n: n, k: k, mats: mats, a: a, code: code}, nil
}

// A returns the Hadamard-product query matrix (read-only).
func (de *De) A() *linalg.Matrix { return de.a }

// N returns the number of database rows.
func (de *De) N() int { return de.n }

// QueryRows returns d0^(k−1), the number of queries per payload column.
func (de *De) QueryRows() int { return de.a.R }

// PayloadBits returns the Lemma 25 payload size.
func (de *De) PayloadBits() int { return de.code.PayloadBits() }

// NumCols returns the Lemma 25 database width, (k−1)·d0 + d0 = k·d0.
func (de *De) NumCols() int { return de.k * de.d0 }

// K returns the query itemset size.
func (de *De) K() int { return de.k }

// baseCols returns the width of D0, (k−1)·d0.
func (de *De) baseCols() int { return (de.k - 1) * de.d0 }

// baseRow returns row j of D0 as a bit vector over width cols.
func (de *De) baseRow(j, width int) *bitvec.Vector {
	row := bitvec.New(width)
	for t, m := range de.mats {
		for i := 0; i < de.d0; i++ {
			if m.At(i, j) == 1 {
				row.Set(t*de.d0 + i)
			}
		}
	}
	return row
}

// Query returns the k-itemset for Hadamard row r and payload column c
// (c indexes the payload segment; pass 0 for the Lemma 24 single
// column).
func (de *De) Query(r, c int) dataset.Itemset {
	attrs := make([]int, 0, de.k)
	// Decode r into the index tuple, last factor least significant —
	// matching linalg.HadamardProduct's row order.
	for t := de.k - 2; t >= 0; t-- {
		attrs = append(attrs, t*de.d0+r%de.d0)
		r /= de.d0
	}
	attrs = append(attrs, de.baseCols()+c)
	return dataset.MustItemset(attrs...)
}

// EncodeColumn builds the Lemma 24 database D1(y): D0 plus the single
// secret column y (length n).
func (de *De) EncodeColumn(y *bitvec.Vector) (*dataset.Database, error) {
	if y.Len() != de.n {
		return nil, fmt.Errorf("lowerbound: de column length %d, want %d", y.Len(), de.n)
	}
	width := de.baseCols() + 1
	db := dataset.NewDatabase(width)
	for j := 0; j < de.n; j++ {
		row := de.baseRow(j, width)
		if y.Get(j) {
			row.Set(width - 1)
		}
		db.AddRow(row)
	}
	return db, nil
}

// gather collects n·Estimate for every Hadamard row against payload
// column c.
func (de *De) gather(oracle EstimatorOracle, c int) []float64 {
	b := make([]float64, de.QueryRows())
	for r := range b {
		b[r] = float64(de.n) * oracle.Estimate(de.Query(r, c))
	}
	return b
}

// DecodeColumnL1 reconstructs the secret column from any valid
// estimator oracle by De's LP decoding:
// argmin_{x∈[0,1]^n} ‖A·x − b‖₁, rounded to bits.
func (de *De) DecodeColumnL1(oracle EstimatorOracle, c int) (*bitvec.Vector, error) {
	b := de.gather(oracle, c)
	x, _, err := lp.L1Regression(de.a, b)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: de L1 decode: %w", err)
	}
	return roundBits(x), nil
}

// DecodeColumnL2 is the KRSU-style baseline: least-squares
// reconstruction (pseudo-inverse). It matches L1 under uniformly
// bounded error but is dragged arbitrarily far by a few outlier
// answers — the contrast §4.1.1 draws.
func (de *De) DecodeColumnL2(oracle EstimatorOracle, c int) (*bitvec.Vector, error) {
	b := de.gather(oracle, c)
	x, err := linalg.LeastSquares(de.a, b, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: de L2 decode: %w", err)
	}
	return roundBits(x), nil
}

func roundBits(x []float64) *bitvec.Vector {
	v := bitvec.New(len(x))
	for i, f := range x {
		if f >= 0.5 {
			v.Set(i)
		}
	}
	return v
}

// Encode builds the Lemma 25 database D2(payload): D0 plus d0 payload
// columns carrying the error-corrected encoding of payload
// (column-major, column c = codeword bits [c·n, (c+1)·n)).
func (de *De) Encode(payload *bitvec.Vector) (*dataset.Database, error) {
	if payload.Len() != de.PayloadBits() {
		return nil, fmt.Errorf("lowerbound: de payload %d bits, want %d", payload.Len(), de.PayloadBits())
	}
	cw, err := de.code.Encode(payload)
	if err != nil {
		return nil, err
	}
	width := de.NumCols()
	db := dataset.NewDatabase(width)
	for j := 0; j < de.n; j++ {
		row := de.baseRow(j, width)
		for c := 0; c < de.d0; c++ {
			pos := c*de.n + j
			if pos < cw.Len() && cw.Get(pos) {
				row.Set(de.baseCols() + c)
			}
		}
		db.AddRow(row)
	}
	return db, nil
}

// Decode runs the full Lemma 25 reconstruction: L1-decode every
// payload column, reassemble the codeword, and ECC-decode. Columns
// align with ECC blocks, so a bounded fraction of wrong columns per
// block is repaired.
func (de *De) Decode(oracle EstimatorOracle) (*bitvec.Vector, error) {
	cw := bitvec.New(de.code.CodewordBits())
	cols := (cw.Len() + de.n - 1) / de.n
	for c := 0; c < cols; c++ {
		col, err := de.DecodeColumnL1(oracle, c)
		if err != nil {
			return nil, err
		}
		for j := 0; j < de.n; j++ {
			pos := c*de.n + j
			if pos >= cw.Len() {
				break
			}
			cw.SetBool(pos, col.Get(j))
		}
	}
	return de.code.Decode(cw)
}

// ConditionReport summarizes the Lemma 26 quantities for the drawn
// matrices: the smallest singular value of A against the √(d0^(k−1))
// prediction, and an empirical lower bound on the Euclidean-section
// ratio of range(A).
type ConditionReport struct {
	MinSingular     float64
	PredictedSigma  float64 // √(d0^(k−1))
	SectionRatioMin float64 // min over sampled y of ‖Ay‖₁/(√z‖Ay‖₂)
}

// Condition measures the Lemma 26 quantities with `trials` random
// probes of the section ratio.
func (de *De) Condition(trials int, seed uint64) ConditionReport {
	rep := ConditionReport{
		MinSingular:     linalg.MinSingularValue(de.a),
		PredictedSigma:  math.Sqrt(float64(de.QueryRows())),
		SectionRatioMin: math.Inf(1),
	}
	r := rng.New(seed)
	for i := 0; i < trials; i++ {
		y := make([]float64, de.n)
		for j := range y {
			y[j] = r.Float64()*2 - 1
		}
		ratio := linalg.SectionRatio(de.a.MulVec(y))
		if ratio < rep.SectionRatioMin {
			rep.SectionRatioMin = ratio
		}
	}
	return rep
}
