// Package lowerbound makes the paper's lower-bound proofs executable.
//
// Every lower bound in the paper is an encoding argument: a family of
// databases is constructed so that an arbitrary bit string (the
// payload) can be written into a database and then read back out of
// *any valid sketch* of that database. Because the payload is
// incompressible, the sketch must be at least as large as the payload.
//
// This package implements each construction as an Encode half (payload
// → hard database) and a Decode half (query oracle → payload), where
// the oracle abstracts "any valid sketch":
//
//   - Theorem 13/14 (thm13.go): the Ω(d/ε) indicator bound; one free
//     bit per (row, free-column) pair.
//   - Fact 18 (fact18.go): the shattered-set construction underlying
//     the Theorem 15/16 amplifications.
//   - Theorem 15 (lemma19.go, thm15.go): the Ω(k·d·log(d/k)/ε)
//     indicator bound; Lemma 19 consistency decoding plus an
//     error-correcting code, then block amplification for small ε.
//   - Theorem 16 (thm16.go): the Ω̃(k·d·log(d/k)/ε²) estimator bound;
//     De's L1 (LP) reconstruction over Hadamard-product query matrices,
//     with the KRSU L2 baseline for contrast.
//
// Decoding from an exact oracle checks the construction; decoding from
// a SUBSAMPLE sketch at the Lemma 9 size demonstrates the theorem's
// content (the sketch really does carry the payload); decoding from an
// adversarial-but-valid oracle exercises the slack the definitions
// permit.
package lowerbound

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// IndicatorOracle abstracts any valid itemset-frequency-indicator
// sketch (Definitions 1 and 3): the decoders only require Frequent.
type IndicatorOracle interface {
	Frequent(t dataset.Itemset) bool
}

// EstimatorOracle abstracts any valid itemset-frequency-estimator
// sketch (Definitions 2 and 4).
type EstimatorOracle interface {
	Estimate(t dataset.Itemset) float64
}

// Statically ensure core sketches plug in as oracles.
var (
	_ IndicatorOracle = core.Sketch(nil)
)

// ExactIndicator answers threshold queries from the true database: 1
// iff f_T ≥ eps. It is the "perfect sketch" witness — any valid
// indicator sketch must agree with it outside the (ε/2, ε) slack zone.
type ExactIndicator struct {
	DB  *dataset.Database
	Eps float64
}

// Frequent implements IndicatorOracle.
func (o ExactIndicator) Frequent(t dataset.Itemset) bool {
	return o.DB.Frequency(t) >= o.Eps
}

// AdversarialIndicator is a *valid* indicator oracle that answers as
// unhelpfully as the definitions allow: forced answers are honored,
// but any query whose frequency lies in [ε/2, ε] is answered by a
// deterministic pseudo-random coin. Decoders must survive it; it is
// the failure-injection half of the test suite.
type AdversarialIndicator struct {
	DB   *dataset.Database
	Eps  float64
	Seed uint64
}

// Frequent implements IndicatorOracle.
func (o AdversarialIndicator) Frequent(t dataset.Itemset) bool {
	f := o.DB.Frequency(t)
	if f > o.Eps {
		return true
	}
	if f < o.Eps/2 {
		return false
	}
	// Unforced: answer adversarially-arbitrarily but deterministically,
	// keyed by the itemset.
	h := o.Seed
	for _, a := range t.Attrs() {
		h = (h ^ uint64(a+1)) * 0x9E3779B97F4A7C15
		h ^= h >> 29
	}
	return h&1 == 1
}

// ExactEstimator answers estimate queries with the true frequency.
type ExactEstimator struct {
	DB *dataset.Database
}

// Estimate implements EstimatorOracle.
func (o ExactEstimator) Estimate(t dataset.Itemset) float64 {
	return o.DB.Frequency(t)
}

// NoisyEstimator perturbs true frequencies by uniform noise in
// [−MaxErr, MaxErr] — a generic valid estimator sketch.
type NoisyEstimator struct {
	DB     *dataset.Database
	MaxErr float64
	Seed   uint64
}

// Estimate implements EstimatorOracle.
func (o NoisyEstimator) Estimate(t dataset.Itemset) float64 {
	f := o.DB.Frequency(t)
	h := rng.New(o.Seed ^ hashItemset(t))
	return f + (h.Float64()*2-1)*o.MaxErr
}

// OutlierEstimator answers most queries within MaxErr but a Fraction of
// queries (chosen pseudo-randomly per itemset) with error up to
// OutlierErr. This is the "accurate only on average" adversary of
// §4.1.1 that breaks L2 reconstruction and motivates De's L1 decoding.
type OutlierEstimator struct {
	DB         *dataset.Database
	MaxErr     float64
	OutlierErr float64
	Fraction   float64
	Seed       uint64
}

// Estimate implements EstimatorOracle.
func (o OutlierEstimator) Estimate(t dataset.Itemset) float64 {
	f := o.DB.Frequency(t)
	h := rng.New(o.Seed ^ hashItemset(t))
	if h.Float64() < o.Fraction {
		return f + (h.Float64()*2-1)*o.OutlierErr
	}
	return f + (h.Float64()*2-1)*o.MaxErr
}

func hashItemset(t dataset.Itemset) uint64 {
	h := uint64(0x8B1A9953C2611731)
	for _, a := range t.Attrs() {
		h = (h ^ uint64(a+1)) * 0x100000001B3
		h ^= h >> 31
	}
	return h
}

// SketchIndicator adapts a core.Sketch into an IndicatorOracle
// (the interfaces already match; this exists for documentation value
// and to hold the conversion in one place).
func SketchIndicator(s core.Sketch) IndicatorOracle { return s }

// SketchEstimator adapts a core.EstimatorSketch into an EstimatorOracle.
func SketchEstimator(s core.EstimatorSketch) EstimatorOracle { return s }
