package lowerbound

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/dataset"
)

// Thm16Amplified is the full Theorem 16 construction: the Fact 18
// outer amplification wrapped around the De/Lemma 25 inner instance,
// multiplying the Ω̃(d/ε²) estimator bound by v = k′·log(d/k′).
//
// Layout (proof of Theorem 16, §4.1.2): v shattered strings x_i over
// the first d attributes; v independent payload databases D_i, each a
// Lemma 25 instance over the same random matrices; the big database D
// has v·n rows, row (i, j) = (x_i, D_i(j)).
//
// For an inner query itemset T and a pattern s, the k-itemset
// T′(T, s) = T_s ∪ shift(T) has
//
//	f_{T′}(D) = ⟨s, z_T⟩ / v,   z_T = (f_T(D_1), …, f_T(D_v)),
//
// so ±ε answers for all T′ hand the decoder 2^v noisy inner products
// per inner query. Lemma 21 (an LP) extracts ẑ_T with small average
// error, and each block i then runs the inner L1 reconstruction on its
// coordinate ẑ_{T,i}.
//
// Deviation from the paper, documented: the paper splices one more
// error-correcting layer across blocks so that the 4% of blocks with
// atypically large Lemma 21 error are repaired; at our experiment
// sizes (v ≤ 6, exact or ±ε-bounded oracles) every block decodes, so
// the outer code would be idle and is omitted. The inner Lemma 25 ECC
// is present and exercised.
type Thm16Amplified struct {
	sh *Shattered
	de *De
	k  int // total query size = k' + de.K()
}

// NewThm16Amplified builds the instance: outer shattered parameters
// (kPrime, w) with d = kPrime·2^w, and the inner De instance (d0 ×
// nRows query matrices, inner query size c ≥ 2, seeded by seed).
func NewThm16Amplified(kPrime, w, d0, nRows, c int, seed uint64) (*Thm16Amplified, error) {
	if w < 1 {
		return nil, fmt.Errorf("lowerbound: thm16amp needs w ≥ 1, got %d", w)
	}
	d := kPrime << uint(w)
	sh, err := NewShattered(d, kPrime)
	if err != nil {
		return nil, err
	}
	if sh.V() > 12 {
		return nil, fmt.Errorf("lowerbound: thm16amp v = %d too large (2^v Lemma 21 constraints per query)", sh.V())
	}
	de, err := NewDe(d0, nRows, c, seed)
	if err != nil {
		return nil, err
	}
	return &Thm16Amplified{sh: sh, de: de, k: kPrime + c}, nil
}

// V returns the amplification factor v.
func (t *Thm16Amplified) V() int { return t.sh.V() }

// K returns the total query itemset size k′ + c.
func (t *Thm16Amplified) K() int { return t.k }

// Inner returns the inner De instance.
func (t *Thm16Amplified) Inner() *De { return t.de }

// PayloadBits returns v × inner payload.
func (t *Thm16Amplified) PayloadBits() int { return t.sh.V() * t.de.PayloadBits() }

// NumCols returns d + k·d0, the amplified database width.
func (t *Thm16Amplified) NumCols() int { return t.sh.D() + t.de.NumCols() }

// NumRows returns v·n.
func (t *Thm16Amplified) NumRows() int { return t.sh.V() * t.de.N() }

// Encode builds the amplified database from a payload of PayloadBits.
func (t *Thm16Amplified) Encode(payload *bitvec.Vector) (*dataset.Database, error) {
	if payload.Len() != t.PayloadBits() {
		return nil, fmt.Errorf("lowerbound: thm16amp payload %d bits, want %d", payload.Len(), t.PayloadBits())
	}
	v := t.sh.V()
	per := t.de.PayloadBits()
	d := t.sh.D()
	db := dataset.NewDatabase(t.NumCols())
	for i := 0; i < v; i++ {
		sub := bitvec.New(per)
		for b := 0; b < per; b++ {
			if payload.Get(i*per + b) {
				sub.Set(b)
			}
		}
		inner, err := t.de.Encode(sub)
		if err != nil {
			return nil, err
		}
		x := t.sh.Row(i)
		for j := 0; j < inner.NumRows(); j++ {
			row := bitvec.New(t.NumCols())
			for _, a := range x.Ones() {
				row.Set(a)
			}
			for _, a := range inner.Row(j).Ones() {
				row.Set(d + a)
			}
			db.AddRow(row)
		}
	}
	return db, nil
}

// Query returns T′(T, s) for inner query (r, col) and pattern s.
func (t *Thm16Amplified) Query(s uint64, r, col int) dataset.Itemset {
	inner := t.de.Query(r, col).Shift(t.sh.D())
	return t.sh.TsUint(s).Union(inner)
}

// mapEstimator serves precomputed per-block estimates to the inner
// decoder, keyed by the inner query itemset.
type mapEstimator map[string]float64

func (m mapEstimator) Estimate(T dataset.Itemset) float64 { return m[T.Key()] }

// Decode reconstructs all v payload blocks from any valid estimator
// oracle for the amplified database.
func (t *Thm16Amplified) Decode(oracle EstimatorOracle) (*bitvec.Vector, error) {
	v := t.sh.V()
	per := t.de.PayloadBits()
	cols := (t.de.code.CodewordBits() + t.de.n - 1) / t.de.n

	// Phase 1: Lemma 21 per inner query.
	blocks := make([]mapEstimator, v)
	for i := range blocks {
		blocks[i] = make(mapEstimator)
	}
	fhat := make([]float64, 1<<uint(v))
	for col := 0; col < cols; col++ {
		for r := 0; r < t.de.QueryRows(); r++ {
			for s := range fhat {
				fhat[s] = oracle.Estimate(t.Query(uint64(s), r, col))
			}
			zhat, _, err := Lemma21Solve(fhat, v)
			if err != nil {
				return nil, fmt.Errorf("lowerbound: thm16amp query (%d,%d): %w", r, col, err)
			}
			key := t.de.Query(r, col).Key()
			for i := 0; i < v; i++ {
				blocks[i][key] = zhat[i]
			}
		}
	}

	// Phase 2: inner Lemma 25 reconstruction per block.
	out := bitvec.New(t.PayloadBits())
	for i := 0; i < v; i++ {
		sub, err := t.de.Decode(blocks[i])
		if err != nil {
			return nil, fmt.Errorf("lowerbound: thm16amp block %d: %w", i, err)
		}
		for b := 0; b < per; b++ {
			if sub.Get(b) {
				out.Set(i*per + b)
			}
		}
	}
	return out, nil
}
