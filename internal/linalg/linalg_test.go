package linalg

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("At/Set broken")
	}
	row := m.Row(1)
	row[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must share storage")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone must be independent")
	}
}

func TestTransposeMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	at := a.T()
	if at.R != 2 || at.C != 3 || at.At(0, 2) != 5 || at.At(1, 0) != 2 {
		t.Fatal("transpose wrong")
	}
	// AᵀA = [[35,44],[44,56]]
	ata := at.Mul(a)
	want := [][]float64{{35, 44}, {44, 56}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if ata.At(i, j) != want[i][j] {
				t.Fatalf("AᵀA[%d][%d] = %g, want %g", i, j, ata.At(i, j), want[i][j])
			}
		}
	}
	v := a.MulVec([]float64{1, -1})
	if v[0] != -1 || v[1] != -1 || v[2] != -1 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestSolveLinear(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	b := []float64{8, -11, -3}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-9) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// Inputs unchanged.
	if a.At(0, 0) != 2 || b[0] != 8 {
		t.Fatal("SolveLinear must not mutate inputs")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("singular system: err = %v, want ErrSingular", err)
	}
	if _, err := SolveLinear(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("non-square should error")
	}
	if _, err := SolveLinear(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestSolveLinearNeedsPivot(t *testing.T) {
	// Zero leading element forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 4, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [4 3]", x)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined consistent system: recovery is exact.
	a := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	xTrue := []float64{2, -1}
	b := a.MulVec(xTrue)
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if !almostEq(x[i], xTrue[i], 1e-9) {
			t.Fatalf("x = %v, want %v", x, xTrue)
		}
	}
}

func TestLeastSquaresResidualOptimality(t *testing.T) {
	r := rng.New(17)
	a := NewMatrix(20, 5)
	for i := range a.Data {
		a.Data[i] = r.Float64()*2 - 1
	}
	b := make([]float64, 20)
	for i := range b {
		b[i] = r.Float64()
	}
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := a.MulVec(x)
	for i := range res {
		res[i] -= b[i]
	}
	base := Norm2(res)
	// Perturbing x in any coordinate direction must not reduce the residual.
	for j := 0; j < 5; j++ {
		for _, eps := range []float64{1e-3, -1e-3} {
			xp := append([]float64(nil), x...)
			xp[j] += eps
			rp := a.MulVec(xp)
			for i := range rp {
				rp[i] -= b[i]
			}
			if Norm2(rp) < base-1e-12 {
				t.Fatalf("perturbation improved LS residual: %g < %g", Norm2(rp), base)
			}
		}
	}
}

func TestLeastSquaresRidgeRankDeficient(t *testing.T) {
	// Duplicate columns: singular normal equations; ridge fixes it.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}, 0); err == nil {
		t.Fatal("rank-deficient LS without ridge should fail")
	}
	x, err := LeastSquares(a, []float64{1, 2, 3}, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(x[0]) {
		t.Fatal("ridge LS produced NaN")
	}
}

func TestSingularValuesKnown(t *testing.T) {
	// diag(3, 2) embedded in a 3x2 matrix.
	a := FromRows([][]float64{{3, 0}, {0, 2}, {0, 0}})
	sv := SingularValues(a)
	if len(sv) != 2 || !almostEq(sv[0], 3, 1e-10) || !almostEq(sv[1], 2, 1e-10) {
		t.Fatalf("sv = %v, want [3 2]", sv)
	}
	// Wide matrix path (transposed internally).
	wide := a.T()
	svw := SingularValues(wide)
	if !almostEq(svw[0], 3, 1e-10) || !almostEq(svw[1], 2, 1e-10) {
		t.Fatalf("wide sv = %v", svw)
	}
}

func TestSingularValuesVsGram(t *testing.T) {
	// Cross-check: singular values squared = eigenvalues of AᵀA; verify
	// via the invariants trace and determinant for a random 4x3 matrix.
	r := rng.New(5)
	a := NewMatrix(4, 3)
	for i := range a.Data {
		a.Data[i] = r.Float64()*2 - 1
	}
	sv := SingularValues(a)
	ata := a.T().Mul(a)
	trace := ata.At(0, 0) + ata.At(1, 1) + ata.At(2, 2)
	sumSq := 0.0
	prodSq := 1.0
	for _, s := range sv {
		sumSq += s * s
		prodSq *= s * s
	}
	if !almostEq(trace, sumSq, 1e-9) {
		t.Errorf("Σσ² = %g, trace(AᵀA) = %g", sumSq, trace)
	}
	det := det3(ata)
	if !almostEq(det, prodSq, 1e-9*math.Max(1, math.Abs(det))) {
		t.Errorf("Πσ² = %g, det(AᵀA) = %g", prodSq, det)
	}
}

func det3(m *Matrix) float64 {
	return m.At(0, 0)*(m.At(1, 1)*m.At(2, 2)-m.At(1, 2)*m.At(2, 1)) -
		m.At(0, 1)*(m.At(1, 0)*m.At(2, 2)-m.At(1, 2)*m.At(2, 0)) +
		m.At(0, 2)*(m.At(1, 0)*m.At(2, 1)-m.At(1, 1)*m.At(2, 0))
}

func TestMinSingularValueSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if sv := MinSingularValue(a); !almostEq(sv, 0, 1e-10) {
		t.Errorf("rank-1 matrix min singular value = %g, want 0", sv)
	}
}

func TestHadamardProduct(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}, {9, 10}})
	h := HadamardProduct(a, b)
	if h.R != 6 || h.C != 2 {
		t.Fatalf("shape %dx%d, want 6x2", h.R, h.C)
	}
	// Row (i,j) = a[i] .* b[j], with j varying fastest.
	want := [][]float64{
		{1 * 5, 2 * 6}, {1 * 7, 2 * 8}, {1 * 9, 2 * 10},
		{3 * 5, 4 * 6}, {3 * 7, 4 * 8}, {3 * 9, 4 * 10},
	}
	for i := range want {
		for j := range want[i] {
			if h.At(i, j) != want[i][j] {
				t.Fatalf("H[%d][%d] = %g, want %g", i, j, h.At(i, j), want[i][j])
			}
		}
	}
	// Single-factor product is the identity operation.
	h1 := HadamardProduct(a)
	if !matEq(h1, a) {
		t.Fatal("single-factor Hadamard product should equal input")
	}
}

func matEq(a, b *Matrix) bool {
	if a.R != b.R || a.C != b.C {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if Norm1(x) != 7 {
		t.Errorf("Norm1 = %g", Norm1(x))
	}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %g", Norm2(x))
	}
	if Dot(x, []float64{1, 1}) != -1 {
		t.Errorf("Dot = %g", Dot(x, []float64{1, 1}))
	}
}

func TestSectionRatio(t *testing.T) {
	// Constant vector: ratio 1 (the L1/L2 gap is largest possible).
	x := []float64{1, 1, 1, 1}
	if !almostEq(SectionRatio(x), 1, 1e-12) {
		t.Errorf("constant vector ratio = %g, want 1", SectionRatio(x))
	}
	// Standard basis vector: ratio 1/√n.
	e := []float64{1, 0, 0, 0}
	if !almostEq(SectionRatio(e), 0.5, 1e-12) {
		t.Errorf("basis vector ratio = %g, want 0.5", SectionRatio(e))
	}
	if SectionRatio([]float64{0, 0}) != 1 {
		t.Error("zero vector convention should be 1")
	}
}

func TestRandomHadamardMinSingular(t *testing.T) {
	// Smoke version of Lemma 26: a random 0/1 Hadamard product with
	// d^(k-1) >> n should be far from singular.
	r := rng.New(23)
	d0, n := 8, 6
	a1 := NewMatrix(d0, n)
	a2 := NewMatrix(d0, n)
	for i := range a1.Data {
		if r.Bool() {
			a1.Data[i] = 1
		}
		if r.Bool() {
			a2.Data[i] = 1
		}
	}
	h := HadamardProduct(a1, a2)
	if sv := MinSingularValue(h); sv < 0.5 {
		t.Errorf("random Hadamard product nearly singular: σ_min = %g", sv)
	}
}

func BenchmarkSingularValues(b *testing.B) {
	r := rng.New(1)
	a := NewMatrix(64, 32)
	for i := range a.Data {
		if r.Bool() {
			a.Data[i] = 1
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SingularValues(a)
	}
}
