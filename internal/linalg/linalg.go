// Package linalg provides the dense linear algebra used by the
// estimator lower-bound machinery (§4 of the paper): Gaussian
// elimination and least squares for the KRSU-style L2 reconstruction,
// a one-sided Jacobi SVD for measuring smallest singular values, and
// Hadamard (row-tensor) products of matrices — the central object of
// Rudelson's Lemma 26.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	R, C int
	Data []float64 // len R*C, row-major
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Matrix{R: r, C: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Row returns row i as a slice sharing storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.R, m.C)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.C != o.R {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d · %dx%d", m.R, m.C, o.R, o.C))
	}
	out := NewMatrix(m.R, o.C)
	for i := 0; i < m.R; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k := 0; k < m.C; k++ {
			a := mrow[k]
			if a == 0 {
				continue
			}
			okrow := o.Row(k)
			for j := 0; j < o.C; j++ {
				orow[j] += a * okrow[j]
			}
		}
	}
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.C != len(x) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d · %d", m.R, m.C, len(x)))
	}
	out := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// ErrSingular is returned when elimination meets a (numerically)
// singular system.
var ErrSingular = errors.New("linalg: singular matrix")

// SolveLinear solves A·x = b for square A by Gauss–Jordan elimination
// with partial pivoting. A and b are not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.R != a.C {
		return nil, fmt.Errorf("linalg: SolveLinear needs square matrix, got %dx%d", a.R, a.C)
	}
	if a.R != len(b) {
		return nil, fmt.Errorf("linalg: dimension mismatch %d vs %d", a.R, len(b))
	}
	n := a.R
	// Augmented working copy.
	w := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, best := col, math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				piv, best = r, v
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if piv != col {
			for j := 0; j < n; j++ {
				wp, wc := w.At(piv, j), w.At(col, j)
				w.Set(piv, j, wc)
				w.Set(col, j, wp)
			}
			x[piv], x[col] = x[col], x[piv]
		}
		// Normalize and eliminate.
		inv := 1 / w.At(col, col)
		for j := 0; j < n; j++ {
			w.Set(col, j, w.At(col, j)*inv)
		}
		x[col] *= inv
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := w.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				w.Set(r, j, w.At(r, j)-f*w.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	return x, nil
}

// LeastSquares returns argmin_x ‖A·x − b‖₂ via the regularized normal
// equations (AᵀA + ridge·I)x = Aᵀb. A tiny ridge keeps rank-deficient
// systems solvable; pass 0 for the exact normal equations.
func LeastSquares(a *Matrix, b []float64, ridge float64) ([]float64, error) {
	if a.R != len(b) {
		return nil, fmt.Errorf("linalg: dimension mismatch %d vs %d", a.R, len(b))
	}
	at := a.T()
	ata := at.Mul(a)
	for i := 0; i < ata.R; i++ {
		ata.Set(i, i, ata.At(i, i)+ridge)
	}
	atb := at.MulVec(b)
	return SolveLinear(ata, atb)
}

// SingularValues returns all singular values of m in decreasing order,
// computed by one-sided Jacobi rotations. Accurate for the modest
// dimensions used in the Lemma 26 experiments.
func SingularValues(m *Matrix) []float64 {
	// Work on a tall copy: one-sided Jacobi orthogonalizes columns.
	var a *Matrix
	if m.R >= m.C {
		a = m.Clone()
	} else {
		a = m.T()
	}
	rows, cols := a.R, a.C
	const maxSweeps = 60
	tol := 1e-13
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < cols-1; p++ {
			for q := p + 1; q < cols; q++ {
				var app, aqq, apq float64
				for i := 0; i < rows; i++ {
					vp, vq := a.At(i, p), a.At(i, q)
					app += vp * vp
					aqq += vq * vq
					apq += vp * vq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
					continue
				}
				off += math.Abs(apq)
				// Jacobi rotation zeroing the (p,q) entry of AᵀA.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < rows; i++ {
					vp, vq := a.At(i, p), a.At(i, q)
					a.Set(i, p, c*vp-s*vq)
					a.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}
	sv := make([]float64, cols)
	for j := 0; j < cols; j++ {
		s := 0.0
		for i := 0; i < rows; i++ {
			v := a.At(i, j)
			s += v * v
		}
		sv[j] = math.Sqrt(s)
	}
	// Sort decreasing (insertion; cols is small).
	for i := 1; i < len(sv); i++ {
		for j := i; j > 0 && sv[j-1] < sv[j]; j-- {
			sv[j-1], sv[j] = sv[j], sv[j-1]
		}
	}
	return sv
}

// MinSingularValue returns the smallest singular value of m.
func MinSingularValue(m *Matrix) float64 {
	sv := SingularValues(m)
	if len(sv) == 0 {
		return 0
	}
	return sv[len(sv)-1]
}

// HadamardProduct returns the row-tensor (Hadamard) product of Definition
// 22: for A_i ∈ R^{ℓ_i×n}, the product A ∈ R^{(Πℓ_i)×n} has
// A[(i_1,…,i_s), h] = Π_j A_j[i_j, h]. Rows are ordered with the last
// index varying fastest.
func HadamardProduct(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		panic("linalg: HadamardProduct of nothing")
	}
	n := ms[0].C
	rows := 1
	for _, m := range ms {
		if m.C != n {
			panic("linalg: HadamardProduct column mismatch")
		}
		rows *= m.R
	}
	out := NewMatrix(rows, n)
	idx := make([]int, len(ms))
	for r := 0; r < rows; r++ {
		orow := out.Row(r)
		for h := 0; h < n; h++ {
			v := 1.0
			for j, m := range ms {
				v *= m.At(idx[j], h)
			}
			orow[h] = v
		}
		// Increment the mixed-radix index, last factor fastest.
		for j := len(ms) - 1; j >= 0; j-- {
			idx[j]++
			if idx[j] < ms[j].R {
				break
			}
			idx[j] = 0
		}
	}
	return out
}

// Norm1 returns Σ|x_i|.
func Norm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Norm2 returns √(Σx_i²).
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Dot returns Σ x_i·y_i.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// SectionRatio returns ‖x‖₁ / (√len(x)·‖x‖₂), the quantity a
// (δ, d′, z)-Euclidean section (Definition 23) bounds below by δ.
// It returns 1 for the zero vector (the bound is vacuous there).
func SectionRatio(x []float64) float64 {
	n2 := Norm2(x)
	if n2 == 0 {
		return 1
	}
	return Norm1(x) / (math.Sqrt(float64(len(x))) * n2)
}
