// Package comm implements the one-way communication-complexity
// framework used by Theorem 14.
//
// In the one-way model, Alice holds x ∈ {0,1}^N, Bob holds an index
// y ∈ [N], Alice sends a single message, and Bob must output x_y with
// probability ≥ 2/3. The INDEX function requires Ω(N) communication
// [Abl96]. Theorem 14 turns any For-Each-Indicator sketching algorithm
// into an INDEX protocol — Alice encodes x into the Theorem 13 hard
// database, sketches it, and sends the sketch; Bob queries the itemset
// T_y — so the sketch must be Ω(N) = Ω(d/ε) bits.
package comm

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/rng"
)

// Protocol is a one-way communication protocol for INDEX on N-bit
// inputs: Alice compresses x into a message, Bob answers an index
// query from the message alone.
type Protocol interface {
	// N returns the input length the protocol is built for.
	N() int
	// AliceMessage encodes Alice's input. The returned length is the
	// message size in bits (the communication cost).
	AliceMessage(x *bitvec.Vector) (msg []byte, bits int, err error)
	// BobAnswer decodes Bob's answer to "x_y = ?" from the message.
	BobAnswer(msg []byte, bits int, y int) (bool, error)
}

// SketchIndexProtocol is the Theorem 14 reduction: the message is a
// serialized For-Each indicator sketch of the Theorem 13 database
// D_x, and Bob answers by querying the deserialized sketch.
type SketchIndexProtocol struct {
	inst     *lowerbound.Thm13
	sketcher core.Sketcher
	params   core.Params
	dup      int
}

// NewSketchIndexProtocol builds the reduction for a d-attribute,
// m-distinct-row Theorem 13 instance (N = m·d/2) using the given
// For-Each indicator sketching algorithm with failure probability
// delta. dup scales the database rows (n = dup·m).
func NewSketchIndexProtocol(d, k, m int, sketcher core.Sketcher, delta float64, dup int) (*SketchIndexProtocol, error) {
	inst, err := lowerbound.NewThm13(d, k, m)
	if err != nil {
		return nil, err
	}
	if dup < 1 {
		dup = 1
	}
	p := core.Params{K: k, Eps: inst.QueryEps(), Delta: delta, Mode: core.ForEach, Task: core.Indicator}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &SketchIndexProtocol{inst: inst, sketcher: sketcher, params: p, dup: dup}, nil
}

// N implements Protocol.
func (pr *SketchIndexProtocol) N() int { return pr.inst.PayloadBits() }

// AliceMessage implements Protocol.
func (pr *SketchIndexProtocol) AliceMessage(x *bitvec.Vector) ([]byte, int, error) {
	if x.Len() != pr.N() {
		return nil, 0, fmt.Errorf("comm: input %d bits, want %d", x.Len(), pr.N())
	}
	db, err := pr.inst.Encode(x, pr.dup)
	if err != nil {
		return nil, 0, err
	}
	sk, err := pr.sketcher.Sketch(db, pr.params)
	if err != nil {
		return nil, 0, err
	}
	var w bitvec.Writer
	sk.MarshalBits(&w)
	return w.Bytes(), w.BitLen(), nil
}

// BobAnswer implements Protocol.
func (pr *SketchIndexProtocol) BobAnswer(msg []byte, bits int, y int) (bool, error) {
	if y < 0 || y >= pr.N() {
		return false, fmt.Errorf("comm: index %d out of range [0,%d)", y, pr.N())
	}
	sk, err := core.UnmarshalSketch(bitvec.NewReader(msg, bits))
	if err != nil {
		return false, err
	}
	half := pr.inst.D() / 2
	return sk.Frequent(pr.inst.Query(y/half, y%half)), nil
}

// GameResult summarizes a run of the INDEX game.
type GameResult struct {
	N           int
	Trials      int
	Correct     int
	MessageBits int // message size of the last trial (constant for fixed x-length)
}

// SuccessRate returns the empirical success probability.
func (g GameResult) SuccessRate() float64 {
	if g.Trials == 0 {
		return 0
	}
	return float64(g.Correct) / float64(g.Trials)
}

// PlayIndex runs `trials` independent INDEX games with uniform random
// x and y and reports the success statistics. Each trial re-runs
// Alice (fresh sketch randomness counts against the protocol, exactly
// as in the communication model).
func PlayIndex(pr Protocol, trials int, seed uint64) (GameResult, error) {
	r := rng.New(seed)
	res := GameResult{N: pr.N(), Trials: trials}
	for i := 0; i < trials; i++ {
		x := bitvec.New(pr.N())
		for b := 0; b < pr.N(); b++ {
			if r.Bool() {
				x.Set(b)
			}
		}
		y := r.Intn(pr.N())
		msg, bits, err := pr.AliceMessage(x)
		if err != nil {
			return res, err
		}
		res.MessageBits = bits
		ans, err := pr.BobAnswer(msg, bits, y)
		if err != nil {
			return res, err
		}
		if ans == x.Get(y) {
			res.Correct++
		}
	}
	return res, nil
}
