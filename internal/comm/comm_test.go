package comm

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/rng"
)

func TestProtocolValidation(t *testing.T) {
	if _, err := NewSketchIndexProtocol(7, 2, 3, core.Subsample{}, 0.1, 1); err == nil {
		t.Error("odd d should fail")
	}
	if _, err := NewSketchIndexProtocol(8, 2, 100, core.Subsample{}, 0.1, 1); err == nil {
		t.Error("oversized m should fail")
	}
}

func TestIndexProtocolCorrectness(t *testing.T) {
	// With a RELEASE-DB "sketch" the protocol is deterministic and must
	// always answer correctly.
	pr, err := NewSketchIndexProtocol(12, 2, 6, core.ReleaseDB{}, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pr.N() != 36 {
		t.Fatalf("N = %d, want 36", pr.N())
	}
	res, err := PlayIndex(pr, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != res.Trials {
		t.Fatalf("release-db protocol wrong on %d/%d trials", res.Trials-res.Correct, res.Trials)
	}
}

func TestIndexProtocolSubsample(t *testing.T) {
	// A SUBSAMPLE-based protocol with δ = 0.05 must succeed on well
	// over 2/3 of trials.
	pr, err := NewSketchIndexProtocol(12, 2, 6, core.Subsample{Seed: 3}, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlayIndex(pr, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessRate() < 0.9 {
		t.Fatalf("success rate %g too low", res.SuccessRate())
	}
	if res.MessageBits <= 0 {
		t.Fatal("message bits not recorded")
	}
}

func TestIndexAllIndicesOneInput(t *testing.T) {
	// Deterministic exhaustive check: every index decodes correctly
	// from a single message (release-db carrier).
	pr, err := NewSketchIndexProtocol(8, 2, 4, core.ReleaseDB{}, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	x := bitvec.New(pr.N())
	for b := 0; b < pr.N(); b++ {
		if r.Bool() {
			x.Set(b)
		}
	}
	msg, bits, err := pr.AliceMessage(x)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < pr.N(); y++ {
		got, err := pr.BobAnswer(msg, bits, y)
		if err != nil {
			t.Fatal(err)
		}
		if got != x.Get(y) {
			t.Fatalf("index %d: got %v, want %v", y, got, x.Get(y))
		}
	}
	// Out-of-range index errors.
	if _, err := pr.BobAnswer(msg, bits, pr.N()); err == nil {
		t.Error("out-of-range index should error")
	}
}

func TestAliceRejectsWrongLength(t *testing.T) {
	pr, _ := NewSketchIndexProtocol(8, 2, 4, core.ReleaseDB{}, 0.1, 1)
	if _, _, err := pr.AliceMessage(bitvec.New(pr.N() + 1)); err == nil {
		t.Error("wrong input length should error")
	}
}

func TestBobRejectsCorruptMessage(t *testing.T) {
	pr, _ := NewSketchIndexProtocol(8, 2, 4, core.ReleaseDB{}, 0.1, 1)
	if _, err := pr.BobAnswer([]byte{0xFF}, 8, 0); err == nil {
		t.Error("corrupt message should error")
	}
}
