package ingest

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	itemsketch "repro"
	"repro/internal/faultio"
)

// The WAL fault taxonomy, mirroring streamcodec_fault_test.go: every
// way a log can be damaged maps to exactly one contract —
//
//	torn active tail      → recovered silently (truncate to the last
//	                        valid record; the crash contract)
//	corrupt sealed record → ErrWALCorrupt naming segment + record
//	corrupt active bytes  → ErrWALCorrupt (only truncation is a crash)
//	transport error       → the bare underlying error, no rewrap
//
// The sweeps run under the chaos CI job (`make chaos`), which matches
// tests named Fault|Chaos|Recovery across FAULT_SEED values.

// buildTornWAL writes a small log and returns its directory, the
// active segment's path, and the appended row count.
func buildTornWAL(t *testing.T, rows int) (dir, active string, n int) {
	t.Helper()
	dir = t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, w, rows)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	if !last.open {
		t.Fatal("fixture should end with an active segment")
	}
	return dir, last.path, rows
}

// TestWALKillAtEveryOffsetRecovery is the kill sweep: the active
// segment is cut at every byte length, and every prefix must recover —
// OpenWAL truncates to a record boundary, replay yields an exact
// prefix of the appended rows, and appending afterwards works. This is
// the file-level image of a crash mid-append: appends only ever extend
// the file, so a kill leaves a prefix.
func TestWALKillAtEveryOffsetRecovery(t *testing.T) {
	dir, active, rows := buildTornWAL(t, 96) // 6 records of 16 rows
	whole, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	fullRows := replayCount(t, dir)
	if fullRows != int64(rows) {
		t.Fatalf("uncut log replays %d rows, want %d", fullRows, rows)
	}
	lastPrefix := int64(-1)
	for cut := 0; cut <= len(whole); cut++ {
		if err := os.WriteFile(active, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16})
		if err != nil {
			t.Fatalf("cut %d: OpenWAL: %v", cut, err)
		}
		got := replayCount(t, dir)
		if got%16 != 0 || got > int64(rows) {
			t.Fatalf("cut %d: replayed %d rows, want a multiple of the 16-row batch ≤ %d", cut, got, rows)
		}
		// Recovery is monotone in the prefix length.
		if got < lastPrefix {
			t.Fatalf("cut %d: replayed %d rows, shorter cut recovered %d", cut, got, lastPrefix)
		}
		lastPrefix = got
		// The reopened log must accept appends on the truncated tail.
		if err := w.Append(testRow(0)...); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		// Restore the fixture for the next cut.
		if err := os.WriteFile(active, whole, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if lastPrefix != int64(rows) {
		t.Fatalf("full-length cut recovered %d rows, want %d", lastPrefix, rows)
	}
}

// TestWALTornTailRecoveryKeepsPrefix pins the prefix property of one
// specific torn tail: cutting mid-final-record loses exactly that
// record, nothing before it.
func TestWALTornTailRecoveryKeepsPrefix(t *testing.T) {
	dir, active, rows := buildTornWAL(t, 96)
	whole, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	// Cut 3 bytes into the last record: find its boundary by scanning.
	valid, _, err := scanSegmentWith(active, 16, nil, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if valid != int64(len(whole)) {
		t.Fatalf("clean segment scans to %d of %d bytes", valid, len(whole))
	}
	if err := os.WriteFile(active, whole[:len(whole)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16}); err != nil {
		t.Fatalf("OpenWAL on torn tail: %v", err)
	}
	got := replayCount(t, dir)
	if got != int64(rows-16) {
		t.Fatalf("torn final record: replayed %d rows, want %d", got, rows-16)
	}
}

// TestWALCorruptSealedRecordFault flips a payload byte in a sealed
// segment: replay must fail with ErrWALCorrupt (wrapping the codec's
// ErrCorruptSketch) and the message must name the segment file and
// record index — sealed corruption is data loss, never skipped.
func TestWALCorruptSealedRecordFault(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, w, 200)
	w.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].open {
		t.Fatal("fixture needs a sealed segment")
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte well inside the first record's chunk data (past the
	// segment header and the envelope + chunk-frame headers).
	off := walHeaderLen + 40
	data[off] ^= 0x40
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = ReplayDir(dir, 16, nil, func([]int) error { return nil })
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("err = %v, want ErrWALCorrupt", err)
	}
	if !errors.Is(err, itemsketch.ErrCorruptSketch) {
		t.Fatalf("err = %v, want the codec cause preserved", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, filepath.Base(segs[0].path)) || !strings.Contains(msg, "record 0") {
		t.Fatalf("error %q does not name the segment and record", msg)
	}
}

// TestWALCorruptActiveNonTailFault corrupts a byte in the middle of
// the active segment (not a pure truncation): OpenWAL must refuse
// rather than silently truncate valid later records away... unless the
// corruption reads as a torn tail, which for a mid-file flip it does
// not (the chunk CRC fails with data still following).
func TestWALCorruptActiveNonTailFault(t *testing.T) {
	dir, active, _ := buildTornWAL(t, 96)
	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	// A byte inside the FIRST record's chunk data; several records
	// follow, so this cannot be a crash artifact.
	data[walHeaderLen+40] ^= 0x40
	if err := os.WriteFile(active, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("OpenWAL on mid-file corruption: %v, want ErrWALCorrupt", err)
	}
}

// TestWALCorruptHeaderFault damages the segment header's checksum in a
// sealed segment: replay refuses the whole segment.
func TestWALCorruptHeaderFault(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, w, 200)
	w.Close()
	segs, _ := listSegments(dir)
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[9] ^= 0xFF // sequence field → header CRC mismatch
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayDir(dir, 16, nil, func([]int) error { return nil }); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("err = %v, want ErrWALCorrupt", err)
	}
}

// TestWALTransportErrorFaultPassthrough injects an I/O failure through
// the ReadWrap seam at a mid-stream offset: the injected error must
// surface bare — not rebranded as corruption — so operators can tell
// a failing disk from a damaged log.
func TestWALTransportErrorFaultPassthrough(t *testing.T) {
	dir, _, _ := buildTornWAL(t, 96)
	seed := faultio.EnvSeed(1)
	wrap := func(r io.Reader) io.Reader {
		return faultio.NewReader(r, faultio.WithSeed(seed), faultio.WithFailAt(200, faultio.ErrInjected))
	}
	_, err := ReplayDir(dir, 16, wrap, func([]int) error { return nil })
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected to pass through", err)
	}
	if errors.Is(err, ErrWALCorrupt) || errors.Is(err, itemsketch.ErrCorruptSketch) {
		t.Fatalf("transport error %v was misclassified as corruption", err)
	}
}

// TestWALShortReadsRecovery drives the replay through a reader that
// returns one byte at a time: framing must be byte-position exact, so
// short reads change nothing.
func TestWALShortReadsRecovery(t *testing.T) {
	dir, _, rows := buildTornWAL(t, 96)
	seed := faultio.EnvSeed(42)
	wrap := func(r io.Reader) io.Reader {
		return faultio.NewReader(r, faultio.WithSeed(seed), faultio.WithShortOps())
	}
	var got int64
	n, err := ReplayDir(dir, 16, wrap, func([]int) error { got++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(rows) || got != int64(rows) {
		t.Fatalf("short reads: replayed %d/%d rows, want %d", n, got, rows)
	}
}

// TestWALWriteFaultSurfaces injects a write failure through WriteWrap:
// the append path reports it instead of acknowledging a row the disk
// never saw.
func TestWALWriteFaultSurfaces(t *testing.T) {
	dir := t.TempDir()
	fails := func(w io.Writer) io.Writer {
		return faultio.NewWriter(w, faultio.WithFailAt(64, faultio.ErrInjected))
	}
	w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 8, WriteWrap: fails})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var sawErr error
	for i := 0; i < 64 && sawErr == nil; i++ {
		sawErr = w.Append(testRow(i)...)
	}
	if !errors.Is(sawErr, faultio.ErrInjected) {
		t.Fatalf("append error = %v, want ErrInjected", sawErr)
	}
}

// TestWALChaosMixedSegments runs the whole taxonomy at once over a
// multi-segment log: seal several segments, tear the active tail,
// verify the sealed prefix replays and the torn tail truncates — then
// corrupt one sealed segment and verify replay now refuses.
func TestWALChaosMixedSegments(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	rows := 320
	fillWAL(t, w, rows)
	// A rotation may have left the active tail empty; keep appending
	// 16-row batches until it holds at least one record to tear.
	for {
		st, err := os.Stat(segName(dir, w.ActiveSegment(), true))
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > walHeaderLen {
			break
		}
		fillWAL(t, w, 16)
		rows += 16
	}
	w.Close()
	segs, _ := listSegments(dir)
	last := segs[len(segs)-1]
	if !last.open || len(segs) < 3 {
		t.Fatalf("fixture: %d segments, open tail %v", len(segs), last.open)
	}
	// Tear the tail: 5 bytes off the end cuts into the final record.
	data, err := os.ReadFile(last.path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(last.path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16}); err != nil {
		t.Fatalf("recovery over torn tail: %v", err)
	}
	got := replayCount(t, dir)
	if got != int64(rows-16) {
		t.Fatalf("after torn tail: replayed %d rows, want %d (exactly the final record lost)", got, rows-16)
	}
	// Now corrupt a sealed segment: the same replay must refuse.
	sealed, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	sealed[walHeaderLen+30] ^= 0x08
	if err := os.WriteFile(segs[0].path, sealed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayDir(dir, 16, nil, func([]int) error { return nil }); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("corrupt sealed segment: err = %v, want ErrWALCorrupt", err)
	}
}

// replayCount replays a directory and returns the row count.
func replayCount(t *testing.T, dir string) int64 {
	t.Helper()
	n, err := ReplayDir(dir, 16, nil, func([]int) error { return nil })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return n
}

// TestWALRecoveryIdempotent reopens a recovered log twice: recovery
// must be idempotent (the second open sees a clean boundary and
// changes nothing).
func TestWALRecoveryIdempotent(t *testing.T) {
	dir, active, _ := buildTornWAL(t, 96)
	data, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(active, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	w1, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16})
	if err != nil {
		t.Fatal(err)
	}
	w1.Close()
	afterFirst, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16})
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()
	afterSecond, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(afterFirst, afterSecond) {
		t.Fatal("second recovery changed the segment")
	}
}
