// Package ingest is the streaming ingest subsystem: a durable
// write-ahead row log (WAL) whose records are envelope-framed row
// batches, and a concurrent sharded ingest pool whose writer workers
// own private sub-sketches merged on read (pool.go).
//
// The WAL makes ingest replayable: rows are appended to segment files
// as standard v2 sketch envelopes (chunked CRC-32 framing, optional
// flate) carrying the batch as a SUBSAMPLE payload, so the replayer is
// just the library's streaming decoder in a loop. A crash can only
// tear the tail of the newest segment — appends never rewrite earlier
// bytes — and the torn tail is detected by the envelope framing and
// truncated at the last valid record boundary on reopen.
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	itemsketch "repro"
	"repro/internal/core"
	"repro/internal/dataset"
)

// WAL segment layout. A log directory holds segments
//
//	wal-00000000.seg   sealed (complete, never appended again)
//	wal-00000001.open  active (appended until rotation seals it)
//
// with strictly increasing sequence numbers. Each segment starts with
// a fixed header:
//
//	offset  size  field
//	     0     4  magic "ISWL"
//	     4     1  segment format version (1)
//	     5     4  attribute universe d (little-endian)
//	     9     8  sequence number (little-endian)
//	    17     4  CRC-32 (IEEE) of bytes 0–16
//
// followed by zero or more records, each one a complete itemsketch
// envelope (version 2: chunked, per-chunk CRC-32, optionally flate-
// compressed) whose payload is a SUBSAMPLE sketch carrying the batch
// rows. Envelopes are self-delimiting, so records are concatenated
// with no extra framing and every record boundary is a byte offset
// the recovery scan can truncate to.
const (
	walVersion   = 1
	walHeaderLen = 21
)

var walMagic = [4]byte{'I', 'S', 'W', 'L'}

// DefaultBatchRows is the number of rows buffered into one WAL record
// when WALConfig.BatchRows is zero.
const DefaultBatchRows = 256

// DefaultSegmentBytes is the rotation threshold when
// WALConfig.SegmentBytes is zero: an active segment that grows past
// this is sealed and a new one opened.
const DefaultSegmentBytes = 4 << 20

// ErrWALCorrupt marks a sealed-segment record that failed its checksum
// or decoded to an impossible batch — real data loss, never silently
// skipped. It wraps the underlying codec error; torn active tails are
// NOT this (they are truncated on open, the crash-recovery contract).
var ErrWALCorrupt = errors.New("ingest: corrupt WAL record")

// WALConfig parameterizes a write-ahead row log.
type WALConfig struct {
	// Dir is the segment directory, created if absent.
	Dir string
	// NumAttrs is the attribute universe size d of logged rows.
	NumAttrs int
	// BatchRows is the number of rows per record (DefaultBatchRows when
	// zero): Append buffers this many rows, then writes one envelope.
	BatchRows int
	// SegmentBytes rotates the active segment once it exceeds this size
	// (DefaultSegmentBytes when zero).
	SegmentBytes int64
	// Compress flate-compresses record envelopes.
	Compress bool
	// SyncEvery fsyncs the active segment after every n records; 0
	// syncs only on rotation and Close. Durability of the tail trades
	// against append throughput exactly here.
	SyncEvery int
	// WriteWrap and ReadWrap interpose on segment I/O — the fault-
	// injection seam (internal/faultio) the recovery tests drive.
	WriteWrap func(io.Writer) io.Writer
	ReadWrap  func(io.Reader) io.Reader
}

func (c *WALConfig) batchRows() int {
	if c.BatchRows <= 0 {
		return DefaultBatchRows
	}
	return c.BatchRows
}

func (c *WALConfig) segmentBytes() int64 {
	if c.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return c.SegmentBytes
}

// walCarrierParams is the Params header stamped on record payloads.
// The batch is not a statistical sketch — the SUBSAMPLE carrier is
// reused for its codec — so the contract fields are fixed sentinels.
var walCarrierParams = core.Params{K: 1, Eps: 0.5, Delta: 0.5, Mode: core.ForEach, Task: core.Estimator}

// WAL is an append-only durable row log. It is not safe for concurrent
// use; the ingest pool serializes appends through its log goroutine.
type WAL struct {
	cfg     WALConfig
	active  *os.File
	size    int64 // bytes written to the active segment
	seq     uint64
	batch   *dataset.Database
	rows    int64 // rows appended over the WAL's lifetime (this process)
	records int64 // records since the last fsync
}

// OpenWAL opens (or creates) the log directory and prepares the active
// segment for appending. A torn tail left by a crash — a final record
// whose envelope is incomplete — is truncated to the last valid record
// boundary before the segment is reused; sealed segments are never
// modified.
func OpenWAL(cfg WALConfig) (*WAL, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("%w: WAL needs a directory", core.ErrInvalidParams)
	}
	if cfg.NumAttrs < 1 {
		return nil, fmt.Errorf("%w: WAL needs d ≥ 1 attributes, got %d", core.ErrInvalidParams, cfg.NumAttrs)
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{cfg: cfg, batch: dataset.NewDatabase(cfg.NumAttrs)}
	segs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := w.openSegment(0); err != nil {
			return nil, err
		}
		return w, nil
	}
	last := segs[len(segs)-1]
	if !last.open {
		// The newest segment was sealed cleanly (or the crash hit after
		// rename); start a fresh active segment after it.
		if err := w.openSegment(last.seq + 1); err != nil {
			return nil, err
		}
		return w, nil
	}
	// Re-adopt the torn-or-clean active segment: scan to the last valid
	// record boundary and truncate anything after it.
	valid, _, err := w.scanSegment(last.path, true)
	if err != nil {
		return nil, fmt.Errorf("recovering %s: %w", filepath.Base(last.path), err)
	}
	if valid < walHeaderLen {
		// The crash hit before the segment header was durable; the file
		// holds nothing recoverable. Recreate it from scratch.
		if err := os.Remove(last.path); err != nil {
			return nil, err
		}
		if err := w.openSegment(last.seq); err != nil {
			return nil, err
		}
		return w, nil
	}
	f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	w.active, w.size, w.seq = f, valid, last.seq
	return w, nil
}

type segmentInfo struct {
	path string
	seq  uint64
	open bool
}

// listSegments returns the directory's WAL segments in ascending
// sequence order.
func listSegments(dir string) ([]segmentInfo, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range ents {
		name := e.Name()
		var seq uint64
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".seg"):
			if _, err := fmt.Sscanf(name, "wal-%08d.seg", &seq); err != nil {
				continue
			}
			segs = append(segs, segmentInfo{path: filepath.Join(dir, name), seq: seq})
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".open"):
			if _, err := fmt.Sscanf(name, "wal-%08d.open", &seq); err != nil {
				continue
			}
			segs = append(segs, segmentInfo{path: filepath.Join(dir, name), seq: seq, open: true})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	for i := 1; i < len(segs); i++ {
		if segs[i].seq == segs[i-1].seq {
			return nil, fmt.Errorf("%w: segment %d exists both sealed and open", ErrWALCorrupt, segs[i].seq)
		}
	}
	return segs, nil
}

func segName(dir string, seq uint64, open bool) string {
	ext := ".seg"
	if open {
		ext = ".open"
	}
	return filepath.Join(dir, fmt.Sprintf("wal-%08d%s", seq, ext))
}

// openSegment creates the active segment file with its header.
func (w *WAL) openSegment(seq uint64) error {
	f, err := os.OpenFile(segName(w.cfg.Dir, seq, true), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	var hdr [walHeaderLen]byte
	copy(hdr[0:4], walMagic[:])
	hdr[4] = walVersion
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(w.cfg.NumAttrs))
	binary.LittleEndian.PutUint64(hdr[9:17], seq)
	binary.LittleEndian.PutUint32(hdr[17:21], crc32.ChecksumIEEE(hdr[:17]))
	var out io.Writer = f
	if w.cfg.WriteWrap != nil {
		out = w.cfg.WriteWrap(out)
	}
	if _, err := out.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	w.active, w.size, w.seq = f, walHeaderLen, seq
	return nil
}

// Append logs one row given as attribute indices. The row is buffered;
// it reaches the active segment when the batch fills (BatchRows) and
// the disk when the segment is synced (SyncEvery, rotation, or Close).
func (w *WAL) Append(attrs ...int) error {
	if w.active == nil {
		return fmt.Errorf("%w: WAL is closed", core.ErrInvalidParams)
	}
	w.batch.AddRowAttrs(attrs...)
	w.rows++
	if w.batch.NumRows() >= w.cfg.batchRows() {
		return w.Flush()
	}
	return nil
}

// writeRecord encodes the buffered batch as one envelope record.
func (w *WAL) writeRecord() error {
	sk, err := core.SubsampleFromSample(w.batch, walCarrierParams)
	if err != nil {
		return err
	}
	var out io.Writer = w.active
	if w.cfg.WriteWrap != nil {
		out = w.cfg.WriteWrap(out)
	}
	var opts []itemsketch.MarshalOption
	if w.cfg.Compress {
		opts = append(opts, itemsketch.WithCompression())
	}
	n, err := itemsketch.MarshalTo(out, sk, opts...)
	if err != nil {
		return err
	}
	w.size += n
	w.batch = dataset.NewDatabase(w.cfg.NumAttrs)
	w.records++
	return nil
}

// Flush writes the buffered batch (if any) as one record, fsyncing on
// the SyncEvery schedule and rotating the segment when it outgrew the
// threshold. Without SyncEvery, Flush does not fsync.
func (w *WAL) Flush() error {
	if w.active == nil {
		return fmt.Errorf("%w: WAL is closed", core.ErrInvalidParams)
	}
	if w.batch.NumRows() == 0 {
		return nil
	}
	if err := w.writeRecord(); err != nil {
		return err
	}
	if w.cfg.SyncEvery > 0 && w.records >= int64(w.cfg.SyncEvery) {
		if err := w.active.Sync(); err != nil {
			return err
		}
		w.records = 0
	}
	if w.size >= w.cfg.segmentBytes() {
		return w.rotate()
	}
	return nil
}

// Sync flushes the buffered batch and fsyncs the active segment: after
// Sync returns, every appended row survives a crash.
func (w *WAL) Sync() error {
	if w.active == nil {
		return fmt.Errorf("%w: WAL is closed", core.ErrInvalidParams)
	}
	if w.batch.NumRows() > 0 {
		if err := w.writeRecord(); err != nil {
			return err
		}
	}
	if err := w.active.Sync(); err != nil {
		return err
	}
	w.records = 0
	if w.size >= w.cfg.segmentBytes() {
		return w.rotate()
	}
	return nil
}

// rotate seals the active segment — fsync, close, rename .open → .seg,
// directory sync — and opens the next one. The rename is the commit
// point, mirroring internal/atomicfile's publish step.
func (w *WAL) rotate() error {
	if err := w.active.Sync(); err != nil {
		return err
	}
	if err := w.active.Close(); err != nil {
		return err
	}
	from := segName(w.cfg.Dir, w.seq, true)
	to := segName(w.cfg.Dir, w.seq, false)
	if err := os.Rename(from, to); err != nil {
		return err
	}
	if err := syncDir(w.cfg.Dir); err != nil {
		return err
	}
	w.records = 0
	return w.openSegment(w.seq + 1)
}

// Close flushes, fsyncs and closes the log. The active segment stays
// .open — the next OpenWAL re-adopts it.
func (w *WAL) Close() error {
	if w.active == nil {
		return nil
	}
	if err := w.Sync(); err != nil {
		w.active.Close()
		w.active = nil
		return err
	}
	err := w.active.Close()
	w.active = nil
	return err
}

// Rows returns the number of rows appended through this WAL handle.
func (w *WAL) Rows() int64 { return w.rows }

// ActiveSegment returns the sequence number of the active segment.
func (w *WAL) ActiveSegment() uint64 { return w.seq }

// NumAttrs returns the logged attribute universe size d.
func (w *WAL) NumAttrs() int { return w.cfg.NumAttrs }

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// countingReader tracks the byte offset of an underlying reader so the
// scan knows each record's end boundary exactly (envelopes are read
// byte-exactly by UnmarshalFrom, never buffered ahead).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// errHeaderTorn marks a segment whose fixed header is incomplete — a
// crash during segment creation. In the active segment this is a
// recoverable (empty) log; in a sealed segment it is corruption.
var errHeaderTorn = errors.New("ingest: torn segment header")

// readSegmentHeader validates a segment's fixed header against the
// expected universe.
func readSegmentHeader(r io.Reader, wantAttrs int) (seq uint64, err error) {
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, errHeaderTorn
		}
		return 0, err
	}
	if hdr[0] != walMagic[0] || hdr[1] != walMagic[1] || hdr[2] != walMagic[2] || hdr[3] != walMagic[3] {
		return 0, fmt.Errorf("%w: bad segment magic %q", ErrWALCorrupt, hdr[0:4])
	}
	if hdr[4] != walVersion {
		return 0, fmt.Errorf("%w: unsupported segment version %d", ErrWALCorrupt, hdr[4])
	}
	if crc := crc32.ChecksumIEEE(hdr[:17]); binary.LittleEndian.Uint32(hdr[17:21]) != crc {
		return 0, fmt.Errorf("%w: segment header checksum mismatch", ErrWALCorrupt)
	}
	if d := binary.LittleEndian.Uint32(hdr[5:9]); int(d) != wantAttrs {
		return 0, fmt.Errorf("%w: segment logs d = %d attributes, log is configured for %d", ErrWALCorrupt, d, wantAttrs)
	}
	return binary.LittleEndian.Uint64(hdr[9:17]), nil
}

// scanSegment walks one segment's records. When emit is non-nil every
// decoded batch is handed to it. tail selects torn-tail tolerance: a
// truncated trailing record is not an error (its offset is simply not
// included in valid); corruption that is not a clean truncation is
// ErrWALCorrupt either way. Returns the byte offset just after the
// last valid record and the number of rows in valid records.
func (w *WAL) scanSegment(path string, tail bool) (valid int64, rows int64, err error) {
	return scanSegmentWith(path, w.cfg.NumAttrs, w.cfg.ReadWrap, tail, nil)
}

func scanSegmentWith(path string, wantAttrs int, wrap func(io.Reader) io.Reader, tail bool, emit func(*dataset.Database) error) (valid int64, rows int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var src io.Reader = f
	if wrap != nil {
		src = wrap(src)
	}
	cr := &countingReader{r: src}
	if _, err := readSegmentHeader(cr, wantAttrs); err != nil {
		if errors.Is(err, errHeaderTorn) {
			if tail {
				// A crash before the header hit disk: everything goes.
				return 0, 0, nil
			}
			return 0, 0, fmt.Errorf("%w: %w", ErrWALCorrupt, err)
		}
		return 0, 0, err
	}
	valid = walHeaderLen
	for rec := 0; ; rec++ {
		// Probe one byte so a segment ending exactly at a record
		// boundary reads as clean EOF rather than a truncated envelope.
		var one [1]byte
		n, perr := cr.Read(one[:])
		if n == 0 {
			if perr == io.EOF {
				return valid, rows, nil
			}
			if perr != nil {
				return valid, rows, perr
			}
			return valid, rows, fmt.Errorf("%w: empty read at record %d", ErrWALCorrupt, rec)
		}
		sk, derr := itemsketch.UnmarshalFrom(io.MultiReader(&oneByteReader{b: one[0]}, cr))
		if derr != nil {
			if tail && errors.Is(derr, itemsketch.ErrTruncatedStream) {
				// Torn tail: the crash cut this record short. Truncate
				// here, keep everything before it.
				return valid, rows, nil
			}
			if errors.Is(derr, itemsketch.ErrCorruptSketch) || errors.Is(derr, itemsketch.ErrUnsupportedVersion) {
				return valid, rows, fmt.Errorf("%w: %s record %d (offset %d): %w", ErrWALCorrupt, filepath.Base(path), rec, valid, derr)
			}
			// Transport errors pass through bare.
			return valid, rows, derr
		}
		holder, ok := sk.(core.SampleHolder)
		if !ok || sk.NumAttrs() != wantAttrs {
			return valid, rows, fmt.Errorf("%w: %s record %d decodes as %s over %d attributes, want a %d-attribute row batch",
				ErrWALCorrupt, filepath.Base(path), rec, sk.Name(), sk.NumAttrs(), wantAttrs)
		}
		batch := holder.Sample()
		if emit != nil {
			if err := emit(batch); err != nil {
				return valid, rows, err
			}
		}
		rows += int64(batch.NumRows())
		valid = cr.n
	}
}

// oneByteReader replays the EOF-probe byte ahead of the real stream.
type oneByteReader struct {
	b    byte
	done bool
}

func (o *oneByteReader) Read(p []byte) (int, error) {
	if o.done || len(p) == 0 {
		if o.done {
			return 0, io.EOF
		}
		return 0, nil
	}
	p[0] = o.b
	o.done = true
	return 1, nil
}

// Replay streams every logged row, in append order, to fn — the
// transaction-log ingestion mode. Sealed segments must be fully valid
// (a bad record is ErrWALCorrupt, naming the segment, record and
// offset); the newest segment tolerates a torn tail when it is still
// .open, which is exactly the state a crash leaves. Replay may run on
// a live WAL only after Flush/Sync (it reads the files, not the
// buffer); the durable prefix is what it sees.
func (w *WAL) Replay(fn func(attrs []int) error) (int64, error) {
	return ReplayDir(w.cfg.Dir, w.cfg.NumAttrs, w.cfg.ReadWrap, fn)
}

// ReplayDir replays a WAL directory without opening it for writing —
// the recovery path: feed a fresh service (or any sketch) from the log
// of a crashed process. Row order is append order; attrs slices are
// reused across calls and must not be retained.
func ReplayDir(dir string, numAttrs int, wrap func(io.Reader) io.Reader, fn func(attrs []int) error) (int64, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	var total int64
	var attrs []int
	for i, seg := range segs {
		tail := seg.open && i == len(segs)-1
		_, rows, err := scanSegmentWith(seg.path, numAttrs, wrap, tail, func(batch *dataset.Database) error {
			for r := 0; r < batch.NumRows(); r++ {
				attrs = batch.AppendRowOnes(attrs[:0], r)
				if err := fn(attrs); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return total, err
		}
		total += rows
	}
	return total, nil
}
