package ingest

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stream"
)

// testRow returns the deterministic attribute list of stream row i in
// the test fixtures.
func testRow(i int) []int {
	return []int{i % 16, (i + 3) % 16, (i * 7) % 16}
}

// fillWAL appends n fixture rows and syncs.
func fillWAL(t *testing.T, w *WAL, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := w.Append(testRow(i)...); err != nil {
			t.Fatalf("append row %d: %v", i, err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
}

// collectRows replays the log into a row list (copying the reused
// attrs slice).
func collectRows(t *testing.T, w *WAL) [][]int {
	t.Helper()
	var rows [][]int
	n, err := w.Replay(func(attrs []int) error {
		rows = append(rows, append([]int(nil), attrs...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if int(n) != len(rows) {
		t.Fatalf("replay reported %d rows, emitted %d", n, len(rows))
	}
	return rows
}

func TestWALValidation(t *testing.T) {
	if _, err := OpenWAL(WALConfig{NumAttrs: 4}); !errors.Is(err, core.ErrInvalidParams) {
		t.Errorf("missing dir: %v", err)
	}
	if _, err := OpenWAL(WALConfig{Dir: t.TempDir()}); !errors.Is(err, core.ErrInvalidParams) {
		t.Errorf("missing attrs: %v", err)
	}
}

// TestWALRoundTrip appends rows across several segments (plain and
// compressed) and checks replay returns exactly the appended rows in
// order. Note AppendRowOnes emits the set attributes ascending, so the
// comparison goes through a set representation.
func TestWALRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			w, err := OpenWAL(WALConfig{
				Dir: t.TempDir(), NumAttrs: 16, BatchRows: 32,
				SegmentBytes: 1024, Compress: compress,
			})
			if err != nil {
				t.Fatal(err)
			}
			const n = 500
			fillWAL(t, w, n)
			if w.Rows() != n {
				t.Fatalf("Rows() = %d", w.Rows())
			}
			if w.ActiveSegment() == 0 {
				t.Fatal("500 rows with 2KiB segments never rotated")
			}
			rows := collectRows(t, w)
			if len(rows) != n {
				t.Fatalf("replayed %d rows, want %d", len(rows), n)
			}
			for i, got := range rows {
				want := map[int]bool{}
				for _, a := range testRow(i) {
					want[a] = true
				}
				if len(got) != len(want) {
					t.Fatalf("row %d: %v, want set %v", i, got, want)
				}
				for _, a := range got {
					if !want[a] {
						t.Fatalf("row %d: %v, want set %v", i, got, want)
					}
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWALReopenContinues closes a log mid-stream and reopens it: the
// active segment is re-adopted and appends continue where they left
// off, with replay seeing both generations.
func TestWALReopenContinues(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, w, 100)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	for i := 100; i < 150; i++ {
		if err := w2.Append(testRow(i)...); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Sync(); err != nil {
		t.Fatal(err)
	}
	rows := collectRows(t, w2)
	if len(rows) != 150 {
		t.Fatalf("replayed %d rows after reopen, want 150", len(rows))
	}
}

// TestWALRejectsUniverseMismatch reopens a log under a different
// attribute universe; the segment header must refuse it.
func TestWALRejectsUniverseMismatch(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16})
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, w, 10)
	w.Close()
	if _, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 8}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("universe mismatch: err = %v, want ErrWALCorrupt", err)
	}
}

// TestWALSegmentLifecycle checks rotation seals segments: sealed files
// carry .seg, exactly one .open remains, and sequence numbers are
// contiguous.
func TestWALSegmentLifecycle(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 16, SegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, w, 400)
	w.Close()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sealed, open int
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".seg"):
			sealed++
		case strings.HasSuffix(e.Name(), ".open"):
			open++
		default:
			t.Errorf("unexpected file %s", e.Name())
		}
	}
	if sealed == 0 || open != 1 {
		t.Fatalf("segments: %d sealed, %d open; want ≥1 sealed and exactly 1 open", sealed, open)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range segs {
		if s.seq != uint64(i) {
			t.Fatalf("segment %d has sequence %d", i, s.seq)
		}
	}
}

// TestWALReplayFeedsSketches replays a log into a reservoir and a
// Misra–Gries summary — the "any sketch" half of the replayer
// contract — and checks against feeding them directly.
func TestWALReplayFeedsSketches(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 64})
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, w, 300)
	w.Close()

	resDirect, _ := stream.NewReservoir(16, 50, 77)
	mgDirect, _ := stream.NewMisraGries(8)
	for i := 0; i < 300; i++ {
		attrs := testRow(i)
		// Deduplicate and sort ascending — the exact emission order of
		// the replayer (a row bitmap walks its set bits in order).
		seen := map[int]bool{}
		var uniq []int
		for _, a := range attrs {
			if !seen[a] {
				seen[a] = true
				uniq = append(uniq, a)
			}
		}
		sort.Ints(uniq)
		resDirect.AddAttrs(uniq...)
		for _, a := range uniq {
			mgDirect.Add(a)
		}
	}

	resReplay, _ := stream.NewReservoir(16, 50, 77)
	mgReplay, _ := stream.NewMisraGries(8)
	n, err := ReplayDir(dir, 16, nil, func(attrs []int) error {
		resReplay.AddAttrs(attrs...)
		for _, a := range attrs {
			mgReplay.Add(a)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 300 {
		t.Fatalf("replayed %d rows", n)
	}
	// Same rows, same order, same seeds → identical reservoirs.
	if resReplay.Seen() != resDirect.Seen() || resReplay.Len() != resDirect.Len() {
		t.Fatalf("replayed reservoir diverged: seen %d/%d len %d/%d",
			resReplay.Seen(), resDirect.Seen(), resReplay.Len(), resDirect.Len())
	}
	nD, itD, cD := mgDirect.Snapshot()
	nR, itR, cR := mgReplay.Snapshot()
	if nD != nR || len(itD) != len(itR) {
		t.Fatalf("replayed MG diverged: n %d/%d counters %d/%d", nR, nD, len(itR), len(itD))
	}
	for i := range itD {
		if itD[i] != itR[i] || cD[i] != cR[i] {
			t.Fatalf("MG counter %d diverged", i)
		}
	}
}

// TestWALReplayCallbackError checks a callback failure aborts the
// replay and surfaces the error unchanged.
func TestWALReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 8})
	if err != nil {
		t.Fatal(err)
	}
	fillWAL(t, w, 50)
	w.Close()
	boom := errors.New("boom")
	count := 0
	_, err = ReplayDir(dir, 16, nil, func([]int) error {
		count++
		if count == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if count != 10 {
		t.Fatalf("callback ran %d times after failing at 10", count)
	}
}

// TestWALEmptyDirReplay replays a fresh log: zero rows, no error.
func TestWALEmptyDirReplay(t *testing.T) {
	w, err := OpenWAL(WALConfig{Dir: filepath.Join(t.TempDir(), "wal"), NumAttrs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if rows := collectRows(t, w); len(rows) != 0 {
		t.Fatalf("fresh log replayed %d rows", len(rows))
	}
}
