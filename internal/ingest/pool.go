package ingest

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/stream"
)

// The concurrent sharded ingest path: N writer workers each own
// private sub-sketches (Reservoir, Misra–Gries, CountSketch) fed over
// per-worker channels, and publish immutable snapshots on epoch
// boundaries. Readers merge the published snapshots on demand — the
// same merge-on-read discipline internal/service applies across
// shards, here applied across writers inside one process.
//
// Determinism: rows are partitioned round-robin by a cursor, worker
// sub-streams preserve arrival order, every seed is derived from
// (Seed, worker index), and merge-on-read folds workers in index
// order with derived merge seeds — so for a fixed worker count the
// merged sketches are a pure function of (config, row sequence), bit
// identical across runs and machines. Changing the worker count
// repartitions the stream, which legitimately changes sampling coins
// (the statistical guarantees are unaffected).

// DefaultEpochRows is the per-worker snapshot publication interval
// when PoolConfig.EpochRows is zero.
const DefaultEpochRows = 4096

// defaultDispatchRows is the per-worker batch size of the dispatch
// path: rows are handed to workers in arena batches, not one channel
// send per row.
const defaultDispatchRows = 64

// PoolConfig parameterizes a concurrent ingest pool.
type PoolConfig struct {
	// NumAttrs is the attribute universe size d.
	NumAttrs int
	// Workers is the writer count N ≥ 1.
	Workers int
	// SampleCapacity is each worker's reservoir capacity.
	SampleCapacity int
	// HeavyK enables a per-worker Misra–Gries summary with parameter k
	// when ≥ 2.
	HeavyK int
	// CountSketch enables a per-worker count sketch. The seed is
	// derived from Seed (all workers share it — mergeability requires
	// identical hash functions); the config's own Seed must be zero.
	CountSketch *countsketch.Config
	// EpochRows is the per-worker epoch length: after this many rows a
	// worker publishes a fresh snapshot (DefaultEpochRows when zero).
	EpochRows int64
	// Seed determines every worker seed and merge seed.
	Seed uint64
	// WAL, when set, logs every row before it is dispatched — the
	// write-ahead contract: a row is in the log before any sketch sees
	// it, so replay after a crash covers everything queries saw.
	WAL *WAL
}

// Pool is a concurrent sharded ingest front-end. Add is single-
// producer (callers serialize; the WAL and the round-robin cursor are
// not concurrent-safe by design — determinism requires one append
// order to exist). Reads (Merged*) are safe from any goroutine.
type Pool struct {
	cfg     PoolConfig
	epoch   int64
	workers []*poolWorker
	next    uint64 // round-robin dispatch cursor
	rows    int64
	closed  bool
	wg      sync.WaitGroup
}

type poolMsg struct {
	batch *dataset.Database
	flush chan struct{} // non-nil: publish a snapshot and ack
}

type poolWorker struct {
	id      int
	ch      chan poolMsg
	pending *dataset.Database // producer-side batch under construction

	// Worker-goroutine private state.
	res     *stream.Reservoir
	mg      *stream.MisraGries
	cs      *countsketch.Sketch
	inEpoch int64

	snap atomic.Pointer[poolSnapshot]
}

// poolSnapshot is an immutable view of one worker's sub-sketches.
type poolSnapshot struct {
	res  *stream.Reservoir
	mg   *stream.MisraGries
	cs   *countsketch.Sketch
	rows int64
}

// mix64 hashes its words into one seed (splitmix64-style
// finalization), the deterministic seed derivation for worker and
// merge seeds.
func mix64(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + h<<6 + h>>2
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// The salts separate the seed-derivation domains.
const (
	poolSaltReservoir = 0x72657376 // "resv"
	poolSaltSketch    = 0x736b6368 // "skch"
	poolSaltMerge     = 0x6d657267 // "merg"
)

// NewPool starts a pool with cfg.Workers writer goroutines.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.NumAttrs < 1 {
		return nil, fmt.Errorf("%w: pool needs d ≥ 1 attributes, got %d", core.ErrInvalidParams, cfg.NumAttrs)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("%w: pool needs ≥ 1 workers, got %d", core.ErrInvalidParams, cfg.Workers)
	}
	if cfg.SampleCapacity < 1 {
		return nil, fmt.Errorf("%w: pool needs sample capacity ≥ 1, got %d", core.ErrInvalidParams, cfg.SampleCapacity)
	}
	if cfg.HeavyK == 1 {
		// 0 disables the summary; a k of exactly 1 is never meaningful.
		return nil, fmt.Errorf("%w: Misra–Gries needs k ≥ 2 (0 disables)", core.ErrInvalidParams)
	}
	if cfg.WAL != nil && cfg.WAL.NumAttrs() != cfg.NumAttrs {
		return nil, fmt.Errorf("%w: WAL logs %d attributes, pool ingests %d", core.ErrInvalidParams, cfg.WAL.NumAttrs(), cfg.NumAttrs)
	}
	epoch := cfg.EpochRows
	if epoch <= 0 {
		epoch = DefaultEpochRows
	}
	p := &Pool{cfg: cfg, epoch: epoch, workers: make([]*poolWorker, cfg.Workers)}
	csSeed := mix64(cfg.Seed, poolSaltSketch)
	for i := range p.workers {
		res, err := stream.NewReservoir(cfg.NumAttrs, cfg.SampleCapacity, mix64(cfg.Seed, poolSaltReservoir, uint64(i)))
		if err != nil {
			return nil, err
		}
		w := &poolWorker{
			id:      i,
			ch:      make(chan poolMsg, 4),
			pending: dataset.NewDatabase(cfg.NumAttrs),
			res:     res,
		}
		if cfg.HeavyK >= 2 {
			if w.mg, err = stream.NewMisraGries(cfg.HeavyK); err != nil {
				return nil, err
			}
		}
		if cfg.CountSketch != nil {
			csCfg := *cfg.CountSketch
			if csCfg.Seed != 0 {
				return nil, fmt.Errorf("%w: pool derives the count-sketch seed; config seed must be zero", core.ErrInvalidParams)
			}
			csCfg.Seed = csSeed
			if csCfg.Universe == 0 {
				csCfg.Universe = cfg.NumAttrs
			}
			if csCfg.Universe != cfg.NumAttrs {
				return nil, fmt.Errorf("%w: count-sketch universe %d, pool ingests %d attributes", core.ErrInvalidParams, csCfg.Universe, cfg.NumAttrs)
			}
			if w.cs, err = countsketch.New(csCfg); err != nil {
				return nil, err
			}
		}
		w.publish()
		p.workers[i] = w
		p.wg.Add(1)
		go p.run(w)
	}
	return p, nil
}

// run is the worker goroutine: apply batches in arrival order, publish
// on epoch boundaries and on flush barriers.
func (p *Pool) run(w *poolWorker) {
	defer p.wg.Done()
	var attrs []int
	for msg := range w.ch {
		if msg.batch != nil {
			n := msg.batch.NumRows()
			for r := 0; r < n; r++ {
				attrs = msg.batch.AppendRowOnes(attrs[:0], r)
				w.res.AddAttrs(attrs...)
				if w.mg != nil {
					for _, a := range attrs {
						w.mg.Add(a)
					}
				}
				if w.cs != nil {
					for _, a := range attrs {
						w.cs.Add(a)
					}
				}
			}
			w.inEpoch += int64(n)
			if w.inEpoch >= p.epoch {
				w.publish()
				w.inEpoch = 0
			}
		}
		if msg.flush != nil {
			w.publish()
			w.inEpoch = 0
			close(msg.flush)
		}
	}
}

// publish freezes the worker's sub-sketches into a fresh snapshot.
func (w *poolWorker) publish() {
	s := &poolSnapshot{res: w.res.Clone(), rows: w.res.Seen()}
	if w.mg != nil {
		s.mg = w.mg.Clone()
	}
	if w.cs != nil {
		s.cs = w.cs.Clone()
	}
	w.snap.Store(s)
}

// Add ingests one row given as attribute indices: write-ahead to the
// WAL (when configured), then round-robin dispatch to the owning
// worker. Single producer only.
func (p *Pool) Add(attrs ...int) error {
	if p.closed {
		return fmt.Errorf("%w: pool is closed", core.ErrInvalidParams)
	}
	if p.cfg.WAL != nil {
		if err := p.cfg.WAL.Append(attrs...); err != nil {
			return err
		}
	}
	w := p.workers[p.next%uint64(len(p.workers))]
	p.next++
	p.rows++
	w.pending.AddRowAttrs(attrs...)
	if w.pending.NumRows() >= defaultDispatchRows {
		w.ch <- poolMsg{batch: w.pending}
		w.pending = dataset.NewDatabase(p.cfg.NumAttrs)
	}
	return nil
}

// Flush is the read barrier: every row accepted so far is applied and
// every worker publishes a fresh snapshot before Flush returns. The
// WAL (when configured) is synced first, preserving write-ahead order
// even at the barrier.
func (p *Pool) Flush() error {
	if p.closed {
		return fmt.Errorf("%w: pool is closed", core.ErrInvalidParams)
	}
	if p.cfg.WAL != nil {
		if err := p.cfg.WAL.Sync(); err != nil {
			return err
		}
	}
	acks := make([]chan struct{}, len(p.workers))
	for i, w := range p.workers {
		if w.pending.NumRows() > 0 {
			w.ch <- poolMsg{batch: w.pending}
			w.pending = dataset.NewDatabase(p.cfg.NumAttrs)
		}
		acks[i] = make(chan struct{})
		w.ch <- poolMsg{flush: acks[i]}
	}
	for _, ack := range acks {
		<-ack
	}
	return nil
}

// Close flushes and stops the workers. The pool's snapshots stay
// readable; Add and Flush fail afterwards.
func (p *Pool) Close() error {
	if p.closed {
		return nil
	}
	err := p.Flush()
	p.closed = true
	for _, w := range p.workers {
		close(w.ch)
	}
	p.wg.Wait()
	return err
}

// Rows returns the number of rows accepted by Add.
func (p *Pool) Rows() int64 { return p.rows }

// Workers returns the writer count N.
func (p *Pool) Workers() int { return p.cfg.Workers }

// MergedReservoir folds the workers' published reservoir snapshots
// into a uniform sample of the union stream, in worker order with
// derived merge seeds — deterministic for a fixed worker count.
func (p *Pool) MergedReservoir() (*stream.Reservoir, error) {
	var acc *stream.Reservoir
	for i, w := range p.workers {
		s := w.snap.Load()
		if acc == nil {
			acc = s.res.Clone()
			continue
		}
		m, err := stream.Merge(acc, s.res, mix64(p.cfg.Seed, poolSaltMerge, uint64(i)))
		if err != nil {
			return nil, err
		}
		acc = m
	}
	return acc, nil
}

// MergedMisraGries folds the workers' published Misra–Gries snapshots,
// preserving the N/k guarantee over the union stream. Nil when HeavyK
// is disabled.
func (p *Pool) MergedMisraGries() (*stream.MisraGries, error) {
	var acc *stream.MisraGries
	for _, w := range p.workers {
		s := w.snap.Load()
		if s.mg == nil {
			return nil, nil
		}
		if acc == nil {
			acc = s.mg.Clone()
			continue
		}
		m, err := stream.MergeMG(acc, s.mg)
		if err != nil {
			return nil, err
		}
		acc = m
	}
	return acc, nil
}

// MergedCountSketch folds the workers' published count-sketch
// snapshots cell-wise (all workers share hash seeds, so the merge is
// exact). Nil when the count sketch is disabled.
func (p *Pool) MergedCountSketch() (*countsketch.Sketch, error) {
	var acc *countsketch.Sketch
	for _, w := range p.workers {
		s := w.snap.Load()
		if s.cs == nil {
			return nil, nil
		}
		if acc == nil {
			acc = s.cs.Clone()
			continue
		}
		if err := acc.Merge(s.cs); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// SnapshotRows returns the per-worker row counts of the published
// snapshots — how much of the stream the next Merged* call will cover.
func (p *Pool) SnapshotRows() []int64 {
	out := make([]int64, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.snap.Load().rows
	}
	return out
}
