package ingest

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/dataset"
)

func poolFixtureConfig(workers int) PoolConfig {
	return PoolConfig{
		NumAttrs:       16,
		Workers:        workers,
		SampleCapacity: 64,
		HeavyK:         8,
		CountSketch:    &countsketch.Config{Rows: 3, Cols: 64},
		EpochRows:      100,
		Seed:           99,
	}
}

// runPool feeds n fixture rows through a fresh pool and flushes.
func runPool(t *testing.T, cfg PoolConfig, n int) *Pool {
	t.Helper()
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := p.Add(testRow(i)...); err != nil {
			t.Fatalf("add row %d: %v", i, err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	return p
}

// mergedBits serializes the pool's merged views into comparable byte
// strings: the reservoir's sample arena, the Misra–Gries snapshot, and
// the count sketch's envelope bytes.
func mergedBits(t *testing.T, p *Pool) (res, mg, cs []byte) {
	t.Helper()
	r, err := p.MergedReservoir()
	if err != nil {
		t.Fatal(err)
	}
	var rw bitvec.Writer
	r.Database().MarshalBits(&rw)
	rw.WriteUint(uint64(r.Seen()), 64)
	res = rw.Bytes()

	m, err := p.MergedMisraGries()
	if err != nil {
		t.Fatal(err)
	}
	var mw bitvec.Writer
	n, items, counts := m.Snapshot()
	mw.WriteUint(uint64(n), 64)
	for i := range items {
		mw.WriteUint(uint64(items[i]), 32)
		mw.WriteUint(uint64(counts[i]), 64)
	}
	mg = mw.Bytes()

	c, err := p.MergedCountSketch()
	if err != nil {
		t.Fatal(err)
	}
	var cw bitvec.Writer
	c.MarshalBits(&cw)
	cs = cw.Bytes()
	return res, mg, cs
}

func TestPoolValidation(t *testing.T) {
	cases := []PoolConfig{
		{Workers: 1, SampleCapacity: 4},                         // no attrs
		{NumAttrs: 8, SampleCapacity: 4},                        // no workers
		{NumAttrs: 8, Workers: 2},                               // no capacity
		{NumAttrs: 8, Workers: 2, SampleCapacity: 4, HeavyK: 1}, // bad k
		{NumAttrs: 8, Workers: 2, SampleCapacity: 4, CountSketch: &countsketch.Config{Rows: 3, Cols: 16, Seed: 7}},     // explicit seed
		{NumAttrs: 8, Workers: 2, SampleCapacity: 4, CountSketch: &countsketch.Config{Rows: 3, Cols: 16, Universe: 9}}, // universe clash
	}
	for i, cfg := range cases {
		if _, err := NewPool(cfg); !errors.Is(err, core.ErrInvalidParams) {
			t.Errorf("case %d: err = %v, want ErrInvalidParams", i, err)
		}
	}
	w, err := OpenWAL(WALConfig{Dir: t.TempDir(), NumAttrs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cfg := poolFixtureConfig(2)
	cfg.WAL = w // 4-attribute log under a 16-attribute pool
	if _, err := NewPool(cfg); !errors.Is(err, core.ErrInvalidParams) {
		t.Errorf("WAL universe clash: err = %v, want ErrInvalidParams", err)
	}
}

// TestPoolBitDeterminism is the tentpole determinism pin: two pools
// with the same config and the same row sequence, each with 4 workers,
// must merge to bit-identical sketches — reservoir arena bytes,
// Misra–Gries snapshot, count-sketch envelope. Goroutine scheduling
// must not leak into the merged bits.
func TestPoolBitDeterminism(t *testing.T) {
	const rows = 1500
	a := runPool(t, poolFixtureConfig(4), rows)
	defer a.Close()
	b := runPool(t, poolFixtureConfig(4), rows)
	defer b.Close()
	aRes, aMG, aCS := mergedBits(t, a)
	bRes, bMG, bCS := mergedBits(t, b)
	if !bytes.Equal(aRes, bRes) {
		t.Error("merged reservoirs differ between identical runs")
	}
	if !bytes.Equal(aMG, bMG) {
		t.Error("merged Misra-Gries summaries differ between identical runs")
	}
	if !bytes.Equal(aCS, bCS) {
		t.Error("merged count sketches differ between identical runs")
	}
	// Repeated merges of the same pool are stable too (merge-on-read
	// must not mutate the snapshots).
	aRes2, aMG2, aCS2 := mergedBits(t, a)
	if !bytes.Equal(aRes, aRes2) || !bytes.Equal(aMG, aMG2) || !bytes.Equal(aCS, aCS2) {
		t.Error("re-merging the same pool changed the merged bits")
	}
}

// TestPoolMergedCoversStream checks the merged views cover the whole
// stream after a flush barrier: reservoir Seen equals the row count,
// Misra–Gries mass equals the attribute count, count-sketch estimates
// match exact counts within the (tiny-universe) error bound.
func TestPoolMergedCoversStream(t *testing.T) {
	const rows = 2000
	p := runPool(t, poolFixtureConfig(4), rows)
	defer p.Close()

	if p.Rows() != rows {
		t.Fatalf("Rows() = %d", p.Rows())
	}
	var snapSum int64
	for _, n := range p.SnapshotRows() {
		snapSum += n
	}
	if snapSum != rows {
		t.Fatalf("snapshots cover %d rows, want %d", snapSum, rows)
	}

	// Exact truth per attribute (dedup per row, as sketches see it).
	truth := map[int]int64{}
	var mass int64
	for i := 0; i < rows; i++ {
		seen := map[int]bool{}
		for _, a := range testRow(i) {
			if !seen[a] {
				seen[a] = true
				truth[a]++
				mass++
			}
		}
	}

	res, err := p.MergedReservoir()
	if err != nil {
		t.Fatal(err)
	}
	if res.Seen() != rows {
		t.Fatalf("merged reservoir saw %d rows, want %d", res.Seen(), rows)
	}
	if res.Len() != poolFixtureConfig(4).SampleCapacity {
		t.Fatalf("merged sample holds %d rows, want full capacity", res.Len())
	}

	mg, err := p.MergedMisraGries()
	if err != nil {
		t.Fatal(err)
	}
	if mg.N() != mass {
		t.Fatalf("merged MG mass %d, want %d", mg.N(), mass)
	}
	// MG undercount is bounded by mass/k.
	for a, exact := range truth {
		got := mg.Count(a)
		if got > exact || got < exact-mass/8 {
			t.Fatalf("MG count(%d) = %d, exact %d, floor %d", a, got, exact, exact-mass/8)
		}
	}

	cs, err := p.MergedCountSketch()
	if err != nil {
		t.Fatal(err)
	}
	for a, exact := range truth {
		got := float64(cs.EstimateCount(a))
		if math.Abs(got-float64(exact)) > 0.2*float64(exact) {
			t.Fatalf("count-sketch estimate(%d) = %.1f, exact %d", a, got, exact)
		}
	}
}

// TestPoolWorkerCountChangesPartition documents that the worker count
// is part of the deterministic contract: different N gives a different
// (equally valid) sample, and the merged mass is unchanged.
func TestPoolWorkerCountChangesPartition(t *testing.T) {
	const rows = 1000
	p1 := runPool(t, poolFixtureConfig(1), rows)
	defer p1.Close()
	p4 := runPool(t, poolFixtureConfig(4), rows)
	defer p4.Close()
	r1, _ := p1.MergedReservoir()
	r4, _ := p4.MergedReservoir()
	if r1.Seen() != r4.Seen() {
		t.Fatalf("seen diverged: %d vs %d", r1.Seen(), r4.Seen())
	}
	m1, _ := p1.MergedMisraGries()
	m4, _ := p4.MergedMisraGries()
	if m1.N() != m4.N() {
		t.Fatalf("MG mass diverged: %d vs %d", m1.N(), m4.N())
	}
	c1, _ := p1.MergedCountSketch()
	c4, _ := p4.MergedCountSketch()
	// The count sketch is partition-independent: same shared hashes,
	// addition commutes. The two merges must agree exactly.
	var b1, b4 bitvec.Writer
	c1.MarshalBits(&b1)
	c4.MarshalBits(&b4)
	if !bytes.Equal(b1.Bytes(), b4.Bytes()) {
		t.Error("count sketch bits depend on the partition; they must not")
	}
}

// TestPoolWALReplayReproducesBits is the crash-recovery acceptance
// pin at the pool level: rows ingested through a WAL-backed pool, then
// replayed from the log into a fresh same-config pool, produce
// bit-identical merged sketches — the replayer feeds Add in the
// original append order, and everything downstream is deterministic.
func TestPoolWALReplayReproducesBits(t *testing.T) {
	dir := t.TempDir()
	wal, err := OpenWAL(WALConfig{Dir: dir, NumAttrs: 16, BatchRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	cfg := poolFixtureConfig(4)
	cfg.WAL = wal
	live, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 1200
	for i := 0; i < rows; i++ {
		if err := live.Add(testRow(i)...); err != nil {
			t.Fatal(err)
		}
	}
	if err := live.Flush(); err != nil {
		t.Fatal(err)
	}
	liveRes, liveMG, liveCS := mergedBits(t, live)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" and recover: replay the log into a fresh pool. The rows
	// come back as ascending attribute sets, which is how the workers
	// saw them too (AppendRowOnes on both paths), so the bits agree.
	recovered, err := NewPool(poolFixtureConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	n, err := ReplayDir(dir, 16, nil, func(attrs []int) error {
		return recovered.Add(attrs...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != rows {
		t.Fatalf("replayed %d rows, want %d", n, rows)
	}
	if err := recovered.Flush(); err != nil {
		t.Fatal(err)
	}
	recRes, recMG, recCS := mergedBits(t, recovered)
	if !bytes.Equal(liveRes, recRes) {
		t.Error("recovered reservoir bits differ from the uncrashed run")
	}
	if !bytes.Equal(liveMG, recMG) {
		t.Error("recovered Misra-Gries bits differ from the uncrashed run")
	}
	if !bytes.Equal(liveCS, recCS) {
		t.Error("recovered count-sketch bits differ from the uncrashed run")
	}
}

// TestPoolMergedAsSketch routes the merged sample through
// SubsampleFromSample — the path the service uses to answer queries —
// and sanity-checks an estimate against the stream frequency.
func TestPoolMergedAsSketch(t *testing.T) {
	cfg := poolFixtureConfig(4)
	cfg.SampleCapacity = 400
	const rows = 4000
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Attribute 0 appears in every third row.
	for i := 0; i < rows; i++ {
		attrs := []int{1 + i%7, 8 + i%5}
		if i%3 == 0 {
			attrs = append(attrs, 0)
		}
		if err := p.Add(attrs...); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := p.MergedReservoir()
	if err != nil {
		t.Fatal(err)
	}
	sk, err := core.SubsampleFromSample(res.Database(), core.Params{
		K: 1, Eps: 0.1, Delta: 0.1, Mode: core.ForEach, Task: core.Estimator,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sk.Estimate(dataset.MustItemset(0)); math.Abs(got-1.0/3) > 0.08 {
		t.Fatalf("estimate(0) = %.3f, want ≈ 1/3", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Add(1); !errors.Is(err, core.ErrInvalidParams) {
		t.Fatalf("Add after Close: %v", err)
	}
}
