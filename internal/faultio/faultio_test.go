package faultio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func payload(n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i * 31)
	}
	return p
}

func TestReaderCleanPassthrough(t *testing.T) {
	src := payload(4096)
	got, err := io.ReadAll(NewReader(bytes.NewReader(src)))
	if err != nil {
		t.Fatalf("clean read: %v", err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("clean passthrough altered bytes")
	}
}

func TestReaderShortOpsDeterministic(t *testing.T) {
	src := payload(8192)
	read := func(seed uint64) ([]byte, []int) {
		r := NewReader(bytes.NewReader(src), WithShortOps(), WithSeed(seed))
		var sizes []int
		var out []byte
		buf := make([]byte, 1024)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if n > 0 {
				sizes = append(sizes, n)
			}
			if err == io.EOF {
				return out, sizes
			}
			if err != nil {
				t.Fatalf("short read: %v", err)
			}
		}
	}
	a, sa := read(7)
	b, sb := read(7)
	if !bytes.Equal(a, src) || !bytes.Equal(b, src) {
		t.Fatal("short reads lost bytes")
	}
	if len(sa) != len(sb) {
		t.Fatalf("same seed, different schedules: %d vs %d reads", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed, different read %d: %d vs %d", i, sa[i], sb[i])
		}
	}
	if len(sa) <= len(src)/1024 {
		t.Fatalf("short ops never shortened anything (%d reads)", len(sa))
	}
}

func TestReaderFailAtDeliversPrefixThenSticks(t *testing.T) {
	src := payload(1000)
	for _, off := range []int64{0, 1, 17, 999} {
		r := NewReader(bytes.NewReader(src), WithFailAt(off, nil))
		got, err := io.ReadAll(r)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("offset %d: want ErrInjected, got %v", off, err)
		}
		if int64(len(got)) != off {
			t.Fatalf("offset %d: delivered %d bytes before failing", off, len(got))
		}
		if !bytes.Equal(got, src[:off]) {
			t.Fatalf("offset %d: prefix corrupted", off)
		}
		if _, err := r.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
			t.Fatalf("offset %d: failure not sticky: %v", off, err)
		}
	}
}

func TestReaderTruncateAtIsCleanEOF(t *testing.T) {
	src := payload(500)
	r := NewReader(bytes.NewReader(src), WithTruncateAt(123))
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("truncated read must end in clean EOF, got %v", err)
	}
	if !bytes.Equal(got, src[:123]) {
		t.Fatalf("truncation delivered %d bytes, want 123", len(got))
	}
}

func TestReaderCorruptByte(t *testing.T) {
	src := payload(300)
	r := NewReader(bytes.NewReader(src), WithCorruptByte(200, 0xFF), WithShortOps())
	got, err := io.ReadAll(r)
	if err != nil || len(got) != len(src) {
		t.Fatalf("corrupting read: n=%d err=%v", len(got), err)
	}
	for i := range src {
		want := src[i]
		if i == 200 {
			want ^= 0xFF
		}
		if got[i] != want {
			t.Fatalf("byte %d: got %02x want %02x", i, got[i], want)
		}
	}
}

func TestReaderFlakyErrorsAreTransient(t *testing.T) {
	src := payload(1 << 15)
	r := NewReader(bytes.NewReader(src), WithFlakyErrors(0.3, nil), WithSeed(EnvSeed(3)))
	var out []byte
	buf := make([]byte, 512)
	failures := 0
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			break
		}
		if errors.Is(err, ErrInjected) {
			failures++
			continue // transient: retry the same reader
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if !bytes.Equal(out, src) {
		t.Fatal("flaky reader lost or reordered bytes across retries")
	}
	if failures == 0 {
		t.Fatal("p=0.3 flaky reader never failed")
	}
}

func TestWriterFailAtTearsAtExactOffset(t *testing.T) {
	src := payload(1000)
	for _, off := range []int64{0, 1, 64, 999} {
		var sink bytes.Buffer
		w := NewWriter(&sink, WithFailAt(off, nil))
		n, err := w.Write(src)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("offset %d: want ErrInjected, got %v", off, err)
		}
		if int64(n) != off || int64(sink.Len()) != off {
			t.Fatalf("offset %d: accepted %d, sink holds %d", off, n, sink.Len())
		}
		if !bytes.Equal(sink.Bytes(), src[:off]) {
			t.Fatalf("offset %d: torn prefix corrupted", off)
		}
		if _, err := w.Write([]byte{1}); !errors.Is(err, ErrInjected) {
			t.Fatalf("offset %d: failure not sticky: %v", off, err)
		}
	}
}

func TestWriterCorruptByteLeavesCallerBufferAlone(t *testing.T) {
	src := payload(300)
	orig := append([]byte(nil), src...)
	var sink bytes.Buffer
	w := NewWriter(&sink, WithCorruptByte(123, 0))
	if _, err := w.Write(src); err != nil {
		t.Fatalf("corrupting write: %v", err)
	}
	if !bytes.Equal(src, orig) {
		t.Fatal("writer corrupted the caller's buffer")
	}
	want := append([]byte(nil), src...)
	want[123] ^= 0xA5
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatal("corruption missing or misplaced in the sink")
	}
}

func TestLatencyUsesInjectedSleep(t *testing.T) {
	var slept []time.Duration
	r := NewReader(bytes.NewReader(payload(10)),
		WithLatency(5*time.Millisecond),
		WithSleep(func(d time.Duration) { slept = append(slept, d) }))
	if _, err := io.ReadAll(r); err != nil {
		t.Fatal(err)
	}
	if len(slept) == 0 || slept[0] != 5*time.Millisecond {
		t.Fatalf("latency sleeps: %v", slept)
	}
}

func TestEnvSeed(t *testing.T) {
	t.Setenv("FAULT_SEED", "")
	if got := EnvSeed(7); got != 7 {
		t.Fatalf("unset: %d", got)
	}
	t.Setenv("FAULT_SEED", "12345")
	if got := EnvSeed(7); got != 12345 {
		t.Fatalf("set: %d", got)
	}
	t.Setenv("FAULT_SEED", "bogus")
	if got := EnvSeed(7); got != 7 {
		t.Fatalf("malformed: %d", got)
	}
}
