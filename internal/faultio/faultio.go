// Package faultio provides deterministic, seeded fault injection for
// io.Reader / io.Writer pipelines: short reads, mid-stream transport
// errors (sticky or transient), clean truncation, byte corruption and
// artificial latency. It exists so the codec, checkpoint and service
// layers can be tested against every failure a real transport or disk
// exhibits, with failures that reproduce exactly from a seed.
//
// Faults are scheduled against the wrapper's byte offset (the count of
// bytes that have passed through it), so "fail at offset 1234" means
// the same thing for any caller read/write pattern — the property the
// kill-at-every-byte-offset checkpoint tests and the chunk-boundary
// codec sweeps rely on.
//
// The wrappers are not safe for concurrent use; wrap one per stream.
package faultio

import (
	"errors"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/rng"
)

// ErrInjected is the default error delivered by injected transport
// faults. It deliberately wraps nothing: the codec contract says
// genuine transport errors pass through the decoder bare, and tests
// assert exactly that with errors.Is(err, faultio.ErrInjected).
var ErrInjected = errors.New("faultio: injected fault")

// EnvSeed returns the fault seed for this process: the FAULT_SEED
// environment variable when set (the CI chaos job sweeps it), def
// otherwise. A malformed value falls back to def, never panics — a
// chaos run must not be killable by its own configuration.
func EnvSeed(def uint64) uint64 {
	v := os.Getenv("FAULT_SEED")
	if v == "" {
		return def
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return def
	}
	return n
}

// config is the shared fault schedule of Reader and Writer.
type config struct {
	seed        uint64
	shortOps    bool
	failAt      int64 // injected error once offset reaches this, -1 = never
	failErr     error
	flakyP      float64 // per-call transient error probability
	flakyErr    error
	truncateAt  int64 // clean io.EOF once offset reaches this, -1 = never
	corruptAt   int64 // XOR-corrupt the byte at this offset, -1 = never
	corruptMask byte
	latency     time.Duration
	sleep       func(time.Duration)
}

func defaultConfig() config {
	return config{
		seed:        1,
		failAt:      -1,
		truncateAt:  -1,
		corruptAt:   -1,
		corruptMask: 0xA5,
		failErr:     ErrInjected,
		flakyErr:    ErrInjected,
		sleep:       time.Sleep,
	}
}

// Option configures a fault-injecting wrapper.
type Option func(*config)

// WithSeed seeds the deterministic randomness behind short operations
// and transient (flaky) errors. The same seed over the same call
// pattern reproduces the same fault sequence.
func WithSeed(seed uint64) Option { return func(c *config) { c.seed = seed } }

// WithShortOps makes every Read deliver (and every Write accept) a
// random nonempty prefix of the requested bytes — the iotest.HalfReader
// idea generalized to seeded random lengths, exercising every resume
// path of the consumer.
func WithShortOps() Option { return func(c *config) { c.shortOps = true } }

// WithFailAt injects err once the wrapper's byte offset reaches off:
// the call that would move past off delivers the bytes before off and
// then fails. The error is sticky — a broken transport stays broken —
// matching a killed connection or a yanked disk. A nil err means
// ErrInjected.
func WithFailAt(off int64, err error) Option {
	return func(c *config) {
		c.failAt = off
		if err != nil {
			c.failErr = err
		}
	}
}

// WithFlakyErrors makes each call fail with probability p before
// touching any bytes. Unlike WithFailAt the error is transient — the
// next call may succeed — modelling the retryable faults the service's
// backoff path must absorb. A nil err means ErrInjected.
func WithFlakyErrors(p float64, err error) Option {
	return func(c *config) {
		c.flakyP = p
		if err != nil {
			c.flakyErr = err
		}
	}
}

// WithTruncateAt ends the stream with a clean io.EOF once the offset
// reaches off, as if the peer closed mid-transfer or the file was torn
// at that byte.
func WithTruncateAt(off int64) Option { return func(c *config) { c.truncateAt = off } }

// WithCorruptByte XORs the byte at offset off with mask as it passes
// through (mask 0 means the default 0xA5). The stream's length is
// unchanged — exactly the single-byte rot the per-chunk CRCs must
// catch.
func WithCorruptByte(off int64, mask byte) Option {
	return func(c *config) {
		c.corruptAt = off
		if mask != 0 {
			c.corruptMask = mask
		}
	}
}

// WithLatency sleeps d before every call, for deadline and timeout
// tests against real clocks.
func WithLatency(d time.Duration) Option { return func(c *config) { c.latency = d } }

// WithSleep replaces the latency sleep function (tests use a recording
// no-op so latency schedules stay fast).
func WithSleep(f func(time.Duration)) Option { return func(c *config) { c.sleep = f } }

// Reader is a fault-injecting io.Reader wrapper.
type Reader struct {
	r   io.Reader
	cfg config
	rng *rng.RNG
	off int64
	err error // sticky failure
}

// NewReader wraps r with the configured fault schedule.
func NewReader(r io.Reader, opts ...Option) *Reader {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return &Reader{r: r, cfg: cfg, rng: rng.New(cfg.seed)}
}

// Offset returns the number of bytes delivered so far.
func (f *Reader) Offset() int64 { return f.off }

// Read implements io.Reader under the fault schedule. Bytes before a
// scheduled fault are always delivered, so a fault at offset N tears
// the stream at exactly N bytes.
func (f *Reader) Read(p []byte) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	if f.cfg.latency > 0 {
		f.cfg.sleep(f.cfg.latency)
	}
	if f.cfg.flakyP > 0 && f.rng.Bernoulli(f.cfg.flakyP) {
		return 0, f.cfg.flakyErr
	}
	if len(p) == 0 {
		return 0, nil
	}
	n := len(p)
	if f.cfg.shortOps && n > 1 {
		n = 1 + f.rng.Intn(n)
	}
	// Clip the request so it never crosses a scheduled tear: the bytes
	// before the fault offset are delivered first, the fault fires on
	// the call that reaches it.
	n = f.clip(n)
	if n == 0 {
		if f.cfg.truncateAt >= 0 && f.off >= f.cfg.truncateAt {
			return 0, io.EOF
		}
		f.err = f.cfg.failErr
		return 0, f.err
	}
	got, err := f.r.Read(p[:n])
	f.corrupt(p[:got], f.off)
	f.off += int64(got)
	return got, err
}

// clip bounds a transfer of want bytes so it stops at the nearest
// scheduled tear (truncation or sticky failure); 0 means the tear is
// now.
func (f *Reader) clip(want int) int {
	n := int64(want)
	if f.cfg.truncateAt >= 0 && f.off+n > f.cfg.truncateAt {
		n = f.cfg.truncateAt - f.off
	}
	if f.cfg.failAt >= 0 && f.off+n > f.cfg.failAt {
		n = f.cfg.failAt - f.off
	}
	if n < 0 {
		n = 0
	}
	return int(n)
}

// corrupt applies the scheduled byte corruption to a transfer that
// started at offset start.
func (f *Reader) corrupt(p []byte, start int64) {
	at := f.cfg.corruptAt
	if at >= 0 && at >= start && at < start+int64(len(p)) {
		p[at-start] ^= f.cfg.corruptMask
	}
}

// Writer is a fault-injecting io.Writer wrapper.
type Writer struct {
	w   io.Writer
	cfg config
	rng *rng.RNG
	off int64
	err error // sticky failure
}

// NewWriter wraps w with the configured fault schedule. WithTruncateAt
// behaves as a silent tear: bytes past the offset are reported as an
// ErrInjected failure (a writer cannot signal EOF), which is what a
// process kill mid-write looks like to the caller.
func NewWriter(w io.Writer, opts ...Option) *Writer {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.truncateAt >= 0 && (cfg.failAt < 0 || cfg.truncateAt < cfg.failAt) {
		cfg.failAt = cfg.truncateAt
	}
	return &Writer{w: w, cfg: cfg, rng: rng.New(cfg.seed)}
}

// Offset returns the number of bytes accepted so far.
func (f *Writer) Offset() int64 { return f.off }

// Write implements io.Writer under the fault schedule: bytes before a
// scheduled fault are written through (so the underlying stream holds
// exactly the pre-fault prefix — a torn write), then the error is
// returned with the partial count.
func (f *Writer) Write(p []byte) (int, error) {
	if f.err != nil {
		return 0, f.err
	}
	if f.cfg.latency > 0 {
		f.cfg.sleep(f.cfg.latency)
	}
	if f.cfg.flakyP > 0 && f.rng.Bernoulli(f.cfg.flakyP) {
		return 0, f.cfg.flakyErr
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		if f.cfg.shortOps && n > 1 {
			n = 1 + f.rng.Intn(n)
		}
		torn := false
		if f.cfg.failAt >= 0 && f.off+int64(n) > f.cfg.failAt {
			n = int(f.cfg.failAt - f.off)
			torn = true
		}
		if n > 0 {
			var buf [256]byte
			chunk := p[:n]
			if at := f.cfg.corruptAt; at >= 0 && at >= f.off && at < f.off+int64(n) {
				// Corrupt a copy; the caller's buffer is not ours to edit.
				chunk = corruptCopy(buf[:0], p[:n], int(at-f.off), f.cfg.corruptMask)
			}
			got, err := f.w.Write(chunk)
			f.off += int64(got)
			total += got
			if err != nil {
				f.err = err
				return total, err
			}
			p = p[n:]
		}
		if torn {
			f.err = f.cfg.failErr
			return total, f.err
		}
	}
	return total, nil
}

// corruptCopy returns a copy of p with the byte at index i XORed by
// mask, reusing buf when it fits.
func corruptCopy(buf, p []byte, i int, mask byte) []byte {
	out := append(buf, p...)
	out[i] ^= mask
	return out
}
