package lp

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestSolveKnownLP(t *testing.T) {
	// maximize 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18, x,y>=0
	// => minimize -3x-5y with slacks; optimum x=2, y=6, obj=-36.
	A := linalg.FromRows([][]float64{
		{1, 0, 1, 0, 0},
		{0, 2, 0, 1, 0},
		{3, 2, 0, 0, 1},
	})
	p := Problem{A: A, B: []float64{4, 12, 18}, C: []float64{-3, -5, 0, 0, 0}}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj+36) > 1e-7 {
		t.Fatalf("obj = %g, want -36", obj)
	}
	if math.Abs(x[0]-2) > 1e-7 || math.Abs(x[1]-6) > 1e-7 {
		t.Fatalf("x = %v, want [2 6 ...]", x)
	}
}

func TestSolveEqualityLP(t *testing.T) {
	// minimize x+2y s.t. x+y=10, x-y=2 => x=6, y=4, obj=14.
	A := linalg.FromRows([][]float64{{1, 1}, {1, -1}})
	x, obj, err := Solve(Problem{A: A, B: []float64{10, 2}, C: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-6) > 1e-7 || math.Abs(x[1]-4) > 1e-7 || math.Abs(obj-14) > 1e-7 {
		t.Fatalf("x = %v obj = %g, want [6 4] 14", x, obj)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// x - y = -3, x + y = 5 => x=1, y=4.
	A := linalg.FromRows([][]float64{{1, -1}, {1, 1}})
	x, _, err := Solve(Problem{A: A, B: []float64{-3, 5}, C: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-7 || math.Abs(x[1]-4) > 1e-7 {
		t.Fatalf("x = %v, want [1 4]", x)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x + y = 1 and x + y = 3 cannot both hold.
	A := linalg.FromRows([][]float64{{1, 1}, {1, 1}})
	if _, _, err := Solve(Problem{A: A, B: []float64{1, 3}, C: []float64{1, 1}}); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// minimize -x s.t. x - y = 0 (x = y can grow forever).
	A := linalg.FromRows([][]float64{{1, -1}})
	if _, _, err := Solve(Problem{A: A, B: []float64{0}, C: []float64{-1, 0}}); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveRedundantConstraint(t *testing.T) {
	// Second row duplicates the first; solution must still be found.
	A := linalg.FromRows([][]float64{{1, 1}, {2, 2}, {1, -1}})
	x, _, err := Solve(Problem{A: A, B: []float64{4, 8, 0}, C: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-7 || math.Abs(x[1]-2) > 1e-7 {
		t.Fatalf("x = %v, want [2 2]", x)
	}
}

func TestSolveShapeMismatch(t *testing.T) {
	A := linalg.NewMatrix(2, 2)
	if _, _, err := Solve(Problem{A: A, B: []float64{1}, C: []float64{1, 1}}); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Classic Beale cycling example (with Bland's rule it terminates):
	// min −0.75x₁+150x₂−0.02x₃+6x₄ s.t. the two degenerate rows below;
	// optimum −0.05 at x = (0.04, 0, 1, 0).
	A := linalg.FromRows([][]float64{
		{0.25, -60, -0.04, 9, 1, 0, 0},
		{0.5, -90, -0.02, 3, 0, 1, 0},
		{0, 0, 1, 0, 0, 0, 1},
	})
	p := Problem{
		A: A,
		B: []float64{0, 0, 1},
		C: []float64{-0.75, 150, -0.02, 6, 0, 0, 0},
	}
	_, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-(-0.05)) > 1e-6 {
		t.Fatalf("Beale objective = %g, want -0.05", obj)
	}
}

func TestL1RegressionExactRecovery(t *testing.T) {
	// Consistent system with binary solution: L1 fit must reach 0 and
	// recover x exactly (A well-conditioned).
	A := linalg.FromRows([][]float64{
		{1, 0, 1},
		{0, 1, 1},
		{1, 1, 0},
		{1, 1, 1},
	})
	xTrue := []float64{1, 0, 1}
	b := A.MulVec(xTrue)
	x, obj, err := L1Regression(A, b)
	if err != nil {
		t.Fatal(err)
	}
	if obj > 1e-7 {
		t.Fatalf("objective = %g, want 0", obj)
	}
	for i := range xTrue {
		if math.Abs(x[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x = %v, want %v", x, xTrue)
		}
	}
}

func TestL1RegressionBoxRespected(t *testing.T) {
	// b demands values far above 1; solution must stay in [0,1].
	A := linalg.FromRows([][]float64{{1, 0}, {0, 1}})
	x, obj, err := L1Regression(A, []float64{5, -3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] < -1e-9 || x[0] > 1+1e-9 || x[1] < -1e-9 || x[1] > 1+1e-9 {
		t.Fatalf("x = %v violates box", x)
	}
	// Optimal: x=[1,0], residual |1-5|+|0+3| = 7.
	if math.Abs(obj-7) > 1e-7 {
		t.Fatalf("obj = %g, want 7", obj)
	}
}

func TestL1RegressionRobustToOutlier(t *testing.T) {
	// The defining property for De's argument: a single wildly wrong
	// measurement must not drag the L1 solution, while it does drag L2.
	r := rng.New(9)
	n, m := 6, 24
	A := linalg.NewMatrix(m, n)
	for i := range A.Data {
		if r.Bool() {
			A.Data[i] = 1
		}
	}
	xTrue := make([]float64, n)
	for j := range xTrue {
		if r.Bool() {
			xTrue[j] = 1
		}
	}
	b := A.MulVec(xTrue)
	b[3] += 50 // one corrupted answer

	xL1, _, err := L1Regression(A, b)
	if err != nil {
		t.Fatal(err)
	}
	l1Err := 0.0
	for j := range xTrue {
		l1Err += math.Abs(xL1[j] - xTrue[j])
	}
	if l1Err > 1e-5 {
		t.Fatalf("L1 should shrug off one outlier; recovery error = %g (x=%v want %v)", l1Err, xL1, xTrue)
	}

	xL2, err := linalg.LeastSquares(A, b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	l2Err := 0.0
	for j := range xTrue {
		l2Err += math.Abs(xL2[j] - xTrue[j])
	}
	if l2Err < 10*l1Err+1e-3 {
		t.Fatalf("expected L2 to be visibly dragged by the outlier: l1=%g l2=%g", l1Err, l2Err)
	}
}

func TestL1RegressionOptimality(t *testing.T) {
	// Spot-check optimality against random feasible candidates.
	r := rng.New(77)
	n, m := 4, 10
	A := linalg.NewMatrix(m, n)
	for i := range A.Data {
		A.Data[i] = math.Floor(r.Float64()*3) - 1 // {-1,0,1}
	}
	b := make([]float64, m)
	for i := range b {
		b[i] = r.Float64()*4 - 2
	}
	x, obj, err := L1Regression(A, b)
	if err != nil {
		t.Fatal(err)
	}
	_ = x
	for trial := 0; trial < 2000; trial++ {
		cand := make([]float64, n)
		for j := range cand {
			cand[j] = r.Float64()
		}
		res := A.MulVec(cand)
		v := 0.0
		for i := range res {
			v += math.Abs(res[i] - b[i])
		}
		if v < obj-1e-6 {
			t.Fatalf("random candidate beats LP optimum: %g < %g", v, obj)
		}
	}
}

func BenchmarkL1Regression(b *testing.B) {
	r := rng.New(3)
	n, m := 16, 48
	A := linalg.NewMatrix(m, n)
	for i := range A.Data {
		if r.Bool() {
			A.Data[i] = 1
		}
	}
	xTrue := make([]float64, n)
	for j := range xTrue {
		if r.Bool() {
			xTrue[j] = 1
		}
	}
	bv := A.MulVec(xTrue)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := L1Regression(A, bv); err != nil {
			b.Fatal(err)
		}
	}
}
