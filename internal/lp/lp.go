// Package lp implements a dense two-phase primal simplex solver and an
// L1-regression front-end.
//
// The estimator lower bound (Theorem 16) relies on De's reconstruction
// [De12], which recovers a database column as
//
//	argmin_{x ∈ [0,1]^n} ‖A·x − b‖₁
//
// given approximate itemset-frequency answers b. L1 minimization — as
// opposed to the L2 minimization of the earlier KRSU argument — is what
// tolerates answers that are accurate only on average (§4.1.1). The L1
// fit is expressed as a linear program and solved here with no
// dependencies beyond the standard library.
package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Problem is a linear program in standard form:
//
//	minimize    C·x
//	subject to  A·x = B,  x ≥ 0.
type Problem struct {
	A *linalg.Matrix
	B []float64
	C []float64
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
	ErrIterLimit  = errors.New("lp: iteration limit exceeded")
)

const tol = 1e-9

// Solve runs two-phase primal simplex with Bland's anti-cycling rule.
// It returns an optimal basic solution and its objective value.
func Solve(p Problem) (x []float64, obj float64, err error) {
	m, n := p.A.R, p.A.C
	if len(p.B) != m || len(p.C) != n {
		return nil, 0, fmt.Errorf("lp: shape mismatch A=%dx%d |B|=%d |C|=%d", m, n, len(p.B), len(p.C))
	}

	// Tableau over variables [x (n), artificials (m)], columns n+m plus
	// RHS. Rows are constraints; we keep an explicit basis index list.
	width := n + m
	t := make([][]float64, m)
	for i := range t {
		t[i] = make([]float64, width+1)
		copy(t[i], p.A.Row(i))
		rhs := p.B[i]
		if rhs < 0 { // simplex needs b ≥ 0
			for j := 0; j < n; j++ {
				t[i][j] = -t[i][j]
			}
			rhs = -rhs
		}
		t[i][n+i] = 1
		t[i][width] = rhs
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, width)
	for j := n; j < width; j++ {
		phase1[j] = 1
	}
	if err := simplexIterate(t, basis, phase1, width); err != nil {
		return nil, 0, err
	}
	if v := objective(t, basis, phase1, width); v > 1e-7 {
		return nil, 0, ErrInfeasible
	}
	// Drive any artificial still in the basis out (degenerate case), or
	// drop its row if the row is all-zero over structural columns.
	for i := 0; i < m; i++ {
		if basis[i] < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(t[i][j]) > tol {
				pivot(t, basis, i, j, width)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint; zero the row so it never pivots.
			for j := 0; j <= width; j++ {
				t[i][j] = 0
			}
		}
	}

	// Phase 2: original objective; forbid artificial columns.
	phase2 := make([]float64, width)
	copy(phase2, p.C)
	for j := n; j < width; j++ {
		phase2[j] = math.Inf(1) // never enters
	}
	if err := simplexIterate(t, basis, phase2, n); err != nil {
		return nil, 0, err
	}

	x = make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = t[i][width]
		}
	}
	return x, linalg.Dot(p.C, x), nil
}

// objective evaluates c over the current basic solution.
func objective(t [][]float64, basis []int, c []float64, width int) float64 {
	v := 0.0
	for i, b := range basis {
		if b < len(c) && !math.IsInf(c[b], 1) {
			v += c[b] * t[i][width]
		}
	}
	return v
}

// simplexIterate runs primal simplex on tableau t, allowing entering
// columns only in [0, ncols). It mutates t and basis in place.
func simplexIterate(t [][]float64, basis []int, c []float64, ncols int) error {
	m := len(t)
	width := len(t[0]) - 1
	// Reduced costs require expressing c over the basis: z_j = c_j −
	// c_Bᵀ B⁻¹ A_j. With an explicit tableau, B⁻¹A_j is column j of t.
	maxIter := 8000 + 200*(m+ncols)
	for iter := 0; iter < maxIter; iter++ {
		// Compute reduced costs; pick entering column by Bland's rule
		// (smallest index with negative reduced cost).
		enter := -1
		for j := 0; j < ncols; j++ {
			if math.IsInf(c[j], 1) {
				continue
			}
			rc := c[j]
			for i, b := range basis {
				cb := 0.0
				if b < len(c) && !math.IsInf(c[b], 1) {
					cb = c[b]
				}
				if cb != 0 {
					rc -= cb * t[i][j]
				}
			}
			if rc < -tol {
				enter = j
				break
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test (Bland: smallest basis index on ties).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > tol {
				ratio := t[i][width] / t[i][enter]
				if ratio < best-tol || (math.Abs(ratio-best) <= tol && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return ErrUnbounded
		}
		pivot(t, basis, leave, enter, width)
	}
	return ErrIterLimit
}

// pivot makes column `enter` basic in row `leave`.
func pivot(t [][]float64, basis []int, leave, enter, width int) {
	pr := t[leave]
	inv := 1 / pr[enter]
	for j := 0; j <= width; j++ {
		pr[j] *= inv
	}
	pr[enter] = 1 // exact
	for i := range t {
		if i == leave {
			continue
		}
		f := t[i][enter]
		if f == 0 {
			continue
		}
		row := t[i]
		for j := 0; j <= width; j++ {
			row[j] -= f * pr[j]
		}
		row[enter] = 0 // exact
	}
	basis[leave] = enter
}

// L1Regression solves
//
//	minimize ‖A·x − b‖₁  subject to  0 ≤ x ≤ 1,
//
// the LP-decoding step of Lemma 24/25. It returns the minimizer and the
// optimal objective value.
//
// Formulation: variables [x (n), u (n), p (m), q (m)] all ≥ 0 with
// x_j + u_j = 1 (box) and A·x − p + q = b (residual split); objective
// Σ(p_i + q_i).
func L1Regression(a *linalg.Matrix, b []float64) (x []float64, obj float64, err error) {
	m, n := a.R, a.C
	if len(b) != m {
		return nil, 0, fmt.Errorf("lp: L1Regression shape mismatch %dx%d vs %d", m, n, len(b))
	}
	rows := n + m
	cols := 2*n + 2*m
	A := linalg.NewMatrix(rows, cols)
	B := make([]float64, rows)
	C := make([]float64, cols)
	// Box rows: x_j + u_j = 1.
	for j := 0; j < n; j++ {
		A.Set(j, j, 1)
		A.Set(j, n+j, 1)
		B[j] = 1
	}
	// Residual rows: A x − p + q = b.
	for i := 0; i < m; i++ {
		r := n + i
		for j := 0; j < n; j++ {
			A.Set(r, j, a.At(i, j))
		}
		A.Set(r, 2*n+i, -1)  // p_i
		A.Set(r, 2*n+m+i, 1) // q_i
		B[r] = b[i]
	}
	for i := 0; i < 2*m; i++ {
		C[2*n+i] = 1
	}
	sol, obj, err := Solve(Problem{A: A, B: B, C: C})
	if err != nil {
		return nil, 0, err
	}
	return sol[:n], obj, nil
}
