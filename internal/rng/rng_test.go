package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(12345)
	b := New(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := New(54321)
	same := 0
	a2 := New(12345)
	for i := 0; i < 100; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws of 100", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for n := 1; n <= 10; n++ {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates too far from %g", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestPerm(t *testing.T) {
	r := New(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at %d", v)
		}
		seen[v] = true
	}
}

func TestSample(t *testing.T) {
	r := New(11)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(40)
		k := r.Intn(n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			t.Fatalf("Sample(%d,%d) len %d", n, k, len(s))
		}
		for i, v := range s {
			if v < 0 || v >= n {
				t.Fatalf("Sample value %d out of range", v)
			}
			if i > 0 && s[i-1] >= v {
				t.Fatalf("Sample not strictly increasing: %v", s)
			}
		}
	}
}

func TestSampleCoversAll(t *testing.T) {
	r := New(5)
	s := r.Sample(10, 10)
	for i, v := range s {
		if v != i {
			t.Fatalf("Sample(10,10) = %v, want identity", s)
		}
	}
}

func TestSplitDecorrelates(t *testing.T) {
	r := New(1)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams matched %d/100 times", same)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(77)
	hits := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / draws
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) rate = %g", p)
	}
}

func TestZipf(t *testing.T) {
	r := New(13)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// rank 0 must dominate rank 50 heavily.
	if counts[0] <= counts[50]*4 {
		t.Errorf("Zipf shape wrong: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
	// monotone non-increasing in aggregate: first decile > last decile
	first, last := 0, 0
	for i := 0; i < 10; i++ {
		first += counts[i]
		last += counts[90+i]
	}
	if first <= last {
		t.Errorf("Zipf deciles wrong: first=%d last=%d", first, last)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
