// Package rng provides a deterministic, splittable pseudo-random number
// generator used for all randomized components: the SUBSAMPLE sketching
// algorithm, workload generators, and the random matrices of Lemma 26.
//
// The generator is xoshiro256** seeded through splitmix64, following the
// reference construction of Blackman and Vigna. A dedicated generator
// (rather than math/rand's global state) keeps every experiment
// reproducible from a single seed, and Split lets independent components
// derive decorrelated streams from one root seed.
package rng

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** generator. It is not safe for concurrent use;
// use Split to hand each goroutine its own stream.
type RNG struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, so that any
// seed (including 0) yields a well-mixed initial state.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is decorrelated from r's.
// It advances r.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xA5A5A5A5DEADBEEF)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded rejection method.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		thresh := -bound % bound
		for lo < thresh {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random bit.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniform random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct uniform values from [0, n) in increasing
// order, using a partial Fisher–Yates when k is small relative to n.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	chosen := make(map[int]bool, k)
	out := make([]int, 0, k)
	// Floyd's algorithm: uniform k-subset in O(k) expected draws.
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if chosen[t] {
			t = j
		}
		chosen[t] = true
		out = append(out, t)
	}
	// insertion sort (k is typically small)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Zipf samples from a Zipf-like distribution over [0, n) with exponent
// s > 0 using inverse-CDF on precomputed weights. For repeated sampling
// construct a ZipfGen instead.
type ZipfGen struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over ranks [0, n) with exponent s.
func NewZipf(r *RNG, n int, s float64) *ZipfGen {
	if n <= 0 {
		panic("rng: NewZipf n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &ZipfGen{cdf: cdf, rng: r}
}

// Next draws one rank.
func (z *ZipfGen) Next() int {
	u := z.rng.Float64()
	// binary search for first cdf[i] >= u
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
