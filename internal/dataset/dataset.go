// Package dataset implements the binary databases the paper sketches:
// D ∈ ({0,1}^d)^n with n rows and d attribute columns, itemsets
// T ⊆ [d], and itemset frequencies f_T(D) — the fraction of rows that
// contain T (a 1 in every column of T).
//
// # Storage layout
//
// A Database is a single contiguous row-major []uint64 arena. Each row
// occupies stride = ⌈d/64⌉ words (rows are padded to a word boundary),
// so row i lives at arena[i*stride : (i+1)*stride] and an append is a
// block copy into the arena with amortized geometric growth. There is
// no per-row header, no pointer chasing, and a full-database clone or
// merge is a single memcpy. Bits past column d−1 in a row's last word
// are always zero.
//
// The vertical layout (BuildColumnIndex) is a second contiguous arena,
// column-major: attribute a's n-bit row bitmap occupies colStride =
// ⌈n/64⌉ words. It is invalidated by any mutation.
//
// # Query paths
//
// Three query paths answer Count/Frequency; the serial and vertical
// paths are zero-allocation in steady state (the sharded scan pays a
// small per-call allocation for the shared indicator, the per-shard
// counters, and goroutine spawns — amortized across the rows each
// shard scans):
//
//   - Horizontal scan: tests itemset containment word-parallel against
//     each row. Wins when there is no column index, or for itemsets
//     touching many attributes on narrow databases.
//   - Sharded horizontal scan: the same scan split across GOMAXPROCS
//     goroutines over row ranges (capped by SetMaxWorkers); engaged
//     automatically above parallelRowThreshold rows. See ScanCount to
//     force a worker count.
//   - Vertical fused intersection: ANDs the k attribute bitmaps of the
//     column index in a single fused pass that popcounts as it goes
//     (bitvec.AndCountAll), never materializing the intersection. Wins
//     for small k over many rows — the classical vertical / tidlist
//     layout from the frequent-itemset-mining literature — and is used
//     automatically whenever the column index is built. Itemsets wider
//     than maxFusedCols fall back to a pooled accumulator with
//     early-exit (bitvec.AndInto returns the running popcount, so an
//     empty intersection stops the attribute loop without a second
//     popcount pass).
//
// CountMany batches queries and shards them across CPUs when the
// column index is present, answering each query with the fused
// vertical kernel.
package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/bitvec"
)

// Itemset is a set of attribute indices, stored strictly increasing.
// The zero value is the empty itemset.
type Itemset struct {
	attrs []int
}

// NewItemset builds an itemset from the given attributes. The input may
// be in any order; duplicates are rejected.
func NewItemset(attrs ...int) (Itemset, error) {
	s := append([]int(nil), attrs...)
	sort.Ints(s)
	for i, a := range s {
		if a < 0 {
			return Itemset{}, fmt.Errorf("dataset: negative attribute %d", a)
		}
		if i > 0 && s[i-1] == a {
			return Itemset{}, fmt.Errorf("dataset: duplicate attribute %d", a)
		}
	}
	return Itemset{attrs: s}, nil
}

// MustItemset is NewItemset that panics on error, for tests and
// constructions with known-valid inputs.
func MustItemset(attrs ...int) Itemset {
	t, err := NewItemset(attrs...)
	if err != nil {
		panic(err)
	}
	return t
}

// ItemsetView wraps attrs as an Itemset without copying — the
// zero-allocation constructor the mining engine uses to carve result
// itemsets out of a reused arena. attrs must be strictly increasing and
// non-negative (checked; panics otherwise, so the sortedness invariant
// every query path relies on cannot be broken silently). The caller
// retains ownership: mutating attrs afterwards changes the itemset.
func ItemsetView(attrs []int) Itemset {
	for i, a := range attrs {
		if a < 0 {
			panic(fmt.Sprintf("dataset: negative attribute %d", a))
		}
		if i > 0 && attrs[i-1] >= a {
			panic(fmt.Sprintf("dataset: ItemsetView attrs not strictly increasing at %d", i))
		}
	}
	return Itemset{attrs: attrs}
}

// Len returns the number of attributes (k for a k-itemset).
func (t Itemset) Len() int { return len(t.attrs) }

// Attrs returns the attributes in increasing order. Callers must not
// mutate the returned slice.
func (t Itemset) Attrs() []int { return t.attrs }

// MaxAttr returns the largest attribute index, or -1 for the empty set.
func (t Itemset) MaxAttr() int {
	if len(t.attrs) == 0 {
		return -1
	}
	return t.attrs[len(t.attrs)-1]
}

// Contains reports whether attribute a is in the itemset.
func (t Itemset) Contains(a int) bool {
	i := sort.SearchInts(t.attrs, a)
	return i < len(t.attrs) && t.attrs[i] == a
}

// Union returns the union of t and u.
func (t Itemset) Union(u Itemset) Itemset {
	merged := make([]int, 0, len(t.attrs)+len(u.attrs))
	i, j := 0, 0
	for i < len(t.attrs) && j < len(u.attrs) {
		switch {
		case t.attrs[i] < u.attrs[j]:
			merged = append(merged, t.attrs[i])
			i++
		case t.attrs[i] > u.attrs[j]:
			merged = append(merged, u.attrs[j])
			j++
		default:
			merged = append(merged, t.attrs[i])
			i++
			j++
		}
	}
	merged = append(merged, t.attrs[i:]...)
	merged = append(merged, u.attrs[j:]...)
	return Itemset{attrs: merged}
}

// Shift returns the itemset with every attribute increased by off.
func (t Itemset) Shift(off int) Itemset {
	s := make([]int, len(t.attrs))
	for i, a := range t.attrs {
		s[i] = a + off
	}
	return Itemset{attrs: s}
}

// Equal reports whether t and u contain the same attributes.
func (t Itemset) Equal(u Itemset) bool {
	if len(t.attrs) != len(u.attrs) {
		return false
	}
	for i := range t.attrs {
		if t.attrs[i] != u.attrs[i] {
			return false
		}
	}
	return true
}

// Indicator returns the d-length indicator bit vector of the itemset.
// All attributes must be < d.
func (t Itemset) Indicator(d int) *bitvec.Vector {
	v := bitvec.New(d)
	for _, a := range t.attrs {
		v.Set(a)
	}
	return v
}

// indicatorWords fills dst (length ≥ ⌈d/64⌉, zeroed by this call up to
// that length) with the itemset's indicator bits. It is the
// allocation-free core of Indicator used by the query paths.
func (t Itemset) indicatorWords(dst []uint64) {
	for i := range dst {
		dst[i] = 0
	}
	for _, a := range t.attrs {
		dst[a>>6] |= 1 << (uint(a) & 63)
	}
}

// String renders the itemset as {a,b,c}.
func (t Itemset) String() string {
	parts := make([]string, len(t.attrs))
	for i, a := range t.attrs {
		parts[i] = strconv.Itoa(a)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Key returns a canonical map key for the itemset.
func (t Itemset) Key() string {
	return t.String()
}

const wordBits = 64

// wordsFor returns the number of 64-bit words needed to hold n bits.
func wordsFor(n int) int {
	return (n + wordBits - 1) / wordBits
}

// maxFusedCols caps the arity of the single-pass fused vertical
// intersection; wider itemsets use the pooled accumulator path. Eight
// column streams keep the inner loop in registers while covering every
// itemset size the paper's regimes (k = O(1)) care about.
const maxFusedCols = 8

// parallelRowThreshold is the minimum row count before a horizontal
// scan shards across goroutines; below it, goroutine startup dominates.
// The 2^14 value was tuned on the 100k-row × 64-col benchmark database:
// a shard needs tens of microseconds of scanning to amortize its spawn.
// Re-checked when the bitvec kernel layer gained AVX2 dispatch: the
// horizontal scan runs on ContainsAllWords, which is not dispatched
// (its per-row early exit defeats a fixed-stride vector kernel), so
// per-row scan cost is unchanged and the threshold stands; revisit on
// the multi-core runner (see ROADMAP), not here.
//
// CI caveat: the sharded paths only beat the serial ones with
// GOMAXPROCS > 1. The reference CI container has a single CPU, so there
// scan_parallel ≈ scan_serial (plus a few hundred bytes of goroutine
// bookkeeping) and the BENCH_*.json numbers for parallel paths should
// be read as "no regression", not as the speedup; see README.md.
const parallelRowThreshold = 1 << 14

// stackIndicatorWords is the widest indicator built on the stack by the
// query paths (1024 columns); wider databases fall back to one heap
// allocation per query.
const stackIndicatorWords = 16

// Database is a binary database with a fixed number of attribute
// columns and an append-only list of rows, stored as a contiguous
// row-major bit-matrix arena (see the package documentation).
type Database struct {
	d      int
	stride int // words per row
	n      int
	arena  []uint64 // len n*stride, row-major

	// Vertical layout: colArena, if non-nil, holds d row-bitmaps of
	// colStride words each; cols[a] is a Vector view of attribute a's
	// bitmap. Invalidated by any mutation.
	colStride int
	colArena  []uint64
	cols      []bitvec.Vector

	// maxWorkers caps query parallelism; 0 means GOMAXPROCS.
	maxWorkers int
}

// NewDatabase returns an empty database with d attribute columns.
func NewDatabase(d int) *Database {
	if d <= 0 {
		panic("dataset: database needs at least one column")
	}
	return &Database{d: d, stride: wordsFor(d)}
}

// NumCols returns d, the number of attributes.
func (db *Database) NumCols() int { return db.d }

// NumRows returns n, the number of rows.
func (db *Database) NumRows() int { return db.n }

// Reserve grows the arena capacity to hold at least nrows rows without
// further reallocation.
func (db *Database) Reserve(nrows int) {
	need := nrows * db.stride
	if cap(db.arena) >= need {
		return
	}
	a := make([]uint64, len(db.arena), need)
	copy(a, db.arena)
	db.arena = a
}

// Grow appends nrows zeroed rows in one arena extension. It is the
// pre-sizing half of the parallel sketch-construction pattern in
// internal/core: Grow once from a single goroutine, then let workers
// fill disjoint rows concurrently through RowWords (writes to distinct
// rows never alias, so no synchronization beyond the final join is
// needed). It invalidates the column index.
func (db *Database) Grow(nrows int) {
	if nrows <= 0 {
		return
	}
	need := (db.n + nrows) * db.stride
	if cap(db.arena) < need {
		newCap := 2 * cap(db.arena)
		if newCap < need {
			newCap = need
		}
		a := make([]uint64, len(db.arena), newCap)
		copy(a, db.arena)
		db.arena = a
	}
	lo := db.n * db.stride
	db.arena = db.arena[:need]
	fresh := db.arena[lo:]
	for i := range fresh {
		fresh[i] = 0
	}
	db.n += nrows
	db.invalidateIndex()
}

// grow appends one zeroed row to the arena and returns its word slice.
// It invalidates the column index.
func (db *Database) grow() []uint64 {
	db.Grow(1)
	return db.arena[(db.n-1)*db.stride : db.n*db.stride]
}

func (db *Database) invalidateIndex() {
	db.colArena = nil
	db.cols = nil
}

// AddRow appends a copy of row. The vector's length must equal NumCols.
// The caller keeps ownership of the vector.
func (db *Database) AddRow(row *bitvec.Vector) {
	if row.Len() != db.d {
		panic(fmt.Sprintf("dataset: row length %d != %d columns", row.Len(), db.d))
	}
	copy(db.grow(), row.Words())
}

// AddRowAttrs appends a row containing exactly the given attributes.
func (db *Database) AddRowAttrs(attrs ...int) {
	db.checkAttrs(attrs)
	db.setAttrs(db.grow(), attrs)
}

// checkAttrs validates attribute ranges before any mutation, so a
// recovered panic never leaves a phantom or partially written row.
func (db *Database) checkAttrs(attrs []int) {
	for _, a := range attrs {
		if a < 0 || a >= db.d {
			panic(fmt.Sprintf("dataset: attribute %d out of range [0,%d)", a, db.d))
		}
	}
}

// setAttrs sets already-validated attribute bits in row.
func (db *Database) setAttrs(row []uint64, attrs []int) {
	for _, a := range attrs {
		row[a>>6] |= 1 << (uint(a) & 63)
	}
}

// SetRow overwrites row i with a copy of row.
func (db *Database) SetRow(i int, row *bitvec.Vector) {
	if row.Len() != db.d {
		panic(fmt.Sprintf("dataset: row length %d != %d columns", row.Len(), db.d))
	}
	copy(db.RowWords(i), row.Words())
	db.invalidateIndex()
}

// SetRowAttrs overwrites row i with a row containing exactly the given
// attributes.
func (db *Database) SetRowAttrs(i int, attrs ...int) {
	db.checkAttrs(attrs)
	w := db.RowWords(i)
	for j := range w {
		w[j] = 0
	}
	db.setAttrs(w, attrs)
	db.invalidateIndex()
}

// CopyRowFrom appends a copy of row i of src, which must have the same
// number of columns. This is the arena block-copy append used by the
// samplers: no intermediate Vector is materialized.
func (db *Database) CopyRowFrom(src *Database, i int) {
	if src.d != db.d {
		panic(fmt.Sprintf("dataset: column mismatch %d vs %d", src.d, db.d))
	}
	copy(db.grow(), src.RowWords(i))
}

// SetRowFrom overwrites row i with a copy of row j of src, which must
// have the same number of columns.
func (db *Database) SetRowFrom(i int, src *Database, j int) {
	if src.d != db.d {
		panic(fmt.Sprintf("dataset: column mismatch %d vs %d", src.d, db.d))
	}
	copy(db.RowWords(i), src.RowWords(j))
	db.invalidateIndex()
}

// RowWords returns row i's packed words, a view into the arena. The
// slice is valid until the next mutation; callers must not modify it
// or grow it.
func (db *Database) RowWords(i int) []uint64 {
	if i < 0 || i >= db.n {
		panic(fmt.Sprintf("dataset: row %d out of range [0,%d)", i, db.n))
	}
	lo := i * db.stride
	hi := lo + db.stride
	return db.arena[lo:hi:hi]
}

// Row returns row i as a read-only Vector view into the arena. The
// view is valid until the next mutation; callers must not mutate it.
func (db *Database) Row(i int) *bitvec.Vector {
	v := bitvec.Wrap(db.d, db.RowWords(i))
	return &v
}

// AppendRowOnes appends the set attribute indices of row i to dst and
// returns it — the allocation-free alternative to Row(i).Ones().
func (db *Database) AppendRowOnes(dst []int, i int) []int {
	for wi, w := range db.RowWords(i) {
		for w != 0 {
			dst = append(dst, wi*wordBits+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// RowContains reports whether row i contains itemset T.
func (db *Database) RowContains(i int, t Itemset) bool {
	row := db.RowWords(i)
	for _, a := range t.attrs {
		if a >= db.d {
			panic(fmt.Sprintf("dataset: attribute %d exceeds %d columns", a, db.d))
		}
		if row[a>>6]>>(uint(a)&63)&1 == 0 {
			return false
		}
	}
	return true
}

// SetMaxWorkers caps the number of goroutines query paths may use.
// k ≤ 0 restores the default (GOMAXPROCS).
func (db *Database) SetMaxWorkers(k int) {
	if k < 0 {
		k = 0
	}
	db.maxWorkers = k
}

func (db *Database) workers() int {
	w := db.maxWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// Count returns the number of rows that contain T. With a column index
// it uses the fused vertical kernel; otherwise it scans horizontally,
// sharding across CPUs for large row counts.
func (db *Database) Count(t Itemset) int {
	if t.MaxAttr() >= db.d {
		panic(fmt.Sprintf("dataset: itemset %v exceeds %d columns", t, db.d))
	}
	if db.cols != nil {
		return db.countVertical(t)
	}
	workers := 1
	if db.n >= parallelRowThreshold {
		workers = db.workers()
	}
	return db.ScanCount(t, workers)
}

// Frequency returns f_T(D) = Count(T)/n. The frequency of any itemset
// on an empty database is 0.
func (db *Database) Frequency(t Itemset) float64 {
	if db.n == 0 {
		return 0
	}
	return float64(db.Count(t)) / float64(db.n)
}

// CountMany answers one Count per itemset, sharding the batch across
// CPUs when a column index is present and the batch is large enough.
func (db *Database) CountMany(ts []Itemset) []int {
	out := make([]int, len(ts))
	db.CountManyInto(out, ts)
	return out
}

// CountManyInto is CountMany into a caller-provided slice, which must
// have len(ts) elements.
func (db *Database) CountManyInto(dst []int, ts []Itemset) {
	if len(dst) != len(ts) {
		panic(fmt.Sprintf("dataset: CountManyInto dst length %d != %d itemsets", len(dst), len(ts)))
	}
	// Validate every itemset before spawning workers: a panic inside a
	// worker goroutine could not be recovered by the caller.
	for _, t := range ts {
		if t.MaxAttr() >= db.d {
			panic(fmt.Sprintf("dataset: itemset %v exceeds %d columns", t, db.d))
		}
	}
	workers := db.workers()
	if workers > len(ts)/2 {
		workers = len(ts) / 2
	}
	if db.cols == nil || workers <= 1 {
		for i, t := range ts {
			dst[i] = db.Count(t)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (len(ts) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ts) {
			hi = len(ts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				dst[i] = db.Count(ts[i])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ScanCount counts rows containing T by horizontal scan, ignoring any
// column index. workers ≤ 1 scans serially; otherwise the row range is
// split across that many goroutines. Exposed so callers (and
// benchmarks) can pin the scan strategy; Count picks automatically,
// engaging the sharded scan only above parallelRowThreshold rows and
// when more than one CPU is available.
func (db *Database) ScanCount(t Itemset, workers int) int {
	if t.MaxAttr() >= db.d {
		panic(fmt.Sprintf("dataset: itemset %v exceeds %d columns", t, db.d))
	}
	if workers <= 1 || db.n == 0 {
		return db.scanSerial(t)
	}
	return db.scanParallel(t, workers)
}

// scanSerial is the single-goroutine scan, kept free of closures so
// the stack-allocated indicator never escapes: zero allocations for
// databases up to stackIndicatorWords·64 columns.
func (db *Database) scanSerial(t Itemset) int {
	var stackInd [stackIndicatorWords]uint64
	var ind []uint64
	if db.stride <= stackIndicatorWords {
		ind = stackInd[:db.stride]
	} else {
		ind = make([]uint64, db.stride)
	}
	t.indicatorWords(ind)
	return db.scanRange(ind, 0, db.n)
}

// scanParallel shards the scan across workers goroutines; the
// indicator is shared read-only by the shards (it escapes to the heap
// here, which is why the serial path lives in its own function).
func (db *Database) scanParallel(t Itemset, workers int) int {
	ind := make([]uint64, db.stride)
	t.indicatorWords(ind)
	if workers > db.n {
		workers = db.n
	}
	counts := make([]int, workers)
	var wg sync.WaitGroup
	chunk := (db.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > db.n {
			hi = db.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			counts[w] = db.scanRange(ind, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	c := 0
	for _, x := range counts {
		c += x
	}
	return c
}

// scanRange counts rows in [lo, hi) containing the indicator ind.
func (db *Database) scanRange(ind []uint64, lo, hi int) int {
	c := 0
	if db.stride == 1 {
		// Common narrow-database case (d ≤ 64): one word per row.
		t := ind[0]
		for _, w := range db.arena[lo:hi] {
			if t&^w == 0 {
				c++
			}
		}
		return c
	}
	s := db.stride
	for r := lo; r < hi; r++ {
		if bitvec.ContainsAllWords(db.arena[r*s:(r+1)*s], ind) {
			c++
		}
	}
	return c
}

// BuildColumnIndex materializes the vertical layout so subsequent Count
// calls intersect per-attribute bitmaps instead of scanning rows. The
// index is one contiguous column-major arena.
func (db *Database) BuildColumnIndex() {
	cs := wordsFor(db.n)
	db.colStride = cs
	db.colArena = make([]uint64, db.d*cs)
	for r := 0; r < db.n; r++ {
		rowBit := uint64(1) << (uint(r) & 63)
		rowWord := r >> 6
		for wi, w := range db.RowWords(r) {
			for w != 0 {
				a := wi*wordBits + bits.TrailingZeros64(w)
				db.colArena[a*cs+rowWord] |= rowBit
				w &= w - 1
			}
		}
	}
	db.cols = make([]bitvec.Vector, db.d)
	for a := 0; a < db.d; a++ {
		db.cols[a] = bitvec.Wrap(db.n, db.colArena[a*cs:(a+1)*cs:(a+1)*cs])
	}
}

// HasColumnIndex reports whether the vertical layout is materialized.
func (db *Database) HasColumnIndex() bool { return db.cols != nil }

// AttrColumn returns the row bitmap of attribute a from the column
// index, building the index if needed. The returned Vector is a view;
// callers must not mutate it.
func (db *Database) AttrColumn(a int) *bitvec.Vector {
	if db.cols == nil {
		db.BuildColumnIndex()
	}
	return &db.cols[a]
}

// ColumnCount returns the number of rows containing attribute a — the
// popcount of a's column bitmap, building the column index if needed.
// It is the per-column density statistic the adaptive miners use to
// pick tidset vs diffset representation at the root.
func (db *Database) ColumnCount(a int) int {
	if a < 0 || a >= db.d {
		panic(fmt.Sprintf("dataset: attribute %d out of range [0,%d)", a, db.d))
	}
	if db.cols == nil {
		db.BuildColumnIndex()
	}
	return bitvec.CountWords(db.colWords(a))
}

// colWords returns attribute a's row-bitmap words from the column
// index, which must be built.
func (db *Database) colWords(a int) []uint64 {
	lo := a * db.colStride
	hi := lo + db.colStride
	return db.colArena[lo:hi:hi]
}

// accPool recycles wide-itemset vertical accumulators so countVertical
// stays allocation-free in steady state regardless of itemset width.
var accPool = sync.Pool{New: func() any { return new([]uint64) }}

func (db *Database) countVertical(t Itemset) int {
	attrs := t.attrs
	switch len(attrs) {
	case 0:
		return db.n
	case 1:
		return bitvec.CountWords(db.colWords(attrs[0]))
	}
	if len(attrs) <= maxFusedCols {
		// Single fused pass over all k column bitmaps; the stack
		// array never escapes (AndCountAll does not retain it).
		var buf [maxFusedCols][]uint64
		cols := buf[:len(attrs)]
		for i, a := range attrs {
			cols[i] = db.colWords(a)
		}
		return bitvec.AndCountAll(cols)
	}
	// Wide itemsets: pooled accumulator with early exit. The
	// accumulation runs through the capped kernel with the previous
	// pass's count as the budget: an AND can only clear bits, so the
	// running popcount never exceeds the cap and AndIntoCapped always
	// completes with the exact count (equivalence vs the uncapped
	// kernels is pinned by TestCountVerticalWideEquivalence). Sharing
	// the miners' capped block loop keeps one code path riding the
	// dispatched SIMD kernels, and an empty intersection still stops
	// the column loop with no separate Count pass.
	ap := accPool.Get().(*[]uint64)
	acc := *ap
	if cap(acc) < db.colStride {
		acc = make([]uint64, db.colStride)
	}
	acc = acc[:db.colStride]
	cnt := bitvec.AndInto(acc, db.colWords(attrs[0]), db.colWords(attrs[1]))
	for _, a := range attrs[2:] {
		if cnt == 0 {
			break
		}
		cnt, _ = bitvec.AndIntoCapped(acc, acc, db.colWords(a), cnt)
	}
	*ap = acc
	accPool.Put(ap)
	return cnt
}

// Clone returns a deep copy of the database (without the column index).
// With the arena layout this is a single block copy.
func (db *Database) Clone() *Database {
	c := NewDatabase(db.d)
	c.n = db.n
	c.arena = append([]uint64(nil), db.arena...)
	c.maxWorkers = db.maxWorkers
	return c
}

// AppendDatabase appends all rows of other, which must have the same
// number of columns. Same-width databases share a stride, so this is a
// single arena block copy.
func (db *Database) AppendDatabase(other *Database) {
	if other.d != db.d {
		panic(fmt.Sprintf("dataset: column mismatch %d vs %d", other.d, db.d))
	}
	db.arena = append(db.arena, other.arena...)
	db.n += other.n
	db.invalidateIndex()
}

// SizeBits returns n·d, the verbatim size of the database in bits —
// exactly the space complexity of RELEASE-DB in the paper.
func (db *Database) SizeBits() int64 {
	return int64(db.n) * int64(db.d)
}

// MarshalBits writes the database to w: d and n as 32-bit counts
// followed by the n·d row bits.
func (db *Database) MarshalBits(w bitvec.BitWriter) {
	w.WriteUint(uint64(db.d), 32)
	w.WriteUint(uint64(db.n), 32)
	for i := 0; i < db.n; i++ {
		bitvec.WriteWords(w, db.RowWords(i), db.d)
	}
}

// UnmarshalBits reads a database written by MarshalBits.
func UnmarshalBits(r bitvec.BitReader) (*Database, error) {
	d, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	n, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	if d == 0 {
		return nil, errors.New("dataset: zero columns in encoded database")
	}
	db := NewDatabase(int(d))
	// Reserve for the declared row count, capped by what the stream can
	// actually hold so a corrupt header cannot trigger a huge allocation.
	if maxRows := uint64(r.Remaining()) / d; n <= maxRows {
		db.Reserve(int(n))
	}
	for i := uint64(0); i < n; i++ {
		if err := bitvec.ReadWords(r, db.grow(), int(d)); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// WriteTransactions writes the database in the standard transaction
// format used by frequent-itemset-mining tools: one row per line,
// space-separated attribute indices of the 1-entries.
func (db *Database) WriteTransactions(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var ones []int
	for i := 0; i < db.n; i++ {
		ones = db.AppendRowOnes(ones[:0], i)
		for j, a := range ones {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(a)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTransactions parses the transaction format into a database with d
// columns. Attribute indices must be in [0, d).
func ReadTransactions(r io.Reader, d int) (*Database, error) {
	db := NewDatabase(d)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		row := db.grow()
		if line != "" {
			for _, f := range strings.Fields(line) {
				a, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad attribute %q: %v", lineno, f, err)
				}
				if a < 0 || a >= d {
					return nil, fmt.Errorf("dataset: line %d: attribute %d out of range [0,%d)", lineno, a, d)
				}
				row[a>>6] |= 1 << (uint(a) & 63)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}
