// Package dataset implements the binary databases the paper sketches:
// D ∈ ({0,1}^d)^n with n rows and d attribute columns, itemsets
// T ⊆ [d], and itemset frequencies f_T(D) — the fraction of rows that
// contain T (a 1 in every column of T).
//
// Two query paths are provided. The horizontal path scans packed rows
// and tests containment word-parallel. The vertical path (ColumnIndex)
// intersects per-attribute row bitmaps, which is the classical "vertical
// database" layout from the frequent-itemset-mining literature and is
// much faster for small k over many rows.
package dataset

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitvec"
)

// Itemset is a set of attribute indices, stored strictly increasing.
// The zero value is the empty itemset.
type Itemset struct {
	attrs []int
}

// NewItemset builds an itemset from the given attributes. The input may
// be in any order; duplicates are rejected.
func NewItemset(attrs ...int) (Itemset, error) {
	s := append([]int(nil), attrs...)
	sort.Ints(s)
	for i, a := range s {
		if a < 0 {
			return Itemset{}, fmt.Errorf("dataset: negative attribute %d", a)
		}
		if i > 0 && s[i-1] == a {
			return Itemset{}, fmt.Errorf("dataset: duplicate attribute %d", a)
		}
	}
	return Itemset{attrs: s}, nil
}

// MustItemset is NewItemset that panics on error, for tests and
// constructions with known-valid inputs.
func MustItemset(attrs ...int) Itemset {
	t, err := NewItemset(attrs...)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of attributes (k for a k-itemset).
func (t Itemset) Len() int { return len(t.attrs) }

// Attrs returns the attributes in increasing order. Callers must not
// mutate the returned slice.
func (t Itemset) Attrs() []int { return t.attrs }

// MaxAttr returns the largest attribute index, or -1 for the empty set.
func (t Itemset) MaxAttr() int {
	if len(t.attrs) == 0 {
		return -1
	}
	return t.attrs[len(t.attrs)-1]
}

// Contains reports whether attribute a is in the itemset.
func (t Itemset) Contains(a int) bool {
	i := sort.SearchInts(t.attrs, a)
	return i < len(t.attrs) && t.attrs[i] == a
}

// Union returns the union of t and u.
func (t Itemset) Union(u Itemset) Itemset {
	merged := make([]int, 0, len(t.attrs)+len(u.attrs))
	i, j := 0, 0
	for i < len(t.attrs) && j < len(u.attrs) {
		switch {
		case t.attrs[i] < u.attrs[j]:
			merged = append(merged, t.attrs[i])
			i++
		case t.attrs[i] > u.attrs[j]:
			merged = append(merged, u.attrs[j])
			j++
		default:
			merged = append(merged, t.attrs[i])
			i++
			j++
		}
	}
	merged = append(merged, t.attrs[i:]...)
	merged = append(merged, u.attrs[j:]...)
	return Itemset{attrs: merged}
}

// Shift returns the itemset with every attribute increased by off.
func (t Itemset) Shift(off int) Itemset {
	s := make([]int, len(t.attrs))
	for i, a := range t.attrs {
		s[i] = a + off
	}
	return Itemset{attrs: s}
}

// Equal reports whether t and u contain the same attributes.
func (t Itemset) Equal(u Itemset) bool {
	if len(t.attrs) != len(u.attrs) {
		return false
	}
	for i := range t.attrs {
		if t.attrs[i] != u.attrs[i] {
			return false
		}
	}
	return true
}

// Indicator returns the d-length indicator bit vector of the itemset.
// All attributes must be < d.
func (t Itemset) Indicator(d int) *bitvec.Vector {
	v := bitvec.New(d)
	for _, a := range t.attrs {
		v.Set(a)
	}
	return v
}

// String renders the itemset as {a,b,c}.
func (t Itemset) String() string {
	parts := make([]string, len(t.attrs))
	for i, a := range t.attrs {
		parts[i] = strconv.Itoa(a)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Key returns a canonical map key for the itemset.
func (t Itemset) Key() string {
	return t.String()
}

// Database is a binary database with a fixed number of attribute
// columns and an append-only list of rows.
type Database struct {
	d    int
	rows []*bitvec.Vector
	// colIndex, if non-nil, is the vertical layout: colIndex[a] has bit
	// r set iff row r has attribute a. It is invalidated by AddRow.
	colIndex []*bitvec.Vector
}

// NewDatabase returns an empty database with d attribute columns.
func NewDatabase(d int) *Database {
	if d <= 0 {
		panic("dataset: database needs at least one column")
	}
	return &Database{d: d}
}

// NumCols returns d, the number of attributes.
func (db *Database) NumCols() int { return db.d }

// NumRows returns n, the number of rows.
func (db *Database) NumRows() int { return len(db.rows) }

// AddRow appends a row. The vector's length must equal NumCols. The
// database takes ownership of the vector.
func (db *Database) AddRow(row *bitvec.Vector) {
	if row.Len() != db.d {
		panic(fmt.Sprintf("dataset: row length %d != %d columns", row.Len(), db.d))
	}
	db.rows = append(db.rows, row)
	db.colIndex = nil
}

// AddRowAttrs appends a row containing exactly the given attributes.
func (db *Database) AddRowAttrs(attrs ...int) {
	db.AddRow(bitvec.FromIndices(db.d, attrs))
}

// Row returns row i. Callers must not mutate it.
func (db *Database) Row(i int) *bitvec.Vector { return db.rows[i] }

// RowContains reports whether row i contains itemset T.
func (db *Database) RowContains(i int, t Itemset) bool {
	return db.rows[i].ContainsAll(t.Indicator(db.d))
}

// Count returns the number of rows that contain T.
func (db *Database) Count(t Itemset) int {
	if t.MaxAttr() >= db.d {
		panic(fmt.Sprintf("dataset: itemset %v exceeds %d columns", t, db.d))
	}
	if db.colIndex != nil {
		return db.countVertical(t)
	}
	ind := t.Indicator(db.d)
	c := 0
	for _, r := range db.rows {
		if r.ContainsAll(ind) {
			c++
		}
	}
	return c
}

// Frequency returns f_T(D) = Count(T)/n. The frequency of any itemset
// on an empty database is 0.
func (db *Database) Frequency(t Itemset) float64 {
	if len(db.rows) == 0 {
		return 0
	}
	return float64(db.Count(t)) / float64(len(db.rows))
}

// BuildColumnIndex materializes the vertical layout so subsequent Count
// calls intersect per-attribute bitmaps instead of scanning rows.
func (db *Database) BuildColumnIndex() {
	n := len(db.rows)
	idx := make([]*bitvec.Vector, db.d)
	for a := 0; a < db.d; a++ {
		idx[a] = bitvec.New(n)
	}
	for r, row := range db.rows {
		for _, a := range row.Ones() {
			idx[a].Set(r)
		}
	}
	db.colIndex = idx
}

// HasColumnIndex reports whether the vertical layout is materialized.
func (db *Database) HasColumnIndex() bool { return db.colIndex != nil }

// AttrColumn returns the row bitmap of attribute a from the column
// index, building the index if needed. Callers must not mutate it.
func (db *Database) AttrColumn(a int) *bitvec.Vector {
	if db.colIndex == nil {
		db.BuildColumnIndex()
	}
	return db.colIndex[a]
}

func (db *Database) countVertical(t Itemset) int {
	attrs := t.Attrs()
	if len(attrs) == 0 {
		return len(db.rows)
	}
	acc := db.colIndex[attrs[0]].Clone()
	for _, a := range attrs[1:] {
		acc.And(db.colIndex[a])
		if acc.Count() == 0 {
			return 0
		}
	}
	return acc.Count()
}

// Clone returns a deep copy of the database (without the column index).
func (db *Database) Clone() *Database {
	c := NewDatabase(db.d)
	for _, r := range db.rows {
		c.rows = append(c.rows, r.Clone())
	}
	return c
}

// AppendDatabase appends all rows of other, which must have the same
// number of columns.
func (db *Database) AppendDatabase(other *Database) {
	if other.d != db.d {
		panic(fmt.Sprintf("dataset: column mismatch %d vs %d", other.d, db.d))
	}
	for _, r := range other.rows {
		db.AddRow(r.Clone())
	}
}

// SizeBits returns n·d, the verbatim size of the database in bits —
// exactly the space complexity of RELEASE-DB in the paper.
func (db *Database) SizeBits() int64 {
	return int64(len(db.rows)) * int64(db.d)
}

// MarshalBits writes the database to w: d and n as 32-bit counts
// followed by the n·d row bits.
func (db *Database) MarshalBits(w *bitvec.Writer) {
	w.WriteUint(uint64(db.d), 32)
	w.WriteUint(uint64(len(db.rows)), 32)
	for _, r := range db.rows {
		r.AppendTo(w)
	}
}

// UnmarshalBits reads a database written by MarshalBits.
func UnmarshalBits(r *bitvec.Reader) (*Database, error) {
	d, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	n, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	if d == 0 {
		return nil, errors.New("dataset: zero columns in encoded database")
	}
	db := NewDatabase(int(d))
	for i := uint64(0); i < n; i++ {
		row, err := bitvec.ReadVector(r, int(d))
		if err != nil {
			return nil, err
		}
		db.AddRow(row)
	}
	return db, nil
}

// WriteTransactions writes the database in the standard transaction
// format used by frequent-itemset-mining tools: one row per line,
// space-separated attribute indices of the 1-entries.
func (db *Database) WriteTransactions(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, row := range db.rows {
		ones := row.Ones()
		for i, a := range ones {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(a)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTransactions parses the transaction format into a database with d
// columns. Attribute indices must be in [0, d).
func ReadTransactions(r io.Reader, d int) (*Database, error) {
	db := NewDatabase(d)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		row := bitvec.New(d)
		if line != "" {
			for _, f := range strings.Fields(line) {
				a, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("dataset: line %d: bad attribute %q: %v", lineno, f, err)
				}
				if a < 0 || a >= d {
					return nil, fmt.Errorf("dataset: line %d: attribute %d out of range [0,%d)", lineno, a, d)
				}
				row.Set(a)
			}
		}
		db.AddRow(row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}
