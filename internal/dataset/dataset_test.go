package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

func TestItemsetBasics(t *testing.T) {
	s, err := NewItemset(3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Attrs(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Attrs = %v", got)
	}
	if !s.Contains(2) || s.Contains(4) {
		t.Fatal("Contains wrong")
	}
	if s.MaxAttr() != 3 {
		t.Fatalf("MaxAttr = %d", s.MaxAttr())
	}
	if s.String() != "{1,2,3}" {
		t.Fatalf("String = %s", s.String())
	}
	if _, err := NewItemset(1, 1); err == nil {
		t.Error("duplicate attributes should error")
	}
	if _, err := NewItemset(-1); err == nil {
		t.Error("negative attribute should error")
	}
	empty := Itemset{}
	if empty.MaxAttr() != -1 || empty.Len() != 0 {
		t.Error("empty itemset wrong")
	}
}

func TestItemsetUnionShift(t *testing.T) {
	a := MustItemset(1, 3)
	b := MustItemset(2, 3, 5)
	u := a.Union(b)
	if !u.Equal(MustItemset(1, 2, 3, 5)) {
		t.Fatalf("Union = %v", u)
	}
	sh := a.Shift(10)
	if !sh.Equal(MustItemset(11, 13)) {
		t.Fatalf("Shift = %v", sh)
	}
	if !a.Equal(MustItemset(3, 1)) {
		t.Fatal("Equal should be order-insensitive via construction")
	}
}

func TestItemsetIndicator(t *testing.T) {
	s := MustItemset(0, 4)
	v := s.Indicator(6)
	if v.String() != "100010" {
		t.Fatalf("Indicator = %s", v.String())
	}
}

func TestDatabaseFrequency(t *testing.T) {
	db := NewDatabase(4)
	db.AddRowAttrs(0, 1)
	db.AddRowAttrs(0, 1, 2)
	db.AddRowAttrs(2, 3)
	db.AddRowAttrs()

	cases := []struct {
		items Itemset
		want  float64
	}{
		{MustItemset(0), 0.5},
		{MustItemset(0, 1), 0.5},
		{MustItemset(0, 1, 2), 0.25},
		{MustItemset(3), 0.25},
		{MustItemset(0, 3), 0},
		{Itemset{}, 1.0}, // empty itemset contained in every row
	}
	for _, c := range cases {
		if got := db.Frequency(c.items); got != c.want {
			t.Errorf("Frequency(%v) = %g, want %g", c.items, got, c.want)
		}
	}

	// Vertical path must agree.
	db.BuildColumnIndex()
	if !db.HasColumnIndex() {
		t.Fatal("column index should be built")
	}
	for _, c := range cases {
		if got := db.Frequency(c.items); got != c.want {
			t.Errorf("vertical Frequency(%v) = %g, want %g", c.items, got, c.want)
		}
	}
}

func TestColumnIndexInvalidation(t *testing.T) {
	db := NewDatabase(3)
	db.AddRowAttrs(0)
	db.BuildColumnIndex()
	db.AddRowAttrs(0, 1)
	if db.HasColumnIndex() {
		t.Fatal("AddRow must invalidate the column index")
	}
	if got := db.Count(MustItemset(0)); got != 2 {
		t.Fatalf("Count after invalidation = %d, want 2", got)
	}
}

func TestHorizontalVerticalAgreeRandom(t *testing.T) {
	r := rng.New(2024)
	db := GenUniform(r, 200, 16, 0.3)
	vert := db.Clone()
	vert.BuildColumnIndex()
	for trial := 0; trial < 100; trial++ {
		k := 1 + r.Intn(3)
		attrs := r.Sample(16, k)
		T := MustItemset(attrs...)
		if db.Count(T) != vert.Count(T) {
			t.Fatalf("horizontal %d != vertical %d for %v", db.Count(T), vert.Count(T), T)
		}
	}
}

// TestCountVerticalWideEquivalence pins the wide-itemset vertical
// path (> maxFusedCols attributes, routed through AndIntoCapped with
// the running count as budget) against both the uncapped AndInto fold
// it replaced and the horizontal scan. The cap equals the previous
// intersection's popcount, which an AND can never exceed, so the
// capped path must be exact — not an approximation.
func TestCountVerticalWideEquivalence(t *testing.T) {
	r := rng.New(77)
	const d = 24
	// High density keeps deep intersections nonempty so the loop runs
	// past the early-exit for most trials; a second sparse database
	// exercises the cnt==0 break.
	for _, density := range []float64{0.9, 0.25} {
		db := GenUniform(r, 300, d, density)
		vert := db.Clone()
		vert.BuildColumnIndex()
		for trial := 0; trial < 200; trial++ {
			k := maxFusedCols + 1 + r.Intn(d-maxFusedCols-1)
			T := MustItemset(r.Sample(d, k)...)

			got := vert.Count(T)
			if want := db.Count(T); got != want {
				t.Fatalf("density %.2f: vertical %d != horizontal %d for %v", density, got, want, T)
			}
			// Uncapped reference fold over the same column bitmaps.
			attrs := T.Attrs()
			acc := make([]uint64, vert.colStride)
			ref := bitvec.AndInto(acc, vert.colWords(attrs[0]), vert.colWords(attrs[1]))
			for _, a := range attrs[2:] {
				ref = bitvec.AndInto(acc, acc, vert.colWords(a))
			}
			if got != ref {
				t.Fatalf("density %.2f: capped vertical %d != uncapped fold %d for %v", density, got, ref, T)
			}
		}
	}
}

func TestEmptyDatabase(t *testing.T) {
	db := NewDatabase(5)
	if db.Frequency(MustItemset(1)) != 0 {
		t.Error("empty database frequency should be 0")
	}
	if db.SizeBits() != 0 {
		t.Error("empty database size should be 0")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := rng.New(5)
	db := GenUniform(r, 37, 13, 0.4)
	var w bitvec.Writer
	db.MarshalBits(&w)
	if w.BitLen() != 64+37*13 {
		t.Fatalf("encoded size = %d bits, want %d", w.BitLen(), 64+37*13)
	}
	got, err := UnmarshalBits(bitvec.NewReader(w.Bytes(), w.BitLen()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 37 || got.NumCols() != 13 {
		t.Fatalf("shape = %dx%d", got.NumRows(), got.NumCols())
	}
	for i := 0; i < 37; i++ {
		if !got.Row(i).Equal(db.Row(i)) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	// Truncated stream.
	var w bitvec.Writer
	w.WriteUint(8, 32)
	w.WriteUint(100, 32)
	w.WriteUint(0, 8) // only one byte of row data
	if _, err := UnmarshalBits(bitvec.NewReader(w.Bytes(), w.BitLen())); err == nil {
		t.Error("truncated database should fail to unmarshal")
	}
	// Zero columns.
	var w2 bitvec.Writer
	w2.WriteUint(0, 32)
	w2.WriteUint(0, 32)
	if _, err := UnmarshalBits(bitvec.NewReader(w2.Bytes(), w2.BitLen())); err == nil {
		t.Error("zero-column database should fail to unmarshal")
	}
}

func TestTransactionsRoundTrip(t *testing.T) {
	db := NewDatabase(6)
	db.AddRowAttrs(0, 2, 5)
	db.AddRowAttrs()
	db.AddRowAttrs(1)

	var buf bytes.Buffer
	if err := db.WriteTransactions(&buf); err != nil {
		t.Fatal(err)
	}
	want := "0 2 5\n\n1\n"
	if buf.String() != want {
		t.Fatalf("transactions = %q, want %q", buf.String(), want)
	}
	got, err := ReadTransactions(strings.NewReader(buf.String()), 6)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	for i := 0; i < 3; i++ {
		if !got.Row(i).Equal(db.Row(i)) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestReadTransactionsErrors(t *testing.T) {
	if _, err := ReadTransactions(strings.NewReader("0 x\n"), 4); err == nil {
		t.Error("non-numeric attribute should error")
	}
	if _, err := ReadTransactions(strings.NewReader("7\n"), 4); err == nil {
		t.Error("out-of-range attribute should error")
	}
}

func TestAppendDatabase(t *testing.T) {
	a := NewDatabase(3)
	a.AddRowAttrs(0)
	b := NewDatabase(3)
	b.AddRowAttrs(1)
	b.AddRowAttrs(2)
	a.AppendDatabase(b)
	if a.NumRows() != 3 {
		t.Fatalf("rows = %d", a.NumRows())
	}
	if a.Count(MustItemset(2)) != 1 {
		t.Fatal("appended row missing")
	}
}

func TestGenUniformDensity(t *testing.T) {
	r := rng.New(8)
	db := GenUniform(r, 2000, 32, 0.25)
	ones := 0
	for i := 0; i < db.NumRows(); i++ {
		ones += db.Row(i).Count()
	}
	density := float64(ones) / float64(2000*32)
	if math.Abs(density-0.25) > 0.01 {
		t.Errorf("density = %g, want ~0.25", density)
	}
}

func TestGenPlanted(t *testing.T) {
	r := rng.New(9)
	target := MustItemset(3, 7, 11)
	db := GenPlanted(r, 5000, 32, 0.05, []Plant{{Items: target, Freq: 0.3}})
	f := db.Frequency(target)
	if f < 0.25 || f > 0.40 {
		t.Errorf("planted frequency = %g, want ≈0.3", f)
	}
	// A random disjoint triple should be rare under p=0.05.
	other := MustItemset(0, 1, 2)
	if db.Frequency(other) > 0.05 {
		t.Errorf("background triple frequency = %g, too high", db.Frequency(other))
	}
}

func TestGenMarketBasket(t *testing.T) {
	r := rng.New(10)
	bundle := []int{5, 6, 7}
	db := GenMarketBasket(r, 3000, 64, BasketConfig{
		MeanSize:     4,
		ZipfExponent: 1.2,
		Bundles:      [][]int{bundle},
		BundleProb:   0.25,
	})
	if db.NumRows() != 3000 {
		t.Fatalf("rows = %d", db.NumRows())
	}
	fBundle := db.Frequency(MustItemset(bundle...))
	if fBundle < 0.15 {
		t.Errorf("bundle frequency = %g, want >= 0.15", fBundle)
	}
	// Popular head item should beat a tail item.
	if db.Frequency(MustItemset(0)) <= db.Frequency(MustItemset(60)) {
		t.Error("Zipf head should dominate tail")
	}
}

// Property: frequency is monotone non-increasing under itemset growth
// (the anti-monotonicity that Apriori exploits).
func TestQuickAntiMonotone(t *testing.T) {
	r := rng.New(31)
	db := GenUniform(r, 100, 12, 0.5)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		k := 1 + rr.Intn(3)
		attrs := rr.Sample(12, k)
		sub := MustItemset(attrs[:k-1+0]...)
		super := MustItemset(attrs...)
		_ = sub
		// compare T against T ∪ {extra}
		return db.Frequency(super) <= db.Frequency(MustItemset(attrs[:max(1, k-1)]...))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func BenchmarkCountHorizontal(b *testing.B) {
	r := rng.New(1)
	db := GenUniform(r, 10000, 64, 0.3)
	T := MustItemset(3, 17, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Count(T)
	}
}

func BenchmarkCountVertical(b *testing.B) {
	r := rng.New(1)
	db := GenUniform(r, 10000, 64, 0.3)
	db.BuildColumnIndex()
	T := MustItemset(3, 17, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.Count(T)
	}
}
