package dataset

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// GenUniform returns an n×d database where each bit is 1 independently
// with probability p. This is the "unstructured" workload: all itemset
// frequencies concentrate near p^k.
func GenUniform(r *rng.RNG, n, d int, p float64) *Database {
	db := NewDatabase(d)
	for i := 0; i < n; i++ {
		row := bitvec.New(d)
		for j := 0; j < d; j++ {
			if r.Bernoulli(p) {
				row.Set(j)
			}
		}
		db.AddRow(row)
	}
	return db
}

// Plant describes an itemset planted into a generated database at a
// target frequency.
type Plant struct {
	Items Itemset
	Freq  float64
}

// GenPlanted returns an n×d database with background bit density p and
// the given itemsets planted: for each plant, an independent
// Freq-fraction of rows receives all of the plant's attributes. Planted
// itemsets therefore have frequency at least Freq (up to sampling noise)
// while random k-itemsets stay near p^k.
func GenPlanted(r *rng.RNG, n, d int, p float64, plants []Plant) *Database {
	db := GenUniform(r, n, d, p)
	for _, pl := range plants {
		if pl.Items.MaxAttr() >= d {
			panic(fmt.Sprintf("dataset: plant %v exceeds %d columns", pl.Items, d))
		}
		for i := 0; i < n; i++ {
			if r.Bernoulli(pl.Freq) {
				row := db.RowWords(i)
				for _, a := range pl.Items.Attrs() {
					row[a>>6] |= 1 << (uint(a) & 63)
				}
			}
		}
	}
	db.invalidateIndex()
	return db
}

// BasketConfig parameterizes the synthetic market-basket generator.
type BasketConfig struct {
	// MeanSize is the average basket size (number of items per row).
	MeanSize int
	// ZipfExponent skews item popularity; larger means heavier head.
	ZipfExponent float64
	// Bundles are groups of items that co-occur: with probability
	// BundleProb a row includes an entire randomly chosen bundle.
	Bundles    [][]int
	BundleProb float64
}

// GenMarketBasket synthesizes shopping-cart style data in the spirit of
// the market-basket workloads that motivated frequent-itemset mining
// (Agrawal et al., cited in §1.1.1): item popularity is Zipfian and
// bundles of items co-occur. Rows are sparse.
func GenMarketBasket(r *rng.RNG, n, d int, cfg BasketConfig) *Database {
	if cfg.MeanSize <= 0 {
		cfg.MeanSize = 4
	}
	if cfg.ZipfExponent <= 0 {
		cfg.ZipfExponent = 1.1
	}
	z := rng.NewZipf(r, d, cfg.ZipfExponent)
	db := NewDatabase(d)
	for i := 0; i < n; i++ {
		row := bitvec.New(d)
		// Basket size ~ 1 + Binomial-ish around MeanSize.
		size := 1 + r.Intn(2*cfg.MeanSize-1)
		for j := 0; j < size; j++ {
			row.Set(z.Next())
		}
		if len(cfg.Bundles) > 0 && r.Bernoulli(cfg.BundleProb) {
			b := cfg.Bundles[r.Intn(len(cfg.Bundles))]
			for _, a := range b {
				row.Set(a)
			}
		}
		db.AddRow(row)
	}
	return db
}

// GenFromRows builds a database from explicit row vectors (deep-copied).
func GenFromRows(d int, rows []*bitvec.Vector) *Database {
	db := NewDatabase(d)
	db.Reserve(len(rows))
	for _, r := range rows {
		db.AddRow(r)
	}
	return db
}
