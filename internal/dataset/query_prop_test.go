package dataset

import (
	"testing"

	"repro/internal/rng"
)

// naiveCount is the reference implementation every query path must
// agree with: a per-bit scan using only Row/Get semantics.
func naiveCount(db *Database, t Itemset) int {
	c := 0
	for i := 0; i < db.NumRows(); i++ {
		row := db.Row(i)
		ok := true
		for _, a := range t.Attrs() {
			if !row.Get(a) {
				ok = false
				break
			}
		}
		if ok {
			c++
		}
	}
	return c
}

func randomItemset(r *rng.RNG, d, maxK int) Itemset {
	// Only d distinct attributes exist; without this cap the collection
	// loop below would never terminate for k > d (the fuzzer found this
	// with d=9, maxK=10 — kept as corpus entry 5a6614a1854e4619).
	if maxK > d {
		maxK = d
	}
	k := r.Intn(maxK + 1) // 0 allowed: empty itemset edge case
	seen := map[int]bool{}
	var attrs []int
	for len(attrs) < k {
		a := r.Intn(d)
		if !seen[a] {
			seen[a] = true
			attrs = append(attrs, a)
		}
	}
	return MustItemset(attrs...)
}

// checkAllPathsAgree asserts the horizontal serial scan, the sharded
// parallel scan, the fused vertical path, and CountMany all equal the
// naive reference count for every itemset in ts.
func checkAllPathsAgree(t *testing.T, db *Database, ts []Itemset) {
	t.Helper()
	want := make([]int, len(ts))
	for i, T := range ts {
		want[i] = naiveCount(db, T)
	}
	for i, T := range ts {
		if got := db.ScanCount(T, 1); got != want[i] {
			t.Errorf("serial scan %v = %d, want %d (n=%d d=%d)", T, got, want[i], db.NumRows(), db.NumCols())
		}
		if got := db.ScanCount(T, 8); got != want[i] {
			t.Errorf("parallel scan %v = %d, want %d (n=%d d=%d)", T, got, want[i], db.NumRows(), db.NumCols())
		}
	}
	// Horizontal auto path (no index yet).
	if db.HasColumnIndex() {
		t.Fatalf("column index unexpectedly present before vertical phase")
	}
	for i, T := range ts {
		if got := db.Count(T); got != want[i] {
			t.Errorf("auto horizontal Count %v = %d, want %d", T, got, want[i])
		}
	}
	// Vertical fused path.
	db.BuildColumnIndex()
	for i, T := range ts {
		if got := db.Count(T); got != want[i] {
			t.Errorf("vertical Count %v = %d, want %d (n=%d d=%d)", T, got, want[i], db.NumRows(), db.NumCols())
		}
	}
	// Batch path on the vertical index.
	got := db.CountMany(ts)
	for i := range ts {
		if got[i] != want[i] {
			t.Errorf("CountMany[%d] %v = %d, want %d", i, ts[i], got[i], want[i])
		}
	}
}

// TestQueryPathsAgreeProperty cross-checks every query path on random
// databases, deliberately covering widths that are not multiples of 64
// (sub-word, word-boundary, and multi-word strides) and itemsets wider
// than the fused-kernel cap (so the pooled accumulator path runs).
func TestQueryPathsAgreeProperty(t *testing.T) {
	r := rng.New(7)
	dims := []struct{ n, d int }{
		{0, 5},   // empty database
		{1, 1},   // minimal
		{17, 63}, // just under a word
		{33, 64}, // exactly a word
		{40, 65}, // just over a word
		{100, 100},
		{257, 130}, // multi-word stride
		{1000, 40},
	}
	for _, dim := range dims {
		for trial := 0; trial < 3; trial++ {
			db := GenUniform(r, dim.n, dim.d, 0.3)
			var ts []Itemset
			ts = append(ts, MustItemset()) // empty itemset: count == n
			maxK := dim.d
			if maxK > maxFusedCols+3 {
				maxK = maxFusedCols + 3 // exercise the wide pooled path
			}
			for q := 0; q < 12; q++ {
				ts = append(ts, randomItemset(r, dim.d, maxK))
			}
			checkAllPathsAgree(t, db, ts)
		}
	}
}

// TestQueryPathsAgreeAfterMutation checks that SetRow-style mutations
// invalidate the vertical index and all paths agree afterwards.
func TestQueryPathsAgreeAfterMutation(t *testing.T) {
	r := rng.New(11)
	db := GenUniform(r, 64, 70, 0.4)
	db.BuildColumnIndex()
	if !db.HasColumnIndex() {
		t.Fatal("index not built")
	}
	db.SetRowAttrs(3, 0, 7, 69)
	if db.HasColumnIndex() {
		t.Fatal("SetRowAttrs did not invalidate the column index")
	}
	T := MustItemset(0, 7, 69)
	if got, want := db.Count(T), naiveCount(db, T); got != want {
		t.Fatalf("Count after mutation = %d, want %d", got, want)
	}
}

// TestCountManyMatchesCount checks the batch API against single
// queries on both the horizontal and vertical paths.
func TestCountManyMatchesCount(t *testing.T) {
	r := rng.New(13)
	db := GenUniform(r, 500, 48, 0.2)
	var ts []Itemset
	for q := 0; q < 40; q++ {
		ts = append(ts, randomItemset(r, 48, 4))
	}
	horiz := db.CountMany(ts)
	db.BuildColumnIndex()
	vert := db.CountMany(ts)
	for i, T := range ts {
		want := naiveCount(db, T)
		if horiz[i] != want || vert[i] != want {
			t.Errorf("CountMany %v: horizontal %d vertical %d want %d", T, horiz[i], vert[i], want)
		}
	}
}

// FuzzCountPaths fuzzes database shape and contents, asserting path
// agreement on a handful of derived itemsets.
func FuzzCountPaths(f *testing.F) {
	f.Add(uint64(1), 10, 10)
	f.Add(uint64(2), 0, 65)
	f.Add(uint64(3), 100, 63)
	f.Add(uint64(4), 7, 129)
	f.Fuzz(func(t *testing.T, seed uint64, n, d int) {
		if n < 0 || n > 300 || d < 1 || d > 200 {
			t.Skip()
		}
		r := rng.New(seed)
		db := GenUniform(r, n, d, 0.25)
		var ts []Itemset
		ts = append(ts, MustItemset())
		for q := 0; q < 6; q++ {
			ts = append(ts, randomItemset(r, d, 10))
		}
		want := make([]int, len(ts))
		for i, T := range ts {
			want[i] = naiveCount(db, T)
		}
		for i, T := range ts {
			if got := db.ScanCount(T, 4); got != want[i] {
				t.Fatalf("scan %v = %d, want %d", T, got, want[i])
			}
		}
		db.BuildColumnIndex()
		for i, T := range ts {
			if got := db.Count(T); got != want[i] {
				t.Fatalf("vertical %v = %d, want %d", T, got, want[i])
			}
		}
	})
}
