package stream

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dataset"
)

// Sliding-window variants of the streaming summaries: the "last N
// events from millions of users" shape. A WindowedReservoir chains
// per-sub-window reservoirs so the sample always covers (roughly) the
// trailing window of rows; DecayedMisraGries (decay.go) applies
// exponential count decay on the same epoch ticks. Both are full
// envelope citizens via the sketch-kind registry: kinds 7 and 8, with
// codecs, Querier adapters and merge laws.

// WindowedKindTag is the windowed-reservoir wire kind byte / payload
// type tag, registered with the core sketch-kind registry at init.
const WindowedKindTag uint8 = 7

// WindowedKindName is the windowed-reservoir registered wire name.
const WindowedKindName = "windowed-reservoir"

func init() {
	core.RegisterKind(core.KindSpec{
		Kind:    WindowedKindTag,
		Name:    WindowedKindName,
		Decode:  unmarshalWindowed,
		Matches: func(s core.Sketch) bool { return s.Name() == WindowedKindName },
		Merge:   mergeWindowedKind,
	})
}

// Wire payload of the windowed-reservoir kind (tag 7), after the
// leading KindTagBits type tag:
//
//	params      core.MarshalParams header
//	d           32 bits
//	bucketRows  32 bits (rows per sub-window)
//	buckets     16 bits (maximum chain length B)
//	capacity    32 bits (per-bucket reservoir capacity)
//	seed        64 bits
//	epoch       64 bits (index of the newest bucket = rotations so far)
//	live        16 bits (buckets currently in the chain, ≤ B)
//	live ×:     seen 64 bits, then the bucket sample
//	            (dataset.MarshalBits: d 32, n 32, n·d row bits)
//
// Like RestoreReservoir, the encoding carries no generator state: a
// decoded window draws fresh (deterministically derived) coins for the
// rows still to come, which preserves Algorithm R's per-bucket
// uniformity guarantee. Decode → re-encode is byte-identical because
// nothing but samples and counters is serialized.
const (
	windowedDimBits    = 32
	windowedBucketBits = 16
	windowedFixedBits  = windowedDimBits + // d
		windowedDimBits + // bucketRows
		windowedBucketBits + // buckets
		windowedDimBits + // capacity
		64 + 64 + // seed, epoch
		windowedBucketBits // live
	maxWindowBuckets = 1<<windowedBucketBits - 1
)

// WindowedReservoir approximates a uniform sample of the trailing
// window of W rows by chaining B reservoirs, one per W/B-row
// sub-window (the standard sub-window decomposition of sliding-window
// sampling). When the newest sub-window fills, the chain rotates: a
// fresh bucket starts and the bucket older than the window is dropped,
// so at any moment the chain covers between W·(B-1)/B and W of the
// most recent rows. Estimates are the seen-weighted average of the
// per-bucket sample frequencies — the expectation of querying a merge
// of the bucket samples.
//
// Rotation boundaries are the family's epoch ticks: the service drives
// DecayedMisraGries decay off the rotations AddAttrs reports.
type WindowedReservoir struct {
	params     core.Params
	d          int
	bucketRows int
	buckets    int
	capacity   int
	seed       uint64
	epoch      int64
	// ring holds the live buckets oldest→newest over the contiguous
	// epoch range [epoch-len(ring)+1, epoch].
	ring []*Reservoir
}

// NewWindowedReservoir creates a windowed sampler over d-attribute
// rows: a trailing window of windowRows rows split into buckets
// sub-windows, each holding a reservoir of up to capacity rows.
// windowRows must divide evenly into buckets. p is the (k, ε, δ)
// contract recorded on the sketch (its K bounds the itemsets queried).
func NewWindowedReservoir(d, windowRows, buckets, capacity int, seed uint64, p core.Params) (*WindowedReservoir, error) {
	if d < 1 {
		return nil, fmt.Errorf("%w: windowed reservoir needs d ≥ 1, got %d", core.ErrInvalidParams, d)
	}
	if buckets < 1 || buckets > maxWindowBuckets {
		return nil, fmt.Errorf("%w: windowed reservoir needs 1 ≤ buckets ≤ %d, got %d", core.ErrInvalidParams, maxWindowBuckets, buckets)
	}
	if windowRows < buckets || windowRows%buckets != 0 {
		return nil, fmt.Errorf("%w: window of %d rows does not split into %d equal sub-windows", core.ErrInvalidParams, windowRows, buckets)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("%w: windowed reservoir needs capacity ≥ 1, got %d", core.ErrInvalidParams, capacity)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.K > d {
		return nil, fmt.Errorf("%w: params k = %d exceeds d = %d", core.ErrInvalidParams, p.K, d)
	}
	w := &WindowedReservoir{
		params:     p,
		d:          d,
		bucketRows: windowRows / buckets,
		buckets:    buckets,
		capacity:   capacity,
		seed:       seed,
	}
	first, err := NewReservoir(d, capacity, w.bucketSeed(0))
	if err != nil {
		return nil, err
	}
	w.ring = []*Reservoir{first}
	return w, nil
}

// bucketSeed derives the reservoir seed for the bucket opened at a
// rotation index — a pure function of (seed, epoch), so decode needs
// no generator state to name future buckets.
func (w *WindowedReservoir) bucketSeed(epoch int64) uint64 {
	return mix64(w.seed, uint64(epoch)+1)
}

// mix64 hashes its words into one seed (splitmix64-style finalization
// over a running state). It is the deterministic seed-derivation used
// for bucket seeds, restore coins and merge coins.
func mix64(vs ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + h<<6 + h>>2
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// AddAttrs offers one row (as attribute indices) to the window. It
// reports whether the chain rotated to a new sub-window before
// accepting this row — the epoch tick a paired decayed summary should
// observe.
func (w *WindowedReservoir) AddAttrs(attrs ...int) (rotated bool) {
	newest := w.ring[len(w.ring)-1]
	if newest.Seen() >= int64(w.bucketRows) {
		w.rotate()
		rotated = true
	}
	w.ring[len(w.ring)-1].AddAttrs(attrs...)
	return rotated
}

// rotate opens the next sub-window's bucket and drops the bucket that
// just left the trailing window.
func (w *WindowedReservoir) rotate() {
	w.epoch++
	next, err := NewReservoir(w.d, w.capacity, w.bucketSeed(w.epoch))
	if err != nil {
		// Geometry was validated at construction; this cannot fail.
		panic(fmt.Sprintf("stream: windowed rotation: %v", err))
	}
	w.ring = append(w.ring, next)
	if len(w.ring) > w.buckets {
		copy(w.ring, w.ring[1:])
		w.ring[len(w.ring)-1] = nil
		w.ring = w.ring[:len(w.ring)-1]
	}
}

// WindowRows returns the configured window length W in rows.
func (w *WindowedReservoir) WindowRows() int { return w.bucketRows * w.buckets }

// Buckets returns the sub-window count B.
func (w *WindowedReservoir) Buckets() int { return w.buckets }

// BucketRows returns the rows per sub-window, W/B.
func (w *WindowedReservoir) BucketRows() int { return w.bucketRows }

// Capacity returns the per-bucket reservoir capacity.
func (w *WindowedReservoir) Capacity() int { return w.capacity }

// Seed returns the root seed bucket seeds derive from.
func (w *WindowedReservoir) Seed() uint64 { return w.seed }

// Epoch returns the rotation count — the index of the newest bucket.
func (w *WindowedReservoir) Epoch() int64 { return w.epoch }

// WindowSeen returns the number of rows currently covered by the
// window (the seen totals of the live buckets).
func (w *WindowedReservoir) WindowSeen() int64 {
	var total int64
	for _, b := range w.ring {
		total += b.Seen()
	}
	return total
}

// Clone returns an independent deep copy, the freeze half of the
// service's clone-and-publish snapshot discipline.
func (w *WindowedReservoir) Clone() *WindowedReservoir {
	c := *w
	c.ring = make([]*Reservoir, len(w.ring))
	for i, b := range w.ring {
		c.ring[i] = b.Clone()
	}
	return &c
}

// Name implements core.Sketch with the registered wire name.
func (w *WindowedReservoir) Name() string { return WindowedKindName }

// Params returns the recorded (k, ε, δ) contract.
func (w *WindowedReservoir) Params() core.Params { return w.params }

// NumAttrs returns the attribute universe size d.
func (w *WindowedReservoir) NumAttrs() int { return w.d }

// Estimate returns the windowed frequency estimate of T: the
// seen-weighted average of the bucket sample frequencies, which is the
// expectation of the merged-bucket sample frequency over the trailing
// window.
func (w *WindowedReservoir) Estimate(t dataset.Itemset) float64 {
	var num, den float64
	for _, b := range w.ring {
		if s := b.Seen(); s > 0 {
			num += float64(s) * b.Estimate(t)
			den += float64(s)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// Frequent thresholds the windowed estimate at 3ε/4, mirroring the
// estimate-backed indicators of the core package.
func (w *WindowedReservoir) Frequent(t dataset.Itemset) bool {
	return w.Estimate(t) >= 0.75*w.params.Eps
}

// SizeBits returns the exact serialized size in bits — an analytic
// formula (no counting pass): every field below the type tag has fixed
// width except the bucket samples, whose size is n·d plus the 64-bit
// dataset header.
func (w *WindowedReservoir) SizeBits() int64 {
	total := int64(core.KindTagBits) + int64(core.ParamsBits) + windowedFixedBits
	for _, b := range w.ring {
		total += 64 + // seen
			64 + // dataset d+n header
			b.sample.SizeBits()
	}
	return total
}

// MarshalBits appends the self-describing encoding: the registry type
// tag, then the payload documented above.
func (w *WindowedReservoir) MarshalBits(bw bitvec.BitWriter) {
	bw.WriteUint(uint64(WindowedKindTag), core.KindTagBits)
	core.MarshalParams(bw, w.params)
	bw.WriteUint(uint64(w.d), windowedDimBits)
	bw.WriteUint(uint64(w.bucketRows), windowedDimBits)
	bw.WriteUint(uint64(w.buckets), windowedBucketBits)
	bw.WriteUint(uint64(w.capacity), windowedDimBits)
	bw.WriteUint(w.seed, 64)
	bw.WriteUint(uint64(w.epoch), 64)
	bw.WriteUint(uint64(len(w.ring)), windowedBucketBits)
	for _, b := range w.ring {
		bw.WriteUint(uint64(b.Seen()), 64)
		b.sample.MarshalBits(bw)
	}
}

// unmarshalWindowed is the registered decoder: it reads the payload
// body that follows the type tag and re-validates every invariant, so
// a hostile stream cannot smuggle in an impossible window. The
// restored buckets draw fresh coins from a deterministic derivation of
// the encoded state (see RestoreReservoir for why that preserves the
// uniformity guarantee).
func unmarshalWindowed(r bitvec.BitReader) (core.Sketch, error) {
	p, err := core.UnmarshalParams(r)
	if err != nil {
		return nil, err
	}
	d, err := r.ReadUint(windowedDimBits)
	if err != nil {
		return nil, err
	}
	bucketRows, err := r.ReadUint(windowedDimBits)
	if err != nil {
		return nil, err
	}
	buckets, err := r.ReadUint(windowedBucketBits)
	if err != nil {
		return nil, err
	}
	capacity, err := r.ReadUint(windowedDimBits)
	if err != nil {
		return nil, err
	}
	seed, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	epoch, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	live, err := r.ReadUint(windowedBucketBits)
	if err != nil {
		return nil, err
	}
	if d < 1 || bucketRows < 1 || buckets < 1 || capacity < 1 {
		return nil, fmt.Errorf("windowed geometry d=%d bucketRows=%d buckets=%d capacity=%d has a zero field", d, bucketRows, buckets, capacity)
	}
	if epoch > 1<<62 {
		return nil, fmt.Errorf("windowed epoch %d is implausible", epoch)
	}
	if live > buckets {
		return nil, fmt.Errorf("windowed chain of %d buckets exceeds the %d-bucket window", live, buckets)
	}
	if live == 0 || live > epoch+1 {
		return nil, fmt.Errorf("windowed chain of %d buckets cannot end at epoch %d", live, epoch)
	}
	if int(p.K) > int(d) {
		return nil, fmt.Errorf("windowed params k = %d exceeds d = %d", p.K, d)
	}
	windowRows := int(bucketRows) * int(buckets)
	if windowRows/int(buckets) != int(bucketRows) {
		return nil, fmt.Errorf("windowed geometry %d×%d overflows", bucketRows, buckets)
	}
	w := &WindowedReservoir{
		params:     p,
		d:          int(d),
		bucketRows: int(bucketRows),
		buckets:    int(buckets),
		capacity:   int(capacity),
		seed:       seed,
		epoch:      int64(epoch),
	}
	first := w.epoch - int64(live) + 1
	for i := int64(0); i < int64(live); i++ {
		seen, err := r.ReadUint(64)
		if err != nil {
			return nil, err
		}
		sample, err := dataset.UnmarshalBits(r)
		if err != nil {
			return nil, err
		}
		if sample.NumCols() != int(d) {
			return nil, fmt.Errorf("bucket %d sample has %d attributes, window has %d", i, sample.NumCols(), d)
		}
		if sample.NumRows() > int(capacity) {
			return nil, fmt.Errorf("bucket %d sample holds %d rows, capacity is %d", i, sample.NumRows(), capacity)
		}
		if seen > 1<<62 || int64(seen) < int64(sample.NumRows()) {
			return nil, fmt.Errorf("bucket %d seen counter %d below its %d sample rows", i, seen, sample.NumRows())
		}
		bucketEpoch := first + i
		res, err := RestoreReservoir(sample, int(capacity), int64(seen),
			mix64(w.bucketSeed(bucketEpoch), seen, uint64(windowedRestoreSalt)))
		if err != nil {
			return nil, err
		}
		w.ring = append(w.ring, res)
	}
	return w, nil
}

// windowedRestoreSalt separates restore-coin derivation from the
// bucket-seed derivation, so a restored bucket never replays the coins
// the original already consumed.
const windowedRestoreSalt = 0x77696e646f77 // "window"

// MergeWindowed combines two windowed reservoirs over disjoint row
// streams whose rotations advance in (approximate) lockstep — the
// service's sharded-ingest shape, where round-robin routing keeps
// shard epochs within one rotation of each other. Buckets are aligned
// by epoch index and merged pairwise with Merge; an epoch present in
// only one input is cloned, and an epoch in neither (inputs that
// drifted apart) becomes an empty bucket. The result covers the
// trailing window ending at the later input's epoch and estimates the
// union stream; both inputs must share geometry and params and are not
// modified.
func MergeWindowed(a, b *WindowedReservoir, seed uint64) (*WindowedReservoir, error) {
	if a.d != b.d || a.bucketRows != b.bucketRows || a.buckets != b.buckets || a.capacity != b.capacity {
		return nil, fmt.Errorf("%w: windowed merge geometry mismatch (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			core.ErrInvalidParams,
			a.d, a.bucketRows, a.buckets, a.capacity,
			b.d, b.bucketRows, b.buckets, b.capacity)
	}
	if a.params != b.params {
		return nil, fmt.Errorf("%w: windowed merge params mismatch", core.ErrInvalidParams)
	}
	out := &WindowedReservoir{
		params:     a.params,
		d:          a.d,
		bucketRows: a.bucketRows,
		buckets:    a.buckets,
		capacity:   a.capacity,
		seed:       seed,
		epoch:      a.epoch,
	}
	if b.epoch > out.epoch {
		out.epoch = b.epoch
	}
	first := out.epoch - int64(out.buckets) + 1
	if first < 0 {
		first = 0
	}
	for e := first; e <= out.epoch; e++ {
		ab, bb := a.bucketAt(e), b.bucketAt(e)
		var (
			m   *Reservoir
			err error
		)
		switch {
		case ab != nil && bb != nil:
			m, err = Merge(ab, bb, mix64(seed, uint64(e)))
		case ab != nil:
			m = ab.Clone()
		case bb != nil:
			m = bb.Clone()
		default:
			m, err = NewReservoir(out.d, out.capacity, out.bucketSeed(e))
		}
		if err != nil {
			return nil, err
		}
		out.ring = append(out.ring, m)
	}
	return out, nil
}

// bucketAt returns the live bucket for an epoch index, or nil when the
// epoch has left (or not yet entered) this window.
func (w *WindowedReservoir) bucketAt(e int64) *Reservoir {
	first := w.epoch - int64(len(w.ring)) + 1
	if e < first || e > w.epoch {
		return nil
	}
	return w.ring[e-first]
}

// mergeWindowedKind is the registry merge hook. The merge seed is
// derived deterministically from the input seeds, so registry merges
// of the same inputs always produce the same bits.
func mergeWindowedKind(a, b core.Sketch) (core.Sketch, error) {
	wa, aok := a.(*WindowedReservoir)
	wb, bok := b.(*WindowedReservoir)
	if !aok || !bok {
		return nil, fmt.Errorf("%w: windowed merge of %T and %T", core.ErrInvalidParams, a, b)
	}
	return MergeWindowed(wa, wb, mix64(wa.seed, wb.seed))
}

// Compile-time interface checks.
var (
	_ core.Sketch          = (*WindowedReservoir)(nil)
	_ core.EstimatorSketch = (*WindowedReservoir)(nil)
)
