package stream

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Mergeability (in the sense of Agarwal et al.'s mergeable summaries):
// summaries of disjoint stream shards combine into a summary of the
// union with the same guarantees. For the paper's SUBSAMPLE sketch this
// is what makes distributed construction possible — each shard keeps a
// reservoir, and the coordinator merges them into a uniform sample of
// the full database.

// Merge combines two reservoirs over disjoint streams into a new
// reservoir whose contents are a uniform sample (without replacement)
// of the union. Both inputs must have the same attribute width and
// capacity; they are not modified. The merged sample has the common
// capacity (or fewer rows if the union is smaller).
func Merge(a, b *Reservoir, seed uint64) (*Reservoir, error) {
	if a.d != b.d {
		return nil, fmt.Errorf("%w: merge width mismatch %d vs %d", core.ErrInvalidParams, a.d, b.d)
	}
	if a.capacity != b.capacity {
		return nil, fmt.Errorf("%w: merge capacity mismatch %d vs %d", core.ErrInvalidParams, a.capacity, b.capacity)
	}
	out, err := NewReservoir(a.d, a.capacity, seed)
	if err != nil {
		return nil, err
	}
	out.seen = a.seen + b.seen

	// Work on copies of the sample index lists; draw each output slot
	// from shard A with probability proportional to its remaining
	// stream weight (the standard mergeable-summaries coin). Each
	// accepted row is an arena-to-arena block copy.
	ra := indices(a.sample.NumRows())
	rb := indices(b.sample.NumRows())
	na, nb := a.seen, b.seen
	out.sample.Reserve(out.capacity)
	for out.sample.NumRows() < out.capacity && (len(ra) > 0 || len(rb) > 0) {
		pickA := false
		switch {
		case len(ra) == 0:
			pickA = false
		case len(rb) == 0:
			pickA = true
		default:
			pickA = out.rng.Float64()*float64(na+nb) < float64(na)
		}
		if pickA {
			j := out.rng.Intn(len(ra))
			out.sample.CopyRowFrom(a.sample, ra[j])
			ra[j] = ra[len(ra)-1]
			ra = ra[:len(ra)-1]
			if na > 0 {
				na--
			}
		} else {
			j := out.rng.Intn(len(rb))
			out.sample.CopyRowFrom(b.sample, rb[j])
			rb[j] = rb[len(rb)-1]
			rb = rb[:len(rb)-1]
			if nb > 0 {
				nb--
			}
		}
	}
	return out, nil
}

func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// MergeMG combines two Misra–Gries summaries with the same k into one
// summary of the concatenated stream, preserving the N/k error
// guarantee (counter addition followed by subtracting the k-th largest
// count, per the mergeable-summaries construction).
func MergeMG(a, b *MisraGries) (*MisraGries, error) {
	if a.k != b.k {
		return nil, fmt.Errorf("%w: merge k mismatch %d vs %d", core.ErrInvalidParams, a.k, b.k)
	}
	out, err := NewMisraGries(a.k)
	if err != nil {
		return nil, err
	}
	out.n = a.n + b.n
	for it, c := range a.counters {
		out.counters[it] += c
	}
	for it, c := range b.counters {
		out.counters[it] += c
	}
	if len(out.counters) <= a.k-1 {
		return out, nil
	}
	// Subtract the k-th largest counter value from all counters and
	// drop the non-positive ones; at most k−1 survive.
	counts := make([]int64, 0, len(out.counters))
	for _, c := range out.counters {
		counts = append(counts, c)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	pivot := counts[a.k-1]
	for it := range out.counters {
		out.counters[it] -= pivot
		if out.counters[it] <= 0 {
			delete(out.counters, it)
		}
	}
	return out, nil
}
