package stream

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func TestMergeReservoirsUniform(t *testing.T) {
	// Shard A's rows carry attribute 0, shard B's attribute 1; A saw
	// twice as many rows. The merged sample must reflect the 2:1 mix.
	const capacity = 200
	const trials = 30
	tot0, tot1 := 0, 0
	for trial := 0; trial < trials; trial++ {
		a, _ := NewReservoir(4, capacity, uint64(trial*2+1))
		b, _ := NewReservoir(4, capacity, uint64(trial*2+2))
		for i := 0; i < 4000; i++ {
			a.Add(bitvec.FromIndices(4, []int{0}))
		}
		for i := 0; i < 2000; i++ {
			b.Add(bitvec.FromIndices(4, []int{1}))
		}
		m, err := Merge(a, b, uint64(trial+100))
		if err != nil {
			t.Fatal(err)
		}
		if m.Len() != capacity {
			t.Fatalf("merged sample size %d, want %d", m.Len(), capacity)
		}
		if m.Seen() != 6000 {
			t.Fatalf("merged seen %d, want 6000", m.Seen())
		}
		db := m.Database()
		tot0 += db.Count(dataset.MustItemset(0))
		tot1 += db.Count(dataset.MustItemset(1))
	}
	frac := float64(tot0) / float64(tot0+tot1)
	if math.Abs(frac-2.0/3) > 0.03 {
		t.Errorf("shard A fraction %g, want ~2/3", frac)
	}
}

func TestMergeReservoirSmallInputs(t *testing.T) {
	a, _ := NewReservoir(4, 10, 1)
	b, _ := NewReservoir(4, 10, 2)
	a.AddAttrs(0)
	b.AddAttrs(1)
	b.AddAttrs(2)
	m, err := Merge(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("merged len %d, want all 3 rows", m.Len())
	}
	if m.Seen() != 3 {
		t.Fatalf("seen %d", m.Seen())
	}
}

func TestMergeReservoirErrors(t *testing.T) {
	a, _ := NewReservoir(4, 10, 1)
	b, _ := NewReservoir(5, 10, 2)
	if _, err := Merge(a, b, 3); err == nil {
		t.Error("width mismatch should fail")
	}
	c, _ := NewReservoir(4, 20, 2)
	if _, err := Merge(a, c, 3); err == nil {
		t.Error("capacity mismatch should fail")
	}
}

func TestMergeMGPreservesGuarantee(t *testing.T) {
	const k = 12
	a, _ := NewMisraGries(k)
	b, _ := NewMisraGries(k)
	truth := map[int]int64{}
	g := rng.New(15)
	za := rng.NewZipf(g, 60, 1.3)
	zb := rng.NewZipf(g, 60, 1.3)
	for i := 0; i < 10000; i++ {
		x := za.Next()
		truth[x]++
		a.Add(x)
		y := zb.Next() + 5 // shifted distribution on shard B
		if y >= 60 {
			y -= 60
		}
		truth[y]++
		b.Add(y)
	}
	m, err := MergeMG(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 20000 {
		t.Fatalf("merged N = %d", m.N())
	}
	if m.SizeCounters() > k-1 {
		t.Fatalf("merged counters %d exceed k-1 = %d", m.SizeCounters(), k-1)
	}
	slack := m.N() / int64(k)
	for it, tc := range truth {
		est := m.Count(it)
		if est > tc {
			t.Fatalf("item %d overestimated after merge: %d > %d", it, est, tc)
		}
		if tc-est > slack {
			t.Fatalf("item %d: true %d est %d exceeds slack %d", it, tc, est, slack)
		}
	}
}

func TestMergeMGKMismatch(t *testing.T) {
	a, _ := NewMisraGries(5)
	b, _ := NewMisraGries(6)
	if _, err := MergeMG(a, b); err == nil {
		t.Error("k mismatch should fail")
	}
}

func TestSpaceSavingGuarantee(t *testing.T) {
	const k = 15
	ss, err := NewSpaceSaving(k)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int]int64{}
	g := rng.New(16)
	z := rng.NewZipf(g, 80, 1.4)
	for i := 0; i < 30000; i++ {
		x := z.Next()
		truth[x]++
		ss.Add(x)
	}
	if ss.SizeCounters() > k {
		t.Fatalf("counters %d exceed k", ss.SizeCounters())
	}
	slack := ss.N() / int64(k)
	for it, tc := range truth {
		est := ss.Count(it)
		if est == 0 {
			// unmonitored: truth must be below the eviction ceiling
			if tc > slack {
				t.Fatalf("frequent item %d (count %d) evicted beyond slack %d", it, tc, slack)
			}
			continue
		}
		if est < tc {
			t.Fatalf("space-saving must never underestimate: item %d est %d < true %d", it, est, tc)
		}
		if est-tc > ss.ErrorBound(it) {
			t.Fatalf("item %d: overestimate %d exceeds recorded bound %d", it, est-tc, ss.ErrorBound(it))
		}
	}
}

func TestSpaceSavingHeavyHittersNoFalseNegatives(t *testing.T) {
	const k = 25
	ss, _ := NewSpaceSaving(k)
	truth := map[int]int64{}
	g := rng.New(17)
	z := rng.NewZipf(g, 40, 1.5)
	for i := 0; i < 20000; i++ {
		x := z.Next()
		truth[x]++
		ss.Add(x)
	}
	const phi = 0.08
	hh := map[int]bool{}
	for _, it := range ss.HeavyHitters(phi) {
		hh[it] = true
	}
	for it, c := range truth {
		if float64(c) >= phi*float64(ss.N()) && !hh[it] {
			t.Fatalf("heavy item %d (freq %g) missed", it, float64(c)/float64(ss.N()))
		}
	}
}

func TestSpaceSavingValidation(t *testing.T) {
	if _, err := NewSpaceSaving(0); err == nil {
		t.Error("k = 0 should fail")
	}
}
