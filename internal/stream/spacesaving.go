package stream

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// SpaceSaving (Metwally–Agrawal–El Abbadi) is the other classical
// heavy-hitters counter summary: k counters; an unmonitored item evicts
// the minimum counter and inherits its count as its error bound. It
// overestimates: Count(x) − ErrorBound(x) ≤ true(x) ≤ Count(x), with
// ErrorBound ≤ N/k. Included alongside Misra–Gries for the paper's
// single-item contrast — both beat sampling for items; neither extends
// to itemsets.
type SpaceSaving struct {
	k        int
	counters map[int]*ssEntry
	n        int64
}

type ssEntry struct {
	count int64
	err   int64
}

// NewSpaceSaving creates a summary with k ≥ 1 counters (choose
// k = ⌈1/ε⌉ for additive error ε·N).
func NewSpaceSaving(k int) (*SpaceSaving, error) {
	if k < 1 {
		return nil, fmt.Errorf("%w: space-saving needs k ≥ 1, got %d", core.ErrInvalidParams, k)
	}
	return &SpaceSaving{k: k, counters: make(map[int]*ssEntry)}, nil
}

// Add processes one occurrence of item.
func (ss *SpaceSaving) Add(item int) {
	ss.n++
	if e, ok := ss.counters[item]; ok {
		e.count++
		return
	}
	if len(ss.counters) < ss.k {
		ss.counters[item] = &ssEntry{count: 1}
		return
	}
	// Evict the minimum counter.
	minItem, minCount := 0, int64(1)<<62
	for it, e := range ss.counters {
		if e.count < minCount {
			minItem, minCount = it, e.count
		}
	}
	delete(ss.counters, minItem)
	ss.counters[item] = &ssEntry{count: minCount + 1, err: minCount}
}

// N returns the number of occurrences processed.
func (ss *SpaceSaving) N() int64 { return ss.n }

// Count returns the (over)estimate of item's count; 0 if unmonitored.
func (ss *SpaceSaving) Count(item int) int64 {
	if e, ok := ss.counters[item]; ok {
		return e.count
	}
	return 0
}

// ErrorBound returns the maximum overestimate for item.
func (ss *SpaceSaving) ErrorBound(item int) int64 {
	if e, ok := ss.counters[item]; ok {
		return e.err
	}
	return 0
}

// HeavyHitters returns monitored items whose estimate reaches phi·N in
// decreasing count order. Every item with true frequency ≥ phi is
// included (counts never underestimate).
func (ss *SpaceSaving) HeavyHitters(phi float64) []int {
	thresh := phi * float64(ss.n)
	var out []int
	for it, e := range ss.counters {
		if float64(e.count) >= thresh {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := ss.counters[out[i]].count, ss.counters[out[j]].count
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// SizeCounters returns the number of live counters (≤ k).
func (ss *SpaceSaving) SizeCounters() int { return len(ss.counters) }
