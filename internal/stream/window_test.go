package stream

import (
	"errors"
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dataset"
)

func testWindowParams() core.Params {
	return core.Params{K: 1, Eps: 0.1, Delta: 0.1, Mode: core.ForEach, Task: core.Estimator}
}

func TestWindowedValidation(t *testing.T) {
	p := testWindowParams()
	cases := []struct {
		name                             string
		d, windowRows, buckets, capacity int
	}{
		{"zero d", 0, 100, 4, 10},
		{"zero buckets", 4, 100, 0, 10},
		{"indivisible window", 4, 100, 3, 10},
		{"window below buckets", 4, 2, 4, 10},
		{"zero capacity", 4, 100, 4, 0},
	}
	for _, c := range cases {
		if _, err := NewWindowedReservoir(c.d, c.windowRows, c.buckets, c.capacity, 1, p); !errors.Is(err, core.ErrInvalidParams) {
			t.Errorf("%s: err = %v, want ErrInvalidParams", c.name, err)
		}
	}
	if _, err := NewWindowedReservoir(4, 100, 4, 10, 1, core.Params{K: 9}); err == nil {
		t.Error("invalid params should fail")
	}
	if _, err := NewWindowedReservoir(4, 100, 4, 10, 1, core.Params{K: 9, Eps: 0.1, Delta: 0.1}); !errors.Is(err, core.ErrInvalidParams) {
		t.Error("k > d should fail")
	}
}

// TestWindowedRotationAndEviction pins the chain mechanics: rotations
// happen exactly every bucketRows rows, the chain never exceeds B
// buckets, and WindowSeen stays within (W·(B−1)/B, W].
func TestWindowedRotationAndEviction(t *testing.T) {
	w, err := NewWindowedReservoir(4, 40, 4, 8, 7, testWindowParams())
	if err != nil {
		t.Fatal(err)
	}
	if w.BucketRows() != 10 || w.WindowRows() != 40 {
		t.Fatalf("bucketRows=%d windowRows=%d", w.BucketRows(), w.WindowRows())
	}
	rotations := 0
	for i := 0; i < 200; i++ {
		if w.AddAttrs(i % 4) {
			rotations++
		}
		if len(w.ring) > w.buckets {
			t.Fatalf("row %d: chain grew to %d buckets", i, len(w.ring))
		}
		if seen := w.WindowSeen(); seen > 40 {
			t.Fatalf("row %d: window covers %d rows, max 40", i, seen)
		}
	}
	// 200 rows at 10 rows per sub-window: 19 rotations (the first bucket
	// opens without one).
	if rotations != 19 {
		t.Fatalf("rotations = %d, want 19", rotations)
	}
	if w.Epoch() != 19 {
		t.Fatalf("epoch = %d, want 19", w.Epoch())
	}
	// A full chain mid-sub-window covers 3 full buckets + the partial
	// newest: at least 31 of the last 40 rows.
	if seen := w.WindowSeen(); seen < 31 || seen > 40 {
		t.Fatalf("window seen = %d, want in [31, 40]", seen)
	}
}

// TestWindowedTracksDistributionShift streams two phases with disjoint
// attribute supports; after the second phase has filled the window, the
// estimate for the phase-1 attribute must drop to zero because every
// bucket holding phase-1 rows has been evicted.
func TestWindowedTracksDistributionShift(t *testing.T) {
	w, err := NewWindowedReservoir(2, 100, 4, 25, 3, testWindowParams())
	if err != nil {
		t.Fatal(err)
	}
	t0 := dataset.MustItemset(0)
	t1 := dataset.MustItemset(1)
	for i := 0; i < 500; i++ {
		w.AddAttrs(0)
	}
	if got := w.Estimate(t0); got != 1 {
		t.Fatalf("phase 1: Estimate(0) = %g, want 1", got)
	}
	for i := 0; i < 500; i++ {
		w.AddAttrs(1)
	}
	if got := w.Estimate(t0); got != 0 {
		t.Fatalf("after shift: Estimate(0) = %g, want 0 (old rows evicted)", got)
	}
	if got := w.Estimate(t1); got != 1 {
		t.Fatalf("after shift: Estimate(1) = %g, want 1", got)
	}
	if !w.Frequent(t1) || w.Frequent(t0) {
		t.Fatalf("Frequent: got (0:%v, 1:%v), want (false, true)", w.Frequent(t0), w.Frequent(t1))
	}
}

// TestWindowedEstimateAccuracy checks the seen-weighted estimate against
// the true windowed frequency on a mixed stream, within sampling noise.
func TestWindowedEstimateAccuracy(t *testing.T) {
	w, err := NewWindowedReservoir(8, 1000, 4, 250, 11, testWindowParams())
	if err != nil {
		t.Fatal(err)
	}
	// Attribute 0 appears in exactly every third row.
	for i := 0; i < 5000; i++ {
		if i%3 == 0 {
			w.AddAttrs(0, 1+i%7)
		} else {
			w.AddAttrs(1 + i%7)
		}
	}
	got := w.Estimate(dataset.MustItemset(0))
	if math.Abs(got-1.0/3.0) > 0.08 {
		t.Fatalf("Estimate(0) = %g, want ≈ 1/3", got)
	}
}

// TestWindowedCodecRoundTrip pins the codec invariants beyond the
// registry sweep: SizeBits is exact, decode is byte-identical on
// re-encode, and the decoded window keeps answering and rotating.
func TestWindowedCodecRoundTrip(t *testing.T) {
	w, err := NewWindowedReservoir(6, 60, 3, 10, 9, testWindowParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 137; i++ {
		w.AddAttrs(i%6, (i+2)%6)
	}
	var bw bitvec.Writer
	w.MarshalBits(&bw)
	if int64(bw.BitLen()) != w.SizeBits() {
		t.Fatalf("SizeBits = %d, encoder wrote %d", w.SizeBits(), bw.BitLen())
	}
	back, err := core.UnmarshalSketch(bitvec.NewReader(bw.Bytes(), bw.BitLen()))
	if err != nil {
		t.Fatal(err)
	}
	wb, ok := back.(*WindowedReservoir)
	if !ok {
		t.Fatalf("decoded %T", back)
	}
	if wb.Epoch() != w.Epoch() || wb.WindowSeen() != w.WindowSeen() || len(wb.ring) != len(w.ring) {
		t.Fatalf("state changed: epoch %d/%d seen %d/%d live %d/%d",
			wb.Epoch(), w.Epoch(), wb.WindowSeen(), w.WindowSeen(), len(wb.ring), len(w.ring))
	}
	var bw2 bitvec.Writer
	wb.MarshalBits(&bw2)
	if string(bw.Bytes()) != string(bw2.Bytes()) || bw.BitLen() != bw2.BitLen() {
		t.Fatal("re-marshal is not byte-identical")
	}
	// The restored window keeps working: same estimates now, still
	// rotates on schedule.
	if wb.Estimate(dataset.MustItemset(0)) != w.Estimate(dataset.MustItemset(0)) {
		t.Fatal("decoded estimate differs")
	}
	rot := false
	for i := 0; i < 60; i++ {
		rot = wb.AddAttrs(i%6) || rot
	}
	if !rot {
		t.Fatal("restored window never rotated over a full sub-window")
	}
}

// TestWindowedMergeLaw merges two windows fed disjoint shards of the
// same stream and checks the merge estimates the union window.
func TestWindowedMergeLaw(t *testing.T) {
	p := testWindowParams()
	a, _ := NewWindowedReservoir(4, 100, 4, 25, 1, p)
	b, _ := NewWindowedReservoir(4, 100, 4, 25, 2, p)
	// Shard a sees attribute 0 always; shard b sees it never.
	for i := 0; i < 500; i++ {
		a.AddAttrs(0, i%4)
		b.AddAttrs(1 + i%3)
	}
	m, err := MergeWindowed(a, b, 99)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != a.Epoch() {
		t.Fatalf("merged epoch %d, inputs at %d", m.Epoch(), a.Epoch())
	}
	got := m.Estimate(dataset.MustItemset(0))
	if math.Abs(got-0.5) > 0.1 {
		t.Fatalf("merged Estimate(0) = %g, want ≈ 1/2", got)
	}
	// Inputs unchanged.
	if a.Estimate(dataset.MustItemset(0)) != 1 || b.Estimate(dataset.MustItemset(0)) != 0 {
		t.Fatal("merge mutated an input")
	}
}

// TestWindowedMergeEpochDrift merges windows whose epochs drifted apart
// by one rotation — the sharded-service reality — and checks the result
// is anchored at the later epoch with a contiguous chain.
func TestWindowedMergeEpochDrift(t *testing.T) {
	p := testWindowParams()
	a, _ := NewWindowedReservoir(4, 40, 4, 10, 1, p)
	b, _ := NewWindowedReservoir(4, 40, 4, 10, 2, p)
	for i := 0; i < 100; i++ {
		a.AddAttrs(i % 4)
	}
	for i := 0; i < 85; i++ {
		b.AddAttrs(i % 4)
	}
	if a.Epoch() == b.Epoch() {
		t.Fatal("fixture should drift epochs apart")
	}
	m, err := MergeWindowed(a, b, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != a.Epoch() {
		t.Fatalf("merged epoch %d, want later input's %d", m.Epoch(), a.Epoch())
	}
	if len(m.ring) != m.buckets {
		t.Fatalf("merged chain has %d buckets, want full %d", len(m.ring), m.buckets)
	}
	if m.WindowSeen() < a.WindowSeen() {
		t.Fatalf("merged window covers %d rows, less than input a's %d", m.WindowSeen(), a.WindowSeen())
	}
}

func TestWindowedMergeMismatch(t *testing.T) {
	p := testWindowParams()
	a, _ := NewWindowedReservoir(4, 40, 4, 10, 1, p)
	b, _ := NewWindowedReservoir(4, 40, 2, 10, 2, p)
	if _, err := MergeWindowed(a, b, 3); !errors.Is(err, core.ErrInvalidParams) {
		t.Errorf("geometry mismatch: err = %v", err)
	}
	p2 := p
	p2.Eps = 0.2
	c, _ := NewWindowedReservoir(4, 40, 4, 10, 2, p2)
	if _, err := MergeWindowed(a, c, 3); !errors.Is(err, core.ErrInvalidParams) {
		t.Errorf("params mismatch: err = %v", err)
	}
}

// TestWindowedRegistryMergeDeterministic checks the registry merge hook
// produces identical bytes for repeated merges of the same inputs.
func TestWindowedRegistryMergeDeterministic(t *testing.T) {
	p := testWindowParams()
	a, _ := NewWindowedReservoir(4, 40, 4, 10, 1, p)
	b, _ := NewWindowedReservoir(4, 40, 4, 10, 2, p)
	for i := 0; i < 120; i++ {
		a.AddAttrs(i % 4)
		b.AddAttrs((i + 1) % 4)
	}
	m1, err := core.MergeSketches(a, b)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := core.MergeSketches(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var w1, w2 bitvec.Writer
	m1.MarshalBits(&w1)
	m2.MarshalBits(&w2)
	if string(w1.Bytes()) != string(w2.Bytes()) {
		t.Fatal("registry merge is not deterministic")
	}
}

func TestDecayedValidation(t *testing.T) {
	if _, err := NewDecayedMisraGries(0, 8, 0.9, core.Params{}); !errors.Is(err, core.ErrInvalidParams) {
		t.Error("d = 0 should fail")
	}
	if _, err := NewDecayedMisraGries(4, 1, 0.9, core.Params{}); !errors.Is(err, core.ErrInvalidParams) {
		t.Error("k = 1 should fail")
	}
	for _, l := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := NewDecayedMisraGries(4, 8, l, core.Params{}); !errors.Is(err, core.ErrInvalidParams) {
			t.Errorf("lambda = %g should fail", l)
		}
	}
	if _, err := NewDecayedMisraGries(4, 8, 0.9, core.Params{K: 2, Eps: 0.1, Delta: 0.1}); !errors.Is(err, core.ErrInvalidParams) {
		t.Error("params k ≠ 1 should fail")
	}
}

// TestDecayedGuarantee streams items and checks the Misra–Gries
// invariant under decay: every item's decayed weight is underestimated
// by at most N/k, against exactly-tracked decayed truth.
func TestDecayedGuarantee(t *testing.T) {
	const d, k = 32, 8
	const lambda = 0.8
	dm, err := NewDecayedMisraGries(d, k, lambda, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]float64, d)
	var total float64
	tickAll := func() {
		dm.Tick()
		total *= lambda
		for i := range truth {
			truth[i] *= lambda
		}
	}
	addAll := func(item int) {
		dm.Add(item)
		truth[item]++
		total++
	}
	// Skewed stream: item i%4 is frequent, the tail is spread wide.
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			addAll(i % 4)
		} else {
			addAll(4 + i%28)
		}
		if i%100 == 99 {
			tickAll()
		}
	}
	if math.Abs(dm.N()-total) > 1e-6*total {
		t.Fatalf("decayed total %g, truth %g", dm.N(), total)
	}
	slack := dm.N() / float64(k)
	for item := 0; item < d; item++ {
		c := dm.Count(item)
		if c > truth[item]+1e-9 {
			t.Fatalf("item %d: count %g overestimates truth %g", item, c, truth[item])
		}
		if c < truth[item]-slack-1e-9 {
			t.Fatalf("item %d: count %g below truth %g − N/k %g", item, c, truth[item], slack)
		}
	}
	// The frequent items must surface as heavy hitters at φ = 1/8.
	hh := dm.HeavyHitters(0.125)
	seen := map[int]bool{}
	for _, it := range hh {
		seen[it] = true
	}
	for item := 0; item < 4; item++ {
		if truth[item] >= 0.125*total && !seen[item] {
			t.Fatalf("frequent item %d missing from heavy hitters %v", item, hh)
		}
	}
}

// TestDecayedTickForgetsOldItems checks exponential forgetting: an item
// heavy long ago decays below a recently-heavy item.
func TestDecayedTickForgetsOldItems(t *testing.T) {
	dm, err := NewDecayedMisraGries(16, 8, 0.5, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		dm.Add(0)
	}
	dm.TickN(10) // weight of item 0 shrinks by 2^-10
	for i := 0; i < 10; i++ {
		dm.Add(1)
	}
	if dm.Count(1) <= dm.Count(0) {
		t.Fatalf("recent item 1 (%g) should outweigh decayed item 0 (%g)", dm.Count(1), dm.Count(0))
	}
	if dm.Epoch() != 10 {
		t.Fatalf("epoch = %d", dm.Epoch())
	}
	est0, err := dm.EstimateErr(dataset.MustItemset(0))
	if err != nil {
		t.Fatal(err)
	}
	est1, err := dm.EstimateErr(dataset.MustItemset(1))
	if err != nil {
		t.Fatal(err)
	}
	if est1 <= est0 {
		t.Fatalf("Estimate(1)=%g should exceed Estimate(0)=%g", est1, est0)
	}
}

// TestDecayedSketchFace pins the k=1 core.Sketch contract: typed errors
// for wrong itemset sizes, batch estimates matching singles, and the
// empty-summary zero estimate.
func TestDecayedSketchFace(t *testing.T) {
	dm, err := NewDecayedMisraGries(8, 4, 0.9, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dm.EstimateErr(dataset.MustItemset(0, 1)); !errors.Is(err, core.ErrWrongItemsetSize) {
		t.Errorf("|T|=2: err = %v", err)
	}
	if _, err := dm.FrequentErr(dataset.MustItemset(7, 3)); !errors.Is(err, core.ErrWrongItemsetSize) {
		t.Errorf("FrequentErr |T|=2: err = %v", err)
	}
	if f, err := dm.EstimateErr(dataset.MustItemset(5)); err != nil || f != 0 {
		t.Errorf("empty summary: (%g, %v)", f, err)
	}
	for i := 0; i < 50; i++ {
		dm.Add(i % 3)
	}
	ts := []dataset.Itemset{dataset.MustItemset(0), dataset.MustItemset(5)}
	out := make([]float64, 2)
	if err := dm.EstimateBatch(ts, out); err != nil {
		t.Fatal(err)
	}
	for i, q := range ts {
		if single, _ := dm.EstimateErr(q); single != out[i] {
			t.Errorf("batch[%d] = %g, single = %g", i, out[i], single)
		}
	}
	if dm.Params().K != 1 || dm.NumAttrs() != 8 || dm.Name() != DecayedKindName {
		t.Errorf("identity: %v %d %s", dm.Params(), dm.NumAttrs(), dm.Name())
	}
}

// TestDecayedCodecRoundTrip pins SizeBits exactness and byte-identical
// re-marshal on a decayed summary mid-stream.
func TestDecayedCodecRoundTrip(t *testing.T) {
	dm, err := NewDecayedMisraGries(16, 6, 0.75, core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		dm.Add(i % 9)
		if i%50 == 49 {
			dm.Tick()
		}
	}
	var bw bitvec.Writer
	dm.MarshalBits(&bw)
	if int64(bw.BitLen()) != dm.SizeBits() {
		t.Fatalf("SizeBits = %d, encoder wrote %d", dm.SizeBits(), bw.BitLen())
	}
	back, err := core.UnmarshalSketch(bitvec.NewReader(bw.Bytes(), bw.BitLen()))
	if err != nil {
		t.Fatal(err)
	}
	db, ok := back.(*DecayedMisraGries)
	if !ok {
		t.Fatalf("decoded %T", back)
	}
	if db.Epoch() != dm.Epoch() || db.N() != dm.N() || db.SizeCounters() != dm.SizeCounters() {
		t.Fatal("decoded state differs")
	}
	var bw2 bitvec.Writer
	db.MarshalBits(&bw2)
	if string(bw.Bytes()) != string(bw2.Bytes()) {
		t.Fatal("re-marshal is not byte-identical")
	}
}

// TestDecayedMergeLaw merges two summaries over disjoint shards,
// including one with an epoch lag, and checks the combined invariant.
func TestDecayedMergeLaw(t *testing.T) {
	a, _ := NewDecayedMisraGries(16, 8, 0.9, core.Params{})
	b, _ := NewDecayedMisraGries(16, 8, 0.9, core.Params{})
	for i := 0; i < 400; i++ {
		a.Add(i % 5)
		b.Add(8 + i%5)
		if i%100 == 99 {
			a.Tick()
		}
		if i%100 == 99 && i < 300 {
			b.Tick() // b lags one tick behind a
		}
	}
	m, err := MergeDecayed(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch() != a.Epoch() {
		t.Fatalf("merged epoch %d, want %d", m.Epoch(), a.Epoch())
	}
	// b's total must have been decayed forward one extra tick before
	// summation.
	want := a.N() + b.N()*0.9
	if math.Abs(m.N()-want) > 1e-9*want {
		t.Fatalf("merged total %g, want %g", m.N(), want)
	}
	if m.SizeCounters() > m.K()-1 {
		t.Fatalf("merged summary holds %d counters, bound %d", m.SizeCounters(), m.K()-1)
	}
	// Inputs untouched.
	if b.Epoch() != a.Epoch()-1 {
		t.Fatal("merge mutated input b")
	}
	// Mismatches are typed.
	c, _ := NewDecayedMisraGries(16, 8, 0.5, core.Params{})
	if _, err := MergeDecayed(a, c); !errors.Is(err, core.ErrInvalidParams) {
		t.Errorf("lambda mismatch: err = %v", err)
	}
}

// TestDecayedCorruptRejects drives the decoder's validation directly
// with impossible summaries.
func TestDecayedCorruptRejects(t *testing.T) {
	write := func(mutate func(*DecayedMisraGries)) []byte {
		dm, err := NewDecayedMisraGries(8, 4, 0.9, core.Params{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			dm.Add(i % 3)
		}
		mutate(dm)
		var bw bitvec.Writer
		dm.MarshalBits(&bw)
		return bw.Bytes()
	}
	cases := []struct {
		name   string
		mutate func(*DecayedMisraGries)
	}{
		{"counter above universe", func(dm *DecayedMisraGries) { dm.counters[99] = 1 }},
		{"mass above total", func(dm *DecayedMisraGries) { dm.counters[1] = 1e6 }},
		{"negative counter", func(dm *DecayedMisraGries) { dm.counters[1] = -3 }},
		{"nan total", func(dm *DecayedMisraGries) { dm.n = math.NaN() }},
		{"counter overflow", func(dm *DecayedMisraGries) {
			dm.counters[4], dm.counters[5], dm.counters[6] = 1, 1, 1
		}},
	}
	for _, c := range cases {
		buf := write(c.mutate)
		if _, err := core.UnmarshalSketch(bitvec.NewReader(buf, len(buf)*8)); err == nil {
			t.Errorf("%s: decode accepted an impossible summary", c.name)
		}
	}
}
