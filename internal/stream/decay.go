package stream

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dataset"
)

// DecayedKindTag is the decayed-misra-gries wire kind byte / payload
// type tag, registered with the core sketch-kind registry at init.
const DecayedKindTag uint8 = 8

// DecayedKindName is the decayed-misra-gries registered wire name.
const DecayedKindName = "decayed-misra-gries"

func init() {
	core.RegisterKind(core.KindSpec{
		Kind:    DecayedKindTag,
		Name:    DecayedKindName,
		Decode:  unmarshalDecayed,
		Matches: func(s core.Sketch) bool { return s.Name() == DecayedKindName },
		Merge:   mergeDecayedKind,
	})
}

// decayFloor is the deletion threshold for decayed counters: a counter
// that exponential decay has pushed below this is indistinguishable
// from absent and is dropped, which bounds the summary's lifetime
// memory at k−1 counters with no tombstone growth.
const decayFloor = 1e-12

// DecayedMisraGries is the time-decayed variant of the Misra–Gries
// heavy-hitters summary: counters are float64 weights, and every epoch
// tick multiplies all counters and the occurrence total by a decay
// factor λ ∈ (0, 1]. The summary therefore tracks heavy hitters of the
// exponentially-weighted recent stream — the counter view of the "last
// N events" window the WindowedReservoir samples, with ticks driven by
// the same sub-window rotations.
//
// The Misra–Gries guarantee survives decay: at every moment each
// item's decayed weight is underestimated by at most N/k, where N is
// the decayed occurrence total — decay scales both sides of the
// invariant equally.
//
// As a core.Sketch the summary answers singleton itemsets (k = 1),
// exactly like the count-sketch family: Estimate/Frequent panic on
// |T| ≠ 1, with EstimateErr/FrequentErr as the non-panicking variants.
type DecayedMisraGries struct {
	params   core.Params
	d        int // attribute universe size
	k        int // counter bound: at most k−1 live counters
	lambda   float64
	epoch    int64
	n        float64 // decayed occurrence total
	counters map[int]float64
}

// NewDecayedMisraGries creates a decayed summary over the attribute
// universe [0, d) with parameter k ≥ 2 (at most k−1 counters; additive
// error N/k of the decayed total) and per-tick decay factor
// lambda ∈ (0, 1] (1 = no decay, i.e. plain weighted Misra–Gries). A
// zero-valued p derives the default contract {k: 1, ε: 1/k, δ: 1/2,
// ForEach, Estimator}; ε = 1/k is the summary's deterministic additive
// error, and δ is vacuous (recorded because the wire header requires
// δ ∈ (0, 1), but the guarantee holds with certainty).
func NewDecayedMisraGries(d, k int, lambda float64, p core.Params) (*DecayedMisraGries, error) {
	if d < 1 {
		return nil, fmt.Errorf("%w: decayed misra-gries needs d ≥ 1, got %d", core.ErrInvalidParams, d)
	}
	if k < 2 {
		return nil, fmt.Errorf("%w: decayed misra-gries needs k ≥ 2, got %d", core.ErrInvalidParams, k)
	}
	if !(lambda > 0 && lambda <= 1) {
		return nil, fmt.Errorf("%w: decay factor %g outside (0, 1]", core.ErrInvalidParams, lambda)
	}
	if p == (core.Params{}) {
		p = core.Params{K: 1, Eps: 1 / float64(k), Delta: 0.5, Mode: core.ForEach, Task: core.Estimator}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.K != 1 {
		return nil, fmt.Errorf("%w: decayed misra-gries answers singletons only, params k = %d", core.ErrInvalidParams, p.K)
	}
	return &DecayedMisraGries{
		params:   p,
		d:        d,
		k:        k,
		lambda:   lambda,
		counters: make(map[int]float64),
	}, nil
}

// Add processes one occurrence of item (weight 1).
func (dm *DecayedMisraGries) Add(item int) { dm.AddWeighted(item, 1) }

// AddWeighted processes an occurrence of item with positive weight w —
// the weighted Misra–Gries update (Berinde et al. style): an absent
// item entering a full summary pays min(w, min-counter) as a global
// decrement before claiming the freed slot with its remainder.
func (dm *DecayedMisraGries) AddWeighted(item int, w float64) {
	if item < 0 || item >= dm.d {
		panic(fmt.Sprintf("stream: item %d outside universe [0,%d)", item, dm.d))
	}
	if !(w > 0) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("stream: decayed misra-gries weight %g must be positive and finite", w))
	}
	dm.n += w
	if _, ok := dm.counters[item]; ok {
		dm.counters[item] += w
		return
	}
	if len(dm.counters) < dm.k-1 {
		dm.counters[item] = w
		return
	}
	min := math.Inf(1)
	for _, c := range dm.counters {
		if c < min {
			min = c
		}
	}
	dec := w
	if min < dec {
		dec = min
	}
	for it := range dm.counters {
		dm.counters[it] -= dec
		if dm.counters[it] <= decayFloor {
			delete(dm.counters, it)
		}
	}
	if w > dec && len(dm.counters) < dm.k-1 {
		dm.counters[item] = w - dec
	}
}

// AddAttrs processes every attribute of a row as one item occurrence.
func (dm *DecayedMisraGries) AddAttrs(attrs ...int) {
	for _, a := range attrs {
		dm.Add(a)
	}
}

// Tick applies one epoch of exponential decay: every counter and the
// occurrence total are scaled by λ, and counters that decayed below
// resolution are dropped.
func (dm *DecayedMisraGries) Tick() {
	dm.epoch++
	if dm.lambda == 1 {
		return
	}
	dm.n *= dm.lambda
	for it := range dm.counters {
		dm.counters[it] *= dm.lambda
		if dm.counters[it] <= decayFloor {
			delete(dm.counters, it)
		}
	}
	if dm.n <= decayFloor {
		dm.n = 0
	}
}

// TickN applies n epochs of decay.
func (dm *DecayedMisraGries) TickN(n int64) {
	for i := int64(0); i < n; i++ {
		dm.Tick()
	}
}

// K returns the counter-bound parameter k.
func (dm *DecayedMisraGries) K() int { return dm.k }

// Lambda returns the per-tick decay factor.
func (dm *DecayedMisraGries) Lambda() float64 { return dm.lambda }

// Epoch returns the number of decay ticks applied so far.
func (dm *DecayedMisraGries) Epoch() int64 { return dm.epoch }

// N returns the decayed occurrence total.
func (dm *DecayedMisraGries) N() float64 { return dm.n }

// Count returns the (under)estimate of item's decayed weight; the
// truth lies in [Count, Count + N/k].
func (dm *DecayedMisraGries) Count(item int) float64 { return dm.counters[item] }

// SizeCounters returns the number of live counters (≤ k−1).
func (dm *DecayedMisraGries) SizeCounters() int { return len(dm.counters) }

// HeavyHitters returns all items whose true decayed relative frequency
// might be at least phi, in decreasing count order (ties by ascending
// item). No false negatives; false positives are limited to items
// above phi − 1/k.
func (dm *DecayedMisraGries) HeavyHitters(phi float64) []int {
	thresh := phi*dm.n - dm.n/float64(dm.k)
	var out []int
	for it, c := range dm.counters {
		if c >= thresh {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := dm.counters[out[i]], dm.counters[out[j]]
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// Clone returns an independent copy of the summary.
func (dm *DecayedMisraGries) Clone() *DecayedMisraGries {
	c := *dm
	c.counters = make(map[int]float64, len(dm.counters))
	for it, v := range dm.counters {
		c.counters[it] = v
	}
	return &c
}

// Snapshot returns the summary state in deterministic (ascending item)
// order: the decayed total and the parallel item/weight slices.
func (dm *DecayedMisraGries) Snapshot() (n float64, items []int, weights []float64) {
	items = make([]int, 0, len(dm.counters))
	for it := range dm.counters {
		items = append(items, it)
	}
	sort.Ints(items)
	weights = make([]float64, len(items))
	for i, it := range items {
		weights[i] = dm.counters[it]
	}
	return dm.n, items, weights
}

// Name identifies the summary with its registered wire name.
func (dm *DecayedMisraGries) Name() string { return DecayedKindName }

// Params returns the recorded (k, ε, δ) contract.
func (dm *DecayedMisraGries) Params() core.Params { return dm.params }

// NumAttrs returns the attribute universe size d.
func (dm *DecayedMisraGries) NumAttrs() int { return dm.d }

// Estimate returns the estimated decayed relative frequency of the
// singleton itemset t. It panics if |T| ≠ 1; use EstimateErr for a
// non-panicking variant.
func (dm *DecayedMisraGries) Estimate(t dataset.Itemset) float64 {
	f, err := dm.EstimateErr(t)
	if err != nil {
		panic(err)
	}
	return f
}

// EstimateErr is Estimate with an error return for |T| ≠ 1 or an
// attribute outside the universe.
func (dm *DecayedMisraGries) EstimateErr(t dataset.Itemset) (float64, error) {
	a, err := dm.singleton(t)
	if err != nil {
		return 0, err
	}
	if dm.n == 0 {
		return 0, nil
	}
	return dm.counters[a] / dm.n, nil
}

// Frequent returns the indicator bit for t. It panics if |T| ≠ 1; use
// FrequentErr for a non-panicking variant.
func (dm *DecayedMisraGries) Frequent(t dataset.Itemset) bool {
	b, err := dm.FrequentErr(t)
	if err != nil {
		panic(err)
	}
	return b
}

// FrequentErr is Frequent with an error return for |T| ≠ 1. The 3ε/4
// threshold mirrors the estimate-backed indicators of the core package.
func (dm *DecayedMisraGries) FrequentErr(t dataset.Itemset) (bool, error) {
	f, err := dm.EstimateErr(t)
	if err != nil {
		return false, err
	}
	return f >= 0.75*dm.params.Eps, nil
}

// EstimateBatch fills out[i] with the decayed frequency estimate for
// ts[i] — the batched fast path the Querier adapter dispatches to.
func (dm *DecayedMisraGries) EstimateBatch(ts []dataset.Itemset, out []float64) error {
	for i, t := range ts {
		a, err := dm.singleton(t)
		if err != nil {
			return err
		}
		if dm.n == 0 {
			out[i] = 0
		} else {
			out[i] = dm.counters[a] / dm.n
		}
	}
	return nil
}

// singleton extracts the one attribute of t, with the typed errors the
// query layer matches on.
func (dm *DecayedMisraGries) singleton(t dataset.Itemset) (int, error) {
	if t.Len() != 1 {
		return 0, fmt.Errorf("%w: |T| = %d, sketch k = 1", core.ErrWrongItemsetSize, t.Len())
	}
	a := t.Attrs()[0]
	if a < 0 || a >= dm.d {
		return 0, fmt.Errorf("%w: attribute %d outside universe [0, %d)", core.ErrInvalidParams, a, dm.d)
	}
	return a, nil
}

// Wire payload of the decayed-misra-gries kind (tag 8), after the
// leading KindTagBits type tag:
//
//	params   core.MarshalParams header
//	d        32 bits
//	k        32 bits
//	lambda   64 bits (IEEE-754)
//	epoch    64 bits
//	n        64 bits (IEEE-754 decayed total)
//	count    32 bits (live counters)
//	count ×: item 32 bits, weight 64 bits (IEEE-754)
//
// Counters are written in ascending item order, so decode → re-encode
// is byte-identical.
const (
	decayedFieldBits = 32
	decayedFixedBits = decayedFieldBits + // d
		decayedFieldBits + // k
		64 + 64 + 64 + // lambda, epoch, n
		decayedFieldBits // count
	decayedCounterBits = decayedFieldBits + 64
)

// SizeBits returns the exact serialized size in bits, by the analytic
// formula (every field is fixed-width).
func (dm *DecayedMisraGries) SizeBits() int64 {
	return int64(core.KindTagBits) + int64(core.ParamsBits) + decayedFixedBits +
		int64(len(dm.counters))*decayedCounterBits
}

// MarshalBits appends the self-describing encoding: the registry type
// tag, then the payload documented above.
func (dm *DecayedMisraGries) MarshalBits(w bitvec.BitWriter) {
	w.WriteUint(uint64(DecayedKindTag), core.KindTagBits)
	core.MarshalParams(w, dm.params)
	w.WriteUint(uint64(dm.d), decayedFieldBits)
	w.WriteUint(uint64(dm.k), decayedFieldBits)
	w.WriteUint(math.Float64bits(dm.lambda), 64)
	w.WriteUint(uint64(dm.epoch), 64)
	w.WriteUint(math.Float64bits(dm.n), 64)
	_, items, weights := dm.Snapshot()
	w.WriteUint(uint64(len(items)), decayedFieldBits)
	for i, it := range items {
		w.WriteUint(uint64(it), decayedFieldBits)
		w.WriteUint(math.Float64bits(weights[i]), 64)
	}
}

// unmarshalDecayed is the registered decoder: it reads the payload
// body after the type tag and re-validates every invariant (counter
// bound, ascending items in-universe, positive finite weights, total
// covering the counter mass) so a corrupt stream cannot smuggle in an
// impossible summary.
func unmarshalDecayed(r bitvec.BitReader) (core.Sketch, error) {
	p, err := core.UnmarshalParams(r)
	if err != nil {
		return nil, err
	}
	d, err := r.ReadUint(decayedFieldBits)
	if err != nil {
		return nil, err
	}
	k, err := r.ReadUint(decayedFieldBits)
	if err != nil {
		return nil, err
	}
	lb, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	epoch, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	nb, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	count, err := r.ReadUint(decayedFieldBits)
	if err != nil {
		return nil, err
	}
	lambda := math.Float64frombits(lb)
	n := math.Float64frombits(nb)
	if d < 1 || k < 2 {
		return nil, fmt.Errorf("decayed misra-gries geometry d=%d k=%d out of range", d, k)
	}
	if !(lambda > 0 && lambda <= 1) {
		return nil, fmt.Errorf("decayed misra-gries decay factor %g outside (0, 1]", lambda)
	}
	if epoch > 1<<62 {
		return nil, fmt.Errorf("decayed misra-gries epoch %d is implausible", epoch)
	}
	if !(n >= 0) || math.IsInf(n, 0) {
		return nil, fmt.Errorf("decayed misra-gries total %g is not a finite non-negative value", n)
	}
	if count > k-1 {
		return nil, fmt.Errorf("decayed misra-gries holds %d counters, bound is k-1 = %d", count, k-1)
	}
	if p.K != 1 {
		return nil, fmt.Errorf("decayed misra-gries answers singletons only, params k = %d", p.K)
	}
	dm := &DecayedMisraGries{
		params:   p,
		d:        int(d),
		k:        int(k),
		lambda:   lambda,
		epoch:    int64(epoch),
		n:        n,
		counters: make(map[int]float64, count),
	}
	var sum float64
	prev := -1
	for i := uint64(0); i < count; i++ {
		item, err := r.ReadUint(decayedFieldBits)
		if err != nil {
			return nil, err
		}
		wb, err := r.ReadUint(64)
		if err != nil {
			return nil, err
		}
		w := math.Float64frombits(wb)
		if int64(item) >= int64(d) {
			return nil, fmt.Errorf("decayed misra-gries counter item %d outside universe [0, %d)", item, d)
		}
		if int(item) <= prev {
			return nil, fmt.Errorf("decayed misra-gries counters out of order at item %d", item)
		}
		if !(w > 0) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("decayed misra-gries counter for item %d has non-positive weight %g", item, w)
		}
		prev = int(item)
		dm.counters[int(item)] = w
		sum += w
	}
	// Decay scales counters and the total by the same λ per tick, so the
	// counter mass never exceeds the total; allow a relative float slack.
	if sum > n*(1+1e-9)+1e-9 {
		return nil, fmt.Errorf("decayed misra-gries counter mass %g exceeds total %g", sum, n)
	}
	return dm, nil
}

// MergeDecayed combines two decayed summaries over disjoint streams
// that tick on the same epoch schedule. Epochs are aligned first (the
// summary with fewer ticks is decayed forward on a clone — its rows
// are older relative to the other's clock), then counters are summed
// and the combined set is reduced back to k−1 entries by subtracting
// the k-th largest weight from all (the Misra–Gries merge law; the
// additive error stays ≤ N/k of the combined decayed total). Both
// inputs must share d, k, λ and params; neither is modified.
func MergeDecayed(a, b *DecayedMisraGries) (*DecayedMisraGries, error) {
	if a.d != b.d || a.k != b.k || a.lambda != b.lambda {
		return nil, fmt.Errorf("%w: decayed merge mismatch (d=%d,k=%d,λ=%g) vs (d=%d,k=%d,λ=%g)",
			core.ErrInvalidParams, a.d, a.k, a.lambda, b.d, b.k, b.lambda)
	}
	if a.params != b.params {
		return nil, fmt.Errorf("%w: decayed merge params mismatch", core.ErrInvalidParams)
	}
	if a.epoch < b.epoch {
		a, b = b, a
	}
	if b.epoch < a.epoch {
		b = b.Clone()
		b.TickN(a.epoch - b.epoch)
	}
	out := a.Clone()
	out.n += b.n
	for it, w := range b.counters {
		out.counters[it] += w
	}
	if len(out.counters) > out.k-1 {
		// Subtract the k-th largest weight from every counter; at most
		// k−1 survive.
		ws := make([]float64, 0, len(out.counters))
		for _, w := range out.counters {
			ws = append(ws, w)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
		pivot := ws[out.k-1]
		for it := range out.counters {
			out.counters[it] -= pivot
			if out.counters[it] <= decayFloor {
				delete(out.counters, it)
			}
		}
	}
	return out, nil
}

// mergeDecayedKind is the registry merge hook.
func mergeDecayedKind(a, b core.Sketch) (core.Sketch, error) {
	da, aok := a.(*DecayedMisraGries)
	db, bok := b.(*DecayedMisraGries)
	if !aok || !bok {
		return nil, fmt.Errorf("%w: decayed merge of %T and %T", core.ErrInvalidParams, a, b)
	}
	return MergeDecayed(da, db)
}

// Compile-time interface checks.
var (
	_ core.Sketch          = (*DecayedMisraGries)(nil)
	_ core.EstimatorSketch = (*DecayedMisraGries)(nil)
)
