// Package stream provides one-pass streaming algorithms connected to
// the paper's discussion.
//
// Reservoir sampling is the streaming implementation of SUBSAMPLE
// (Definition 8): one pass over the rows maintains a uniform sample, so
// the paper's optimal sketch is constructible without ever storing the
// database. The paper's §1.2/§5 observation — that no streaming
// algorithm for approximate frequent itemsets is known to beat uniform
// row sampling, and by its lower bounds none can by more than small
// factors — is what makes this simple sketch the practical default.
//
// Misra–Gries is included as the contrast: for the *single-item* heavy
// hitters problem, deterministic counter algorithms beat sampling
// (O(1/ε) counters, no log factors, deterministic guarantees). The
// paper's point is that this improvement does not extend to itemsets.
//
// # Relation to the parallel batch builders
//
// internal/core parallelizes *batch* construction (the whole database
// is in memory and chunks of sample slots are filled concurrently
// under a deterministic per-chunk seeding scheme — see
// internal/core/parallel.go). This package is the *distributed*
// counterpart: each stream shard runs its own Reservoir with its own
// seed, and Merge combines the shard reservoirs into a uniform sample
// of the union. Both constructions are deterministic functions of
// their seeds and inputs — a merged reservoir is reproducible from
// (shard seeds, merge seed, shard streams), just as a batch sketch is
// reproducible from (seed, database) for any worker count.
package stream

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// Reservoir maintains a uniform random sample of capacity rows from a
// row stream (Vitter's Algorithm R). The sample is uniform without
// replacement among all rows seen so far.
//
// The sample is held in a dataset.Database, i.e. the contiguous
// row-major arena layout: accepting a row is a block copy into a slot,
// Estimate runs the database's zero-allocation horizontal scan, and
// Merge copies rows arena-to-arena.
type Reservoir struct {
	d        int
	capacity int
	seen     int64
	sample   *dataset.Database
	rng      *rng.RNG
}

// NewReservoir creates a reservoir for d-attribute rows holding up to
// capacity rows.
func NewReservoir(d, capacity int, seed uint64) (*Reservoir, error) {
	if d < 1 {
		return nil, fmt.Errorf("%w: reservoir needs d ≥ 1, got %d", core.ErrInvalidParams, d)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("%w: reservoir needs capacity ≥ 1, got %d", core.ErrInvalidParams, capacity)
	}
	return &Reservoir{d: d, capacity: capacity, sample: dataset.NewDatabase(d), rng: rng.New(seed)}, nil
}

// accept returns the sample slot the next offered row should occupy:
// the append slot (== current size) while filling, a random slot in
// [0, capacity) to replace with probability capacity/seen, or -1 to
// discard the row. It advances the seen counter.
func (r *Reservoir) accept() int {
	r.seen++
	if n := r.sample.NumRows(); n < r.capacity {
		return n
	}
	j := r.rng.Int63() % r.seen
	if j < int64(r.capacity) {
		return int(j)
	}
	return -1
}

// Add offers one row to the reservoir. The row is copied.
func (r *Reservoir) Add(row *bitvec.Vector) {
	if row.Len() != r.d {
		panic(fmt.Sprintf("stream: row length %d, want %d", row.Len(), r.d))
	}
	switch j := r.accept(); {
	case j < 0:
	case j == r.sample.NumRows():
		r.sample.AddRow(row)
	default:
		r.sample.SetRow(j, row)
	}
}

// AddAttrs offers a row given as attribute indices. No row vector is
// materialized: the bits are written directly into the sample arena.
func (r *Reservoir) AddAttrs(attrs ...int) {
	// Validate before touching any state, so a recovered panic leaves
	// the seen counter and the sample intact.
	for _, a := range attrs {
		if a < 0 || a >= r.d {
			panic(fmt.Sprintf("stream: attribute %d out of range [0,%d)", a, r.d))
		}
	}
	switch j := r.accept(); {
	case j < 0: // discarded
	case j == r.sample.NumRows():
		r.sample.AddRowAttrs(attrs...)
	default:
		r.sample.SetRowAttrs(j, attrs...)
	}
}

// Seen returns the number of rows offered so far.
func (r *Reservoir) Seen() int64 { return r.seen }

// Len returns the current sample size.
func (r *Reservoir) Len() int { return r.sample.NumRows() }

// Capacity returns the maximum sample size.
func (r *Reservoir) Capacity() int { return r.capacity }

// Clone returns an independent copy of the reservoir: sample arena,
// seen counter and the generator state are all duplicated, so the
// clone and the original evolve identically-but-independently from
// here. The service layer snapshots shards this way — queries read a
// frozen clone while ingest keeps mutating the original.
func (r *Reservoir) Clone() *Reservoir {
	g := *r.rng
	return &Reservoir{
		d:        r.d,
		capacity: r.capacity,
		seen:     r.seen,
		sample:   r.sample.Clone(),
		rng:      &g,
	}
}

// RestoreReservoir rebuilds a reservoir from checkpointed state: the
// sample rows (adopted, not copied), the stream position seen, and a
// fresh generator seed for the rows still to come. Algorithm R's
// guarantee needs only the seen counter and independent future coins,
// so a restored reservoir continues the stream with the full uniform-
// sample property over (pre-crash rows it retained) ∪ (rows after
// recovery).
func RestoreReservoir(sample *dataset.Database, capacity int, seen int64, seed uint64) (*Reservoir, error) {
	if sample == nil {
		return nil, fmt.Errorf("%w: restore needs a sample database", core.ErrInvalidParams)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("%w: reservoir needs capacity ≥ 1, got %d", core.ErrInvalidParams, capacity)
	}
	if sample.NumRows() > capacity {
		return nil, fmt.Errorf("%w: checkpointed sample holds %d rows, capacity is %d", core.ErrInvalidParams, sample.NumRows(), capacity)
	}
	if seen < int64(sample.NumRows()) {
		return nil, fmt.Errorf("%w: seen counter %d below sample size %d", core.ErrInvalidParams, seen, sample.NumRows())
	}
	return &Reservoir{
		d:        sample.NumCols(),
		capacity: capacity,
		seen:     seen,
		sample:   sample,
		rng:      rng.New(seed),
	}, nil
}

// Database materializes the current sample as a database — the
// streaming SUBSAMPLE sketch payload. With the arena layout this is a
// single block copy.
func (r *Reservoir) Database() *dataset.Database {
	return r.sample.Clone()
}

// Estimate returns the sample frequency of T, the Definition 8
// recovery procedure.
func (r *Reservoir) Estimate(t dataset.Itemset) float64 {
	return r.sample.Frequency(t)
}

// MisraGries is the deterministic heavy-hitters summary for single
// items: at most k−1 counters; after processing n item occurrences,
// every item's count is underestimated by at most n/k.
type MisraGries struct {
	k        int
	counters map[int]int64
	n        int64
}

// NewMisraGries creates a summary with parameter k ≥ 2 (k−1 counters;
// choose k = ⌈1/ε⌉+1 for additive error ε·n).
func NewMisraGries(k int) (*MisraGries, error) {
	if k < 2 {
		return nil, fmt.Errorf("%w: misra-gries needs k ≥ 2, got %d", core.ErrInvalidParams, k)
	}
	return &MisraGries{k: k, counters: make(map[int]int64)}, nil
}

// Add processes one occurrence of item.
func (mg *MisraGries) Add(item int) {
	mg.n++
	if _, ok := mg.counters[item]; ok {
		mg.counters[item]++
		return
	}
	if len(mg.counters) < mg.k-1 {
		mg.counters[item] = 1
		return
	}
	// Decrement-all step; delete exhausted counters.
	for it := range mg.counters {
		mg.counters[it]--
		if mg.counters[it] == 0 {
			delete(mg.counters, it)
		}
	}
}

// AddRow processes every set attribute of a row as one item occurrence.
func (mg *MisraGries) AddRow(row *bitvec.Vector) {
	for _, a := range row.Ones() {
		mg.Add(a)
	}
}

// N returns the number of item occurrences processed.
func (mg *MisraGries) N() int64 { return mg.n }

// Count returns the (under)estimate of item's occurrence count; the
// truth lies in [Count, Count + N/k].
func (mg *MisraGries) Count(item int) int64 { return mg.counters[item] }

// HeavyHitters returns all items whose true relative frequency might
// be at least phi, in decreasing count order. Every item with true
// frequency ≥ phi is included (no false negatives); items below
// phi − 1/k may appear (false positives are bounded by the guarantee).
func (mg *MisraGries) HeavyHitters(phi float64) []int {
	thresh := phi*float64(mg.n) - float64(mg.n)/float64(mg.k)
	var out []int
	for it, c := range mg.counters {
		if float64(c) >= thresh {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := mg.counters[out[i]], mg.counters[out[j]]
		if ci != cj {
			return ci > cj
		}
		return out[i] < out[j]
	})
	return out
}

// SizeCounters returns the number of live counters (≤ k−1).
func (mg *MisraGries) SizeCounters() int { return len(mg.counters) }

// Clone returns an independent copy of the summary.
func (mg *MisraGries) Clone() *MisraGries {
	c := &MisraGries{k: mg.k, n: mg.n, counters: make(map[int]int64, len(mg.counters))}
	for it, v := range mg.counters {
		c.counters[it] = v
	}
	return c
}

// Snapshot returns the summary's state in a deterministic order
// (ascending item), for serialization: the occurrence total and the
// parallel item/count slices.
func (mg *MisraGries) Snapshot() (n int64, items []int, counts []int64) {
	items = make([]int, 0, len(mg.counters))
	for it := range mg.counters {
		items = append(items, it)
	}
	sort.Ints(items)
	counts = make([]int64, len(items))
	for i, it := range items {
		counts[i] = mg.counters[it]
	}
	return mg.n, items, counts
}

// RestoreMisraGries rebuilds a summary from Snapshot state. The
// invariants (k ≥ 2, at most k−1 positive counters, n covering the
// counted occurrences) are validated so a corrupt checkpoint cannot
// smuggle in an impossible summary.
func RestoreMisraGries(k int, n int64, items []int, counts []int64) (*MisraGries, error) {
	mg, err := NewMisraGries(k)
	if err != nil {
		return nil, err
	}
	if len(items) != len(counts) {
		return nil, fmt.Errorf("%w: %d items but %d counts", core.ErrInvalidParams, len(items), len(counts))
	}
	if len(items) > k-1 {
		return nil, fmt.Errorf("%w: %d counters exceed the k-1 = %d bound", core.ErrInvalidParams, len(items), k-1)
	}
	var total int64
	for i, it := range items {
		if counts[i] <= 0 {
			return nil, fmt.Errorf("%w: non-positive counter %d for item %d", core.ErrInvalidParams, counts[i], it)
		}
		if _, dup := mg.counters[it]; dup {
			return nil, fmt.Errorf("%w: duplicate counter for item %d", core.ErrInvalidParams, it)
		}
		mg.counters[it] = counts[i]
		total += counts[i]
	}
	if n < total {
		return nil, fmt.Errorf("%w: occurrence total %d below counter sum %d", core.ErrInvalidParams, n, total)
	}
	mg.n = n
	return mg, nil
}
