package stream

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func TestReservoirValidation(t *testing.T) {
	if _, err := NewReservoir(0, 5, 1); err == nil {
		t.Error("d = 0 should fail")
	}
	if _, err := NewReservoir(5, 0, 1); err == nil {
		t.Error("capacity = 0 should fail")
	}
}

func TestReservoirFillsThenCaps(t *testing.T) {
	r, err := NewReservoir(4, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		r.AddAttrs(i % 4)
	}
	if r.Len() != 7 || r.Seen() != 7 {
		t.Fatalf("len=%d seen=%d, want 7/7", r.Len(), r.Seen())
	}
	for i := 0; i < 100; i++ {
		r.AddAttrs(i % 4)
	}
	if r.Len() != 10 {
		t.Fatalf("len=%d, want cap 10", r.Len())
	}
	if r.Seen() != 107 {
		t.Fatalf("seen=%d", r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Mark the first and second half of the stream with different
	// attributes; a uniform sample retains both halves equally across
	// many independent runs.
	const n, cap = 1000, 100
	const runs = 40
	early, late := 0, 0
	for run := 0; run < runs; run++ {
		r, _ := NewReservoir(16, cap, uint64(run+101))
		for i := 0; i < n; i++ {
			row := bitvec.New(16)
			if i < n/2 {
				row.Set(0) // early marker
			} else {
				row.Set(1) // late marker
			}
			r.Add(row)
		}
		db := r.Database()
		early += db.Count(dataset.MustItemset(0))
		late += db.Count(dataset.MustItemset(1))
	}
	ratio := float64(early) / float64(early+late)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("early fraction %g, want ~0.5 (uniform over stream)", ratio)
	}
}

func TestReservoirEstimate(t *testing.T) {
	r, _ := NewReservoir(8, 2000, 7)
	g := rng.New(3)
	db := dataset.GenPlanted(g, 10000, 8, 0.1, []dataset.Plant{
		{Items: dataset.MustItemset(2, 5), Freq: 0.4},
	})
	for i := 0; i < db.NumRows(); i++ {
		r.Add(db.Row(i))
	}
	T := dataset.MustItemset(2, 5)
	if math.Abs(r.Estimate(T)-db.Frequency(T)) > 0.05 {
		t.Errorf("reservoir estimate %g vs true %g", r.Estimate(T), db.Frequency(T))
	}
	if r.Estimate(dataset.MustItemset(0, 1, 2, 3, 4, 5, 6, 7)) > 0.01 {
		t.Error("full itemset should be rare")
	}
}

func TestReservoirEmptyEstimate(t *testing.T) {
	r, _ := NewReservoir(4, 5, 1)
	if r.Estimate(dataset.MustItemset(0)) != 0 {
		t.Error("empty reservoir estimates 0")
	}
}

func TestMisraGriesValidation(t *testing.T) {
	if _, err := NewMisraGries(1); err == nil {
		t.Error("k = 1 should fail")
	}
}

func TestMisraGriesGuarantee(t *testing.T) {
	// n occurrences, k counters: true − estimate ≤ n/k for every item.
	const k = 10
	mg, err := NewMisraGries(k)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int]int64{}
	g := rng.New(11)
	z := rng.NewZipf(g, 100, 1.5)
	for i := 0; i < 20000; i++ {
		it := z.Next()
		truth[it]++
		mg.Add(it)
	}
	if mg.N() != 20000 {
		t.Fatalf("N = %d", mg.N())
	}
	slack := mg.N() / k
	for it, tc := range truth {
		est := mg.Count(it)
		if est > tc {
			t.Fatalf("item %d overestimated: %d > %d", it, est, tc)
		}
		if tc-est > slack {
			t.Fatalf("item %d undershoots guarantee: true %d est %d slack %d", it, tc, est, slack)
		}
	}
	if mg.SizeCounters() > k-1 {
		t.Fatalf("counters %d exceed k-1", mg.SizeCounters())
	}
}

func TestMisraGriesHeavyHittersNoFalseNegatives(t *testing.T) {
	const k = 20
	mg, _ := NewMisraGries(k)
	truth := map[int]int64{}
	g := rng.New(12)
	z := rng.NewZipf(g, 50, 1.4)
	for i := 0; i < 30000; i++ {
		it := z.Next()
		truth[it]++
		mg.Add(it)
	}
	const phi = 0.1
	hh := map[int]bool{}
	for _, it := range mg.HeavyHitters(phi) {
		hh[it] = true
	}
	for it, c := range truth {
		if float64(c) >= phi*float64(mg.N()) && !hh[it] {
			t.Fatalf("item %d with freq %g missed", it, float64(c)/float64(mg.N()))
		}
	}
}

func TestMisraGriesAddRow(t *testing.T) {
	mg, _ := NewMisraGries(8)
	row := bitvec.FromIndices(10, []int{1, 4, 7})
	mg.AddRow(row)
	if mg.N() != 3 {
		t.Fatalf("N = %d, want 3", mg.N())
	}
}

func BenchmarkReservoirAdd(b *testing.B) {
	r, _ := NewReservoir(64, 1000, 1)
	row := bitvec.FromIndices(64, []int{1, 5, 30, 62})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(row)
	}
}

func BenchmarkMisraGries(b *testing.B) {
	mg, _ := NewMisraGries(100)
	g := rng.New(1)
	z := rng.NewZipf(g, 1000, 1.2)
	items := make([]int, 4096)
	for i := range items {
		items[i] = z.Next()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg.Add(items[i%len(items)])
	}
}
