package core

import (
	"repro/internal/bitvec"
	"repro/internal/dataset"
)

// ReleaseDB is the trivial algorithm of Definition 6: the sketch is the
// database verbatim and queries are exact. Its space is O(nd), which
// Theorem 12 shows is optimal when n is small (n = 1/ε makes RELEASE-DB
// match the Theorem 13 lower bound of Ω(d/ε)).
type ReleaseDB struct{}

// Name implements Sketcher.
func (ReleaseDB) Name() string { return "release-db" }

// SpaceBits implements Sketcher: n·d bits plus the fixed header.
func (ReleaseDB) SpaceBits(n, d int, p Params) float64 {
	return float64(tagBits+paramsBits+64) + float64(n)*float64(d)
}

// Sketch implements Sketcher.
func (ReleaseDB) Sketch(db *dataset.Database, p Params) (Sketch, error) {
	if err := checkDims(db, p); err != nil {
		return nil, err
	}
	// The clone drops any column index; rebuild it so queries run on
	// the fused vertical path instead of falling back to row scans
	// (whose internal sharding would nest under the batched Querier
	// fan-out and oversubscribe the CPUs).
	clone := db.Clone()
	clone.BuildColumnIndex()
	return &releaseDBSketch{db: clone, params: p}, nil
}

type releaseDBSketch struct {
	db     *dataset.Database
	params Params
}

func (s *releaseDBSketch) Name() string   { return "release-db" }
func (s *releaseDBSketch) Params() Params { return s.params }
func (s *releaseDBSketch) NumAttrs() int  { return s.db.NumCols() }

// Estimate returns the exact frequency f_T(D).
func (s *releaseDBSketch) Estimate(t dataset.Itemset) float64 {
	return s.db.Frequency(t)
}

// Frequent returns the exact indicator: since estimates are exact, any
// threshold in (ε/2, ε] validates Definitions 1/3; we use 3ε/4.
func (s *releaseDBSketch) Frequent(t dataset.Itemset) bool {
	return s.Estimate(t) >= indicatorThreshold(s.params.Eps)
}

func (s *releaseDBSketch) SizeBits() int64 { return MarshaledSizeBits(s) }

func (s *releaseDBSketch) MarshalBits(w bitvec.BitWriter) {
	w.WriteUint(tagReleaseDB, tagBits)
	marshalParams(w, s.params)
	s.db.MarshalBits(w)
}

func unmarshalReleaseDB(r bitvec.BitReader) (Sketch, error) {
	p, err := unmarshalParams(r)
	if err != nil {
		return nil, err
	}
	db, err := dataset.UnmarshalBits(r)
	if err != nil {
		return nil, err
	}
	db.BuildColumnIndex()
	return &releaseDBSketch{db: db, params: p}, nil
}

var (
	_ Sketcher        = ReleaseDB{}
	_ EstimatorSketch = (*releaseDBSketch)(nil)
)
