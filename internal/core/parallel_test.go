package core

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// parallelTestDB is large enough that Subsample overrides spanning
// several buildChunkRows chunks exercise the sharded build.
func parallelTestDB(t testing.TB, n, d int) *dataset.Database {
	t.Helper()
	r := rng.New(7)
	return dataset.GenUniform(r, n, d, 0.2)
}

func marshalBytes(t testing.TB, s Sketch) []byte {
	t.Helper()
	var w bitvec.Writer
	s.MarshalBits(&w)
	return w.Bytes()
}

// TestConstructionDeterministicAcrossWorkers asserts the central
// contract of the parallel builders: for a fixed seed, serial and
// parallel construction produce bit-identical sketches, for every
// sketch type that uses the worker pool.
func TestConstructionDeterministicAcrossWorkers(t *testing.T) {
	defer SetBuildWorkers(0)
	db := parallelTestDB(t, 4000, 32)
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForEach, Task: Estimator}
	pa := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Estimator}
	cases := []struct {
		name string
		sk   Sketcher
		p    Params
	}{
		// SampleOverride of 3 chunks plus a partial tail, so parallel
		// schedules genuinely interleave.
		{"subsample", Subsample{Seed: 11, SampleOverride: 3*buildChunkRows + 100}, p},
		{"importance", ImportanceSample{Seed: 12, SampleOverride: 2*buildChunkRows + 33}, p},
		{"median", MedianAmplifier{Base: Subsample{Seed: 13, SampleOverride: 500}, CopiesOverride: 9}, pa},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var ref []byte
			for _, workers := range []int{1, 2, 8} {
				SetBuildWorkers(workers)
				s, err := c.sk.Sketch(db, c.p)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				b := marshalBytes(t, s)
				if ref == nil {
					ref = b
					continue
				}
				if !bytes.Equal(ref, b) {
					t.Fatalf("workers=%d produced different bits than workers=1", workers)
				}
			}
		})
	}
}

// TestMarshalRoundTripAllSketchTypes round-trips every sketch type in
// the package through its bit encoding and requires the re-marshaled
// bytes to be identical — a stronger check than comparing query
// answers, and one that covers the arena-backed ImportanceSample
// (whose estimates may legitimately drift by the 2^-9 weight
// quantization, but whose encoding must be a fixed point).
func TestMarshalRoundTripAllSketchTypes(t *testing.T) {
	db := parallelTestDB(t, 600, 12)
	pEach := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForEach, Task: Estimator}
	pAllE := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Estimator}
	pAllI := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Indicator}
	cases := []struct {
		name string
		sk   Sketcher
		p    Params
	}{
		{"release-db", ReleaseDB{}, pAllE},
		{"release-answers-indicator", ReleaseAnswers{}, pAllI},
		{"release-answers-estimator", ReleaseAnswers{}, pAllE},
		{"subsample", Subsample{Seed: 3, SampleOverride: 200}, pEach},
		{"importance-sample", ImportanceSample{Seed: 4, SampleOverride: 150}, pEach},
		{"median-amplify", MedianAmplifier{Base: Subsample{Seed: 5, SampleOverride: 100}, CopiesOverride: 5}, pAllE},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := c.sk.Sketch(db, c.p)
			if err != nil {
				t.Fatal(err)
			}
			var w bitvec.Writer
			s.MarshalBits(&w)
			if int64(w.BitLen()) != s.SizeBits() {
				t.Fatalf("SizeBits %d != encoded length %d", s.SizeBits(), w.BitLen())
			}
			back, err := UnmarshalSketch(bitvec.NewReader(w.Bytes(), w.BitLen()))
			if err != nil {
				t.Fatal(err)
			}
			if back.Name() != s.Name() {
				t.Fatalf("name changed across round trip: %q vs %q", back.Name(), s.Name())
			}
			if back.Params() != s.Params() {
				t.Fatalf("params changed across round trip: %v vs %v", back.Params(), s.Params())
			}
			var w2 bitvec.Writer
			back.MarshalBits(&w2)
			if w.BitLen() != w2.BitLen() || !bytes.Equal(w.Bytes(), w2.Bytes()) {
				t.Fatal("re-marshaled bytes differ from the original encoding")
			}
		})
	}
}

// TestImportanceIngestAllocationFree pins the arena migration: after
// the fixed-size setup allocations, ingesting each additional sampled
// row (block copy + weight store) allocates nothing, so the per-row
// allocation count amortizes to zero.
func TestImportanceIngestAllocationFree(t *testing.T) {
	db := parallelTestDB(t, 2000, 64)
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForEach, Task: Estimator}
	defer SetBuildWorkers(0)
	SetBuildWorkers(1) // keep goroutine spawns out of the alloc count
	const small, large = 1 << 12, 1 << 16
	build := func(s int) {
		if _, err := (ImportanceSample{Seed: 1, SampleOverride: s}).Sketch(db, p); err != nil {
			t.Fatal(err)
		}
	}
	asmall := testing.AllocsPerRun(3, func() { build(small) })
	alarge := testing.AllocsPerRun(3, func() { build(large) })
	// 16× the rows must not mean 16× the allocations: the per-build
	// allocation count is O(1) in the sample size (weights, cum, idx,
	// one arena), not O(s).
	if alarge > asmall+8 {
		t.Fatalf("ingest allocates per row: %v allocs at s=%d vs %v at s=%d", alarge, large, asmall, small)
	}
}

// TestMedianEstimateAllocationFree pins the pooled estimate buffer:
// amplified queries reuse one per-copy slice from medianEstPool, so in
// steady state a query performs (amortized) zero allocations no matter
// how many copies the sketch runs.
func TestMedianEstimateAllocationFree(t *testing.T) {
	db := parallelTestDB(t, 2000, 32)
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Estimator}
	m := MedianAmplifier{
		Base:           Subsample{Seed: 1, SampleOverride: 256},
		CopiesOverride: 33,
	}
	sk, err := m.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	es := sk.(EstimatorSketch)
	T := dataset.MustItemset(3, 17)
	es.Estimate(T) // warm the pool
	// A small slack absorbs the rare pool miss after a GC cycle; the
	// pre-pool behaviour (one 33-element slice per query) would fail.
	if allocs := testing.AllocsPerRun(200, func() { es.Estimate(T) }); allocs > 0.5 {
		t.Fatalf("amplified Estimate allocates %v per query; want amortized 0", allocs)
	}
}

// TestWeightPanicPropagatesToCaller asserts that a panic in a
// user-supplied Weight function surfaces on the goroutine that called
// Sketch — recoverable by the caller — even when the weight pass runs
// on worker goroutines.
func TestWeightPanicPropagatesToCaller(t *testing.T) {
	defer SetBuildWorkers(0)
	SetBuildWorkers(4)
	db := parallelTestDB(t, 3*buildChunkRows, 8)
	p := Params{K: 1, Eps: 0.1, Delta: 0.1}
	is := ImportanceSample{Seed: 1, SampleOverride: 10,
		Weight: func(*bitvec.Vector) float64 { panic("boom") }}
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("expected to recover the weight panic, got %v", r)
		}
	}()
	_, _ = is.Sketch(db, p)
	t.Fatal("Sketch should have panicked")
}

// TestUnmarshalImportanceCorruptHeader asserts a corrupt stream that
// declares a huge column width fails cleanly before allocating a row
// of that width.
func TestUnmarshalImportanceCorruptHeader(t *testing.T) {
	var w bitvec.Writer
	w.WriteUint(tagImportance, tagBits)
	marshalParams(&w, Params{K: 1, Eps: 0.1, Delta: 0.1})
	w.WriteUint(1<<31, 32)                 // d ~ 2 billion columns
	w.WriteUint(100, 64)                   // n
	w.WriteUint(math.Float64bits(100), 64) // total weight
	w.WriteUint(3, 32)                     // claims 3 rows
	w.WriteUint(quantizeWeight(1), weightBits)
	w.WriteUint(0xDEAD, 16) // a few junk bits, nowhere near d
	if _, err := UnmarshalSketch(bitvec.NewReader(w.Bytes(), w.BitLen())); err == nil {
		t.Fatal("corrupt importance header must fail to unmarshal")
	}
}

// TestGrowMatchesIncrementalAppend pins dataset.Grow (the pre-sizing
// half of the parallel build) against the incremental append path.
func TestGrowMatchesIncrementalAppend(t *testing.T) {
	src := parallelTestDB(t, 300, 20)
	inc := dataset.NewDatabase(20)
	for i := 0; i < src.NumRows(); i++ {
		inc.CopyRowFrom(src, i)
	}
	grown := dataset.NewDatabase(20)
	grown.Grow(src.NumRows())
	for i := 0; i < src.NumRows(); i++ {
		copy(grown.RowWords(i), src.RowWords(i))
	}
	if grown.NumRows() != inc.NumRows() {
		t.Fatalf("row count %d vs %d", grown.NumRows(), inc.NumRows())
	}
	for i := 0; i < src.NumRows(); i++ {
		if !bytes.Equal(wordsAsBytes(grown.RowWords(i)), wordsAsBytes(inc.RowWords(i))) {
			t.Fatalf("row %d differs", i)
		}
	}
}

func wordsAsBytes(w []uint64) []byte {
	out := make([]byte, 0, len(w)*8)
	for _, x := range w {
		for s := 0; s < 64; s += 8 {
			out = append(out, byte(x>>s))
		}
	}
	return out
}
