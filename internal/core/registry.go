package core

import (
	"fmt"
	"sort"

	"repro/internal/bitvec"
)

// The sketch-kind registry maps the wire kind byte (which mirrors the
// payload's leading type tag) to everything the envelope, Querier and
// service layers need to dispatch on a sketch family: a stable name, a
// payload decoder, a value matcher, and an optional merge. Kinds
// register themselves from init functions — the built-in families below
// in this package, out-of-core families (internal/countsketch) from
// their own package — so adding a family is a registration plus its own
// file, never an edit to a central switch.
//
// Registration is init-time only: RegisterKind must not be called after
// package initialization, which is what lets every lookup run without a
// lock on the query hot path.

// KindTagBits is the bit width of the payload's leading type tag. A
// MarshalBits implementation writes its registered kind in this many
// bits before its body; UnmarshalSketch consumes the tag and hands the
// rest of the stream to the registered Decode.
const KindTagBits = tagBits

// MaxSketchKinds is the size of the kind space (the tag is KindTagBits
// wide, so kind bytes are 0..MaxSketchKinds-1).
const MaxSketchKinds = 1 << tagBits

// KindSpec describes one registered sketch family.
type KindSpec struct {
	// Kind is the wire kind byte, equal to the payload type tag.
	Kind uint8
	// Name is the family's wire name (e.g. "subsample",
	// "release-answers-estimator"). Unlike Sketch.Name it distinguishes
	// indicator/estimator variants that share an algorithm name.
	Name string
	// Decode reads the payload body that follows the type tag (the tag
	// itself is consumed by UnmarshalSketch). Failures are wrapped in
	// ErrCorruptSketch by the caller.
	Decode func(r bitvec.BitReader) (Sketch, error)
	// Matches reports whether a sketch value belongs to this kind; it
	// is how Marshal recovers the kind byte for an arbitrary Sketch.
	// Registered matchers must be mutually exclusive.
	Matches func(s Sketch) bool
	// Merge combines two sketches of this kind into one covering both
	// streams, without mutating either input. Nil when the family does
	// not support merging.
	Merge func(a, b Sketch) (Sketch, error)
}

var kindRegistry [MaxSketchKinds]*KindSpec

// RegisterKind adds a sketch family to the registry. It is intended to
// be called from init functions only and panics on an invalid or
// duplicate registration — both are programming errors, not inputs.
func RegisterKind(spec KindSpec) {
	if int(spec.Kind) >= MaxSketchKinds {
		panic(fmt.Sprintf("core: RegisterKind(%q): kind %d exceeds the %d-bit tag space", spec.Name, spec.Kind, tagBits))
	}
	if spec.Name == "" || spec.Decode == nil || spec.Matches == nil {
		panic(fmt.Sprintf("core: RegisterKind(%d): Name, Decode and Matches are required", spec.Kind))
	}
	if prev := kindRegistry[spec.Kind]; prev != nil {
		panic(fmt.Sprintf("core: RegisterKind(%q): kind %d already registered as %q", spec.Name, spec.Kind, prev.Name))
	}
	for _, other := range kindRegistry {
		if other != nil && other.Name == spec.Name {
			panic(fmt.Sprintf("core: RegisterKind(%q): name already registered as kind %d", spec.Name, other.Kind))
		}
	}
	s := spec
	kindRegistry[spec.Kind] = &s
}

// KindSpecOf returns the registered spec for a kind byte.
func KindSpecOf(kind uint8) (KindSpec, bool) {
	if int(kind) >= MaxSketchKinds || kindRegistry[kind] == nil {
		return KindSpec{}, false
	}
	return *kindRegistry[kind], true
}

// KindOf maps a sketch value back to its registered kind byte, the
// inverse of the envelope's kind dispatch. The second result is false
// for sketch types no registered family matches.
func KindOf(s Sketch) (uint8, bool) {
	for _, spec := range kindRegistry {
		if spec != nil && spec.Matches(s) {
			return spec.Kind, true
		}
	}
	return 0, false
}

// Kinds returns the registered kind specs in ascending kind order.
func Kinds() []KindSpec {
	out := make([]KindSpec, 0, MaxSketchKinds)
	for _, spec := range kindRegistry {
		if spec != nil {
			out = append(out, *spec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// MergeSketches combines two sketches of the same registered kind via
// the family's Merge, without mutating either input. Sketches of
// different (or unregistered) kinds fail with ErrInvalidParams; a kind
// that does not support merging fails with ErrTaskMismatch.
func MergeSketches(a, b Sketch) (Sketch, error) {
	ka, aok := KindOf(a)
	kb, bok := KindOf(b)
	if !aok || !bok {
		return nil, fmt.Errorf("%w: cannot merge unregistered sketch type %T", ErrInvalidParams, pick(!aok, a, b))
	}
	if ka != kb {
		return nil, fmt.Errorf("%w: cannot merge sketch kinds %q and %q", ErrInvalidParams, kindRegistry[ka].Name, kindRegistry[kb].Name)
	}
	spec := kindRegistry[ka]
	if spec.Merge == nil {
		return nil, fmt.Errorf("%w: sketch kind %q does not support merging", ErrTaskMismatch, spec.Name)
	}
	return spec.Merge(a, b)
}

func pick(cond bool, a, b Sketch) Sketch {
	if cond {
		return a
	}
	return b
}

// MarshalParams writes the standard Params header every sketch payload
// embeds after its type tag. Exported for out-of-core sketch families;
// UnmarshalParams is its inverse.
func MarshalParams(w bitvec.BitWriter, p Params) { marshalParams(w, p) }

// UnmarshalParams reads a Params header written by MarshalParams and
// validates it.
func UnmarshalParams(r bitvec.BitReader) (Params, error) { return unmarshalParams(r) }

// The built-in families. Tag values predate the registry and are the
// wire format's kind bytes; they must never be renumbered.
func init() {
	isEstimator := func(s Sketch) bool { _, ok := s.(EstimatorSketch); return ok }
	RegisterKind(KindSpec{
		Kind:    tagReleaseDB,
		Name:    "release-db",
		Decode:  unmarshalReleaseDB,
		Matches: func(s Sketch) bool { return s.Name() == "release-db" },
	})
	RegisterKind(KindSpec{
		Kind:    tagReleaseAnswersIndicator,
		Name:    "release-answers-indicator",
		Decode:  unmarshalReleaseAnswersIndicator,
		Matches: func(s Sketch) bool { return s.Name() == "release-answers" && !isEstimator(s) },
	})
	RegisterKind(KindSpec{
		Kind:    tagReleaseAnswersEstimator,
		Name:    "release-answers-estimator",
		Decode:  unmarshalReleaseAnswersEstimator,
		Matches: func(s Sketch) bool { return s.Name() == "release-answers" && isEstimator(s) },
	})
	RegisterKind(KindSpec{
		Kind:    tagSubsample,
		Name:    "subsample",
		Decode:  unmarshalSubsample,
		Matches: func(s Sketch) bool { return s.Name() == "subsample" },
	})
	RegisterKind(KindSpec{
		Kind:    tagMedian,
		Name:    "median-amplify",
		Decode:  unmarshalMedian,
		Matches: func(s Sketch) bool { return s.Name() == "median-amplify" },
	})
	RegisterKind(KindSpec{
		Kind:    tagImportance,
		Name:    "importance-sample",
		Decode:  unmarshalImportance,
		Matches: func(s Sketch) bool { return s.Name() == "importance-sample" },
	})
}
