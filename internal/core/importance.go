package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// ImportanceSample is the §5 "future work" sketch: uniform sampling is
// optimal on the paper's hard distributions, but the conclusion
// explicitly singles out importance sampling as the natural candidate
// on *structured* databases with non-uniform query loads (the
// direction taken by Lang–Liberty–Shmakov [LLS16]). Price's follow-up
// lower bound for indicator sketches closes the For-Each indicator gap
// the paper left open; see the README's paper↔code map.
//
// Rows are drawn with replacement with probability proportional to a
// weight (default: 1 + |row|, so long rows — the ones that can contain
// any given itemset — are over-sampled), and frequencies are estimated
// with the Horvitz–Thompson correction
//
//	f̂_T = (W / (n·s)) · Σ_j  I{T ⊆ row_j} / w_j,
//
// which is unbiased for every T. On sparse skewed data this cuts the
// variance for the same space; on the paper's hard instances (all rows
// equally weighted) it degenerates to uniform sampling — exactly the
// behaviour the lower bounds require. The E12 ablation measures both.
//
// Like Subsample (and Reservoir in internal/stream), the sampled rows
// live in a contiguous dataset.Database arena with the per-row weights
// stored alongside in one flat []float64: ingesting a sampled row is a
// block copy plus one float store (zero allocations in steady state),
// and the Horvitz–Thompson Estimate walks the arena with the
// allocation-free RowContains test. Construction is parallel: weight
// computation and the sample block copies are sharded across CPUs with
// the deterministic chunk scheme of parallel.go, while the inverse-CDF
// draws stay on a single serial stream so the sketch is a pure
// function of (Seed, db).
type ImportanceSample struct {
	// Seed seeds the sampling randomness.
	Seed uint64
	// SampleOverride, if positive, forces the number of sampled rows
	// instead of the Lemma 9 estimator size.
	SampleOverride int
	// Weight, if non-nil, replaces the default 1+|row| row weight. It
	// must be strictly positive for every row. The function may be
	// called concurrently from several goroutines during construction.
	Weight func(row *bitvec.Vector) float64
}

// Name implements Sketcher.
func (ImportanceSample) Name() string { return "importance-sample" }

// weightBits is the per-row quantized weight width in the encoding.
const weightBits = 16

// SpaceBits implements Sketcher: each sampled row costs d bits plus a
// quantized weight.
func (is ImportanceSample) SpaceBits(n, d int, p Params) float64 {
	s := is.SampleOverride
	if s <= 0 {
		s = SampleSize(d, p)
	}
	return float64(tagBits+paramsBits+64+64+64) + float64(s)*float64(d+weightBits)
}

// rowWeights fills weights[i] with the weight of row i of db, sharding
// the rows across the build workers. The default 1+|row| weight is one
// fused popcount over the row's arena words; a custom Weight function
// sees a read-only Vector view of the row.
func (is ImportanceSample) rowWeights(db *dataset.Database, weights []float64, workers int) {
	if is.Weight == nil {
		runRowChunksN(workers, len(weights), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				weights[i] = 1 + float64(bitvec.CountWords(db.RowWords(i)))
			}
		})
		return
	}
	d := db.NumCols()
	runRowChunksN(workers, len(weights), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := bitvec.Wrap(d, db.RowWords(i))
			weights[i] = is.Weight(&v)
		}
	})
}

// Sketch implements Sketcher.
func (is ImportanceSample) Sketch(db *dataset.Database, p Params) (Sketch, error) {
	return is.sketchCtx(context.Background(), db, p, BuildWorkers())
}

// sketchCtx is Sketch with an explicit worker budget and a context
// checked between construction chunks.
func (is ImportanceSample) sketchCtx(ctx context.Context, db *dataset.Database, p Params, workers int) (Sketch, error) {
	if err := checkDims(db, p); err != nil {
		return nil, err
	}
	n := db.NumRows()
	s := is.SampleOverride
	if s <= 0 {
		s = SampleSize(db.NumCols(), p)
	}
	sk := &importanceSketch{
		d:      db.NumCols(),
		n:      int64(n),
		params: p,
		sample: dataset.NewDatabase(db.NumCols()),
	}
	if n == 0 {
		return sk, nil
	}
	// Per-row weights (computed once, in parallel) and their cumulative
	// sums for inverse-CDF sampling; validation happens on the serial
	// summation pass so the first bad row wins deterministically.
	weights := make([]float64, n)
	is.rowWeights(db, weights, workers)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cum := make([]float64, n)
	total := 0.0
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: importance weight %g for row %d must be positive and finite", ErrInvalidParams, w, i)
		}
		total += w
		cum[i] = total
	}
	sk.totalWeight = total
	// The s draws consume a single serial RNG stream (so the sketch is
	// reproducible independent of the worker count); the block copies
	// of the drawn rows into the sample arena are sharded across CPUs.
	r := rng.New(is.Seed)
	idx := make([]int, s)
	for j := range idx {
		u := r.Float64() * total
		i := sort.SearchFloat64s(cum, u)
		if i >= n {
			i = n - 1
		}
		idx[j] = i
	}
	sk.weights = make([]float64, s)
	sk.sample.Grow(s)
	runRowChunksN(workers, s, func(_, lo, hi int) {
		if ctx.Err() != nil {
			return
		}
		for j := lo; j < hi; j++ {
			copy(sk.sample.RowWords(j), db.RowWords(idx[j]))
			sk.weights[j] = weights[idx[j]]
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sk, nil
}

// importanceSketch stores the sampled rows in a contiguous Database
// arena with the per-row Horvitz–Thompson weights alongside; weights[j]
// is the sampling weight of sample row j.
type importanceSketch struct {
	d           int
	n           int64
	totalWeight float64
	sample      *dataset.Database
	weights     []float64
	params      Params
}

func (s *importanceSketch) Name() string   { return "importance-sample" }
func (s *importanceSketch) Params() Params { return s.params }
func (s *importanceSketch) NumAttrs() int  { return s.d }

// Estimate returns the Horvitz–Thompson frequency estimate, clamped to
// [0, 1]. The pass over the sample is allocation-free: each row is a
// RowContains bit test against the arena, no indicator vector is
// materialized.
func (s *importanceSketch) Estimate(t dataset.Itemset) float64 {
	m := s.sample.NumRows()
	if m == 0 || s.n == 0 {
		return 0
	}
	sum := 0.0
	for j := 0; j < m; j++ {
		if s.sample.RowContains(j, t) {
			sum += 1 / s.weights[j]
		}
	}
	f := s.totalWeight * sum / (float64(s.n) * float64(m))
	if f > 1 {
		return 1
	}
	return f
}

func (s *importanceSketch) Frequent(t dataset.Itemset) bool {
	return s.Estimate(t) >= indicatorThreshold(s.params.Eps)
}

// SampleRows returns the number of sampled rows stored in the sketch.
func (s *importanceSketch) SampleRows() int { return s.sample.NumRows() }

func (s *importanceSketch) SizeBits() int64 { return MarshaledSizeBits(s) }

func (s *importanceSketch) MarshalBits(w bitvec.BitWriter) {
	w.WriteUint(tagImportance, tagBits)
	marshalParams(w, s.params)
	w.WriteUint(uint64(s.d), 32)
	w.WriteUint(uint64(s.n), 64)
	w.WriteUint(math.Float64bits(s.totalWeight), 64)
	w.WriteUint(uint64(s.sample.NumRows()), 32)
	// Weights are quantized to weightBits on a log scale; each row's
	// bits follow verbatim, streamed straight from the arena.
	for j := 0; j < s.sample.NumRows(); j++ {
		w.WriteUint(quantizeWeight(s.weights[j]), weightBits)
		bitvec.WriteWords(w, s.sample.RowWords(j), s.d)
	}
}

// Weight quantization: 16-bit fixed point of log2(w) in [-64, 64).
func quantizeWeight(w float64) uint64 {
	l := math.Log2(w)
	q := int64(math.Round((l + 64) * 512)) // step = 1/512 in log2
	if q < 0 {
		q = 0
	}
	if q >= 1<<weightBits {
		q = 1<<weightBits - 1
	}
	return uint64(q)
}

func dequantizeWeight(q uint64) float64 {
	return math.Exp2(float64(q)/512 - 64)
}

func unmarshalImportance(r bitvec.BitReader) (Sketch, error) {
	p, err := unmarshalParams(r)
	if err != nil {
		return nil, err
	}
	d, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	n, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	twBits, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	cnt, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	if d == 0 {
		return nil, fmt.Errorf("%w: importance sketch with zero columns", ErrCorruptSketch)
	}
	s := &importanceSketch{
		d:           int(d),
		n:           int64(n),
		totalWeight: math.Float64frombits(twBits),
		params:      p,
		sample:      dataset.NewDatabase(int(d)),
	}
	// Pre-size for the declared row count, capped by what the stream
	// can actually hold so a corrupt header cannot force a huge
	// allocation.
	if maxRows := uint64(r.Remaining()) / (d + weightBits); cnt <= maxRows {
		s.sample.Reserve(int(cnt))
		s.weights = make([]float64, 0, cnt)
	}
	for j := uint64(0); j < cnt; j++ {
		q, err := r.ReadUint(weightBits)
		if err != nil {
			return nil, err
		}
		// The row's d bits must still be in the stream before the row
		// is allocated — otherwise a corrupt header declaring a huge d
		// would allocate a ~d-bit row just to fail the read after it.
		if uint64(r.Remaining()) < d {
			return nil, fmt.Errorf("%w: importance sketch truncated at row %d", ErrCorruptSketch, j)
		}
		s.sample.Grow(1)
		if err := bitvec.ReadWords(r, s.sample.RowWords(int(j)), int(d)); err != nil {
			return nil, err
		}
		s.weights = append(s.weights, dequantizeWeight(q))
	}
	return s, nil
}

var (
	_ Sketcher        = ImportanceSample{}
	_ EstimatorSketch = (*importanceSketch)(nil)
)
