package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// ImportanceSample is the §5 "future work" sketch: uniform sampling is
// optimal on the paper's hard distributions, but the conclusion
// explicitly singles out importance sampling as the natural candidate
// on *structured* databases with non-uniform query loads (the
// direction taken by Lang–Liberty–Shmakov [LLS16]).
//
// Rows are drawn with replacement with probability proportional to a
// weight (default: 1 + |row|, so long rows — the ones that can contain
// any given itemset — are over-sampled), and frequencies are estimated
// with the Horvitz–Thompson correction
//
//	f̂_T = (W / (n·s)) · Σ_j  I{T ⊆ row_j} / w_j,
//
// which is unbiased for every T. On sparse skewed data this cuts the
// variance for the same space; on the paper's hard instances (all rows
// equally weighted) it degenerates to uniform sampling — exactly the
// behaviour the lower bounds require. The E12 ablation measures both.
type ImportanceSample struct {
	// Seed seeds the sampling randomness.
	Seed uint64
	// SampleOverride, if positive, forces the number of sampled rows
	// instead of the Lemma 9 estimator size.
	SampleOverride int
	// Weight, if non-nil, replaces the default 1+|row| row weight. It
	// must be strictly positive for every row.
	Weight func(row *bitvec.Vector) float64
}

// Name implements Sketcher.
func (ImportanceSample) Name() string { return "importance-sample" }

// weightBits is the per-row quantized weight width in the encoding.
const weightBits = 16

// SpaceBits implements Sketcher: each sampled row costs d bits plus a
// quantized weight.
func (is ImportanceSample) SpaceBits(n, d int, p Params) float64 {
	s := is.SampleOverride
	if s <= 0 {
		s = SampleSize(d, p)
	}
	return float64(tagBits+paramsBits+64+64+64) + float64(s)*float64(d+weightBits)
}

func (is ImportanceSample) weight(row *bitvec.Vector) float64 {
	if is.Weight != nil {
		return is.Weight(row)
	}
	return 1 + float64(row.Count())
}

// Sketch implements Sketcher.
func (is ImportanceSample) Sketch(db *dataset.Database, p Params) (Sketch, error) {
	if err := checkDims(db, p); err != nil {
		return nil, err
	}
	n := db.NumRows()
	s := is.SampleOverride
	if s <= 0 {
		s = SampleSize(db.NumCols(), p)
	}
	sk := &importanceSketch{
		d:      db.NumCols(),
		n:      int64(n),
		params: p,
	}
	if n == 0 {
		return sk, nil
	}
	// Per-row weights (computed once) and their cumulative sums for
	// inverse-CDF sampling.
	weights := make([]float64, n)
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w := is.weight(db.Row(i))
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("core: importance weight %g for row %d must be positive and finite", w, i)
		}
		weights[i] = w
		total += w
		cum[i] = total
	}
	sk.totalWeight = total
	r := rng.New(is.Seed)
	for j := 0; j < s; j++ {
		u := r.Float64() * total
		i := sort.SearchFloat64s(cum, u)
		if i >= n {
			i = n - 1
		}
		sk.rows = append(sk.rows, db.Row(i).Clone())
		sk.weights = append(sk.weights, weights[i])
	}
	return sk, nil
}

type importanceSketch struct {
	d           int
	n           int64
	totalWeight float64
	rows        []*bitvec.Vector
	weights     []float64
	params      Params
}

func (s *importanceSketch) Name() string   { return "importance-sample" }
func (s *importanceSketch) Params() Params { return s.params }

// Estimate returns the Horvitz–Thompson frequency estimate, clamped to
// [0, 1].
func (s *importanceSketch) Estimate(t dataset.Itemset) float64 {
	if len(s.rows) == 0 || s.n == 0 {
		return 0
	}
	ind := t.Indicator(s.d)
	sum := 0.0
	for j, row := range s.rows {
		if row.ContainsAll(ind) {
			sum += 1 / s.weights[j]
		}
	}
	f := s.totalWeight * sum / (float64(s.n) * float64(len(s.rows)))
	if f > 1 {
		return 1
	}
	return f
}

func (s *importanceSketch) Frequent(t dataset.Itemset) bool {
	return s.Estimate(t) >= indicatorThreshold(s.params.Eps)
}

func (s *importanceSketch) SizeBits() int64 { return MarshaledSizeBits(s) }

func (s *importanceSketch) MarshalBits(w *bitvec.Writer) {
	w.WriteUint(tagImportance, tagBits)
	marshalParams(w, s.params)
	w.WriteUint(uint64(s.d), 32)
	w.WriteUint(uint64(s.n), 64)
	w.WriteUint(math.Float64bits(s.totalWeight), 64)
	w.WriteUint(uint64(len(s.rows)), 32)
	// Weights are quantized to weightBits on a log scale relative to
	// the mean weight; row bits follow verbatim.
	for j, row := range s.rows {
		w.WriteUint(quantizeWeight(s.weights[j]), weightBits)
		row.AppendTo(w)
	}
}

// Weight quantization: 16-bit fixed point of log2(w) in [-64, 64).
func quantizeWeight(w float64) uint64 {
	l := math.Log2(w)
	q := int64(math.Round((l + 64) * 512)) // step = 1/512 in log2
	if q < 0 {
		q = 0
	}
	if q >= 1<<weightBits {
		q = 1<<weightBits - 1
	}
	return uint64(q)
}

func dequantizeWeight(q uint64) float64 {
	return math.Exp2(float64(q)/512 - 64)
}

func unmarshalImportance(r *bitvec.Reader) (Sketch, error) {
	p, err := unmarshalParams(r)
	if err != nil {
		return nil, err
	}
	d, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	n, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	twBits, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	cnt, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	s := &importanceSketch{
		d:           int(d),
		n:           int64(n),
		totalWeight: math.Float64frombits(twBits),
		params:      p,
	}
	for j := uint64(0); j < cnt; j++ {
		q, err := r.ReadUint(weightBits)
		if err != nil {
			return nil, err
		}
		row, err := bitvec.ReadVector(r, int(d))
		if err != nil {
			return nil, err
		}
		s.weights = append(s.weights, dequantizeWeight(q))
		s.rows = append(s.rows, row)
	}
	return s, nil
}

var (
	_ Sketcher        = ImportanceSample{}
	_ EstimatorSketch = (*importanceSketch)(nil)
)
