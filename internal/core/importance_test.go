package core

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// structuredDB: most rows are near-empty; the itemsets of interest
// live in a 5% subpopulation of long rows — the regime §5 points at.
func structuredDB(r *rng.RNG, n, d int) *dataset.Database {
	db := dataset.NewDatabase(d)
	for i := 0; i < n; i++ {
		row := bitvec.New(d)
		if r.Bernoulli(0.05) {
			// heavy row: many items, always contains {0,1,2}
			row.Set(0)
			row.Set(1)
			row.Set(2)
			for a := 3; a < d; a++ {
				if r.Bernoulli(0.5) {
					row.Set(a)
				}
			}
		} else if r.Bernoulli(0.5) {
			row.Set(3 + r.Intn(d-3))
		}
		db.AddRow(row)
	}
	return db
}

func TestImportanceUnbiased(t *testing.T) {
	r := rng.New(60)
	db := structuredDB(r, 3000, 16)
	T := dataset.MustItemset(0, 1, 2)
	truth := db.Frequency(T)
	p := Params{K: 3, Eps: 0.05, Delta: 0.1, Mode: ForEach, Task: Estimator}
	sum, trials := 0.0, 60
	for i := 0; i < trials; i++ {
		sk, err := ImportanceSample{Seed: uint64(i + 1), SampleOverride: 200}.Sketch(db, p)
		if err != nil {
			t.Fatal(err)
		}
		sum += sk.(EstimatorSketch).Estimate(T)
	}
	mean := sum / float64(trials)
	if math.Abs(mean-truth) > 0.01 {
		t.Fatalf("HT estimator biased: mean %g vs truth %g", mean, truth)
	}
}

func TestImportanceBeatsUniformOnStructured(t *testing.T) {
	// Same sample budget; importance sampling should have visibly
	// lower RMSE for the heavy-row itemset.
	r := rng.New(61)
	db := structuredDB(r, 5000, 16)
	T := dataset.MustItemset(0, 1, 2)
	truth := db.Frequency(T)
	p := Params{K: 3, Eps: 0.05, Delta: 0.1, Mode: ForEach, Task: Estimator}
	const s, trials = 150, 80
	var mseImp, mseUni float64
	for i := 0; i < trials; i++ {
		imp, err := ImportanceSample{Seed: uint64(1000 + i), SampleOverride: s}.Sketch(db, p)
		if err != nil {
			t.Fatal(err)
		}
		uni, err := Subsample{Seed: uint64(2000 + i), SampleOverride: s}.Sketch(db, p)
		if err != nil {
			t.Fatal(err)
		}
		de := imp.(EstimatorSketch).Estimate(T) - truth
		du := uni.(EstimatorSketch).Estimate(T) - truth
		mseImp += de * de
		mseUni += du * du
	}
	if mseImp >= mseUni {
		t.Fatalf("importance MSE %g should beat uniform MSE %g on structured data", mseImp/trials, mseUni/trials)
	}
}

func TestImportanceDegeneratesToUniformOnFlatWeights(t *testing.T) {
	// Constant weights: HT reduces to the plain sample mean.
	r := rng.New(62)
	db := dataset.GenUniform(r, 2000, 10, 0.4)
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForEach, Task: Estimator}
	is := ImportanceSample{Seed: 5, SampleOverride: 500, Weight: func(*bitvec.Vector) float64 { return 1 }}
	sk, err := is.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	T := dataset.MustItemset(1, 4)
	if math.Abs(sk.(EstimatorSketch).Estimate(T)-db.Frequency(T)) > 0.08 {
		t.Fatalf("flat-weight estimate %g too far from %g", sk.(EstimatorSketch).Estimate(T), db.Frequency(T))
	}
}

func TestImportanceRejectsBadWeights(t *testing.T) {
	db := dataset.NewDatabase(4)
	db.AddRowAttrs(0)
	p := Params{K: 1, Eps: 0.1, Delta: 0.1}
	is := ImportanceSample{Seed: 1, SampleOverride: 5, Weight: func(*bitvec.Vector) float64 { return 0 }}
	if _, err := is.Sketch(db, p); err == nil {
		t.Error("zero weight should be rejected")
	}
	is.Weight = func(*bitvec.Vector) float64 { return math.Inf(1) }
	if _, err := is.Sketch(db, p); err == nil {
		t.Error("infinite weight should be rejected")
	}
}

func TestImportanceSerializationRoundTrip(t *testing.T) {
	r := rng.New(63)
	db := structuredDB(r, 1000, 12)
	p := Params{K: 2, Eps: 0.05, Delta: 0.1, Mode: ForEach, Task: Estimator}
	sk, err := ImportanceSample{Seed: 9, SampleOverride: 100}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	var w bitvec.Writer
	sk.MarshalBits(&w)
	if int64(w.BitLen()) != sk.SizeBits() {
		t.Fatalf("SizeBits %d != encoding %d", sk.SizeBits(), w.BitLen())
	}
	got, err := UnmarshalSketch(bitvec.NewReader(w.Bytes(), w.BitLen()))
	if err != nil {
		t.Fatal(err)
	}
	T := dataset.MustItemset(0, 1)
	a := sk.(EstimatorSketch).Estimate(T)
	b := got.(EstimatorSketch).Estimate(T)
	// Weights are quantized at 2^-9 relative resolution in log space.
	if math.Abs(a-b) > 1e-3*(1+math.Abs(a)) {
		t.Fatalf("estimate drifted across serialization: %g vs %g", a, b)
	}
}

func TestImportanceEmptyDB(t *testing.T) {
	db := dataset.NewDatabase(4)
	p := Params{K: 1, Eps: 0.1, Delta: 0.1}
	sk, err := ImportanceSample{Seed: 1, SampleOverride: 5}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if sk.(EstimatorSketch).Estimate(dataset.MustItemset(0)) != 0 {
		t.Error("empty database estimates 0")
	}
}

func TestQuantizeWeightRoundTrip(t *testing.T) {
	for _, w := range []float64{0.001, 0.5, 1, 3.7, 64, 1e6} {
		got := dequantizeWeight(quantizeWeight(w))
		if math.Abs(math.Log2(got)-math.Log2(w)) > 1.0/512 {
			t.Errorf("weight %g round-trips to %g", w, got)
		}
	}
}
