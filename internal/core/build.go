package core

import (
	"context"

	"repro/internal/dataset"
)

// ctxSketcher is implemented by sketchers whose construction honors a
// context and an explicit per-build worker budget. The samplers
// (Subsample, ImportanceSample, MedianAmplifier) implement it; the
// deterministic release algorithms build through their plain Sketch
// method, which is fast enough that mid-build cancellation points add
// nothing.
type ctxSketcher interface {
	sketchCtx(ctx context.Context, db *dataset.Database, p Params, workers int) (Sketch, error)
}

// BuildSketch builds s's sketch of db with an explicit per-build worker
// budget (workers ≤ 0 means the process default, BuildWorkers()).
// Construction checks ctx at chunk boundaries: a cancelled context
// aborts the build between chunks (or between amplifier copies) and
// returns ctx.Err(). The worker budget and the context never change the
// constructed bits — only whether and how fast they are produced.
func BuildSketch(ctx context.Context, db *dataset.Database, p Params, s Sketcher, workers int) (Sketch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = BuildWorkers()
	}
	if cs, ok := s.(ctxSketcher); ok {
		return cs.sketchCtx(ctx, db, p, workers)
	}
	sk, err := s.Sketch(db, p)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sk, nil
}

// SeedSketcher returns a copy of s reseeded with seed where the
// algorithm is randomized (Subsample, ImportanceSample, and a
// MedianAmplifier's base); deterministic sketchers are returned
// unchanged.
func SeedSketcher(s Sketcher, seed uint64) Sketcher {
	switch v := s.(type) {
	case Subsample:
		v.Seed = seed
		return v
	case ImportanceSample:
		v.Seed = seed
		return v
	case MedianAmplifier:
		v.Base.Seed = seed
		return v
	}
	return s
}

// AutoSketchCtx is AutoSketch with a context and per-build worker
// budget: it plans (Theorem 12) and builds the cheapest naive sketch.
func AutoSketchCtx(ctx context.Context, db *dataset.Database, p Params, seed uint64, workers int) (Sketch, Plan, error) {
	plan := PlanSketch(db.NumRows(), db.NumCols(), p, seed)
	s, err := BuildSketch(ctx, db, p, plan.Winner, workers)
	return s, plan, err
}
