package core

// Parallel sketch construction.
//
// The paper's central object — the SUBSAMPLE sketch and everything
// built from it — is embarrassingly parallel to construct: sampled rows
// are independent draws, and the Theorem 17 amplifier's sub-sketches
// are independent sketches. The builders in this package fan that work
// out across CPUs while keeping construction bit-for-bit deterministic
// in the seed, independent of GOMAXPROCS, the worker cap, and
// goroutine scheduling.
//
// # Determinism scheme
//
// Work is divided into fixed-size chunks (buildChunkRows sample slots
// per chunk), never into per-worker ranges. A root generator seeded
// with the sketcher's Seed first emits one derived seed per chunk, in
// chunk order, on a single goroutine; each chunk then fills its
// pre-assigned slot range [c·buildChunkRows, (c+1)·buildChunkRows)
// using its own rng.New(seed_c) stream. Because both the chunk
// boundaries and the chunk seeds are functions of (Seed, total rows)
// alone, any schedule — serial, 2 workers, 64 workers — writes the
// same bits to the same slots, which the determinism tests assert by
// comparing Marshal output across worker counts.
//
// MedianAmplifier uses the same pattern one level up: per-copy seeds
// are drawn serially from the base seed (one Uint64 per copy, exactly
// the derivation the serial builder used), then the independent copies
// are built concurrently and stored at their drawn index.
//
// # Worker pool
//
// runParallel is a minimal errgroup-style pool: min(BuildWorkers(),
// tasks) goroutines pull task indices from an atomic counter until
// exhausted. Nested fan-outs split the budget explicitly: the
// amplifier gives each of its `outer` copy workers a budget of
// BuildWorkers()/outer for the copy's inner Subsample build (and
// single-chunk builds run inline with no goroutine at all), so the
// two levels never multiply into more than ~BuildWorkers() runnable
// goroutines.
//
// As with the query-side sharding (see internal/dataset), the parallel
// build only wins wall-clock with GOMAXPROCS > 1; on the single-CPU CI
// container it degrades gracefully to the serial path plus a few
// goroutine spawns per build.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// buildChunkRows is the number of sample slots per deterministic
// construction chunk. It balances scheduling granularity (enough chunks
// to keep workers busy) against per-chunk overhead (one derived seed
// and one rng.New per chunk); samples at or below this size build
// inline on the calling goroutine.
const buildChunkRows = 4096

// buildWorkerCap caps construction parallelism; 0 means GOMAXPROCS.
var buildWorkerCap atomic.Int32

// SetBuildWorkers caps the number of goroutines sketch construction may
// use. k ≤ 0 restores the default (GOMAXPROCS). The cap is global to
// the package; it changes only wall-clock behaviour, never the
// constructed bits (see the determinism scheme above).
func SetBuildWorkers(k int) {
	if k < 0 {
		k = 0
	}
	buildWorkerCap.Store(int32(k))
}

// BuildWorkers returns the effective construction worker count.
func BuildWorkers() int {
	w := int(buildWorkerCap.Load())
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// runParallel executes fn(i) for every i in [0, tasks), fanning out
// across at most BuildWorkers() goroutines. With one worker (or one
// task) it runs inline on the calling goroutine. fn must be safe to
// call concurrently for distinct i.
func runParallel(tasks int, fn func(i int)) {
	runParallelN(BuildWorkers(), tasks, fn)
}

// runParallelN is runParallel with an explicit worker budget. Nested
// fan-outs (MedianAmplifier copies that each build a Subsample) split
// the BuildWorkers() budget across levels through this entry point
// instead of both levels claiming the full budget.
func runParallelN(workers, tasks int, fn func(i int)) {
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for i := 0; i < tasks; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	// A panicking task (e.g. a user-supplied ImportanceSample.Weight
	// function) must not kill the process from a worker goroutine: the
	// first panic value is captured and re-thrown on the calling
	// goroutine, preserving the serial path's recover contract.
	var panicked atomic.Value
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &r)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= tasks || panicked.Load() != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(*r.(*any))
	}
}

// runParallelErr is runParallelN for fallible tasks: it runs fn(i) for
// every i, stops issuing new tasks after the first failure, and
// returns the lowest-index error among the tasks that actually ran.
// Which tasks ran past the first failure depends on scheduling, so
// when distinct tasks can fail with distinct errors the choice of
// reported error is not deterministic — only its presence is.
func runParallelErr(workers, tasks int, fn func(i int) error) error {
	errs := make([]error, tasks)
	var failed atomic.Bool
	runParallelN(workers, tasks, func(i int) {
		if failed.Load() {
			return
		}
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// rowChunks returns the number of buildChunkRows-sized chunks covering
// total rows.
func rowChunks(total int) int {
	return (total + buildChunkRows - 1) / buildChunkRows
}

// runRowChunks splits [0, total) into buildChunkRows-sized chunks and
// runs body(c, lo, hi) for each chunk c covering rows [lo, hi),
// fanning the chunks out across the build workers.
func runRowChunks(total int, body func(c, lo, hi int)) {
	runRowChunksN(BuildWorkers(), total, body)
}

// runRowChunksN is runRowChunks with an explicit worker budget, for
// callers already running inside a fan-out.
func runRowChunksN(workers, total int, body func(c, lo, hi int)) {
	runParallelN(workers, rowChunks(total), func(c int) {
		lo := c * buildChunkRows
		hi := lo + buildChunkRows
		if hi > total {
			hi = total
		}
		body(c, lo, hi)
	})
}
