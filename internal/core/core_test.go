package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/combin"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func validParams() Params {
	return Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForEach, Task: Estimator}
}

func TestParamsValidate(t *testing.T) {
	good := validParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{K: 0, Eps: 0.1, Delta: 0.1},
		{K: 1, Eps: 0, Delta: 0.1},
		{K: 1, Eps: 1, Delta: 0.1},
		{K: 1, Eps: 0.1, Delta: 0},
		{K: 1, Eps: 0.1, Delta: 1},
		{K: 1, Eps: 0.1, Delta: 0.1, Mode: Mode(9)},
		{K: 1, Eps: 0.1, Delta: 0.1, Task: Task(9)},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d (%+v) accepted", i, p)
		}
	}
}

func TestModeTaskStrings(t *testing.T) {
	if ForAll.String() != "ForAll" || ForEach.String() != "ForEach" {
		t.Error("Mode strings wrong")
	}
	if Indicator.String() != "Indicator" || Estimator.String() != "Estimator" {
		t.Error("Task strings wrong")
	}
	if Mode(7).String() == "" || Task(7).String() == "" {
		t.Error("unknown values should still render")
	}
}

func testDB(t *testing.T) *dataset.Database {
	t.Helper()
	r := rng.New(404)
	return dataset.GenPlanted(r, 400, 12, 0.15, []dataset.Plant{
		{Items: dataset.MustItemset(1, 5), Freq: 0.5},
		{Items: dataset.MustItemset(2, 9), Freq: 0.02},
	})
}

func TestReleaseDBExact(t *testing.T) {
	db := testDB(t)
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Estimator}
	s, err := ReleaseDB{}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	es := s.(EstimatorSketch)
	for _, T := range []dataset.Itemset{
		dataset.MustItemset(1, 5),
		dataset.MustItemset(2, 9),
		dataset.MustItemset(0, 11),
	} {
		if got, want := es.Estimate(T), db.Frequency(T); got != want {
			t.Errorf("Estimate(%v) = %g, want exact %g", T, got, want)
		}
	}
	if !s.Frequent(dataset.MustItemset(1, 5)) {
		t.Error("planted frequent pair should be frequent")
	}
	if s.Frequent(dataset.MustItemset(2, 9)) {
		t.Error("rare pair should not be frequent")
	}
	// Cost model must match the real encoding.
	if got, want := float64(s.SizeBits()), (ReleaseDB{}).SpaceBits(db.NumRows(), db.NumCols(), p); got != want {
		t.Errorf("SizeBits = %g, SpaceBits = %g", got, want)
	}
}

func TestReleaseDBIsolatedFromSource(t *testing.T) {
	db := dataset.NewDatabase(4)
	db.AddRowAttrs(0, 1)
	p := Params{K: 1, Eps: 0.5, Delta: 0.1}
	s, err := ReleaseDB{}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	db.AddRowAttrs(2) // mutate source after sketching
	if got := s.(EstimatorSketch).Estimate(dataset.MustItemset(2)); got != 0 {
		t.Errorf("sketch should be a snapshot; Estimate = %g", got)
	}
}

func TestReleaseAnswersIndicator(t *testing.T) {
	db := testDB(t)
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Indicator}
	s, err := ReleaseAnswers{}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	// Must agree with the exact thresholded answer on every itemset.
	thr := indicatorThreshold(p.Eps)
	combin.ForEachSubset(12, 2, func(set []int) bool {
		T := dataset.MustItemset(set...)
		want := db.Frequency(T) >= thr
		if got := s.Frequent(T); got != want {
			t.Errorf("Frequent(%v) = %v, want %v", T, got, want)
		}
		return true
	})
	// Wrong itemset size errors.
	rai := s.(*releaseAnswersIndicator)
	if _, err := rai.FrequentErr(dataset.MustItemset(1, 2, 3)); !errors.Is(err, ErrWrongItemsetSize) {
		t.Errorf("FrequentErr with |T|=3: err = %v, want ErrWrongItemsetSize", err)
	}
	// Size: C(12,2)=66 answer bits + headers.
	got, want := float64(s.SizeBits()), ReleaseAnswers{}.SpaceBits(db.NumRows(), 12, p)
	if got != want {
		t.Errorf("SizeBits = %g, want %g", got, want)
	}
}

func TestReleaseAnswersEstimator(t *testing.T) {
	db := testDB(t)
	p := Params{K: 2, Eps: 0.05, Delta: 0.1, Mode: ForAll, Task: Estimator}
	s, err := ReleaseAnswers{}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	es := s.(EstimatorSketch)
	maxErr := 0.0
	combin.ForEachSubset(12, 2, func(set []int) bool {
		T := dataset.MustItemset(set...)
		e := math.Abs(es.Estimate(T) - db.Frequency(T))
		if e > maxErr {
			maxErr = e
		}
		return true
	})
	if maxErr > p.Eps {
		t.Errorf("quantization error %g exceeds eps %g", maxErr, p.Eps)
	}
	rae := s.(*releaseAnswersEstimator)
	if _, err := rae.EstimateErr(dataset.MustItemset(3)); !errors.Is(err, ErrWrongItemsetSize) {
		t.Errorf("EstimateErr with |T|=1: err = %v", err)
	}
}

func TestReleaseAnswersTooLarge(t *testing.T) {
	db := dataset.NewDatabase(1000)
	db.AddRowAttrs(0)
	p := Params{K: 10, Eps: 0.1, Delta: 0.1}
	if _, err := (ReleaseAnswers{}).Sketch(db, p); err == nil {
		t.Error("C(1000,10) answers should be refused")
	}
}

func TestSubsampleSizes(t *testing.T) {
	// Estimator ForEach is the exact Hoeffding bound.
	p := Params{K: 2, Eps: 0.1, Delta: 0.05, Mode: ForEach, Task: Estimator}
	want := int(math.Ceil(math.Log(2/0.05) / (2 * 0.01)))
	if got := SampleSize(20, p); got != want {
		t.Errorf("ForEach estimator sample = %d, want %d", got, want)
	}
	// ForAll adds ln C(d,k).
	p.Mode = ForAll
	wantAll := int(math.Ceil((math.Log(2/0.05) + combin.LogBinomial(20, 2)) / (2 * 0.01)))
	if got := SampleSize(20, p); got != wantAll {
		t.Errorf("ForAll estimator sample = %d, want %d", got, wantAll)
	}
	// Indicator scales as 1/eps not 1/eps^2.
	pi := Params{K: 2, Eps: 0.01, Delta: 0.05, Mode: ForEach, Task: Indicator}
	pe := Params{K: 2, Eps: 0.01, Delta: 0.05, Mode: ForEach, Task: Estimator}
	if SampleSize(20, pi) >= SampleSize(20, pe) {
		t.Error("indicator sample size should be far below estimator at small eps")
	}
}

func TestSubsampleEstimatorAccuracy(t *testing.T) {
	r := rng.New(2)
	db := dataset.GenUniform(r, 20000, 10, 0.5)
	p := Params{K: 2, Eps: 0.05, Delta: 0.01, Mode: ForAll, Task: Estimator}
	s, err := Subsample{Seed: 7}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	es := s.(EstimatorSketch)
	// With delta=0.01 a single run should satisfy the ForAll guarantee.
	maxErr := 0.0
	combin.ForEachSubset(10, 2, func(set []int) bool {
		T := dataset.MustItemset(set...)
		e := math.Abs(es.Estimate(T) - db.Frequency(T))
		if e > maxErr {
			maxErr = e
		}
		return true
	})
	if maxErr > p.Eps {
		t.Errorf("ForAll estimator max error %g > eps %g", maxErr, p.Eps)
	}
}

func TestSubsampleIndicator(t *testing.T) {
	r := rng.New(3)
	db := dataset.GenPlanted(r, 10000, 16, 0.05, []dataset.Plant{
		{Items: dataset.MustItemset(0, 1), Freq: 0.4},
	})
	p := Params{K: 2, Eps: 0.1, Delta: 0.01, Mode: ForEach, Task: Indicator}
	s, err := Subsample{Seed: 11}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Frequent(dataset.MustItemset(0, 1)) {
		t.Error("planted pair (f≈0.4 > eps) must be frequent")
	}
	// A pair of background attributes has f ≈ 0.0025 << eps/2.
	if s.Frequent(dataset.MustItemset(10, 13)) {
		t.Error("background pair must be infrequent")
	}
}

func TestSubsampleOverrideAndEmptyDB(t *testing.T) {
	db := dataset.NewDatabase(4)
	p := Params{K: 1, Eps: 0.5, Delta: 0.1}
	s, err := Subsample{Seed: 1, SampleOverride: 5}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if s.(*subsampleSketch).SampleRows() != 0 {
		t.Error("sampling an empty database must store no rows")
	}
	if s.(EstimatorSketch).Estimate(dataset.MustItemset(0)) != 0 {
		t.Error("empty sample estimates 0")
	}

	db.AddRowAttrs(0)
	s2, err := Subsample{Seed: 1, SampleOverride: 17}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.(*subsampleSketch).SampleRows(); got != 17 {
		t.Errorf("override sample rows = %d, want 17", got)
	}
}

func TestSubsampleDeterminism(t *testing.T) {
	db := testDB(t)
	p := validParams()
	a, _ := Subsample{Seed: 42}.Sketch(db, p)
	b, _ := Subsample{Seed: 42}.Sketch(db, p)
	var wa, wb bitvec.Writer
	a.MarshalBits(&wa)
	b.MarshalBits(&wb)
	if wa.BitLen() != wb.BitLen() {
		t.Fatal("same seed must give identical sketches")
	}
	ba, bb := wa.Bytes(), wb.Bytes()
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatal("same seed must give identical sketch bytes")
		}
	}
}

func TestSketchSerializationRoundTrip(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		sk Sketcher
		p  Params
	}{
		{ReleaseDB{}, Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Estimator}},
		{ReleaseAnswers{}, Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Indicator}},
		{ReleaseAnswers{}, Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Estimator}},
		{Subsample{Seed: 9}, Params{K: 2, Eps: 0.1, Delta: 0.2, Mode: ForEach, Task: Estimator}},
		{MedianAmplifier{Base: Subsample{Seed: 5}, CopiesOverride: 3}, Params{K: 2, Eps: 0.2, Delta: 0.1, Mode: ForAll, Task: Estimator}},
	}
	queries := []dataset.Itemset{
		dataset.MustItemset(1, 5), dataset.MustItemset(2, 9), dataset.MustItemset(0, 3),
	}
	for _, c := range cases {
		s, err := c.sk.Sketch(db, c.p)
		if err != nil {
			t.Fatalf("%s: %v", c.sk.Name(), err)
		}
		var w bitvec.Writer
		s.MarshalBits(&w)
		if int64(w.BitLen()) != s.SizeBits() {
			t.Errorf("%s: SizeBits %d != encoding %d", c.sk.Name(), s.SizeBits(), w.BitLen())
		}
		got, err := UnmarshalSketch(bitvec.NewReader(w.Bytes(), w.BitLen()))
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", c.sk.Name(), err)
		}
		if got.Params() != s.Params() {
			t.Errorf("%s: params mismatch %v vs %v", c.sk.Name(), got.Params(), s.Params())
		}
		for _, T := range queries {
			if got.Frequent(T) != s.Frequent(T) {
				t.Errorf("%s: Frequent(%v) changed after round trip", c.sk.Name(), T)
			}
			ge, ok1 := got.(EstimatorSketch)
			se, ok2 := s.(EstimatorSketch)
			if ok1 != ok2 {
				t.Fatalf("%s: estimator capability changed", c.sk.Name())
			}
			if ok1 && ge.Estimate(T) != se.Estimate(T) {
				t.Errorf("%s: Estimate(%v) changed after round trip", c.sk.Name(), T)
			}
		}
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	// Empty stream.
	if _, err := UnmarshalSketch(bitvec.NewReader(nil, 0)); err == nil {
		t.Error("empty stream should fail")
	}
	// Unknown tag.
	var w bitvec.Writer
	w.WriteUint(15, tagBits)
	if _, err := UnmarshalSketch(bitvec.NewReader(w.Bytes(), w.BitLen())); err == nil {
		t.Error("unknown tag should fail")
	}
	// Truncated valid sketch.
	db := testDB(t)
	s, err := (Subsample{Seed: 1}).Sketch(db, validParams())
	if err != nil {
		t.Fatal(err)
	}
	var w2 bitvec.Writer
	s.MarshalBits(&w2)
	if _, err := UnmarshalSketch(bitvec.NewReader(w2.Bytes(), w2.BitLen()/2)); err == nil {
		t.Error("truncated sketch should fail")
	}
	// Median sketch claiming zero copies: decodes cleanly bit-wise but
	// would panic on the first query, so the decoder must reject it.
	var w3 bitvec.Writer
	w3.WriteUint(tagMedian, tagBits)
	marshalParams(&w3, Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Estimator})
	w3.WriteUint(math.Float64bits(1.0/3), 64)
	w3.WriteUint(0, 32) // zero copies
	if _, err := UnmarshalSketch(bitvec.NewReader(w3.Bytes(), w3.BitLen())); !errors.Is(err, ErrCorruptSketch) {
		t.Errorf("zero-copy median sketch: err = %v, want ErrCorruptSketch", err)
	}
}

func TestPlannerRegimes(t *testing.T) {
	// Regime 1: tiny n -> RELEASE-DB wins.
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Indicator}
	plan := PlanSketch(5, 64, p, 1)
	if plan.Winner.Name() != "release-db" {
		t.Errorf("tiny n: winner = %s, want release-db", plan.Winner.Name())
	}
	// Regime 2: huge n, tiny eps, small d & k -> RELEASE-ANSWERS wins.
	p2 := Params{K: 2, Eps: 0.0001, Delta: 0.1, Mode: ForAll, Task: Indicator}
	plan2 := PlanSketch(100000000, 16, p2, 1)
	if plan2.Winner.Name() != "release-answers" {
		t.Errorf("tiny eps: winner = %s, want release-answers", plan2.Winner.Name())
	}
	// Regime 3: huge n, moderate eps, large d -> SUBSAMPLE wins.
	p3 := Params{K: 3, Eps: 0.05, Delta: 0.1, Mode: ForAll, Task: Indicator}
	plan3 := PlanSketch(100000000, 1000, p3, 1)
	if plan3.Winner.Name() != "subsample" {
		t.Errorf("large d: winner = %s, want subsample", plan3.Winner.Name())
	}
	// Costs map contains all three.
	if len(plan3.Costs) != 3 {
		t.Errorf("Costs has %d entries", len(plan3.Costs))
	}
}

func TestAutoSketch(t *testing.T) {
	db := testDB(t)
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Estimator}
	s, plan, err := AutoSketch(db, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != plan.Winner.Name() {
		t.Errorf("sketch name %s != plan winner %s", s.Name(), plan.Winner.Name())
	}
}

func TestMedianAmplifier(t *testing.T) {
	r := rng.New(8)
	db := dataset.GenUniform(r, 5000, 8, 0.5)
	p := Params{K: 2, Eps: 0.08, Delta: 0.05, Mode: ForAll, Task: Estimator}
	m := MedianAmplifier{Base: Subsample{Seed: 21}}
	s, err := m.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	ms := s.(*medianSketch)
	if ms.NumCopies() != Copies(8, p) {
		t.Errorf("copies = %d, want %d", ms.NumCopies(), Copies(8, p))
	}
	// The ForAll guarantee should hold on this run.
	es := s.(EstimatorSketch)
	maxErr := 0.0
	combin.ForEachSubset(8, 2, func(set []int) bool {
		T := dataset.MustItemset(set...)
		e := math.Abs(es.Estimate(T) - db.Frequency(T))
		if e > maxErr {
			maxErr = e
		}
		return true
	})
	if maxErr > p.Eps {
		t.Errorf("median-amplified max error %g > eps %g", maxErr, p.Eps)
	}
}

func TestMedianAmplifierRejectsWrongMode(t *testing.T) {
	db := testDB(t)
	m := MedianAmplifier{Base: Subsample{Seed: 1}}
	if _, err := m.Sketch(db, Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForEach, Task: Estimator}); err == nil {
		t.Error("ForEach request should be rejected")
	}
	if _, err := m.Sketch(db, Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Indicator}); err == nil {
		t.Error("Indicator request should be rejected")
	}
	m.BaseDelta = 0.7
	if _, err := m.Sketch(db, Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Estimator}); err == nil {
		t.Error("base delta >= 1/2 should be rejected")
	}
}

func TestMedianEvenCopies(t *testing.T) {
	db := testDB(t)
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForAll, Task: Estimator}
	m := MedianAmplifier{Base: Subsample{Seed: 2}, CopiesOverride: 4}
	s, err := m.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	// Median of an even count is the midpoint — just ensure it's sane.
	e := s.(EstimatorSketch).Estimate(dataset.MustItemset(1, 5))
	if e < 0 || e > 1 {
		t.Errorf("even-copy median estimate %g out of [0,1]", e)
	}
}

func TestCheckDimsKTooLarge(t *testing.T) {
	db := dataset.NewDatabase(3)
	db.AddRowAttrs(0)
	p := Params{K: 4, Eps: 0.1, Delta: 0.1}
	for _, sk := range []Sketcher{ReleaseDB{}, ReleaseAnswers{}, Subsample{}} {
		if _, err := sk.Sketch(db, p); err == nil {
			t.Errorf("%s: k > d should be rejected", sk.Name())
		}
	}
}

func TestSubsampleForEachFailureRate(t *testing.T) {
	// Statistical check of the ForEach estimator guarantee: over many
	// independent sketches, the fraction violating |est-f| <= eps must
	// be at most ~delta.
	r := rng.New(55)
	db := dataset.GenUniform(r, 5000, 6, 0.5)
	p := Params{K: 2, Eps: 0.1, Delta: 0.2, Mode: ForEach, Task: Estimator}
	T := dataset.MustItemset(1, 4)
	f := db.Frequency(T)
	trials, fails := 200, 0
	for i := 0; i < trials; i++ {
		s, err := Subsample{Seed: uint64(i + 1)}.Sketch(db, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.(EstimatorSketch).Estimate(T)-f) > p.Eps {
			fails++
		}
	}
	rate := float64(fails) / float64(trials)
	if rate > p.Delta {
		t.Errorf("ForEach failure rate %g exceeds delta %g", rate, p.Delta)
	}
}
