package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/combin"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// MedianAmplifier implements the Theorem 17 transformation: given any
// For-Each estimator sketching algorithm S with failure probability
// δ₀ < 1/2, run 10·log(C(d,k)/δ) independent copies and answer each
// query with the median of the copies' estimates. A Chernoff bound
// drives the per-query failure probability below δ/C(d,k), and a union
// bound makes all C(d,k) queries simultaneously correct with
// probability 1−δ — a For-All estimator at a multiplicative
// O(k·log(d/k)) space overhead. The paper uses this reduction to carry
// the Theorem 16 For-All lower bound over to the For-Each problem.
type MedianAmplifier struct {
	// Base builds each copy. It is invoked with Mode == ForEach and the
	// base failure probability BaseDelta.
	Base Subsample
	// BaseDelta is each copy's failure probability; it must be < 1/2.
	// Zero selects the default 1/3.
	BaseDelta float64
	// CopiesOverride, if positive, forces the number of copies.
	CopiesOverride int
}

// Name implements Sketcher.
func (MedianAmplifier) Name() string { return "median-amplify" }

// Copies returns the Theorem 17 copy count ⌈10·log₂(C(d,k)/δ)⌉.
func Copies(d int, p Params) int {
	logC := combin.LogBinomial(d, p.K) / math.Ln2
	c := int(math.Ceil(10 * (logC + math.Log2(1/p.Delta))))
	if c < 1 {
		c = 1
	}
	return c
}

func (m MedianAmplifier) baseParams(p Params) Params {
	bd := m.BaseDelta
	if bd == 0 {
		bd = 1.0 / 3
	}
	return Params{K: p.K, Eps: p.Eps, Delta: bd, Mode: ForEach, Task: Estimator}
}

// SpaceBits implements Sketcher: copies × base size plus the header.
func (m MedianAmplifier) SpaceBits(n, d int, p Params) float64 {
	copies := m.CopiesOverride
	if copies <= 0 {
		copies = Copies(d, p)
	}
	return float64(tagBits+paramsBits+32) + float64(copies)*m.Base.SpaceBits(n, d, m.baseParams(p))
}

// Sketch implements Sketcher. The requested params must be
// ForAll/Estimator (that is what the transformation produces).
func (m MedianAmplifier) Sketch(db *dataset.Database, p Params) (Sketch, error) {
	return m.sketchCtx(context.Background(), db, p, BuildWorkers())
}

// sketchCtx is Sketch with an explicit worker budget and a context
// checked between copy builds.
func (m MedianAmplifier) sketchCtx(ctx context.Context, db *dataset.Database, p Params, workers int) (Sketch, error) {
	if err := checkDims(db, p); err != nil {
		return nil, err
	}
	if p.Mode != ForAll || p.Task != Estimator {
		return nil, fmt.Errorf("%w: median amplification produces a ForAll-Estimator sketch; got %v", ErrTaskMismatch, p)
	}
	bd := m.BaseDelta
	if bd == 0 {
		bd = 1.0 / 3
	}
	if bd >= 0.5 {
		return nil, fmt.Errorf("%w: base delta %g must be < 1/2 for the median argument", ErrInvalidParams, bd)
	}
	copies := m.CopiesOverride
	if copies <= 0 {
		copies = Copies(db.NumCols(), p)
	}
	bp := m.baseParams(p)
	// Per-copy seeds are drawn serially from the base seed (the same
	// derivation the serial builder used), then the independent copies
	// are built concurrently and stored at their drawn index —
	// reproducible for any worker count. The worker budget is split
	// across the two levels: outer workers fan out over copies and each
	// copy's inner Subsample build gets the remaining share, so the
	// levels never multiply into more than ~workers runnable
	// goroutines.
	r := rng.New(m.Base.Seed)
	seeds := make([]uint64, copies)
	for i := range seeds {
		seeds[i] = r.Uint64()
	}
	outer := workers
	if outer > copies {
		outer = copies
	}
	if outer < 1 {
		outer = 1
	}
	inner := workers / outer
	if inner < 1 {
		inner = 1
	}
	sk := &medianSketch{params: p, baseDelta: bd, copies: make([]*subsampleSketch, copies)}
	err := runParallelErr(outer, copies, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		base := m.Base
		base.Seed = seeds[i]
		c, err := base.sketchCtx(ctx, db, bp, inner)
		if err != nil {
			return err
		}
		sk.copies[i] = c.(*subsampleSketch)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sk, nil
}

type medianSketch struct {
	params    Params
	baseDelta float64
	copies    []*subsampleSketch
}

func (s *medianSketch) Name() string   { return "median-amplify" }
func (s *medianSketch) Params() Params { return s.params }

// NumAttrs returns the attribute universe of the underlying copies.
func (s *medianSketch) NumAttrs() int {
	if len(s.copies) == 0 {
		return 0
	}
	return s.copies[0].NumAttrs()
}

// medianEstPool recycles the per-query estimate buffer so amplified
// queries stay allocation-free in steady state (amplified sketches run
// tens to hundreds of copies, and mining issues thousands of queries).
var medianEstPool = sync.Pool{New: func() any { return new([]float64) }}

// Estimate returns the median of the copies' estimates. The per-copy
// estimate slice comes from a pool and the in-place sort allocates
// nothing, so repeated queries amortize to zero allocations.
func (s *medianSketch) Estimate(t dataset.Itemset) float64 {
	n := len(s.copies)
	buf := medianEstPool.Get().(*[]float64)
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	ests := (*buf)[:n]
	for i, c := range s.copies {
		ests[i] = c.Estimate(t)
	}
	sort.Float64s(ests)
	var med float64
	if n%2 == 1 {
		med = ests[n/2]
	} else {
		med = (ests[n/2-1] + ests[n/2]) / 2
	}
	medianEstPool.Put(buf)
	return med
}

func (s *medianSketch) Frequent(t dataset.Itemset) bool {
	return s.Estimate(t) >= indicatorThreshold(s.params.Eps)
}

// NumCopies returns the number of independent base sketches stored.
func (s *medianSketch) NumCopies() int { return len(s.copies) }

func (s *medianSketch) SizeBits() int64 { return MarshaledSizeBits(s) }

func (s *medianSketch) MarshalBits(w bitvec.BitWriter) {
	w.WriteUint(tagMedian, tagBits)
	marshalParams(w, s.params)
	w.WriteUint(math.Float64bits(s.baseDelta), 64)
	w.WriteUint(uint64(len(s.copies)), 32)
	for _, c := range s.copies {
		c.MarshalBits(w)
	}
}

func unmarshalMedian(r bitvec.BitReader) (Sketch, error) {
	p, err := unmarshalParams(r)
	if err != nil {
		return nil, err
	}
	bdBits, err := r.ReadUint(64)
	if err != nil {
		return nil, err
	}
	nc, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	// Copies() is always ≥ 1, so a zero copy count can only come from
	// a corrupt stream; without copies the median query would panic.
	if nc == 0 {
		return nil, fmt.Errorf("%w: median sketch with zero copies", ErrCorruptSketch)
	}
	s := &medianSketch{params: p, baseDelta: math.Float64frombits(bdBits)}
	for i := uint64(0); i < nc; i++ {
		c, err := UnmarshalSketch(r)
		if err != nil {
			return nil, err
		}
		sub, ok := c.(*subsampleSketch)
		if !ok {
			return nil, fmt.Errorf("%w: median sketch copy %d has unexpected type %T", ErrCorruptSketch, i, c)
		}
		s.copies = append(s.copies, sub)
	}
	return s, nil
}

var (
	_ Sketcher        = MedianAmplifier{}
	_ EstimatorSketch = (*medianSketch)(nil)
)
