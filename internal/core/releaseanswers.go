package core

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/combin"
	"repro/internal/dataset"
)

// ReleaseAnswers is the precompute-everything algorithm of Definition 7:
// it stores the answer to every one of the C(d,k) possible k-itemset
// queries. For the indicator task it stores one decision bit per
// itemset, |S| = O(C(d,k)); for the estimator task it stores each
// frequency quantized to ⌈log₂(1/ε)⌉+1 bits, |S| = O(C(d,k)·log(1/ε)).
// Answers are indexed by the colexicographic rank of the itemset.
//
// Theorem 12 shows RELEASE-ANSWERS wins when 1/ε is large relative to
// C(d/2, k−1) and k = O(1) — the regime where the Ω(d/ε) lower bound of
// Theorems 13/14 no longer applies.
type ReleaseAnswers struct{}

// Name implements Sketcher.
func (ReleaseAnswers) Name() string { return "release-answers" }

// answerBits is the per-answer cost: 1 for indicators,
// ⌈log₂(1/ε)⌉+1 for quantized estimates.
func answerBits(p Params) int {
	if p.Task == Indicator {
		return 1
	}
	return int(math.Ceil(math.Log2(1/p.Eps))) + 1
}

// SpaceBits implements Sketcher.
func (ReleaseAnswers) SpaceBits(n, d int, p Params) float64 {
	nq := combin.Binomial(d, p.K)
	if nq >= combin.MaxBinomial {
		return math.Inf(1)
	}
	return float64(tagBits+paramsBits+32) + float64(nq)*float64(answerBits(p))
}

// maxEnumerable caps the number of answers RELEASE-ANSWERS will
// materialize; beyond this the algorithm refuses (the planner will have
// chosen another algorithm anyway).
const maxEnumerable = int64(1) << 26

// Sketch implements Sketcher.
func (ReleaseAnswers) Sketch(db *dataset.Database, p Params) (Sketch, error) {
	if err := checkDims(db, p); err != nil {
		return nil, err
	}
	d := db.NumCols()
	nq := combin.Binomial(d, p.K)
	if nq > maxEnumerable {
		return nil, fmt.Errorf("%w: release-answers would store C(%d,%d) = %d answers; too many", ErrInvalidParams, d, p.K, nq)
	}
	if p.Task == Indicator {
		bits := bitvec.New(int(nq))
		thr := indicatorThreshold(p.Eps)
		i := 0
		db.BuildColumnIndex()
		combin.ForEachSubset(d, p.K, func(set []int) bool {
			T := dataset.MustItemset(set...)
			if db.Frequency(T) >= thr {
				bits.Set(i)
			}
			i++
			return true
		})
		return &releaseAnswersIndicator{d: d, bits: bits, params: p}, nil
	}
	q := answerBits(p)
	levels := uint64(1)<<uint(q) - 1
	vals := make([]uint32, nq)
	i := 0
	db.BuildColumnIndex()
	combin.ForEachSubset(d, p.K, func(set []int) bool {
		T := dataset.MustItemset(set...)
		f := db.Frequency(T)
		vals[i] = uint32(math.Round(f * float64(levels)))
		i++
		return true
	})
	return &releaseAnswersEstimator{d: d, qbits: q, vals: vals, params: p}, nil
}

// releaseAnswersIndicator stores one decision bit per k-itemset.
type releaseAnswersIndicator struct {
	d      int
	bits   *bitvec.Vector
	params Params
}

func (s *releaseAnswersIndicator) Name() string   { return "release-answers" }
func (s *releaseAnswersIndicator) Params() Params { return s.params }
func (s *releaseAnswersIndicator) NumAttrs() int  { return s.d }

// Frequent looks up the precomputed decision bit for T. It panics if
// |T| ≠ k, because no answer was stored for other sizes; use
// FrequentErr for a non-panicking variant.
func (s *releaseAnswersIndicator) Frequent(t dataset.Itemset) bool {
	b, err := s.FrequentErr(t)
	if err != nil {
		panic(err)
	}
	return b
}

// FrequentErr is Frequent with an error return for |T| ≠ k.
func (s *releaseAnswersIndicator) FrequentErr(t dataset.Itemset) (bool, error) {
	if t.Len() != s.params.K {
		return false, fmt.Errorf("%w: |T| = %d, sketch k = %d", ErrWrongItemsetSize, t.Len(), s.params.K)
	}
	return s.bits.Get(int(combin.Rank(t.Attrs()))), nil
}

func (s *releaseAnswersIndicator) SizeBits() int64 { return MarshaledSizeBits(s) }

func (s *releaseAnswersIndicator) MarshalBits(w bitvec.BitWriter) {
	w.WriteUint(tagReleaseAnswersIndicator, tagBits)
	marshalParams(w, s.params)
	w.WriteUint(uint64(s.d), 32)
	s.bits.AppendTo(w)
}

func unmarshalReleaseAnswersIndicator(r bitvec.BitReader) (Sketch, error) {
	p, err := unmarshalParams(r)
	if err != nil {
		return nil, err
	}
	d, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	nq := combin.Binomial(int(d), p.K)
	if nq > maxEnumerable {
		return nil, fmt.Errorf("%w: encoded release-answers too large", ErrCorruptSketch)
	}
	// The nq decision bits must still be in the stream before the
	// vector is allocated, so a corrupt header cannot force a large
	// allocation just to fail the read after it.
	if int64(r.Remaining()) < nq {
		return nil, fmt.Errorf("%w: release-answers indicator truncated", ErrCorruptSketch)
	}
	bits, err := bitvec.ReadVector(r, int(nq))
	if err != nil {
		return nil, err
	}
	return &releaseAnswersIndicator{d: int(d), bits: bits, params: p}, nil
}

// releaseAnswersEstimator stores each k-itemset frequency quantized to
// answerBits levels.
type releaseAnswersEstimator struct {
	d      int
	qbits  int
	vals   []uint32
	params Params
}

func (s *releaseAnswersEstimator) Name() string   { return "release-answers" }
func (s *releaseAnswersEstimator) Params() Params { return s.params }
func (s *releaseAnswersEstimator) NumAttrs() int  { return s.d }

// Estimate returns the dequantized stored frequency. It panics if
// |T| ≠ k; use EstimateErr for a non-panicking variant.
func (s *releaseAnswersEstimator) Estimate(t dataset.Itemset) float64 {
	f, err := s.EstimateErr(t)
	if err != nil {
		panic(err)
	}
	return f
}

// EstimateErr is Estimate with an error return for |T| ≠ k.
func (s *releaseAnswersEstimator) EstimateErr(t dataset.Itemset) (float64, error) {
	if t.Len() != s.params.K {
		return 0, fmt.Errorf("%w: |T| = %d, sketch k = %d", ErrWrongItemsetSize, t.Len(), s.params.K)
	}
	levels := float64(uint64(1)<<uint(s.qbits) - 1)
	return float64(s.vals[combin.Rank(t.Attrs())]) / levels, nil
}

func (s *releaseAnswersEstimator) Frequent(t dataset.Itemset) bool {
	return s.Estimate(t) >= indicatorThreshold(s.params.Eps)
}

func (s *releaseAnswersEstimator) SizeBits() int64 { return MarshaledSizeBits(s) }

func (s *releaseAnswersEstimator) MarshalBits(w bitvec.BitWriter) {
	w.WriteUint(tagReleaseAnswersEstimator, tagBits)
	marshalParams(w, s.params)
	w.WriteUint(uint64(s.d), 32)
	for _, v := range s.vals {
		w.WriteUint(uint64(v), s.qbits)
	}
}

func unmarshalReleaseAnswersEstimator(r bitvec.BitReader) (Sketch, error) {
	p, err := unmarshalParams(r)
	if err != nil {
		return nil, err
	}
	d, err := r.ReadUint(32)
	if err != nil {
		return nil, err
	}
	nq := combin.Binomial(int(d), p.K)
	if nq > maxEnumerable {
		return nil, fmt.Errorf("%w: encoded release-answers too large", ErrCorruptSketch)
	}
	q := answerBits(p)
	// All nq quantized answers must still be in the stream before the
	// value table is allocated (same guard as the indicator variant).
	if int64(r.Remaining()) < nq*int64(q) {
		return nil, fmt.Errorf("%w: release-answers estimator truncated", ErrCorruptSketch)
	}
	vals := make([]uint32, nq)
	for i := range vals {
		v, err := r.ReadUint(q)
		if err != nil {
			return nil, err
		}
		vals[i] = uint32(v)
	}
	return &releaseAnswersEstimator{d: int(d), qbits: q, vals: vals, params: p}, nil
}

var (
	_ Sketcher        = ReleaseAnswers{}
	_ Sketch          = (*releaseAnswersIndicator)(nil)
	_ EstimatorSketch = (*releaseAnswersEstimator)(nil)
)
