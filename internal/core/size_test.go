package core

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// TestSubsampleSizeBitsAnalytic pins the analytic SizeBits formula
// against the real encoder, byte for byte, across sample shapes — the
// empty sample, a single row, dense and sparse fills, and the
// full-database sketch path.
func TestSubsampleSizeBitsAnalytic(t *testing.T) {
	p := Params{K: 2, Eps: 0.1, Delta: 0.1, Mode: ForEach, Task: Estimator}
	r := rng.New(3)
	shapes := []struct {
		name string
		d, n int
		fill float64
	}{
		{"empty", 5, 0, 0},
		{"one-row", 5, 1, 0.5},
		{"sparse", 40, 32, 0.05},
		{"dense", 12, 100, 0.9},
		{"wide", 200, 16, 0.3},
	}
	for _, sh := range shapes {
		sample := dataset.NewDatabase(sh.d)
		for i := 0; i < sh.n; i++ {
			var attrs []int
			for a := 0; a < sh.d; a++ {
				if r.Float64() < sh.fill {
					attrs = append(attrs, a)
				}
			}
			sample.AddRowAttrs(attrs...)
		}
		sk, err := SubsampleFromSample(sample, p)
		if err != nil {
			t.Fatalf("%s: %v", sh.name, err)
		}
		var w bitvec.Writer
		sk.MarshalBits(&w)
		if got, want := sk.SizeBits(), int64(w.BitLen()); got != want {
			t.Errorf("%s: analytic SizeBits = %d, encoder wrote %d bits", sh.name, got, want)
		}
		// The analytic path must agree with the counting-writer path it
		// replaced, not just with one encode.
		if got, want := sk.SizeBits(), MarshaledSizeBits(sk); got != want {
			t.Errorf("%s: analytic SizeBits = %d, counting writer says %d", sh.name, got, want)
		}
	}

	// The sketcher entry point (sampled-down database) goes through the
	// same formula.
	db := dataset.NewDatabase(10)
	for i := 0; i < 500; i++ {
		db.AddRowAttrs(i%10, (i*3)%10)
	}
	sk, err := Subsample{}.Sketch(db, p)
	if err != nil {
		t.Fatal(err)
	}
	var w bitvec.Writer
	sk.MarshalBits(&w)
	if got, want := sk.SizeBits(), int64(w.BitLen()); got != want {
		t.Errorf("sketched: analytic SizeBits = %d, encoder wrote %d bits", got, want)
	}
}
