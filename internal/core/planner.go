package core

import (
	"math"

	"repro/internal/dataset"
)

// Plan records the Theorem 12 cost comparison for one parameter point:
// the predicted size of each naive algorithm and the winner.
type Plan struct {
	N, D    int
	Params  Params
	Costs   map[string]float64 // algorithm name -> predicted bits
	Winner  Sketcher
	Minimum float64
}

// PlanSketch evaluates the three naive algorithms' cost model
// (Theorem 12: |S| = O(min{nd, C(d,k)·a, poly(1/ε)·d·log})) and returns
// the cheapest applicable Sketcher.
//
// seed seeds SUBSAMPLE if it wins.
func PlanSketch(n, d int, p Params, seed uint64) Plan {
	cands := []Sketcher{ReleaseDB{}, ReleaseAnswers{}, Subsample{Seed: seed}}
	plan := Plan{N: n, D: d, Params: p, Costs: make(map[string]float64), Minimum: math.Inf(1)}
	for _, c := range cands {
		cost := c.SpaceBits(n, d, p)
		plan.Costs[c.Name()] = cost
		if cost < plan.Minimum {
			plan.Minimum = cost
			plan.Winner = c
		}
	}
	return plan
}

// AutoSketch plans and immediately builds the cheapest sketch of db.
func AutoSketch(db *dataset.Database, p Params, seed uint64) (Sketch, Plan, error) {
	plan := PlanSketch(db.NumRows(), db.NumCols(), p, seed)
	s, err := plan.Winner.Sketch(db, p)
	return s, plan, err
}
