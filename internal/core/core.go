// Package core implements the sketching framework of "Space Lower
// Bounds for Itemset Frequency Sketches" (Liberty, Mitzenmacher, Thaler,
// Ullman; PODS 2016).
//
// The paper studies four sketching problems (Definitions 1–4), indexed
// by a guarantee Mode (ForAll / ForEach) and a Task (Indicator /
// Estimator). A sketch S(D, k, ε, δ) is a bit string from which a query
// procedure Q recovers, for k-itemsets T:
//
//   - Indicator: a bit that must be 1 when f_T > ε and 0 when f_T < ε/2
//     (Definitions 1 and 3);
//   - Estimator: an estimate within ±ε of f_T (Definitions 2 and 4);
//
// with probability 1−δ over the sketching randomness — either
// simultaneously for all k-itemsets (ForAll) or per query (ForEach).
//
// The package provides the paper's three naive algorithms —
// RELEASE-DB (Definition 6), RELEASE-ANSWERS (Definition 7), and
// SUBSAMPLE (Definition 8) with the four Lemma 9 sample-size bounds —
// plus the Theorem 12 planner that picks the smallest of the three, and
// the Theorem 17 median amplification that converts any For-Each
// estimator into a For-All estimator.
//
// Every sketch serializes to a bit stream; SizeBits is the length of
// that stream, which is the paper's space measure |S| (Definition 5).
//
// Sketch construction is parallel and deterministic: Subsample,
// ImportanceSample and MedianAmplifier shard their row draws, block
// copies and sub-sketch builds across CPUs while remaining a pure
// function of (seed, database) — the same seed yields bit-identical
// Marshal output for any GOMAXPROCS or SetBuildWorkers cap. See
// parallel.go for the chunked seeding scheme that makes this hold.
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/dataset"
)

// Mode selects between the paper's "for all" and "for each" success
// guarantees (§1.3).
type Mode int

const (
	// ForEach: each individual query succeeds with probability 1−δ
	// (Definitions 3 and 4).
	ForEach Mode = iota
	// ForAll: with probability 1−δ, all k-itemset queries succeed
	// simultaneously (Definitions 1 and 2).
	ForAll
)

func (m Mode) String() string {
	switch m {
	case ForEach:
		return "ForEach"
	case ForAll:
		return "ForAll"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Task selects between indicator (threshold) and estimator (±ε) queries.
type Task int

const (
	// Indicator answers "is f_T > ε?" with the Definition 1/3 promise.
	Indicator Task = iota
	// Estimator returns f_T ± ε.
	Estimator
)

func (t Task) String() string {
	switch t {
	case Indicator:
		return "Indicator"
	case Estimator:
		return "Estimator"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// Params carries the sketching parameters (k, ε, δ) of Definitions 1–4
// together with the problem variant.
type Params struct {
	K     int     // itemset size k ≥ 1
	Eps   float64 // precision ε ∈ (0, 1)
	Delta float64 // failure probability δ ∈ (0, 1)
	Mode  Mode
	Task  Task
}

// Validate reports whether the parameters are in range. Every failure
// wraps ErrInvalidParams so callers can match with errors.Is.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("%w: k = %d, need k >= 1", ErrInvalidParams, p.K)
	}
	if !(p.Eps > 0 && p.Eps < 1) {
		return fmt.Errorf("%w: eps = %g, need 0 < eps < 1", ErrInvalidParams, p.Eps)
	}
	if !(p.Delta > 0 && p.Delta < 1) {
		return fmt.Errorf("%w: delta = %g, need 0 < delta < 1", ErrInvalidParams, p.Delta)
	}
	if p.Mode != ForEach && p.Mode != ForAll {
		return fmt.Errorf("%w: invalid mode %d", ErrInvalidParams, int(p.Mode))
	}
	if p.Task != Indicator && p.Task != Estimator {
		return fmt.Errorf("%w: invalid task %d", ErrInvalidParams, int(p.Task))
	}
	return nil
}

func (p Params) String() string {
	return fmt.Sprintf("%s-%s(k=%d, eps=%g, delta=%g)", p.Mode, p.Task, p.K, p.Eps, p.Delta)
}

// indicatorThreshold is the decision threshold used by estimate-backed
// indicators. Any threshold in [ε/2+ε', ε−ε'] validates Definitions 1/3
// when estimates have error ε' ≤ ε/4; the midpoint 3ε/4 maximizes slack.
func indicatorThreshold(eps float64) float64 { return 0.75 * eps }

// Sketch is the query side of Definitions 1–4: a summary that answers
// itemset frequency questions and knows its own exact encoded size.
type Sketch interface {
	// Frequent returns the indicator bit for T (Definitions 1 and 3).
	Frequent(t dataset.Itemset) bool
	// NumAttrs returns the size d of the attribute universe the sketch
	// was built over, so downstream consumers (miners, queriers) need
	// no side-channel dimension argument.
	NumAttrs() int
	// SizeBits returns the exact size of MarshalBits' output in bits —
	// the paper's |S(D, k, ε, δ)|.
	SizeBits() int64
	// MarshalBits appends a self-describing encoding of the sketch.
	MarshalBits(w bitvec.BitWriter)
	// Params returns the parameters the sketch was built for.
	Params() Params
	// Name identifies the producing algorithm.
	Name() string
}

// EstimatorSketch is a Sketch that can return frequency estimates
// (Definitions 2 and 4). RELEASE-DB, SUBSAMPLE and the estimator variant
// of RELEASE-ANSWERS implement it; the indicator variant of
// RELEASE-ANSWERS does not (it stores only decision bits).
type EstimatorSketch interface {
	Sketch
	// Estimate returns an approximation of f_T(D).
	Estimate(t dataset.Itemset) float64
}

// Sketcher is the sketching side: an algorithm that compresses a
// database into a Sketch under given parameters.
type Sketcher interface {
	// Name identifies the algorithm ("release-db", "release-answers",
	// "subsample", ...).
	Name() string
	// SpaceBits predicts the serialized sketch size in bits for an n×d
	// database — the cost model of Theorem 12. It may return +Inf when
	// the algorithm is inapplicable (e.g. C(d,k) overflows).
	SpaceBits(n, d int, p Params) float64
	// Sketch builds a sketch of db.
	Sketch(db *dataset.Database, p Params) (Sketch, error)
}

// Sentinel errors of the sketching framework. Every error returned by
// this package wraps one of these (or ErrWrongItemsetSize below), so
// callers dispatch with errors.Is rather than string matching.
var (
	// ErrInvalidParams marks out-of-range sketching parameters or
	// otherwise unusable construction inputs.
	ErrInvalidParams = errors.New("core: invalid sketch parameters")
	// ErrTaskMismatch marks an operation the sketch's Task cannot
	// answer (e.g. Estimate on an indicator-only sketch) or a
	// construction whose parameters request the wrong variant.
	ErrTaskMismatch = errors.New("core: sketch task mismatch")
	// ErrCorruptSketch marks an undecodable serialized sketch.
	ErrCorruptSketch = errors.New("core: corrupt sketch encoding")
)

// ErrWrongItemsetSize is returned (wrapped) when a sketch that only
// covers k-itemsets is queried with |T| ≠ k.
var ErrWrongItemsetSize = errors.New("core: itemset size does not match sketch k")

// checkDims validates db vs params for all sketchers.
func checkDims(db *dataset.Database, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.K > db.NumCols() {
		return fmt.Errorf("%w: k = %d exceeds d = %d columns", ErrInvalidParams, p.K, db.NumCols())
	}
	return nil
}

// paramsBits is the serialized size of a Params header.
const paramsBits = 16 + 64 + 64 + 1 + 1

// ParamsBits is the exact serialized size of a MarshalParams header in
// bits, exported so out-of-core sketch families can compute analytic
// SizeBits formulas without a counting pass.
const ParamsBits = paramsBits

func marshalParams(w bitvec.BitWriter, p Params) {
	w.WriteUint(uint64(p.K), 16)
	w.WriteUint(math.Float64bits(p.Eps), 64)
	w.WriteUint(math.Float64bits(p.Delta), 64)
	w.WriteUint(uint64(p.Mode), 1)
	w.WriteUint(uint64(p.Task), 1)
}

func unmarshalParams(r bitvec.BitReader) (Params, error) {
	var p Params
	k, err := r.ReadUint(16)
	if err != nil {
		return p, err
	}
	eb, err := r.ReadUint(64)
	if err != nil {
		return p, err
	}
	db, err := r.ReadUint(64)
	if err != nil {
		return p, err
	}
	m, err := r.ReadUint(1)
	if err != nil {
		return p, err
	}
	tk, err := r.ReadUint(1)
	if err != nil {
		return p, err
	}
	p = Params{
		K:     int(k),
		Eps:   math.Float64frombits(eb),
		Delta: math.Float64frombits(db),
		Mode:  Mode(m),
		Task:  Task(tk),
	}
	return p, p.Validate()
}

// Sketch type tags used in the serialized header.
const (
	tagReleaseDB = iota
	tagReleaseAnswersIndicator
	tagReleaseAnswersEstimator
	tagSubsample
	tagMedian
	tagImportance
)

const tagBits = 4

// UnmarshalSketch decodes any sketch written by a registered family's
// MarshalBits: it consumes the leading type tag and dispatches to the
// kind's registered decoder. Decoding failures wrap ErrCorruptSketch.
func UnmarshalSketch(r bitvec.BitReader) (Sketch, error) {
	tag, err := r.ReadUint(tagBits)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCorruptSketch, err)
	}
	spec, ok := KindSpecOf(uint8(tag))
	if !ok {
		return nil, fmt.Errorf("%w: unknown sketch tag %d", ErrCorruptSketch, tag)
	}
	s, err := spec.Decode(r)
	// Wrap with %w so stream-level causes (a chunk CRC failure, an
	// io.ErrUnexpectedEOF truncation) stay matchable through the chain.
	if err != nil && !errors.Is(err, ErrCorruptSketch) {
		err = fmt.Errorf("%w: %w", ErrCorruptSketch, err)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// MarshaledSizeBits returns the exact encoded size of s by running its
// encoder against a counting writer — no bytes are materialized.
// Implementations use it to define SizeBits so the reported size can
// never drift from the real encoding, and the streaming marshal uses
// it as the allocation-free sizing pass before the framed encode.
// sizeWriterPool recycles the counting writers: the writer escapes
// through the MarshalBits interface call, so without pooling every
// SizeBits query would pay one allocation.
var sizeWriterPool = sync.Pool{New: func() any { return new(bitvec.SizeWriter) }}

func MarshaledSizeBits(s Sketch) int64 {
	w := sizeWriterPool.Get().(*bitvec.SizeWriter)
	*w = bitvec.SizeWriter{}
	s.MarshalBits(w)
	bits := int64(w.BitLen())
	sizeWriterPool.Put(w)
	return bits
}
