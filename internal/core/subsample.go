package core

import (
	"context"
	"math"

	"repro/internal/bitvec"
	"repro/internal/combin"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// Subsample is the uniform row-sampling algorithm of Definition 8: the
// sketch is s rows drawn uniformly with replacement from D, and queries
// are answered by the empirical frequency on the sample. Lemma 9 gives
// the four sample-size bounds (one per Mode×Task); the paper's central
// result is that, for the right parameter regimes, no sketch of any
// kind can beat this algorithm's space by more than constant or
// iterated-log factors (Theorems 13–17).
type Subsample struct {
	// Seed seeds the sampling randomness; the same seed reproduces the
	// same sketch for the same database.
	Seed uint64
	// SampleOverride, if positive, forces the sample size instead of the
	// Lemma 9 bound. Used by experiments to sweep the space/accuracy
	// trade-off and by the lower-bound attacks to produce deliberately
	// undersized sketches.
	SampleOverride int
}

// Name implements Sketcher.
func (Subsample) Name() string { return "subsample" }

// SampleSize returns the Lemma 9 sample count for the given parameters
// on a d-column database:
//
//	For-Each Indicator:  ⌈32·ln(2/δ)/ε⌉                 (Lemma 10 route)
//	For-Each Estimator:  ⌈ln(2/δ)/(2ε²)⌉                (Lemma 11 route)
//	For-All  Indicator:  ⌈32·ln(2·C(d,k)/δ)/ε⌉          (union bound)
//	For-All  Estimator:  ⌈ln(2·C(d,k)/δ)/(2ε²)⌉         (union bound)
//
// The indicator constant is 32 rather than the paper's simplified 16:
// our query procedure thresholds the sample frequency at 3ε/4, and the
// two-sided Chernoff argument for that threshold is
//
//	f_T ≥ ε:   P[est ≤ 3ε/4] ≤ exp(−(1/4)²·sε/2) = exp(−sε/32),
//	f_T ≤ ε/2: P[est ≥ 3ε/4] ≤ exp(−(1/2)²·s(ε/2)/3) = exp(−sε/24),
//
// both ≤ δ/2 once s ≥ 32·ln(2/δ)/ε. The asymptotics O(ε⁻¹·log(1/δ))
// match Lemma 9 exactly.
func SampleSize(d int, p Params) int {
	logTerm := math.Log(2 / p.Delta)
	if p.Mode == ForAll {
		logTerm += combin.LogBinomial(d, p.K)
	}
	var s float64
	if p.Task == Indicator {
		s = 32 * logTerm / p.Eps
	} else {
		s = logTerm / (2 * p.Eps * p.Eps)
	}
	return int(math.Ceil(s))
}

// SpaceBits implements Sketcher: d bits per sampled row plus the header.
func (ss Subsample) SpaceBits(n, d int, p Params) float64 {
	s := ss.SampleOverride
	if s <= 0 {
		s = SampleSize(d, p)
	}
	return float64(tagBits+paramsBits+64) + float64(s)*float64(d)
}

// Sketch implements Sketcher: draws the sample and packages it as a
// small database.
//
// Construction is sharded across CPUs with the deterministic chunk
// scheme described in parallel.go: a root generator seeded with Seed
// emits one seed per buildChunkRows-sized chunk of sample slots, and
// each chunk draws its row indices from its own stream and block-copies
// the rows into its pre-grown arena range. The resulting sketch is a
// pure function of (Seed, db) — identical bits for any worker count.
func (ss Subsample) Sketch(db *dataset.Database, p Params) (Sketch, error) {
	return ss.sketchCtx(context.Background(), db, p, BuildWorkers())
}

// sketchCtx is Sketch with an explicit worker budget, so outer
// fan-outs (MedianAmplifier) can split BuildWorkers() across their
// copies instead of every copy claiming the full budget, and a context
// checked between construction chunks. The budget and the context
// affect wall-clock only, never the constructed bits.
func (ss Subsample) sketchCtx(ctx context.Context, db *dataset.Database, p Params, workers int) (Sketch, error) {
	if err := checkDims(db, p); err != nil {
		return nil, err
	}
	s := ss.SampleOverride
	if s <= 0 {
		s = SampleSize(db.NumCols(), p)
	}
	sample := dataset.NewDatabase(db.NumCols())
	n := db.NumRows()
	if n > 0 {
		r := rng.New(ss.Seed)
		seeds := make([]uint64, rowChunks(s))
		for c := range seeds {
			seeds[c] = r.Uint64()
		}
		sample.Grow(s)
		// Each draw is an arena block copy into the chunk's disjoint
		// slot range; no row vectors are built and no locks are taken.
		// A cancelled context makes the remaining chunks no-ops; the
		// partially filled sample is discarded below.
		runRowChunksN(workers, s, func(c, lo, hi int) {
			if ctx.Err() != nil {
				return
			}
			cr := rng.New(seeds[c])
			for i := lo; i < hi; i++ {
				copy(sample.RowWords(i), db.RowWords(cr.Intn(n)))
			}
		})
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	sample.BuildColumnIndex()
	return &subsampleSketch{sample: sample, params: p}, nil
}

// SubsampleFromSample wraps an already-drawn uniform row sample as a
// SUBSAMPLE sketch, so externally maintained samples — a streaming
// Reservoir, a merged set of shard reservoirs — ship through the same
// envelope codec, Querier adapters and miners as batch-built sketches.
// The sample is adopted, not copied (its column index is built here);
// the caller must stop mutating it. It is the sketch-construction half
// of the service's checkpoint/replication path.
func SubsampleFromSample(sample *dataset.Database, p Params) (EstimatorSketch, error) {
	if err := checkDims(sample, p); err != nil {
		return nil, err
	}
	sample.BuildColumnIndex()
	return &subsampleSketch{sample: sample, params: p}, nil
}

type subsampleSketch struct {
	sample *dataset.Database
	params Params
}

func (s *subsampleSketch) Name() string   { return "subsample" }
func (s *subsampleSketch) Params() Params { return s.params }
func (s *subsampleSketch) NumAttrs() int  { return s.sample.NumCols() }

// Estimate returns the empirical frequency of T on the sample; this is
// the recovery algorithm Q of Definition 8.
func (s *subsampleSketch) Estimate(t dataset.Itemset) float64 {
	return s.sample.Frequency(t)
}

// Frequent thresholds the sample frequency at 3ε/4; the SampleSize
// doc comment derives why this validates Definitions 1/3 at the
// indicator sample sizes.
func (s *subsampleSketch) Frequent(t dataset.Itemset) bool {
	return s.Estimate(t) >= indicatorThreshold(s.params.Eps)
}

// SampleRows returns the number of sampled rows stored in the sketch.
func (s *subsampleSketch) SampleRows() int { return s.sample.NumRows() }

// Sample exposes the underlying sample database. It aliases the
// sketch's storage — callers that mutate it (e.g. a checkpoint
// recovery re-seeding a reservoir from it) own the sketch and must not
// query it afterwards. SampleHolder is the interface to assert for.
func (s *subsampleSketch) Sample() *dataset.Database { return s.sample }

// SizeBits is analytic — tag + params + the sample's d/n header and
// row bits — so MarshalTo sizes the stream in O(1) instead of running
// the encoder against a counting writer. TestSubsampleSizeBitsAnalytic
// pins byte-identity with the counting path.
func (s *subsampleSketch) SizeBits() int64 {
	return int64(tagBits+paramsBits) + 64 + s.sample.SizeBits()
}

func (s *subsampleSketch) MarshalBits(w bitvec.BitWriter) {
	w.WriteUint(tagSubsample, tagBits)
	marshalParams(w, s.params)
	s.sample.MarshalBits(w)
}

func unmarshalSubsample(r bitvec.BitReader) (Sketch, error) {
	p, err := unmarshalParams(r)
	if err != nil {
		return nil, err
	}
	sample, err := dataset.UnmarshalBits(r)
	if err != nil {
		return nil, err
	}
	sample.BuildColumnIndex()
	return &subsampleSketch{sample: sample, params: p}, nil
}

// SampleHolder is implemented by sketches that are backed by a row
// sample and can hand it back — the decode half of the service's
// checkpoint path, which rebuilds a streaming reservoir from the
// sample a recovered SUBSAMPLE sketch carries.
type SampleHolder interface {
	Sample() *dataset.Database
}

var (
	_ Sketcher        = Subsample{}
	_ EstimatorSketch = (*subsampleSketch)(nil)
	_ SampleHolder    = (*subsampleSketch)(nil)
)
