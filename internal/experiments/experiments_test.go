package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Every experiment must run, produce rows, and contain no FAIL cells —
// these are the paper's claims; a FAIL here is a reproduction bug.
func TestAllExperimentsPass(t *testing.T) {
	reg := Registry()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tab := reg[id](42)
			if tab.ID != id {
				t.Errorf("table ID %q, want %q", tab.ID, id)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if len(tab.Columns) == 0 {
				t.Fatal("experiment produced no columns")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Errorf("row width %d != %d columns", len(row), len(tab.Columns))
				}
				for _, cell := range row {
					if cell == "FAIL" {
						t.Errorf("FAIL cell in row %v", row)
					}
				}
			}
			var buf bytes.Buffer
			tab.Fprint(&buf)
			if !strings.Contains(buf.String(), tab.Title) {
				t.Error("printed output missing title")
			}
		})
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 13 {
		t.Fatalf("expected 13 experiments, got %d", len(ids))
	}
	if ids[0] != "E1" || ids[12] != "E13" {
		t.Fatalf("order wrong: %v", ids)
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "E99", 1); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestRunSingle(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(&buf, "E5", 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fact 18") {
		t.Error("E5 output missing")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Title:   "title",
		Paper:   "claim",
		Columns: []string{"a", "long-column"},
	}
	tab.AddRow(1.23456789, "x")
	tab.Notes = append(tab.Notes, "a note")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"T — title", "paper: claim", "long-column", "1.235", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
