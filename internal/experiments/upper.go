package experiments

import (
	"context"
	"math"

	"repro/internal/combin"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/rng"
)

// maxAbsError returns the largest |estimate − exact| over every
// k-itemset, with both sides answered through the batched Querier
// path.
func maxAbsError(db *dataset.Database, es core.EstimatorSketch, d, k int) float64 {
	var ts []dataset.Itemset
	combin.ForEachSubset(d, k, func(set []int) bool {
		ts = append(ts, dataset.MustItemset(set...))
		return true
	})
	got := make([]float64, len(ts))
	want := make([]float64, len(ts))
	ctx := context.Background()
	if err := query.FromSketch(es).EstimateMany(ctx, ts, got); err != nil {
		panic(err)
	}
	if err := query.FromDatabase(db).EstimateMany(ctx, ts, want); err != nil {
		panic(err)
	}
	maxErr := 0.0
	for i := range ts {
		if e := math.Abs(got[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr
}

// E1 — SUBSAMPLE accuracy at the Lemma 9 sample sizes, all four
// problem variants, across an ε sweep.
func E1(seed uint64) *Table {
	t := &Table{
		ID:    "E1",
		Title: "SUBSAMPLE meets the four Definition 1-4 guarantees at Lemma 9 sizes",
		Paper: "Lemma 9 / Theorem 12: s = O(eps^-1 log(1/delta)) (indicator), O(eps^-2 log(1/delta)) (estimator); ForAll adds log C(d,k)",
		Columns: []string{
			"eps", "variant", "samples", "sketch KB", "metric", "observed", "bound", "pass",
		},
	}
	const d, k, n = 20, 2, 20000
	const delta = 0.1
	r := rng.New(seed)
	db := dataset.GenPlanted(r, n, d, 0.15, []dataset.Plant{
		{Items: dataset.MustItemset(1, 5), Freq: 0.5},
		{Items: dataset.MustItemset(2, 9), Freq: 0.03},
	})
	db.BuildColumnIndex()

	for _, eps := range []float64{0.2, 0.1, 0.05} {
		// ForAll-Estimator: max error over every k-itemset must be ≤ eps.
		p := core.Params{K: k, Eps: eps, Delta: delta, Mode: core.ForAll, Task: core.Estimator}
		sk, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, p)
		if err != nil {
			panic(err)
		}
		maxErr := maxAbsError(db, sk.(core.EstimatorSketch), d, k)
		t.AddRow(eps, "ForAll-Est", core.SampleSize(d, p), kb(sk.SizeBits()),
			"max |err|", maxErr, eps, passFail(maxErr <= eps))

		// ForAll-Indicator: zero forced-answer violations.
		pi := core.Params{K: k, Eps: eps, Delta: delta, Mode: core.ForAll, Task: core.Indicator}
		ski, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, pi)
		if err != nil {
			panic(err)
		}
		violations := 0
		combin.ForEachSubset(d, k, func(set []int) bool {
			T := dataset.MustItemset(set...)
			f := db.Frequency(T)
			ans := ski.Frequent(T)
			if f > eps && !ans {
				violations++
			}
			if f < eps/2 && ans {
				violations++
			}
			return true
		})
		t.AddRow(eps, "ForAll-Ind", core.SampleSize(d, pi), kb(ski.SizeBits()),
			"violations", violations, 0, passFail(violations == 0))

		// ForEach-Estimator: failure rate over independent sketches ≤ delta.
		pe := core.Params{K: k, Eps: eps, Delta: delta, Mode: core.ForEach, Task: core.Estimator}
		T := dataset.MustItemset(1, 5)
		f := db.Frequency(T)
		fails, trials := 0, 60
		for i := 0; i < trials; i++ {
			s2, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, pe)
			if err != nil {
				panic(err)
			}
			if math.Abs(s2.(core.EstimatorSketch).Estimate(T)-f) > eps {
				fails++
			}
		}
		rate := float64(fails) / float64(trials)
		t.AddRow(eps, "ForEach-Est", core.SampleSize(d, pe), "-",
			"fail rate", rate, delta, passFail(rate <= delta))

		// ForEach-Indicator: same protocol on the frequent and the rare pair.
		pfi := core.Params{K: k, Eps: eps, Delta: delta, Mode: core.ForEach, Task: core.Indicator}
		wrong := 0
		for i := 0; i < trials; i++ {
			s2, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, pfi)
			if err != nil {
				panic(err)
			}
			if !s2.Frequent(dataset.MustItemset(1, 5)) { // f≈0.5 > eps
				wrong++
			}
			if eps/2 > db.Frequency(dataset.MustItemset(2, 9)) && s2.Frequent(dataset.MustItemset(2, 9)) {
				wrong++
			}
		}
		rate = float64(wrong) / float64(2*trials)
		t.AddRow(eps, "ForEach-Ind", core.SampleSize(d, pfi), "-",
			"fail rate", rate, delta, passFail(rate <= delta))
	}
	t.Notes = append(t.Notes,
		"indicator samples scale as 1/eps, estimator as 1/eps^2 — the quadratic gap Theorem 16 proves necessary")
	return t
}

// E2 — the Theorem 12 three-way space comparison and its crossovers.
func E2() *Table {
	t := &Table{
		ID:    "E2",
		Title: "Theorem 12 planner: min(RELEASE-DB, RELEASE-ANSWERS, SUBSAMPLE) across regimes",
		Paper: "Thm 12(a): |S| = O(min{nd, C(d,k), eps^-1 d log(C(d,k)/delta)}); RELEASE-DB wins at n≈1/eps, RELEASE-ANSWERS at 1/eps >> C(d/2,k-1) with k=O(1), SUBSAMPLE otherwise",
		Columns: []string{
			"n", "d", "k", "eps", "db bits", "answers bits", "subsample bits", "winner",
		},
	}
	p := func(eps float64, k int) core.Params {
		return core.Params{K: k, Eps: eps, Delta: 0.1, Mode: core.ForAll, Task: core.Indicator}
	}
	cases := []struct {
		n, d, k int
		eps     float64
	}{
		{10, 64, 2, 0.1},         // tiny n: RELEASE-DB
		{100, 64, 2, 0.01},       // n = 1/eps: RELEASE-DB ~ matches lower bound
		{1000000, 16, 2, 0.0001}, // tiny eps, small C(d,k): RELEASE-ANSWERS
		{1000000, 16, 2, 0.01},   // moderate eps: SUBSAMPLE
		{1000000, 1024, 3, 0.01}, // big d: SUBSAMPLE
		{1000000, 1024, 3, 1e-9}, // astronomically small eps: RELEASE-DB again
	}
	for _, c := range cases {
		plan := core.PlanSketch(c.n, c.d, p(c.eps, c.k), 1)
		t.AddRow(c.n, c.d, c.k, c.eps,
			plan.Costs["release-db"], plan.Costs["release-answers"], plan.Costs["subsample"],
			plan.Winner.Name())
	}
	t.Notes = append(t.Notes,
		"each regime's winner matches the Theorem 12 discussion in §3.1")
	return t
}
