package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/mining"
	"repro/internal/query"
	"repro/internal/rng"
	"repro/internal/stream"
)

// E11 — the §1.1.2 application: frequent-itemset mining on a sketch.
func E11(seed uint64) *Table {
	t := &Table{
		ID:    "E11",
		Title: "Mining on the sketch: Apriori over SUBSAMPLE vs exact, market-basket workload",
		Paper: "§1.1.2: the analyst keeps only the sketch; §2 naive bounds say ~eps^-2 d log C rows suffice for all queries at ±eps",
		Columns: []string{
			"rows", "eps", "sample rows", "sketch KB", "precision", "recall", "max freq err", "pass",
		},
	}
	r := rng.New(seed)
	const d, n = 32, 30000
	db := dataset.GenMarketBasket(r, n, d, dataset.BasketConfig{
		MeanSize:     4,
		ZipfExponent: 1.3,
		Bundles:      [][]int{{10, 11}, {20, 21, 22}},
		BundleProb:   0.35,
	})
	db.BuildColumnIndex()
	// Both mines run through the unified Querier interface, so the
	// exact and sketch paths differ only in the backend.
	ctx := context.Background()
	const minSup, maxK = 0.1, 3
	exact, err := mining.AprioriContext(ctx, query.FromDatabase(db), minSup, maxK)
	if err != nil {
		panic(err)
	}

	for _, eps := range []float64{0.05, 0.02, 0.01} {
		p := core.Params{K: maxK, Eps: eps, Delta: 0.05, Mode: core.ForAll, Task: core.Estimator}
		sk, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, p)
		if err != nil {
			panic(err)
		}
		approx, err := mining.AprioriContext(ctx, query.FromSketch(sk), minSup, maxK)
		if err != nil {
			panic(err)
		}
		cmp := mining.Compare(approx, exact)
		pass := cmp.MaxFreqErr <= eps && cmp.Recall >= 0.8
		t.AddRow(n, eps, core.SampleSize(d, p), kb(sk.SizeBits()),
			cmp.Precision, cmp.Recall, cmp.MaxFreqErr, passFail(pass))
	}

	// Streaming variant: a reservoir built in one pass matches the
	// offline subsample.
	res, err := stream.NewReservoir(d, 8000, r.Uint64())
	if err != nil {
		panic(err)
	}
	for i := 0; i < db.NumRows(); i++ {
		res.Add(db.Row(i))
	}
	sampleDB := res.Database()
	sampleDB.BuildColumnIndex()
	approx := mining.Apriori(mining.DBSource{DB: sampleDB}, minSup, maxK)
	cmp := mining.Compare(approx, exact)
	t.Notes = append(t.Notes,
		fmt.Sprintf("one-pass reservoir (8000 rows): precision %.2f recall %.2f max err %.3f — streaming SUBSAMPLE needs no second pass",
			cmp.Precision, cmp.Recall, cmp.MaxFreqErr),
		"itemsets near the minSup threshold flip in/out under ±eps noise, as the epsilon-adequate-representation literature predicts [MT96]")
	return t
}
