package experiments

import (
	"math"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lowerbound"
	"repro/internal/privacy"
	"repro/internal/rng"
)

// E12 — the §5 ablation: importance sampling vs uniform sampling, on
// structured data (where it should win) and on the Theorem 13 hard
// family (where the lower bound says nothing can win).
func E12(seed uint64) *Table {
	t := &Table{
		ID:    "E12",
		Title: "Importance vs uniform sampling: structured data vs the hard family (§5 future work)",
		Paper: "Conclusion §5: \"importance sampling is a natural candidate for improving upon uniform sampling\" on structured databases; on the hard distributions the lower bounds forbid any improvement",
		Columns: []string{
			"workload", "samples", "uniform RMSE", "importance RMSE", "ratio uni/imp",
		},
	}
	r := rng.New(seed)
	p := core.Params{K: 3, Eps: 0.05, Delta: 0.1, Mode: core.ForEach, Task: core.Estimator}

	rmse := func(db *dataset.Database, T dataset.Itemset, sk func(seed uint64) core.Sketcher, trials, samples int) float64 {
		truth := db.Frequency(T)
		sum := 0.0
		for i := 0; i < trials; i++ {
			s, err := sk(r.Uint64()).Sketch(db, p)
			if err != nil {
				panic(err)
			}
			dlt := s.(core.EstimatorSketch).Estimate(T) - truth
			sum += dlt * dlt
		}
		return math.Sqrt(sum / float64(trials))
	}

	const samples, trials = 150, 60

	// Structured workload: heavy 5% of rows hold the target itemset.
	structured := dataset.NewDatabase(16)
	for i := 0; i < 5000; i++ {
		row := bitvec.New(16)
		if r.Bernoulli(0.05) {
			row.Set(0)
			row.Set(1)
			row.Set(2)
			for a := 3; a < 16; a++ {
				if r.Bernoulli(0.5) {
					row.Set(a)
				}
			}
		} else if r.Bernoulli(0.5) {
			row.Set(3 + r.Intn(13))
		}
		structured.AddRow(row)
	}
	target := dataset.MustItemset(0, 1, 2)
	uniRMSE := rmse(structured, target, func(s uint64) core.Sketcher {
		return core.Subsample{Seed: s, SampleOverride: samples}
	}, trials, samples)
	impRMSE := rmse(structured, target, func(s uint64) core.Sketcher {
		return core.ImportanceSample{Seed: s, SampleOverride: samples}
	}, trials, samples)
	t.AddRow("structured (5% heavy rows)", samples, uniRMSE, impRMSE, uniRMSE/impRMSE)

	// Hard family: every row has the same weight, so importance
	// sampling degenerates to uniform — as the lower bound demands.
	inst, err := lowerbound.NewThm13(16, 2, 8)
	if err != nil {
		panic(err)
	}
	payload := randomPayload(r, inst.PayloadBits())
	payload.Set(3*8 + 2) // ensure the probed query has frequency 1/m, not 0
	hard, err := inst.Encode(payload, 50)
	if err != nil {
		panic(err)
	}
	hardT := inst.Query(3, 2)
	uniH := rmse(hard, hardT, func(s uint64) core.Sketcher {
		return core.Subsample{Seed: s, SampleOverride: samples}
	}, trials, samples)
	impH := rmse(hard, hardT, func(s uint64) core.Sketcher {
		return core.ImportanceSample{Seed: s, SampleOverride: samples}
	}, trials, samples)
	t.AddRow("thm13 hard family", samples, uniH, impH, uniH/impH)

	t.Notes = append(t.Notes,
		"structured: Horvitz-Thompson over length-weighted rows cuts RMSE well below uniform at equal space",
		"hard family: the ratio hovers near 1 — the paper's lower bound says no reweighting can help here")
	return t
}

// E13 — the footnote 3 bridge: a DP release is an estimator sketch
// whose error decays as Θ(C(d,k)/(n·ε_DP)).
func E13(seed uint64) *Table {
	t := &Table{
		ID:    "E13",
		Title: "Differential privacy bridge: Laplace release as a For-All estimator sketch",
		Paper: "Footnote 3: sketch accuracy <-> DP accuracy are formally linked; DP error at fixed eps_DP decays as 1/n, so accuracy lower bounds of the form t/n transfer to Omega(t - eps n) sketch bounds",
		Columns: []string{
			"n", "d", "k", "eps_DP", "noise scale", "measured max err", "predicted bound", "valid at eps=0.05",
		},
	}
	r := rng.New(seed)
	const d, k, epsDP = 10, 2, 1.0
	for _, n := range []int{1000, 10000, 100000} {
		db := dataset.GenUniform(r, n, d, 0.3)
		rel, err := privacy.NewLaplaceRelease(db, k, epsDP, r.Uint64())
		if err != nil {
			panic(err)
		}
		maxErr := rel.MaxError(db)
		t.AddRow(n, d, k, epsDP, rel.Scale(), maxErr,
			rel.PredictedMaxError(0.05), passFail(n < 100000 || maxErr <= 0.05))
	}
	t.Notes = append(t.Notes,
		"errors shrink linearly in n: beyond n ~ C(d,k) log(C)/ (eps eps_DP) the private release satisfies Definition 2 outright",
		"this is the direction of footnote 3's reduction, measured")
	return t
}
