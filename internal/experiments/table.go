// Package experiments regenerates, as printable tables, the paper's
// "evaluation": every theorem, lemma, and construction becomes a
// measured experiment with the paper's prediction alongside. The
// experiment IDs (E1–E11) are indexed in DESIGN.md §4 and the recorded
// outputs live in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid with the paper
// artifact it reproduces and free-form notes on the comparison.
type Table struct {
	ID      string
	Title   string
	Paper   string // the paper's claim being reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are rendered with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.4g", x)
	return s
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(w, "  paper: %s\n", t.Paper)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  | %s |\n", strings.Join(parts, " | "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// passFail renders a boolean as the table cell convention.
func passFail(ok bool) string {
	if ok {
		return "ok"
	}
	return "FAIL"
}

// kb renders a bit count as kilobytes with sensible precision.
func kb(bits int64) string {
	return fmt.Sprintf("%.1f", float64(bits)/8/1024)
}
