package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner produces one experiment's table. Seeded experiments take the
// seed; deterministic ones ignore it.
type Runner func(seed uint64) *Table

// Registry maps experiment IDs to runners, in DESIGN.md §4 order.
func Registry() map[string]Runner {
	return map[string]Runner{
		"E1":  E1,
		"E2":  func(uint64) *Table { return E2() },
		"E3":  E3,
		"E4":  E4,
		"E5":  func(uint64) *Table { return E5() },
		"E6":  E6,
		"E7":  E7,
		"E8":  E8,
		"E9":  E9,
		"E10": E10,
		"E11": E11,
		"E12": E12,
		"E13": E13,
	}
}

// IDs returns the experiment identifiers in numeric order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		return numOf(ids[i]) < numOf(ids[j])
	})
	return ids
}

func numOf(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// RunAll executes every experiment with the given seed and prints the
// tables to w in order.
func RunAll(w io.Writer, seed uint64) {
	reg := Registry()
	for _, id := range IDs() {
		reg[id](seed).Fprint(w)
	}
}

// Run executes a single experiment by ID.
func Run(w io.Writer, id string, seed uint64) error {
	r, ok := Registry()[id]
	if !ok {
		return fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	r(seed).Fprint(w)
	return nil
}
