package experiments

import (
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/lowerbound"
	"repro/internal/rng"
)

// E8 — the Lemma 26 (Rudelson) spectrum measurements.
func E8(seed uint64) *Table {
	t := &Table{
		ID:    "E8",
		Title: "Lemma 26: Hadamard products of random 0/1 matrices are well-conditioned",
		Paper: "Lemma 26 [Rud12]: sigma_min(A1 o ... o A_{k-1}) = Omega(sqrt(d^{k-1})) w.h.p., and range(A) is a Euclidean section",
		Columns: []string{
			"d0", "k", "rows d0^(k-1)", "n", "sigma_min (avg)", "sqrt(d^(k-1))", "ratio", "section ratio (min)",
		},
	}
	r := rng.New(seed)
	cases := []struct{ d0, n, k int }{
		{16, 8, 2},
		{32, 12, 2},
		{64, 16, 2},
		{8, 10, 3},
		{12, 16, 3},
	}
	const trials = 5
	for _, c := range cases {
		sigSum, secMin := 0.0, math.Inf(1)
		for trial := 0; trial < trials; trial++ {
			de, err := lowerbound.NewDe(c.d0, c.n, c.k, r.Uint64())
			if err != nil {
				panic(err)
			}
			rep := de.Condition(30, r.Uint64())
			sigSum += rep.MinSingular
			if rep.SectionRatioMin < secMin {
				secMin = rep.SectionRatioMin
			}
		}
		sig := sigSum / trials
		pred := math.Sqrt(math.Pow(float64(c.d0), float64(c.k-1)))
		t.AddRow(c.d0, c.k, int(math.Pow(float64(c.d0), float64(c.k-1))), c.n,
			sig, pred, sig/pred, secMin)
	}
	t.Notes = append(t.Notes,
		"ratio stays a bounded constant as d grows — the Omega(sqrt(d^{k-1})) prediction; section ratio stays bounded away from 0")
	return t
}

// E9 — De's LP decoding vs the KRSU L2 baseline.
func E9(seed uint64) *Table {
	t := &Table{
		ID:    "E9",
		Title: "Theorem 16 machinery: L1 (LP) decoding reconstructs columns; L2 breaks under outliers",
		Paper: "Lemma 24/25 [De12]: L1-minimization recovers the secret column from answers accurate only on average; KRSU's L2 needs uniformly accurate answers (§4.1.1)",
		Columns: []string{
			"d0", "n", "oracle", "n*eps", "outliers", "L1 bit errors", "L2 bit errors",
		},
	}
	r := rng.New(seed)
	const d0, n = 24, 10
	de, err := lowerbound.NewDe(d0, n, 2, r.Uint64())
	if err != nil {
		panic(err)
	}
	y := randomPayload(r, n)
	db, err := de.EncodeColumn(y)
	if err != nil {
		panic(err)
	}
	run := func(name string, oracle lowerbound.EstimatorOracle, nEps float64, outliers string) {
		l1, err := de.DecodeColumnL1(oracle, 0)
		if err != nil {
			panic(err)
		}
		l2, err := de.DecodeColumnL2(oracle, 0)
		if err != nil {
			panic(err)
		}
		t.AddRow(d0, n, name, nEps, outliers,
			l1.HammingDistance(y), l2.HammingDistance(y))
	}
	run("exact", lowerbound.ExactEstimator{DB: db}, 0.0, "0%")
	for _, nEps := range []float64{0.1, 0.3} {
		run("noisy", lowerbound.NoisyEstimator{DB: db, MaxErr: nEps / float64(n), Seed: r.Uint64()}, nEps, "0%")
	}
	run("outlier", lowerbound.OutlierEstimator{
		DB: db, MaxErr: 0.2 / float64(n), OutlierErr: 1.0, Fraction: 0.08, Seed: 12345,
	}, 0.2, "8% garbage")

	// Full Lemma 25 payload round trip through a real SUBSAMPLE sketch.
	de2, err := lowerbound.NewDe(24, 12, 2, r.Uint64())
	if err != nil {
		panic(err)
	}
	payload := randomPayload(r, de2.PayloadBits())
	db2, err := de2.Encode(payload)
	if err != nil {
		panic(err)
	}
	eps := 0.2 / float64(de2.N())
	p := core.Params{K: 2, Eps: eps, Delta: 0.05, Mode: core.ForAll, Task: core.Estimator}
	sk, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db2, p)
	if err != nil {
		panic(err)
	}
	got, err := de2.Decode(sk.(core.EstimatorSketch))
	ok := err == nil && got.Equal(payload)
	t.Notes = append(t.Notes,
		fmt.Sprintf("Lemma 25 end-to-end via a %d-bit SUBSAMPLE estimator sketch: %d payload bits recovered: %s",
			sk.SizeBits(), de2.PayloadBits(), passFail(ok)),
		"L1 stays exact under the average-error adversary that visibly corrupts L2 — De's reason for LP decoding")
	return t
}

// E10 — the Theorem 17 median amplification.
func E10(seed uint64) *Table {
	t := &Table{
		ID:    "E10",
		Title: "Theorem 17: median of O(log C(d,k)) For-Each copies is a For-All estimator",
		Paper: "Thm 17 proof: 10 log(C(d,k)/delta) copies with base delta < 1/2; Chernoff + union bound give all-query correctness 1-delta",
		Columns: []string{
			"d", "k", "copies", "base fail rate", "amplified all-query fail rate", "delta", "pass",
		},
	}
	r := rng.New(seed)
	const d, k, n = 12, 2, 4000
	const eps, delta = 0.1, 0.1
	db := genE10DB(r, n, d)
	db.BuildColumnIndex()

	// Base: single For-Each copy, measure per-query failure rate on the
	// worst itemset.
	baseP := core.Params{K: k, Eps: eps, Delta: 1.0 / 3, Mode: core.ForEach, Task: core.Estimator}
	worst := worstItemset(db, d, k)
	fails, trials := 0, 40
	for i := 0; i < trials; i++ {
		sk, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, baseP)
		if err != nil {
			panic(err)
		}
		if math.Abs(sk.(core.EstimatorSketch).Estimate(worst)-db.Frequency(worst)) > eps {
			fails++
		}
	}
	baseRate := float64(fails) / float64(trials)

	// Amplified: all-query failure rate across independent builds.
	ampP := core.Params{K: k, Eps: eps, Delta: delta, Mode: core.ForAll, Task: core.Estimator}
	copies := core.Copies(d, ampP)
	ampFails := 0
	const ampTrials = 15
	for i := 0; i < ampTrials; i++ {
		m := core.MedianAmplifier{Base: core.Subsample{Seed: r.Uint64()}}
		sk, err := m.Sketch(db, ampP)
		if err != nil {
			panic(err)
		}
		if !allQueriesWithin(db, sk.(core.EstimatorSketch), d, k, eps) {
			ampFails++
		}
	}
	ampRate := float64(ampFails) / float64(ampTrials)
	t.AddRow(d, k, copies, baseRate, ampRate, delta, passFail(ampRate <= delta))
	t.Notes = append(t.Notes,
		"the transformation is the paper's bridge from the For-All estimator lower bound (Thm 16) to the For-Each bound (Thm 17)")
	return t
}

func genE10DB(r *rng.RNG, n, d int) *dataset.Database {
	return dataset.GenPlanted(r, n, d, 0.3, []dataset.Plant{
		{Items: dataset.MustItemset(0, 1), Freq: 0.4},
	})
}

func worstItemset(db *dataset.Database, d, k int) (worst dataset.Itemset) {
	// The itemset with frequency nearest 1/2 maximizes sampling variance.
	best := math.Inf(1)
	combin.ForEachSubset(d, k, func(set []int) bool {
		T := dataset.MustItemset(set...)
		if gap := math.Abs(db.Frequency(T) - 0.5); gap < best {
			best = gap
			worst = T
		}
		return true
	})
	return worst
}

// allQueriesWithin checks the ForAll guarantee exhaustively: every
// k-itemset estimate within ±eps of the exact frequency, answered
// through the batched Querier path (see maxAbsError in upper.go).
func allQueriesWithin(db *dataset.Database, es core.EstimatorSketch, d, k int, eps float64) bool {
	return maxAbsError(db, es, d, k) <= eps
}
