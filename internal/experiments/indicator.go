package experiments

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/lowerbound"
	"repro/internal/rng"
)

func randomPayload(r *rng.RNG, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for i := 0; i < n; i++ {
		if r.Bool() {
			v.Set(i)
		}
	}
	return v
}

// E3 — the Theorem 13 reconstruction attack against real sketches.
func E3(seed uint64) *Table {
	t := &Table{
		ID:    "E3",
		Title: "Theorem 13: any valid For-All indicator sketch encodes m·d/2 arbitrary bits",
		Paper: "Thm 13: |S| = Omega(d/eps) for 1/eps <= C(d/2,k-1); SUBSAMPLE is optimal up to the O(log C(d,k)) union-bound factor",
		Columns: []string{
			"d", "k", "m=~1/eps", "payload bits", "sketch bits", "ratio", "recovered", "pass",
		},
	}
	r := rng.New(seed)
	cases := []struct{ d, k, m int }{
		{16, 2, 8},
		{32, 2, 16},
		{32, 3, 32},
		{64, 2, 32},
	}
	for _, c := range cases {
		inst, err := lowerbound.NewThm13(c.d, c.k, c.m)
		if err != nil {
			panic(err)
		}
		payload := randomPayload(r, inst.PayloadBits())
		db, err := inst.Encode(payload, 2)
		if err != nil {
			panic(err)
		}
		p := core.Params{K: c.k, Eps: inst.QueryEps(), Delta: 0.02, Mode: core.ForAll, Task: core.Indicator}
		sk, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, p)
		if err != nil {
			panic(err)
		}
		got := inst.Decode(sk)
		correct := payload.Len() - got.HammingDistance(payload)
		frac := float64(correct) / float64(payload.Len())
		ratio := float64(sk.SizeBits()) / float64(inst.PayloadBits())
		t.AddRow(c.d, c.k, c.m, inst.PayloadBits(), sk.SizeBits(),
			ratio, fmt.Sprintf("%.1f%%", 100*frac), passFail(frac == 1))
	}
	t.Notes = append(t.Notes,
		"ratio = sketch/payload stays a small log factor: uniform sampling is near-optimal, exactly the theorem's message",
		"100% recovery from the sketch alone certifies the sketch size can never drop below the payload")
	return t
}

// E4 — the Theorem 14 INDEX protocol built from a For-Each sketch.
func E4(seed uint64) *Table {
	t := &Table{
		ID:    "E4",
		Title: "Theorem 14: a For-Each indicator sketch is an INDEX message",
		Paper: "Thm 14: one-way INDEX needs Omega(N) bits [Abl96]; the reduction sets N = (d/2)/eps, so |S| = Omega(d/eps) even For-Each",
		Columns: []string{
			"d", "m", "N", "message bits", "bits/N", "success rate", "need >= 2/3", "pass",
		},
	}
	cases := []struct{ d, m int }{
		{8, 4},
		{16, 8},
		{24, 12},
	}
	for i, c := range cases {
		pr, err := comm.NewSketchIndexProtocol(c.d, 2, c.m, core.Subsample{Seed: seed + uint64(i)}, 0.1, 2)
		if err != nil {
			panic(err)
		}
		res, err := comm.PlayIndex(pr, 60, seed+uint64(100+i))
		if err != nil {
			panic(err)
		}
		t.AddRow(c.d, c.m, res.N, res.MessageBits,
			float64(res.MessageBits)/float64(res.N),
			res.SuccessRate(), "2/3", passFail(res.SuccessRate() >= 2.0/3))
	}
	t.Notes = append(t.Notes,
		"message bits grow linearly in N with a log(1/delta) constant — the INDEX lower bound is met within that factor")
	return t
}

// E5 — the Fact 18 shattered-set verification.
func E5() *Table {
	t := &Table{
		ID:    "E5",
		Title: "Fact 18: k'-way conjunctions shatter v = k'*log2(d/k') strings",
		Paper: "Fact 18 / Appendix A: for every s in {0,1}^v there is a k'-itemset T_s with f_{T_s}(x_i) = s_i",
		Columns: []string{
			"d", "k'", "v", "patterns checked", "all shattered",
		},
	}
	for _, c := range []struct{ d, kp int }{{8, 1}, {16, 2}, {16, 4}, {32, 2}, {64, 2}} {
		sh, err := lowerbound.NewShattered(c.d, c.kp)
		if err != nil {
			panic(err)
		}
		v := sh.V()
		rows := sh.Rows()
		ok := true
		for s := uint64(0); s < 1<<uint(v); s++ {
			T := sh.TsUint(s)
			ind := T.Indicator(c.d)
			for i := 0; i < v && ok; i++ {
				want := s>>uint(i)&1 == 1
				if rows[i].ContainsAll(ind) != want {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		t.AddRow(c.d, c.kp, v, 1<<uint(v), passFail(ok))
	}
	return t
}

// E6 — the Theorem 15 core (ε = 1/50) reconstruction.
func E6(seed uint64) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Theorem 15 core: Lemma 19 consistency decoding + ECC recover z = Omega(d v) bits",
		Paper: "Thm 15 (eps=1/50 case): |S| = Omega(k d log(d/k)) via shattered strings + inner-product threshold queries",
		Columns: []string{
			"k", "d", "v", "payload z", "oracle", "sketch bits", "recovered", "pass",
		},
	}
	r := rng.New(seed)
	cases := []struct{ k, w int }{
		{2, 5}, // d=32, v=5
		{2, 6}, // d=64, v=6
		{3, 4}, // d=32, v=8
	}
	for _, c := range cases {
		inst, err := lowerbound.NewThm15(c.k, c.w, 0)
		if err != nil {
			panic(err)
		}
		payload := randomPayload(r, inst.PayloadBits())
		db, err := inst.Encode(payload)
		if err != nil {
			panic(err)
		}
		d := inst.NumCols() / 2

		check := func(name string, oracle lowerbound.IndicatorOracle, bits interface{}) {
			got, err := inst.Decode(oracle)
			ok := err == nil && got.Equal(payload)
			t.AddRow(c.k, d, inst.V(), inst.PayloadBits(), name, bits, passFail(ok), passFail(ok))
		}
		check("exact", lowerbound.ExactIndicator{DB: db, Eps: inst.QueryEps()}, "-")
		check("adversarial", lowerbound.AdversarialIndicator{DB: db, Eps: inst.QueryEps(), Seed: r.Uint64()}, "-")

		p := core.Params{K: inst.K(), Eps: inst.QueryEps(), Delta: 0.02, Mode: core.ForAll, Task: core.Indicator}
		sk, err := (core.Subsample{Seed: r.Uint64()}).Sketch(db, p)
		if err != nil {
			panic(err)
		}
		check("subsample", sk, sk.SizeBits())
	}
	t.Notes = append(t.Notes,
		"adversarial oracle answers the (eps/2, eps) slack zone maliciously; Lemma 19 still pins every column within 2*ceil(eps*v) bits and the code absorbs it")
	return t
}

// E7 — the Theorem 15 amplification to sub-constant ε.
func E7(seed uint64) *Table {
	t := &Table{
		ID:    "E7",
		Title: "Theorem 15 amplified: m = 1/(50 eps) tagged blocks multiply the payload",
		Paper: "Thm 15: |S| = Omega(k d log(d/k) / eps) for k >= 3 odd; the construction concatenates m independent core databases",
		Columns: []string{
			"k", "m", "eps", "rows", "cols", "payload bits", "recovered", "pass",
		},
	}
	r := rng.New(seed)
	for _, m := range []int{2, 4, 8} {
		amp, err := lowerbound.NewThm15Amplified(3, 5, m)
		if err != nil {
			panic(err)
		}
		payload := randomPayload(r, amp.PayloadBits())
		db, err := amp.Encode(payload)
		if err != nil {
			panic(err)
		}
		got, err := amp.Decode(lowerbound.ExactIndicator{DB: db, Eps: amp.QueryEps()})
		ok := err == nil && got.Equal(payload)
		t.AddRow(3, m, amp.QueryEps(), amp.NumRows(), amp.NumCols(),
			amp.PayloadBits(), passFail(ok), passFail(ok))
	}
	t.Notes = append(t.Notes,
		"payload bits scale linearly with m = 1/(50 eps): halving eps doubles what any valid sketch must store")
	return t
}
