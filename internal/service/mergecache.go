package service

import (
	"sync/atomic"
)

// mergeGen is one memoized generation of a read-side cross-shard
// merge. It stays valid exactly as long as every answering shard still
// publishes the snapshot it was built from — any ingest, kill or
// recovery swaps a snapshot pointer and misses the cache. The merged
// value is immutable once stored: queries only read it, so one
// generation can serve concurrent calls.
type mergeGen[T any] struct {
	ids      []int       // shard ids of the candidates
	snaps    []*snapshot // key: the candidate snapshots, in shard order
	answered []int       // shards whose state actually merged
	merged   T
}

// matches reports whether the generation was built from exactly these
// candidate snapshots.
func (g *mergeGen[T]) matches(ids []int, snaps []*snapshot) bool {
	if len(g.snaps) != len(snaps) {
		return false
	}
	for i := range snaps {
		if g.ids[i] != ids[i] || g.snaps[i] != snaps[i] {
			return false
		}
	}
	return true
}

// mergeCache memoizes one estimator's cross-shard merge per snapshot
// generation behind an atomic pointer. Every read path that combines
// shard summaries — count sketch, Misra–Gries, decayed Misra–Gries,
// and the Mine union sample — owns one, so repeated queries against an
// unchanged service reuse the previous merge instead of re-folding
// every shard per request.
type mergeCache[T any] struct {
	gen    atomic.Pointer[mergeGen[T]]
	builds atomic.Int64 // cache misses: actual merge builds
}

// get returns the memoized merge for exactly these candidate
// snapshots, or runs build and publishes the result as the new
// generation. build's answered slice is passed through even on error
// (a ctx cancellation mid-fold) so callers can report the partial; an
// errored build is never stored.
func (c *mergeCache[T]) get(ids []int, snaps []*snapshot, build func() (T, []int, error)) (T, []int, error) {
	if g := c.gen.Load(); g != nil && g.matches(ids, snaps) {
		return g.merged, g.answered, nil
	}
	c.builds.Add(1)
	merged, answered, err := build()
	if err != nil {
		var zero T
		return zero, answered, err
	}
	c.gen.Store(&mergeGen[T]{ids: ids, snaps: snaps, answered: answered, merged: merged})
	return merged, answered, nil
}

// mergeCandidates collects the live shards whose snapshot passes keep,
// in shard order — the identity key for one generation of a read-side
// merge.
func (s *Service) mergeCandidates(keep func(*snapshot) bool) (ids []int, snaps []*snapshot, shs []*Shard) {
	live := s.live()
	ids = make([]int, 0, len(live))
	snaps = make([]*snapshot, 0, len(live))
	shs = make([]*Shard, 0, len(live))
	for _, sh := range live {
		snap := sh.snapshot()
		if !keep(snap) {
			continue
		}
		ids = append(ids, sh.id)
		snaps = append(snaps, snap)
		shs = append(shs, sh)
	}
	return ids, snaps, shs
}

// MergeBuilds counts the read-side cross-shard merges actually built
// since start, per estimator path. The hot-path invariant — what
// cmd/loadgen asserts and the merge-cache tests count — is that
// repeated queries against an unchanged service add zero to these.
type MergeBuilds struct {
	CountSketch int64
	MisraGries  int64
	Decayed     int64
	Mine        int64
}

// MergeBuilds reports the per-path merge-build counters.
func (s *Service) MergeBuilds() MergeBuilds {
	return MergeBuilds{
		CountSketch: s.csMerge.builds.Load(),
		MisraGries:  s.mgMerge.builds.Load(),
		Decayed:     s.dmgMerge.builds.Load(),
		Mine:        s.mineMerge.builds.Load(),
	}
}
