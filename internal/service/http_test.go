package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	itemsketch "repro"
	"repro/internal/core"
)

func postJSON(t *testing.T, url, path string, payload string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("%s: undecodable body: %v", path, err)
	}
	return resp, body
}

func TestHTTPEndpoints(t *testing.T) {
	const d = 6
	cfg := testConfig(d)
	cfg.CheckpointDir = t.TempDir()
	s := mustNew(t, cfg)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, body := postJSON(t, srv.URL, "/v1/ingest", `{"rows":[[0,1],[2],[0,5]]}`)
	if resp.StatusCode != http.StatusOK || body["accepted"].(float64) != 3 {
		t.Fatalf("ingest: %d %v", resp.StatusCode, body)
	}

	resp, body = postJSON(t, srv.URL, "/v1/estimate", `{"itemsets":[[0]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %v", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Shards-Answered"); got != "4/4" {
		t.Fatalf("X-Shards-Answered %q, want 4/4", got)
	}
	ests := body["estimates"].([]any)
	if len(ests) != 1 {
		t.Fatalf("estimates %v", ests)
	}

	resp, body = postJSON(t, srv.URL, "/v1/mine", `{"min_support":0.2,"max_k":2}`)
	if resp.StatusCode != http.StatusOK || body["results"] == nil {
		t.Fatalf("mine: %d %v", resp.StatusCode, body)
	}

	resp, body = postJSON(t, srv.URL, "/v1/heavyhitters", `{"phi":0.2}`)
	if resp.StatusCode != http.StatusOK || body["items"] == nil {
		t.Fatalf("heavyhitters: %d %v", resp.StatusCode, body)
	}

	resp, body = postJSON(t, srv.URL, "/v1/checkpoint", `{}`)
	if resp.StatusCode != http.StatusOK || body["checkpointed"] != true {
		t.Fatalf("checkpoint: %d %v", resp.StatusCode, body)
	}

	resp, _ = postJSON(t, srv.URL, "/healthz", ``)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL, "/readyz", ``)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}
}

func TestHTTPValidationFailures(t *testing.T) {
	s := mustNew(t, testConfig(4))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	cases := []struct {
		path, payload string
		wantStatus    int
	}{
		{"/v1/ingest", `{"rows":[[0,9]]}`, http.StatusBadRequest},       // attr out of range
		{"/v1/ingest", `{"rowz":[[0]]}`, http.StatusBadRequest},         // unknown field
		{"/v1/ingest", `not json`, http.StatusBadRequest},               // malformed
		{"/v1/estimate", `{"itemsets":[[0,0]]}`, http.StatusBadRequest}, // duplicate attr
		{"/v1/estimate", `{"itemsets":[[7]]}`, http.StatusBadRequest},   // beyond universe
		{"/v1/heavyhitters", `{"phi":0}`, http.StatusBadRequest},
		{"/v1/heavyhitters", `{"phi":1.5}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, body := postJSON(t, srv.URL, c.path, c.payload)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s %s: status %d, want %d (%v)", c.path, c.payload, resp.StatusCode, c.wantStatus, body)
		}
		if body["shards"] == nil {
			t.Errorf("%s %s: error body without shards object", c.path, c.payload)
		}
		if body["error"] == nil {
			t.Errorf("%s %s: error body without error field", c.path, c.payload)
		}
	}
}

func TestHTTPMethodGuards(t *testing.T) {
	s := mustNew(t, testConfig(4))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for _, path := range []string{"/v1/ingest", "/v1/estimate", "/v1/mine", "/v1/heavyhitters", "/v1/checkpoint", "/v1/kill"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: %d, want 405", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/v1/shards/0/sketch", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST sketch: %d, want 405", resp.StatusCode)
	}
}

func TestHTTPCheckpointNotConfigured(t *testing.T) {
	s := mustNew(t, testConfig(4)) // no CheckpointDir
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, _ := postJSON(t, srv.URL, "/v1/checkpoint", `{}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("checkpoint without dir: %d, want 409", resp.StatusCode)
	}
}

func TestHTTPAllDeadReturns503WithShards(t *testing.T) {
	s := mustNew(t, testConfig(4))
	for i := 0; i < s.NumShards(); i++ {
		s.KillShard(i)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, body := postJSON(t, srv.URL, "/v1/estimate", `{"itemsets":[[0]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-dead estimate: %d, want 503", resp.StatusCode)
	}
	shards := body["shards"].(map[string]any)
	if shards["answered"].(float64) != 0 || shards["total"].(float64) != 4 {
		t.Fatalf("503 body shards %v, want 0/4", shards)
	}
	resp, _ = postJSON(t, srv.URL, "/readyz", ``)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-dead readyz: %d, want 503", resp.StatusCode)
	}
}

// TestHTTPShardSketchReplication: the per-shard sketch endpoint streams
// a standard envelope that round-trips through the public codec.
func TestHTTPShardSketchReplication(t *testing.T) {
	const d = 5
	s := mustNew(t, testConfig(d))
	if _, err := s.Ingest(context.Background(), genRows(800, d, 21)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/shards/0/sketch")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sketch: %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Shard-Seen") == "" {
		t.Fatal("replication stream lacks X-Shard-Seen")
	}
	sk, err := itemsketch.UnmarshalFrom(resp.Body)
	if err != nil {
		t.Fatalf("replicated envelope did not decode: %v", err)
	}
	holder, ok := sk.(core.SampleHolder)
	if !ok {
		t.Fatalf("replicated sketch %s is not sample-backed", sk.Name())
	}
	if holder.Sample().NumCols() != d {
		t.Fatalf("replicated sample has %d cols, want %d", holder.Sample().NumCols(), d)
	}

	for _, path := range []string{"/v1/shards/9/sketch", "/v1/shards/x/sketch", "/v1/shards/0/nope"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}
	s.KillShard(1)
	resp, err = http.Get(srv.URL + "/v1/shards/1/sketch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("dead shard sketch: %d, want 503", resp.StatusCode)
	}
}
