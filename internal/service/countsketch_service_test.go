package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	itemsketch "repro"
	"repro/internal/countsketch"
	"repro/internal/rng"
)

// csTestConfig is testConfig with the count-sketch heavy-hitter path
// enabled (small geometry — the statistical guarantees are the
// countsketch package's property suite's job; here we prove wiring).
func csTestConfig(d int) Config {
	cfg := testConfig(d)
	cfg.CountSketch = &countsketch.Config{Rows: 5, Cols: 128, Base: 4}
	return cfg
}

// skewedRows generates rows where low attributes dominate — attribute a
// appears with probability ~1/(a+2), so 0 and 1 are clear heavy
// hitters of the attribute occurrence stream.
func skewedRows(n, d int, seed uint64) [][]int {
	r := rng.New(seed)
	rows := make([][]int, n)
	for i := range rows {
		var row []int
		for a := 0; a < d; a++ {
			if r.Float64() < 1/float64(a+2) {
				row = append(row, a)
			}
		}
		rows[i] = row
	}
	return rows
}

// TestCountSketchServiceMergeMatchesSingleStream is the mergeability
// contract at the service level: the cross-shard merged count sketch
// answers exactly like one sketch that ingested every row itself —
// sharding is invisible to the heavy-hitter query.
func TestCountSketchServiceMergeMatchesSingleStream(t *testing.T) {
	const d = 10
	cfg := csTestConfig(d)
	s := mustNew(t, cfg)
	rows := skewedRows(4000, d, 31)
	if _, err := s.Ingest(context.Background(), rows); err != nil {
		t.Fatal(err)
	}

	// All shards must share the hash seed, or nothing below works.
	refCfg := s.Shard(0).cs.Config()
	for i := 1; i < s.NumShards(); i++ {
		if got := s.Shard(i).cs.Config(); got != refCfg {
			t.Fatalf("shard %d count-sketch config %+v differs from shard 0's %+v", i, got, refCfg)
		}
	}

	ref, err := countsketch.New(refCfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		for _, a := range row {
			ref.Add(a)
		}
	}

	hits, n, p, err := s.HeavyHitters(context.Background(), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded() {
		t.Fatalf("healthy service answered degraded: %v", p)
	}
	if n != ref.Total() {
		t.Fatalf("merged total %d, single-stream total %d", n, ref.Total())
	}
	want := ref.HeavyHitters(0.15)
	if len(hits) != len(want) {
		t.Fatalf("service hits %v, single-stream %v", hits, want)
	}
	for i := range want {
		if hits[i].Item != want[i].Item || hits[i].Count != want[i].Count {
			t.Fatalf("hit %d: service %+v, single-stream %+v", i, hits[i], want[i])
		}
	}
	if len(hits) == 0 || hits[0].Item != 0 {
		t.Fatalf("attribute 0 dominates the skewed stream but hits = %v", hits)
	}
	if got := s.HeavyHitterSource(); got != "count-sketch" {
		t.Fatalf("HeavyHitterSource = %q", got)
	}
}

// TestCountSketchCheckpointKillRecover is the satellite acceptance
// path: ingest → checkpoint → kill (abandon without Close) →
// StrictRecovery restart → bit-exact heavy hitters and totals.
func TestCountSketchCheckpointKillRecover(t *testing.T) {
	const d = 8
	dir := t.TempDir()
	cfg := csTestConfig(d)
	cfg.CheckpointDir = dir
	ctx := context.Background()

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Ingest(ctx, skewedRows(2500, d, 77)); err != nil {
		t.Fatal(err)
	}
	if err := first.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantHits, wantN, _, err := first.HeavyHitters(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	wantEsts, _, err := first.Estimate(ctx, []itemsketch.Itemset{itemsketch.MustItemset(0), itemsketch.MustItemset(d - 1)})
	if err != nil {
		t.Fatal(err)
	}
	// Simulated kill: the service is abandoned, never Closed — only the
	// explicit checkpoint above survives.

	cfg.StrictRecovery = true
	second := mustNew(t, cfg)
	gotHits, gotN, p, err := second.HeavyHitters(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Degraded() {
		t.Fatalf("recovered service degraded: %v", p)
	}
	if gotN != wantN {
		t.Fatalf("recovered total %d, want %d (count sketch must survive bit-exact)", gotN, wantN)
	}
	if len(gotHits) != len(wantHits) {
		t.Fatalf("recovered hits %v, want %v", gotHits, wantHits)
	}
	for i := range wantHits {
		if gotHits[i] != wantHits[i] {
			t.Fatalf("hit %d: recovered %+v, want %+v", i, gotHits[i], wantHits[i])
		}
	}
	gotEsts, _, err := second.Estimate(ctx, []itemsketch.Itemset{itemsketch.MustItemset(0), itemsketch.MustItemset(d - 1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantEsts {
		if gotEsts[i] != wantEsts[i] {
			t.Fatalf("estimate %d: recovered %v, want %v", i, gotEsts[i], wantEsts[i])
		}
	}
	// The recovered sketches keep streaming and stay mergeable.
	if _, err := second.Ingest(ctx, skewedRows(200, d, 78)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := second.HeavyHitters(ctx, 0.2); err != nil {
		t.Fatal(err)
	}
	first.Close()
}

// csCheckpointImage checkpoints a one-shard count-sketch service and
// returns the raw version-2 image plus the expected sketch config.
func csCheckpointImage(t *testing.T, dir string) ([]byte, countsketch.Config) {
	t.Helper()
	cfg := csTestConfig(6)
	cfg.Shards = 1
	cfg.SampleCapacity = 64
	cfg.CheckpointDir = dir
	s := mustNew(t, cfg)
	if _, err := s.Ingest(context.Background(), skewedRows(400, 6, 11)); err != nil {
		t.Fatal(err)
	}
	if err := s.Shard(0).Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := s.Shard(0).cs.Config()
	raw, err := os.ReadFile(filepath.Join(dir, "shard-0.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return raw, want
}

// TestCountSketchCheckpointTruncationAndMismatch extends the
// kill-at-every-offset acceptance property to the version-2 image (the
// count-sketch section included), and pins the config-mismatch
// rejections: a checkpointed sketch never restarts onto different
// hashes, and a sketch-bearing image is refused by a sketch-less
// config.
func TestCountSketchCheckpointTruncationAndMismatch(t *testing.T) {
	raw, want := csCheckpointImage(t, t.TempDir())
	for off := 0; off < len(raw); off++ {
		_, err := readCheckpoint(bytes.NewReader(raw[:off]), 0, 6, 64, &want, nil, nil)
		if err == nil {
			t.Fatalf("offset %d/%d: truncated v2 checkpoint decoded without error", off, len(raw))
		}
		if !errors.Is(err, itemsketch.ErrTruncatedStream) {
			t.Fatalf("offset %d/%d: %v does not wrap ErrTruncatedStream", off, len(raw), err)
		}
	}
	if _, err := readCheckpoint(bytes.NewReader(raw), 0, 6, 64, &want, nil, nil); err != nil {
		t.Fatalf("full v2 image failed to recover: %v", err)
	}

	// Same bytes, config without a count sketch: corrupt, not silent.
	if _, err := readCheckpoint(bytes.NewReader(raw), 0, 6, 64, nil, nil, nil); !errors.Is(err, itemsketch.ErrCorruptSketch) {
		t.Fatalf("sketch-bearing image with sketch-less config: %v, want ErrCorruptSketch", err)
	}
	// Same bytes, different expected geometry or seed: corrupt.
	for _, mutate := range []func(*countsketch.Config){
		func(c *countsketch.Config) { c.Cols *= 2 },
		func(c *countsketch.Config) { c.Seed ^= 1 },
	} {
		other := want
		mutate(&other)
		if _, err := readCheckpoint(bytes.NewReader(raw), 0, 6, 64, &other, nil, nil); !errors.Is(err, itemsketch.ErrCorruptSketch) {
			t.Fatalf("mismatched config %+v: %v, want ErrCorruptSketch", other, err)
		}
	}

	// A version-1 image (no count-sketch section) still reads under a
	// count-sketch config, starting the sketch empty.
	v1, _ := checkpointImage(t, t.TempDir())
	rec, err := readCheckpoint(bytes.NewReader(v1), 0, 6, 64, &want, nil, nil)
	if err != nil {
		t.Fatalf("v2 reader rejected its own sketch-less image: %v", err)
	}
	if rec.cs != nil {
		t.Fatal("sketch-less image recovered a count sketch")
	}
}

// TestCountSketchHTTPDegradation drives /v1/heavyhitters over HTTP
// with a killed shard: the response must stay 200, name the dead shard
// in X-Shards-Answered/X-Shards-Missing, and carry the count-sketch
// source marker.
func TestCountSketchHTTPDegradation(t *testing.T) {
	const d = 8
	s := mustNew(t, csTestConfig(d))
	if _, err := s.Ingest(context.Background(), skewedRows(2000, d, 55)); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, body := postJSON(t, srv.URL, "/v1/heavyhitters", `{"phi":0.2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heavyhitters: %d %v", resp.StatusCode, body)
	}
	if body["source"] != "count-sketch" {
		t.Fatalf("source = %v, want count-sketch", body["source"])
	}
	if got := resp.Header.Get("X-Shards-Answered"); got != "4/4" {
		t.Fatalf("X-Shards-Answered %q, want 4/4", got)
	}
	fullItems := body["items"].([]any)
	if len(fullItems) == 0 {
		t.Fatal("no heavy hitters over a skewed stream")
	}

	s.KillShard(2)
	resp, body = postJSON(t, srv.URL, "/v1/heavyhitters", `{"phi":0.2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded heavyhitters: %d %v", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Shards-Answered"); got != "3/4" {
		t.Fatalf("degraded X-Shards-Answered %q, want 3/4", got)
	}
	if got := resp.Header.Get("X-Shards-Missing"); got != "2" {
		t.Fatalf("degraded X-Shards-Missing %q, want 2", got)
	}
	shards := body["shards"].(map[string]any)
	if shards["answered"].(float64) != 3 || shards["total"].(float64) != 4 {
		t.Fatalf("degraded body shards %v", shards)
	}
	if len(body["items"].([]any)) == 0 {
		t.Fatal("degraded response lost all heavy hitters")
	}

	// Fully dead: 503 that still reports the degradation state.
	for i := 0; i < s.NumShards(); i++ {
		s.KillShard(i)
	}
	resp, body = postJSON(t, srv.URL, "/v1/heavyhitters", `{"phi":0.2}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-dead heavyhitters: %d, want 503", resp.StatusCode)
	}
	if body["shards"] == nil || !strings.Contains(body["error"].(string), "no shards") {
		t.Fatalf("all-dead body %v", body)
	}
}

// itemsOf collects a hit list's item set for containment checks.
func itemsOf(hits []HeavyHitter) map[int]bool {
	set := make(map[int]bool, len(hits))
	for _, h := range hits {
		set[h.Item] = true
	}
	return set
}

// TestCountSketchVsMisraGriesSources runs the same stream through a
// count-sketch service and an MG-only service: both heavy-hitter paths
// must surface the dominant attribute, and the source marker must
// distinguish them.
func TestCountSketchVsMisraGriesSources(t *testing.T) {
	const d = 10
	rows := skewedRows(3000, d, 99)
	ctx := context.Background()

	csSvc := mustNew(t, csTestConfig(d))
	mgSvc := mustNew(t, testConfig(d))
	if mgSvc.HeavyHitterSource() != "misra-gries" {
		t.Fatalf("MG service source = %q", mgSvc.HeavyHitterSource())
	}
	for _, s := range []*Service{csSvc, mgSvc} {
		if _, err := s.Ingest(ctx, rows); err != nil {
			t.Fatal(err)
		}
	}
	csHits, _, _, err := csSvc.HeavyHitters(ctx, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	mgHits, _, _, err := mgSvc.HeavyHitters(ctx, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if !itemsOf(csHits)[0] || !itemsOf(mgHits)[0] {
		t.Fatalf("dominant attribute 0 missing: count-sketch %v, misra-gries %v", csHits, mgHits)
	}
	// JSON shape: the HeavyHitter rows marshal identically either way.
	if _, err := json.Marshal(csHits); err != nil {
		t.Fatal(err)
	}
}

// TestCountSketchMergeCache pins the read-side memoization: repeated
// heavy-hitter queries against an unchanged service reuse one merged
// sketch (and agree exactly), any ingest invalidates the generation,
// and killing a shard changes the key rather than serving stale shards.
func TestCountSketchMergeCache(t *testing.T) {
	const d = 10
	ctx := context.Background()
	s := mustNew(t, csTestConfig(d))
	if _, err := s.Ingest(ctx, skewedRows(2000, d, 5)); err != nil {
		t.Fatal(err)
	}

	first, n1, _, err := s.HeavyHitters(ctx, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	base := s.csMerge.builds.Load()
	if base == 0 {
		t.Fatal("first query did not build a merge")
	}
	for i := 0; i < 10; i++ {
		again, n2, p, err := s.HeavyHitters(ctx, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Degraded() {
			t.Fatalf("cached query reported partial %v", p)
		}
		if n2 != n1 || len(again) != len(first) {
			t.Fatalf("cached answer (%v, %d) != first (%v, %d)", again, n2, first, n1)
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("cached hitter %d: %+v != %+v", j, again[j], first[j])
			}
		}
	}
	if got := s.csMerge.builds.Load(); got != base {
		t.Fatalf("10 repeat queries rebuilt the merge %d times", got-base)
	}

	// Ingest republishes snapshots: the next query must re-merge.
	if _, err := s.Ingest(ctx, skewedRows(100, d, 6)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.HeavyHitters(ctx, 0.2); err != nil {
		t.Fatal(err)
	}
	if got := s.csMerge.builds.Load(); got != base+1 {
		t.Fatalf("post-ingest query built %d merges, want exactly 1 more", got-base)
	}

	// A dead shard shrinks the candidate set: re-merge, and the cached
	// generation must answer 3/4 afterwards, not resurrect the corpse.
	s.KillShard(2)
	after := s.csMerge.builds.Load()
	for i := 0; i < 3; i++ {
		_, _, p, err := s.HeavyHitters(ctx, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Answered != 3 || len(p.Missing) != 1 || p.Missing[0] != 2 {
			t.Fatalf("post-kill partial %v, want 3/4 missing shard 2", p)
		}
	}
	if got := s.csMerge.builds.Load(); got != after+1 {
		t.Fatalf("post-kill queries built %d merges, want exactly 1", got-after)
	}
}

// BenchmarkHeavyHittersHot measures the steady-state heavy-hitter
// query against an unchanged service — the S1 target: the per-query
// cost is the dyadic descent only, the cross-shard merge is memoized
// away. Run with -benchtime against BenchmarkHeavyHittersCold to see
// the re-merge cost that used to sit on this path.
func BenchmarkHeavyHittersHot(b *testing.B) {
	s := benchCSService(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := s.HeavyHitters(ctx, 0.2); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if merges := s.csMerge.builds.Load(); merges > 1 {
		b.Fatalf("hot path re-merged %d times for %d queries", merges, b.N)
	}
}

// BenchmarkHeavyHittersCold forces a merge rebuild per query by
// clearing the cached generation — the pre-memoization behavior.
func BenchmarkHeavyHittersCold(b *testing.B) {
	s := benchCSService(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.csMerge.gen.Store(nil)
		if _, _, _, err := s.HeavyHitters(ctx, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCSService(b *testing.B) *Service {
	const d = 12
	cfg := csTestConfig(d)
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	if _, err := s.Ingest(context.Background(), skewedRows(5000, d, 7)); err != nil {
		b.Fatal(err)
	}
	return s
}
