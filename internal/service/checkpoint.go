package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	itemsketch "repro"
	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/countsketch"
	"repro/internal/stream"
)

// Checkpoint file layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "ISKP"
//	4       1     version (1)
//	5       2     shard id
//	7       8     rows seen
//	15      4     reservoir capacity
//	19      4     Misra–Gries k (0 = heavy-hitter path disabled)
//	23      8     reservoir restart seed
//	31      4     CRC-32 (IEEE) of bytes [0,31)
//	35      ...   sketch envelope (itemsketch.MarshalTo of the sample
//	              wrapped as a SUBSAMPLE sketch)
//	...     ...   Misra–Gries section when k > 0:
//	              n u64, counter count u32, (item u32, count u64)...,
//	              CRC-32 of the section bytes
//	...     1     count-sketch presence flag (version ≥ 2)
//	...     ...   count-sketch envelope (itemsketch.MarshalTo) when the
//	              flag is 1
//	...     1     windowed-reservoir presence flag (version ≥ 3)
//	...     ...   windowed-reservoir envelope when the flag is 1
//	...     1     decayed-misra-gries presence flag (version ≥ 3)
//	...     ...   decayed-misra-gries envelope when the flag is 1
//
// The envelopes reuse the public streaming codec, so a checkpoint's
// sketch portions are inspectable and recoverable by the same tooling
// as any other sketch file, and inherit its chunked-CRC torn-stream
// detection. The header carries exactly the state the envelope cannot:
// Algorithm R's stream position, the capacity (the sample may be
// smaller near the start of a stream), and a fresh seed — which is all
// a reservoir needs to continue the stream with its uniformity
// guarantee intact (see stream.RestoreReservoir). The count sketch and
// the window sketches need no header help: their envelopes carry
// geometry, seeds and counters, everything their exact state is.
//
// Version 3 (this build) appends the two sliding-window sections;
// version-2 files (count sketch, no window) and version-1 files (no
// count-sketch section either) still read, starting any configured
// window sketches empty.
const (
	ckptMagic      = "ISKP"
	ckptVersion    = 3
	ckptHeaderSize = 35
)

// ckptCorruptf mirrors the codec's corruptf for checkpoint-level
// failures, wrapping the public ErrCorruptSketch.
func ckptCorruptf(format string, args ...any) error {
	return fmt.Errorf("%w: checkpoint %s", itemsketch.ErrCorruptSketch, fmt.Sprintf(format, args...))
}

// ckptTruncatedf marks a checkpoint that ended early, wrapping both
// ErrCorruptSketch and ErrTruncatedStream like the codec does.
func ckptTruncatedf(format string, args ...any) error {
	return fmt.Errorf("%w: %w: checkpoint %s", itemsketch.ErrCorruptSketch, itemsketch.ErrTruncatedStream, fmt.Sprintf(format, args...))
}

// checkpointPath returns shard i's checkpoint file path.
func (s *Service) checkpointPath(id int) string {
	return filepath.Join(s.cfg.CheckpointDir, fmt.Sprintf("shard-%d.ckpt", id))
}

// ckptState is the frozen shard state a checkpoint persists, captured
// under the shard lock and written outside it.
type ckptState struct {
	seen     int64
	capacity int
	seed     uint64
	sketch   itemsketch.Sketch
	mgK      int
	mgN      int64
	mgItems  []int
	mgCounts []int64
	cs       *countsketch.Sketch       // frozen clone; nil when disabled
	win      *stream.WindowedReservoir // frozen clone; nil when disabled
	dmg      *stream.DecayedMisraGries // frozen clone; nil when disabled
}

// Checkpoint persists the shard's current state crash-safely: the
// state is frozen under the shard lock, encoded through the public
// envelope codec, and written with atomicfile (temp + fsync + rename)
// under the retry policy, through Config.CheckpointWriteWrap when set.
// A kill at any byte offset leaves the previous checkpoint intact.
// Failures degrade the shard; success resets its failure streak.
func (sh *Shard) Checkpoint() error {
	if sh.svc.cfg.CheckpointDir == "" {
		return nil
	}
	st, err := sh.freezeForCheckpoint()
	if err != nil {
		sh.recordFailure(err)
		return err
	}
	err = sh.withRetry(context.Background(), func(int) error {
		return atomicfile.Write(sh.svc.checkpointPath(sh.id), func(w io.Writer) error {
			if wrap := sh.svc.cfg.CheckpointWriteWrap; wrap != nil {
				w = wrap(w)
			}
			return writeCheckpoint(w, sh.id, st)
		})
	})
	if err != nil {
		sh.recordFailure(err)
		return err
	}
	sh.checkpoints.Add(1)
	sh.recordSuccess()
	return nil
}

// freezeForCheckpoint captures a consistent snapshot of the shard's
// persistent state and resets the auto-checkpoint counter. The restart
// seed is drawn from the shard's generator, so recovered reservoirs
// get coins independent of anything used before the crash.
func (sh *Shard) freezeForCheckpoint() (ckptState, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := ckptState{
		seen:     sh.res.Seen(),
		capacity: sh.res.Capacity(),
		seed:     sh.jrng.Uint64(),
	}
	sk, err := core.SubsampleFromSample(sh.res.Database(), sh.svc.cfg.Params)
	if err != nil {
		return ckptState{}, err
	}
	st.sketch = sk
	if sh.mg != nil {
		st.mgK = sh.svc.cfg.HeavyK
		st.mgN, st.mgItems, st.mgCounts = sh.mg.Snapshot()
	}
	if sh.cs != nil {
		st.cs = sh.cs.Clone()
	}
	if sh.win != nil {
		st.win = sh.win.Clone()
	}
	if sh.dmg != nil {
		st.dmg = sh.dmg.Clone()
	}
	sh.sinceCkpt = 0
	return st, nil
}

// writeCheckpoint streams one checkpoint image to w.
func writeCheckpoint(w io.Writer, id int, st ckptState) error {
	var hdr [ckptHeaderSize]byte
	copy(hdr[0:4], ckptMagic)
	hdr[4] = ckptVersion
	binary.LittleEndian.PutUint16(hdr[5:7], uint16(id))
	binary.LittleEndian.PutUint64(hdr[7:15], uint64(st.seen))
	binary.LittleEndian.PutUint32(hdr[15:19], uint32(st.capacity))
	binary.LittleEndian.PutUint32(hdr[19:23], uint32(st.mgK))
	binary.LittleEndian.PutUint64(hdr[23:31], st.seed)
	binary.LittleEndian.PutUint32(hdr[31:35], crc32.ChecksumIEEE(hdr[:31]))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := itemsketch.MarshalTo(w, st.sketch); err != nil {
		return err
	}
	if st.mgK > 0 {
		var sec bytes.Buffer
		var b8 [8]byte
		binary.LittleEndian.PutUint64(b8[:], uint64(st.mgN))
		sec.Write(b8[:])
		binary.LittleEndian.PutUint32(b8[:4], uint32(len(st.mgItems)))
		sec.Write(b8[:4])
		for i, it := range st.mgItems {
			binary.LittleEndian.PutUint32(b8[:4], uint32(it))
			sec.Write(b8[:4])
			binary.LittleEndian.PutUint64(b8[:], uint64(st.mgCounts[i]))
			sec.Write(b8[:])
		}
		binary.LittleEndian.PutUint32(b8[:4], crc32.ChecksumIEEE(sec.Bytes()))
		sec.Write(b8[:4])
		if _, err := w.Write(sec.Bytes()); err != nil {
			return err
		}
	}
	for _, sec := range []itemsketch.Sketch{sketchOrNil(st.cs), sketchOrNil(st.win), sketchOrNil(st.dmg)} {
		flag := []byte{0}
		if sec != nil {
			flag[0] = 1
		}
		if _, err := w.Write(flag); err != nil {
			return err
		}
		if sec != nil {
			if _, err := itemsketch.MarshalTo(w, sec); err != nil {
				return err
			}
		}
	}
	return nil
}

// sketchOrNil lifts a typed nil sketch pointer into an untyped nil
// interface, so the flag-section loop's nil test works.
func sketchOrNil[T interface {
	itemsketch.Sketch
	comparable
}](s T) itemsketch.Sketch {
	var zero T
	if s == zero {
		return nil
	}
	return s
}

// readSection fills buf from r, classifying an early end of stream as
// the given truncation message while letting transport errors (a
// failing disk, an injected fault) surface bare.
func readSection(r io.Reader, buf []byte, truncMsg string) error {
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ckptTruncatedf("%s", truncMsg)
		}
		return err
	}
	return nil
}

// recovered is the state readCheckpoint hands back for shard restart.
type recovered struct {
	res *stream.Reservoir
	mg  *stream.MisraGries
	cs  *countsketch.Sketch
	win *stream.WindowedReservoir
	dmg *stream.DecayedMisraGries
}

// readCheckpoint decodes and validates one checkpoint image from r.
// Truncation wraps ErrTruncatedStream, corruption wraps
// ErrCorruptSketch (the sketch envelope's own classification passes
// through), and transport errors from r surface bare. wantCS, when
// non-nil, is the resolved count-sketch configuration the recovered
// sketch must match exactly — geometry, hash seed and params — because
// a shard restarted onto different hashes could never merge with its
// peers again. wantWin and wantDmg are the shard's freshly built window
// sketches (nil when the window is disabled); a recovered window
// section must match their geometry, seed and params for the same
// reason.
func readCheckpoint(r io.Reader, wantID, wantAttrs, wantK int, wantCS *countsketch.Config,
	wantWin *stream.WindowedReservoir, wantDmg *stream.DecayedMisraGries) (recovered, error) {
	var hdr [ckptHeaderSize]byte
	if err := readSection(r, hdr[:], "header cut short"); err != nil {
		return recovered{}, err
	}
	if string(hdr[0:4]) != ckptMagic {
		return recovered{}, ckptCorruptf("bad magic %q", hdr[0:4])
	}
	if got, want := binary.LittleEndian.Uint32(hdr[31:35]), crc32.ChecksumIEEE(hdr[:31]); got != want {
		return recovered{}, ckptCorruptf("header checksum 0x%08x, want 0x%08x", got, want)
	}
	version := int(hdr[4])
	if version < 1 || version > ckptVersion {
		return recovered{}, fmt.Errorf("%w: checkpoint version %d, this build reads 1..%d",
			itemsketch.ErrUnsupportedVersion, version, ckptVersion)
	}
	if id := int(binary.LittleEndian.Uint16(hdr[5:7])); id != wantID {
		return recovered{}, ckptCorruptf("belongs to shard %d, not %d", id, wantID)
	}
	seen := int64(binary.LittleEndian.Uint64(hdr[7:15]))
	capacity := int(binary.LittleEndian.Uint32(hdr[15:19]))
	mgK := int(binary.LittleEndian.Uint32(hdr[19:23]))
	seed := binary.LittleEndian.Uint64(hdr[23:31])
	if mgK != wantK && !(mgK == 0 && wantK <= 0) {
		return recovered{}, ckptCorruptf("misra-gries k = %d, config wants %d", mgK, wantK)
	}

	sk, err := itemsketch.UnmarshalFrom(r)
	if err != nil {
		return recovered{}, err
	}
	holder, ok := sk.(core.SampleHolder)
	if !ok {
		return recovered{}, ckptCorruptf("envelope holds a %s sketch, not a sample-backed one", sk.Name())
	}
	sample := holder.Sample()
	if sample.NumCols() != wantAttrs {
		return recovered{}, ckptCorruptf("sample has %d attributes, config wants %d", sample.NumCols(), wantAttrs)
	}
	res, err := stream.RestoreReservoir(sample, capacity, seen, seed)
	if err != nil {
		return recovered{}, ckptCorruptf("reservoir state rejected: %v", err)
	}
	out := recovered{res: res}

	if mgK > 0 {
		var fixed [12]byte
		if err := readSection(r, fixed[:], "heavy-hitter section header missing"); err != nil {
			return recovered{}, err
		}
		n := int64(binary.LittleEndian.Uint64(fixed[0:8]))
		count := int(binary.LittleEndian.Uint32(fixed[8:12]))
		if count > mgK-1 {
			return recovered{}, ckptCorruptf("heavy-hitter section claims %d counters for k = %d", count, mgK)
		}
		body := make([]byte, count*12)
		if err := readSection(r, body, "heavy-hitter counters truncated"); err != nil {
			return recovered{}, err
		}
		var crcBuf [4]byte
		if err := readSection(r, crcBuf[:], "heavy-hitter checksum missing"); err != nil {
			return recovered{}, err
		}
		crc := crc32.ChecksumIEEE(fixed[:])
		crc = crc32.Update(crc, crc32.IEEETable, body)
		if got := binary.LittleEndian.Uint32(crcBuf[:]); got != crc {
			return recovered{}, ckptCorruptf("heavy-hitter checksum 0x%08x, want 0x%08x", got, crc)
		}
		items := make([]int, count)
		counts := make([]int64, count)
		for i := 0; i < count; i++ {
			items[i] = int(binary.LittleEndian.Uint32(body[i*12 : i*12+4]))
			counts[i] = int64(binary.LittleEndian.Uint64(body[i*12+4 : i*12+12]))
		}
		mg, err := stream.RestoreMisraGries(mgK, n, items, counts)
		if err != nil {
			return recovered{}, ckptCorruptf("heavy-hitter state rejected: %v", err)
		}
		out.mg = mg
	}

	if version >= 2 {
		var flag [1]byte
		if err := readSection(r, flag[:], "count-sketch flag missing"); err != nil {
			return recovered{}, err
		}
		switch flag[0] {
		case 0:
			// Checkpoint taken with the count sketch disabled. A config
			// that enables it now starts the sketch empty (same contract
			// as a version-1 file).
		case 1:
			sk, err := itemsketch.UnmarshalFrom(r)
			if err != nil {
				return recovered{}, err
			}
			cs, ok := sk.(*countsketch.Sketch)
			if !ok {
				return recovered{}, ckptCorruptf("count-sketch section holds a %s sketch", sk.Name())
			}
			if wantCS == nil {
				return recovered{}, ckptCorruptf("carries a count sketch but the config has none")
			}
			if got := cs.Config(); got != *wantCS {
				return recovered{}, ckptCorruptf("count sketch was built with a different geometry or seed")
			}
			out.cs = cs
		default:
			return recovered{}, ckptCorruptf("count-sketch flag = %d", flag[0])
		}
	}

	if version >= 3 {
		var flag [1]byte
		if err := readSection(r, flag[:], "window flag missing"); err != nil {
			return recovered{}, err
		}
		switch flag[0] {
		case 0:
			// Taken with the window disabled; a config enabling it now
			// starts the window empty.
		case 1:
			sk, err := itemsketch.UnmarshalFrom(r)
			if err != nil {
				return recovered{}, err
			}
			win, ok := sk.(*stream.WindowedReservoir)
			if !ok {
				return recovered{}, ckptCorruptf("window section holds a %s sketch", sk.Name())
			}
			if wantWin == nil {
				return recovered{}, ckptCorruptf("carries a window sketch but the config has none")
			}
			if win.NumAttrs() != wantWin.NumAttrs() || win.WindowRows() != wantWin.WindowRows() ||
				win.Buckets() != wantWin.Buckets() || win.Capacity() != wantWin.Capacity() ||
				win.Seed() != wantWin.Seed() || win.Params() != wantWin.Params() {
				return recovered{}, ckptCorruptf("window sketch was built with a different geometry or seed")
			}
			out.win = win
		default:
			return recovered{}, ckptCorruptf("window flag = %d", flag[0])
		}
		if err := readSection(r, flag[:], "decayed-summary flag missing"); err != nil {
			return recovered{}, err
		}
		switch flag[0] {
		case 0:
		case 1:
			sk, err := itemsketch.UnmarshalFrom(r)
			if err != nil {
				return recovered{}, err
			}
			dmg, ok := sk.(*stream.DecayedMisraGries)
			if !ok {
				return recovered{}, ckptCorruptf("decayed-summary section holds a %s sketch", sk.Name())
			}
			if wantDmg == nil {
				return recovered{}, ckptCorruptf("carries a decayed summary but the config has none")
			}
			if dmg.NumAttrs() != wantDmg.NumAttrs() || dmg.K() != wantDmg.K() ||
				dmg.Lambda() != wantDmg.Lambda() || dmg.Params() != wantDmg.Params() {
				return recovered{}, ckptCorruptf("decayed summary was built with different parameters")
			}
			out.dmg = dmg
		default:
			return recovered{}, ckptCorruptf("decayed-summary flag = %d", flag[0])
		}
	}
	return out, nil
}

// recoverAll replays the newest valid checkpoint of every shard from
// cfg.CheckpointDir. A missing file starts the shard empty (a fresh
// deployment, not a fault). A torn or corrupt checkpoint fails New
// under StrictRecovery; otherwise the shard starts empty and Degraded,
// with the decode error held as its last error — visible on /healthz,
// recoverable by the next successful ingest.
func (s *Service) recoverAll() error {
	for _, sh := range s.shards {
		err := sh.recover()
		if err == nil {
			continue
		}
		if s.cfg.StrictRecovery {
			return fmt.Errorf("shard %d: %w", sh.id, err)
		}
		sh.recordFailure(fmt.Errorf("recovery: %w", err))
		sh.state.CompareAndSwap(int32(Healthy), int32(Degraded))
	}
	return nil
}

// recover replays this shard's checkpoint file if one exists.
func (sh *Shard) recover() error {
	f, err := os.Open(sh.svc.checkpointPath(sh.id))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	defer f.Close()
	var r io.Reader = f
	if wrap := sh.svc.cfg.CheckpointReadWrap; wrap != nil {
		r = wrap(r)
	}
	// The expected count-sketch config comes from the freshly built
	// sketch, not s.csCfg: the sketch's Config() carries the resolved
	// geometry defaults and derived params a raw config may leave zero.
	var wantCS *countsketch.Config
	if sh.cs != nil {
		c := sh.cs.Config()
		wantCS = &c
	}
	rec, err := readCheckpoint(r, sh.id, sh.svc.cfg.NumAttrs, sh.svc.cfg.HeavyK, wantCS, sh.win, sh.dmg)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	sh.res = rec.res
	if sh.mg != nil && rec.mg != nil {
		sh.mg = rec.mg
	}
	if sh.cs != nil && rec.cs != nil {
		sh.cs = rec.cs
	}
	if sh.win != nil && rec.win != nil {
		sh.win = rec.win
	}
	if sh.dmg != nil && rec.dmg != nil {
		sh.dmg = rec.dmg
	}
	sh.publishSnapshotLocked()
	sh.mu.Unlock()
	return nil
}
