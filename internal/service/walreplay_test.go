package service

import (
	"context"
	"testing"

	itemsketch "repro"
	"repro/internal/ingest"
)

// TestWALReplayReproducesServiceEstimates is the PR's acceptance pin:
// rows logged to a write-ahead log and replayed into a fresh,
// identically-configured service reproduce the uncrashed run's
// estimates bit for bit — whole-stream and windowed, heavy hitters
// included. This holds because (1) the WAL replays rows in append
// order with canonical ascending attribute sets, (2) Ingest routes
// rows round-robin from a deterministic cursor, and (3) every sketch
// in the pipeline draws its coins from Config.Seed alone.
func TestWALReplayReproducesServiceEstimates(t *testing.T) {
	const d = 8
	ctx := context.Background()
	cfg := windowConfig(d)
	ts := []itemsketch.Itemset{
		itemsketch.MustItemset(0), itemsketch.MustItemset(d - 1),
		itemsketch.MustItemset(0, d-1),
	}
	// genRows emits ascending duplicate-free attribute lists — the
	// canonical form WAL replay hands back, so the two runs see
	// byte-identical rows.
	rows := genRows(3000, d, 23)

	// Uncrashed run: every row goes to the service and the WAL.
	wdir := t.TempDir()
	w, err := ingest.OpenWAL(ingest.WALConfig{Dir: wdir, NumAttrs: d})
	if err != nil {
		t.Fatal(err)
	}
	live := mustNew(t, cfg)
	for _, row := range rows {
		if _, err := live.Ingest(ctx, [][]int{row}); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(row...); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	wantWhole := estimateBits(t, live.Estimate, ts)
	wantWin := estimateBits(t, live.EstimateWindow, ts)
	wantHeavy, wantN, _, err := live.HeavyHitters(ctx, 0.1)
	if err != nil {
		t.Fatal(err)
	}

	// Crash-recovery run: a fresh service fed solely from the log.
	fresh := mustNew(t, cfg)
	replayed, err := ingest.ReplayDir(wdir, d, nil, func(attrs []int) error {
		// ReplayDir reuses its row buffer; Ingest is handed a copy.
		row := append([]int(nil), attrs...)
		_, ierr := fresh.Ingest(ctx, [][]int{row})
		return ierr
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed != int64(len(rows)) {
		t.Fatalf("replayed %d rows, logged %d", replayed, len(rows))
	}

	gotWhole := estimateBits(t, fresh.Estimate, ts)
	gotWin := estimateBits(t, fresh.EstimateWindow, ts)
	for i := range ts {
		if gotWhole[i] != wantWhole[i] {
			t.Errorf("estimate %d: replayed %x != live %x", i, gotWhole[i], wantWhole[i])
		}
		if gotWin[i] != wantWin[i] {
			t.Errorf("window estimate %d: replayed %x != live %x", i, gotWin[i], wantWin[i])
		}
	}
	gotHeavy, gotN, _, err := fresh.HeavyHitters(ctx, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if gotN != wantN || len(gotHeavy) != len(wantHeavy) {
		t.Fatalf("heavy hitters (%v, %d) != (%v, %d) after replay", gotHeavy, gotN, wantHeavy, wantN)
	}
	for i := range wantHeavy {
		if gotHeavy[i] != wantHeavy[i] {
			t.Errorf("heavy hitter %d: replayed %+v != live %+v", i, gotHeavy[i], wantHeavy[i])
		}
	}
}
