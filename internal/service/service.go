// Package service is the network-facing query tier over mergeable
// sketch shards — the serving architecture the paper's O(1)-mergeable
// summaries make possible, built with fault tolerance as the design
// center.
//
// Each shard owns an independent row stream: a worker goroutine
// ingests rows into a streaming Reservoir (the paper's SUBSAMPLE
// sketch built one pass at a time) and, optionally, a Misra–Gries
// heavy-hitter summary. Queries never touch live ingest state; they
// read immutable snapshots (cloned, column-indexed samples) published
// after every ingest batch, fan out per shard through the ctx-aware
// query.EstimateMany batch path, and combine cross-shard on read:
// frequency estimates by seen-weighted averaging (the merged-reservoir
// expectation), mining over a stream.Merge of the shard reservoirs,
// heavy hitters over stream.MergeMG.
//
// The robustness model:
//
//   - Shard failures are isolated and degraded, never fatal. Shards
//     carry a health state (Healthy → Degraded → Dead) driven by
//     consecutive-failure counters; queries skip dead shards and
//     report partial results naming who was missing
//     (X-Shards-Answered) instead of failing the request. A dead
//     shard's ingest slot re-homes to the live shards, and a
//     replacement can be bootstrapped from a peer's replication
//     envelope (see rehome.go), so degradation is recoverable.
//   - The read side exploits mergeability instead of repeating it:
//     every cross-shard merge (count sketch, Misra–Gries, decayed
//     Misra–Gries, the Mine union sample) is memoized per snapshot
//     generation (mergecache.go), and concurrent Estimate calls can
//     coalesce into one fan-out per linger window (coalesce.go).
//   - Fallible operations — ingest application and checkpoint I/O —
//     run under bounded retry with exponential backoff and seeded
//     jitter.
//   - Checkpoints are crash-safe: shard state streams through
//     itemsketch.MarshalTo into a temp file that is fsynced and
//     atomically renamed (internal/atomicfile), so a kill at any byte
//     offset leaves the previous checkpoint intact; recovery replays
//     the newest valid checkpoint and reports torn ones cleanly.
//   - Deadlines thread from the HTTP request context into
//     EstimateMany's mid-batch cancellation, so a slow shard costs at
//     most one chunk of work past its budget.
//
// Fault injection hooks (Config.IngestFault and the checkpoint
// read/write wrappers) accept internal/faultio wrappers, which is how
// the chaos tests and cmd/loadgen drive the service through injected
// short reads, torn writes and transient transport errors.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	itemsketch "repro"
	"repro/internal/countsketch"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/stream"
)

// Health is a shard's serving state.
type Health int32

// The shard health states: a Healthy shard serves and ingests;
// Degraded marks recent failures (still serving, still retrying);
// Dead shards are excluded from ingest routing and query fan-out.
const (
	Healthy Health = iota
	Degraded
	Dead
)

// String returns the lowercase state name.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("health(%d)", int32(h))
}

// Sentinel errors of the service layer. They wrap the public
// itemsketch taxonomy where one applies.
var (
	// ErrNoShards marks a query that no live shard could answer — the
	// fully-degraded case a caller sees as 503.
	ErrNoShards = errors.New("service: no shards answered")
	// ErrShardDead marks an operation addressed to a dead shard.
	ErrShardDead = errors.New("service: shard is dead")
	// ErrRetriesExhausted marks an operation that failed through every
	// backoff attempt.
	ErrRetriesExhausted = errors.New("service: retries exhausted")
	// ErrClosed marks an operation submitted after Close began.
	ErrClosed = errors.New("service: closed")
	// ErrNoWindow marks a window query against a service whose Config
	// has no Window (or, for heavy hitters, a disabled DecayK).
	ErrNoWindow = errors.New("service: sliding window is not configured")
)

// Config parameterizes a Service. The zero value is completed by
// sensible defaults in New; NumAttrs is the only required field.
type Config struct {
	// Shards is the number of independent shards (default 8).
	Shards int
	// NumAttrs is the attribute universe size d (required).
	NumAttrs int
	// SampleCapacity is each shard's reservoir capacity in rows
	// (default 4096).
	SampleCapacity int
	// HeavyK is the Misra–Gries counter parameter for the heavy-hitter
	// path; 0 keeps the default 64, negative disables the summary.
	HeavyK int
	// CountSketch, when non-nil, gives every shard a hierarchical count
	// sketch (internal/countsketch) beside its Misra–Gries summary, and
	// switches the heavy-hitter read path to merging those sketches —
	// the O(1) cell-wise merge, rather than MG's counter merge. The
	// service overrides Universe (to NumAttrs) and Seed (every shard
	// must share one hash seed to be mergeable; it is derived from
	// Config.Seed after the per-shard seeds, so enabling the sketch
	// never perturbs existing shard sampling). Geometry fields keep
	// their countsketch defaults when zero.
	CountSketch *countsketch.Config
	// Window, when non-nil, gives every shard a sliding-window view of
	// its stream beside the whole-stream sketches: a WindowedReservoir
	// answering /v1/estimate over the trailing Window.Rows rows, and
	// (unless disabled) a DecayedMisraGries answering /v1/heavyhitters
	// with exponential decay per bucket rotation. Window seeds are drawn
	// after the count-sketch seed, so enabling the window never perturbs
	// what existing shards sample.
	Window *WindowConfig
	// Params are the sketch parameters recorded into checkpoints and
	// replication envelopes (default k=2, ε=δ=0.05, ForAll Estimator).
	Params itemsketch.Params
	// Seed roots all service randomness: per-shard reservoir seeds,
	// retry jitter, merge seeds. The same seed over the same input
	// streams reproduces the same shard samples.
	Seed uint64
	// CheckpointDir enables crash-safe persistence when non-empty:
	// shard i checkpoints to CheckpointDir/shard-<i>.ckpt and New
	// recovers from the files found there.
	CheckpointDir string
	// CheckpointEvery auto-checkpoints a shard after this many
	// ingested rows (0 = only explicit Checkpoint calls).
	CheckpointEvery int
	// RequestTimeout bounds each HTTP request (0 = none). The deadline
	// threads into EstimateMany, cancelling mid-batch.
	RequestTimeout time.Duration
	// MaxRetries bounds the backoff loop for ingest and checkpoint I/O
	// (default 4 attempts).
	MaxRetries int
	// RetryBase and RetryMax bound the exponential backoff with full
	// jitter: sleep ~ U[0, min(RetryMax, RetryBase·2^attempt)]
	// (defaults 2ms and 50ms).
	RetryBase time.Duration
	RetryMax  time.Duration
	// DegradeAfter and DeadAfter are the consecutive-failure
	// thresholds for the health transitions (defaults 1 and 5).
	DegradeAfter int
	DeadAfter    int
	// MinReady is the live-shard quorum /readyz requires (default 1).
	MinReady int
	// Coalesce, when non-nil, batches concurrent Estimate calls landing
	// inside one linger window into a single cross-shard fan-out per
	// snapshot generation (see CoalesceConfig). nil gives every request
	// its own fan-out.
	Coalesce *CoalesceConfig

	// IngestFault, when set, is consulted before each ingest
	// application attempt; a non-nil return is treated as a transient
	// storage fault and retried with backoff. Chaos tests inject here.
	IngestFault func(shard, attempt int) error
	// CheckpointWriteWrap / CheckpointReadWrap wrap the checkpoint
	// file streams — the hook the chaos tests use to interpose
	// faultio writers/readers on the persistence path.
	CheckpointWriteWrap func(io.Writer) io.Writer
	CheckpointReadWrap  func(io.Reader) io.Reader
	// Sleep replaces the backoff sleep (tests use a no-op). nil means
	// a context-respecting real sleep.
	Sleep func(time.Duration)
	// StrictRecovery makes New fail on a torn or corrupt checkpoint
	// instead of starting the shard empty and Degraded.
	StrictRecovery bool
}

// WindowConfig parameterizes the per-shard sliding-window sketches.
type WindowConfig struct {
	// Rows is the trailing window length in rows per shard (required;
	// rounded up to a multiple of Buckets).
	Rows int
	// Buckets subdivides the window into rotation epochs (default 8).
	// More buckets track the window edge more precisely at
	// proportionally more space.
	Buckets int
	// SampleCapacity is the per-bucket reservoir capacity (default 256).
	SampleCapacity int
	// DecayK is the decayed Misra–Gries counter budget for the windowed
	// heavy-hitter path; 0 keeps the default 64, negative disables it.
	DecayK int
	// DecayLambda scales the decayed counters at every bucket rotation
	// (default 0.8). Must be in (0, 1].
	DecayLambda float64
}

// withDefaults returns cfg with zero fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.SampleCapacity <= 0 {
		cfg.SampleCapacity = 4096
	}
	if cfg.HeavyK == 0 {
		cfg.HeavyK = 64
	}
	if cfg.Params == (itemsketch.Params{}) {
		cfg.Params = itemsketch.Params{K: 2, Eps: 0.05, Delta: 0.05,
			Mode: itemsketch.ForAll, Task: itemsketch.Estimator}
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 2 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 50 * time.Millisecond
	}
	if cfg.DegradeAfter <= 0 {
		cfg.DegradeAfter = 1
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 5
	}
	if cfg.MinReady <= 0 {
		cfg.MinReady = 1
	}
	if cfg.Coalesce != nil {
		c := cfg.Coalesce.withDefaults() // never mutate the caller's struct
		cfg.Coalesce = &c
	}
	if cfg.Window != nil {
		w := *cfg.Window // never mutate the caller's struct
		if w.Buckets <= 0 {
			w.Buckets = 8
		}
		if w.SampleCapacity <= 0 {
			w.SampleCapacity = 256
		}
		if w.DecayK == 0 {
			w.DecayK = 64
		}
		if w.DecayLambda == 0 {
			w.DecayLambda = 0.8
		}
		if rem := w.Rows % w.Buckets; w.Rows > 0 && rem != 0 {
			w.Rows += w.Buckets - rem
		}
		cfg.Window = &w
	}
	return cfg
}

// Service is a fault-tolerant sharded sketch service. Create with New,
// serve with Handler, stop with Close.
type Service struct {
	cfg     Config
	csCfg   *countsketch.Config // resolved count-sketch config (nil = disabled)
	shards  []*Shard
	next    atomic.Uint64 // round-robin ingest cursor
	mseed   atomic.Uint64 // merge-seed counter
	closed  atomic.Bool
	closeMu sync.RWMutex // write side held while Close closes worker channels
	wg      sync.WaitGroup

	coal *coalescer // estimate request coalescer (nil unless Config.Coalesce)

	// Read-side merge caches, one generation per estimator path (see
	// mergecache.go): queries against an unchanged service reuse the
	// previous cross-shard merge instead of re-folding every shard.
	csMerge   mergeCache[*countsketch.Sketch]
	mgMerge   mergeCache[*stream.MisraGries]
	dmgMerge  mergeCache[*stream.DecayedMisraGries]
	mineMerge mergeCache[*dataset.Database]

	routeMu sync.RWMutex
	routing []int // ingest slot table (see rehome.go): slot i is shard i's home
}

// New builds the shard set, recovers any checkpoints found in
// cfg.CheckpointDir, and starts the per-shard ingest workers.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.NumAttrs < 1 {
		return nil, fmt.Errorf("%w: service needs NumAttrs ≥ 1", itemsketch.ErrInvalidParams)
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Params.K > cfg.NumAttrs {
		return nil, fmt.Errorf("%w: params k = %d exceeds NumAttrs = %d", itemsketch.ErrInvalidParams, cfg.Params.K, cfg.NumAttrs)
	}
	if cfg.Window != nil && cfg.Window.Rows < 1 {
		return nil, fmt.Errorf("%w: window needs Rows ≥ 1, got %d", itemsketch.ErrInvalidParams, cfg.Window.Rows)
	}
	s := &Service{cfg: cfg}
	root := rng.New(cfg.Seed)
	// Shard seeds are drawn before the count-sketch seed so that
	// enabling the count sketch never changes what any shard samples.
	seeds := make([][2]uint64, cfg.Shards)
	for i := range seeds {
		seeds[i] = [2]uint64{root.Uint64(), root.Uint64()}
	}
	if cfg.CountSketch != nil {
		csCfg := *cfg.CountSketch
		csCfg.Universe = cfg.NumAttrs
		csCfg.Seed = root.Uint64()
		s.csCfg = &csCfg
	}
	// Window seeds are drawn after the count-sketch seed: enabling the
	// window must not perturb any earlier bit stream (same discipline as
	// the count sketch relative to the shard seeds).
	winSeeds := make([]uint64, cfg.Shards)
	if cfg.Window != nil {
		for i := range winSeeds {
			winSeeds[i] = root.Uint64()
		}
	}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := newShard(s, i, seeds[i][0], seeds[i][1], winSeeds[i])
		if err != nil {
			return nil, err
		}
		s.shards = append(s.shards, sh)
	}
	// Every shard starts owning its home slot; Dead transitions (either
	// direction, including recovery below) recompute the table.
	s.routing = make([]int, cfg.Shards)
	for i := range s.routing {
		s.routing[i] = i
	}
	if cfg.Coalesce != nil {
		s.coal = newCoalescer(s, *cfg.Coalesce)
	}
	if cfg.CheckpointDir != "" {
		if err := s.recoverAll(); err != nil {
			return nil, err
		}
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.run()
	}
	return s, nil
}

// Close stops the ingest workers, takes a best-effort final checkpoint
// of every live shard when persistence is enabled, and returns the
// first checkpoint error.
func (s *Service) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	// The write lock excludes every in-flight submit send, so no worker
	// channel is closed under a pending send (submit checks closed and
	// returns ErrClosed once we hold it).
	s.closeMu.Lock()
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.closeMu.Unlock()
	s.wg.Wait()
	var first error
	if s.cfg.CheckpointDir != "" {
		for _, sh := range s.shards {
			if sh.State() == Dead {
				continue
			}
			if err := sh.Checkpoint(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// NumShards returns the configured shard count.
func (s *Service) NumShards() int { return len(s.shards) }

// Shard returns shard i, for tests and the admin surface.
func (s *Service) Shard(i int) *Shard { return s.shards[i] }

// KillShard marks shard i Dead: it stops receiving ingest routing and
// is excluded from query fan-out. This is the chaos lever — the
// degraded-operation tests and cmd/loadgen kill shards through it.
func (s *Service) KillShard(i int) {
	if i >= 0 && i < len(s.shards) {
		s.shards[i].setState(Dead)
	}
}

// live returns the shards currently eligible for routing and fan-out
// (everything not Dead).
func (s *Service) live() []*Shard {
	out := make([]*Shard, 0, len(s.shards))
	for _, sh := range s.shards {
		if sh.State() != Dead {
			out = append(out, sh)
		}
	}
	return out
}

// Partial reports which shards contributed to a response. Total counts
// every configured shard; Missing lists the ids (dead, failed, or out
// of deadline) that did not answer.
type Partial struct {
	Answered int   `json:"answered"`
	Total    int   `json:"total"`
	Missing  []int `json:"missing,omitempty"`
}

// Degraded reports whether any shard was missing from the response.
func (p Partial) Degraded() bool { return p.Answered < p.Total }

// String formats as the X-Shards-Answered header value ("7/8").
func (p Partial) String() string { return fmt.Sprintf("%d/%d", p.Answered, p.Total) }

// partialFor builds the Partial for the answered flag vector.
func (s *Service) partialFor(answered map[int]bool) Partial {
	p := Partial{Total: len(s.shards)}
	for _, sh := range s.shards {
		if answered[sh.id] {
			p.Answered++
		} else {
			p.Missing = append(p.Missing, sh.id)
		}
	}
	sort.Ints(p.Missing)
	return p
}

// partialForIDs is partialFor over an answered id slice.
func (s *Service) partialForIDs(ids []int) Partial {
	answered := make(map[int]bool, len(ids))
	for _, id := range ids {
		answered[id] = true
	}
	return s.partialFor(answered)
}

// Ingest validates and routes rows (attribute-index lists) across the
// shard slots round-robin, in per-shard batches applied by the shard
// workers under retry. Rows are partitioned over every slot — a dead
// shard's slot is re-homed to a live shard by the routing table (see
// rehome.go) — so killing a shard redistributes its key range instead
// of shrinking the ring. A shard whose application ultimately fails is
// degraded and its batch is re-routed once to the next live shard, so
// single-shard trouble sheds load instead of losing rows. Returns the
// number of rows accepted.
func (s *Service) Ingest(ctx context.Context, rows [][]int) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	for _, row := range rows {
		for _, a := range row {
			if a < 0 || a >= s.cfg.NumAttrs {
				return 0, fmt.Errorf("%w: attribute %d out of range [0,%d)", itemsketch.ErrInvalidParams, a, s.cfg.NumAttrs)
			}
		}
	}
	owners := s.routingSnapshot()
	if owners == nil {
		return 0, ErrNoShards
	}
	// Partition round-robin over the slots from a persistent cursor so
	// successive small batches still spread across shards.
	batches := make([][][]int, len(s.shards))
	for _, row := range rows {
		slot := int((s.next.Add(1) - 1) % uint64(len(owners)))
		batches[owners[slot]] = append(batches[owners[slot]], row)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		accepted int
		firstErr error
	)
	for id, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *Shard, batch [][]int) {
			defer wg.Done()
			err := sh.submit(ctx, batch)
			if err != nil && ctx.Err() == nil && !errors.Is(err, ErrClosed) {
				// Graceful degradation: one re-route attempt to the next
				// live shard (the failed one is degraded or dead by now).
				// Never on a ctx error — the first shard may have applied
				// the batch right as the deadline fired, and re-routing
				// would ingest it twice.
				if alt := s.reroute(sh); alt != nil {
					err = alt.submit(ctx, batch)
				}
			}
			mu.Lock()
			if err == nil {
				accepted += len(batch)
			} else if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}(s.shards[id], batch)
	}
	wg.Wait()
	if accepted == 0 && firstErr != nil {
		return 0, firstErr
	}
	return accepted, nil
}

// reroute picks a live shard other than the failed one, or nil.
func (s *Service) reroute(failed *Shard) *Shard {
	for _, sh := range s.live() {
		if sh != failed {
			return sh
		}
	}
	return nil
}

// Estimate answers a batch of itemset frequency queries by fanning out
// to every live shard's snapshot through query.EstimateMany (so each
// shard's batch is CPU-sharded and ctx-cancellable mid-batch) and
// combining the per-shard estimates weighted by rows seen — the
// expectation of querying the merged reservoir. Shards that fail or
// miss the deadline are reported in the Partial, not fatal; only zero
// answering shards is an error (ErrNoShards, or ctx.Err() when the
// deadline caused it). With Config.Coalesce set, concurrent calls
// landing inside one linger window share a single fan-out; the
// per-itemset answers are bit-identical either way.
func (s *Service) Estimate(ctx context.Context, ts []itemsketch.Itemset) ([]float64, Partial, error) {
	if s.coal != nil {
		return s.coal.estimate(ctx, ts)
	}
	return s.estimateDirect(ctx, ts)
}

// estimateDirect is the uncoalesced fan-out behind Estimate; the
// coalescer calls it once per flushed batch.
func (s *Service) estimateDirect(ctx context.Context, ts []itemsketch.Itemset) ([]float64, Partial, error) {
	live := s.live()
	answered := make(map[int]bool, len(live))
	if len(live) == 0 {
		return nil, s.partialFor(answered), ErrNoShards
	}
	type shardRes struct {
		id   int
		seen int64
		ests []float64
		err  error
	}
	results := make([]shardRes, len(live))
	var wg sync.WaitGroup
	for i, sh := range live {
		wg.Add(1)
		go func(i int, sh *Shard) {
			defer wg.Done()
			snap := sh.snapshot()
			out := make([]float64, len(ts))
			err := snap.q.EstimateMany(ctx, ts, out)
			if err != nil && ctx.Err() == nil {
				// A genuine shard-side failure, not the caller's deadline.
				sh.recordFailure(err)
			}
			results[i] = shardRes{id: sh.id, seen: snap.seen, ests: out, err: err}
		}(i, sh)
	}
	wg.Wait()
	ests := make([]float64, len(ts))
	var weight float64
	for _, r := range results {
		if r.err != nil {
			continue
		}
		answered[r.id] = true
		if r.seen == 0 {
			continue // an empty shard answers, with nothing to add
		}
		w := float64(r.seen)
		weight += w
		for j, f := range r.ests {
			ests[j] += w * f
		}
	}
	p := s.partialFor(answered)
	if p.Answered == 0 {
		if err := ctx.Err(); err != nil {
			return nil, p, err
		}
		return nil, p, ErrNoShards
	}
	if weight > 0 {
		for j := range ests {
			ests[j] /= weight
		}
	}
	return ests, p, nil
}

// Mine runs a frequent-itemset mine over the union of the live shard
// samples: the shard reservoirs are merged on read with stream.Merge
// (the mergeable-summaries property — the merged sample is a uniform
// sample of the union stream) and mined with the ctx-aware batched
// Apriori. The merged, column-indexed union sample is memoized per
// snapshot generation, so repeated mines against an unchanged service
// reuse one merge — and return identical results, since no fresh merge
// seed is drawn. Dead or snapshot-less shards degrade the result to a
// partial over the answering shards.
func (s *Service) Mine(ctx context.Context, minSupport float64, maxK int) ([]itemsketch.MiningResult, Partial, error) {
	ids, snaps, shs := s.mergeCandidates(func(*snapshot) bool { return true })
	db, answered, err := s.mineMerge.get(ids, snaps, func() (*dataset.Database, []int, error) {
		var merged *stream.Reservoir
		var ans []int
		for i, snap := range snaps {
			if err := ctx.Err(); err != nil {
				return nil, ans, err
			}
			if merged == nil {
				merged = snap.res
				ans = append(ans, ids[i])
				continue
			}
			m, err := stream.Merge(merged, snap.res, s.nextMergeSeed())
			if err != nil {
				shs[i].recordFailure(err)
				continue
			}
			merged = m
			ans = append(ans, ids[i])
		}
		if merged == nil {
			return nil, ans, nil
		}
		// Database() clones the sample, so indexing never touches a
		// snapshot other queries are reading.
		db := merged.Database()
		db.BuildColumnIndex()
		return db, ans, nil
	})
	p := s.partialForIDs(answered)
	if err != nil {
		return nil, p, err
	}
	if db == nil {
		if err := ctx.Err(); err != nil {
			return nil, p, err
		}
		return nil, p, ErrNoShards
	}
	rs, err := itemsketch.AprioriContext(ctx, itemsketch.QueryDatabase(db), minSupport, maxK)
	if err != nil {
		return nil, p, err
	}
	return rs, p, nil
}

// HeavyHitter is one heavy single item from the merged Misra–Gries
// view: the item, its (under)estimated count and the merged stream's
// occurrence total.
type HeavyHitter struct {
	Item  int   `json:"item"`
	Count int64 `json:"count"`
}

// HeavyHitterSource names the summary backing HeavyHitters:
// "count-sketch" when Config.CountSketch is set, "misra-gries"
// otherwise.
func (s *Service) HeavyHitterSource() string {
	if s.csCfg != nil {
		return "count-sketch"
	}
	return "misra-gries"
}

// HeavyHitters returns the items whose occurrence frequency may reach
// phi across the union of the live shards' streams, with the merged
// occurrence total. When Config.CountSketch is set the shards' count
// sketches are merged on read (the O(1) cell-wise merge — bit-identical
// to having sketched the union as one stream) and queried by recursive
// dyadic descent; otherwise the Misra–Gries summaries merge through
// stream.MergeMG. Fails with ErrNoShards when the heavy-hitter path is
// disabled or fully degraded.
func (s *Service) HeavyHitters(ctx context.Context, phi float64) ([]HeavyHitter, int64, Partial, error) {
	if s.csCfg != nil {
		return s.heavyHittersCS(ctx, phi)
	}
	ids, snaps, shs := s.mergeCandidates(func(sn *snapshot) bool { return sn.mg != nil })
	merged, answered, err := s.mgMerge.get(ids, snaps, func() (*stream.MisraGries, []int, error) {
		var m *stream.MisraGries
		var ans []int
		for i, snap := range snaps {
			if err := ctx.Err(); err != nil {
				return nil, ans, err
			}
			if m == nil {
				m = snap.mg
				ans = append(ans, ids[i])
				continue
			}
			mm, err := stream.MergeMG(m, snap.mg)
			if err != nil {
				shs[i].recordFailure(err)
				continue
			}
			m = mm
			ans = append(ans, ids[i])
		}
		return m, ans, nil
	})
	p := s.partialForIDs(answered)
	if err != nil {
		return nil, 0, p, err
	}
	if merged == nil {
		if err := ctx.Err(); err != nil {
			return nil, 0, p, err
		}
		return nil, 0, p, ErrNoShards
	}
	var out []HeavyHitter
	for _, it := range merged.HeavyHitters(phi) {
		out = append(out, HeavyHitter{Item: it, Count: merged.Count(it)})
	}
	return out, merged.N(), p, nil
}

// heavyHittersCS is the count-sketch read path: clone the first live
// snapshot's sketch, fold the rest in cell-wise, and run the recursive
// heavy-hitter descent over the merged hierarchy. The fold is memoized
// per snapshot generation — repeated queries against an unchanged
// service reuse the previous merge instead of re-folding every shard.
// The per-query phi validation lives here (rather than a panic)
// because phi arrives from the network surface.
func (s *Service) heavyHittersCS(ctx context.Context, phi float64) ([]HeavyHitter, int64, Partial, error) {
	if !(phi > 0 && phi <= 1) {
		return nil, 0, s.partialFor(nil), fmt.Errorf("%w: phi = %g out of range (0, 1]", itemsketch.ErrInvalidParams, phi)
	}
	ids, snaps, shs := s.mergeCandidates(func(sn *snapshot) bool { return sn.cs != nil })
	merged, answered, err := s.csMerge.get(ids, snaps, func() (*countsketch.Sketch, []int, error) {
		var m *countsketch.Sketch
		var ans []int
		for i, snap := range snaps {
			if err := ctx.Err(); err != nil {
				return nil, ans, err
			}
			if m == nil {
				m = snap.cs.Clone()
				ans = append(ans, ids[i])
				continue
			}
			if err := m.Merge(snap.cs); err != nil {
				shs[i].recordFailure(err)
				continue
			}
			ans = append(ans, ids[i])
		}
		return m, ans, nil
	})
	p := s.partialForIDs(answered)
	if err != nil {
		return nil, 0, p, err
	}
	if merged == nil {
		if err := ctx.Err(); err != nil {
			return nil, 0, p, err
		}
		return nil, 0, p, ErrNoShards
	}
	var out []HeavyHitter
	for _, hit := range merged.HeavyHitters(phi) {
		out = append(out, HeavyHitter{Item: hit.Item, Count: hit.Count})
	}
	return out, merged.Total(), p, nil
}

// WindowEnabled reports whether the sliding-window query surface is
// configured.
func (s *Service) WindowEnabled() bool { return s.cfg.Window != nil }

// EstimateWindow answers itemset frequency queries over the trailing
// window only: each live shard's windowed reservoir estimates over its
// own last Window.Rows rows, and the per-shard estimates combine
// weighted by rows currently inside each shard's window — the
// expectation of querying the union of the shard windows. The partial
// semantics match Estimate.
func (s *Service) EstimateWindow(ctx context.Context, ts []itemsketch.Itemset) ([]float64, Partial, error) {
	if s.cfg.Window == nil {
		return nil, s.partialFor(nil), ErrNoWindow
	}
	live := s.live()
	answered := make(map[int]bool, len(live))
	ests := make([]float64, len(ts))
	var weight float64
	for _, sh := range live {
		if err := ctx.Err(); err != nil {
			return nil, s.partialFor(answered), err
		}
		snap := sh.snapshot()
		if snap.win == nil {
			continue
		}
		answered[sh.id] = true
		w := float64(snap.win.WindowSeen())
		if w == 0 {
			continue // answers, with nothing in its window yet
		}
		weight += w
		for j, t := range ts {
			ests[j] += w * snap.win.Estimate(t)
		}
	}
	p := s.partialFor(answered)
	if p.Answered == 0 {
		if err := ctx.Err(); err != nil {
			return nil, p, err
		}
		return nil, p, ErrNoShards
	}
	if weight > 0 {
		for j := range ests {
			ests[j] /= weight
		}
	}
	return ests, p, nil
}

// HeavyHittersWindow returns the items heavy within the decayed recent
// stream: the shards' decayed Misra–Gries summaries merge on read
// (MergeDecayed aligns epochs by ticking the younger side forward), and
// the merged summary is thresholded at phi. Counts are decayed
// occurrence mass, rounded; n is the merged decayed total.
func (s *Service) HeavyHittersWindow(ctx context.Context, phi float64) ([]HeavyHitter, int64, Partial, error) {
	if s.cfg.Window == nil || s.cfg.Window.DecayK < 2 {
		return nil, 0, s.partialFor(nil), ErrNoWindow
	}
	if !(phi > 0 && phi <= 1) {
		return nil, 0, s.partialFor(nil), fmt.Errorf("%w: phi = %g out of range (0, 1]", itemsketch.ErrInvalidParams, phi)
	}
	ids, snaps, shs := s.mergeCandidates(func(sn *snapshot) bool { return sn.dmg != nil })
	merged, answered, err := s.dmgMerge.get(ids, snaps, func() (*stream.DecayedMisraGries, []int, error) {
		var m *stream.DecayedMisraGries
		var ans []int
		for i, snap := range snaps {
			if err := ctx.Err(); err != nil {
				return nil, ans, err
			}
			if m == nil {
				m = snap.dmg
				ans = append(ans, ids[i])
				continue
			}
			mm, err := stream.MergeDecayed(m, snap.dmg)
			if err != nil {
				shs[i].recordFailure(err)
				continue
			}
			m = mm
			ans = append(ans, ids[i])
		}
		return m, ans, nil
	})
	p := s.partialForIDs(answered)
	if err != nil {
		return nil, 0, p, err
	}
	if merged == nil {
		if err := ctx.Err(); err != nil {
			return nil, 0, p, err
		}
		return nil, 0, p, ErrNoShards
	}
	var out []HeavyHitter
	for _, it := range merged.HeavyHitters(phi) {
		out = append(out, HeavyHitter{Item: it, Count: int64(math.Round(merged.Count(it)))})
	}
	return out, int64(math.Round(merged.N())), p, nil
}

// nextMergeSeed derives a fresh deterministic seed for a read-side
// reservoir merge.
func (s *Service) nextMergeSeed() uint64 {
	return s.cfg.Seed ^ (0x9e3779b97f4a7c15 * s.mseed.Add(1))
}

// Checkpoint persists every live shard (see Shard.Checkpoint),
// returning the first error after attempting all of them.
func (s *Service) Checkpoint() error {
	var first error
	for _, sh := range s.shards {
		if sh.State() == Dead {
			continue
		}
		if err := sh.Checkpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardHealth is one shard's row in the health report.
type ShardHealth struct {
	ID          int    `json:"id"`
	State       string `json:"state"`
	Seen        int64  `json:"seen"`
	SampleRows  int    `json:"sample_rows"`
	Failures    int    `json:"consecutive_failures"`
	Checkpoints int64  `json:"checkpoints"`
	// RoutedTo is the shard currently owning this shard's ingest slot:
	// itself while live, the re-home target while it is dead, -1 when
	// every shard is dead.
	RoutedTo  int    `json:"routed_to"`
	LastError string `json:"last_error,omitempty"`
}

// HealthReport returns the per-shard states for /healthz.
func (s *Service) HealthReport() []ShardHealth {
	routing := s.Routing()
	out := make([]ShardHealth, len(s.shards))
	for i, sh := range s.shards {
		snap := sh.snapshot()
		out[i] = ShardHealth{
			ID:          sh.id,
			State:       sh.State().String(),
			Seen:        snap.seen,
			SampleRows:  snap.db.NumRows(),
			Failures:    int(sh.fails.Load()),
			Checkpoints: sh.checkpoints.Load(),
			RoutedTo:    routing[i],
			LastError:   sh.lastError(),
		}
	}
	return out
}

// Ready reports whether the live-shard quorum is met.
func (s *Service) Ready() bool { return len(s.live()) >= s.cfg.MinReady }
