package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	itemsketch "repro"
)

// CoalesceConfig parameterizes the estimate request coalescer
// (Config.Coalesce). Concurrent Estimate calls landing inside one
// linger window are batched into a single cross-shard fan-out: the
// batch concatenates every caller's itemsets, runs one
// query.EstimateMany per shard snapshot, and slices the answers back
// per caller. Zero fields take the defaults noted per knob.
type CoalesceConfig struct {
	// Linger is how long the first request of a batch holds the batch
	// open for companions before it flushes (default 200µs). It bounds
	// the latency the coalescer may add to a lone request; widening it
	// widens the batching window.
	Linger time.Duration
	// MaxBatch flushes the open batch as soon as it holds this many
	// requests (default 32), bounding batch size under heavy load
	// independent of the linger clock.
	MaxBatch int
	// MaxItemsets flushes when the combined itemset count across the
	// batch reaches this bound (default 4096), so a few giant requests
	// cannot grow one fan-out without limit.
	MaxItemsets int
}

// withDefaults returns cfg with zero fields filled in.
func (cfg CoalesceConfig) withDefaults() CoalesceConfig {
	if cfg.Linger <= 0 {
		cfg.Linger = 200 * time.Microsecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxItemsets <= 0 {
		cfg.MaxItemsets = 4096
	}
	return cfg
}

// coalescer batches concurrent Estimate calls into one cross-shard
// fan-out per linger window — the singleflight-style collector behind
// Config.Coalesce.
//
// Correctness rests on two properties. First, estimateDirect's
// per-itemset answers are independent: EstimateMany computes each
// itemset's count on its own and the seen-weighted combine divides per
// itemset, so concatenating requests and slicing the answers back is
// bit-identical to serial single-request calls. Second, every request
// in a batch reads the same snapshot generation, because the single
// fan-out loads each shard's snapshot exactly once.
type coalescer struct {
	svc *Service
	cfg CoalesceConfig

	mu  sync.Mutex
	cur *estBatch // open batch accepting arrivals, nil between batches

	requests  atomic.Int64 // calls that entered the coalescer
	flushes   atomic.Int64 // cross-shard fan-outs that served them
	coalesced atomic.Int64 // calls that shared a fan-out with a companion
}

// estBatch collects entries between flushes. done closes only after
// every entry's result fields are final — waiters read them strictly
// after the close, which is the happens-before edge that keeps entry
// fields race-free without per-entry locks.
type estBatch struct {
	entries []*estEntry
	sets    int // combined itemset count across entries
	done    chan struct{}
	timer   *time.Timer
	flushed bool
}

// estEntry is one caller's slot in a batch. ests/p/err are written by
// the flusher before done closes; a caller whose own ctx fires first
// never reads them (it returns ctx.Err()), which is how one cancelled
// request leaves a batch without poisoning its companions.
type estEntry struct {
	ctx  context.Context
	ts   []itemsketch.Itemset
	ests []float64
	p    Partial
	err  error
}

func newCoalescer(svc *Service, cfg CoalesceConfig) *coalescer {
	return &coalescer{svc: svc, cfg: cfg.withDefaults()}
}

// estimate enqueues one call into the open batch (starting one, and
// its linger timer, if none is open) and waits for the flush — or for
// its own ctx, whichever fires first.
func (c *coalescer) estimate(ctx context.Context, ts []itemsketch.Itemset) ([]float64, Partial, error) {
	if err := ctx.Err(); err != nil {
		return nil, c.svc.partialFor(nil), err
	}
	c.requests.Add(1)
	e := &estEntry{ctx: ctx, ts: ts}
	c.mu.Lock()
	b := c.cur
	if b == nil {
		b = &estBatch{done: make(chan struct{})}
		c.cur = b
		b.timer = time.AfterFunc(c.cfg.Linger, func() { c.flush(b) })
	}
	b.entries = append(b.entries, e)
	b.sets += len(ts)
	full := len(b.entries) >= c.cfg.MaxBatch || b.sets >= c.cfg.MaxItemsets
	c.mu.Unlock()
	if full {
		c.flush(b)
	}
	select {
	case <-b.done:
		return e.ests, e.p, e.err
	case <-ctx.Done():
		return nil, c.svc.partialFor(nil), ctx.Err()
	}
}

// flush runs one batch: it detaches the batch so new arrivals open a
// fresh one, drops entries whose ctx already fired (they return their
// own ctx.Err()), concatenates the rest into one estimateDirect call
// under a context bounded by the latest member deadline, and slices
// the combined answers back per entry. Idempotent — the linger timer
// and a batch-full arrival may both call it.
func (c *coalescer) flush(b *estBatch) {
	c.mu.Lock()
	if b.flushed {
		c.mu.Unlock()
		return
	}
	b.flushed = true
	if c.cur == b {
		c.cur = nil
	}
	entries := b.entries
	c.mu.Unlock()
	b.timer.Stop()
	defer close(b.done)

	active := make([]*estEntry, 0, len(entries))
	nsets := 0
	for _, e := range entries {
		if err := e.ctx.Err(); err != nil {
			e.err = err
			continue
		}
		active = append(active, e)
		nsets += len(e.ts)
	}
	if len(active) == 0 {
		return
	}
	c.flushes.Add(1)
	if len(active) > 1 {
		c.coalesced.Add(int64(len(active)))
	}
	combined := make([]itemsketch.Itemset, 0, nsets)
	for _, e := range active {
		combined = append(combined, e.ts...)
	}
	fctx, cancel := batchContext(active)
	defer cancel()
	ests, p, err := c.svc.estimateDirect(fctx, combined)
	off := 0
	for _, e := range active {
		n := len(e.ts)
		e.p = p
		if err != nil {
			e.err = err
		} else {
			e.ests = ests[off : off+n : off+n]
		}
		off += n
	}
}

// batchContext bounds the shared fan-out by the latest member
// deadline; one member without a deadline leaves the fan-out
// unbounded, exactly as its own serial call would have been. Members
// with earlier deadlines are released by their own ctx select — the
// fan-out is never cut short on their behalf.
func batchContext(entries []*estEntry) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, e := range entries {
		d, ok := e.ctx.Deadline()
		if !ok {
			return context.WithCancel(context.Background())
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// CoalesceStats is a snapshot of the coalescer counters: how many
// Estimate calls entered, how many cross-shard fan-outs served them,
// and how many calls shared a fan-out with at least one companion.
type CoalesceStats struct {
	Requests  int64 `json:"requests"`
	Flushes   int64 `json:"flushes"`
	Coalesced int64 `json:"coalesced"`
}

// CoalesceStats reports the coalescer counters (all zero when
// Config.Coalesce is nil).
func (s *Service) CoalesceStats() CoalesceStats {
	if s.coal == nil {
		return CoalesceStats{}
	}
	return CoalesceStats{
		Requests:  s.coal.requests.Load(),
		Flushes:   s.coal.flushes.Load(),
		Coalesced: s.coal.coalesced.Load(),
	}
}
